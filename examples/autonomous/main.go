// Autonomous-driving pipeline: the motivating application of the paper's
// introduction. Perception consumes the sensors, decision consumes
// perception, control consumes decision — a DAG with heavy dependent-data
// flow (point clouds, detection lists, trajectories) between nodes.
//
// The example builds the pipeline, schedules it with Algorithm 1 and shows
// how the L1.5 Cache shortens the reaction path (source → control).
package main

import (
	"fmt"
	"log"

	"l15cache"
	"l15cache/internal/dag"
)

func main() {
	log.SetFlags(0)

	// 100 ms driving period; times in milliseconds.
	task := l15cache.NewTask("autonomous-driving", 100, 100)

	sensors := task.AddNode("sensor-hub", 2, 4096)
	camera := task.AddNode("camera-pre", 8, 16*1024)
	lidar := task.AddNode("lidar-pre", 10, 16*1024)
	radar := task.AddNode("radar-pre", 4, 4096)
	detect := task.AddNode("detection", 12, 8*1024)
	track := task.AddNode("tracking", 6, 4096)
	fuse := task.AddNode("fusion", 5, 8*1024)
	predict := task.AddNode("prediction", 7, 4096)
	plan := task.AddNode("planning", 9, 4096)
	control := task.AddNode("control", 3, 0)

	type edge struct {
		from, to l15cache.NodeID
		cost     float64
		alpha    float64
	}
	for _, e := range []edge{
		{sensors, camera, 2, 0.6},
		{sensors, lidar, 2, 0.6},
		{sensors, radar, 1, 0.5},
		{camera, detect, 6, 0.7},
		{lidar, detect, 6, 0.7},
		{camera, track, 3, 0.6},
		{radar, track, 2, 0.5},
		{detect, fuse, 4, 0.7},
		{track, fuse, 2, 0.6},
		{fuse, predict, 3, 0.7},
		{predict, plan, 2, 0.6},
		{fuse, plan, 2, 0.5},
		{plan, control, 1, 0.5},
	} {
		if err := task.AddEdge(e.from, e.to, e.cost, e.alpha); err != nil {
			log.Fatal(err)
		}
	}
	if err := task.Validate(); err != nil {
		log.Fatal(err)
	}

	raw := task.CriticalPathLength(dag.RawCost)
	fmt.Printf("pipeline: %d nodes, %d edges, W=%.0f ms\n", len(task.Nodes), len(task.Edges), task.Volume())
	fmt.Printf("reaction path (sensors → control), conventional cache: %.1f ms\n", raw)

	alloc, err := l15cache.Schedule(task, 16, 2048)
	if err != nil {
		log.Fatal(err)
	}
	assisted := task.CriticalPathLength(alloc.Model.EdgeCost)
	fmt.Printf("reaction path with L1.5-assisted communication:        %.1f ms (%.0f%% shorter)\n",
		assisted, 100*(raw-assisted)/raw)

	fmt.Println("\nper-stage configuration (ways hold the stage's output for its consumers):")
	for _, n := range task.Nodes {
		fmt.Printf("  %-12s C=%4.0f ms  δ=%5.1f KB  ways=%d  priority=%d\n",
			n.Name, n.WCET, float64(n.Data)/1024, alloc.LocalWays[n.ID], n.Priority)
	}

	// Makespan on the 4-core cluster, proposed vs conventional.
	opt := l15cache.SimOptions{Cores: 4, Instances: 3}
	prop := &l15cache.Proposed{Alloc: alloc}
	propStats, err := l15cache.Simulate(alloc, prop, opt)
	if err != nil {
		log.Fatal(err)
	}
	base, err := l15cache.LongestPathFirst(task.Clone())
	if err != nil {
		log.Fatal(err)
	}
	cmpStats, err := l15cache.Simulate(base, l15cache.CMPL1(), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nend-to-end makespan on 4 cores (worst instance):\n")
	fmt.Printf("  Prop:   %.1f ms\n", worst(propStats))
	fmt.Printf("  CMP|L1: %.1f ms\n", worst(cmpStats))
	fmt.Printf("deadline: %.0f ms\n", task.Deadline)
}

func worst(stats []l15cache.InstanceStats) float64 {
	var m float64
	for _, s := range stats {
		if s.Makespan > m {
			m = s.Makespan
		}
	}
	return m
}

// Sharing: the §4.3 programming model executed on the cycle-approximate
// SoC — real RV32I code using the five new instructions. A producer core
// demands L1.5 ways, marks them inclusive, writes dependent data and
// publishes it with gv_set; a consumer core on the same cluster then reads
// the data through the L1.5's global ways instead of the L2.
//
// The example runs the transfer twice — once with gv_set, once without —
// and reports the consumer's cycle counts and where its loads were served.
package main

import (
	"fmt"
	"log"

	"l15cache"
)

const producerTemplate = `
	li a0, 8
	demand a0          # kernel mode: apply 8 ways
wait:
	supply a1
	beqz a1, wait
	ip_set a1          # inclusive: stores fill the L1.5
	li t0, 0x4000      # write 256 words (1 KB) of dependent data
	li t1, 256
	li t2, 1
wloop:
	sw t2, 0(t0)
	addi t0, t0, 4
	addi t2, t2, 1
	addi t1, t1, -1
	bnez t1, wloop
%s
	li t0, 0x7000      # raise the ready flag
	li t1, 1
	sw t1, 0(t0)
	ebreak
`

const consumer = `
	li t0, 0x7000
spin:
	lw t1, 0(t0)
	beqz t1, spin
	li t0, 0x4000      # sum the 256 words
	li t1, 256
	li a0, 0
rloop:
	lw t2, 0(t0)
	add a0, a0, t2
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, rloop
	ebreak
`

func run(publish bool) (sum uint32, cycles uint64, globalHits, misses uint64) {
	s, err := l15cache.NewSoC(l15cache.DefaultSoCConfig())
	if err != nil {
		log.Fatal(err)
	}
	gv := "	# (not publishing: data stays private)"
	if publish {
		gv = "	gv_set a1          # publish the ways to the cluster"
	}
	if _, err := s.LoadProgram(0x1000, fmt.Sprintf(producerTemplate, gv)); err != nil {
		log.Fatal(err)
	}
	if _, err := s.LoadProgram(0x2000, consumer); err != nil {
		log.Fatal(err)
	}
	pt := s.IdentityPageTable(7)
	for core := 0; core < 2; core++ {
		if err := s.SetPageTable(core, pt); err != nil {
			log.Fatal(err)
		}
	}
	s.StartCore(0, 0x1000, 0x8000)
	s.StartCore(1, 0x2000, 0x9000)
	for i := 2; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	if _, err := s.Run(10_000_000, nil); err != nil {
		log.Fatal(err)
	}
	st := s.Clusters[0].L15.Stats[1]
	return s.Cores[1].Regs[10], s.Cores[1].Cycles, st.GlobalHits, st.Misses
}

func main() {
	log.SetFlags(0)

	sumShared, cyclesShared, hits, _ := run(true)
	sumPrivate, cyclesPrivate, _, misses := run(false)

	fmt.Println("producer writes 256 words; consumer sums them (expected 32896):")
	fmt.Printf("  with gv_set:    sum=%d, consumer cycles=%d, L1.5 global hits=%d\n",
		sumShared, cyclesShared, hits)
	fmt.Printf("  without gv_set: sum=%d, consumer cycles=%d, L1.5 misses=%d\n",
		sumPrivate, cyclesPrivate, misses)
	if cyclesShared < cyclesPrivate {
		fmt.Printf("\nthe L1.5 'channel' saved the consumer %d cycles (%.0f%%)\n",
			cyclesPrivate-cyclesShared,
			100*float64(cyclesPrivate-cyclesShared)/float64(cyclesPrivate))
	}
	fmt.Println("\nBoth runs compute the same sum — the write-through hierarchy keeps")
	fmt.Println("memory authoritative; gv_set changes where the loads are *served*.")
}

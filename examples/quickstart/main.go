// Quickstart: build a DAG task, schedule it with Algorithm 1, and compare
// the proposed L1.5 system's makespan against the conventional baselines.
package main

import (
	"fmt"
	"log"

	"l15cache"
)

func main() {
	log.SetFlags(0)

	// The paper's running example (Fig. 1 / Fig. 6): seven nodes, nine
	// edges, communication costs on every edge.
	task := l15cache.Fig1Example()
	fmt.Printf("task %q: %d nodes, %d edges, W=%.0f\n",
		task.Name, len(task.Nodes), len(task.Edges), task.Volume())

	// Algorithm 1: allocate L1.5 ways (ζ=16 ways × κ=2KB) and assign
	// priorities, longest path first.
	alloc, err := l15cache.Schedule(task, 16, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAlg. 1 way allocation (local ways per node):")
	for _, id := range alloc.PriorityOrder() {
		n := task.Node(id)
		fmt.Printf("  %-3s C=%.0f δ=%4.1fKB priority=%d ways=%d\n",
			n.Name, n.WCET, float64(n.Data)/1024, n.Priority, alloc.LocalWays[id])
	}

	// Simulate 4 instances on 4 cores for each system. The proposed
	// system needs its own schedule (the ETM changes λ); the baselines
	// use plain longest-path-first priorities.
	opt := l15cache.SimOptions{Cores: 4, Instances: 4}

	prop, err := l15cache.NewProposed(task.Clone(), 16, 2048)
	if err != nil {
		log.Fatal(err)
	}
	propStats, err := l15cache.Simulate(prop.Alloc, prop, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmakespans per instance (instance 1 is cold):")
	fmt.Printf("  %-8s", "Prop")
	for _, s := range propStats {
		fmt.Printf("%8.2f", s.Makespan)
	}
	fmt.Println()

	for _, plat := range []l15cache.Platform{l15cache.CMPL1(), l15cache.CMPL2()} {
		base, err := l15cache.LongestPathFirst(task.Clone())
		if err != nil {
			log.Fatal(err)
		}
		stats, err := l15cache.Simulate(base, plat, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s", plat.Name())
		for _, s := range stats {
			fmt.Printf("%8.2f", s.Makespan)
		}
		fmt.Println()
	}
	fmt.Println("\nThe proposed system is warm-up free: every instance matches the")
	fmt.Println("first, which is what shrinks the worst-case makespan (Tab. 2).")
}

// Casestudy: a miniature version of §5.2 — one PARSEC-like periodic DAG
// task set executed on all four systems (Prop, CMP|L1, CMP|L2,
// CMP|Shared-L1), reporting deadline misses and, for the proposed system,
// the L1.5 way utilisation and mis-configuration ratio φ.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"l15cache"
	"l15cache/internal/workload"
)

func main() {
	log.SetFlags(0)

	const cores = 8
	const targetUtil = 0.7 // fraction of total capacity

	params := workload.DefaultTaskSetParams()
	params.TargetUtilization = targetUtil * cores
	params.Tasks = 2 * cores
	tasks, err := workload.TaskSet(rand.New(rand.NewSource(7)), params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task set: %d PARSEC-like DAG tasks, total load %.1f%% of %d cores\n",
		len(tasks), 100*workload.TotalLoad(tasks)/cores, cores)
	for _, t := range tasks[:4] {
		fmt.Printf("  %-16s %2d nodes, T=%.0f\n", t.Name, len(t.Nodes), t.Period)
	}
	fmt.Printf("  ... and %d more\n\n", len(tasks)-4)

	cfg := l15cache.DefaultRTConfig()
	cfg.Cores = cores

	for _, kind := range []l15cache.SystemKind{
		l15cache.SystemProp, l15cache.SystemCMPL1,
		l15cache.SystemCMPL2, l15cache.SystemSharedL1,
	} {
		m, err := l15cache.RunRT(tasks, kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK (no deadline misses)"
		if m.Misses > 0 {
			status = fmt.Sprintf("%d/%d jobs missed their deadline", m.Misses, m.Jobs)
		}
		fmt.Printf("%-15s %s\n", kind, status)
		if kind == l15cache.SystemProp {
			fmt.Printf("%-15s L1.5 way utilisation %.1f%%, φ=%.3f%%\n",
				"", 100*m.WayUtilization, 100*m.Phi)
		}
	}
	fmt.Println("\nRun cmd/casestudy for the full 200-trial success-ratio sweep (Fig. 8).")
}

// Hardware-in-the-loop case study: periodic DAG tasks executed by the
// FreeRTOS-like kernel on the cycle-approximate SoC — every node is a real
// RV32I routine moving real data through the simulated L1/L1.5/L2
// hierarchy, and the kernel performs the §4.3 demand/ip_set/gv_set
// reconfiguration at each context switch.
//
// The same workload runs twice: with the L1.5 protocol and with the
// conventional kernel (data through the L2 only). The comparison shows the
// response-time effect of the co-design measured in actual simulated
// cycles, not analytical costs.
package main

import (
	"fmt"
	"log"

	"l15cache/internal/dag"
	"l15cache/internal/rtos"
	"l15cache/internal/soc"
)

// pipelineTask is a 6-node sensing pipeline with 4-8 KB of dependent data
// per stage; WCETs are core cycles.
func pipelineTask(name string, scale float64) *dag.Task {
	t := dag.New(name, 1, 1)
	src := t.AddNode("acquire", 1500*scale, 8192)
	fl := t.AddNode("filter-l", 2500*scale, 4096)
	fr := t.AddNode("filter-r", 2500*scale, 4096)
	fx := t.AddNode("fuse", 2000*scale, 8192)
	cls := t.AddNode("classify", 3000*scale, 4096)
	act := t.AddNode("act", 1000*scale, 0)
	t.MustAddEdge(src, fl, 10, 0.6)
	t.MustAddEdge(src, fr, 10, 0.6)
	t.MustAddEdge(fl, fx, 10, 0.6)
	t.MustAddEdge(fr, fx, 10, 0.6)
	t.MustAddEdge(fx, cls, 10, 0.6)
	t.MustAddEdge(cls, act, 10, 0.6)
	return t
}

func run(useL15 bool) ([]rtos.JobRecord, *rtos.Kernel) {
	specs := []rtos.TaskSpec{
		{Task: pipelineTask("pipeline-A", 1.0), PeriodCycles: 250_000, DeadlineCycles: 250_000},
		{Task: pipelineTask("pipeline-B", 0.6), PeriodCycles: 180_000, DeadlineCycles: 180_000},
	}
	cfg := rtos.Config{
		SoC:         soc.DefaultConfig(),
		UseL15:      useL15,
		JobsPerTask: 3,
	}
	k, err := rtos.New(cfg, specs)
	if err != nil {
		log.Fatal(err)
	}
	records, err := k.Run()
	if err != nil {
		log.Fatal(err)
	}
	return records, k
}

func main() {
	log.SetFlags(0)

	fmt.Println("running 2 pipelines × 3 jobs on the simulated 8-core SoC...")
	withL15, kProp := run(true)
	withoutL15, _ := run(false)

	fmt.Println("\nper-job response times (cycles):")
	fmt.Printf("%22s%14s%14s\n", "job", "with L1.5", "conventional")
	var sumWith, sumWithout uint64
	for i := range withL15 {
		a, b := withL15[i], withoutL15[i]
		rWith := a.Finish - a.Release
		rWithout := b.Finish - b.Release
		sumWith += rWith
		sumWithout += rWithout
		fmt.Printf("    task %d @%9d%14d%14d\n", a.Task, a.Release, rWith, rWithout)
	}
	fmt.Printf("\nmean response time: %d vs %d cycles (%.1f%% faster with the L1.5)\n",
		sumWith/uint64(len(withL15)), sumWithout/uint64(len(withoutL15)),
		100*(1-float64(sumWith)/float64(sumWithout)))

	var global, misses uint64
	for _, cl := range kProp.SoC().Clusters {
		for _, st := range cl.L15.Stats {
			global += st.GlobalHits
			misses += st.Misses
		}
	}
	fmt.Printf("L1.5 global hits (dependent data served in-cluster): %d (misses %d)\n",
		global, misses)
	fmt.Printf("deadline misses: %d with L1.5, %d conventional\n",
		rtos.Misses(withL15), rtos.Misses(withoutL15))
}

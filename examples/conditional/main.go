// Conditional DAGs: the extension of the task model to exclusive branching
// (reference [5] of the paper). An autonomous-driving step either follows
// the normal perceive→plan pipeline or, on a hazard, takes the emergency
// arm — exactly one arm executes per instance. Algorithm 1 allocates L1.5
// ways over the full graph (safe: the unchosen arm's ways are simply unused
// that instance); the timing analysis takes the worst case over the
// scenarios.
package main

import (
	"fmt"
	"log"

	"l15cache"
	"l15cache/internal/analysis"
	"l15cache/internal/dag"
)

func main() {
	log.SetFlags(0)

	task := l15cache.NewTask("drive-step", 50, 50)
	src := task.AddNode("sense", 3, 8192)
	classify := task.AddNode("classify", 4, 4096)

	// Normal arm: track → predict → plan.
	track := task.AddNode("track", 6, 4096)
	predict := task.AddNode("predict", 5, 4096)
	plan := task.AddNode("plan", 7, 4096)

	// Emergency arm: brake envelope only.
	brake := task.AddNode("brake-envelope", 4, 2048)

	merge := task.AddNode("actuate", 2, 0)
	sink := task.AddNode("commit", 1, 0)

	type e struct {
		from, to dag.NodeID
		cost     float64
	}
	for _, ed := range []e{
		{src, classify, 4},
		{classify, track, 3}, {track, predict, 2}, {predict, plan, 2}, {plan, merge, 2},
		{classify, brake, 2}, {brake, merge, 1},
		{merge, sink, 1},
	} {
		if err := task.AddEdge(ed.from, ed.to, ed.cost, 0.6); err != nil {
			log.Fatal(err)
		}
	}

	ct := dag.NewConditional(task)
	if err := ct.AddConditional(classify, merge,
		[][]dag.NodeID{{track, predict, plan}, {brake}}); err != nil {
		log.Fatal(err)
	}

	// Alg. 1 over the full graph (every arm gets its ways).
	alloc, err := l15cache.Schedule(task, 16, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conditional task: %d nodes, %d scenarios\n", len(task.Nodes), ct.Scenarios())

	// Per-scenario analysis with and without the L1.5.
	fmt.Printf("\n%-12s%16s%16s\n", "scenario", "raw bound (ms)", "L1.5 bound (ms)")
	err = ct.EachScenario(func(choice []int, st *dag.Task) error {
		raw, err := analysis.Makespan(st, 4, dag.RawCost)
		if err != nil {
			return err
		}
		assisted, err := analysis.Makespan(st, 4, alloc.Model.Weight())
		if err != nil {
			return err
		}
		name := "normal"
		if choice[0] == 1 {
			name = "emergency"
		}
		fmt.Printf("%-12s%16.1f%16.1f\n", name, raw.Makespan, assisted.Makespan)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	worstRaw, err := analysis.CondMakespan(ct, 4, dag.RawCost)
	if err != nil {
		log.Fatal(err)
	}
	worstL15, err := analysis.CondMakespan(ct, 4, alloc.Model.Weight())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst case over scenarios: raw %.1f ms, with L1.5 %.1f ms (deadline %g ms)\n",
		worstRaw.Makespan, worstL15.Makespan, task.Deadline)
	fmt.Println("\nThe emergency arm never waits on the long pipeline — conditional")
	fmt.Println("arms keep the worst case honest while Alg. 1's allocation covers both.")
}

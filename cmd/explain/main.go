// Command explain dissects a flight recording (internal/flight) into
// root-cause answers: which nodes formed the critical path and with how
// much slack, what every node waited for (predecessors vs. a free core),
// how the L1.5 way supply moved, and why deadlines were missed.
//
// Usage:
//
//	explain [-task N -job N] [-width N] [-chrome out.json] recording.{jsonl,bin}
//
// The recording format is sniffed from the content, so both the JSONL and
// the compact binary export load. Without -task/-job the tool focuses on
// the first missed job, or the job with the largest makespan. The output
// is a deterministic function of the recording: a summary, an ASCII
// per-core timeline, the critical path with per-step gates, a per-node
// attribution table, and per-cluster way-occupancy statistics. -chrome
// additionally converts the dispatch spans into a Chrome trace_event file
// for chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"l15cache/internal/cli"
	"l15cache/internal/flight"
	"l15cache/internal/forensics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explain: ")

	taskIdx := flag.Int("task", -1, "focus task index (-1 = auto)")
	jobIdx := flag.Int("job", -1, "focus job (release) index (-1 = auto)")
	width := flag.Int("width", 72, "timeline width in characters")
	chrome := flag.String("chrome", "", "also write a Chrome trace_event JSON file")
	showVersion := cli.VersionFlag()
	flag.Parse()
	showVersion()

	if flag.NArg() != 1 {
		log.Fatal("usage: explain [flags] recording.{jsonl,bin}")
	}
	rec, err := flight.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	m := forensics.Build(rec)

	var sb strings.Builder
	summarize(&sb, m, rec)

	key, ok := m.FocusJob()
	if *taskIdx >= 0 && *jobIdx >= 0 {
		key, ok = forensics.JobKey{Task: *taskIdx, Job: *jobIdx}, true
		if _, found := m.Job(key); !found {
			log.Fatalf("no %v in recording", key)
		}
	}
	if ok {
		if err := explainJob(&sb, m, key, *width); err != nil {
			log.Fatal(err)
		}
	} else {
		sb.WriteString("\nno dispatched jobs in recording (planning-only or hardware log)\n")
	}
	wayOccupancy(&sb, m)
	missChains(&sb, m)
	fmt.Print(sb.String())

	if *chrome != "" {
		if err := writeChrome(*chrome, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nchrome trace written to %s\n", *chrome)
	}
}

// summarize prints the recording header: event counts per kind and the
// saturation evidence.
func summarize(sb *strings.Builder, m *forensics.Model, rec flight.Recording) {
	fmt.Fprintf(sb, "recording: %d events", len(rec.Events))
	if m.Dropped > 0 {
		fmt.Fprintf(sb, " (%d DROPPED — ring wrapped, analysis incomplete)", m.Dropped)
	}
	sb.WriteByte('\n')
	for k := 0; k < flight.KindCount; k++ {
		if n := m.KindCounts[k]; n > 0 {
			fmt.Fprintf(sb, "  %-12s %d\n", flight.Kind(k).String(), n)
		}
	}
	if len(m.Jobs) == 0 {
		return
	}
	fmt.Fprintf(sb, "\n%-6s %-5s %10s %10s %10s %6s\n",
		"task", "job", "release", "finish", "deadline", "miss")
	for _, j := range m.Jobs {
		miss := ""
		if j.Missed {
			miss = "MISS"
		}
		fmt.Fprintf(sb, "%-6d %-5d %10.4g %10.4g %10.4g %6s\n",
			j.Key.Task, j.Key.Job, j.Release, j.Finish, j.Deadline, miss)
	}
}

// explainJob renders the focus job: timeline, critical path, attribution.
func explainJob(sb *strings.Builder, m *forensics.Model, key forensics.JobKey, width int) error {
	j, _ := m.Job(key)
	fmt.Fprintf(sb, "\n== focus: %v  (release %.4g, finish %.4g, makespan %.6g)\n",
		key, j.Release, j.Finish, j.Makespan())

	timeline(sb, m, key, width)

	path, err := m.CriticalPath(key)
	if err != nil {
		return err
	}
	slack, err := m.Slack(key)
	if err != nil {
		return err
	}
	fmt.Fprintf(sb, "\ncritical path (%d steps):\n", len(path))
	fmt.Fprintf(sb, "%-6s %-5s %-5s %10s %10s %10s  %-8s\n",
		"task", "job", "node", "start", "finish", "dur", "gate")
	for _, st := range path {
		sp := st.Span
		gate := st.Gate.String()
		if st.From != nil {
			gate = fmt.Sprintf("%s(n%d)", st.Gate, st.From.Node)
		}
		fmt.Fprintf(sb, "%-6d %-5d %-5d %10.4g %10.4g %10.4g  %-8s\n",
			sp.Task, sp.Job, sp.Node, sp.Start, sp.Finish, sp.Finish-sp.Start, gate)
	}
	length := forensics.PathLength(path)
	check := "OK"
	if err := forensics.ValidatePath(path); err != nil {
		check = err.Error()
	} else if path[0].Gate == forensics.GateRelease &&
		path[0].Span.Start == j.Release {
		if diff := length - j.Makespan(); diff > 1e-9 || diff < -1e-9 {
			check = fmt.Sprintf("FAIL: length %g != makespan %g", length, j.Makespan())
		}
	}
	fmt.Fprintf(sb, "critical path length %.6g, makespan %.6g — %s\n",
		length, j.Makespan(), check)

	reports, err := m.Attribution(key)
	if err != nil {
		return err
	}
	fmt.Fprintf(sb, "\nper-node attribution:\n")
	fmt.Fprintf(sb, "%-5s %-4s %10s %10s %10s %10s %10s %7s %10s\n",
		"node", "core", "pred-wait", "core-wait", "fetch", "exec", "slack", "ways", "etm-saved")
	for _, r := range reports {
		ways := ""
		if r.Planned > 0 || r.Granted > 0 {
			ways = fmt.Sprintf("%d/%d", r.Granted, r.Planned)
		}
		fmt.Fprintf(sb, "%-5d %-4d %10.4g %10.4g %10.4g %10.4g %10.4g %7s %10.4g\n",
			r.Node, r.Core, r.PredWait, r.CoreWait, r.Fetch, r.Exec, slack[r.Node], ways, r.ETMSaved)
	}
	return nil
}

// timeline draws an ASCII per-core Gantt of the focus job's window. Focus
// spans render as letters (cycling by dispatch order, see the legend);
// other jobs' spans render as '·'.
func timeline(sb *strings.Builder, m *forensics.Model, key forensics.JobKey, width int) {
	j, _ := m.Job(key)
	t0, t1 := j.Release, j.Finish
	if width < 8 || t1 <= t0 {
		return
	}
	marker := make(map[*forensics.Span]byte)
	legend := make([]string, 0, len(j.Spans))
	for i, id := range j.Nodes() {
		c := byte('a' + i%26)
		marker[j.Spans[id]] = c
		if i < 26 {
			legend = append(legend, fmt.Sprintf("%c=n%d", c, id))
		}
	}
	fmt.Fprintf(sb, "\ntimeline [%.4g, %.4g]:\n", t0, t1)
	for _, core := range m.Cores() {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, sp := range m.Spans() {
			if sp.Core != core || sp.Finish <= t0 || sp.Start >= t1 {
				continue
			}
			ch, focus := marker[sp]
			if !focus {
				ch = '.'
			}
			lo := int(float64(width) * (sp.Start - t0) / (t1 - t0))
			hi := int(float64(width) * (sp.Finish - t0) / (t1 - t0))
			for i := max(lo, 0); i <= hi && i < width; i++ {
				if row[i] == ' ' || focus {
					row[i] = ch
				}
			}
		}
		fmt.Fprintf(sb, "core %2d |%s|\n", core, string(row))
	}
	if len(legend) > 0 {
		fmt.Fprintf(sb, "  legend: %s\n", strings.Join(legend, " "))
	}
}

// wayOccupancy prints per-cluster way-assignment statistics.
func wayOccupancy(sb *strings.Builder, m *forensics.Model) {
	clusters := m.Clusters()
	if len(clusters) == 0 {
		return
	}
	fmt.Fprintf(sb, "\nway occupancy (assigned ways per cluster):\n")
	for _, cl := range clusters {
		pts := m.WayTimeline(cl)
		lo, hi, sum, n := -1, -1, 0, 0
		for _, pt := range pts {
			if pt.Assigned < 0 {
				continue
			}
			if lo < 0 || pt.Assigned < lo {
				lo = pt.Assigned
			}
			if pt.Assigned > hi {
				hi = pt.Assigned
			}
			sum += pt.Assigned
			n++
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(sb, "  cluster %d: %d samples, min %d, max %d, mean %.1f\n",
			cl, n, lo, hi, float64(sum)/float64(n))
	}
}

// missChains prints the root-cause chain of every missed job.
func missChains(sb *strings.Builder, m *forensics.Model) {
	chains := m.MissChains()
	if len(chains) == 0 {
		return
	}
	fmt.Fprintf(sb, "\ndeadline misses (%d):\n", len(chains))
	for _, mc := range chains {
		fmt.Fprintf(sb, "  %v late by %.4g: path", mc.Job.Key, mc.Lateness)
		for _, st := range mc.Path {
			fmt.Fprintf(sb, " n%d[%s]", st.Span.Node, st.Gate)
		}
		sb.WriteByte('\n')
		for _, r := range mc.TopWaits {
			fmt.Fprintf(sb, "    n%d waited %.4g (pred %.4g, core %.4g)\n",
				r.Node, r.PredWait+r.CoreWait, r.PredWait, r.CoreWait)
		}
	}
}

// writeChrome converts the dispatch spans into a Chrome trace_event file:
// one complete ("X") event per span, pid = task, tid = core.
func writeChrome(path string, m *forensics.Model) error {
	spans := append([]*forensics.Span(nil), m.Spans()...)
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
	var sb strings.Builder
	sb.WriteString(`{"traceEvents":[`)
	for i, sp := range spans {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb,
			`{"name":"t%d.j%d.n%d","ph":"X","ts":%g,"dur":%g,"pid":%d,"tid":%d,"args":{"fetch":%g,"exec":%g,"ways":%d}}`,
			sp.Task, sp.Job, sp.Node, sp.Start*1000, (sp.Finish-sp.Start)*1000,
			sp.Task, sp.Core, sp.Fetch, sp.Exec, sp.Granted)
	}
	sb.WriteString(`],"displayTimeUnit":"ms"}`)
	sb.WriteByte('\n')
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// Command l15sim runs RV32I + L1.5-extension assembly programs on the
// cycle-approximate SoC simulator. Each -program flag loads one source file
// onto the next core (all cores share one identity-mapped address space by
// default); without any program a built-in producer/consumer demo of the
// §4.3 programming model runs on two cores of cluster 0.
//
// Usage:
//
//	l15sim [-program file.s]... [-max N] [-stats]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"l15cache/internal/isa"
	"l15cache/internal/soc"
)

type programList []string

func (p *programList) String() string { return fmt.Sprint(*p) }
func (p *programList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

const demoProducer = `
	# §4.3 programming model, producer side.
	li a0, 4
	demand a0          # kernel: apply 4 L1.5 ways
wait:
	supply a1
	beqz a1, wait
	ip_set a1          # inclusive: stores fill the L1.5
	li t0, 0x4000      # write 64 words of dependent data
	li t1, 64
	li t2, 1
wloop:
	sw t2, 0(t0)
	addi t0, t0, 4
	addi t2, t2, 1
	addi t1, t1, -1
	bnez t1, wloop
	gv_set a1          # publish to the cluster
	li t0, 0x7000      # raise the ready flag
	li t1, 1
	sw t1, 0(t0)
	ebreak
`

const demoConsumer = `
	# §4.3 programming model, consumer side.
	li t0, 0x7000
spin:
	lw t1, 0(t0)
	beqz t1, spin
	li t0, 0x4000      # sum the dependent data
	li t1, 64
	li a0, 0
rloop:
	lw t2, 0(t0)
	add a0, a0, t2
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, rloop
	ebreak
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("l15sim: ")

	var programs programList
	flag.Var(&programs, "program", "assembly source file (repeatable, one per core)")
	maxInstrs := flag.Uint64("max", 10_000_000, "instruction budget per core")
	stats := flag.Bool("stats", false, "print cache and pipeline statistics")
	width := flag.Int("width", 1, "core issue width (2 enables the §3.3 dual-issue front end)")
	list := flag.Bool("list", false, "print the disassembly of each program before running")
	flag.Parse()

	sources := []string{demoProducer, demoConsumer}
	names := []string{"demo-producer", "demo-consumer"}
	if len(programs) > 0 {
		sources = nil
		names = nil
		for _, path := range programs {
			src, err := os.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			sources = append(sources, string(src))
			names = append(names, path)
		}
	}

	cfg := soc.DefaultConfig()
	if *width > 1 {
		cfg.IssueWidth = *width
		cfg.MemPorts = 2
	}
	s, err := soc.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if len(sources) > len(s.Cores) {
		log.Fatalf("%d programs for %d cores", len(sources), len(s.Cores))
	}
	pt := s.IdentityPageTable(1)
	base := uint32(0x1000)
	for i, src := range sources {
		n, err := s.LoadProgram(base, src)
		if err != nil {
			log.Fatalf("%s: %v", names[i], err)
		}
		if err := s.SetPageTable(i, pt); err != nil {
			log.Fatal(err)
		}
		s.StartCore(i, base, 0x8000+uint32(i)*0x1000)
		fmt.Printf("core %d: %s (%d words at %#x)\n", i, names[i], n, base)
		if *list {
			words, err := isa.Assemble(src, base)
			if err == nil {
				fmt.Print(isa.Disassemble(words, base))
			}
		}
		base += uint32(4*n) + 0x100
	}
	for i := len(sources); i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}

	trap, err := s.Run(*maxInstrs, nil)
	if err != nil {
		log.Fatal(err)
	}
	if trap.Kind != 0 {
		fmt.Printf("stopped by trap: %v at pc %#x (%s)\n", trap.Kind, trap.PC, trap.Info)
	}
	if len(s.UART) > 0 {
		fmt.Printf("console (%#x):\n%s", cfg.UARTAddr, string(s.UART))
		if s.UART[len(s.UART)-1] != '\n' {
			fmt.Println()
		}
	}
	for i := range sources {
		c := s.Cores[i]
		fmt.Printf("core %d: halted=%v cycles=%d instret=%d a0=%d (%#x)\n",
			i, c.Halted, c.Cycles, c.Stats.Instret, c.Regs[10], c.Regs[10])
	}
	if *stats {
		for i := range sources {
			c := s.Cores[i]
			fmt.Printf("core %d: load-use stalls %d, branch flushes %d, fetch stall %d, mem stall %d, l15 ops %d, dual groups %d\n",
				i, c.Stats.LoadUseStalls, c.Stats.BranchFlushes,
				c.Stats.FetchStall, c.Stats.MemStall, c.Stats.L15Ops, c.Stats.DualIssued)
		}
		for _, cl := range s.Clusters {
			for core, st := range cl.L15.Stats {
				if st.Hits+st.Misses == 0 {
					continue
				}
				fmt.Printf("cluster %d core %d: L1.5 hits %d (global %d), misses %d\n",
					cl.ID, core, st.Hits, st.GlobalHits, st.Misses)
			}
		}
		fmt.Printf("L2: hits %d, misses %d\n", s.L2.Stats.Hits, s.L2.Stats.Misses)
	}
}

// Command l15sim runs RV32I + L1.5-extension assembly programs on the
// cycle-approximate SoC simulator. Each -program flag loads one source file
// onto the next core (all cores share one identity-mapped address space by
// default); without any program a built-in producer/consumer demo of the
// §4.3 programming model runs on two cores of cluster 0.
//
// Usage:
//
//	l15sim [-program file.s]... [-max N] [-stats] [-kernel events|ticked]
//	       [-metrics out.json] [-trace out.json] [-flight out.jsonl]
//	       [-telemetry out.jsonl] [-http addr] [-pprof addr]
//	       [-cpuprofile out.pb.gz] [-memprofile out.pb.gz] [-version]
//
// -metrics serialises the metrics registry (L1/L1.5/L2/TLB counters, SDU
// latency histograms) as JSON; -trace writes a Chrome trace_event file for
// chrome://tracing; -flight writes a flight recording of every Walloc way
// reassignment and gv_set (dissect it with cmd/explain); -telemetry
// writes the wall-clock sampler's time series as JSONL. -http serves the
// live-inspection endpoint (/metrics Prometheus exposition or JSON,
// /metrics/history, /metrics/stream, /events SSE stream of flight events,
// /dashboard, /healthz) during and after the run — the process then stays
// up until interrupted. An interrupt (Ctrl-C) at any point still flushes
// the requested artifact files and drains live SSE clients through a
// graceful server shutdown before exiting. -pprof serves net/http/pprof
// on the given address for live profiling, and -cpuprofile/-memprofile
// write offline profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"l15cache/internal/cli"
	"l15cache/internal/flight"
	"l15cache/internal/isa"
	"l15cache/internal/kernel"
	"l15cache/internal/metrics"
	"l15cache/internal/soc"
)

type programList []string

func (p *programList) String() string { return fmt.Sprint(*p) }
func (p *programList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("l15sim: ")

	var programs programList
	flag.Var(&programs, "program", "assembly source file (repeatable, one per core)")
	maxInstrs := flag.Uint64("max", 10_000_000, "instruction budget per core")
	stats := flag.Bool("stats", false, "print cache and pipeline statistics")
	width := flag.Int("width", 1, "core issue width (2 enables the §3.3 dual-issue front end)")
	list := flag.Bool("list", false, "print the disassembly of each program before running")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	flightOut := flag.String("flight", "", "write a flight recording (.jsonl or .bin) to this file")
	httpAddr := flag.String("http", "", "serve /metrics, /events (SSE) and /healthz on this address")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	kernelFlag := flag.String("kernel", "events", "simulator kernel: events (time-skipping) or ticked (legacy; identical results)")
	showVersion := cli.VersionFlag()
	startTelemetry := cli.TelemetryFlag()
	flag.Parse()
	showVersion()
	flushTelemetry := startTelemetry()

	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		log.Fatal(err)
	}

	var rec *flight.Recorder
	if *flightOut != "" || *httpAddr != "" {
		rec = flight.New()
	}
	var srv *flight.Server
	if *httpAddr != "" {
		srv = &flight.Server{Recorder: rec}
	}
	// flush writes every requested artifact; it runs on the normal exit
	// path and again from the interrupt handler, so a Ctrl-C mid-run
	// still leaves complete (if shorter) files behind.
	flush := func() error {
		if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
			return err
		}
		if err := flushTelemetry(); err != nil {
			return err
		}
		if *flightOut != "" {
			return flight.WriteFile(*flightOut, rec.Snapshot())
		}
		return nil
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		log.Print("interrupted; flushing outputs")
		if err := flush(); err != nil {
			log.Print(err)
		}
		if srv != nil {
			// Drain SSE clients and finish in-flight requests before the
			// process goes away.
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				log.Print(err)
			}
			cancel()
		}
		os.Exit(130)
	}()
	if srv != nil {
		go func() {
			err := srv.ListenAndServe(*httpAddr, func(addr string) {
				log.Printf("live inspection on http://%s/ (/metrics, /dashboard, /events, /healthz)", addr)
			})
			if err != nil {
				log.Printf("http server: %v", err)
			}
		}()
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	sources := []string{soc.DemoProducer, soc.DemoConsumer}
	names := []string{"demo-producer", "demo-consumer"}
	if len(programs) > 0 {
		sources = nil
		names = nil
		for _, path := range programs {
			src, err := os.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			sources = append(sources, string(src))
			names = append(names, path)
		}
	}

	cfg := soc.DefaultConfig()
	cfg.Kernel = kern
	if *width > 1 {
		cfg.IssueWidth = *width
		cfg.MemPorts = 2
	}
	s, err := soc.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s.Instrument(metrics.Default, metrics.Trace)
	s.FlightRecord(rec)
	if len(sources) > len(s.Cores) {
		log.Fatalf("%d programs for %d cores", len(sources), len(s.Cores))
	}
	pt := s.IdentityPageTable(1)
	base := uint32(0x1000)
	for i, src := range sources {
		n, err := s.LoadProgram(base, src)
		if err != nil {
			log.Fatalf("%s: %v", names[i], err)
		}
		if err := s.SetPageTable(i, pt); err != nil {
			log.Fatal(err)
		}
		s.StartCore(i, base, 0x8000+uint32(i)*0x1000)
		fmt.Printf("core %d: %s (%d words at %#x)\n", i, names[i], n, base)
		if *list {
			words, err := isa.Assemble(src, base)
			if err == nil {
				fmt.Print(isa.Disassemble(words, base))
			}
		}
		base += uint32(4*n) + 0x100
	}
	for i := len(sources); i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}

	trap, err := s.Run(*maxInstrs, nil)
	if err != nil {
		log.Fatal(err)
	}
	if trap.Kind != 0 {
		fmt.Printf("stopped by trap: %v at pc %#x (%s)\n", trap.Kind, trap.PC, trap.Info)
	}
	if len(s.UART) > 0 {
		fmt.Printf("console (%#x):\n%s", cfg.UARTAddr, string(s.UART))
		if s.UART[len(s.UART)-1] != '\n' {
			fmt.Println()
		}
	}
	for i := range sources {
		c := s.Cores[i]
		fmt.Printf("core %d: halted=%v cycles=%d instret=%d a0=%d (%#x)\n",
			i, c.Halted, c.Cycles, c.Stats.Instret, c.Regs[10], c.Regs[10])
	}
	if *stats {
		for i := range sources {
			c := s.Cores[i]
			fmt.Printf("core %d: load-use stalls %d, branch flushes %d, fetch stall %d, mem stall %d, l15 ops %d, dual groups %d\n",
				i, c.Stats.LoadUseStalls, c.Stats.BranchFlushes,
				c.Stats.FetchStall, c.Stats.MemStall, c.Stats.L15Ops, c.Stats.DualIssued)
		}
		for _, cl := range s.Clusters {
			for core, st := range cl.L15.Stats {
				if st.Hits+st.Misses == 0 {
					continue
				}
				fmt.Printf("cluster %d core %d: L1.5 hits %d (global %d), misses %d\n",
					cl.ID, core, st.Hits, st.GlobalHits, st.Misses)
			}
		}
		fmt.Printf("L2: hits %d, misses %d\n", s.L2.Stats.Hits, s.L2.Stats.Misses)
	}

	if err := flush(); err != nil {
		log.Fatal(err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *httpAddr != "" {
		log.Print("run finished; still serving -http (Ctrl-C to exit)")
		// Either receiver of sig may win; all artifacts are already
		// flushed, so both paths are clean exits.
		<-sig
	}
}

// Command sideeffects regenerates Fig. 8(c): the §5.3 side-effects analysis
// of the proposed system under high demand — the L1.5 way utilisation and
// the mis-configuration ratio φ for 8/16-core SoCs at 80% and 100% target
// utilisation.
//
// Usage:
//
//	sideeffects [-trials N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"

	"l15cache/internal/experiments"
	"l15cache/internal/metrics"
	"l15cache/internal/rtsim"
	"l15cache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sideeffects: ")

	trials := flag.Int("trials", 50, "trials per configuration")
	seed := flag.Int64("seed", 1, "base RNG seed")
	csv := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	flag.Parse()

	cfg := experiments.SideEffectsConfig{
		Trials: *trials,
		Seed:   *seed,
		RT:     rtsim.DefaultConfig(),
		Set:    workload.DefaultTaskSetParams(),
	}
	pts, err := experiments.RunSideEffects(cfg, []int{8, 16}, []float64{0.8, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		fmt.Print(experiments.SideEffectsCSV(pts))
	} else {
		fmt.Print(experiments.FormatSideEffects(pts))
	}
	if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
		log.Fatal(err)
	}
}

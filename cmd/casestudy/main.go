// Command casestudy regenerates Fig. 8(a,b): the success ratio of the
// proposed system and the three baselines (CMP|L1, CMP|L2, CMP|Shared-L1)
// on PARSEC-like periodic DAG task sets, swept over the target utilisation.
//
// Usage:
//
//	casestudy [-cores 8|16] [-trials N] [-step pct] [-seed S]
//	          [-workers N] [-checkpoint file.json] [-memo] [-memo-dir DIR]
//	          [-kernel events|ticked]
//
// Trials fan out on the internal/runner pool: -workers caps the
// concurrency (0 = NumCPU) without changing any result, -checkpoint makes
// an interrupted run (Ctrl-C) resumable at trial granularity, and
// -memo/-memo-dir enable the content-addressed trial result cache
// (internal/memo): a -memo-dir shared between runs serves every
// previously computed trial from disk, byte-identically. -flight
// additionally records one representative trial (the configured core
// count, 60% utilisation, proposed system) into a flight recording that
// cmd/explain can dissect. An interrupt still flushes the partial
// -metrics/-trace/-flight files before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"l15cache/internal/cli"
	"l15cache/internal/experiments"
	"l15cache/internal/flight"
	"l15cache/internal/kernel"
	"l15cache/internal/memo"
	"l15cache/internal/metrics"
	"l15cache/internal/rtsim"
	"l15cache/internal/runner"
	"l15cache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casestudy: ")

	cores := flag.Int("cores", 8, "core count (8 for Fig. 8(a), 16 for Fig. 8(b))")
	trials := flag.Int("trials", 200, "trials per utilisation point")
	step := flag.Float64("step", 0.05, "utilisation step")
	seed := flag.Int64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 0, "max concurrent trials (0 = NumCPU; never changes results)")
	checkpoint := flag.String("checkpoint", "", "JSON checkpoint file; an interrupted sweep resumes from it")
	memoFlag := flag.Bool("memo", false, "enable the in-memory trial result cache (never changes results)")
	memoDir := flag.String("memo-dir", "", "on-disk trial cache directory, shareable across runs (implies -memo)")
	csv := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	partitioned := flag.Bool("partitioned", false, "partition tasks to clusters instead of global scheduling")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	flightOut := flag.String("flight", "", "record one representative trial to this flight file (.jsonl or .bin)")
	kernelFlag := flag.String("kernel", "events", "simulator kernel: events (time-skipping) or ticked (legacy; identical results)")
	showVersion := cli.VersionFlag()
	startTelemetry := cli.TelemetryFlag()
	flag.Parse()
	showVersion()
	flushTelemetry := startTelemetry()

	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()

	var rec *flight.Recorder
	if *flightOut != "" {
		rec = flight.New()
	}
	// flush writes every requested artifact; die runs it before a fatal
	// exit so an interrupted sweep (Ctrl-C → runner.Canceled) still
	// leaves complete partial files behind.
	flush := func() error {
		if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
			return err
		}
		if err := flushTelemetry(); err != nil {
			return err
		}
		if *flightOut != "" {
			return flight.WriteFile(*flightOut, rec.Snapshot())
		}
		return nil
	}
	die := func(err error) {
		if werr := flush(); werr != nil {
			log.Print(werr)
		}
		log.Fatal(err)
	}

	cfg := experiments.DefaultCaseStudyConfig(*cores)
	cfg.Trials = *trials
	cfg.Seed = *seed
	cfg.RT.Partitioned = *partitioned
	cfg.RT.Kernel = kern
	cache, err := memo.FromFlags(*memoFlag, *memoDir)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Run = runner.Options{Workers: *workers, Checkpoint: *checkpoint, Memo: cache}

	if rec != nil {
		if err := recordTrial(*seed, *cores, rec, kern); err != nil {
			die(err)
		}
	}

	var utils []float64
	for u := 0.40; u <= 0.90+1e-9; u += *step {
		utils = append(utils, u)
	}
	res, err := experiments.RunCaseStudy(ctx, cfg, utils)
	if err != nil {
		die(err)
	}
	if *csv {
		fmt.Print(res.CSV())
	} else {
		fmt.Print(res.Format())
	}
	if err := flush(); err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		log.Printf("wrote %s (%d events, %d dropped)", *flightOut, rec.Len(), rec.Dropped())
	}
}

// recordTrial runs one representative case-study trial (60% utilisation,
// proposed system) with the flight recorder attached. The recording is a
// pure function of seed and cores.
func recordTrial(seed int64, cores int, rec *flight.Recorder, kern kernel.Mode) error {
	r := rand.New(rand.NewSource(seed))
	set := workload.DefaultTaskSetParams()
	set.TargetUtilization = 0.6 * float64(cores)
	tasks, err := workload.TaskSet(r, set)
	if err != nil {
		return err
	}
	cfg := rtsim.DefaultConfig()
	cfg.Cores = cores
	cfg.Recorder = rec
	cfg.Kernel = kern
	_, err = rtsim.Run(tasks, rtsim.KindProp, cfg)
	return err
}

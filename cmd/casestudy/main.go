// Command casestudy regenerates Fig. 8(a,b): the success ratio of the
// proposed system and the three baselines (CMP|L1, CMP|L2, CMP|Shared-L1)
// on PARSEC-like periodic DAG task sets, swept over the target utilisation.
//
// Usage:
//
//	casestudy [-cores 8|16] [-trials N] [-step pct] [-seed S]
//	          [-workers N] [-checkpoint file.json]
//
// Trials fan out on the internal/runner pool: -workers caps the
// concurrency (0 = NumCPU) without changing any result, -checkpoint makes
// an interrupted run (Ctrl-C) resumable at trial granularity.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"l15cache/internal/experiments"
	"l15cache/internal/metrics"
	"l15cache/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casestudy: ")

	cores := flag.Int("cores", 8, "core count (8 for Fig. 8(a), 16 for Fig. 8(b))")
	trials := flag.Int("trials", 200, "trials per utilisation point")
	step := flag.Float64("step", 0.05, "utilisation step")
	seed := flag.Int64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 0, "max concurrent trials (0 = NumCPU; never changes results)")
	checkpoint := flag.String("checkpoint", "", "JSON checkpoint file; an interrupted sweep resumes from it")
	csv := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	partitioned := flag.Bool("partitioned", false, "partition tasks to clusters instead of global scheduling")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	flag.Parse()

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()

	cfg := experiments.DefaultCaseStudyConfig(*cores)
	cfg.Trials = *trials
	cfg.Seed = *seed
	cfg.RT.Partitioned = *partitioned
	cfg.Run = runner.Options{Workers: *workers, Checkpoint: *checkpoint}

	var utils []float64
	for u := 0.40; u <= 0.90+1e-9; u += *step {
		utils = append(utils, u)
	}
	res, err := experiments.RunCaseStudy(ctx, cfg, utils)
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		fmt.Print(res.CSV())
	} else {
		fmt.Print(res.Format())
	}
	if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
		log.Fatal(err)
	}
}

// Command daggen generates the synthetic DAG tasks of §5.1 and inspects
// them: structural summary, Algorithm 1's way allocation and priorities,
// and optional Graphviz output.
//
// Usage:
//
//	daggen [-seed S] [-u U] [-p P] [-cpr R] [-dot] [-schedule]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"l15cache/internal/cli"
	"l15cache/internal/dag"
	"l15cache/internal/metrics"
	"l15cache/internal/sched"
	"l15cache/internal/schedsim"
	"l15cache/internal/trace"
	"l15cache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daggen: ")

	seed := flag.Int64("seed", 1, "RNG seed")
	u := flag.Float64("u", 0.8, "task utilisation U_i")
	p := flag.Int("p", 15, "maximum layer width p")
	cpr := flag.Float64("cpr", 0.1, "critical path ratio")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of the summary")
	schedule := flag.Bool("schedule", false, "run Alg. 1 and print the configuration")
	gantt := flag.Bool("gantt", false, "simulate on 8 cores and print the execution timeline")
	csv := flag.Bool("csv", false, "with -gantt: emit the timeline as CSV instead")
	jsonOut := flag.Bool("json", false, "emit the task as JSON instead of the summary")
	load := flag.String("load", "", "load a task from a JSON file instead of generating one")
	zeta := flag.Int("zeta", 16, "L1.5 ways ζ for -schedule")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	showVersion := cli.VersionFlag()
	startTelemetry := cli.TelemetryFlag()
	flag.Parse()
	showVersion()
	flushTelemetry := startTelemetry()
	defer func() {
		if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
			log.Fatal(err)
		}
		if err := flushTelemetry(); err != nil {
			log.Fatal(err)
		}
	}()

	params := workload.DefaultSynthParams()
	params.Utilization = *u
	params.MaxWidth = *p
	params.CPR = *cpr

	var task *dag.Task
	if *load != "" {
		data, err := os.ReadFile(*load)
		if err != nil {
			log.Fatal(err)
		}
		task, err = dag.LoadJSON(data)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		task, err = workload.Synthetic(rand.New(rand.NewSource(*seed)), params)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut {
		data, err := json.MarshalIndent(task, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	if *dot {
		fmt.Print(task.DOT())
		return
	}

	var comm float64
	for _, e := range task.Edges {
		comm += e.Cost
	}
	fmt.Printf("task: %d nodes, %d edges, T=%.1f\n", len(task.Nodes), len(task.Edges), task.Period)
	fmt.Printf("W=%.2f (U=%.2f)  Σμ=%.2f  comp critical path=%.2f (cpr %.3f)\n",
		task.Volume(), task.Utilization(), comm,
		task.CriticalPathLength(dag.ZeroCost),
		task.CriticalPathLength(dag.ZeroCost)/task.Volume())

	if *gantt || *csv {
		prop, err := schedsim.NewProposed(task.Clone(), *zeta, 2048)
		if err != nil {
			log.Fatal(err)
		}
		tl, _, err := trace.Record(prop.Alloc, prop, schedsim.Options{Cores: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if *csv {
			fmt.Print(tl.CSV())
		} else {
			fmt.Print(tl.Gantt(0, 100))
		}
	}

	if !*schedule {
		return
	}
	res, err := sched.L15Schedule(task, *zeta, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlg. 1 with ζ=%d ways:\n", *zeta)
	fmt.Printf("%6s%10s%8s%8s%10s\n", "node", "WCET", "δ(KB)", "ways", "priority")
	for _, id := range res.PriorityOrder() {
		n := task.Node(id)
		fmt.Printf("%6d%10.3f%8.1f%8d%10d\n",
			id, n.WCET, float64(n.Data)/1024, res.LocalWays[id], n.Priority)
	}
	raw := task.CriticalPathLength(dag.RawCost)
	eff := task.CriticalPathLength(res.Model.Weight())
	fmt.Printf("\ncritical path: raw %.2f -> with L1.5 %.2f (%.1f%% shorter)\n",
		raw, eff, 100*(raw-eff)/raw)
}

// Command codecheck runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns and exits non-zero on
// any finding. It is the blocking CI gate that keeps the simulator's
// hand-written invariants — determinism, way-bitmap discipline, metrics
// atomicity, error hygiene — machine-checked:
//
//	go run ./cmd/codecheck ./...
//	go run ./cmd/codecheck -analyzers detmap,bitmask ./internal/...
//
// Findings are printed one per line as file:line:col: analyzer: message.
// A finding is suppressed by a `//lint:ignore <analyzer> <justification>`
// comment on the flagged line or the line above it; the justification is
// mandatory and an ignore without one is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"l15cache/internal/lint"
)

func main() {
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: codecheck [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codecheck:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codecheck:", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codecheck:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "codecheck: %d finding(s) across %d package(s)\n", findings, len(pkgs))
		os.Exit(1)
	}
}

// Command codecheck runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns and exits non-zero on
// any unsuppressed, unbaselined finding. It is the blocking CI gate that
// keeps the simulator's hand-written invariants — determinism (syntactic
// and interprocedural), the kernel's zero-alloc hot path and wakeup
// protocol, exhaustive FSM switches, lock discipline, way-bitmap
// hygiene, metrics atomicity, error handling — machine-checked:
//
//	go run ./cmd/codecheck ./...
//	go run ./cmd/codecheck -analyzers detmap,bitmask ./internal/...
//	go run ./cmd/codecheck -json ./... > codecheck.json
//	go run ./cmd/codecheck -sarif codecheck.sarif ./...
//	go run ./cmd/codecheck -baseline lint.baseline.json ./...
//	go run ./cmd/codecheck -baseline lint.baseline.json -update-baseline ./...
//	go run ./cmd/codecheck -ignores ./...
//	go run ./cmd/codecheck -parallel -timing ./...
//
// All packages load together so the interprocedural analyzers
// (puritycheck, hotalloc, wakeupsafe) see cross-package call chains.
// Text output prints unsuppressed findings one per line as
// file:line:col: analyzer: message; -json emits every finding —
// suppressed and baselined ones included, marked as such — as a JSON
// array with the stable schema in internal/lint.DiagnosticJSON. -sarif
// additionally writes the same findings as a SARIF 2.1.0 log to the
// given path (use - for stdout), the format GitHub code scanning
// ingests. -ignores lists every //lint:ignore directive with its file,
// analyzers and justification, the audit trail of what the suppressions
// hide.
//
// A finding is suppressed by a `//lint:ignore <analyzer> <justification>`
// comment on the flagged line or the line above it; the justification is
// mandatory and an ignore without one is itself reported. -baseline
// points at a committed accepted-debt file (see internal/lint/baseline.go
// for the line-independent key scheme): findings it covers are reported
// in machine output but do not block; entries no current finding matches
// are reported as stale on stderr (prune with -update-baseline).
// -update-baseline rewrites that file from the current findings and
// exits 0 — the one-command flow for accepting new debt deliberately.
//
// -parallel fans the per-package analyzer passes out over the
// deterministic worker pool in internal/runner (one package per shard,
// index-ordered reduction — output is byte-identical to the serial run
// at any worker count); the interprocedural analyzers still run serially
// on the shared call graph. -timing prints the per-analyzer wall-time
// summary on stderr, largest first.
//
// Warning-severity findings (fingerprintcomplete's wasted-key-entropy
// direction) are printed and carried in -json/-sarif output but never
// block: the exit code is 1 only when unsuppressed, unbaselined
// error-severity findings remain, 2 on usage or load errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"l15cache/internal/cli"
	"l15cache/internal/lint"
)

func main() {
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	asJSON := flag.Bool("json", false, "emit every finding (suppressed included) as JSON on stdout")
	sarifPath := flag.String("sarif", "", "also write findings as a SARIF 2.1.0 log to this path (- for stdout)")
	baselinePath := flag.String("baseline", "", "committed accepted-debt file; findings it covers do not block")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit 0")
	ignores := flag.Bool("ignores", false, "list every //lint:ignore directive instead of running analyzers")
	parallel := flag.Bool("parallel", false, "run per-package analyzer passes on the internal/runner worker pool")
	timing := flag.Bool("timing", false, "print a per-analyzer wall-time summary on stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: codecheck [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	showVersion := cli.VersionFlag()
	flag.Parse()
	showVersion()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *updateBaseline && *baselinePath == "" {
		fatal(fmt.Errorf("-update-baseline requires -baseline <path>"))
	}

	analyzers, err := lint.ByName(*names)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	if *ignores {
		entries := lint.Ignores(pkgs)
		if entries == nil {
			entries = []lint.IgnoreEntry{}
		}
		if *asJSON {
			for i := range entries {
				entries[i].File = lint.RelPath(cwd, entries[i].File)
			}
			emitJSON(entries)
			return
		}
		for _, e := range entries {
			fmt.Printf("%s:%d: %s: %s\n", lint.RelPath(cwd, e.File), e.Line, e.Analyzers, e.Justification)
		}
		fmt.Fprintf(os.Stderr, "codecheck: %d ignore directive(s) across %d package(s)\n", len(entries), len(pkgs))
		return
	}

	var diags []lint.Diagnostic
	var timings []lint.AnalyzerTiming
	if *parallel || *timing {
		// workers 0 = runtime.NumCPU (the runner default); the serial
		// -timing path still goes through the pool with one worker so the
		// measurements come from one code path.
		workers := 0
		if !*parallel {
			workers = 1
		}
		diags, timings, err = lint.RunModuleParallel(context.Background(), pkgs, analyzers, workers)
	} else {
		diags, err = lint.RunModule(pkgs, analyzers)
	}
	if err != nil {
		fatal(err)
	}

	if *updateBaseline {
		data, err := lint.NewBaseline(diags, cwd).Marshal()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, data, 0o644); err != nil {
			fatal(err)
		}
		kept := 0
		for _, d := range diags {
			if !d.Suppressed {
				kept++
			}
		}
		fmt.Fprintf(os.Stderr, "codecheck: baseline %s rewritten with %d accepted finding(s)\n", *baselinePath, kept)
		return
	}
	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		b, err := lint.ParseBaseline(data)
		if err != nil {
			fatal(err)
		}
		b.Apply(diags, cwd)
		stale = b.Stale(diags, cwd)
	}

	blocking := 0
	baselined := 0
	warnings := 0
	for _, d := range diags {
		switch {
		case d.Suppressed:
		case d.Warning:
			warnings++
		case d.Baselined:
			baselined++
		default:
			blocking++
		}
	}
	if *asJSON {
		emitJSON(lint.ToJSON(diags, cwd))
	} else {
		for _, d := range diags {
			if d.Suppressed || d.Baselined {
				continue
			}
			d.Pos.Filename = lint.RelPath(cwd, d.Pos.Filename)
			if d.Warning {
				fmt.Printf("%s [warning]\n", d)
			} else {
				fmt.Println(d)
			}
		}
	}
	if *sarifPath != "" {
		data, err := lint.ToSARIF(diags, analyzers, cwd)
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *sarifPath == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				fatal(err)
			}
		} else if err := os.WriteFile(*sarifPath, data, 0o644); err != nil {
			fatal(err)
		}
	}
	if *timing {
		sort.SliceStable(timings, func(i, j int) bool {
			return timings[i].Duration > timings[j].Duration
		})
		fmt.Fprintln(os.Stderr, "codecheck: per-analyzer wall time (largest first):")
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "  %-20s %v\n", t.Analyzer, t.Duration)
		}
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "codecheck: %d stale baseline entr%s (no current finding matches; prune with -update-baseline):\n",
			len(stale), plural(len(stale), "y", "ies"))
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "  %s: %s: %s (count %d)\n", e.Analyzer, e.File, e.Message, e.Count)
		}
	}
	if warnings > 0 {
		fmt.Fprintf(os.Stderr, "codecheck: %d warning(s) (non-blocking)\n", warnings)
	}
	if baselined > 0 {
		fmt.Fprintf(os.Stderr, "codecheck: %d baselined finding(s) tolerated\n", baselined)
	}
	if blocking > 0 {
		fmt.Fprintf(os.Stderr, "codecheck: %d finding(s) across %d package(s)\n", blocking, len(pkgs))
		os.Exit(1)
	}
}

// plural picks the singular or plural suffix for n.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// emitJSON writes v to stdout as indented JSON, never emitting JSON null
// for an empty slice (the schema promises an array).
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "codecheck:", err)
	os.Exit(2)
}

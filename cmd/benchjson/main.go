// Command benchjson converts `go test -bench` text output into a stable
// JSON document, and compares two such documents with per-metric relative
// tolerances. It is the benchmark-regression gate of the CI pipeline:
//
//	go test -bench=. -benchtime=1x -count=3 -benchmem -run='^$' . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_ci.json
//	benchjson -compare BENCH_baseline.json -against BENCH_ci.json \
//	          -gate "ns/op=0.50,allocs/op=0.10" -fail-on-regress
//
// Repeated -count samples of one benchmark are merged best-of-N (per-metric
// minimum), which filters the load spikes of shared runners; the wall-time
// gate is therefore wide (a 2x slowdown still trips it) while the
// deterministic allocs/op gate stays tight.
//
// -gate lists unit=tolerance pairs gated independently (ns/op, allocs/op,
// B/op, any custom unit the benchmarks report); without it only ns/op is
// gated at -tolerance. By default -compare exits 0 and only warns on
// deviations beyond tolerance, so a noisy runner surfaces drift in the job
// log without blocking; -fail-on-regress makes the gate blocking — each
// regression becomes a GitHub Actions `::error` annotation (on Actions
// runners, or with -github) and the exit status is 1, failing the job.
// -strict is the older blocking spelling and keeps warning-level
// annotations.
//
// -overhead OFF:ON gates an instrumentation pair within a single run:
//
//	benchjson -overhead FlightRecorderOff:FlightRecorderOn -against BENCH_ci.json -fail-on-regress
//
// flags the pair when the ON half exceeds the OFF half by more than
// -overhead-tolerance (default 5%). Both halves come from the same run, so
// host speed differences cancel out. The same blocking rules apply: with
// -fail-on-regress an exceeded overhead budget is a `::error` annotation
// and a nonzero exit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"l15cache/internal/cli"
)

// Result is one benchmark line: the name with the "Benchmark" prefix and
// "-P" GOMAXPROCS suffix stripped, the iteration count, and every reported
// value keyed by its unit (ns/op, B/op, allocs/op, custom units).
type Result struct {
	Name   string             `json:"name"`
	Iters  int64              `json:"iters"`
	Values map[string]float64 `json:"values"`
}

// Doc is the serialised benchmark set.
type Doc struct {
	Results []Result `json:"results"`
}

// parse reads `go test -bench` output. Repeated samples of one benchmark
// (from -count=N) are merged by keeping each metric's minimum: wall-time
// metrics on shared CI runners are noisy in one direction only — load
// spikes inflate them — so best-of-N is the noise-robust statistic to
// gate on, and the deterministic metrics (allocs/op, custom ratios) are
// identical across samples anyway.
func parse(r io.Reader) (Doc, error) {
	var doc Doc
	byName := map[string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  10  123 ns/op  456 B/op  7 allocs/op
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: name, Iters: iters, Values: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Values[fields[i+1]] = v
		}
		if i, ok := byName[name]; ok {
			prev := doc.Results[i]
			if res.Iters > prev.Iters {
				prev.Iters = res.Iters
			}
			for unit, v := range res.Values {
				if old, ok := prev.Values[unit]; !ok || v < old {
					prev.Values[unit] = v
				}
			}
			doc.Results[i] = prev
			continue
		}
		byName[name] = len(doc.Results)
		doc.Results = append(doc.Results, res)
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	sort.Slice(doc.Results, func(i, j int) bool { return doc.Results[i].Name < doc.Results[j].Name })
	return doc, nil
}

func load(path string) (Doc, error) {
	var doc Doc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	err = json.Unmarshal(data, &doc)
	return doc, err
}

func index(d Doc) map[string]Result {
	m := make(map[string]Result, len(d.Results))
	for _, r := range d.Results {
		m[r.Name] = r
	}
	return m
}

// gate is one unit=tolerance pair of the -gate flag: the metric unit as
// reported on the benchmark line and the relative growth tolerated before
// the comparison counts a regression.
type gate struct {
	unit string
	tol  float64
}

// parseGates parses the -gate flag ("ns/op=0.25,allocs/op=0.10"). An empty
// spec falls back to gating ns/op alone at defTol, the pre-per-metric
// behaviour.
func parseGates(spec string, defTol float64) ([]gate, error) {
	if strings.TrimSpace(spec) == "" {
		return []gate{{unit: "ns/op", tol: defTol}}, nil
	}
	var out []gate
	for _, part := range strings.Split(spec, ",") {
		unit, tolStr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || unit == "" {
			return nil, fmt.Errorf("gate %q: want unit=tolerance", part)
		}
		tol, err := strconv.ParseFloat(tolStr, 64)
		if err != nil || tol < 0 {
			return nil, fmt.Errorf("gate %q: tolerance must be a non-negative number", part)
		}
		out = append(out, gate{unit: unit, tol: tol})
	}
	return out, nil
}

// compare reports per-metric deviations beyond each gate's tolerance and
// returns the number of regressions (metric grew past its tolerance). When
// annotateCmd is non-empty ("warning" or "error") it additionally emits one
// GitHub Actions workflow command per regression, which the Actions runner
// surfaces in the PR checks UI — as a yellow annotation on the warn-only
// gate, or a red one on the blocking (-fail-on-regress) gate.
func compare(w io.Writer, baseline, current Doc, gates []gate, annotateCmd string) int {
	base := index(baseline)
	regressions := 0
	for _, cur := range current.Results {
		ref, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(w, "NEW      %-28s %12.0f ns/op (no baseline)\n", cur.Name, cur.Values["ns/op"])
			continue
		}
		for _, g := range gates {
			b := ref.Values[g.unit]
			if b <= 0 {
				continue // metric absent (or zero) in baseline: nothing to gate against
			}
			c, ok := cur.Values[g.unit]
			if !ok {
				fmt.Fprintf(w, "NOVALUE  %-28s %10s (in baseline, not in current run)\n", cur.Name, g.unit)
				continue
			}
			delta := (c - b) / b
			switch {
			case delta > g.tol:
				regressions++
				fmt.Fprintf(w, "SLOWER   %-28s %10s %12.0f -> %12.0f (%+.1f%%, tolerance %.0f%%)\n",
					cur.Name, g.unit, b, c, 100*delta, 100*g.tol)
				if annotateCmd != "" {
					fmt.Fprintf(w, "::%s title=Benchmark regression: %s::%s %s grew %.0f -> %.0f (%+.1f%%, tolerance %.0f%%) against BENCH_baseline.json\n",
						annotateCmd, cur.Name, cur.Name, g.unit, b, c, 100*delta, 100*g.tol)
				}
			case delta < -g.tol:
				fmt.Fprintf(w, "FASTER   %-28s %10s %12.0f -> %12.0f (%+.1f%%)\n", cur.Name, g.unit, b, c, 100*delta)
			default:
				fmt.Fprintf(w, "OK       %-28s %10s %12.0f -> %12.0f (%+.1f%%)\n", cur.Name, g.unit, b, c, 100*delta)
			}
		}
	}
	for _, ref := range baseline.Results {
		if _, ok := index(current)[ref.Name]; !ok {
			fmt.Fprintf(w, "MISSING  %-28s (in baseline, not in current run)\n", ref.Name)
		}
	}
	return regressions
}

// overhead gates an instrumentation on/off pair within one run: it reports
// how much slower onName is than offName (ns/op) and returns true when the
// overhead exceeds tol. Unlike compare, both halves come from the same
// document, so runner-to-runner noise cancels. annotateCmd works as in
// compare: "" for no workflow commands, "warning" or "error" for the
// warn-only and blocking gates respectively.
func overhead(w io.Writer, doc Doc, offName, onName string, tol float64, annotateCmd string) (bool, error) {
	res := index(doc)
	off, ok := res[offName]
	if !ok {
		return false, fmt.Errorf("overhead pair: %q not in results", offName)
	}
	on, ok := res[onName]
	if !ok {
		return false, fmt.Errorf("overhead pair: %q not in results", onName)
	}
	b, c := off.Values["ns/op"], on.Values["ns/op"]
	if b <= 0 {
		return false, fmt.Errorf("overhead pair: %q has no ns/op", offName)
	}
	delta := (c - b) / b
	if delta > tol {
		fmt.Fprintf(w, "OVERHEAD %s -> %s: %12.0f -> %12.0f ns/op (%+.1f%%, tolerance %.0f%%)\n",
			offName, onName, b, c, 100*delta, 100*tol)
		if annotateCmd != "" {
			fmt.Fprintf(w, "::%s title=Instrumentation overhead: %s::%s costs %+.1f%% over %s (tolerance %.0f%%)\n",
				annotateCmd, onName, onName, 100*delta, offName, 100*tol)
		}
		return true, nil
	}
	fmt.Fprintf(w, "OVERHEAD %s -> %s: %12.0f -> %12.0f ns/op (%+.1f%%) within %.0f%%\n",
		offName, onName, b, c, 100*delta, 100*tol)
	return false, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	in := flag.String("in", "", "go test -bench output to parse ('-' or empty for stdin)")
	out := flag.String("out", "", "write parsed results as JSON to this file ('-' for stdout)")
	baselinePath := flag.String("compare", "", "baseline JSON to compare -against")
	againstPath := flag.String("against", "", "current-run JSON for -compare")
	tol := flag.Float64("tolerance", 0.20, "relative ns/op tolerance for -compare (the default gate when -gate is empty)")
	gateSpec := flag.String("gate", "",
		`comma-separated unit=tolerance gates for -compare (e.g. "ns/op=0.25,allocs/op=0.10"); empty gates ns/op at -tolerance`)
	strict := flag.Bool("strict", false, "exit 1 on regressions beyond tolerance (warning-level annotations)")
	failOnRegress := flag.Bool("fail-on-regress", false,
		"blocking gate: exit 1 on regressions beyond tolerance and annotate them as GitHub ::error")
	annotate := flag.Bool("github", os.Getenv("GITHUB_ACTIONS") == "true",
		"emit a GitHub Actions annotation per regression (auto-enabled on Actions runners)")
	overheadPair := flag.String("overhead", "",
		"OFF:ON benchmark-name pair gated within the -against run (e.g. FlightRecorderOff:FlightRecorderOn)")
	overheadTol := flag.Float64("overhead-tolerance", 0.05, "relative ns/op tolerance for -overhead")
	showVersion := cli.VersionFlag()
	flag.Parse()
	showVersion()

	blocking := *strict || *failOnRegress
	annotateCmd := ""
	if *annotate {
		annotateCmd = "warning"
		if *failOnRegress {
			annotateCmd = "error"
		}
	}

	if *overheadPair != "" {
		offName, onName, ok := strings.Cut(*overheadPair, ":")
		if !ok || offName == "" || onName == "" {
			log.Fatal("-overhead wants OFF:ON benchmark names")
		}
		if *againstPath == "" {
			log.Fatal("-overhead requires -against")
		}
		doc, err := load(*againstPath)
		if err != nil {
			log.Fatal(err)
		}
		over, err := overhead(os.Stdout, doc, offName, onName, *overheadTol, annotateCmd)
		if err != nil {
			log.Fatal(err)
		}
		if over && blocking {
			os.Exit(1)
		}
		if over {
			fmt.Println("(warn-only: run with -fail-on-regress to fail the build)")
		}
		return
	}

	if *baselinePath != "" {
		if *againstPath == "" {
			log.Fatal("-compare requires -against")
		}
		gates, err := parseGates(*gateSpec, *tol)
		if err != nil {
			log.Fatal(err)
		}
		baseline, err := load(*baselinePath)
		if err != nil {
			log.Fatal(err)
		}
		current, err := load(*againstPath)
		if err != nil {
			log.Fatal(err)
		}
		n := compare(os.Stdout, baseline, current, gates, annotateCmd)
		if n > 0 {
			fmt.Printf("%d benchmark metric(s) worse than baseline beyond tolerance\n", n)
			if blocking {
				os.Exit(1)
			}
			fmt.Println("(warn-only: run with -fail-on-regress to fail the build)")
		}
		return
	}

	var src io.Reader = os.Stdin
	if *in != "" && *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	doc, err := parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Results) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" || *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(doc.Results))
}

// Command benchjson converts `go test -bench` text output into a stable
// JSON document, and compares two such documents with a relative tolerance.
// It is the benchmark-regression gate of the CI pipeline:
//
//	go test -bench=. -benchtime=1x -run='^$' . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_ci.json
//	benchjson -compare BENCH_baseline.json -against BENCH_ci.json -tolerance 0.2
//
// -compare exits 0 and only warns on deviations beyond the tolerance unless
// -strict is given, so a first landing (or a noisy runner) does not block
// the pipeline while still surfacing drift in the job log. On GitHub
// Actions runners (or with -github) each regression additionally emits a
// `::warning` workflow command, so the drift shows up as an annotation in
// the PR checks UI even though the job stays green.
//
// -overhead OFF:ON gates an instrumentation pair within a single run:
//
//	benchjson -overhead FlightRecorderOff:FlightRecorderOn -against BENCH_ci.json
//
// warns (same warn-only semantics) when the ON half exceeds the OFF half
// by more than -overhead-tolerance (default 5%). Both halves come from the
// same run, so host speed differences cancel out.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: the name with the "Benchmark" prefix and
// "-P" GOMAXPROCS suffix stripped, the iteration count, and every reported
// value keyed by its unit (ns/op, B/op, allocs/op, custom units).
type Result struct {
	Name   string             `json:"name"`
	Iters  int64              `json:"iters"`
	Values map[string]float64 `json:"values"`
}

// Doc is the serialised benchmark set.
type Doc struct {
	Results []Result `json:"results"`
}

func parse(r io.Reader) (Doc, error) {
	var doc Doc
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  10  123 ns/op  456 B/op  7 allocs/op
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: name, Iters: iters, Values: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Values[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, res)
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	sort.Slice(doc.Results, func(i, j int) bool { return doc.Results[i].Name < doc.Results[j].Name })
	return doc, nil
}

func load(path string) (Doc, error) {
	var doc Doc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	err = json.Unmarshal(data, &doc)
	return doc, err
}

func index(d Doc) map[string]Result {
	m := make(map[string]Result, len(d.Results))
	for _, r := range d.Results {
		m[r.Name] = r
	}
	return m
}

// compare reports ns/op deviations beyond tol; it returns the number of
// regressions (slower than baseline by more than tol). With annotate it
// additionally emits one GitHub Actions ::warning workflow command per
// regression, which the Actions runner surfaces in the PR checks UI even
// when the job itself stays green (the warn-only gate).
func compare(w io.Writer, baseline, current Doc, tol float64, annotate bool) int {
	base := index(baseline)
	regressions := 0
	for _, cur := range current.Results {
		ref, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(w, "NEW      %-28s %12.0f ns/op (no baseline)\n", cur.Name, cur.Values["ns/op"])
			continue
		}
		b, c := ref.Values["ns/op"], cur.Values["ns/op"]
		if b <= 0 {
			continue
		}
		delta := (c - b) / b
		switch {
		case delta > tol:
			regressions++
			fmt.Fprintf(w, "SLOWER   %-28s %12.0f -> %12.0f ns/op (%+.1f%%, tolerance %.0f%%)\n",
				cur.Name, b, c, 100*delta, 100*tol)
			if annotate {
				fmt.Fprintf(w, "::warning title=Benchmark regression: %s::%s slowed %.0f -> %.0f ns/op (%+.1f%%, tolerance %.0f%%) against BENCH_baseline.json\n",
					cur.Name, cur.Name, b, c, 100*delta, 100*tol)
			}
		case delta < -tol:
			fmt.Fprintf(w, "FASTER   %-28s %12.0f -> %12.0f ns/op (%+.1f%%)\n", cur.Name, b, c, 100*delta)
		default:
			fmt.Fprintf(w, "OK       %-28s %12.0f -> %12.0f ns/op (%+.1f%%)\n", cur.Name, b, c, 100*delta)
		}
	}
	for _, ref := range baseline.Results {
		if _, ok := index(current)[ref.Name]; !ok {
			fmt.Fprintf(w, "MISSING  %-28s (in baseline, not in current run)\n", ref.Name)
		}
	}
	return regressions
}

// overhead gates an instrumentation on/off pair within one run: it reports
// how much slower onName is than offName (ns/op) and returns true when the
// overhead exceeds tol. Unlike compare, both halves come from the same
// document, so runner-to-runner noise cancels.
func overhead(w io.Writer, doc Doc, offName, onName string, tol float64, annotate bool) (bool, error) {
	res := index(doc)
	off, ok := res[offName]
	if !ok {
		return false, fmt.Errorf("overhead pair: %q not in results", offName)
	}
	on, ok := res[onName]
	if !ok {
		return false, fmt.Errorf("overhead pair: %q not in results", onName)
	}
	b, c := off.Values["ns/op"], on.Values["ns/op"]
	if b <= 0 {
		return false, fmt.Errorf("overhead pair: %q has no ns/op", offName)
	}
	delta := (c - b) / b
	if delta > tol {
		fmt.Fprintf(w, "OVERHEAD %s -> %s: %12.0f -> %12.0f ns/op (%+.1f%%, tolerance %.0f%%)\n",
			offName, onName, b, c, 100*delta, 100*tol)
		if annotate {
			fmt.Fprintf(w, "::warning title=Instrumentation overhead: %s::%s costs %+.1f%% over %s (tolerance %.0f%%)\n",
				onName, onName, 100*delta, offName, 100*tol)
		}
		return true, nil
	}
	fmt.Fprintf(w, "OVERHEAD %s -> %s: %12.0f -> %12.0f ns/op (%+.1f%%) within %.0f%%\n",
		offName, onName, b, c, 100*delta, 100*tol)
	return false, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	in := flag.String("in", "", "go test -bench output to parse ('-' or empty for stdin)")
	out := flag.String("out", "", "write parsed results as JSON to this file ('-' for stdout)")
	baselinePath := flag.String("compare", "", "baseline JSON to compare -against")
	againstPath := flag.String("against", "", "current-run JSON for -compare")
	tol := flag.Float64("tolerance", 0.20, "relative ns/op tolerance for -compare")
	strict := flag.Bool("strict", false, "exit 1 when -compare finds regressions beyond the tolerance")
	annotate := flag.Bool("github", os.Getenv("GITHUB_ACTIONS") == "true",
		"emit a GitHub Actions ::warning annotation per regression (auto-enabled on Actions runners)")
	overheadPair := flag.String("overhead", "",
		"OFF:ON benchmark-name pair gated within the -against run (e.g. FlightRecorderOff:FlightRecorderOn)")
	overheadTol := flag.Float64("overhead-tolerance", 0.05, "relative ns/op tolerance for -overhead")
	flag.Parse()

	if *overheadPair != "" {
		offName, onName, ok := strings.Cut(*overheadPair, ":")
		if !ok || offName == "" || onName == "" {
			log.Fatal("-overhead wants OFF:ON benchmark names")
		}
		if *againstPath == "" {
			log.Fatal("-overhead requires -against")
		}
		doc, err := load(*againstPath)
		if err != nil {
			log.Fatal(err)
		}
		over, err := overhead(os.Stdout, doc, offName, onName, *overheadTol, *annotate)
		if err != nil {
			log.Fatal(err)
		}
		if over && *strict {
			os.Exit(1)
		}
		if over {
			fmt.Println("(warn-only: run with -strict to fail the build)")
		}
		return
	}

	if *baselinePath != "" {
		if *againstPath == "" {
			log.Fatal("-compare requires -against")
		}
		baseline, err := load(*baselinePath)
		if err != nil {
			log.Fatal(err)
		}
		current, err := load(*againstPath)
		if err != nil {
			log.Fatal(err)
		}
		n := compare(os.Stdout, baseline, current, *tol, *annotate)
		if n > 0 {
			fmt.Printf("%d benchmark(s) slower than baseline beyond ±%.0f%%\n", n, 100**tol)
			if *strict {
				os.Exit(1)
			}
			fmt.Println("(warn-only: run with -strict to fail the build)")
		}
		return
	}

	var src io.Reader = os.Stdin
	if *in != "" && *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	doc, err := parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Results) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" || *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(doc.Results))
}

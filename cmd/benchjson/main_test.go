package main

import (
	"strings"
	"testing"
)

func doc(pairs map[string]float64) Doc {
	var d Doc
	for name, ns := range pairs {
		d.Results = append(d.Results, Result{Name: name, Iters: 1, Values: map[string]float64{"ns/op": ns}})
	}
	return d
}

func TestParseStripsPrefixAndProcs(t *testing.T) {
	in := "BenchmarkSoCRun-8  10  123.4 ns/op  56 B/op  7 allocs/op\nnot a bench line\n"
	d, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Results) != 1 || d.Results[0].Name != "SoCRun" {
		t.Fatalf("parse = %+v", d.Results)
	}
	if d.Results[0].Values["ns/op"] != 123.4 || d.Results[0].Values["allocs/op"] != 7 {
		t.Fatalf("values = %v", d.Results[0].Values)
	}
}

func TestParseMergesRepeatedSamplesBestOfN(t *testing.T) {
	in := `BenchmarkZeta-8  1  300 ns/op  7 allocs/op
BenchmarkZeta-8  2  100 ns/op  7 allocs/op
BenchmarkZeta-8  1  200 ns/op  7 allocs/op
BenchmarkOther-8 1  50 ns/op
`
	d, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Results) != 2 {
		t.Fatalf("results = %+v, want 2 merged entries", d.Results)
	}
	var zeta Result
	for _, r := range d.Results {
		if r.Name == "Zeta" {
			zeta = r
		}
	}
	if zeta.Values["ns/op"] != 100 || zeta.Values["allocs/op"] != 7 || zeta.Iters != 2 {
		t.Fatalf("merged Zeta = %+v, want best-of-3 ns/op=100", zeta)
	}
}

func nsGate(tol float64) []gate { return []gate{{unit: "ns/op", tol: tol}} }

func TestCompareCountsRegressions(t *testing.T) {
	base := doc(map[string]float64{"Fast": 100, "Slow": 100, "Gone": 50})
	cur := doc(map[string]float64{"Fast": 105, "Slow": 140, "New": 10})
	var sb strings.Builder
	n := compare(&sb, base, cur, nsGate(0.20), "")
	if n != 1 {
		t.Fatalf("regressions = %d, want 1", n)
	}
	out := sb.String()
	for _, want := range []string{"SLOWER   Slow", "OK       Fast", "NEW      New", "MISSING  Gone"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "::warning") || strings.Contains(out, "::error") {
		t.Errorf("annotations emitted without -github:\n%s", out)
	}
}

func TestCompareEmitsGitHubAnnotations(t *testing.T) {
	base := doc(map[string]float64{"Slow": 100})
	cur := doc(map[string]float64{"Slow": 150})
	var sb strings.Builder
	if n := compare(&sb, base, cur, nsGate(0.20), "warning"); n != 1 {
		t.Fatalf("regressions = %d, want 1", n)
	}
	out := sb.String()
	if !strings.Contains(out, "::warning title=Benchmark regression: Slow::Slow ns/op grew 100 -> 150 (+50.0%") {
		t.Errorf("missing ::warning annotation:\n%s", out)
	}

	sb.Reset()
	if n := compare(&sb, base, cur, nsGate(0.20), "error"); n != 1 {
		t.Fatalf("regressions = %d, want 1", n)
	}
	if !strings.Contains(sb.String(), "::error title=Benchmark regression: Slow::") {
		t.Errorf("blocking mode missing ::error annotation:\n%s", sb.String())
	}
}

func TestParseGates(t *testing.T) {
	gates, err := parseGates("", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(gates) != 1 || gates[0].unit != "ns/op" || gates[0].tol != 0.25 {
		t.Fatalf("default gates = %+v", gates)
	}

	gates, err = parseGates("ns/op=0.25, allocs/op=0.10", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(gates) != 2 || gates[1].unit != "allocs/op" || gates[1].tol != 0.10 {
		t.Fatalf("gates = %+v", gates)
	}

	for _, bad := range []string{"ns/op", "ns/op=x", "ns/op=-1", "=0.1"} {
		if _, err := parseGates(bad, 0.2); err == nil {
			t.Errorf("parseGates(%q) accepted", bad)
		}
	}
}

func TestComparePerMetricGates(t *testing.T) {
	base := Doc{Results: []Result{{
		Name: "Zeta", Iters: 1,
		Values: map[string]float64{"ns/op": 100, "allocs/op": 1000},
	}}}
	// ns/op improves, allocs/op regresses past its 10% gate.
	cur := Doc{Results: []Result{{
		Name: "Zeta", Iters: 1,
		Values: map[string]float64{"ns/op": 50, "allocs/op": 1200},
	}}}
	gates := []gate{{unit: "ns/op", tol: 0.25}, {unit: "allocs/op", tol: 0.10}}
	var sb strings.Builder
	n := compare(&sb, base, cur, gates, "error")
	if n != 1 {
		t.Fatalf("regressions = %d, want 1:\n%s", n, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "FASTER   Zeta") || !strings.Contains(out, "SLOWER   Zeta") {
		t.Errorf("per-metric verdicts missing:\n%s", out)
	}
	if !strings.Contains(out, "::error title=Benchmark regression: Zeta::Zeta allocs/op grew 1000 -> 1200 (+20.0%") {
		t.Errorf("missing allocs/op ::error annotation:\n%s", out)
	}

	// A gated metric missing from the current run is reported, not scored.
	sb.Reset()
	cur.Results[0].Values = map[string]float64{"ns/op": 50}
	if n := compare(&sb, base, cur, gates, ""); n != 0 {
		t.Fatalf("missing metric counted as regression:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "NOVALUE  Zeta") {
		t.Errorf("missing NOVALUE line:\n%s", sb.String())
	}
}

func TestOverheadGate(t *testing.T) {
	d := doc(map[string]float64{"RecOff": 1000, "RecOn": 1030})
	var sb strings.Builder
	over, err := overhead(&sb, d, "RecOff", "RecOn", 0.05, "")
	if err != nil {
		t.Fatal(err)
	}
	if over {
		t.Errorf("3%% flagged at 5%% tolerance:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "within 5%") {
		t.Errorf("missing within-tolerance line:\n%s", sb.String())
	}

	sb.Reset()
	d = doc(map[string]float64{"RecOff": 1000, "RecOn": 1100})
	over, err = overhead(&sb, d, "RecOff", "RecOn", 0.05, "warning")
	if err != nil {
		t.Fatal(err)
	}
	if !over {
		t.Errorf("10%% not flagged at 5%% tolerance:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "::warning title=Instrumentation overhead: RecOn") {
		t.Errorf("missing annotation:\n%s", sb.String())
	}

	// Blocking mode annotates at error level so the Actions UI goes red.
	sb.Reset()
	over, err = overhead(&sb, d, "RecOff", "RecOn", 0.05, "error")
	if err != nil {
		t.Fatal(err)
	}
	if !over {
		t.Errorf("10%% not flagged at 5%% tolerance:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "::error title=Instrumentation overhead: RecOn") {
		t.Errorf("missing ::error annotation:\n%s", sb.String())
	}

	if _, err := overhead(&sb, d, "Nope", "RecOn", 0.05, ""); err == nil {
		t.Error("missing OFF benchmark not reported")
	}
}

package main

import (
	"strings"
	"testing"
)

func doc(pairs map[string]float64) Doc {
	var d Doc
	for name, ns := range pairs {
		d.Results = append(d.Results, Result{Name: name, Iters: 1, Values: map[string]float64{"ns/op": ns}})
	}
	return d
}

func TestParseStripsPrefixAndProcs(t *testing.T) {
	in := "BenchmarkSoCRun-8  10  123.4 ns/op  56 B/op  7 allocs/op\nnot a bench line\n"
	d, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Results) != 1 || d.Results[0].Name != "SoCRun" {
		t.Fatalf("parse = %+v", d.Results)
	}
	if d.Results[0].Values["ns/op"] != 123.4 || d.Results[0].Values["allocs/op"] != 7 {
		t.Fatalf("values = %v", d.Results[0].Values)
	}
}

func TestCompareCountsRegressions(t *testing.T) {
	base := doc(map[string]float64{"Fast": 100, "Slow": 100, "Gone": 50})
	cur := doc(map[string]float64{"Fast": 105, "Slow": 140, "New": 10})
	var sb strings.Builder
	n := compare(&sb, base, cur, 0.20, false)
	if n != 1 {
		t.Fatalf("regressions = %d, want 1", n)
	}
	out := sb.String()
	for _, want := range []string{"SLOWER   Slow", "OK       Fast", "NEW      New", "MISSING  Gone"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "::warning") {
		t.Errorf("annotations emitted without -github:\n%s", out)
	}
}

func TestCompareEmitsGitHubAnnotations(t *testing.T) {
	base := doc(map[string]float64{"Slow": 100})
	cur := doc(map[string]float64{"Slow": 150})
	var sb strings.Builder
	if n := compare(&sb, base, cur, 0.20, true); n != 1 {
		t.Fatalf("regressions = %d, want 1", n)
	}
	out := sb.String()
	if !strings.Contains(out, "::warning title=Benchmark regression: Slow::Slow slowed 100 -> 150 ns/op (+50.0%") {
		t.Errorf("missing ::warning annotation:\n%s", out)
	}
}

func TestOverheadGate(t *testing.T) {
	d := doc(map[string]float64{"RecOff": 1000, "RecOn": 1030})
	var sb strings.Builder
	over, err := overhead(&sb, d, "RecOff", "RecOn", 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if over {
		t.Errorf("3%% flagged at 5%% tolerance:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "within 5%") {
		t.Errorf("missing within-tolerance line:\n%s", sb.String())
	}

	sb.Reset()
	d = doc(map[string]float64{"RecOff": 1000, "RecOn": 1100})
	over, err = overhead(&sb, d, "RecOff", "RecOn", 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	if !over {
		t.Errorf("10%% not flagged at 5%% tolerance:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "::warning title=Instrumentation overhead: RecOn") {
		t.Errorf("missing annotation:\n%s", sb.String())
	}

	if _, err := overhead(&sb, d, "Nope", "RecOn", 0.05, false); err == nil {
		t.Error("missing OFF benchmark not reported")
	}
}

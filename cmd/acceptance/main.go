// Command acceptance runs the analytical schedulability experiment of
// §4.2: the fraction of random DAG tasks whose safe makespan bound (Graham
// with communication costs folded into the consumer nodes) meets the
// implicit deadline, for the conventional edge costs versus Alg. 1's
// ETM-reduced costs, alongside the simulated ground truth.
//
// Usage:
//
//	acceptance [-dags N] [-cores M] [-seed S] [-workers N] [-checkpoint file.json]
//	           [-memo] [-memo-dir DIR] [-kernel events|ticked]
//
// Trials fan out on the internal/runner pool: -workers caps the
// concurrency (0 = NumCPU) without changing any result, -checkpoint makes
// an interrupted run (Ctrl-C) resumable at trial granularity, and
// -memo/-memo-dir enable the content-addressed trial result cache
// (internal/memo): a -memo-dir shared between runs serves every
// previously computed trial from disk, byte-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"l15cache/internal/cli"
	"l15cache/internal/experiments"
	"l15cache/internal/kernel"
	"l15cache/internal/memo"
	"l15cache/internal/metrics"
	"l15cache/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("acceptance: ")

	dags := flag.Int("dags", 200, "tasks per utilisation point")
	cores := flag.Int("cores", 8, "core count m")
	seed := flag.Int64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 0, "max concurrent trials (0 = NumCPU; never changes results)")
	checkpoint := flag.String("checkpoint", "", "JSON checkpoint file; an interrupted sweep resumes from it")
	memoFlag := flag.Bool("memo", false, "enable the in-memory trial result cache (never changes results)")
	memoDir := flag.String("memo-dir", "", "on-disk trial cache directory, shareable across runs (implies -memo)")
	csv := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	kernelFlag := flag.String("kernel", "events", "simulator kernel: events (time-skipping) or ticked (legacy; identical results)")
	showVersion := cli.VersionFlag()
	startTelemetry := cli.TelemetryFlag()
	flag.Parse()
	showVersion()
	flushTelemetry := startTelemetry()

	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()

	// die flushes the partial -metrics/-trace artifacts before a fatal
	// exit, so an interrupted sweep (Ctrl-C → runner.Canceled) still
	// leaves complete files behind.
	die := func(err error) {
		if werr := metrics.WriteFiles(*metricsOut, *traceOut); werr != nil {
			log.Print(werr)
		}
		if werr := flushTelemetry(); werr != nil {
			log.Print(werr)
		}
		log.Fatal(err)
	}

	cfg := experiments.DefaultAcceptanceConfig()
	cfg.DAGs = *dags
	cfg.Cores = *cores
	cfg.Seed = *seed
	cache, err := memo.FromFlags(*memoFlag, *memoDir)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Run = runner.Options{Workers: *workers, Checkpoint: *checkpoint, Memo: cache}
	cfg.Kernel = kern

	utils := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	points, err := experiments.AcceptanceRatio(ctx, cfg, utils)
	if err != nil {
		die(err)
	}
	if *csv {
		fmt.Print(experiments.AcceptanceCSV(points))
	} else {
		fmt.Print(experiments.FormatAcceptance(points))
	}
	if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
		log.Fatal(err)
	}
	if err := flushTelemetry(); err != nil {
		log.Fatal(err)
	}
}

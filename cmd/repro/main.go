// Command repro is the one-shot reproduction driver: it regenerates every
// table and figure of the paper (Fig. 7, Tab. 2, Fig. 8(a,b,c), §5.4) plus
// this repository's ablations and analytical experiments, and writes a
// single markdown report.
//
// Usage:
//
//	repro [-quick] [-o report.md] [-seed S] [-workers N] [-checkpoint cp.json]
//	      [-memo] [-memo-dir DIR] [-metrics m.json] [-trace t.json]
//	      [-flight rec.jsonl] [-kernel events|ticked]
//
// -quick runs reduced sample sizes (~30 s); the default runs the paper's
// full sizes (500 DAGs × 10 instances, 200 trials — several minutes).
// Every randomized sweep fans out on the internal/runner pool: -workers
// caps the concurrency (0 = NumCPU) without changing any result,
// -checkpoint makes an interrupted run (Ctrl-C) resumable at trial
// granularity, and -memo/-memo-dir enable the content-addressed trial
// result cache (internal/memo): a -memo-dir shared between runs serves
// every previously computed trial from disk, byte-identically.
// -metrics serialises the unified metrics registry (scheduler wave counts,
// rtsim counters, and the cycle-accurate smoke run's L1/L1.5/L2 hit+miss
// counters and SDU latency histograms) as stable JSON — the artifact the CI
// smoke job archives. -trace writes a Chrome trace_event file. -flight
// records one representative Fig. 8 case-study trial plus the
// cycle-accurate smoke run into a flight recording that cmd/explain can
// dissect; the recording is a pure function of -seed. An interrupt
// (Ctrl-C) still flushes the partial -metrics/-trace/-flight files before
// exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"l15cache/internal/area"
	"l15cache/internal/cli"
	"l15cache/internal/experiments"
	"l15cache/internal/flight"
	"l15cache/internal/kernel"
	"l15cache/internal/memo"
	"l15cache/internal/metrics"
	"l15cache/internal/monitor"
	"l15cache/internal/rtsim"
	"l15cache/internal/runner"
	"l15cache/internal/soc"
	"l15cache/internal/workload"
)

// socSmoke runs the §4.3 producer/consumer demo plus an L1-overflowing
// sweep on the cycle-approximate SoC with the monitor attached, feeding the
// default metrics registry and tracer. This is what puts real L1/L1.5/L2
// hit+miss counters and an SDU reassignment-latency histogram into the
// -metrics snapshot.
func socSmoke(rec *flight.Recorder, kern kernel.Mode) (string, error) {
	cfg := soc.DefaultConfig()
	cfg.Kernel = kern
	s, err := soc.New(cfg)
	if err != nil {
		return "", err
	}
	s.Instrument(metrics.Default, metrics.Trace)
	s.FlightRecord(rec)
	mon, err := monitor.Attach(s, 64)
	if err != nil {
		return "", err
	}
	mon.Tracer = metrics.Trace
	mon.PublishMetrics(metrics.Default)

	pt := s.IdentityPageTable(1)
	base := uint32(0x1000)
	for core, src := range []string{soc.DemoProducer, soc.DemoConsumer, soc.DemoSweeper} {
		n, err := s.LoadProgram(base, src)
		if err != nil {
			return "", err
		}
		if err := s.SetPageTable(core, pt); err != nil {
			return "", err
		}
		s.StartCore(core, base, 0x8000+uint32(core)*0x1000)
		base += uint32(4*n) + 0x100
	}
	for core := 3; core < len(s.Cores); core++ {
		s.Cores[core].Halted = true
	}
	if _, err := s.Run(1_000_000, nil); err != nil {
		return "", err
	}
	s.SettleSDU(64)

	var sb strings.Builder
	if err := mon.WriteReport(&sb); err != nil {
		return "", err
	}
	cl := s.Clusters[0].L15
	var hits, misses, global uint64
	for _, st := range cl.Stats {
		hits += st.Hits
		misses += st.Misses
		global += st.GlobalHits
	}
	fmt.Fprintf(&sb, "cluster 0 L1.5: hits %d (global %d), misses %d\n", hits, global, misses)
	fmt.Fprintf(&sb, "L2: hits %d, misses %d\n", s.L2.Stats.Hits, s.L2.Stats.Misses)
	return sb.String(), nil
}

// recordTrial runs one representative Fig. 8 case-study trial (8 cores,
// 60% utilisation, proposed system) with the flight recorder attached.
// The recording is a pure function of seed.
func recordTrial(seed int64, rec *flight.Recorder, kern kernel.Mode) error {
	r := rand.New(rand.NewSource(seed))
	set := workload.DefaultTaskSetParams()
	set.TargetUtilization = 0.6 * 8
	tasks, err := workload.TaskSet(r, set)
	if err != nil {
		return err
	}
	cfg := rtsim.DefaultConfig()
	cfg.Recorder = rec
	cfg.Kernel = kern
	_, err = rtsim.Run(tasks, rtsim.KindProp, cfg)
	return err
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")

	quick := flag.Bool("quick", false, "reduced sample sizes (~30s instead of minutes)")
	out := flag.String("o", "repro_report.md", "output report path ('-' for stdout)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 0, "max concurrent trials (0 = NumCPU; never changes results)")
	checkpoint := flag.String("checkpoint", "", "JSON checkpoint file; an interrupted run resumes from it")
	memoFlag := flag.Bool("memo", false, "enable the in-memory trial result cache (never changes results)")
	memoDir := flag.String("memo-dir", "", "on-disk trial cache directory, shareable across runs (implies -memo)")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	flightOut := flag.String("flight", "", "write a flight recording (.jsonl or .bin) of a representative trial")
	kernelFlag := flag.String("kernel", "events", "simulator kernel: events (time-skipping) or ticked (legacy; identical results)")
	showVersion := cli.VersionFlag()
	startTelemetry := cli.TelemetryFlag()
	flag.Parse()
	showVersion()
	flushTelemetry := startTelemetry()

	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()
	cache, err := memo.FromFlags(*memoFlag, *memoDir)
	if err != nil {
		log.Fatal(err)
	}
	run := runner.Options{Workers: *workers, Checkpoint: *checkpoint, Memo: cache}

	var rec *flight.Recorder
	if *flightOut != "" {
		rec = flight.New()
	}
	// die flushes the partial -metrics/-trace/-flight artifacts before
	// exiting, so an interrupted run (runner.Canceled reaches every
	// log.Fatal site through die) never leaves truncated or missing
	// output files.
	die := func(err error) {
		if werr := metrics.WriteFiles(*metricsOut, *traceOut); werr != nil {
			log.Print(werr)
		}
		if werr := flushTelemetry(); werr != nil {
			log.Print(werr)
		}
		if *flightOut != "" {
			if werr := flight.WriteFile(*flightOut, rec.Snapshot()); werr != nil {
				log.Print(werr)
			}
		}
		log.Fatal(err)
	}

	var sb strings.Builder
	sb.WriteString("# Reproduction report — L1.5 Cache co-design (DAC 2024)\n\n")
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(&sb, "Mode: %s, seed %d. See EXPERIMENTS.md for the paper-side numbers.\n\n", mode, *seed)

	mk := experiments.DefaultMakespanConfig()
	mk.Seed = *seed
	mk.Run = run
	mk.Kernel = kern
	cs8 := experiments.DefaultCaseStudyConfig(8)
	cs16 := experiments.DefaultCaseStudyConfig(16)
	cs8.Seed, cs16.Seed = *seed, *seed
	cs8.Run, cs16.Run = run, run
	cs8.RT.Kernel, cs16.RT.Kernel = kern, kern
	seTrials := 50
	utils := []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90}
	if *quick {
		mk.DAGs = 60
		cs8.Trials, cs16.Trials = 25, 25
		seTrials = 5
		utils = []float64{0.40, 0.50, 0.60, 0.70, 0.80, 0.90}
	}

	section := func(title string) { fmt.Fprintf(&sb, "\n## %s\n\n```\n", title) }
	endSection := func() { sb.WriteString("```\n") }
	step := func(name string) { log.Printf("running %s ...", name) }

	// Fig. 7 + Tab. 2.
	type sweepRun struct {
		name string
		run  func() (*experiments.MakespanSweep, error)
	}
	for _, sr := range []sweepRun{
		{"Fig. 7(a) + Tab. 2 left — utilisation sweep", func() (*experiments.MakespanSweep, error) {
			return experiments.SweepUtilization(ctx, mk, []float64{0.2, 0.4, 0.6, 0.8, 1.0})
		}},
		{"Fig. 7(b) + Tab. 2 middle — width sweep", func() (*experiments.MakespanSweep, error) {
			return experiments.SweepWidth(ctx, mk, []float64{9, 12, 15, 18, 21})
		}},
		{"Fig. 7(c) + Tab. 2 right — cpr sweep", func() (*experiments.MakespanSweep, error) {
			return experiments.SweepCPR(ctx, mk, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
		}},
	} {
		step(sr.name)
		s, err := sr.run()
		if err != nil {
			die(err)
		}
		section(sr.name)
		sb.WriteString(s.FormatFig7())
		sb.WriteString("\n")
		sb.WriteString(s.FormatTable2())
		endSection()
	}

	// Fig. 8(a,b).
	for _, cfg := range []experiments.CaseStudyConfig{cs8, cs16} {
		name := fmt.Sprintf("Fig. 8 — success ratio, %d cores", cfg.Cores)
		step(name)
		res, err := experiments.RunCaseStudy(ctx, cfg, utils)
		if err != nil {
			die(err)
		}
		section(name)
		sb.WriteString(res.Format())
		endSection()
	}

	// Fig. 8(c).
	step("Fig. 8(c) — side effects")
	seRT := rtsim.DefaultConfig()
	seRT.Kernel = kern
	sePts, err := experiments.RunSideEffects(ctx, experiments.SideEffectsConfig{
		Trials: seTrials,
		Seed:   *seed,
		RT:     seRT,
		Set:    workload.DefaultTaskSetParams(),
		Run:    run,
	}, []int{8, 16}, []float64{0.8, 1.0})
	if err != nil {
		die(err)
	}
	section("Fig. 8(c) — L1.5 utilisation and φ")
	sb.WriteString(experiments.FormatSideEffects(sePts))
	endSection()

	// §5.4 area.
	step("§5.4 — hardware overhead")
	rep, err := area.CompareOverhead(area.Synopsys28nm())
	if err != nil {
		die(err)
	}
	section("§5.4 — hardware overhead")
	sb.WriteString(rep.Format())
	endSection()

	// Ablations.
	abl := mk
	if *quick {
		abl.DAGs = 40
	} else {
		abl.DAGs = 200
	}
	step("ablations")
	zeta, err := experiments.AblateZeta(ctx, abl, experiments.AblationZetaDefault())
	if err != nil {
		die(err)
	}
	prio, err := experiments.AblatePriorities(ctx, abl)
	if err != nil {
		die(err)
	}
	section("Ablations")
	sb.WriteString(zeta.Format())
	sb.WriteString("\n")
	sb.WriteString(prio.Format())
	endSection()

	// Acceptance.
	acc := experiments.DefaultAcceptanceConfig()
	acc.Seed = *seed
	acc.Run = run
	acc.Kernel = kern
	if *quick {
		acc.DAGs = 50
	}
	step("acceptance ratio")
	pts, err := experiments.AcceptanceRatio(ctx, acc, []float64{1.0, 2.0, 2.5, 3.0, 4.0})
	if err != nil {
		die(err)
	}
	section("§4.2 — analytical acceptance ratio")
	sb.WriteString(experiments.FormatAcceptance(pts))
	endSection()

	// Representative Fig. 8 trial, recorded: one proposed-system
	// real-time trial whose flight recording cmd/explain can dissect.
	if *flightOut != "" {
		step("flight-recorded case-study trial")
		if err := recordTrial(*seed, rec, kern); err != nil {
			die(err)
		}
	}

	// Cycle-accurate smoke: the SoC + monitor run that grounds the metrics
	// snapshot in real cache counters.
	step("cycle-accurate smoke (SoC + monitor)")
	smoke, err := socSmoke(rec, kern)
	if err != nil {
		die(err)
	}
	section("Cycle-accurate smoke — SoC hierarchy and SDU")
	sb.WriteString(smoke)
	endSection()

	// Embed the unified metrics snapshot in the report.
	snap, err := metrics.Default.Snapshot().JSON()
	if err != nil {
		die(err)
	}
	sb.WriteString("\n## Metrics snapshot\n\n```json\n")
	sb.Write(snap)
	sb.WriteString("\n```\n")

	if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
		die(err)
	}
	if err := flushTelemetry(); err != nil {
		die(err)
	}
	if *metricsOut != "" {
		log.Printf("wrote %s", *metricsOut)
	}
	if *traceOut != "" {
		log.Printf("wrote %s", *traceOut)
	}
	if *flightOut != "" {
		if err := flight.WriteFile(*flightOut, rec.Snapshot()); err != nil {
			die(err)
		}
		log.Printf("wrote %s (%d events, %d dropped)", *flightOut, rec.Len(), rec.Dropped())
	}

	if *out == "-" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		die(err)
	}
	log.Printf("wrote %s", *out)
}

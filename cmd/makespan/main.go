// Command makespan regenerates the makespan evaluation of the paper:
// Fig. 7 (a,b,c) — the normalised average makespan of the proposed system
// against CMP|L1 and CMP|L2 under varied utilisation, layer width p and
// critical-path ratio — and the matching worst-case blocks of Tab. 2.
//
// Usage:
//
//	makespan [-sweep u|p|cpr|all] [-dags N] [-instances N] [-cores N]
//	         [-seed S] [-workers N] [-checkpoint file.json] [-memo]
//	         [-memo-dir DIR] [-kernel events|ticked]
//
// With the defaults (500 DAGs × 10 instances, as in §5.1) a full run takes
// a few minutes; use -dags 100 for a quick pass. Trials fan out on the
// internal/runner pool: -workers caps the concurrency (0 = NumCPU) without
// changing any result, -checkpoint makes an interrupted run (Ctrl-C)
// resumable at trial granularity, and -memo/-memo-dir enable the
// content-addressed trial result cache (internal/memo): a -memo-dir
// shared between runs serves every previously computed trial from disk,
// byte-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"l15cache/internal/cli"
	"l15cache/internal/experiments"
	"l15cache/internal/kernel"
	"l15cache/internal/memo"
	"l15cache/internal/metrics"
	"l15cache/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("makespan: ")

	sweep := flag.String("sweep", "all", "which sweep to run: u, p, cpr or all")
	dags := flag.Int("dags", 500, "DAG tasks per parameter point")
	instances := flag.Int("instances", 10, "instances per DAG (first is cold)")
	cores := flag.Int("cores", 8, "number of cores m")
	seed := flag.Int64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 0, "max concurrent trials (0 = NumCPU; never changes results)")
	checkpoint := flag.String("checkpoint", "", "JSON checkpoint file; an interrupted sweep resumes from it")
	memoFlag := flag.Bool("memo", false, "enable the in-memory trial result cache (never changes results)")
	memoDir := flag.String("memo-dir", "", "on-disk trial cache directory, shareable across runs (implies -memo)")
	csv := flag.Bool("csv", false, "emit CSV instead of the formatted tables")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	kernelFlag := flag.String("kernel", "events", "simulator kernel: events (time-skipping) or ticked (legacy; identical results)")
	showVersion := cli.VersionFlag()
	startTelemetry := cli.TelemetryFlag()
	flag.Parse()
	showVersion()
	flushTelemetry := startTelemetry()

	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()

	// die flushes the partial -metrics/-trace artifacts before a fatal
	// exit, so an interrupted sweep (Ctrl-C → runner.Canceled) still
	// leaves complete files behind.
	die := func(err error) {
		if werr := metrics.WriteFiles(*metricsOut, *traceOut); werr != nil {
			log.Print(werr)
		}
		if werr := flushTelemetry(); werr != nil {
			log.Print(werr)
		}
		log.Fatal(err)
	}

	cfg := experiments.DefaultMakespanConfig()
	cfg.DAGs = *dags
	cfg.Instances = *instances
	cfg.Cores = *cores
	cfg.Seed = *seed
	cache, err := memo.FromFlags(*memoFlag, *memoDir)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Run = runner.Options{Workers: *workers, Checkpoint: *checkpoint, Memo: cache}
	cfg.Kernel = kern

	type sweepRun struct {
		name string
		run  func() (*experiments.MakespanSweep, error)
	}
	runs := []sweepRun{
		{"u", func() (*experiments.MakespanSweep, error) {
			return experiments.SweepUtilization(ctx, cfg, []float64{0.2, 0.4, 0.6, 0.8, 1.0})
		}},
		{"p", func() (*experiments.MakespanSweep, error) {
			return experiments.SweepWidth(ctx, cfg, []float64{9, 12, 15, 18, 21})
		}},
		{"cpr", func() (*experiments.MakespanSweep, error) {
			return experiments.SweepCPR(ctx, cfg, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
		}},
	}
	ran := false
	for _, r := range runs {
		if *sweep != "all" && *sweep != r.name {
			continue
		}
		ran = true
		s, err := r.run()
		if err != nil {
			die(err)
		}
		if *csv {
			fmt.Print(s.CSV())
			continue
		}
		fmt.Print(s.FormatFig7())
		fmt.Println()
		fmt.Print(s.FormatTable2())
		fmt.Println()
	}
	if !ran {
		log.Fatalf("unknown sweep %q (want u, p, cpr or all)", *sweep)
	}
	if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
		log.Fatal(err)
	}
	if err := flushTelemetry(); err != nil {
		log.Fatal(err)
	}
}

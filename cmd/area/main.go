// Command area regenerates the hardware-overhead analysis of §5.4: the
// analytical 28nm area of the 16-core SoC with the L1.5 Cache against the
// equal-capacity conventional (enlarged-L1) SoC, with the per-block gate
// breakdown of the L1.5 control microarchitecture.
//
// Usage:
//
//	area [-gates] [-workers N]
//
// The area model is closed-form — there is no randomized sweep to fan
// out — so -workers is accepted only for interface parity with the other
// experiment commands and has no effect.
package main

import (
	"flag"
	"fmt"
	"log"

	"l15cache/internal/area"
	"l15cache/internal/cli"
	"l15cache/internal/metrics"
)

func main() {
	gates := flag.Bool("gates", false, "also print the L1.5 gate-count breakdown")
	_ = flag.Int("workers", 0, "accepted for parity with the sweep commands; the analytic model has nothing to parallelise")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	showVersion := cli.VersionFlag()
	startTelemetry := cli.TelemetryFlag()
	flag.Parse()
	showVersion()
	flushTelemetry := startTelemetry()

	p := area.Synopsys28nm()
	r, err := area.CompareOverhead(p)
	if err != nil {
		fmt.Println("area:", err)
		return
	}
	fmt.Print(r.Format())

	if *gates {
		g := area.GateCounts(area.PhysicalL15(), p)
		fmt.Println("\nL1.5 control-logic gates (NAND2-equivalent):")
		fmt.Printf("  control registers: %8.0f\n", g.ControlRegisters)
		fmt.Printf("  mask logic:        %8.0f\n", g.MaskLogic)
		fmt.Printf("  line selectors:    %8.0f\n", g.LineSelectors)
		fmt.Printf("  data selectors:    %8.0f\n", g.DataSelectors)
		fmt.Printf("  protector:         %8.0f\n", g.Protector)
		fmt.Printf("  SDU:               %8.0f\n", g.SDU)
		fmt.Printf("  total:             %8.0f\n", g.Total())
	}

	if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
		log.Fatal(err)
	}
	if err := flushTelemetry(); err != nil {
		log.Fatal(err)
	}
}

// Command promcheck validates Prometheus text exposition against the
// strict in-repo parser (internal/telemetry): every sample must belong to
// a declared family, no family or series may repeat, histogram buckets
// must be cumulative over strictly increasing le bounds with a +Inf
// bucket agreeing with _count. The CI smoke job points it at a live
// `l15sim -http` endpoint to prove the /metrics scrape is well-formed.
//
// Usage:
//
//	promcheck [-min-families N] file.prom...
//	promcheck -url http://127.0.0.1:8080/metrics
//
// With no file arguments and no -url it reads stdin. Exit status is 0
// when every input parses, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"l15cache/internal/cli"
	"l15cache/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("promcheck: ")

	url := flag.String("url", "", "scrape this URL instead of reading files/stdin")
	minFamilies := flag.Int("min-families", 1, "fail when an input declares fewer families")
	quiet := flag.Bool("q", false, "suppress the per-input summary line")
	showVersion := cli.VersionFlag()
	flag.Parse()
	showVersion()

	type input struct {
		name string
		data []byte
	}
	var inputs []input
	switch {
	case *url != "":
		resp, err := http.Get(*url)
		if err != nil {
			log.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s: status %s", *url, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
			log.Fatalf("%s: Content-Type %q, want %q", *url, ct, telemetry.ContentType)
		}
		inputs = append(inputs, input{name: *url, data: data})
	case flag.NArg() == 0:
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		inputs = append(inputs, input{name: "stdin", data: data})
	default:
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			inputs = append(inputs, input{name: path, data: data})
		}
	}

	failed := false
	for _, in := range inputs {
		families, err := telemetry.Parse(in.data)
		if err != nil {
			log.Printf("%s: INVALID: %v", in.name, err)
			failed = true
			continue
		}
		if len(families) < *minFamilies {
			log.Printf("%s: INVALID: %d families, want at least %d",
				in.name, len(families), *minFamilies)
			failed = true
			continue
		}
		if !*quiet {
			samples := 0
			for _, f := range families {
				samples += len(f.Samples)
			}
			fmt.Printf("%s: ok: %d families, %d samples\n", in.name, len(families), samples)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// Command ablation runs the design-choice ablations of DESIGN.md §4: the
// L1.5 way count ζ, the way size κ at fixed capacity, the two components of
// Algorithm 1 (way allocation vs λ-driven priorities), the SDU's per-way
// configuration delay, and the ETM's diminishing returns per extra way.
//
// Usage:
//
//	ablation [-dags N] [-trials N] [-seed S] [-which zeta|kappa|prio|delay|etm|all]
package main

import (
	"flag"
	"fmt"
	"log"

	"l15cache/internal/experiments"
	"l15cache/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablation: ")

	dags := flag.Int("dags", 200, "DAG tasks per point (zeta/kappa/prio)")
	trials := flag.Int("trials", 20, "trials per point (delay)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	which := flag.String("which", "all", "zeta, kappa, prio, delay, etm or all")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	flag.Parse()

	cfg := experiments.DefaultMakespanConfig()
	cfg.DAGs = *dags
	cfg.Seed = *seed

	want := func(name string) bool { return *which == "all" || *which == name }
	ran := false

	if want("zeta") {
		ran = true
		res, err := experiments.AblateZeta(cfg, experiments.AblationZetaDefault())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Format())
	}
	if want("kappa") {
		ran = true
		res, err := experiments.AblateWayBytes(cfg, experiments.AblationWayBytesDefault())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Format())
	}
	if want("prio") {
		ran = true
		res, err := experiments.AblatePriorities(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Format())
	}
	if want("delay") {
		ran = true
		res, err := experiments.AblateConfigDelay(*trials, *seed, experiments.AblationDelayDefault())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Format())
	}
	if want("etm") {
		ran = true
		fmt.Println("ablation — ETM cost vs ways (μ=10, δ=8KB, α=0.7; ⌈δ/κ⌉=4)")
		for _, p := range experiments.ETMDiminishingReturns(10, 8192, 8) {
			fmt.Printf("%10.0f%14.4f\n", p.Param, p.Value)
		}
		fmt.Println()
	}
	if !ran {
		log.Fatalf("unknown ablation %q", *which)
	}
	if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
		log.Fatal(err)
	}
}

// Command ablation runs the design-choice ablations of DESIGN.md §4: the
// L1.5 way count ζ, the way size κ at fixed capacity, the two components of
// Algorithm 1 (way allocation vs λ-driven priorities), the SDU's per-way
// configuration delay, and the ETM's diminishing returns per extra way.
// These sweeps back the repository's design discussion rather than a
// specific paper figure.
//
// Usage:
//
//	ablation [-dags N] [-trials N] [-seed S] [-which zeta|kappa|prio|delay|etm|all]
//	         [-workers N] [-checkpoint file.json] [-memo] [-memo-dir DIR]
//	         [-kernel events|ticked]
//
// Trials fan out on the internal/runner pool: -workers caps the
// concurrency (0 = NumCPU) without changing any result, -checkpoint makes
// an interrupted run (Ctrl-C) resumable at trial granularity, and
// -memo/-memo-dir enable the content-addressed trial result cache
// (internal/memo): a -memo-dir shared between runs serves every
// previously computed trial from disk, byte-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"l15cache/internal/cli"
	"l15cache/internal/experiments"
	"l15cache/internal/kernel"
	"l15cache/internal/memo"
	"l15cache/internal/metrics"
	"l15cache/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablation: ")

	dags := flag.Int("dags", 200, "DAG tasks per point (zeta/kappa/prio)")
	trials := flag.Int("trials", 20, "trials per point (delay)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	which := flag.String("which", "all", "zeta, kappa, prio, delay, etm or all")
	workers := flag.Int("workers", 0, "max concurrent trials (0 = NumCPU; never changes results)")
	checkpoint := flag.String("checkpoint", "", "JSON checkpoint file; an interrupted sweep resumes from it")
	memoFlag := flag.Bool("memo", false, "enable the in-memory trial result cache (never changes results)")
	memoDir := flag.String("memo-dir", "", "on-disk trial cache directory, shareable across runs (implies -memo)")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	kernelFlag := flag.String("kernel", "events", "simulator kernel: events (time-skipping) or ticked (legacy; identical results)")
	showVersion := cli.VersionFlag()
	startTelemetry := cli.TelemetryFlag()
	flag.Parse()
	showVersion()
	flushTelemetry := startTelemetry()

	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()

	// die flushes the partial -metrics/-trace artifacts before a fatal
	// exit, so an interrupted sweep (Ctrl-C → runner.Canceled) still
	// leaves complete files behind.
	die := func(err error) {
		if werr := metrics.WriteFiles(*metricsOut, *traceOut); werr != nil {
			log.Print(werr)
		}
		if werr := flushTelemetry(); werr != nil {
			log.Print(werr)
		}
		log.Fatal(err)
	}

	cache, err := memo.FromFlags(*memoFlag, *memoDir)
	if err != nil {
		log.Fatal(err)
	}

	run := runner.Options{Workers: *workers, Checkpoint: *checkpoint, Memo: cache}
	cfg := experiments.DefaultMakespanConfig()
	cfg.DAGs = *dags
	cfg.Seed = *seed
	cfg.Run = run
	cfg.Kernel = kern

	want := func(name string) bool { return *which == "all" || *which == name }
	ran := false

	if want("zeta") {
		ran = true
		res, err := experiments.AblateZeta(ctx, cfg, experiments.AblationZetaDefault())
		if err != nil {
			die(err)
		}
		fmt.Println(res.Format())
	}
	if want("kappa") {
		ran = true
		res, err := experiments.AblateWayBytes(ctx, cfg, experiments.AblationWayBytesDefault())
		if err != nil {
			die(err)
		}
		fmt.Println(res.Format())
	}
	if want("prio") {
		ran = true
		res, err := experiments.AblatePriorities(ctx, cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(res.Format())
	}
	if want("delay") {
		ran = true
		res, err := experiments.AblateConfigDelay(ctx, *trials, *seed, run, kern, experiments.AblationDelayDefault())
		if err != nil {
			die(err)
		}
		fmt.Println(res.Format())
	}
	if want("etm") {
		ran = true
		fmt.Println("ablation — ETM cost vs ways (μ=10, δ=8KB, α=0.7; ⌈δ/κ⌉=4)")
		for _, p := range experiments.ETMDiminishingReturns(10, 8192, 8) {
			fmt.Printf("%10.0f%14.4f\n", p.Param, p.Value)
		}
		fmt.Println()
	}
	if !ran {
		log.Fatalf("unknown ablation %q", *which)
	}
	if err := metrics.WriteFiles(*metricsOut, *traceOut); err != nil {
		log.Fatal(err)
	}
	if err := flushTelemetry(); err != nil {
		log.Fatal(err)
	}
}

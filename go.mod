module l15cache

go 1.22

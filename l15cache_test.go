package l15cache_test

import (
	"math/rand"
	"testing"

	"l15cache"
	"l15cache/internal/workload"
)

// TestQuickstartFlow exercises the documented public-API path end to end:
// build task → Alg. 1 → simulate, and checks the headline property (the
// proposed system beats the baselines and is warm-up free).
func TestQuickstartFlow(t *testing.T) {
	task := l15cache.Fig1Example()
	alloc, err := l15cache.Schedule(task, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.LocalWays[0] == 0 {
		t.Error("source received no ways")
	}

	opt := l15cache.SimOptions{Cores: 4, Instances: 4}
	prop := &l15cache.Proposed{Alloc: alloc}
	propStats, err := l15cache.Simulate(alloc, prop, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(propStats); i++ {
		if propStats[i].Makespan != propStats[0].Makespan {
			t.Error("proposed system should be warm-up free")
		}
	}

	base, err := l15cache.LongestPathFirst(task.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, plat := range []l15cache.Platform{l15cache.CMPL1(), l15cache.CMPL2(), l15cache.SharedL1()} {
		stats, err := l15cache.Simulate(base, plat, opt)
		if err != nil {
			t.Fatal(err)
		}
		if stats[0].Makespan <= propStats[0].Makespan {
			t.Errorf("%s cold makespan %.2f should exceed Prop %.2f",
				plat.Name(), stats[0].Makespan, propStats[0].Makespan)
		}
	}
}

func TestETMCostFacade(t *testing.T) {
	if got := l15cache.ETMCost(10, 0.5, 4096, 2048, 2); got != 5 {
		t.Errorf("ETMCost = %g, want 5", got)
	}
}

func TestNewTaskFacade(t *testing.T) {
	task := l15cache.NewTask("t", 10, 10)
	a := task.AddNode("a", 1, 1024)
	b := task.AddNode("b", 2, 0)
	if err := task.AddEdge(a, b, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := task.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRTFacade(t *testing.T) {
	p := workload.DefaultTaskSetParams()
	p.TargetUtilization = 3
	p.Tasks = 8
	tasks, err := workload.TaskSet(rand.New(rand.NewSource(1)), p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := l15cache.RunRT(tasks, l15cache.SystemProp, l15cache.DefaultRTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs == 0 {
		t.Error("no jobs simulated")
	}
}

func TestAssembleFacade(t *testing.T) {
	words, err := l15cache.Assemble("li a0, 1\nebreak", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 2 {
		t.Errorf("words = %d", len(words))
	}
}

func TestSoCFacade(t *testing.T) {
	runSharingDemo(t)
}

func TestDefaultSynthParamsFacade(t *testing.T) {
	p := l15cache.DefaultSynthParams()
	if p.MaxWidth != 15 || p.CPR != 0.1 || p.Utilization != 0.8 {
		t.Errorf("unexpected defaults: %+v", p)
	}
}

func TestAnalyzeMakespanFacade(t *testing.T) {
	task := l15cache.Fig1Example()
	bound, err := l15cache.AnalyzeMakespan(task, 4, l15cache.RawCost)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Makespan < bound.CriticalPath || bound.CriticalPath <= 0 {
		t.Errorf("bound = %+v", bound)
	}
	// The simulated makespan respects the bound.
	alloc, err := l15cache.LongestPathFirst(task.Clone())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := l15cache.Simulate(alloc, rawFacadePlat{}, l15cache.SimOptions{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Makespan > bound.Makespan+1e-9 {
		t.Errorf("simulated %g exceeds bound %g", stats[0].Makespan, bound.Makespan)
	}
}

type rawFacadePlat struct{}

func (rawFacadePlat) Name() string { return "raw" }
func (rawFacadePlat) ExecTime(v *l15cache.Node, warm bool, busyFrac float64) float64 {
	return v.WCET
}
func (rawFacadePlat) CommCost(e l15cache.Edge, producer *l15cache.Node, sameCore bool, busyFrac float64) float64 {
	return e.Cost
}
func (rawFacadePlat) Affinity() bool { return false }

func TestKernelFacade(t *testing.T) {
	task := l15cache.NewTask("facade-pipe", 1, 1)
	a := task.AddNode("a", 800, 2048)
	b := task.AddNode("b", 600, 0)
	if err := task.AddEdge(a, b, 5, 0.5); err != nil {
		t.Fatal(err)
	}
	k, err := l15cache.NewKernel(l15cache.KernelConfig{
		SoC:         l15cache.DefaultSoCConfig(),
		UseL15:      true,
		JobsPerTask: 1,
	}, []l15cache.KernelTask{{Task: task, PeriodCycles: 50_000, DeadlineCycles: 50_000}})
	if err != nil {
		t.Fatal(err)
	}
	records, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Missed {
		t.Errorf("records = %+v", records)
	}
}

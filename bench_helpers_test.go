package l15cache_test

import (
	"math/rand"
	"testing"

	"l15cache"
	"l15cache/internal/dag"
	"l15cache/internal/experiments"
	"l15cache/internal/rtos"
	"l15cache/internal/sched"
	"l15cache/internal/soc"
	"l15cache/internal/workload"
)

func mustSynthetic(tb testing.TB, seed int64, cfg experiments.MakespanConfig) *dag.Task {
	tb.Helper()
	task, err := workload.Synthetic(rand.New(rand.NewSource(seed)), cfg.Base)
	if err != nil {
		tb.Fatal(err)
	}
	return task
}

func scheduleL15(task *dag.Task) (*sched.Result, error) {
	return sched.L15Schedule(task, 16, 2048)
}

const sharingProducer = `
	li a0, 4
	demand a0
wait:
	supply a1
	beqz a1, wait
	ip_set a1
	li t0, 0x4000
	li t1, 64
	li t2, 1
wloop:
	sw t2, 0(t0)
	addi t0, t0, 4
	addi t2, t2, 1
	addi t1, t1, -1
	bnez t1, wloop
	gv_set a1
	li t0, 0x7000
	li t1, 1
	sw t1, 0(t0)
	ebreak
`

const sharingConsumer = `
	li t0, 0x7000
spin:
	lw t1, 0(t0)
	beqz t1, spin
	li t0, 0x4000
	li t1, 64
	li a0, 0
rloop:
	lw t2, 0(t0)
	add a0, a0, t2
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, rloop
	ebreak
`

func runSharingDemo(tb testing.TB) {
	tb.Helper()
	s, err := l15cache.NewSoC(l15cache.DefaultSoCConfig())
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := s.LoadProgram(0x1000, sharingProducer); err != nil {
		tb.Fatal(err)
	}
	if _, err := s.LoadProgram(0x2000, sharingConsumer); err != nil {
		tb.Fatal(err)
	}
	pt := s.IdentityPageTable(1)
	for core := 0; core < 2; core++ {
		if err := s.SetPageTable(core, pt); err != nil {
			tb.Fatal(err)
		}
	}
	s.StartCore(0, 0x1000, 0x8000)
	s.StartCore(1, 0x2000, 0x9000)
	for i := 2; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	if _, err := s.Run(1_000_000, nil); err != nil {
		tb.Fatal(err)
	}
	// Σ 1..64 = 2080: fail loudly if the simulated transfer broke.
	if got := s.Cores[1].Regs[10]; got != 2080 {
		tb.Fatalf("consumer sum = %d, want 2080", got)
	}
}

func runKernelBench(tb testing.TB) {
	tb.Helper()
	task := dag.New("bench-pipe", 1, 1)
	src := task.AddNode("a", 1200, 4096)
	mid := task.AddNode("b", 1800, 4096)
	sink := task.AddNode("c", 800, 0)
	task.MustAddEdge(src, mid, 10, 0.6)
	task.MustAddEdge(mid, sink, 10, 0.6)
	k, err := rtos.New(rtos.Config{
		SoC:         soc.DefaultConfig(),
		UseL15:      true,
		JobsPerTask: 2,
	}, []rtos.TaskSpec{{Task: task, PeriodCycles: 100_000, DeadlineCycles: 100_000}})
	if err != nil {
		tb.Fatal(err)
	}
	records, err := k.Run()
	if err != nil {
		tb.Fatal(err)
	}
	if len(records) != 2 || rtos.Misses(records) != 0 {
		tb.Fatalf("kernel bench records: %+v", records)
	}
}

// Package l15cache reproduces "A Cache/Algorithm Co-design for Parallel
// Real-Time Systems with Data Dependency on Multi/Many-core System-on-Chips"
// (DAC 2024): the reconfigurable L1.5 Cache, the DAG scheduling algorithm
// that exploits it (Alg. 1), and the full evaluation stack.
//
// The package is a facade over the implementation packages:
//
//   - the DAG task model ([Task], [NewTask], [Fig1Example]);
//   - Algorithm 1 and the baseline priority assignment ([Schedule],
//     [LongestPathFirst]);
//   - the makespan simulator of Fig. 7 / Tab. 2 ([Simulate], [Proposed],
//     [CMPL1], [CMPL2]);
//   - the periodic real-time simulator of Fig. 8 ([RunRT]);
//   - the cycle-approximate SoC with real RV32I + L1.5 ISA execution
//     ([NewSoC], [Assemble]);
//   - the experiment harnesses that regenerate every table and figure
//     (see the cmd/ tools and the experiments package).
//
// A minimal end-to-end use:
//
//	task := l15cache.Fig1Example()
//	alloc, _ := l15cache.Schedule(task, 16, 2048)       // Alg. 1
//	prop := &l15cache.Proposed{Alloc: alloc}
//	stats, _ := l15cache.Simulate(alloc, prop, l15cache.SimOptions{Cores: 4})
//	fmt.Println(stats[0].Makespan)
package l15cache

import (
	"l15cache/internal/analysis"
	"l15cache/internal/dag"
	"l15cache/internal/etm"
	"l15cache/internal/isa"
	"l15cache/internal/rtos"
	"l15cache/internal/rtsim"
	"l15cache/internal/sched"
	"l15cache/internal/schedsim"
	"l15cache/internal/soc"
	"l15cache/internal/workload"
)

// Task model (internal/dag).
type (
	// Task is a recurrent DAG task τ = {V, E, T, D}.
	Task = dag.Task
	// Node is one vertex with WCET C_j, data volume δ_j and priority P_j.
	Node = dag.Node
	// Edge is a dependency with communication cost μ and ETM ratio α.
	Edge = dag.Edge
	// NodeID indexes a node within its task.
	NodeID = dag.NodeID
)

// NewTask returns an empty DAG task.
func NewTask(name string, period, deadline float64) *Task {
	return dag.New(name, period, deadline)
}

// Fig1Example builds the paper's running example DAG (Fig. 1 / Fig. 6).
func Fig1Example() *Task { return dag.Fig1Example() }

// Scheduling (internal/sched).
type (
	// ScheduleResult is the output of a priority/way-allocation policy.
	ScheduleResult = sched.Result
	// WayGroup is ω_x of Alg. 1.
	WayGroup = sched.WayGroup
)

// Schedule runs Algorithm 1: it assigns each node local L1.5 ways (ζ total,
// κ = wayBytes each) and a priority, longest path first.
func Schedule(t *Task, zeta int, wayBytes int64) (*ScheduleResult, error) {
	return sched.L15Schedule(t, zeta, wayBytes)
}

// LongestPathFirst is the baseline intra-task priority assignment (He et
// al.) without L1.5 ways.
func LongestPathFirst(t *Task) (*ScheduleResult, error) {
	return sched.LongestPathFirst(t)
}

// ETMCost evaluates the Execution Time Model: the communication cost of an
// edge with raw cost mu and ratio alpha when n ways of wayBytes hold the
// producer's dataBytes.
func ETMCost(mu, alpha float64, dataBytes, wayBytes int64, n int) float64 {
	return etm.Cost(mu, alpha, dataBytes, wayBytes, n)
}

// Makespan simulation (internal/schedsim).
type (
	// Platform abstracts the simulated system (Proposed or a CMP).
	Platform = schedsim.Platform
	// Proposed is the L1.5 + Alg. 1 system.
	Proposed = schedsim.Proposed
	// CMP is a conventional baseline system.
	CMP = schedsim.CMP
	// SimOptions configure the makespan simulator.
	SimOptions = schedsim.Options
	// InstanceStats reports one simulated task instance.
	InstanceStats = schedsim.InstanceStats
)

// NewProposed schedules the task with Alg. 1 and wraps it as a Platform.
func NewProposed(t *Task, zeta int, wayBytes int64) (*Proposed, error) {
	return schedsim.NewProposed(t, zeta, wayBytes)
}

// CMPL1, CMPL2 and SharedL1 return the paper's baseline systems.
func CMPL1() *CMP    { return schedsim.CMPL1() }
func CMPL2() *CMP    { return schedsim.CMPL2() }
func SharedL1() *CMP { return schedsim.SharedL1() }

// Simulate runs the non-preemptive fixed-priority work-conserving list
// scheduler over consecutive task instances.
func Simulate(alloc *ScheduleResult, plat Platform, opt SimOptions) ([]InstanceStats, error) {
	return schedsim.Run(alloc, plat, opt)
}

// Periodic real-time simulation (internal/rtsim).
type (
	// RTConfig describes the simulated SoC for the case study.
	RTConfig = rtsim.Config
	// RTMetrics reports one trial.
	RTMetrics = rtsim.Metrics
	// SystemKind selects Prop / CMP|L1 / CMP|L2 / CMP|Shared-L1.
	SystemKind = rtsim.Kind
)

// Case-study system kinds.
const (
	SystemProp     = rtsim.KindProp
	SystemCMPL1    = rtsim.KindCMPL1
	SystemCMPL2    = rtsim.KindCMPL2
	SystemSharedL1 = rtsim.KindSharedL1
)

// DefaultRTConfig mirrors the paper's 8-core SoC.
func DefaultRTConfig() RTConfig { return rtsim.DefaultConfig() }

// RunRT simulates a periodic DAG task set and reports deadline misses, way
// utilisation and the mis-configuration ratio φ.
func RunRT(tasks []*Task, kind SystemKind, cfg RTConfig) (RTMetrics, error) {
	return rtsim.Run(tasks, kind, cfg)
}

// Workload generation (internal/workload).
type (
	// SynthParams configure §5.1's synthetic DAG generator.
	SynthParams = workload.SynthParams
	// TaskSetParams configure the case-study task sets.
	TaskSetParams = workload.TaskSetParams
)

// DefaultSynthParams returns the paper's synthetic defaults (p=15, cpr=0.1,
// U=0.8).
func DefaultSynthParams() SynthParams { return workload.DefaultSynthParams() }

// Hardware model (internal/soc, internal/isa).
type (
	// SoC is the cycle-approximate multi-cluster system-on-chip.
	SoC = soc.SoC
	// SoCConfig describes its geometry and latencies.
	SoCConfig = soc.Config
)

// DefaultSoCConfig is the 8-core, two-cluster evaluation platform.
func DefaultSoCConfig() SoCConfig { return soc.DefaultConfig() }

// NewSoC builds a simulated SoC.
func NewSoC(cfg SoCConfig) (*SoC, error) { return soc.New(cfg) }

// Assemble translates RV32I + L1.5-extension assembly into machine words.
func Assemble(src string, base uint32) ([]uint32, error) {
	return isa.Assemble(src, base)
}

// Timing analysis (internal/analysis).
type (
	// TimingBound is the safe Graham-style makespan bound of §4.2.
	TimingBound = analysis.Bound
)

// AnalyzeMakespan returns the safe makespan bound of the task on m cores
// under the given edge-cost function (RawCost for a conventional system,
// a ScheduleResult's Model.Weight() for the proposed one).
func AnalyzeMakespan(t *Task, m int, w EdgeWeight) (TimingBound, error) {
	return analysis.Makespan(t, m, w)
}

// EdgeWeight maps an edge to its communication cost in path computations.
type EdgeWeight = dag.EdgeWeight

// RawCost is the unassisted edge cost (the full μ).
func RawCost(e Edge) float64 { return dag.RawCost(e) }

// Kernel layer (internal/rtos): periodic DAG tasks executed by the
// FreeRTOS-like executive on the simulated SoC.
type (
	// KernelConfig configures the RTOS executive.
	KernelConfig = rtos.Config
	// KernelTask binds a DAG task to cycle-level period and deadline.
	KernelTask = rtos.TaskSpec
	// Kernel is the executive.
	Kernel = rtos.Kernel
	// JobRecord reports one job's release/finish/deadline outcome.
	JobRecord = rtos.JobRecord
)

// NewKernel builds the RTOS executive over a fresh SoC.
func NewKernel(cfg KernelConfig, tasks []KernelTask) (*Kernel, error) {
	return rtos.New(cfg, tasks)
}

package forensics

import (
	"fmt"
	"math"
	"sort"

	"l15cache/internal/flight"
)

// Gate classifies what a span's start instant was waiting on — the last
// event that had to happen before the scheduler could dispatch the node.
type Gate int

// The gate kinds, from the scheduler's dispatch rule: a node starts at the
// latest of its job's release, its last predecessor's finish, and the
// moment a core came free.
const (
	// GateRelease: the node started the instant its job was released.
	GateRelease Gate = iota
	// GatePred: the node started the instant its last predecessor
	// finished (data dependency bound).
	GatePred
	// GateCore: the node was ready earlier and started only when a
	// core's previous occupant finished (processor bound).
	GateCore
	// GateUnknown: no recorded event coincides with the start (the
	// recording wrapped, or it is from a foreign writer).
	GateUnknown
)

// String names the gate for reports.
func (g Gate) String() string {
	switch g {
	case GateRelease:
		return "release"
	case GatePred:
		return "pred"
	case GateCore:
		return "core"
	case GateUnknown:
		return "?"
	default:
		return fmt.Sprintf("Gate(%d)", int(g))
	}
}

// PathStep is one link of a critical path: a span plus what gated its
// start.
type PathStep struct {
	Span *Span
	Gate Gate
	// From is the span whose finish gated this one (the predecessor for
	// GatePred, the core's previous occupant for GateCore); nil for
	// GateRelease and GateUnknown.
	From *Span
}

// feq is the event-time equality the gate walk uses: the simulators
// dispatch at exactly the event instant, so identical float arithmetic
// makes the times bit-equal; the epsilon only absorbs decode round-trips.
func feq(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// CriticalPath walks the job's recorded events backward from its last
// completion, at each span asking what gated the start: a predecessor's
// finish, the core's previous occupant's finish (possibly from another
// job), or the release itself. The returned chain is contiguous — each
// step starts exactly when the previous one finishes — and ends at an
// instant no earlier than the release, so its total length equals the
// job's makespan whenever the first gate is the release.
func (m *Model) CriticalPath(key JobKey) ([]PathStep, error) {
	j, ok := m.byKey[key]
	if !ok {
		return nil, fmt.Errorf("forensics: no such job %v", key)
	}
	cur := lastSpan(j)
	if cur == nil {
		return nil, fmt.Errorf("forensics: %v has no dispatched nodes", key)
	}
	var rev []PathStep
	for cur != nil && len(rev) <= len(m.spans) {
		step := PathStep{Span: cur, Gate: GateUnknown}
		switch {
		case feq(cur.Start, j.Release):
			step.Gate = GateRelease
		default:
			if p := m.gatingPred(j, cur); p != nil {
				step.Gate, step.From = GatePred, p
			} else if q := m.gatingSpan(cur); q != nil {
				step.Gate, step.From = GateCore, q
			}
		}
		rev = append(rev, step)
		cur = step.From
	}
	// Reverse into chronological order.
	for i, k := 0, len(rev)-1; i < k; i, k = i+1, k-1 {
		rev[i], rev[k] = rev[k], rev[i]
	}
	return rev, nil
}

// lastSpan returns the job's latest-finishing span (lowest node on ties).
func lastSpan(j *JobInfo) *Span {
	var last *Span
	for _, id := range j.Nodes() {
		sp := j.Spans[id]
		if last == nil || sp.Finish > last.Finish {
			last = sp
		}
	}
	return last
}

// gatingPred returns the predecessor span of cur (same job) whose finish
// coincides with cur's start, or nil.
func (m *Model) gatingPred(j *JobInfo, cur *Span) *Span {
	var best *Span
	for _, e := range j.Edges[cur.Node] {
		p, ok := j.Spans[e.Pred]
		if !ok {
			continue
		}
		if feq(p.Finish, cur.Start) && (best == nil || p.Node < best.Node) {
			best = p
		}
	}
	return best
}

// gatingSpan returns the span (any job) whose finish coincides with cur's
// start — the completion whose dispatch pass placed cur. A span on cur's
// own core is preferred (that is the occupant cur physically waited out).
func (m *Model) gatingSpan(cur *Span) *Span {
	var sameCore, any *Span
	for _, sp := range m.spans {
		if sp == cur || !feq(sp.Finish, cur.Start) {
			continue
		}
		if sp.Core == cur.Core && (sameCore == nil || sp.Node < sameCore.Node) {
			sameCore = sp
		}
		if any == nil || sp.Node < any.Node {
			any = sp
		}
	}
	if sameCore != nil {
		return sameCore
	}
	return any
}

// PathLength is the chain's total duration: last finish minus first start.
// For a contiguous chain whose first gate is the release this equals the
// job's makespan.
func PathLength(path []PathStep) float64 {
	if len(path) == 0 {
		return 0
	}
	return path[len(path)-1].Span.Finish - path[0].Span.Start
}

// ValidatePath checks the chain's contiguity: every step must start
// exactly when the previous one finishes. A non-nil error means the
// recording was incomplete (wrapped ring) or from a foreign writer.
func ValidatePath(path []PathStep) error {
	for i := 1; i < len(path); i++ {
		prev, cur := path[i-1].Span, path[i].Span
		if !feq(prev.Finish, cur.Start) {
			return fmt.Errorf("forensics: gap in critical path: node %d finishes at %g but node %d starts at %g",
				prev.Node, prev.Finish, cur.Node, cur.Start)
		}
	}
	return nil
}

// Slack returns, per dispatched node of the job, how much later the node
// could have finished without (as recorded) delaying any dependent
// activity: the gap to the earliest among its consumers' starts, the next
// dispatch on its core (the occupant chain of the work-conserving
// scheduler), and the job's completion. Critical-path nodes have
// (near-)zero slack, whether the chain runs through data dependencies or
// core occupancy.
func (m *Model) Slack(key JobKey) (map[int]float64, error) {
	j, ok := m.byKey[key]
	if !ok {
		return nil, fmt.Errorf("forensics: no such job %v", key)
	}
	slack := make(map[int]float64, len(j.Spans))
	for _, id := range j.Nodes() {
		slack[id] = j.Finish - j.Spans[id].Finish
	}
	// Tighten by consumer starts: Edges maps consumer -> producers.
	for _, consumer := range j.Nodes() {
		for _, e := range j.Edges[consumer] {
			p, ok := j.Spans[e.Pred]
			if !ok {
				continue
			}
			if gap := j.Spans[consumer].Start - p.Finish; gap < slack[p.Node] {
				slack[p.Node] = gap
			}
		}
	}
	// Tighten by the core's next occupant (any job): finishing later
	// would have pushed its dispatch back.
	for _, id := range j.Nodes() {
		sp := j.Spans[id]
		for _, nxt := range m.spans {
			if nxt == sp || nxt.Core != sp.Core || nxt.Start < sp.Finish-1e-12 {
				continue
			}
			if gap := nxt.Start - sp.Finish; gap < slack[id] {
				slack[id] = gap
			}
		}
	}
	return slack, nil
}

// NodeReport is the blocked-on-what attribution of one node: the split of
// its response into waiting on predecessors, waiting for a core, fetching
// dependent data, and executing, plus the way supply it saw.
type NodeReport struct {
	Node    int
	Core    int
	Cluster int

	Ready  float64 // max(release, last recorded predecessor finish)
	Start  float64
	Finish float64

	PredWait float64 // Ready − release: time dependencies held the node
	CoreWait float64 // Start − Ready: time spent waiting for a core
	Fetch    float64 // fetch-phase duration
	Exec     float64 // execute-phase duration

	Planned, Granted int     // L1.5 ways demanded vs granted (Prop only)
	ETMSaved         float64 // Σ (raw − effective) over incoming edges
	Slack            float64
}

// Attribution builds the per-node wait breakdown for one job, sorted by
// node ID.
func (m *Model) Attribution(key JobKey) ([]NodeReport, error) {
	j, ok := m.byKey[key]
	if !ok {
		return nil, fmt.Errorf("forensics: no such job %v", key)
	}
	slack, err := m.Slack(key)
	if err != nil {
		return nil, err
	}
	reports := make([]NodeReport, 0, len(j.Spans))
	for _, id := range j.Nodes() {
		sp := j.Spans[id]
		ready := j.Release
		var saved float64
		for _, e := range j.Edges[id] {
			saved += e.Raw - e.Cost
			if p, ok := j.Spans[e.Pred]; ok && p.Finish > ready {
				ready = p.Finish
			}
		}
		reports = append(reports, NodeReport{
			Node: id, Core: sp.Core, Cluster: sp.Cluster,
			Ready: ready, Start: sp.Start, Finish: sp.Finish,
			PredWait: ready - j.Release,
			CoreWait: sp.Start - ready,
			Fetch:    sp.Fetch, Exec: sp.Exec,
			Planned: sp.Planned, Granted: sp.Granted,
			ETMSaved: saved,
			Slack:    slack[id],
		})
	}
	return reports, nil
}

// WayPoint is one step of a cluster's way-occupancy timeline.
type WayPoint struct {
	Time        float64
	Assigned    int // ways with an owner after the event (-1 unknown)
	Reclaimable int // released-but-assigned ways after the event (-1 unknown)
}

// WayTimeline reconstructs a cluster's way occupancy from the grant and
// reclamation events, in recording order. Runtime grants carry the
// assigned-after count; node-level reclamations carry the
// reclaimable-after count; job teardowns carry both.
func (m *Model) WayTimeline(cluster int) []WayPoint {
	var pts []WayPoint
	assigned, reclaimable := -1, -1
	for _, e := range m.wayEvents {
		if int(e.Cluster) != cluster {
			continue
		}
		switch e.Kind {
		case flight.KindGrant:
			assigned = int(e.C)
		case flight.KindWayFree:
			reclaimable = int(e.B)
			if e.Node < 0 { // job teardown also reports assigned-after
				assigned = int(e.C)
			}
		case flight.KindSDU:
			// Event-driven SDU occupations do not change occupancy;
			// cycle-accurate ones move one way: A=1 assign, 0 revoke.
			if e.Node >= 0 && e.Task < 0 {
				if assigned < 0 {
					assigned = 0
				}
				if e.A != 0 {
					assigned++
				} else if assigned > 0 {
					assigned--
				}
			} else {
				continue
			}
		default:
			continue
		}
		pts = append(pts, WayPoint{Time: e.Time, Assigned: assigned, Reclaimable: reclaimable})
	}
	return pts
}

// Clusters returns the sorted cluster IDs that appear in way events.
func (m *Model) Clusters() []int {
	seen := make(map[int]bool)
	for _, e := range m.wayEvents {
		if e.Cluster >= 0 {
			seen[int(e.Cluster)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for cl := range seen {
		out = append(out, cl)
	}
	sort.Ints(out)
	return out
}

// MissChain explains one deadline miss: the job, how late it was, its
// critical path, and the nodes that waited longest.
type MissChain struct {
	Job      *JobInfo
	Lateness float64 // completion − absolute deadline
	Path     []PathStep
	// TopWaits are the job's nodes by total wait (PredWait+CoreWait),
	// descending, capped at three.
	TopWaits []NodeReport
}

// MissChains builds a root-cause chain for every missed job, in release
// order.
func (m *Model) MissChains() []MissChain {
	var out []MissChain
	for _, j := range m.Jobs {
		if !j.Missed || len(j.Spans) == 0 {
			continue
		}
		path, err := m.CriticalPath(j.Key)
		if err != nil {
			continue
		}
		reports, err := m.Attribution(j.Key)
		if err != nil {
			continue
		}
		sort.SliceStable(reports, func(a, b int) bool {
			wa := reports[a].PredWait + reports[a].CoreWait
			wb := reports[b].PredWait + reports[b].CoreWait
			if wa != wb {
				return wa > wb
			}
			return reports[a].Node < reports[b].Node
		})
		if len(reports) > 3 {
			reports = reports[:3]
		}
		out = append(out, MissChain{
			Job:      j,
			Lateness: j.Finish - j.Deadline,
			Path:     path,
			TopWaits: reports,
		})
	}
	return out
}

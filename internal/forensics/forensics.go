// Package forensics turns a flight recording into root-cause answers: who
// was on the critical path, what every node waited for (predecessors, L1.5
// ways, or a free core), how way occupancy moved over time, and why a
// deadline was missed.
//
// The analyzers are offline and pure: they consume a flight.Recording (the
// export of internal/flight) and never touch the simulators, so a recording
// taken on one machine can be dissected on another. All results are
// deterministic functions of the recording — ties break on the lowest node
// ID, map walks are sorted — so cmd/explain output is reproducible
// byte-for-byte, matching the recorder's own determinism contract.
package forensics

import (
	"fmt"
	"sort"

	"l15cache/internal/flight"
)

// Span is one executed node occurrence reconstructed from a dispatch/finish
// event pair.
type Span struct {
	Task, Job int
	Node      int
	Core      int
	Cluster   int
	Start     float64 // dispatch instant
	Fetch     float64 // fetch-phase duration (edge communication)
	Exec      float64 // execute-phase duration
	Finish    float64 // completion instant
	Planned   int     // L1.5 ways Alg. 1 planned for the node
	Granted   int     // ways the Walloc actually granted at dispatch
}

// Edge is one recorded ETM application: the effective cost the consumer
// paid to fetch one predecessor's data.
type Edge struct {
	Pred int     // producer node ID
	Raw  float64 // raw edge cost μ
	Cost float64 // effective cost after the ETM reduction
}

// JobKey identifies one job (task release) in a recording.
type JobKey struct {
	Task, Job int
}

// String renders the key as "task T job J".
func (k JobKey) String() string { return fmt.Sprintf("task %d job %d", k.Task, k.Job) }

// JobInfo is everything recorded about one job.
type JobInfo struct {
	Key      JobKey
	Release  float64
	Deadline float64 // absolute; 0 when the workload has none
	Finish   float64 // completion (or horizon cutoff) instant
	Missed   bool
	Response float64 // response time normalised by the relative deadline

	// Spans maps node ID to its execution; nodes never dispatched (job
	// cut off at the horizon) are absent.
	Spans map[int]*Span
	// Edges maps a consumer node to its recorded incoming edges.
	Edges map[int][]Edge

	planned map[int]int // node -> planned ways (KindGrant A), pre-dispatch
}

// Nodes returns the job's dispatched node IDs in ascending order.
func (j *JobInfo) Nodes() []int {
	ids := make([]int, 0, len(j.Spans))
	for id := range j.Spans {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Makespan is the job's completion time relative to its release.
func (j *JobInfo) Makespan() float64 { return j.Finish - j.Release }

// Model is the queryable form of a recording.
type Model struct {
	Dropped uint64 // events the ring overwrote (recording incomplete)

	// Jobs in first-appearance order.
	Jobs  []*JobInfo
	byKey map[JobKey]*JobInfo

	// spans holds every span in dispatch order, for cross-job queries
	// (which span freed the core another span was waiting for).
	spans []*Span

	// wayEvents are the KindGrant/KindWayFree/KindSDU events in sequence
	// order, for the occupancy timelines.
	wayEvents []flight.Event

	// KindCounts tallies the recording by event kind.
	KindCounts [flight.KindCount]int
}

// Build indexes a recording. Events with unknown kinds are counted but
// otherwise ignored, so a newer recording still loads.
func Build(rec flight.Recording) *Model {
	m := &Model{
		Dropped: rec.Dropped,
		byKey:   make(map[JobKey]*JobInfo),
	}
	for _, e := range rec.Events {
		if int(e.Kind) < flight.KindCount {
			m.KindCounts[e.Kind]++
		}
		switch e.Kind {
		case flight.KindRelease:
			j := m.job(e)
			j.Release = e.Time
			j.Deadline = e.A
		case flight.KindGrant:
			j := m.job(e)
			j.planned[int(e.Node)] = int(e.A)
			m.wayEvents = append(m.wayEvents, e)
		case flight.KindEdge:
			j := m.job(e)
			j.Edges[int(e.Node)] = append(j.Edges[int(e.Node)], Edge{
				Pred: int(e.A), Raw: e.B, Cost: e.C,
			})
		case flight.KindDispatch:
			j := m.job(e)
			sp := &Span{
				Task: int(e.Task), Job: int(e.Job), Node: int(e.Node),
				Core: int(e.Core), Cluster: int(e.Cluster),
				Start: e.Time, Fetch: e.A, Exec: e.B,
				Finish:  e.Time + e.A + e.B,
				Granted: int(e.C),
				Planned: j.planned[int(e.Node)],
			}
			j.Spans[sp.Node] = sp
			m.spans = append(m.spans, sp)
		case flight.KindFinish:
			j := m.job(e)
			if sp, ok := j.Spans[int(e.Node)]; ok {
				sp.Finish = e.Time
			}
		case flight.KindDeadline:
			j := m.job(e)
			j.Finish = e.Time
			j.Missed = e.B != 0
			j.Response = e.C
		case flight.KindWayFree, flight.KindSDU:
			m.wayEvents = append(m.wayEvents, e)
		case flight.KindSchedStart, flight.KindWave, flight.KindLambda,
			flight.KindPlanWays, flight.KindGVConvert:
			// Planning-time events: summarised via KindCounts only.
		default:
			// Unknown kind from a newer writer: skip.
		}
	}
	// A job cut off before its deadline check keeps Finish at the latest
	// span completion so the timelines stay renderable.
	for _, j := range m.Jobs {
		if j.Finish == 0 {
			for _, id := range j.Nodes() {
				if f := j.Spans[id].Finish; f > j.Finish {
					j.Finish = f
				}
			}
		}
	}
	return m
}

// job returns (creating on first sight) the event's job record. Events
// with Task or Job of -1 never reach it.
func (m *Model) job(e flight.Event) *JobInfo {
	key := JobKey{Task: int(e.Task), Job: int(e.Job)}
	if j, ok := m.byKey[key]; ok {
		return j
	}
	j := &JobInfo{
		Key:     key,
		Spans:   make(map[int]*Span),
		Edges:   make(map[int][]Edge),
		planned: make(map[int]int),
	}
	m.byKey[key] = j
	m.Jobs = append(m.Jobs, j)
	return j
}

// Job looks up one job.
func (m *Model) Job(key JobKey) (*JobInfo, bool) {
	j, ok := m.byKey[key]
	return j, ok
}

// FocusJob picks the job cmd/explain should dissect by default: the first
// missed job, or failing that the job with the largest makespan. Returns
// false for a recording with no jobs (e.g. a pure planning or hardware
// recording).
func (m *Model) FocusJob() (JobKey, bool) {
	var best *JobInfo
	for _, j := range m.Jobs {
		if len(j.Spans) == 0 {
			continue
		}
		switch {
		case best == nil:
			best = j
		case j.Missed && !best.Missed:
			best = j
		case j.Missed == best.Missed && j.Makespan() > best.Makespan():
			best = j
		}
	}
	if best == nil {
		return JobKey{}, false
	}
	return best.Key, true
}

// Cores returns the sorted list of cores any span executed on.
func (m *Model) Cores() []int {
	seen := make(map[int]bool)
	for _, sp := range m.spans {
		seen[sp.Core] = true
	}
	cores := make([]int, 0, len(seen))
	for c := range seen {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	return cores
}

// Spans returns every span in dispatch order.
func (m *Model) Spans() []*Span { return m.spans }

package forensics_test

import (
	"math"
	"math/rand"
	"testing"

	"l15cache/internal/flight"
	"l15cache/internal/forensics"
	"l15cache/internal/rtsim"
	"l15cache/internal/schedsim"
	"l15cache/internal/workload"
)

// recordSchedsim runs one proposed-platform simulation with a recorder and
// returns the recording plus the simulated makespans.
func recordSchedsim(t *testing.T, seed int64, instances int) (flight.Recording, []schedsim.InstanceStats) {
	t.Helper()
	task, err := workload.Synthetic(rand.New(rand.NewSource(seed)), workload.DefaultSynthParams())
	if err != nil {
		t.Fatal(err)
	}
	prop, err := schedsim.NewProposed(task, 16, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New()
	stats, err := schedsim.Run(prop.Alloc, prop, schedsim.Options{
		Cores: 8, Instances: instances, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Snapshot(), stats
}

// TestCriticalPathEqualsMakespan is the acceptance property: the extracted
// critical path of an instance is contiguous, starts at the release, ends
// at the last completion, and therefore has length exactly equal to the
// simulated makespan.
func TestCriticalPathEqualsMakespan(t *testing.T) {
	recording, stats := recordSchedsim(t, 7, 3)
	m := forensics.Build(recording)
	if len(m.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(m.Jobs))
	}
	for i, j := range m.Jobs {
		path, err := m.CriticalPath(j.Key)
		if err != nil {
			t.Fatal(err)
		}
		if err := forensics.ValidatePath(path); err != nil {
			t.Fatal(err)
		}
		if got := path[0].Gate; got != forensics.GateRelease {
			t.Fatalf("job %d: first gate = %v, want release", i, got)
		}
		length := forensics.PathLength(path)
		if want := stats[i].Makespan; math.Abs(length-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("job %d: critical path length %g != makespan %g", i, length, want)
		}
	}
}

// TestSlackConsistency checks the slack invariants: critical-path nodes
// have zero slack, no slack is negative, and finish+slack never exceeds
// the earliest recorded consumer start.
func TestSlackConsistency(t *testing.T) {
	recording, _ := recordSchedsim(t, 11, 1)
	m := forensics.Build(recording)
	j := m.Jobs[0]
	slack, err := m.Slack(j.Key)
	if err != nil {
		t.Fatal(err)
	}
	path, err := m.CriticalPath(j.Key)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range path {
		if step.Span.Task != j.Key.Task || step.Span.Job != j.Key.Job {
			continue // chain segment borrowed from another job
		}
		if s := slack[step.Span.Node]; math.Abs(s) > 1e-9 {
			t.Fatalf("critical node %d has slack %g, want 0", step.Span.Node, s)
		}
	}
	for _, id := range j.Nodes() {
		if slack[id] < -1e-9 {
			t.Fatalf("node %d has negative slack %g", id, slack[id])
		}
	}
}

// TestAttributionDecomposition checks that each node's recorded response
// decomposes exactly: release + PredWait + CoreWait + Fetch + Exec =
// finish.
func TestAttributionDecomposition(t *testing.T) {
	recording, _ := recordSchedsim(t, 3, 1)
	m := forensics.Build(recording)
	j := m.Jobs[0]
	reports, err := m.Attribution(j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(j.Spans) {
		t.Fatalf("reports = %d, want %d", len(reports), len(j.Spans))
	}
	for _, r := range reports {
		sum := j.Release + r.PredWait + r.CoreWait + r.Fetch + r.Exec
		if math.Abs(sum-r.Finish) > 1e-9*math.Max(1, r.Finish) {
			t.Fatalf("node %d: decomposition %g != finish %g", r.Node, sum, r.Finish)
		}
		if r.PredWait < -1e-9 || r.CoreWait < -1e-9 {
			t.Fatalf("node %d: negative wait (pred %g, core %g)", r.Node, r.PredWait, r.CoreWait)
		}
	}
}

// recordRtsim runs one proposed-system real-time trial with a recorder.
func recordRtsim(t *testing.T) flight.Recording {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	set := workload.DefaultTaskSetParams()
	set.Tasks = 3
	set.TargetUtilization = 0.6 * 8
	tasks, err := workload.TaskSet(r, set)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rtsim.DefaultConfig()
	rec := flight.New()
	cfg.Recorder = rec
	if _, err := rtsim.Run(tasks, rtsim.KindProp, cfg); err != nil {
		t.Fatal(err)
	}
	return rec.Snapshot()
}

// TestRtsimRecordingForensics checks the analyzers on a multi-task
// real-time recording: the focus job's critical path is contiguous, ends
// at the job's completion, terminates at a release, and the way timelines
// stay within the cluster's capacity.
func TestRtsimRecordingForensics(t *testing.T) {
	recording := recordRtsim(t)
	m := forensics.Build(recording)
	if m.Dropped != 0 {
		t.Fatalf("recording dropped %d events; enlarge the test ring", m.Dropped)
	}
	key, ok := m.FocusJob()
	if !ok {
		t.Fatal("no focus job in recording")
	}
	j, _ := m.Job(key)
	path, err := m.CriticalPath(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := forensics.ValidatePath(path); err != nil {
		t.Fatal(err)
	}
	if got := path[len(path)-1].Span.Finish; math.Abs(got-j.Finish) > 1e-9 {
		t.Fatalf("path ends at %g, job finishes at %g", got, j.Finish)
	}
	if path[0].Gate != forensics.GateRelease {
		t.Fatalf("first gate = %v, want release", path[0].Gate)
	}
	for _, cl := range m.Clusters() {
		for _, pt := range m.WayTimeline(cl) {
			if pt.Assigned > 16 {
				t.Fatalf("cluster %d: %d ways assigned at t=%g (ζ=16)", cl, pt.Assigned, pt.Time)
			}
		}
	}
}

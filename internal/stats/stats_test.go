package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMaxMinSum(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); got != 2.8 {
		t.Errorf("Mean = %g", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %g", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %g", got)
	}
	if got := Sum(xs); got != 14 {
		t.Errorf("Sum = %g", got)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty slices should yield 0")
	}
}

func TestNormalize(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{4, 3}
	out, max := Normalize(a, b)
	if max != 4 {
		t.Fatalf("normaliser = %g, want 4", max)
	}
	if out[0][0] != 0.25 || out[1][0] != 1 {
		t.Errorf("normalised = %v", out)
	}
	// All-zero input returns unchanged values.
	z, max := Normalize([]float64{0, 0})
	if max != 0 || z[0][0] != 0 {
		t.Errorf("zero series: %v, %g", z, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {110, 50},
		{12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Errorf("input mutated: %v", ys)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constant = %g", got)
	}
	if got := StdDev([]float64{1, 3}); got != 1 {
		t.Errorf("StdDev = %g, want 1", got)
	}
	if StdDev(nil) != 0 {
		t.Error("empty StdDev should be 0")
	}
}

// Property: Min <= Mean <= Max, and Normalize bounds everything in [0,1]
// for non-negative input.
func TestQuickStats(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitudes so the sum cannot overflow.
			xs = append(xs, math.Mod(math.Abs(x), 1e12))
		}
		if len(xs) == 0 {
			return true
		}
		if Min(xs) > Mean(xs)+1e-9 || Mean(xs) > Max(xs)+1e-9 {
			return false
		}
		out, _ := Normalize(xs)
		for _, v := range out[0] {
			if v < 0 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

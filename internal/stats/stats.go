// Package stats provides the small statistical helpers the experiment
// harnesses use: means, maxima, normalisation and percentiles over float64
// samples.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the largest value in xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest value in xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Normalize divides every sample by the largest value across all the given
// series, the scheme Fig. 7 of the paper uses ("normalised by the highest
// value observed"). It returns the normalised copies and the normaliser.
// If the global maximum is zero the series are returned unchanged.
func Normalize(series ...[]float64) ([][]float64, float64) {
	var max float64
	for _, s := range series {
		if m := Max(s); m > max {
			max = m
		}
	}
	out := make([][]float64, len(series))
	for i, s := range series {
		out[i] = make([]float64, len(s))
		for j, x := range s {
			if max > 0 {
				out[i][j] = x / max
			} else {
				out[i][j] = x
			}
		}
	}
	return out, max
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Package rtsim simulates periodic DAG task sets on a multi-core SoC for
// the paper's case study (§5.2, Fig. 8(a,b)) and side-effects analysis
// (§5.3, Fig. 8(c)). Jobs are released periodically, nodes are dispatched by
// a global non-preemptive fixed-priority work-conserving scheduler
// (rate-monotonic between tasks, Alg. 1 / longest-path-first within a task),
// and deadline misses are recorded per job.
//
// For the proposed system the simulator additionally models the per-cluster
// L1.5 Cache at the way level: each dispatched node demands its planned
// number of ways from its cluster's pool, the Supply-Demand Unit configures
// one way at a time (a busy SDU queues requests), granted ways stay
// assigned until every consumer of the node's data has finished, and the
// monitor integrates way utilisation and the mis-configuration ratio φ —
// the fraction of execution time spent before the SDU finished applying the
// node's configuration.
package rtsim

import (
	"fmt"
	"math"
	"sort"

	"l15cache/internal/dag"
	"l15cache/internal/etm"
	"l15cache/internal/flight"
	"l15cache/internal/kernel"
	"l15cache/internal/metrics"
	"l15cache/internal/sched"
	"l15cache/internal/schedsim"
)

// Real-time simulator counters on the default registry (atomic; the case
// study fans trials out over goroutines). The granted-ways histogram
// records how many L1.5 ways the Walloc actually handed each dispatched
// node of the proposed system.
var (
	mTrials      = metrics.Default.Counter("rtsim.trials")
	mJobs        = metrics.Default.Counter("rtsim.jobs_released")
	mMisses      = metrics.Default.Counter("rtsim.deadline_misses")
	mNodes       = metrics.Default.Counter("rtsim.nodes_dispatched")
	mGrantedWays = metrics.Default.Histogram("rtsim.granted_ways",
		[]float64{0, 1, 2, 4, 8, 16, 32})
)

// Kind selects the simulated system.
type Kind int

// The four systems of the case study.
const (
	KindProp Kind = iota
	KindCMPL1
	KindCMPL2
	KindSharedL1
)

// String returns the system's report name.
func (k Kind) String() string {
	switch k {
	case KindProp:
		return "Prop"
	case KindCMPL1:
		return "CMP|L1"
	case KindCMPL2:
		return "CMP|L2"
	case KindSharedL1:
		return "CMP|Shared-L1"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config describes the simulated SoC and run length.
type Config struct {
	// Cores is the total core count (8 or 16 in the paper).
	Cores int

	// ClusterSize is the number of cores sharing one L1.5 Cache (4).
	ClusterSize int

	// Zeta is ζ, the number of L1.5 ways per cluster (16).
	Zeta int

	// WayBytes is κ (2 KB).
	WayBytes int64

	// HorizonPeriods scales the simulation length: horizon =
	// HorizonPeriods × max task period. Default 4.
	HorizonPeriods float64

	// WayConfigDelay is the SDU's per-way reconfiguration time in task
	// time units, including the request round-trip; requests queue on a
	// busy SDU, which is what makes φ grow with utilisation (default
	// 0.01).
	WayConfigDelay float64

	// Recorder, when non-nil, receives the trial's flight events: the
	// per-task Alg. 1 planning runs, job releases, dispatches with their
	// runtime way grants and SDU occupations, per-edge ETM costs, node
	// finishes, way reclamations and deadline checks. One recorder per
	// trial keeps recordings deterministic under the parallel harness
	// (merge per-trial recordings in index order).
	Recorder *flight.Recorder

	// Partitioned switches from global scheduling to partitioned-by-
	// cluster: each task is bound to one cluster (worst-fit by task
	// load) and its nodes only dispatch on that cluster's cores. This
	// keeps every producer-consumer pair inside one L1.5 — the
	// guaranteed-allocation setting the ETM analysis assumes — at the
	// price of lost global work conservation.
	Partitioned bool

	// Kernel selects the dispatch kernel. The zero value, kernel.Events,
	// reuses per-trial scratch buffers in the dispatch loop; kernel.Ticked
	// keeps the legacy allocating dispatcher. Both share one event heap
	// and emit byte-identical flight recordings (DESIGN.md §11).
	Kernel kernel.Mode
}

// DefaultConfig mirrors the paper's 8-core SoC (two clusters of four cores,
// each with a 16-way L1.5).
func DefaultConfig() Config {
	return Config{
		Cores:          8,
		ClusterSize:    4,
		Zeta:           16,
		WayBytes:       2 * 1024,
		HorizonPeriods: 4,
		WayConfigDelay: 0.01,
	}
}

func (c *Config) fill() error {
	if c.Cores <= 0 {
		return fmt.Errorf("rtsim: cores = %d", c.Cores)
	}
	if c.ClusterSize <= 0 {
		c.ClusterSize = 4
	}
	if c.Zeta < 0 {
		return fmt.Errorf("rtsim: zeta = %d", c.Zeta)
	}
	if c.WayBytes == 0 {
		c.WayBytes = 2 * 1024
	}
	if c.WayBytes < 0 {
		return fmt.Errorf("rtsim: way bytes = %d", c.WayBytes)
	}
	if c.HorizonPeriods <= 0 {
		c.HorizonPeriods = 4
	}
	if c.WayConfigDelay < 0 {
		return fmt.Errorf("rtsim: negative way config delay")
	}
	return nil
}

// Metrics reports one simulated trial.
type Metrics struct {
	System Kind

	Jobs   int // jobs released with deadlines inside the horizon
	Misses int // jobs that missed their deadline

	// WayUtilization is the time-averaged fraction of L1.5 ways assigned
	// while the system was busy (proposed system only; zero otherwise).
	WayUtilization float64

	// Phi is the mis-configuration ratio φ: execution time spent under a
	// not-yet-applied way configuration over total execution time
	// (proposed system only).
	Phi float64

	// BusyTime is the span during which at least one job was active.
	BusyTime float64

	// MaxResponse and MeanResponse summarise job response times
	// normalised by the task deadline: a value of 1.0 is a job finishing
	// exactly at its deadline. MaxResponse > 1 implies Misses > 0.
	MaxResponse  float64
	MeanResponse float64
}

// Success reports whether the trial completed without any deadline miss
// (the unit the case study's success ratio counts).
func (m Metrics) Success() bool { return m.Misses == 0 }

// job is one release of a task.
type job struct {
	taskIdx  int
	jobIdx   int // release index of the task (0, 1, ...)
	task     *dag.Task
	alloc    *sched.Result
	release  float64
	deadline float64

	indeg    []int
	done     []bool
	coreOf   []int
	startAt  []float64 // dispatch instant per node (flight forensics)
	granted  []int     // Prop: ways granted per node
	cluster  []int     // Prop: cluster holding each node's ways
	succLeft []int     // consumers still running, gates way release
	left     int       // unfinished nodes
	missed   bool
}

// readyNode identifies a dispatchable node.
type readyNode struct {
	j *job
	v dag.NodeID
}

// event is a node completion.
type event struct {
	at float64
	j  *job
	v  dag.NodeID
}

// eventHeap is a hand-rolled binary min-heap of completions, replacing the
// container/heap adapter so Push/Pop stop boxing events into interface
// values. The sift algorithm mirrors container/heap step for step (the
// down-child is preferred only on a strictly-smaller comparison), which
// matters because lessEvent is not a strict total order — two jobs of
// different tasks can tie on (at, release, v) — and the pop sequence of
// ties must not change across the refactor.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func lessEvent(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.j.release != b.j.release {
		return a.j.release < b.j.release
	}
	return a.v < b.v
}

func pushEvent(h *eventHeap, e event) {
	*h = append(*h, e)
	j := len(*h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !lessEvent((*h)[j], (*h)[i]) {
			break
		}
		(*h)[i], (*h)[j] = (*h)[j], (*h)[i]
		j = i
	}
}

func popEvent(h *eventHeap) event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // release the *job reference
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && lessEvent(old[l], old[small]) {
			small = l
		}
		if r < n && lessEvent(old[r], old[small]) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// sim is the mutable state of one trial.
type sim struct {
	cfg       Config
	rec       *flight.Recorder
	kind      Kind
	kernel    kernel.Mode
	plat      *schedsim.CMP // nil for Prop
	tasks     []*dag.Task
	allocs    []*sched.Result
	rmRank    []int // task index -> rate-monotonic rank (0 = highest)
	partition []int // task index -> cluster (Partitioned mode), else nil
	relIdx    []int // task index -> next release index
	prevCore  [][]int

	now     float64
	freeAt  []float64
	ready   []readyNode
	events  eventHeap
	horizon float64

	clusters int
	// Way ownership is sticky, as in the hardware: a way stays assigned
	// to its last owner until the Walloc reassigns it. assigned counts
	// ways with an owner; reclaimable counts the assigned ways whose
	// dependent data is no longer needed (every consumer finished), which
	// the Walloc may hand to the next demand.
	assigned    []int
	reclaimable []int
	sduFreeAt   []float64 // per cluster: SDU busy-until

	// events-kernel scratch, reused across dispatch rounds so the
	// steady-state loop allocates nothing.
	idleBuf        []int
	clusterIdleBuf []int
	skipBuf        []bool

	// accounting
	wayIntegral  float64 // ∫ used ways dt over busy clusters
	clusterBusy  float64 // ∫ #busy clusters dt
	busyTime     float64
	lastT        float64
	execTotal    float64
	misconfTotal float64
	respSum      float64
	respJobs     int
	metrics      Metrics
}

// Run simulates one trial of the task set on the selected system and
// returns its metrics. The task set is not mutated (tasks are cloned so the
// per-system priority assignment stays internal).
func Run(tasks []*dag.Task, kind Kind, cfg Config) (Metrics, error) {
	if err := cfg.fill(); err != nil {
		return Metrics{}, err
	}
	if len(tasks) == 0 {
		return Metrics{}, fmt.Errorf("rtsim: empty task set")
	}
	s := &sim{cfg: cfg, rec: cfg.Recorder, kind: kind, kernel: cfg.Kernel}
	switch kind {
	case KindProp:
	case KindCMPL1:
		s.plat = schedsim.CMPL1()
	case KindCMPL2:
		s.plat = schedsim.CMPL2()
	case KindSharedL1:
		s.plat = schedsim.SharedL1()
	default:
		return Metrics{}, fmt.Errorf("rtsim: unknown system %v", kind)
	}

	// Per-task scheduling (priorities and, for Prop, the way plan).
	var maxPeriod float64
	for ti, t := range tasks {
		c := t.Clone()
		var alloc *sched.Result
		var err error
		if kind == KindProp {
			alloc, err = sched.L15ScheduleRec(c, cfg.Zeta, cfg.WayBytes, s.rec, ti)
		} else {
			alloc, err = sched.LongestPathFirstRec(c, s.rec, ti)
		}
		if err != nil {
			return Metrics{}, err
		}
		s.tasks = append(s.tasks, c)
		s.allocs = append(s.allocs, alloc)
		if t.Period > maxPeriod {
			maxPeriod = t.Period
		}
	}
	s.horizon = cfg.HorizonPeriods * maxPeriod

	// Rate-monotonic ranks: shorter period = higher priority.
	order := make([]int, len(s.tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.tasks[order[a]].Period < s.tasks[order[b]].Period
	})
	s.rmRank = make([]int, len(s.tasks))
	for rank, idx := range order {
		s.rmRank[idx] = rank
	}

	s.freeAt = make([]float64, cfg.Cores)
	s.relIdx = make([]int, len(s.tasks))
	s.prevCore = make([][]int, len(s.tasks))
	for i, t := range s.tasks {
		s.prevCore[i] = make([]int, len(t.Nodes))
		for j := range s.prevCore[i] {
			s.prevCore[i][j] = -1
		}
	}
	s.clusters = (cfg.Cores + cfg.ClusterSize - 1) / cfg.ClusterSize
	s.assigned = make([]int, s.clusters)
	s.reclaimable = make([]int, s.clusters)
	s.sduFreeAt = make([]float64, s.clusters)

	if cfg.Partitioned {
		s.partitionTasks()
	}

	s.run()
	s.metrics.System = kind
	mTrials.Inc()
	mJobs.Add(uint64(s.metrics.Jobs))
	mMisses.Add(uint64(s.metrics.Misses))
	return s.metrics, nil
}

// run executes the event loop: releases and completions in time order, with
// a dispatch pass after every event.
func (s *sim) run() {
	// Pre-compute all releases inside the horizon.
	type release struct {
		at      float64
		taskIdx int
	}
	var releases []release
	for i, t := range s.tasks {
		for k := 0; ; k++ {
			at := float64(k) * t.Period
			if at+t.Deadline > s.horizon {
				break
			}
			releases = append(releases, release{at: at, taskIdx: i})
		}
	}
	sort.SliceStable(releases, func(a, b int) bool {
		if releases[a].at != releases[b].at {
			return releases[a].at < releases[b].at
		}
		return s.rmRank[releases[a].taskIdx] < s.rmRank[releases[b].taskIdx]
	})

	var jobs []*job
	ri := 0
	for ri < len(releases) || s.events.Len() > 0 {
		// Next event time: release or completion.
		next := math.Inf(1)
		if ri < len(releases) {
			next = releases[ri].at
		}
		if s.events.Len() > 0 && s.events[0].at < next {
			next = s.events[0].at
		}
		s.integrate(next)
		s.now = next

		// Process completions at this instant first (frees cores and
		// ways before new dispatches).
		for s.events.Len() > 0 && s.events[0].at <= s.now {
			ev := popEvent(&s.events)
			s.complete(ev.j, ev.v)
		}
		// Then releases.
		for ri < len(releases) && releases[ri].at <= s.now {
			rel := releases[ri]
			ri++
			j := s.newJob(rel.taskIdx, rel.at)
			jobs = append(jobs, j)
			s.metrics.Jobs++
			s.ready = append(s.ready, readyNode{j: j, v: j.task.Source()})
		}
		s.dispatch()
	}
	// Any job still unfinished at the horizon missed its deadline (the
	// deadline was inside the horizon by construction).
	for _, j := range jobs {
		if j.left > 0 && !j.missed {
			j.missed = true
			s.metrics.Misses++
			s.rec.Emit(flight.Event{Kind: flight.KindDeadline,
				Time: s.horizon, Task: int32(j.taskIdx),
				Job: int32(j.jobIdx), Node: -1, Core: -1,
				Cluster: -1, Wave: -1, A: j.deadline, B: 1})
		}
	}
	if s.clusterBusy > 0 && s.cfg.Zeta > 0 {
		s.metrics.WayUtilization = s.wayIntegral / (s.clusterBusy * float64(s.cfg.Zeta))
	}
	if s.execTotal > 0 {
		s.metrics.Phi = s.misconfTotal / s.execTotal
	}
	s.metrics.BusyTime = s.busyTime
	if s.respJobs > 0 {
		s.metrics.MeanResponse = s.respSum / float64(s.respJobs)
	}
}

func (s *sim) newJob(taskIdx int, at float64) *job {
	t := s.tasks[taskIdx]
	n := len(t.Nodes)
	// One backing array serves all five int-valued per-node fields; a job
	// release costs three allocations instead of seven.
	ints := make([]int, 5*n)
	j := &job{
		taskIdx:  taskIdx,
		jobIdx:   s.relIdx[taskIdx],
		task:     t,
		alloc:    s.allocs[taskIdx],
		release:  at,
		deadline: at + t.Deadline,
		indeg:    ints[0*n : 1*n],
		done:     make([]bool, n),
		coreOf:   ints[1*n : 2*n],
		startAt:  make([]float64, n),
		granted:  ints[2*n : 3*n],
		cluster:  ints[3*n : 4*n],
		succLeft: ints[4*n : 5*n],
		left:     n,
	}
	s.relIdx[taskIdx]++
	s.rec.Emit(flight.Event{Kind: flight.KindRelease, Time: at,
		Task: int32(taskIdx), Job: int32(j.jobIdx), Node: -1, Core: -1,
		Cluster: -1, Wave: -1, A: j.deadline})
	for id := range t.Nodes {
		v := dag.NodeID(id)
		j.indeg[id] = len(t.Pred(v))
		j.succLeft[id] = len(t.Succ(v))
		j.coreOf[id] = -1
		j.cluster[id] = -1
	}
	return j
}

// integrate advances the way-utilisation and busy-time accumulators to t.
func (s *sim) integrate(t float64) {
	if math.IsInf(t, 1) || t <= s.lastT {
		s.lastT = math.Max(s.lastT, t)
		return
	}
	dt := t - s.lastT
	busy := false
	// Way utilisation is accounted per cluster, over the time the
	// cluster has work: an idle cluster's ways are unassigned by design,
	// not wasted (§5.3 measures the cache "in busy periods").
	for cl := 0; cl < s.clusters; cl++ {
		clBusy := false
		for c := cl * s.cfg.ClusterSize; c < (cl+1)*s.cfg.ClusterSize && c < s.cfg.Cores; c++ {
			if s.freeAt[c] > s.lastT {
				clBusy = true
				break
			}
		}
		if clBusy {
			busy = true
			s.clusterBusy += dt
			s.wayIntegral += float64(s.assigned[cl]) * dt
		}
	}
	if !busy && len(s.ready) > 0 {
		busy = true
	}
	if busy {
		s.busyTime += dt
	}
	s.lastT = t
}

// partitionTasks binds each task to a cluster, worst-fit decreasing by
// load (computation plus communication over period), so the clusters stay
// balanced.
func (s *sim) partitionTasks() {
	s.partition = make([]int, len(s.tasks))
	load := make([]float64, s.clusters)
	order := make([]int, len(s.tasks))
	for i := range order {
		order[i] = i
	}
	taskLoad := func(i int) float64 {
		t := s.tasks[i]
		var comm float64
		for _, e := range t.Edges {
			comm += e.Cost
		}
		return (t.Volume() + comm) / t.Period
	}
	sort.SliceStable(order, func(a, b int) bool {
		return taskLoad(order[a]) > taskLoad(order[b])
	})
	for _, idx := range order {
		best := 0
		for cl := 1; cl < s.clusters; cl++ {
			if load[cl] < load[best] {
				best = cl
			}
		}
		s.partition[idx] = best
		load[best] += taskLoad(idx)
	}
}

// dispatch places ready nodes on idle cores, highest priority first. In
// partitioned mode a node may only use its task's cluster. The events
// kernel reuses the sim's scratch buffers; the ticked kernel keeps the
// legacy allocating loop. Both visit nodes and cores in the same order.
func (s *sim) dispatch() {
	if s.kernel == kernel.Ticked {
		s.dispatchTicked()
		return
	}
	for {
		idle := s.idleBuf[:0]
		for c, f := range s.freeAt {
			if f <= s.now {
				idle = append(idle, c)
			}
		}
		s.idleBuf = idle
		if len(idle) == 0 || len(s.ready) == 0 {
			return
		}
		if s.partition == nil {
			ri := s.pickReady()
			rn := s.ready[ri]
			s.ready = append(s.ready[:ri], s.ready[ri+1:]...)
			s.place(rn, idle)
			continue
		}
		// Partitioned: serve the highest-priority ready node whose
		// cluster has an idle core; stop when none can be placed.
		skip := s.skipBuf[:0]
		for range s.ready {
			skip = append(skip, false)
		}
		s.skipBuf = skip
		placed := false
		for !placed {
			ri := s.pickReadySkipping(skip)
			if ri < 0 {
				return
			}
			rn := s.ready[ri]
			cl := s.partition[rn.j.taskIdx]
			clusterIdle := s.clusterIdleBuf[:0]
			for _, c := range idle {
				if c/s.cfg.ClusterSize == cl {
					clusterIdle = append(clusterIdle, c)
				}
			}
			s.clusterIdleBuf = clusterIdle
			if len(clusterIdle) == 0 {
				skip[ri] = true
				continue
			}
			s.ready = append(s.ready[:ri], s.ready[ri+1:]...)
			s.place(rn, clusterIdle)
			placed = true
		}
	}
}

// dispatchTicked is the legacy dispatcher, kept for one release behind
// -kernel=ticked so the equivalence harness can diff the kernels.
func (s *sim) dispatchTicked() {
	for {
		var idle []int
		for c, f := range s.freeAt {
			if f <= s.now {
				idle = append(idle, c)
			}
		}
		if len(idle) == 0 || len(s.ready) == 0 {
			return
		}
		if s.partition == nil {
			ri := s.pickReady()
			rn := s.ready[ri]
			s.ready = append(s.ready[:ri], s.ready[ri+1:]...)
			s.place(rn, idle)
			continue
		}
		placed := false
		taken := make(map[int]bool) //lint:ignore hotalloc legacy ticked dispatcher, kept verbatim for the kernel-equivalence harness
		for !placed {
			ri := s.pickReadyExcluding(taken)
			if ri < 0 {
				return
			}
			rn := s.ready[ri]
			cl := s.partition[rn.j.taskIdx]
			var clusterIdle []int
			for _, c := range idle {
				if c/s.cfg.ClusterSize == cl {
					clusterIdle = append(clusterIdle, c)
				}
			}
			if len(clusterIdle) == 0 {
				taken[ri] = true
				continue
			}
			s.ready = append(s.ready[:ri], s.ready[ri+1:]...)
			s.place(rn, clusterIdle)
			placed = true
		}
	}
}

// pickReadyExcluding returns the best ready index not in skip, or -1.
func (s *sim) pickReadyExcluding(skip map[int]bool) int {
	best := -1
	for i := range s.ready {
		if skip[i] {
			continue
		}
		if best < 0 || s.readyLess(s.ready[i], s.ready[best]) {
			best = i
		}
	}
	return best
}

// pickReadySkipping is pickReadyExcluding over a dense scratch mask.
func (s *sim) pickReadySkipping(skip []bool) int {
	best := -1
	for i := range s.ready {
		if skip[i] {
			continue
		}
		if best < 0 || s.readyLess(s.ready[i], s.ready[best]) {
			best = i
		}
	}
	return best
}

// pickReady returns the index of the highest-priority ready node:
// rate-monotonic task rank, then job release, then Alg. 1 node priority.
func (s *sim) pickReady() int {
	best := 0
	for i := 1; i < len(s.ready); i++ {
		if s.readyLess(s.ready[i], s.ready[best]) {
			best = i
		}
	}
	return best
}

func (s *sim) readyLess(a, b readyNode) bool {
	ra, rb := s.rmRank[a.j.taskIdx], s.rmRank[b.j.taskIdx]
	if ra != rb {
		return ra < rb
	}
	if a.j.release != b.j.release {
		return a.j.release < b.j.release
	}
	pa, pb := a.j.task.Node(a.v).Priority, b.j.task.Node(b.v).Priority
	if pa != pb {
		return pa > pb
	}
	return a.v < b.v
}

// place assigns the node to a core and schedules its completion.
func (s *sim) place(rn readyNode, idle []int) {
	j, v := rn.j, rn.v
	node := j.task.Node(v)

	c := s.chooseCore(rn, idle)
	cl := c / s.cfg.ClusterSize

	busy := 0
	for c2, f := range s.freeAt {
		if c2 != c && f > s.now {
			busy++
		}
	}
	busyFrac := 0.0
	if s.cfg.Cores > 1 {
		busyFrac = float64(busy) / float64(s.cfg.Cores-1)
	}

	var fetch, exec, misconf float64
	switch s.kind {
	case KindProp:
		grant := 0
		// Model.Ways is the dense mirror of LocalWays (same values,
		// array load instead of map lookup).
		if plan := j.alloc.Model.Ways[v]; plan > 0 && s.cfg.Zeta > 0 {
			// The Walloc serves a demand from unowned slots first,
			// then by reclaiming released (but still assigned)
			// ways, one way at a time.
			avail := (s.cfg.Zeta - s.assigned[cl]) + s.reclaimable[cl]
			grant = plan
			if avail < grant {
				grant = avail
			}
			if grant < 0 {
				grant = 0
			}
			fresh := s.cfg.Zeta - s.assigned[cl]
			if fresh > grant {
				fresh = grant
			}
			s.assigned[cl] += fresh
			s.reclaimable[cl] -= grant - fresh
		}
		j.granted[v] = grant
		j.cluster[v] = cl
		mGrantedWays.Observe(float64(grant))
		s.rec.Emit(flight.Event{Kind: flight.KindGrant, Time: s.now,
			Task: int32(j.taskIdx), Job: int32(j.jobIdx), Node: int32(v),
			Core: int32(c), Cluster: int32(cl), Wave: -1,
			A: float64(j.alloc.Model.Ways[v]), B: float64(grant),
			C: float64(s.assigned[cl])})

		// SDU: one way at a time, FIFO per cluster. The node starts
		// executing immediately (the configuration happens during the
		// context switch, in parallel); time executed before the SDU
		// finishes counts toward φ.
		if grant > 0 && s.cfg.WayConfigDelay > 0 {
			start := math.Max(s.now, s.sduFreeAt[cl])
			finish := start + float64(grant)*s.cfg.WayConfigDelay
			s.sduFreeAt[cl] = finish
			misconf = finish - s.now
			s.rec.Emit(flight.Event{Kind: flight.KindSDU, Time: s.now,
				Task: int32(j.taskIdx), Job: int32(j.jobIdx),
				Node: int32(v), Core: int32(c), Cluster: int32(cl),
				Wave: -1, A: float64(grant), B: finish, C: misconf})
		}

		pe := j.task.PredEdges(v)
		for k, p := range j.task.Pred(v) {
			e := j.task.Edges[pe[k]]
			n := j.granted[p]
			if j.cluster[p] != cl {
				// Cross-cluster: the producer's L1.5 ways are
				// not visible here; the data travels through
				// the (uncontended) L2.
				n = 0
			}
			cost := etm.Cost(e.Cost, e.Alpha, j.task.Node(p).Data, s.cfg.WayBytes, n)
			fetch += cost
			s.rec.Emit(flight.Event{Kind: flight.KindEdge, Time: s.now,
				Task: int32(j.taskIdx), Job: int32(j.jobIdx),
				Node: int32(v), Core: int32(c), Cluster: int32(cl),
				Wave: -1, A: float64(p), B: e.Cost, C: cost})
		}
		exec = node.WCET
	default:
		warm := s.prevCore[j.taskIdx][v] == c
		pe := j.task.PredEdges(v)
		for k, p := range j.task.Pred(v) {
			e := j.task.Edges[pe[k]]
			cost := s.plat.CommCost(e, j.task.Node(p), j.coreOf[p] == c, busyFrac)
			fetch += cost
			s.rec.Emit(flight.Event{Kind: flight.KindEdge, Time: s.now,
				Task: int32(j.taskIdx), Job: int32(j.jobIdx),
				Node: int32(v), Core: int32(c), Cluster: -1,
				Wave: -1, A: float64(p), B: e.Cost, C: cost})
		}
		exec = s.plat.ExecTime(node, warm, busyFrac)
	}

	j.coreOf[v] = c
	j.startAt[v] = s.now
	s.prevCore[j.taskIdx][v] = c
	mNodes.Inc()
	dur := fetch + exec
	if misconf > dur {
		misconf = dur
	}
	s.execTotal += dur
	s.misconfTotal += misconf
	s.rec.Emit(flight.Event{Kind: flight.KindDispatch, Time: s.now,
		Task: int32(j.taskIdx), Job: int32(j.jobIdx), Node: int32(v),
		Core: int32(c), Cluster: int32(cl), Wave: -1,
		A: fetch, B: exec, C: float64(j.granted[v])})
	s.freeAt[c] = s.now + dur
	pushEvent(&s.events, event{at: s.now + dur, j: j, v: v})
}

// chooseCore picks among idle cores: baselines with affinity prefer the
// previous instance's core; the proposed system prefers an idle core in the
// cluster already holding the heaviest predecessor's ways.
func (s *sim) chooseCore(rn readyNode, idle []int) int {
	j, v := rn.j, rn.v
	if s.kind == KindProp {
		bestCl, bestData := -1, int64(-1)
		for _, p := range j.task.Pred(v) {
			if j.granted[p] > 0 && j.task.Node(p).Data > bestData {
				bestData = j.task.Node(p).Data
				bestCl = j.cluster[p]
			}
		}
		if bestCl >= 0 {
			for _, c := range idle {
				if c/s.cfg.ClusterSize == bestCl {
					return c
				}
			}
		}
		// No affinity: pick the idle core whose cluster can satisfy
		// the largest demand (unowned plus reclaimable ways), keeping
		// the clusters balanced.
		best, bestFree := idle[0], -1
		for _, c := range idle {
			cl := c / s.cfg.ClusterSize
			if free := (s.cfg.Zeta - s.assigned[cl]) + s.reclaimable[cl]; free > bestFree {
				best, bestFree = c, free
			}
		}
		return best
	}
	if s.plat.Affinity() {
		if pc := s.prevCore[j.taskIdx][v]; pc >= 0 {
			for _, c := range idle {
				if c == pc {
					return pc
				}
			}
		}
	}
	return idle[0]
}

// complete finishes a node: releases ways whose consumers are all done,
// marks new ready nodes, and checks the job deadline at the sink.
func (s *sim) complete(j *job, v dag.NodeID) {
	j.done[v] = true
	j.left--
	s.rec.Emit(flight.Event{Kind: flight.KindFinish, Time: s.now,
		Task: int32(j.taskIdx), Job: int32(j.jobIdx), Node: int32(v),
		Core: int32(j.coreOf[v]), Cluster: int32(j.cluster[v]), Wave: -1,
		A: s.now - j.startAt[v]})

	if s.kind == KindProp {
		// A node with no successors never held ways; otherwise its
		// ways stay assigned (turned global) until every consumer has
		// finished reading the dependent data.
		if j.succLeft[v] == 0 {
			s.releaseWays(j, v)
		}
		for _, p := range j.task.Pred(v) {
			j.succLeft[p]--
			if j.succLeft[p] == 0 && j.done[p] {
				s.releaseWays(j, p)
			}
		}
	}

	for _, nxt := range j.task.Succ(v) {
		j.indeg[nxt]--
		if j.indeg[nxt] == 0 {
			s.ready = append(s.ready, readyNode{j: j, v: nxt})
		}
	}

	if j.left == 0 {
		var resp float64
		if rel := j.task.Deadline; rel > 0 {
			resp = (s.now - j.release) / rel
			s.respSum += resp
			s.respJobs++
			if resp > s.metrics.MaxResponse {
				s.metrics.MaxResponse = resp
			}
		}
		if s.now > j.deadline && !j.missed {
			j.missed = true
			s.metrics.Misses++
		}
		missFlag := 0.0
		if j.missed {
			missFlag = 1
		}
		s.rec.Emit(flight.Event{Kind: flight.KindDeadline, Time: s.now,
			Task: int32(j.taskIdx), Job: int32(j.jobIdx), Node: -1,
			Core: -1, Cluster: -1, Wave: -1,
			A: j.deadline, B: missFlag, C: resp})
		// Job teardown: the kernel revokes the way bindings the job
		// no longer needs (supply()/demand(0) during the final context
		// switch), returning released ways in this cluster to the
		// unowned pool. This is what keeps the monitor's way
		// utilisation below a flat 100%.
		if s.kind == KindProp {
			// Roughly half of the cluster's released ways belong
			// to this job on average; the kernel only tears down
			// its own bindings.
			cl := j.coreOf[v] / s.cfg.ClusterSize
			drop := (s.reclaimable[cl] + 1) / 2
			s.assigned[cl] -= drop
			s.reclaimable[cl] -= drop
			if drop > 0 {
				s.rec.Emit(flight.Event{Kind: flight.KindWayFree,
					Time: s.now, Task: int32(j.taskIdx),
					Job: int32(j.jobIdx), Node: -1, Core: -1,
					Cluster: int32(cl), Wave: -1,
					A: float64(drop),
					B: float64(s.reclaimable[cl]),
					C: float64(s.assigned[cl])})
			}
		}
	}
}

// releaseWays marks the node's ways reclaimable. The ways remain assigned
// (the monitor still counts them) until the Walloc hands them to a new
// demand.
func (s *sim) releaseWays(j *job, v dag.NodeID) {
	if g := j.granted[v]; g > 0 {
		s.reclaimable[j.cluster[v]] += g
		j.granted[v] = 0
		s.rec.Emit(flight.Event{Kind: flight.KindWayFree, Time: s.now,
			Task: int32(j.taskIdx), Job: int32(j.jobIdx), Node: int32(v),
			Core: -1, Cluster: int32(j.cluster[v]), Wave: -1,
			A: float64(g), B: float64(s.reclaimable[j.cluster[v]])})
	}
}

package rtsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l15cache/internal/dag"
	"l15cache/internal/workload"
)

func testTaskSet(t *testing.T, seed int64, cores int, util float64) []*dag.Task {
	t.Helper()
	p := workload.DefaultTaskSetParams()
	p.TargetUtilization = util * float64(cores)
	p.Tasks = 2 * cores
	tasks, err := workload.TaskSet(rand.New(rand.NewSource(seed)), p)
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindProp:     "Prop",
		KindCMPL1:    "CMP|L1",
		KindCMPL2:    "CMP|L2",
		KindSharedL1: "CMP|Shared-L1",
		Kind(42):     "Kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestRunLowUtilizationNoMisses(t *testing.T) {
	tasks := testTaskSet(t, 1, 8, 0.3)
	for _, kind := range []Kind{KindProp, KindCMPL1, KindCMPL2, KindSharedL1} {
		m, err := Run(tasks, kind, DefaultConfig())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if m.Jobs == 0 {
			t.Fatalf("%v: no jobs released", kind)
		}
		if !m.Success() {
			t.Errorf("%v: %d/%d misses at 30%% utilisation", kind, m.Misses, m.Jobs)
		}
	}
}

func TestRunOverloadMisses(t *testing.T) {
	// 150% nominal load cannot be schedulable on any system.
	tasks := testTaskSet(t, 2, 8, 1.5)
	for _, kind := range []Kind{KindProp, KindCMPL1} {
		m, err := Run(tasks, kind, DefaultConfig())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if m.Misses == 0 {
			t.Errorf("%v: no misses under 150%% load", kind)
		}
	}
}

func TestPropOutperformsCMPs(t *testing.T) {
	// Count misses across several mid-utilisation trials: the proposed
	// system must miss no more often than any baseline in aggregate.
	missTotal := map[Kind]int{}
	for seed := int64(0); seed < 8; seed++ {
		tasks := testTaskSet(t, 100+seed, 8, 0.7)
		for _, kind := range []Kind{KindProp, KindCMPL1, KindCMPL2, KindSharedL1} {
			m, err := Run(tasks, kind, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			missTotal[kind] += m.Misses
		}
	}
	for _, kind := range []Kind{KindCMPL1, KindCMPL2, KindSharedL1} {
		if missTotal[KindProp] > missTotal[kind] {
			t.Errorf("Prop missed %d > %v's %d", missTotal[KindProp], kind, missTotal[kind])
		}
	}
}

func TestPropMetricsRanges(t *testing.T) {
	tasks := testTaskSet(t, 3, 8, 0.8)
	m, err := Run(tasks, KindProp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.WayUtilization <= 0 || m.WayUtilization > 1 {
		t.Errorf("way utilisation %g outside (0,1]", m.WayUtilization)
	}
	if m.Phi < 0 || m.Phi > 0.05 {
		t.Errorf("φ = %g outside [0, 5%%]", m.Phi)
	}
	if m.BusyTime <= 0 {
		t.Error("busy time not recorded")
	}
}

func TestCMPMetricsHaveNoWayStats(t *testing.T) {
	tasks := testTaskSet(t, 4, 8, 0.6)
	m, err := Run(tasks, KindCMPL1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.WayUtilization != 0 || m.Phi != 0 {
		t.Errorf("baseline reported L1.5 stats: util=%g φ=%g", m.WayUtilization, m.Phi)
	}
}

func TestRunErrors(t *testing.T) {
	tasks := testTaskSet(t, 5, 8, 0.5)
	if _, err := Run(nil, KindProp, DefaultConfig()); err == nil {
		t.Error("empty task set accepted")
	}
	cfg := DefaultConfig()
	cfg.Cores = 0
	if _, err := Run(tasks, KindProp, cfg); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = DefaultConfig()
	cfg.Zeta = -1
	if _, err := Run(tasks, KindProp, cfg); err == nil {
		t.Error("negative zeta accepted")
	}
	if _, err := Run(tasks, Kind(99), DefaultConfig()); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	tasks := testTaskSet(t, 6, 8, 0.75)
	a, err := Run(tasks, KindProp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tasks, KindProp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic run: %+v vs %+v", a, b)
	}
}

func TestRunDoesNotMutateTasks(t *testing.T) {
	tasks := testTaskSet(t, 7, 8, 0.5)
	before := tasks[0].Nodes[0].Priority
	wcet := tasks[0].Nodes[0].WCET
	if _, err := Run(tasks, KindProp, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if tasks[0].Nodes[0].Priority != before || tasks[0].Nodes[0].WCET != wcet {
		t.Error("Run mutated the caller's tasks")
	}
}

func TestZeroZetaStillRuns(t *testing.T) {
	// A cluster with no configurable ways degrades to full-cost
	// communication but must still schedule correctly.
	tasks := testTaskSet(t, 8, 8, 0.5)
	cfg := DefaultConfig()
	cfg.Zeta = 0
	m, err := Run(tasks, KindProp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.WayUtilization != 0 {
		t.Errorf("ζ=0 reported way utilisation %g", m.WayUtilization)
	}
	full := DefaultConfig()
	mFull, err := Run(tasks, KindProp, full)
	if err != nil {
		t.Fatal(err)
	}
	if mFull.Misses > m.Misses {
		t.Errorf("ways should not hurt: %d misses with ζ=16 vs %d with ζ=0",
			mFull.Misses, m.Misses)
	}
}

func TestSingleCoreCluster(t *testing.T) {
	tasks := testTaskSet(t, 9, 2, 0.4)
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.ClusterSize = 1
	if _, err := Run(tasks, KindProp, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: misses never exceed jobs, and the success predicate matches the
// counters, across random mid-range configurations.
func TestQuickMetricsConsistent(t *testing.T) {
	f := func(seed int64, kr uint8) bool {
		kind := Kind(int(kr) % 4)
		p := workload.DefaultTaskSetParams()
		u := seed % 5
		if u < 0 {
			u = -u
		}
		p.TargetUtilization = 2 + float64(u)
		p.Tasks = 8
		tasks, err := workload.TaskSet(rand.New(rand.NewSource(seed)), p)
		if err != nil {
			return false
		}
		m, err := Run(tasks, kind, DefaultConfig())
		if err != nil {
			return false
		}
		if m.Misses < 0 || m.Misses > m.Jobs || m.Jobs <= 0 {
			return false
		}
		return m.Success() == (m.Misses == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: higher utilisation never reduces the proposed system's miss
// count on the same seed family (monotone load response).
func TestQuickLoadMonotone(t *testing.T) {
	f := func(seed int64) bool {
		low := testTaskSetQuick(seed, 0.4)
		high := testTaskSetQuick(seed, 1.3)
		if low == nil || high == nil {
			return false
		}
		ml, err := Run(low, KindProp, DefaultConfig())
		if err != nil {
			return false
		}
		mh, err := Run(high, KindProp, DefaultConfig())
		if err != nil {
			return false
		}
		return ml.Misses <= mh.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func testTaskSetQuick(seed int64, util float64) []*dag.Task {
	p := workload.DefaultTaskSetParams()
	p.TargetUtilization = util * 8
	p.Tasks = 16
	tasks, err := workload.TaskSet(rand.New(rand.NewSource(seed)), p)
	if err != nil {
		return nil
	}
	return tasks
}

func TestResponseTimeStats(t *testing.T) {
	tasks := testTaskSet(t, 12, 8, 0.6)
	m, err := Run(tasks, KindProp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanResponse <= 0 || m.MaxResponse < m.MeanResponse {
		t.Errorf("response stats implausible: mean %g max %g", m.MeanResponse, m.MaxResponse)
	}
	if m.Success() && m.MaxResponse > 1 {
		t.Errorf("no misses but max response %g > 1", m.MaxResponse)
	}
	// Prop's mean response should not exceed the interference-laden
	// shared-L1 baseline's on the same set.
	sh, err := Run(tasks, KindSharedL1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanResponse > sh.MeanResponse*1.05 {
		t.Errorf("Prop mean response %g worse than Shared-L1 %g", m.MeanResponse, sh.MeanResponse)
	}
}

func TestPartitionedMode(t *testing.T) {
	tasks := testTaskSet(t, 20, 8, 0.5)
	cfg := DefaultConfig()
	cfg.Partitioned = true
	m, err := Run(tasks, KindProp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs == 0 {
		t.Fatal("no jobs")
	}
	if !m.Success() {
		t.Errorf("partitioned Prop missed %d/%d at 50%% load", m.Misses, m.Jobs)
	}
	// Determinism holds in partitioned mode too.
	m2, err := Run(tasks, KindProp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m != m2 {
		t.Error("partitioned run not deterministic")
	}
}

func TestPartitionedVsGlobalTradeoff(t *testing.T) {
	// Partitioning loses global work conservation: across seeds it must
	// not dramatically beat global scheduling at moderate load, and both
	// must schedule light loads perfectly.
	var globalMiss, partMiss int
	for seed := int64(40); seed < 52; seed++ {
		tasks := testTaskSet(t, seed, 8, 0.4)
		g, err := Run(tasks, KindProp, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Partitioned = true
		p, err := Run(tasks, KindProp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		globalMiss += g.Misses
		partMiss += p.Misses
	}
	if globalMiss != 0 {
		t.Errorf("global scheduling missed %d jobs at 40%% load", globalMiss)
	}
	_ = partMiss // partitioned may miss occasionally on unbalanced sets
}

package rtsim

import "l15cache/internal/memo"

// AppendFingerprint encodes the result-determining SoC parameters into a
// memo canonical encoding (DESIGN.md §12) and reports whether the config
// is memoizable at all. A Config carrying a flight Recorder is not: a
// cache hit skips the simulation and therefore the event stream the
// recorder exists to capture, so recorded trials must always recompute
// and the caller must pass a nil fingerprint to the runner.
//
// Defaults are normalised before encoding (the same fill Run applies),
// so a zero ClusterSize and an explicit 4 key identically.
func (c Config) AppendFingerprint(e *memo.Encoder) bool {
	if c.Recorder != nil {
		return false
	}
	if err := c.fill(); err != nil {
		// An invalid config never reaches a result worth caching; encode
		// it raw and let Run report the error on every attempt.
		e.Bool("rtsim.invalid", true)
	}
	e.I64("rtsim.cores", int64(c.Cores))
	e.I64("rtsim.cluster_size", int64(c.ClusterSize))
	e.I64("rtsim.zeta", int64(c.Zeta))
	e.I64("rtsim.way_bytes", c.WayBytes)
	e.F64("rtsim.horizon_periods", c.HorizonPeriods)
	e.F64("rtsim.way_config_delay", c.WayConfigDelay)
	e.Bool("rtsim.partitioned", c.Partitioned)
	e.Str("rtsim.kernel", c.Kernel.String())
	return true
}

package rtsim

import (
	"reflect"
	"testing"

	"l15cache/internal/flight"
	"l15cache/internal/kernel"
)

// TestKernelEquivalence runs the same task set under the ticked and events
// dispatch kernels for every system kind and requires identical metrics
// and flight recordings — the per-trial slice of what the kernel-
// equivalence CI job byte-compares across full experiment runs.
func TestKernelEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tasks := testTaskSet(t, seed, 8, 0.7)
		for _, kind := range []Kind{KindProp, KindCMPL1, KindCMPL2, KindSharedL1} {
			cfgT := DefaultConfig()
			cfgT.Kernel = kernel.Ticked
			cfgT.Recorder = flight.New()
			mT, err := Run(tasks, kind, cfgT)
			if err != nil {
				t.Fatalf("seed %d %v ticked: %v", seed, kind, err)
			}

			cfgE := DefaultConfig()
			cfgE.Kernel = kernel.Events
			cfgE.Recorder = flight.New()
			mE, err := Run(tasks, kind, cfgE)
			if err != nil {
				t.Fatalf("seed %d %v events: %v", seed, kind, err)
			}

			if mT != mE {
				t.Errorf("seed %d %v: metrics diverged:\nticked %+v\nevents %+v",
					seed, kind, mT, mE)
			}
			evT, evE := cfgT.Recorder.Events(), cfgE.Recorder.Events()
			if !reflect.DeepEqual(evT, evE) {
				t.Errorf("seed %d %v: flight recordings diverged (%d vs %d events)",
					seed, kind, len(evT), len(evE))
			}
			if len(evE) == 0 {
				t.Errorf("seed %d %v: no flight events; test is vacuous", seed, kind)
			}
		}
	}
}

// TestKernelEquivalencePartitioned covers the partitioned dispatcher and
// an overload, where preemption-free backlog handling differs most between
// the two dispatch loops.
func TestKernelEquivalencePartitioned(t *testing.T) {
	tasks := testTaskSet(t, 7, 8, 1.2)
	for _, part := range []bool{false, true} {
		cfgT := DefaultConfig()
		cfgT.Kernel = kernel.Ticked
		cfgT.Partitioned = part
		mT, err := Run(tasks, KindProp, cfgT)
		if err != nil {
			t.Fatal(err)
		}
		cfgE := DefaultConfig()
		cfgE.Kernel = kernel.Events
		cfgE.Partitioned = part
		mE, err := Run(tasks, KindProp, cfgE)
		if err != nil {
			t.Fatal(err)
		}
		if mT != mE {
			t.Errorf("partitioned=%v: metrics diverged:\nticked %+v\nevents %+v",
				part, mT, mE)
		}
	}
}

package schedsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"l15cache/internal/dag"
	"l15cache/internal/flight"
	"l15cache/internal/kernel"
	"l15cache/internal/metrics"
	"l15cache/internal/sched"
)

// Simulator counters on the default registry (atomic; the experiment
// harnesses run many simulations concurrently).
var (
	mInstances  = metrics.Default.Counter("schedsim.instances")
	mDispatches = metrics.Default.Counter("schedsim.dispatches")
)

// Options configure a simulation run.
type Options struct {
	// Cores is m, the number of identical cores (default 8).
	Cores int

	// Instances is the number of consecutive task instances to simulate.
	// The first instance starts with cold caches; later instances may
	// run warm on conventional platforms. Default 1.
	Instances int

	// OnDispatch, when non-nil, observes every node placement of every
	// instance: the core, the node, and the span's fetch/execute
	// boundaries. The trace package builds Gantt charts and CSV exports
	// from it.
	OnDispatch func(instance, core int, v dag.NodeID, start, fetchEnd, end float64)

	// Recorder, when non-nil, receives the flight events of the run
	// (releases, dispatches, per-edge costs, finishes and the final
	// makespan check), with Job set to the instance index and Task to
	// RecordTask.
	Recorder *flight.Recorder

	// RecordTask is the task index stamped on recorded events (single-
	// task runs leave it 0).
	RecordTask int

	// Kernel selects the dispatch kernel. The zero value, kernel.Events,
	// is the allocation-free event kernel; kernel.Ticked keeps the legacy
	// container/heap dispatcher so the equivalence harness can byte-diff
	// the two (DESIGN.md §11).
	Kernel kernel.Mode
}

func (o *Options) fill() {
	if o.Cores == 0 {
		o.Cores = 8
	}
	if o.Instances == 0 {
		o.Instances = 1
	}
}

// InstanceStats reports one simulated task instance.
type InstanceStats struct {
	Makespan float64 // sink completion time
	Comm     float64 // total time cores spent fetching dependent data
	Exec     float64 // total time cores spent computing
}

// completion is a node-finish event.
type completion struct {
	at   float64
	node dag.NodeID
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].node < h[j].node
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Run simulates opt.Instances consecutive instances of the scheduled task on
// the platform and returns per-instance statistics. The scheduler is
// non-preemptive fixed-priority and work-conserving: whenever a core is idle
// and a node is ready, the highest-priority ready node is dispatched
// immediately. The consumer core pays each incoming edge's communication
// cost (fetch phase) before the node's computation begins.
func Run(alloc *sched.Result, plat Platform, opt Options) ([]InstanceStats, error) {
	opt.fill()
	if opt.Cores < 1 {
		return nil, fmt.Errorf("schedsim: need at least one core, got %d", opt.Cores)
	}
	if err := alloc.Task.Validate(); err != nil {
		return nil, err
	}
	stats := make([]InstanceStats, 0, opt.Instances)
	var sc scratch
	var prevCore []int
	for i := 0; i < opt.Instances; i++ {
		var observe dispatchFunc
		if opt.OnDispatch != nil {
			inst := i
			observe = func(core int, v dag.NodeID, start, fetchEnd, end float64) {
				opt.OnDispatch(inst, core, v, start, fetchEnd, end)
			}
		}
		var s InstanceStats
		var cores []int
		if opt.Kernel == kernel.Ticked {
			s, cores = runInstance(alloc, plat, opt.Cores, i == 0, prevCore, observe,
				opt.Recorder, int32(opt.RecordTask), int32(i))
		} else {
			s, cores = runInstanceEvents(alloc, plat, opt.Cores, i == 0, prevCore, observe,
				opt.Recorder, int32(opt.RecordTask), int32(i), &sc)
		}
		stats = append(stats, s)
		prevCore = cores
	}
	return stats, nil
}

// dispatchFunc observes one node placement.
type dispatchFunc func(core int, v dag.NodeID, start, fetchEnd, end float64)

// runInstance simulates one release of the task. cold marks the very first
// instance (no platform cache state); prevCore carries the previous
// instance's placement for warm-up and affinity decisions (nil when cold).
// rec, when non-nil, receives the instance's flight events stamped with
// (task, job).
func runInstance(alloc *sched.Result, plat Platform, m int, cold bool, prevCore []int, observe dispatchFunc, rec *flight.Recorder, task, job int32) (InstanceStats, []int) {
	mInstances.Inc()
	t := alloc.Task
	n := len(t.Nodes)

	rec.Emit(flight.Event{Kind: flight.KindRelease, Task: task, Job: job,
		Node: -1, Core: -1, Cluster: -1, Wave: -1})

	coreOf := make([]int, n) //lint:ignore hotalloc legacy ticked-path instance setup: runs once per release outside the per-event loop; the events kernel reuses scratch
	for i := range coreOf {
		coreOf[i] = -1
	}
	startAt := make([]float64, n) //lint:ignore hotalloc legacy ticked-path instance setup: runs once per release outside the per-event loop; the events kernel reuses scratch
	finished := make([]bool, n)   //lint:ignore hotalloc legacy ticked-path instance setup: runs once per release outside the per-event loop; the events kernel reuses scratch
	indeg := make([]int, n)       //lint:ignore hotalloc legacy ticked-path instance setup: runs once per release outside the per-event loop; the events kernel reuses scratch
	for id := range t.Nodes {
		indeg[id] = len(t.Pred(dag.NodeID(id)))
	}

	freeAt := make([]float64, m) //lint:ignore hotalloc legacy ticked-path instance setup: runs once per release outside the per-event loop; the events kernel reuses scratch
	var ready []dag.NodeID
	ready = append(ready, t.Source())

	var events completionHeap
	var stats InstanceStats
	now := 0.0
	done := 0

	popReady := func() dag.NodeID { //lint:ignore hotalloc legacy ticked-path instance setup: runs once per release outside the per-event loop; the events kernel reuses scratch
		best := 0
		for i := 1; i < len(ready); i++ {
			pi, pb := t.Node(ready[i]).Priority, t.Node(ready[best]).Priority
			if pi > pb || (pi == pb && ready[i] < ready[best]) {
				best = i
			}
		}
		v := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		return v
	}

	idleCores := func() []int { //lint:ignore hotalloc legacy ticked-path instance setup: runs once per release outside the per-event loop; the events kernel reuses scratch
		var idle []int
		for c := 0; c < m; c++ {
			if freeAt[c] <= now {
				idle = append(idle, c)
			}
		}
		return idle
	}

	for done < n {
		// Dispatch while an idle core and a ready node exist
		// (work-conserving).
		for {
			idle := idleCores()
			if len(idle) == 0 || len(ready) == 0 {
				break
			}
			v := popReady()
			c := idle[0]
			if plat.Affinity() && prevCore != nil {
				if pc := prevCore[v]; pc >= 0 {
					for _, ic := range idle {
						if ic == pc {
							c = pc
							break
						}
					}
				}
			}
			busy := 0
			for c2 := 0; c2 < m; c2++ {
				if c2 != c && freeAt[c2] > now {
					busy++
				}
			}
			busyFrac := 0.0
			if m > 1 {
				busyFrac = float64(busy) / float64(m-1)
			}
			warm := !cold && prevCore != nil && prevCore[v] == c

			var fetch float64
			for _, p := range t.Pred(v) {
				e, _ := t.Edge(p, v)
				cost := plat.CommCost(e, t.Node(p), coreOf[p] == c, busyFrac)
				fetch += cost
				rec.Emit(flight.Event{Kind: flight.KindEdge, Time: now,
					Task: task, Job: job, Node: int32(v), Core: int32(c),
					Cluster: -1, Wave: -1,
					A: float64(p), B: e.Cost, C: cost})
			}
			exec := plat.ExecTime(t.Node(v), warm, busyFrac)

			coreOf[v] = c
			startAt[v] = now
			finish := now + fetch + exec
			freeAt[c] = finish
			mDispatches.Inc()
			rec.Emit(flight.Event{Kind: flight.KindDispatch, Time: now,
				Task: task, Job: job, Node: int32(v), Core: int32(c),
				Cluster: -1, Wave: -1,
				A: fetch, B: exec, C: float64(alloc.LocalWays[v])})
			stats.Comm += fetch
			stats.Exec += exec
			if observe != nil {
				observe(c, v, now, now+fetch, finish)
			}
			heap.Push(&events, completion{at: finish, node: v})
		}

		if events.Len() == 0 {
			// No running node but undone work: the graph must be
			// disconnected or cyclic — Validate precludes both.
			//lint:ignore hotalloc deadlock diagnostic: built only on a disconnected or cyclic graph, which Validate precludes
			panic("schedsim: deadlock with " + fmt.Sprint(n-done) + " nodes pending")
		}

		// Advance to the next completion; release successors.
		ev := heap.Pop(&events).(completion)
		now = math.Max(now, ev.at)
		finished[ev.node] = true
		done++
		rec.Emit(flight.Event{Kind: flight.KindFinish, Time: ev.at,
			Task: task, Job: job, Node: int32(ev.node),
			Core: int32(coreOf[ev.node]), Cluster: -1, Wave: -1,
			A: ev.at - startAt[ev.node]})
		for _, s := range t.Succ(ev.node) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
		if ev.at > stats.Makespan {
			stats.Makespan = ev.at
		}
	}
	// The makespan check closes the instance; with no workload deadline
	// the event records A=0, B=0 (met).
	rec.Emit(flight.Event{Kind: flight.KindDeadline, Time: stats.Makespan,
		Task: task, Job: job, Node: -1, Core: -1, Cluster: -1, Wave: -1})
	return stats, coreOf
}

// scratch holds the per-instance arrays of the events kernel so that
// consecutive instances reuse one allocation. coreOf is double-buffered:
// the previous instance's placement must stay readable (affinity, warm-up)
// while the current instance writes the other buffer.
type scratch struct {
	coreOf  [2][]int
	flip    int
	startAt []float64
	indeg   []int
	freeAt  []float64
	ready   []dag.NodeID
	events  []completion
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		//lint:ignore hotalloc amortized grow: allocates only when capacity is exceeded, then reused across instances
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		//lint:ignore hotalloc amortized grow: allocates only when capacity is exceeded, then reused across instances
		return make([]float64, n)
	}
	return s[:n]
}

// lessCompletion is the completionHeap order: earliest finish first, ties
// broken by node ID. Node IDs are unique per instance, so this is a strict
// total order and both kernels pop completions in the identical sequence.
func lessCompletion(a, b completion) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.node < b.node
}

func pushCompletion(h *[]completion, c completion) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lessCompletion((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func popCompletion(h *[]completion) completion {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && lessCompletion(old[l], old[small]) {
			small = l
		}
		if r < n && lessCompletion(old[r], old[small]) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// runInstanceEvents is the events-kernel twin of runInstance: the same
// work-conserving dispatch over the same strict event order, with the
// container/heap boxing and per-iteration idle-core slices replaced by a
// hand-rolled heap and scratch reuse. It must emit byte-identical flight
// events — the kernel-equivalence CI job diffs the two.
func runInstanceEvents(alloc *sched.Result, plat Platform, m int, cold bool, prevCore []int, observe dispatchFunc, rec *flight.Recorder, task, job int32, sc *scratch) (InstanceStats, []int) {
	mInstances.Inc()
	t := alloc.Task
	n := len(t.Nodes)

	rec.Emit(flight.Event{Kind: flight.KindRelease, Task: task, Job: job,
		Node: -1, Core: -1, Cluster: -1, Wave: -1})

	sc.flip ^= 1
	coreOf := growInts(sc.coreOf[sc.flip], n)
	sc.coreOf[sc.flip] = coreOf
	for i := range coreOf {
		coreOf[i] = -1
	}
	startAt := growFloats(sc.startAt, n)
	sc.startAt = startAt
	indeg := growInts(sc.indeg, n)
	sc.indeg = indeg
	for id := range t.Nodes {
		indeg[id] = len(t.Pred(dag.NodeID(id)))
	}
	freeAt := growFloats(sc.freeAt, m)
	sc.freeAt = freeAt
	for i := range freeAt {
		freeAt[i] = 0
	}
	ready := sc.ready[:0]
	ready = append(ready, t.Source())
	events := sc.events[:0]

	var stats InstanceStats
	now := 0.0
	done := 0
	affinity := plat.Affinity()

	for done < n {
		// Dispatch while an idle core and a ready node exist
		// (work-conserving).
		for len(ready) > 0 {
			// Lowest-numbered idle core, as idleCores()[0] did.
			c := -1
			for cc := 0; cc < m; cc++ {
				if freeAt[cc] <= now {
					c = cc
					break
				}
			}
			if c < 0 {
				break
			}
			best := 0
			for i := 1; i < len(ready); i++ {
				pi, pb := t.Node(ready[i]).Priority, t.Node(ready[best]).Priority
				if pi > pb || (pi == pb && ready[i] < ready[best]) {
					best = i
				}
			}
			v := ready[best]
			ready = append(ready[:best], ready[best+1:]...)
			if affinity && prevCore != nil {
				if pc := prevCore[v]; pc >= 0 && freeAt[pc] <= now {
					c = pc
				}
			}
			busy := 0
			for c2 := 0; c2 < m; c2++ {
				if c2 != c && freeAt[c2] > now {
					busy++
				}
			}
			busyFrac := 0.0
			if m > 1 {
				busyFrac = float64(busy) / float64(m-1)
			}
			warm := !cold && prevCore != nil && prevCore[v] == c

			var fetch float64
			pe := t.PredEdges(v)
			for k, p := range t.Pred(v) {
				e := t.Edges[pe[k]]
				cost := plat.CommCost(e, t.Node(p), coreOf[p] == c, busyFrac)
				fetch += cost
				rec.Emit(flight.Event{Kind: flight.KindEdge, Time: now,
					Task: task, Job: job, Node: int32(v), Core: int32(c),
					Cluster: -1, Wave: -1,
					A: float64(p), B: e.Cost, C: cost})
			}
			exec := plat.ExecTime(t.Node(v), warm, busyFrac)

			coreOf[v] = c
			startAt[v] = now
			finish := now + fetch + exec
			freeAt[c] = finish
			mDispatches.Inc()
			rec.Emit(flight.Event{Kind: flight.KindDispatch, Time: now,
				Task: task, Job: job, Node: int32(v), Core: int32(c),
				Cluster: -1, Wave: -1,
				A: fetch, B: exec, C: float64(alloc.LocalWays[v])})
			stats.Comm += fetch
			stats.Exec += exec
			if observe != nil {
				observe(c, v, now, now+fetch, finish)
			}
			pushCompletion(&events, completion{at: finish, node: v})
		}

		if len(events) == 0 {
			// No running node but undone work: the graph must be
			// disconnected or cyclic — Validate precludes both.
			//lint:ignore hotalloc deadlock diagnostic: built only on a disconnected or cyclic graph, which Validate precludes
			panic("schedsim: deadlock with " + fmt.Sprint(n-done) + " nodes pending")
		}

		// Advance to the next completion; release successors.
		ev := popCompletion(&events)
		now = math.Max(now, ev.at)
		done++
		rec.Emit(flight.Event{Kind: flight.KindFinish, Time: ev.at,
			Task: task, Job: job, Node: int32(ev.node),
			Core: int32(coreOf[ev.node]), Cluster: -1, Wave: -1,
			A: ev.at - startAt[ev.node]})
		for _, s := range t.Succ(ev.node) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
		if ev.at > stats.Makespan {
			stats.Makespan = ev.at
		}
	}
	sc.ready = ready[:0]
	sc.events = events[:0]
	// The makespan check closes the instance; with no workload deadline
	// the event records A=0, B=0 (met).
	rec.Emit(flight.Event{Kind: flight.KindDeadline, Time: stats.Makespan,
		Task: task, Job: job, Node: -1, Core: -1, Cluster: -1, Wave: -1})
	return stats, coreOf
}

// Makespans extracts the makespan series from instance stats.
func Makespans(stats []InstanceStats) []float64 {
	ms := make([]float64, len(stats))
	for i, s := range stats {
		ms[i] = s.Makespan
	}
	return ms
}

// SortedCopy returns the makespans in ascending order (for percentiles).
func SortedCopy(xs []float64) []float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c
}

package schedsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l15cache/internal/dag"
	"l15cache/internal/sched"
)

// rawPlatform is the degenerate platform with no cache effects at all:
// every edge costs its full μ and every node its full WCET.
type rawPlatform struct{}

func (rawPlatform) Name() string { return "raw" }
func (rawPlatform) ExecTime(v *dag.Node, warm bool, busyFrac float64) float64 {
	return v.WCET
}
func (rawPlatform) CommCost(e dag.Edge, producer *dag.Node, sameCore bool, busyFrac float64) float64 {
	return e.Cost
}
func (rawPlatform) Affinity() bool { return false }

func mustSchedule(t *testing.T, task *dag.Task) *sched.Result {
	t.Helper()
	res, err := sched.LongestPathFirst(task)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChainMakespanRaw(t *testing.T) {
	task := dag.Chain("c", 3, 2, 3, 0.5, 4096)
	alloc := mustSchedule(t, task)
	stats, err := Run(alloc, rawPlatform{}, Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Serial chain: 2 + (3+2) + (3+2) = 12 regardless of core count.
	if got := stats[0].Makespan; got != 12 {
		t.Errorf("makespan = %g, want 12", got)
	}
	if stats[0].Comm != 6 || stats[0].Exec != 6 {
		t.Errorf("comm/exec = %g/%g, want 6/6", stats[0].Comm, stats[0].Exec)
	}
}

func TestChainMakespanProposed(t *testing.T) {
	task := dag.Chain("c", 3, 2, 3, 0.5, 4096) // δ=4096 ⇒ 2 ways needed
	prop, err := NewProposed(task, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(prop.Alloc, prop, Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Full allocation halves each edge (α=0.5): 2 + (1.5+2)×2 = 9.
	if got := stats[0].Makespan; got != 9 {
		t.Errorf("makespan = %g, want 9", got)
	}
}

func TestForkJoinParallelism(t *testing.T) {
	task := dag.ForkJoin("fj", 4, 2, 0, 0.5, 0) // no communication
	alloc := mustSchedule(t, task)

	one, err := Run(alloc, rawPlatform{}, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(alloc, rawPlatform{}, Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 6 nodes × 2 time units serial = 12; with 4 cores the branch layer
	// runs fully parallel: 2 + 2 + 2 = 6.
	if one[0].Makespan != 12 {
		t.Errorf("1-core makespan = %g, want 12", one[0].Makespan)
	}
	if four[0].Makespan != 6 {
		t.Errorf("4-core makespan = %g, want 6", four[0].Makespan)
	}
}

func TestPriorityRespected(t *testing.T) {
	// Two ready branches, one core: the higher-priority branch must run
	// first. Build src -> {a, b} -> sink; give a the longer path so the
	// scheduler prioritises it.
	task := dag.New("prio", 100, 100)
	src := task.AddNode("src", 1, 0)
	a := task.AddNode("a", 5, 0)
	b := task.AddNode("b", 1, 0)
	sink := task.AddNode("sink", 1, 0)
	task.MustAddEdge(src, a, 0, 0.5)
	task.MustAddEdge(src, b, 0, 0.5)
	task.MustAddEdge(a, sink, 0, 0.5)
	task.MustAddEdge(b, sink, 0, 0.5)
	alloc := mustSchedule(t, task)
	if task.Node(a).Priority <= task.Node(b).Priority {
		t.Fatalf("scheduler should prioritise a: a=%d b=%d",
			task.Node(a).Priority, task.Node(b).Priority)
	}
	stats, err := Run(alloc, rawPlatform{}, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One core, serial: 1 + 5 + 1 + 1 = 8 either way; but with two cores
	// makespan is 1 + 5 + 1 = 7 only if a dispatches first.
	if stats[0].Makespan != 8 {
		t.Errorf("1-core makespan = %g, want 8", stats[0].Makespan)
	}
	stats2, err := Run(alloc, rawPlatform{}, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats2[0].Makespan != 7 {
		t.Errorf("2-core makespan = %g, want 7", stats2[0].Makespan)
	}
}

func TestWarmupLowersCMPMakespan(t *testing.T) {
	task := dag.Fig1Example()
	alloc := mustSchedule(t, task)
	stats, err := Run(alloc, CMPL1(), Options{Cores: 4, Instances: 5})
	if err != nil {
		t.Fatal(err)
	}
	cold, warm := stats[0].Makespan, stats[4].Makespan
	if warm >= cold {
		t.Errorf("warm instance (%g) should beat cold (%g) on CMP|L1", warm, cold)
	}
	// The proposed system is warm-up free: all instances identical.
	prop, err := NewProposed(task.Clone(), 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	pstats, err := Run(prop.Alloc, prop, Options{Cores: 4, Instances: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pstats); i++ {
		if pstats[i].Makespan != pstats[0].Makespan {
			t.Errorf("Prop instance %d makespan %g != first %g",
				i, pstats[i].Makespan, pstats[0].Makespan)
		}
	}
}

func TestProposedBeatsRawOnCommHeavyTask(t *testing.T) {
	task := dag.Chain("heavy", 8, 1, 10, 0.6, 4096)
	raw := mustSchedule(t, task.Clone())
	rawStats, err := Run(raw, rawPlatform{}, Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	prop, err := NewProposed(task, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	propStats, err := Run(prop.Alloc, prop, Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if propStats[0].Makespan >= rawStats[0].Makespan {
		t.Errorf("Prop %g should beat raw %g on a communication-heavy chain",
			propStats[0].Makespan, rawStats[0].Makespan)
	}
}

func TestRunErrors(t *testing.T) {
	task := dag.Fig1Example()
	alloc := mustSchedule(t, task)
	if _, err := Run(alloc, rawPlatform{}, Options{Cores: -2}); err == nil {
		t.Error("negative core count accepted")
	}
}

func randomTask(r *rand.Rand) *dag.Task {
	t := dag.New("rand", 1000, 1000)
	src := t.AddNode("src", 1+r.Float64()*5, int64(r.Intn(16*1024)))
	prev := []dag.NodeID{src}
	for l, layers := 0, 2+r.Intn(4); l < layers; l++ {
		cur := make([]dag.NodeID, 1+r.Intn(4))
		for i := range cur {
			cur[i] = t.AddNode("n", 1+r.Float64()*5, int64(r.Intn(16*1024)))
			t.MustAddEdge(prev[r.Intn(len(prev))], cur[i], 1+r.Float64()*3, 0.1+r.Float64()*0.6)
		}
		prev = cur
	}
	sink := t.AddNode("sink", 1, 0)
	for _, n := range t.Nodes {
		if n.ID != sink && len(t.Succ(n.ID)) == 0 {
			t.MustAddEdge(n.ID, sink, 1, 0.5)
		}
	}
	return t
}

// Property: the makespan is bounded below by the platform's critical path
// and by total work / m, and bounded above by fully serial execution.
func TestQuickMakespanBounds(t *testing.T) {
	f := func(seed int64, mr uint8) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomTask(r)
		m := int(mr%8) + 1
		alloc, err := sched.LongestPathFirst(task)
		if err != nil {
			return false
		}
		stats, err := Run(alloc, rawPlatform{}, Options{Cores: m})
		if err != nil {
			return false
		}
		ms := stats[0].Makespan
		cp := task.CriticalPathLength(dag.RawCost)
		var serial float64
		for _, n := range task.Nodes {
			serial += n.WCET
		}
		for _, e := range task.Edges {
			serial += e.Cost
		}
		return ms >= cp-1e-9 && ms <= serial+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adding cores never increases the raw-platform makespan on these
// priority-scheduled DAGs when going from 1 core (serial) to many.
func TestQuickOneCoreIsWorst(t *testing.T) {
	f := func(seed int64, mr uint8) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomTask(r)
		m := int(mr%7) + 2
		alloc, err := sched.LongestPathFirst(task)
		if err != nil {
			return false
		}
		one, err := Run(alloc, rawPlatform{}, Options{Cores: 1})
		if err != nil {
			return false
		}
		many, err := Run(alloc, rawPlatform{}, Options{Cores: m})
		if err != nil {
			return false
		}
		// Note: list scheduling anomalies can make *some* core-count
		// increases hurt, but the 1-core schedule is fully serial and
		// cannot be beaten downward by more cores... it CAN be equal.
		return many[0].Makespan <= one[0].Makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the proposed platform never yields a longer makespan than the
// raw platform under identical priorities (communication only shrinks).
func TestQuickProposedNoWorseThanRaw(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomTask(r)
		prop, err := NewProposed(task, 16, 2048)
		if err != nil {
			return false
		}
		rawStats, err := Run(prop.Alloc, rawPlatform{}, Options{Cores: 4})
		if err != nil {
			return false
		}
		propStats, err := Run(prop.Alloc, prop, Options{Cores: 4})
		if err != nil {
			return false
		}
		// Same priorities, edge costs pointwise <= raw. List-scheduling
		// anomalies could in principle reorder, but with identical
		// priorities and dispatch rules the proposed system's pointwise
		// cheaper fetches keep every start time no later (verified
		// empirically over the seed space).
		return propStats[0].Makespan <= rawStats[0].Makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

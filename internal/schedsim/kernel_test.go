package schedsim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"l15cache/internal/flight"
	"l15cache/internal/kernel"
	"l15cache/internal/workload"
)

// runBothKernels simulates the same allocation under the ticked and events
// dispatch kernels and requires identical stats and flight recordings —
// the per-run slice of what the kernel-equivalence CI job byte-compares.
func runBothKernels(t *testing.T, seed int64, instances int) {
	t.Helper()
	p := workload.DefaultSynthParams()
	p.MinLayers, p.MaxLayers = 2, 5
	p.MaxWidth = 6
	task, err := workload.Synthetic(rand.New(rand.NewSource(seed)), p)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := NewProposed(task, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		plat Platform
	}{
		{"raw", rawPlatform{}},
		{"proposed", prop},
	} {
		recT, recE := flight.New(), flight.New()
		alloc := prop.Alloc
		if tc.name == "raw" {
			alloc = mustSchedule(t, task)
		}
		statsT, err := Run(alloc, tc.plat, Options{
			Cores: 4, Instances: instances, Kernel: kernel.Ticked, Recorder: recT})
		if err != nil {
			t.Fatal(err)
		}
		statsE, err := Run(alloc, tc.plat, Options{
			Cores: 4, Instances: instances, Kernel: kernel.Events, Recorder: recE})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(statsT, statsE) {
			t.Errorf("seed %d %s: stats diverged:\nticked %+v\nevents %+v",
				seed, tc.name, statsT, statsE)
		}
		evT, evE := recT.Events(), recE.Events()
		if !reflect.DeepEqual(evT, evE) {
			t.Errorf("seed %d %s: flight recordings diverged (%d vs %d events)",
				seed, tc.name, len(evT), len(evE))
		}
		if len(evE) == 0 {
			t.Errorf("seed %d %s: no flight events recorded; test is vacuous", seed, tc.name)
		}
	}
}

func TestKernelEquivalenceSmallDAGs(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		runBothKernels(t, seed, 1)
	}
	// Warm instances take the conventional platforms' warm path.
	runBothKernels(t, 5, 3)
}

// TestQuickKernelEquivalence lets testing/quick pick the DAG seeds.
func TestQuickKernelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized equivalence sweep")
	}
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		runBothKernels(t, seed%10000, 1)
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Package schedsim re-implements the discrete-event DAG simulator of Zhao
// et al. (RTNS'23 [15]) that the paper's makespan evaluation (Fig. 7,
// Tab. 2) runs on: m cores, non-preemptive fixed-priority work-conserving
// list scheduling, per-edge communication costs paid by the consumer core,
// and per-platform cache behaviour (warm-up, affinity, interference, or the
// L1.5 ETM).
package schedsim

import (
	"l15cache/internal/dag"
	"l15cache/internal/etm"
	"l15cache/internal/sched"
)

// Platform models how a hardware system executes one scheduled DAG node:
// how long its computation runs and how expensive each incoming edge's data
// transfer is. The simulator is agnostic to which concrete system is behind
// the interface.
type Platform interface {
	// Name identifies the system in reports (e.g. "Prop", "CMP|L1").
	Name() string

	// ExecTime returns the duration of v's computation phase. warm
	// reports whether the node runs on the same core as in the previous
	// task instance (its private-cache contents may survive); busyFrac
	// is the fraction of the other cores busy when the node starts,
	// which shared-cache systems translate into interference.
	ExecTime(v *dag.Node, warm bool, busyFrac float64) float64

	// CommCost returns the time the consumer core spends fetching the
	// dependent data of edge e. sameCore reports whether producer and
	// consumer were placed on the same core.
	CommCost(e dag.Edge, producer *dag.Node, sameCore bool, busyFrac float64) float64

	// Affinity reports whether the dispatcher should prefer re-placing a
	// node on the core it used in the previous instance (the
	// "learned recency" placement bias of [15]).
	Affinity() bool
}

// Proposed is the paper's system: the L1.5 Cache plus Algorithm 1. Node
// computation is undisturbed (way-level isolation removes inter-core
// interference) and every edge's communication cost follows the ETM under
// the scheduler's way allocation. Because the dependent data is placed in
// the L1.5 before the consumer starts, the system behaves identically in
// cold and warm instances — the source of its worst-case advantage.
type Proposed struct {
	Alloc *sched.Result
}

// Name implements Platform.
func (p *Proposed) Name() string { return "Prop" }

// ExecTime implements Platform: plain WCET, no interference.
func (p *Proposed) ExecTime(v *dag.Node, warm bool, busyFrac float64) float64 {
	return v.WCET
}

// CommCost implements Platform via the ETM.
func (p *Proposed) CommCost(e dag.Edge, producer *dag.Node, sameCore bool, busyFrac float64) float64 {
	return p.Alloc.EdgeCost(e)
}

// Affinity implements Platform. The L1.5 Cache makes the dependent data
// visible cluster-wide, so placement does not matter.
func (p *Proposed) Affinity() bool { return false }

// CMPParams hold the calibrated constants of a conventional-cache baseline.
// See DESIGN.md §5 and EXPERIMENTS.md for the calibration rationale; the
// defaults reproduce the paper's relative gaps (average makespan of Prop
// beats CMP|L1 by ≈11-16% and CMP|L2 by ≈23%, worst case by ≈19-21%, with
// the gains shrinking as the critical-path ratio grows).
type CMPParams struct {
	Name string

	// ExecSpeedup is the maximal fraction of a node's WCET the private /
	// shared cache removes once warm (requires the node to re-run on the
	// core that cached it). Scaled by CacheFit of the node's data.
	ExecSpeedup float64

	// CacheBytes is the per-core cache capacity available to retain a
	// node's working set between instances.
	CacheBytes int64

	// SameCoreCommFactor scales α_{j,k} when producer and consumer share
	// a core (the data is still resident in the producer core's private
	// cache).
	SameCoreCommFactor float64

	// CrossCoreCommFactor scales α_{j,k} when they do not (the data must
	// travel through the shared levels; only a large shared cache
	// provides relief).
	CrossCoreCommFactor float64

	// ExecInterference inflates execution time by
	// 1+ExecInterference×busyFrac, modelling contention on the shared
	// cache levels a node's working set spills into.
	ExecInterference float64

	// CommInterference inflates communication costs the same way: the
	// dependent data of every cross-core edge travels through the shared
	// levels, whose effective latency grows with the number of busy
	// cores. The L1.5 Cache eliminates exactly this term (way-level
	// isolation), which is the paper's core motivation.
	CommInterference float64

	// UseAffinity biases the dispatcher toward the previous-instance
	// core.
	UseAffinity bool
}

// CMP is a conventional system without the L1.5 Cache, parameterised as
// CMP|L1, CMP|L2 or CMP|Shared-L1.
type CMP struct {
	P CMPParams
}

// CMPL1 returns the CMP|L1 baseline: each core's private L1 doubled (total
// cache capacity equalised with the proposed SoC). Strong warm-instance
// execution speed-up and full same-core communication relief, but no help
// across cores.
func CMPL1() *CMP {
	return &CMP{CMPParams{
		Name:                "CMP|L1",
		ExecSpeedup:         0.08,
		CacheBytes:          8 * 1024,
		SameCoreCommFactor:  0.8,
		CrossCoreCommFactor: 0.0,
		ExecInterference:    0.08,
		CommInterference:    0.50,
		UseAffinity:         true,
	}}
}

// CMPL2 returns the CMP|L2 baseline: the shared L2 enlarged instead. Weaker
// and slower warm-up benefit, a little cross-core relief, and shared-cache
// interference that grows with the number of busy cores.
func CMPL2() *CMP {
	return &CMP{CMPParams{
		Name:                "CMP|L2",
		ExecSpeedup:         0.04,
		CacheBytes:          32 * 1024,
		SameCoreCommFactor:  0.40,
		CrossCoreCommFactor: 0.15,
		ExecInterference:    0.15,
		CommInterference:    0.85,
		UseAffinity:         true,
	}}
}

// SharedL1 returns the CMP|Shared-L1 baseline of Jiang et al. [10]: an L1
// shared by the cluster with heuristic capacity allocation. Communication
// through the shared L1 is cheap in either placement, but the unmanaged
// sharing causes severe inter-core interference under load.
func SharedL1() *CMP {
	return &CMP{CMPParams{
		Name:                "CMP|Shared-L1",
		ExecSpeedup:         0.10,
		CacheBytes:          16 * 1024,
		SameCoreCommFactor:  0.55,
		CrossCoreCommFactor: 0.45,
		ExecInterference:    0.40,
		CommInterference:    0.50,
		UseAffinity:         false,
	}}
}

// Name implements Platform.
func (c *CMP) Name() string { return c.P.Name }

// cacheFit returns the fraction of the node's dependent data the cache can
// retain, min(1, CacheBytes/δ).
func (c *CMP) cacheFit(data int64) float64 {
	if data <= 0 {
		return 1
	}
	fit := float64(c.P.CacheBytes) / float64(data)
	if fit > 1 {
		fit = 1
	}
	return fit
}

// ExecTime implements Platform. Warm nodes enjoy the cache speed-up; every
// node suffers the shared-level interference inflation.
func (c *CMP) ExecTime(v *dag.Node, warm bool, busyFrac float64) float64 {
	t := v.WCET
	if warm {
		t *= 1 - c.P.ExecSpeedup*c.cacheFit(v.Data)
	}
	return t * (1 + c.P.ExecInterference*busyFrac)
}

// CommCost implements Platform: the edge's α is honoured only to the extent
// the platform's caches keep the producer's data close.
func (c *CMP) CommCost(e dag.Edge, producer *dag.Node, sameCore bool, busyFrac float64) float64 {
	factor := c.P.CrossCoreCommFactor
	if sameCore {
		factor = c.P.SameCoreCommFactor
	}
	relief := e.Alpha * factor * c.cacheFit(producer.Data)
	return e.Cost * (1 - relief) * (1 + c.P.CommInterference*busyFrac)
}

// Affinity implements Platform.
func (c *CMP) Affinity() bool { return c.P.UseAffinity }

var _ Platform = (*Proposed)(nil)
var _ Platform = (*CMP)(nil)

// NewProposed schedules the task with Algorithm 1 (ζ ways of κ bytes) and
// wraps the result as a Platform.
func NewProposed(t *dag.Task, zeta int, wayBytes int64) (*Proposed, error) {
	res, err := sched.L15Schedule(t, zeta, wayBytes)
	if err != nil {
		return nil, err
	}
	return &Proposed{Alloc: res}, nil
}

// DefaultZeta and DefaultWayBytes mirror the paper's L1.5 configuration:
// 16 ways of 2 KB.
const (
	DefaultZeta     = 16
	DefaultWayBytes = etm.DefaultWayBytes
)

package rtos

import (
	"testing"

	"l15cache/internal/dag"
	"l15cache/internal/soc"
)

// smallTask builds a diamond DAG with cycle-scale WCETs and line-aligned
// data volumes.
func smallTask(name string, wcet float64, data int64) *dag.Task {
	t := dag.New(name, 0, 0)
	src := t.AddNode("src", wcet, data)
	a := t.AddNode("a", wcet, data)
	b := t.AddNode("b", wcet, data)
	sink := t.AddNode("sink", wcet, 0)
	t.MustAddEdge(src, a, 10, 0.5)
	t.MustAddEdge(src, b, 10, 0.5)
	t.MustAddEdge(a, sink, 10, 0.5)
	t.MustAddEdge(b, sink, 10, 0.5)
	t.Period, t.Deadline = 1, 1
	return t
}

func kernelConfig(useL15 bool) Config {
	cfg := Config{
		SoC:         soc.DefaultConfig(),
		UseL15:      useL15,
		JobsPerTask: 2,
	}
	return cfg
}

func TestNewErrors(t *testing.T) {
	if _, err := New(kernelConfig(true), nil); err == nil {
		t.Error("empty task set accepted")
	}
	spec := TaskSpec{Task: smallTask("t", 1000, 2048)}
	if _, err := New(kernelConfig(true), []TaskSpec{spec}); err == nil {
		t.Error("zero period accepted")
	}
	bad := TaskSpec{Task: dag.New("bad", 1, 1), PeriodCycles: 1000, DeadlineCycles: 1000}
	if _, err := New(kernelConfig(true), []TaskSpec{bad}); err == nil {
		t.Error("invalid DAG accepted")
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	specs := []TaskSpec{
		{Task: smallTask("t0", 2000, 2048), PeriodCycles: 120_000, DeadlineCycles: 120_000},
		{Task: smallTask("t1", 3000, 4096), PeriodCycles: 150_000, DeadlineCycles: 150_000},
	}
	k, err := New(kernelConfig(true), specs)
	if err != nil {
		t.Fatal(err)
	}
	records, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // 2 tasks × 2 jobs
		t.Fatalf("records = %d, want 4", len(records))
	}
	for _, r := range records {
		if r.Missed {
			t.Errorf("task %d released at %d missed (finish %d, deadline %d)",
				r.Task, r.Release, r.Finish, r.Deadline)
		}
		if r.Finish <= r.Release {
			t.Errorf("job finished before release: %+v", r)
		}
	}
	if Misses(records) != 0 {
		t.Error("Misses disagrees with records")
	}
}

func TestL15PathProducesGlobalHits(t *testing.T) {
	// One task with real dependent data: the consumers must be served
	// from the producer's published (global) ways.
	specs := []TaskSpec{
		{Task: smallTask("t0", 1000, 4096), PeriodCycles: 200_000, DeadlineCycles: 200_000},
	}
	k, err := New(kernelConfig(true), specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var globalHits uint64
	for _, cl := range k.SoC().Clusters {
		for _, st := range cl.L15.Stats {
			globalHits += st.GlobalHits
		}
	}
	if globalHits == 0 {
		t.Error("no L1.5 global hits: dependent data did not flow through the cache")
	}
}

func TestBaselineNeverTouchesL15(t *testing.T) {
	specs := []TaskSpec{
		{Task: smallTask("t0", 1000, 4096), PeriodCycles: 200_000, DeadlineCycles: 200_000},
	}
	k, err := New(kernelConfig(false), specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, cl := range k.SoC().Clusters {
		if cl.L15.OwnedWays() != 0 {
			t.Error("baseline kernel assigned L1.5 ways")
		}
		for _, st := range cl.L15.Stats {
			if st.GlobalHits != 0 {
				t.Error("baseline saw global hits")
			}
		}
	}
}

func TestL15SpeedsUpDataFlow(t *testing.T) {
	// Same workload on both kernels: the L1.5 path must not be slower in
	// total finish time (it turns consumer L2 misses into L1.5 hits).
	mk := func(useL15 bool) uint64 {
		specs := []TaskSpec{
			{Task: smallTask("t0", 500, 8192), PeriodCycles: 400_000, DeadlineCycles: 400_000},
		}
		k, err := New(kernelConfig(useL15), specs)
		if err != nil {
			t.Fatal(err)
		}
		records, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		var last uint64
		for _, r := range records {
			if r.Finish > last {
				last = r.Finish
			}
		}
		return last
	}
	with := mk(true)
	without := mk(false)
	if with > without {
		t.Errorf("L1.5 kernel slower: %d vs %d cycles", with, without)
	}
}

func TestDeadlineMissRecorded(t *testing.T) {
	// An absurdly tight deadline must be missed and recorded.
	specs := []TaskSpec{
		{Task: smallTask("t0", 5000, 8192), PeriodCycles: 1_000_000, DeadlineCycles: 10},
	}
	cfg := kernelConfig(true)
	cfg.JobsPerTask = 1
	k, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	records, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if Misses(records) != 1 {
		t.Errorf("misses = %d, want 1 (%+v)", Misses(records), records)
	}
}

func TestRateMonotonicOrdering(t *testing.T) {
	// The short-period task must preempt... (non-preemptive: must be
	// *dispatched* first whenever both are ready). We just verify both
	// complete and the kernel didn't wedge with competing tasks.
	specs := []TaskSpec{
		{Task: smallTask("slow", 3000, 4096), PeriodCycles: 300_000, DeadlineCycles: 300_000},
		{Task: smallTask("fast", 1000, 2048), PeriodCycles: 100_000, DeadlineCycles: 100_000},
	}
	cfg := kernelConfig(true)
	cfg.JobsPerTask = 3
	k, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	records, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 6 {
		t.Fatalf("records = %d", len(records))
	}
	if Misses(records) != 0 {
		t.Errorf("misses at trivial load: %+v", records)
	}
}

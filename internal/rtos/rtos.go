// Package rtos is the kernel layer of the full-stack framework: a
// FreeRTOS-like executive hosting periodic DAG tasks on the simulated SoC.
// Nodes execute as real RV32I routines (a compute loop, a read loop over
// the predecessors' dependent data, and a write loop producing the node's
// own data); the kernel dispatches them non-preemptively by fixed priority
// (rate-monotonic between tasks, the scheduler's priorities within a task)
// and performs the §4.3 L1.5 reconfiguration on every context switch:
//
//	demand()  — grow the core's way allocation to cover the node's plan
//	            plus the ways still pinned for unconsumed data;
//	ip_set()  — make the owned ways inclusive so the node's stores fill
//	            the L1.5;
//	gv_set()  — on completion, publish the node's ways to the cluster
//	            (read-only) until every consumer has finished.
//
// The kernel talks to the L1.5 through the cluster control port directly —
// exactly what a kernel running the privileged demand instruction does —
// while all data movement happens through the simulated cores' loads and
// stores.
package rtos

import (
	"fmt"
	"sort"

	"l15cache/internal/bitmap"
	"l15cache/internal/cpu"
	"l15cache/internal/dag"
	"l15cache/internal/sched"
	"l15cache/internal/soc"
	"l15cache/internal/tlb"
)

// ecall service numbers used by the generated routines.
const (
	svcNodeDone = 1
	svcIdlePoll = 2
)

// TaskSpec binds a DAG task to its run-time parameters. Node WCETs are
// interpreted as compute iterations (≈2 cycles each on the simulated core);
// data volumes are rounded up to cache lines.
type TaskSpec struct {
	Task *dag.Task
	// PeriodCycles and DeadlineCycles override the task's period/deadline
	// (which the generators express in abstract units) with cycle counts.
	PeriodCycles   uint64
	DeadlineCycles uint64
}

// JobRecord reports one job (one release of one task).
type JobRecord struct {
	Task     int
	Release  uint64
	Finish   uint64
	Deadline uint64
	Missed   bool
}

// Config configures the kernel.
type Config struct {
	SoC soc.Config

	// UseL15 enables the §4.3 reconfiguration protocol. When false the
	// kernel never touches the L1.5 (the CMP baseline on the same
	// silicon): dependent data flows through the L2.
	UseL15 bool

	// JobsPerTask bounds the experiment: each task releases this many
	// jobs (default 2).
	JobsPerTask int

	// MaxInstructions bounds the whole simulation (default 50M).
	MaxInstructions uint64
}

// Kernel is the executive state.
type Kernel struct {
	cfg   Config
	soc   *soc.SoC
	tasks []*taskState

	routineEntry uint32
	parkEntry    uint32

	records []JobRecord
	coreJob []*jobState // per core: running node's job, nil if idle
	coreV   []dag.NodeID

	// Way bookkeeping per core: published (pinned) data ways per node.
	pinned   []map[nodeKey]bitmap.Bitmap
	pinnedBM []bitmap.Bitmap // union per core
	planned  []int           // current node's planned local ways per core
}

type nodeKey struct {
	job *jobState
	v   dag.NodeID
}

type taskState struct {
	idx    int
	spec   TaskSpec
	alloc  *sched.Result
	pt     *tlb.PageTable
	rmRank int
	// bufBase[v] is the physical/virtual address of node v's output
	// buffer.
	bufBase map[dag.NodeID]uint32
	bufLen  map[dag.NodeID]uint32
}

type jobState struct {
	task     *taskState
	release  uint64
	deadline uint64
	indeg    []int
	done     []bool
	coreOf   []int
	succLeft []int
	left     int
	recorded bool
}

// New builds the kernel: assembles the node routine, lays out the data
// buffers, schedules every task (Alg. 1 when UseL15, longest-path-first
// otherwise) and prepares the SoC.
func New(cfg Config, specs []TaskSpec) (*Kernel, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("rtos: no tasks")
	}
	if cfg.JobsPerTask <= 0 {
		cfg.JobsPerTask = 2
	}
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = 50_000_000
	}
	s, err := soc.New(cfg.SoC)
	if err != nil {
		return nil, err
	}
	k := &Kernel{cfg: cfg, soc: s}

	if err := k.loadRoutines(); err != nil {
		return nil, err
	}

	// Buffer allocator: bump pointer above the code.
	next := uint32(0x40000)
	alignUp := func(v, a uint32) uint32 { return (v + a - 1) &^ (a - 1) }

	zeta := cfg.SoC.L15.Ways
	wayBytes := int64(cfg.SoC.L15.WayBytes)
	for i, spec := range specs {
		if err := spec.Task.Validate(); err != nil {
			return nil, fmt.Errorf("rtos: task %d: %w", i, err)
		}
		if spec.PeriodCycles == 0 || spec.DeadlineCycles == 0 {
			return nil, fmt.Errorf("rtos: task %d: zero period/deadline", i)
		}
		ts := &taskState{
			idx:     i,
			spec:    spec,
			bufBase: map[dag.NodeID]uint32{},
			bufLen:  map[dag.NodeID]uint32{},
		}
		task := spec.Task.Clone()
		if cfg.UseL15 {
			ts.alloc, err = sched.L15Schedule(task, zeta, wayBytes)
		} else {
			ts.alloc, err = sched.LongestPathFirst(task)
		}
		if err != nil {
			return nil, err
		}
		ts.pt = s.IdentityPageTable(uint16(i + 1))
		for _, n := range task.Nodes {
			length := alignUp(uint32(n.Data), 64)
			if length == 0 {
				length = 64
			}
			ts.bufBase[n.ID] = next
			ts.bufLen[n.ID] = length
			next = alignUp(next+length, 4096)
			if int(next) >= cfg.SoC.MemBytes {
				return nil, fmt.Errorf("rtos: out of buffer memory at task %d", i)
			}
		}
		k.tasks = append(k.tasks, ts)
	}

	// Rate-monotonic ranks.
	order := make([]int, len(k.tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return k.tasks[order[a]].spec.PeriodCycles < k.tasks[order[b]].spec.PeriodCycles
	})
	for rank, idx := range order {
		k.tasks[idx].rmRank = rank
	}

	n := len(s.Cores)
	k.coreJob = make([]*jobState, n)
	k.coreV = make([]dag.NodeID, n)
	k.pinned = make([]map[nodeKey]bitmap.Bitmap, n)
	k.pinnedBM = make([]bitmap.Bitmap, n)
	k.planned = make([]int, n)
	for c := range k.pinned {
		k.pinned[c] = map[nodeKey]bitmap.Bitmap{}
	}
	return k, nil
}

// SoC exposes the underlying system (for inspection after Run).
func (k *Kernel) SoC() *soc.SoC { return k.soc }

// routineSrc is the generic node body. The kernel loads the argument
// registers at dispatch:
//
//	a0 output buffer, a1 output bytes, a2 compute iterations,
//	a3 input buffer, a4 input bytes.
const routineSrc = `
entry:
	beqz a2, readp
comp:
	addi a2, a2, -1
	bnez a2, comp
readp:
	beqz a4, writep
rloop:
	lw t0, 0(a3)
	addi a3, a3, 64
	addi a4, a4, -64
	bnez a4, rloop
writep:
	beqz a1, fin
wloop:
	sw t0, 0(a0)
	addi a0, a0, 64
	addi a1, a1, -64
	bnez a1, wloop
fin:
	li a7, 1
	ecall
	j entry
`

// parkSrc is the idle loop: a bounded delay then a kernel poll, modelling
// the timer tick that re-examines the release queue.
const parkSrc = `
park:
	li t6, 32
delay:
	addi t6, t6, -1
	bnez t6, delay
	li a7, 2
	ecall
	j park
`

func (k *Kernel) loadRoutines() error {
	k.routineEntry = 0x1000
	n, err := k.soc.LoadProgram(k.routineEntry, routineSrc)
	if err != nil {
		return err
	}
	k.parkEntry = k.routineEntry + uint32(4*n) + 0x40
	if _, err := k.soc.LoadProgram(k.parkEntry, parkSrc); err != nil {
		return err
	}
	return nil
}

// Run executes the experiment and returns the per-job records.
func (k *Kernel) Run() ([]JobRecord, error) {
	var jobs []*jobState

	// Pre-compute all releases.
	type release struct {
		at   uint64
		task *taskState
	}
	var releases []release
	for _, ts := range k.tasks {
		for j := 0; j < k.cfg.JobsPerTask; j++ {
			releases = append(releases, release{at: uint64(j) * ts.spec.PeriodCycles, task: ts})
		}
	}
	sort.SliceStable(releases, func(a, b int) bool {
		if releases[a].at != releases[b].at {
			return releases[a].at < releases[b].at
		}
		return releases[a].task.rmRank < releases[b].task.rmRank
	})
	ri := 0

	var ready []readyNode
	now := func(c *cpu.Core) uint64 { return c.Cycles }

	admit := func(t uint64) {
		for ri < len(releases) && releases[ri].at <= t {
			ts := releases[ri].task
			j := newJob(ts, releases[ri].at)
			jobs = append(jobs, j)
			ready = append(ready, readyNode{j: j, v: ts.alloc.Task.Source()})
			ri++
		}
	}
	admit(0)

	// Start every core parked.
	for c := range k.soc.Cores {
		k.soc.StartCore(c, k.parkEntry, 0)
		if err := k.soc.SetPageTable(c, k.tasks[0].pt); err != nil {
			return nil, err
		}
	}

	handler := func(core *cpu.Core, trap cpu.Trap) bool {
		t := now(core)
		admit(t)
		switch core.Regs[17] {
		case svcNodeDone:
			k.completeNode(core, t, &ready)
		case svcIdlePoll:
			// fall through to dispatch
		}
		if k.dispatch(core, &ready) {
			return true
		}
		// Nothing to run. If all work is done and no releases remain,
		// halt the core; otherwise keep it parked so time advances.
		if ri >= len(releases) && len(ready) == 0 && k.allIdleExcept(core) {
			return false
		}
		core.PC = k.parkEntry
		return true
	}

	if _, err := k.soc.Run(k.cfg.MaxInstructions, handler); err != nil {
		return nil, err
	}

	// Record outcomes (jobs still unfinished at the end are misses).
	var horizon uint64
	for _, c := range k.soc.Cores {
		if c.Cycles > horizon {
			horizon = c.Cycles
		}
	}
	for _, j := range jobs {
		if !j.recorded {
			k.records = append(k.records, JobRecord{
				Task:     j.task.idx,
				Release:  j.release,
				Finish:   horizon,
				Deadline: j.deadline,
				Missed:   true,
			})
			j.recorded = true
		}
	}
	return k.records, nil
}

type readyNode struct {
	j *jobState
	v dag.NodeID
}

func newJob(ts *taskState, at uint64) *jobState {
	t := ts.alloc.Task
	n := len(t.Nodes)
	j := &jobState{
		task:     ts,
		release:  at,
		deadline: at + ts.spec.DeadlineCycles,
		indeg:    make([]int, n),
		done:     make([]bool, n),
		coreOf:   make([]int, n),
		succLeft: make([]int, n),
		left:     n,
	}
	for id := range t.Nodes {
		v := dag.NodeID(id)
		j.indeg[id] = len(t.Pred(v))
		j.succLeft[id] = len(t.Succ(v))
		j.coreOf[id] = -1
	}
	return j
}

// allIdleExcept reports whether every other core is idle (parked or
// halted).
func (k *Kernel) allIdleExcept(core *cpu.Core) bool {
	for c := range k.soc.Cores {
		if c != core.ID && k.coreJob[c] != nil {
			return false
		}
	}
	return true
}

// dispatch picks the highest-priority ready node and launches it on the
// calling core, performing the context-switch reconfiguration. It returns
// false if no node was ready. With the L1.5 enabled, the kernel (which has
// the comprehensive system view the paper gives it) prefers placing a node
// in the cluster holding its predecessors' published data: if this core is
// in the wrong cluster and an idle core exists in the right one, the node
// is left for that core's next timer poll.
func (k *Kernel) dispatch(core *cpu.Core, ready *[]readyNode) bool {
	if len(*ready) == 0 {
		return false
	}
	best := 0
	for i := 1; i < len(*ready); i++ {
		if readyLess((*ready)[i], (*ready)[best]) {
			best = i
		}
	}
	rn := (*ready)[best]
	if k.cfg.UseL15 {
		if want := k.affinityCluster(rn); want >= 0 && want != core.ID/k.cfg.SoC.ClusterSize {
			if k.idleCoreInCluster(want, core.ID) {
				return false // leave it for the right cluster
			}
		}
	}
	*ready = append((*ready)[:best], (*ready)[best+1:]...)

	j, v := rn.j, rn.v
	ts := j.task
	c := core.ID
	k.coreJob[c] = j
	k.coreV[c] = v
	j.coreOf[v] = c

	// Context switch: address space + TID, then the §4.3 reconfiguration.
	if err := k.soc.SetPageTable(c, ts.pt); err != nil {
		panic(err) // construction guarantees valid cores/page tables
	}
	if k.cfg.UseL15 {
		k.reconfigure(c, j, v)
	}

	// Launch the routine. Input: the heaviest predecessor's buffer.
	node := ts.alloc.Task.Node(v)
	var inBase, inLen uint32
	for _, p := range ts.alloc.Task.Pred(v) {
		if l := ts.bufLen[p]; l > inLen {
			inBase, inLen = ts.bufBase[p], l
		}
	}
	outLen := ts.bufLen[v]
	if len(ts.alloc.Task.Succ(v)) == 0 {
		outLen = 64 // sinks produce no dependent data; one line of result
	}
	core.PC = k.routineEntry
	core.Regs[10] = ts.bufBase[v]         // a0 out buffer
	core.Regs[11] = outLen                // a1 out bytes
	core.Regs[12] = uint32(node.WCET) / 2 // a2 compute iterations (~2cy each)
	core.Regs[13] = inBase                // a3 in buffer
	core.Regs[14] = inLen                 // a4 in bytes
	core.Regs[17] = 0                     // a7 clear service number
	return true
}

// affinityCluster returns the cluster holding the published data of the
// node's heaviest predecessor, or -1 if it has none.
func (k *Kernel) affinityCluster(rn readyNode) int {
	task := rn.j.task.alloc.Task
	bestCl, bestData := -1, int64(-1)
	for _, p := range task.Pred(rn.v) {
		pc := rn.j.coreOf[p]
		if pc < 0 {
			continue
		}
		if _, pinned := k.pinned[pc][nodeKey{rn.j, p}]; !pinned {
			continue
		}
		if d := task.Node(p).Data; d > bestData {
			bestData = d
			bestCl = pc / k.cfg.SoC.ClusterSize
		}
	}
	return bestCl
}

// idleCoreInCluster reports whether some core other than except in the
// cluster is idle (parked, able to pick work up on its next poll).
func (k *Kernel) idleCoreInCluster(cluster, except int) bool {
	lo := cluster * k.cfg.SoC.ClusterSize
	hi := lo + k.cfg.SoC.ClusterSize
	for c := lo; c < hi && c < len(k.soc.Cores); c++ {
		if c != except && k.coreJob[c] == nil && !k.soc.Cores[c].Halted {
			return true
		}
	}
	return false
}

func readyLess(a, b readyNode) bool {
	ra, rb := a.j.task.rmRank, b.j.task.rmRank
	if ra != rb {
		return ra < rb
	}
	if a.j.release != b.j.release {
		return a.j.release < b.j.release
	}
	pa := a.j.task.alloc.Task.Node(a.v).Priority
	pb := b.j.task.alloc.Task.Node(b.v).Priority
	if pa != pb {
		return pa > pb
	}
	return a.v < b.v
}

// reconfigure performs the dispatch-side L1.5 protocol on core c for node
// v: demand enough ways for the pinned data plus the node's plan, and make
// the fresh (non-published) ways inclusive. Work-conserving: the node
// starts immediately; the SDU applies the configuration concurrently
// (§5.3's φ).
func (k *Kernel) reconfigure(c int, j *jobState, v dag.NodeID) {
	cl := k.soc.ClusterOf(c).L15
	local := c % k.cfg.SoC.ClusterSize
	plan := j.task.alloc.LocalWays[v]
	k.planned[c] = plan
	target := k.pinnedBM[c].Count() + plan
	if max := cl.Config().Ways; target > max {
		target = max
	}
	// The kernel's demand() — privileged, through the control port.
	if err := cl.Demand(local, target); err != nil {
		panic(err)
	}
	// Inclusion policy: every owned way except the published (pinned)
	// ones accepts the node's output. The policy register is masked
	// against ownership at access time, so the ways the SDU is still
	// granting adopt it as they arrive.
	policy := bitmap.FirstN(cl.Config().Ways).Diff(k.pinnedBM[c])
	if err := cl.IPSet(local, policy); err != nil {
		panic(err)
	}
	if err := cl.GVSet(local, k.pinnedBM[c]); err != nil {
		panic(err)
	}
}

// completeNode handles a node's ecall: publish its ways, release its
// consumers, unpin data nobody needs any more, and close the job when the
// sink finishes.
func (k *Kernel) completeNode(core *cpu.Core, t uint64, ready *[]readyNode) {
	c := core.ID
	j := k.coreJob[c]
	if j == nil {
		return
	}
	v := k.coreV[c]
	k.coreJob[c] = nil

	ts := j.task
	task := ts.alloc.Task
	j.done[v] = true
	j.left--

	if k.cfg.UseL15 {
		cl := k.soc.ClusterOf(c).L15
		local := c % k.cfg.SoC.ClusterSize
		owned, _ := cl.Supply(local)
		fresh := owned.Diff(k.pinnedBM[c])
		if j.succLeft[v] > 0 && !fresh.IsEmpty() {
			// Publish: the node's ways stay pinned (read-only,
			// globally visible) until every consumer finishes.
			k.pinned[c][nodeKey{j, v}] = fresh
			k.pinnedBM[c] = k.pinnedBM[c].Union(fresh)
			if err := cl.GVSet(local, k.pinnedBM[c]); err != nil {
				panic(err)
			}
		}
		// Predecessors whose data this node was the last to consume
		// can be unpinned on their producer cores.
		for _, p := range task.Pred(v) {
			j.succLeft[p]--
			if j.succLeft[p] == 0 {
				k.unpin(j, p)
			}
		}
	} else {
		for _, p := range task.Pred(v) {
			j.succLeft[p]--
		}
	}

	for _, s := range task.Succ(v) {
		j.indeg[s]--
		if j.indeg[s] == 0 {
			*ready = append(*ready, readyNode{j: j, v: s})
		}
	}

	if j.left == 0 && !j.recorded {
		k.records = append(k.records, JobRecord{
			Task:     ts.idx,
			Release:  j.release,
			Finish:   t,
			Deadline: j.deadline,
			Missed:   t > j.deadline,
		})
		j.recorded = true
	}
}

// unpin releases the published ways of node v on its producer core and
// shrinks that core's demand accordingly.
func (k *Kernel) unpin(j *jobState, v dag.NodeID) {
	pc := j.coreOf[v]
	if pc < 0 {
		return
	}
	key := nodeKey{j, v}
	bm, ok := k.pinned[pc][key]
	if !ok {
		return
	}
	delete(k.pinned[pc], key)
	// Rebuild the union.
	var union bitmap.Bitmap
	for _, b := range k.pinned[pc] {
		union = union.Union(b)
	}
	k.pinnedBM[pc] = union
	_ = bm

	cl := k.soc.ClusterOf(pc).L15
	local := pc % k.cfg.SoC.ClusterSize
	target := union.Count() + k.planned[pc]
	if k.coreJob[pc] == nil {
		target = union.Count()
	}
	if max := cl.Config().Ways; target > max {
		target = max
	}
	if err := cl.Demand(local, target); err != nil {
		panic(err)
	}
	if err := cl.GVSet(local, union); err != nil {
		panic(err)
	}
}

// Misses counts missed jobs in the records.
func Misses(records []JobRecord) int {
	n := 0
	for _, r := range records {
		if r.Missed {
			n++
		}
	}
	return n
}

// Package runner is the deterministic parallel experiment harness behind
// every sweep in internal/experiments and the cmd/ drivers: a bounded
// worker pool whose results are bit-identical regardless of worker count,
// scheduling order or interruption.
//
// The determinism contract rests on three rules (DESIGN.md §9):
//
//   - per-shard seeding: shard i of a sweep rooted at seed s draws all of
//     its randomness from Seed(s, i), a splitmix64-style hash of (s, i).
//     No shard ever touches another shard's generator, so the assignment
//     of shards to workers cannot influence any result;
//   - index-ordered reduction: Map returns results in shard order and
//     callers fold them in that order, so floating-point accumulation is
//     associativity-stable across worker counts;
//   - no shared mutable state: a shard function may only read its Config
//     and write its own return value.
//
// On top of that contract the runner provides operational features the
// old ad-hoc goroutine fan-outs lacked: concurrency capped at
// Options.Workers (default runtime.NumCPU()), cooperative cancellation
// (SignalContext wires SIGINT) with a partial-result summary, per-trial
// JSON checkpointing so a killed sweep resumes where it stopped,
// content-addressed trial memoization (Options.Memo, keyed off
// Config.Fingerprint; see internal/memo and DESIGN.md §12) so previously
// computed trials are served from cache, and progress/ETA gauges
// published through the internal/metrics registry
// (runner.<name>.progress, runner.<name>.eta_seconds,
// runner.<name>.trials_completed, runner.<name>.trials_total).
//
// Unlike the simulator packages, the runner is allowed to read the wall
// clock: elapsed time feeds the operator-facing ETA gauge, never a
// simulated result. The walltime analyzer encodes exactly this exemption.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"time"

	"l15cache/internal/memo"
	"l15cache/internal/metrics"
)

// Options is the operator-facing knob set every experiment config embeds;
// the cmd/ tools map their -workers, -checkpoint and -memo/-memo-dir
// flags onto it.
type Options struct {
	// Workers caps the number of concurrent shard evaluations. Zero or
	// negative means runtime.NumCPU(). The value never influences
	// results, only wall-clock time.
	Workers int
	// Checkpoint, when non-empty, names a JSON file recording finished
	// shards at trial granularity. A rerun with the same Config resumes
	// from it, recomputing only the missing shards.
	Checkpoint string
	// Memo, when non-nil, is the content-addressed trial result cache
	// (internal/memo). Before dispatching a shard, Map looks up the key
	// derived from Config.Fingerprint and the shard identity; hits skip
	// the computation entirely, and every computed shard is stored back.
	// Reuse is sound because the determinism contract above makes a
	// shard's result a pure function of exactly what the key hashes
	// (DESIGN.md §12). Like Workers, a cache can change only wall-clock
	// time, never a result.
	Memo *memo.Cache
}

// workers resolves the effective pool size for n shards.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	return w
}

// Config identifies one Map invocation: its checkpoint section, metric
// names and seed root.
type Config struct {
	// Name identifies the sweep in checkpoints, metrics and cancellation
	// summaries, e.g. "makespan/U=0.6". Two Map calls sharing a
	// checkpoint file must use distinct names.
	Name string
	// RootSeed roots the per-shard seed derivation (see Seed).
	RootSeed int64
	// Options carries the worker-pool, checkpoint and memo settings.
	Options
	// Fingerprint is the canonical encoding (built with memo.Encoder) of
	// every trial input other than the shard identity: the experiment
	// config, workload parameters and kernel mode the shard function
	// closes over. It is the caller's half of the memo soundness
	// contract — every input that can influence a shard's result must be
	// encoded, and DESIGN.md §12 spells out the rules. nil disables
	// memoization for this Map call even when Options.Memo is set (the
	// right choice for side-effect-bearing trials, e.g. ones that emit
	// flight recordings).
	Fingerprint []byte
	// Registry receives the progress instruments; nil means
	// metrics.Default.
	Registry *metrics.Registry
}

// Shard is the unit of work handed to a shard function: its index in
// [0, n) and the RNG seed derived from the sweep's root seed.
type Shard struct {
	Index int
	Seed  int64
}

// RNG returns a fresh generator seeded for this shard. Every call returns
// an identical, independent stream.
func (s Shard) RNG() *rand.Rand { return rand.New(rand.NewSource(s.Seed)) }

// Seed derives the seed of shard index under root: a splitmix64-style
// avalanche hash of the pair, so consecutive indices produce uncorrelated
// streams and the derivation depends only on (root, index) — never on
// worker count or completion order.
func Seed(root int64, index int) int64 {
	z := uint64(root) ^ (0x9e3779b97f4a7c15 * (uint64(index) + 1))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Canceled is returned by Map when the context was canceled before every
// shard finished. The completed prefix of results is valid (indices with
// Done set in the checkpoint), and Error renders the partial-result
// summary the cmd/ tools print on SIGINT.
type Canceled struct {
	Name  string
	Done  int
	Total int
	// Checkpoint echoes Options.Checkpoint so the summary can name the
	// resume file ("" when checkpointing was off).
	Checkpoint string
}

// Error renders the partial-result summary.
func (c *Canceled) Error() string {
	msg := fmt.Sprintf("runner: %s interrupted after %d/%d trials", c.Name, c.Done, c.Total)
	if c.Checkpoint != "" {
		return msg + "; rerun with -checkpoint " + c.Checkpoint + " to resume"
	}
	return msg + "; rerun with -checkpoint to make interrupted sweeps resumable"
}

// Unwrap ties Canceled into the context error chain, so
// errors.Is(err, context.Canceled) holds.
func (c *Canceled) Unwrap() error { return context.Canceled }

// SignalContext returns a context canceled on SIGINT (and the stop
// function releasing the signal handler) — the cancellation source every
// cmd/ tool passes to its sweeps.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt)
}

// restoreCheckpoint decodes the bound section's finished shards into
// results (marking finished) and returns how many it restored. An entry
// that fails to decode, or whose index is out of range, invalidates only
// itself: it is dropped from the section and recomputed. The map
// iteration fills results by index, so its order is immaterial.
func restoreCheckpoint[T any](cp *checkpoint, results []T, finished []bool) int {
	restored := 0
	for key, raw := range cp.sec.Done {
		idx, err := strconv.Atoi(key)
		if err != nil || idx < 0 || idx >= len(results) {
			delete(cp.sec.Done, key)
			continue
		}
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			delete(cp.sec.Done, key)
			continue
		}
		results[idx] = v
		if !finished[idx] {
			finished[idx] = true
			restored++
		}
	}
	return restored
}

// outcome carries one finished shard from a worker to the reducer,
// together with the wall-clock span marks (dispatch, shard-function start
// and end) the reducer turns into trace spans. The marks are operational
// data only — they never touch a result.
type outcome[T any] struct {
	index int
	value T
	err   error
	enq   time.Time
	start time.Time
	end   time.Time
}

// dispatch hands one shard index to a worker, stamped with its enqueue
// time so the trial's queue span covers dispatcher → worker pickup.
type dispatch struct {
	index int
	enq   time.Time
}

// Map evaluates fn over n shards on a bounded worker pool and returns the
// results in shard order. It is the single fan-out primitive of the
// experiment pipeline; see the package comment for the determinism
// contract.
//
// fn must derive all randomness from its Shard (Seed or RNG) and must not
// share mutable state with other shards. When checkpointing is enabled,
// T must round-trip through encoding/json.
//
// On a shard error, Map cancels the remaining work and returns the error
// of the lowest-indexed failing shard (deterministic under races). On
// context cancellation it returns *Canceled after persisting the finished
// shards to the checkpoint.
func Map[T any](ctx context.Context, cfg Config, n int, fn func(context.Context, Shard) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: %s: negative shard count %d", cfg.Name, n)
	}
	results := make([]T, n)
	finished := make([]bool, n)

	var cp *checkpoint
	restored := 0
	if cfg.Checkpoint != "" {
		var err error
		cp, err = openCheckpoint(cfg.Checkpoint, cfg.Name, cfg.RootSeed, n)
		if err != nil {
			return nil, err
		}
		restored = restoreCheckpoint(cp, results, finished)
	}

	// Memo lookup pass: any shard whose key is already in the trial
	// cache is restored without computing. Hits deliberately do not feed
	// the checkpoint — the checkpoint records what *this run* computed,
	// and a resume consults the cache again anyway.
	var memoKeys []memo.Key
	if cfg.Memo != nil {
		if cfg.Fingerprint == nil {
			cfg.Memo.Skipped()
		} else {
			memoKeys = make([]memo.Key, n)
			for i := 0; i < n; i++ {
				memoKeys[i] = memo.TrialKey(cfg.Fingerprint, i, Seed(cfg.RootSeed, i))
			}
			for i := 0; i < n; i++ {
				if finished[i] {
					continue
				}
				raw, ok := cfg.Memo.Get(memoKeys[i])
				if !ok {
					continue
				}
				var v T
				if err := json.Unmarshal(raw, &v); err != nil {
					// The entry verified at the cache layer but does not
					// decode as this sweep's trial type: schema drift.
					// Drop it and recompute; the store below repairs it.
					cfg.Memo.Discard(memoKeys[i])
					continue
				}
				results[i] = v
				finished[i] = true
				restored++
			}
		}
	}

	reg := cfg.Registry
	if reg == nil {
		reg = metrics.Default
	}
	reg.Gauge("runner." + cfg.Name + ".trials_total").Set(float64(n))
	completedC := reg.Counter("runner." + cfg.Name + ".trials_completed")
	completedC.Store(uint64(restored))
	progressG := reg.Gauge("runner." + cfg.Name + ".progress")
	etaG := reg.Gauge("runner." + cfg.Name + ".eta_seconds")
	if n > 0 {
		progressG.Set(float64(restored) / float64(n))
	}

	pending := n - restored
	if pending == 0 {
		progressG.Set(1)
		etaG.Set(0)
		return results, nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The sweep's wall-clock epoch anchors the ETA estimate and every
	// span timestamp.
	start := time.Now()
	spans := newSweepSpans(cfg.Name, cfg.RootSeed, start)
	poolSize := cfg.workers(pending)

	indices := make(chan dispatch)
	go func() { // dispatcher
		defer close(indices)
		for i := 0; i < n; i++ {
			if finished[i] {
				continue
			}
			select {
			case indices <- dispatch{index: i, enq: time.Now()}:
			case <-runCtx.Done():
				return
			}
		}
	}()

	outs := make(chan outcome[T])
	var wg sync.WaitGroup
	for w := 0; w < poolSize; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range indices {
				fnStart := time.Now()
				v, err := fn(runCtx, Shard{Index: d.index, Seed: Seed(cfg.RootSeed, d.index)})
				outs <- outcome[T]{
					index: d.index, value: v, err: err,
					enq: d.enq, start: fnStart, end: time.Now(),
				}
			}
		}()
	}
	go func() { wg.Wait(); close(outs) }()

	// Index-ordered state lives only on this, the reducing goroutine.
	doneNew := 0
	var firstErr error
	firstErrIdx := n
	flushEvery := n/20 + 1
	for o := range outs {
		if o.err != nil {
			// Keep the lowest-indexed error so the reported failure does
			// not depend on scheduling.
			if o.index < firstErrIdx {
				firstErr, firstErrIdx = o.err, o.index
			}
			cancel()
			continue
		}
		redStart := time.Now()
		results[o.index] = o.value
		finished[o.index] = true
		if memoKeys != nil {
			if raw, merr := json.Marshal(o.value); merr == nil {
				// A failed store is surfaced through memo.store_errors,
				// never allowed to fail the sweep: the cache is an
				// optimisation, e.g. the memo dir may be read-only.
				_ = cfg.Memo.Put(memoKeys[o.index], raw)
			}
		}
		doneNew++
		completedC.Inc()
		progressG.Set(float64(restored+doneNew) / float64(n))
		if elapsed := time.Since(start); elapsed > 0 {
			perTrial := elapsed / time.Duration(doneNew)
			etaG.Set((time.Duration(pending-doneNew) * perTrial).Seconds())
		}
		if cp != nil {
			if err := cp.record(o.index, o.value); err != nil && firstErr == nil {
				firstErr, firstErrIdx = err, o.index
				cancel()
			}
			if doneNew%flushEvery == 0 {
				if err := cp.flush(); err != nil && firstErr == nil {
					firstErr, firstErrIdx = err, o.index
					cancel()
				}
			}
		}
		spans.trial(o.index, o.enq, o.start, o.end, redStart)
	}
	if cp != nil {
		if err := cp.flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	spans.finish(poolSize, n, restored)

	if firstErr != nil {
		if firstErrIdx < n {
			return nil, fmt.Errorf("runner: %s shard %d: %w", cfg.Name, firstErrIdx, firstErr)
		}
		return nil, fmt.Errorf("runner: %s: %w", cfg.Name, firstErr)
	}
	if ctx.Err() != nil {
		return results, &Canceled{
			Name:       cfg.Name,
			Done:       restored + doneNew,
			Total:      n,
			Checkpoint: cfg.Checkpoint,
		}
	}
	etaG.Set(0)
	return results, nil
}

package runner

import (
	"context"
	"regexp"
	"testing"
	"time"

	"l15cache/internal/metrics"
	"l15cache/internal/telemetry"
)

func TestSpanIDDeterministic(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for _, root := range []int64{0, 1, 42, -7} {
		for i := 0; i < 4; i++ {
			id := SpanID(root, i)
			if !hex16.MatchString(id) {
				t.Fatalf("SpanID(%d, %d) = %q, not 16 hex digits", root, i, id)
			}
			if id != SpanID(root, i) {
				t.Fatalf("SpanID(%d, %d) not stable", root, i)
			}
			if seen[id] {
				t.Fatalf("SpanID collision at (%d, %d)", root, i)
			}
			seen[id] = true
		}
	}
}

// TestSweepSpanEmission runs a real sweep and checks the span hierarchy
// in the process tracer: three spans per computed trial plus one sweep
// span, all carrying the deterministic span ID, plus the latency gauges
// in the operational registry.
func TestSweepSpanEmission(t *testing.T) {
	const name = "t/spans-emission" // unique component filter
	const trials = 7
	_, err := Map(context.Background(),
		Config{Name: name, RootSeed: 5, Options: Options{Workers: 3}},
		trials, square)
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]int{}
	spanIDs := map[string]bool{}
	for _, e := range metrics.Trace.Events() {
		if e.Component != "runner/"+name {
			continue
		}
		byName[e.Name]++
		if e.Dur == 0 {
			t.Errorf("span %s has zero duration", e.Name)
		}
		if id, ok := e.Args["span"].(string); ok {
			spanIDs[id] = true
		}
	}
	for _, want := range []string{"trial.queue", "trial.run", "trial.reduce"} {
		if byName[want] != trials {
			t.Errorf("%s spans = %d, want %d", want, byName[want], trials)
		}
	}
	if byName["sweep"] != 1 {
		t.Errorf("sweep spans = %d, want 1", byName["sweep"])
	}
	for i := 0; i < trials; i++ {
		if !spanIDs[SpanID(5, i)] {
			t.Errorf("trial %d's deterministic span ID missing from trace args", i)
		}
	}

	rt := telemetry.Runtime.Snapshot()
	for _, g := range []string{
		"runner." + name + ".trial_run_p50_seconds",
		"runner." + name + ".trial_run_p95_seconds",
		"runner." + name + ".trial_run_p99_seconds",
		"runner." + name + ".worker_occupancy",
	} {
		if _, ok := rt.Gauges[g]; !ok {
			t.Errorf("operational gauge %s not published", g)
		}
	}
	if occ := rt.Gauges["runner."+name+".worker_occupancy"]; occ < 0 || occ > 1 {
		t.Errorf("worker occupancy = %v, want within [0, 1]", occ)
	}
	if h, ok := rt.Histograms["runner.trial_run_seconds"]; !ok || h.Count < trials {
		t.Errorf("runner.trial_run_seconds histogram = %+v", h)
	}
}

func TestExactPercentile(t *testing.T) {
	durs := []time.Duration{
		1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second,
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, 2}, {0.95, 4}, {0.99, 4}, {0.25, 1}, {1.0, 4},
	} {
		if got := exactPercentile(durs, tc.q); got != tc.want {
			t.Errorf("exactPercentile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := exactPercentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

// TestTelemetryDoesNotPerturbSweep is the acceptance criterion in code:
// the deterministic registry snapshot of a sweep is byte-identical with
// a live telemetry sampler running and without one.
func TestTelemetryDoesNotPerturbSweep(t *testing.T) {
	run := func(name string, withSampler bool) ([]byte, []float64) {
		reg := metrics.NewRegistry()
		var sam *telemetry.Sampler
		if withSampler {
			sam = telemetry.NewSampler(nil, time.Millisecond, 64)
			sam.Start()
			defer sam.Stop()
		}
		res, err := Map(context.Background(),
			Config{Name: name, RootSeed: 99, Registry: reg, Options: Options{Workers: 4}},
			50,
			func(_ context.Context, s Shard) (float64, error) {
				return s.RNG().NormFloat64(), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		data, err := reg.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data, res
	}

	// Same sweep name both times so the snapshots' instrument names match.
	const name = "t/telemetry-identity"
	offSnap, offRes := run(name, false)
	onSnap, onRes := run(name, true)
	if string(offSnap) != string(onSnap) {
		t.Errorf("metrics snapshot differs with telemetry on:\noff: %s\non:  %s", offSnap, onSnap)
	}
	for i := range offRes {
		if offRes[i] != onRes[i] {
			t.Fatalf("result %d differs with telemetry on: %v vs %v", i, offRes[i], onRes[i])
		}
	}
}

// Sweep/trial span instrumentation: every Map call emits a hierarchy of
// duration events into the Chrome-trace tracer — per computed trial a
// queue span (dispatch → worker pickup), a run span (the shard function)
// and a reduce span (checkpoint/memo/progress accounting), plus one sweep
// span covering the whole fan-out — and publishes wall-clock latency
// summaries (exact p50/p95/p99, worker occupancy) into the operational
// telemetry registry at sweep end.
//
// Span identity is deterministic: SpanID is a pure function of
// (RootSeed, index), the same derivation the shard seeds use, so the same
// trial carries the same ID across runs, worker counts and kernels. The
// spans' timestamps are wall-clock microseconds since sweep start and are
// therefore operational data only: they flow to the -trace artifact and
// telemetry.Runtime, never into a deterministic metrics snapshot. The
// *number* of span events per sweep is itself deterministic (three per
// computed trial plus one sweep span), so the `trace.events` counter in
// archived snapshots stays byte-identical with telemetry on or off.

package runner

import (
	"fmt"
	"sort"
	"time"

	"l15cache/internal/metrics"
	"l15cache/internal/telemetry"
)

// SpanID derives the deterministic span identifier of shard index under
// root: the fixed-width hex rendering of the shard's Seed. Trial spans in
// the trace, flight annotations and operator tooling can therefore be
// joined on it across runs.
func SpanID(root int64, index int) string {
	return fmt.Sprintf("%016x", uint64(Seed(root, index)))
}

// trialRunBounds are the bucket upper bounds (seconds) of the operational
// trial-latency histogram.
var trialRunBounds = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30,
}

// sweepSpans accumulates one Map call's span emission and latency
// summary. It lives on the reducing goroutine only, so plain fields
// suffice.
type sweepSpans struct {
	name    string
	root    int64
	epoch   time.Time
	tracer  *metrics.Tracer
	runDurs []time.Duration
	sumRun  time.Duration
}

// newSweepSpans starts the span hierarchy of one sweep; epoch anchors all
// span timestamps (µs offsets).
func newSweepSpans(name string, root int64, epoch time.Time) *sweepSpans {
	return &sweepSpans{name: name, root: root, epoch: epoch, tracer: metrics.Trace}
}

// us converts an absolute time to the sweep's µs timeline.
func (s *sweepSpans) us(t time.Time) uint64 {
	d := t.Sub(s.epoch)
	if d < 0 {
		return 0
	}
	return uint64(d.Microseconds())
}

// trial emits the queue/run/reduce spans of one computed trial and
// records its run latency. enq is the dispatch time, start/end bound the
// shard function, redStart bounds the reducer's bookkeeping (its end is
// now).
func (s *sweepSpans) trial(index int, enq, start, end, redStart time.Time) {
	comp := "runner/" + s.name
	args := map[string]any{"span": SpanID(s.root, index), "trial": index}
	s.tracer.EmitSpan(s.us(enq), s.us(start)-s.us(enq), comp, "trial.queue", args)
	s.tracer.EmitSpan(s.us(start), s.us(end)-s.us(start), comp, "trial.run", args)
	s.tracer.EmitSpan(s.us(redStart), s.us(time.Now())-s.us(redStart), comp, "trial.reduce", args)

	run := end.Sub(start)
	s.runDurs = append(s.runDurs, run)
	s.sumRun += run
	telemetry.Runtime.Histogram("runner.trial_run_seconds", trialRunBounds).Observe(run.Seconds())
}

// finish emits the sweep span and publishes the latency summary — exact
// p50/p95/p99 over the computed trials' run durations and the worker
// occupancy (Σ run time over workers × wall time) — into
// telemetry.Runtime. Restored (checkpoint/memo) trials never ran, so they
// are excluded from the distribution by construction.
func (s *sweepSpans) finish(workers, total, restored int) {
	now := time.Now()
	s.tracer.EmitSpan(0, s.us(now), "runner/"+s.name, "sweep", map[string]any{
		"trials":   total,
		"computed": len(s.runDurs),
		"restored": restored,
		"workers":  workers,
	})

	if len(s.runDurs) == 0 {
		return
	}
	sort.Slice(s.runDurs, func(i, j int) bool { return s.runDurs[i] < s.runDurs[j] })
	prefix := "runner." + s.name + "."
	telemetry.Runtime.Gauge(prefix + "trial_run_p50_seconds").Set(exactPercentile(s.runDurs, 0.50))
	telemetry.Runtime.Gauge(prefix + "trial_run_p95_seconds").Set(exactPercentile(s.runDurs, 0.95))
	telemetry.Runtime.Gauge(prefix + "trial_run_p99_seconds").Set(exactPercentile(s.runDurs, 0.99))
	if wall := now.Sub(s.epoch); wall > 0 && workers > 0 {
		occ := s.sumRun.Seconds() / (float64(workers) * wall.Seconds())
		telemetry.Runtime.Gauge(prefix + "worker_occupancy").Set(occ)
	}
}

// exactPercentile returns the q-th percentile of sorted durations in
// seconds, nearest-rank convention (ceil(q·n), 1-based).
func exactPercentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1].Seconds()
}

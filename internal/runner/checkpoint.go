package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
)

// The checkpoint file holds one section per Map invocation (keyed by
// Config.Name), so a multi-point sweep sharing one -checkpoint path
// resumes whole finished points instantly and the interrupted point at
// trial granularity. Sections are invalidated — not reused — when the
// root seed or trial count changed, so a resume can never mix results
// from two different sweeps.

// checkpointFile is the on-disk JSON shape.
type checkpointFile struct {
	Sections map[string]*checkpointSection `json:"sections"`
}

// checkpointSection records the finished shards of one named Map call.
type checkpointSection struct {
	RootSeed int64 `json:"root_seed"`
	Trials   int   `json:"trials"`
	// Done maps decimal shard index to the shard's JSON-encoded result.
	Done map[string]json.RawMessage `json:"done"`
}

// checkpoint is the live handle Map drives: the whole file plus the
// section this invocation owns.
type checkpoint struct {
	path string
	file *checkpointFile
	sec  *checkpointSection
}

// openCheckpoint loads path (a missing file is an empty one) and binds the
// named section, resetting it when its identity does not match.
func openCheckpoint(path, name string, rootSeed int64, trials int) (*checkpoint, error) {
	file := &checkpointFile{Sections: map[string]*checkpointSection{}}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// First run: start empty.
	case err != nil:
		return nil, fmt.Errorf("runner: reading checkpoint %s: %w", path, err)
	default:
		if err := json.Unmarshal(data, file); err != nil {
			return nil, fmt.Errorf("runner: checkpoint %s is not a runner checkpoint (delete it to start over): %w", path, err)
		}
		if file.Sections == nil {
			file.Sections = map[string]*checkpointSection{}
		}
	}
	sec := file.Sections[name]
	if sec == nil || sec.RootSeed != rootSeed || sec.Trials != trials || sec.Done == nil {
		sec = &checkpointSection{
			RootSeed: rootSeed,
			Trials:   trials,
			Done:     map[string]json.RawMessage{},
		}
		file.Sections[name] = sec
	}
	return &checkpoint{path: path, file: file, sec: sec}, nil
}

// record stores one finished shard in the bound section (in memory; flush
// persists it).
func (c *checkpoint) record(index int, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("runner: checkpointing shard %d: %w", index, err)
	}
	c.sec.Done[strconv.Itoa(index)] = raw
	return nil
}

// flush atomically rewrites the checkpoint file (temp file + rename), so
// a crash mid-write can never corrupt an existing checkpoint.
func (c *checkpoint) flush() error {
	data, err := json.Marshal(c.file)
	if err != nil {
		return fmt.Errorf("runner: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, ".runner-checkpoint-*")
	if err != nil {
		return fmt.Errorf("runner: writing checkpoint: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		if err := os.Remove(tmp.Name()); err != nil {
			return fmt.Errorf("runner: cleaning up checkpoint temp file: %w", err)
		}
		if werr != nil {
			return fmt.Errorf("runner: writing checkpoint: %w", werr)
		}
		return fmt.Errorf("runner: writing checkpoint: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		return fmt.Errorf("runner: writing checkpoint: %w", err)
	}
	return nil
}

package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"syscall"
	"testing"

	"l15cache/internal/memo"
	"l15cache/internal/metrics"
)

// square is the trivial deterministic shard function most tests use.
func square(_ context.Context, s Shard) (int, error) { return s.Index * s.Index, nil }

func TestMapOrderedResults(t *testing.T) {
	got, err := Map(context.Background(), Config{Name: "t/order", Options: Options{Workers: 4}}, 50, square)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestWorkerCountInvariance is the core determinism guarantee: the same
// sweep at 1 worker and at 8 workers must produce bit-identical output,
// including the floating-point draws each shard makes from its RNG.
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []float64 {
		res, err := Map(context.Background(),
			Config{Name: fmt.Sprintf("t/invariance/w%d", workers), RootSeed: 42, Options: Options{Workers: workers}},
			200,
			func(_ context.Context, s Shard) (float64, error) {
				r := s.RNG()
				sum := 0.0
				for i := 0; i < 100; i++ {
					sum += r.NormFloat64()
				}
				return sum, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("shard %d: workers=1 gives %v, workers=8 gives %v", i, serial[i], parallel[i])
		}
	}
}

func TestSeedDependsOnIndexOnly(t *testing.T) {
	if Seed(1, 0) == Seed(1, 1) {
		t.Error("adjacent shards share a seed")
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Error("different roots share a seed")
	}
	if Seed(7, 13) != Seed(7, 13) {
		t.Error("seed derivation is not a pure function")
	}
}

// TestGoroutineBound is the regression test for the unbounded fan-out the
// runner replaced (one goroutine per trial in the old casestudy/makespan
// loops): with W workers, the peak goroutine count may exceed the
// baseline only by W plus the runner's fixed overhead (dispatcher +
// pool closer), regardless of trial count.
func TestGoroutineBound(t *testing.T) {
	const workers = 4
	const trials = 500
	baseline := runtime.NumGoroutine()
	var peak atomic.Int64
	_, err := Map(context.Background(), Config{Name: "t/bound", Options: Options{Workers: workers}}, trials,
		func(_ context.Context, s Shard) (int, error) {
			g := int64(runtime.NumGoroutine())
			for {
				old := peak.Load()
				if g <= old || peak.CompareAndSwap(old, g) {
					break
				}
			}
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed overhead: dispatcher + wait-closer, plus slack for test
	// runner internals.
	limit := int64(baseline + workers + 4)
	if p := peak.Load(); p > limit {
		t.Errorf("peak goroutines %d exceeds workers+O(1) bound %d (baseline %d, %d trials)",
			p, limit, baseline, trials)
	}
}

func TestMapErrorIsLowestIndex(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), Config{Name: "t/err", Options: Options{Workers: 8}}, 100,
		func(_ context.Context, s Shard) (int, error) {
			if s.Index%10 == 3 { // fails at 3, 13, 23, ...
				return 0, fmt.Errorf("shard %d: %w", s.Index, boom)
			}
			return 1, nil
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// The dispatcher stops on the first failure, but whichever subset of
	// failures raced through, the reported shard must be the lowest
	// failing index among them — and shard 3 always runs first on any
	// worker count because indices are dispatched in order.
	want := "runner: t/err shard 3:"
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Errorf("err = %q, want prefix %q", got, want)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(ctx, Config{Name: "t/cancel", Options: Options{Workers: 2}}, 1000,
		func(_ context.Context, s Shard) (int, error) {
			if ran.Add(1) == 10 {
				cancel()
			}
			return 0, nil
		})
	var c *Canceled
	if !errors.As(err, &c) {
		t.Fatalf("err = %v, want *Canceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("Canceled does not unwrap to context.Canceled")
	}
	if c.Done >= c.Total || c.Total != 1000 {
		t.Errorf("partial summary %d/%d nonsensical", c.Done, c.Total)
	}
	if int64(c.Done) > ran.Load() {
		t.Errorf("summary claims %d done, only %d ran", c.Done, ran.Load())
	}
}

// TestCheckpointResume kills a sweep partway, then resumes it from the
// checkpoint and verifies (a) only the missing shards are recomputed and
// (b) the final results equal an uninterrupted run's.
func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.checkpoint.json")
	cfg := Config{Name: "t/resume", RootSeed: 9, Options: Options{Workers: 1, Checkpoint: path}}
	draw := func(_ context.Context, s Shard) (float64, error) {
		return s.RNG().Float64(), nil
	}

	// Interrupted first attempt: cancel after 25 of 60 trials.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(ctx, cfg, 60, func(c context.Context, s Shard) (float64, error) {
		if ran.Add(1) == 25 {
			cancel()
		}
		return draw(c, s)
	})
	var canceled *Canceled
	if !errors.As(err, &canceled) {
		t.Fatalf("first attempt: err = %v, want *Canceled", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Resume: the shard function counts its invocations.
	var resumed atomic.Int64
	got, err := Map(context.Background(), cfg, 60, func(c context.Context, s Shard) (float64, error) {
		resumed.Add(1)
		return draw(c, s)
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if re := int(resumed.Load()); re != 60-canceled.Done {
		t.Errorf("resume recomputed %d shards, want %d (checkpoint had %d)", re, 60-canceled.Done, canceled.Done)
	}

	// Reference: clean run without checkpointing.
	ref, err := Map(context.Background(), Config{Name: "t/resume-ref", RootSeed: 9, Options: Options{Workers: 3}}, 60, draw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("shard %d: resumed %v != clean %v", i, got[i], ref[i])
		}
	}

	// A third run is fully cached: zero recomputation.
	var again atomic.Int64
	if _, err := Map(context.Background(), cfg, 60, func(c context.Context, s Shard) (float64, error) {
		again.Add(1)
		return draw(c, s)
	}); err != nil {
		t.Fatal(err)
	}
	if again.Load() != 0 {
		t.Errorf("completed checkpoint recomputed %d shards", again.Load())
	}
}

// TestCheckpointIdentityMismatch: a stale section (different seed or
// trial count) must be discarded, never partially reused.
func TestCheckpointIdentityMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cfg := Config{Name: "t/identity", RootSeed: 1, Options: Options{Workers: 1, Checkpoint: path}}
	if _, err := Map(context.Background(), cfg, 10, square); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	cfg.RootSeed = 2
	if _, err := Map(context.Background(), cfg, 10, func(_ context.Context, s Shard) (int, error) {
		ran.Add(1)
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("stale section reused: only %d/10 shards recomputed", ran.Load())
	}
}

// TestCheckpointSectionsCoexist: two named sweeps share one file without
// clobbering each other (the multi-point-sweep layout).
func TestCheckpointSectionsCoexist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	a := Config{Name: "t/sec-a", RootSeed: 1, Options: Options{Workers: 1, Checkpoint: path}}
	b := Config{Name: "t/sec-b", RootSeed: 1, Options: Options{Workers: 1, Checkpoint: path}}
	if _, err := Map(context.Background(), a, 5, square); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(context.Background(), b, 5, square); err != nil {
		t.Fatal(err)
	}
	var reranA atomic.Int64
	if _, err := Map(context.Background(), a, 5, func(_ context.Context, s Shard) (int, error) {
		reranA.Add(1)
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if reranA.Load() != 0 {
		t.Errorf("writing section b invalidated section a (%d shards reran)", reranA.Load())
	}
}

func TestProgressMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	if _, err := Map(context.Background(), Config{Name: "t/progress", Options: Options{Workers: 2}, Registry: reg}, 30, square); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runner.t/progress.trials_completed"]; got != 30 {
		t.Errorf("trials_completed = %d, want 30", got)
	}
	if got := snap.Gauges["runner.t/progress.trials_total"]; got != 30 {
		t.Errorf("trials_total = %g, want 30", got)
	}
	if got := snap.Gauges["runner.t/progress.progress"]; got != 1 {
		t.Errorf("progress = %g, want 1", got)
	}
	if got := snap.Gauges["runner.t/progress.eta_seconds"]; got != 0 {
		t.Errorf("eta after completion = %g, want 0", got)
	}
}

// TestSignalContext delivers a real SIGINT to the process and verifies
// the context cancels — the wiring every cmd/ tool relies on.
func TestSignalContext(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("sending SIGINT: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-make(chan struct{}): // unreachable; Done must already be closed or close soon
	}
	if ctx.Err() == nil {
		t.Error("context not canceled after SIGINT")
	}
}

func TestZeroShards(t *testing.T) {
	got, err := Map(context.Background(), Config{Name: "t/zero"}, 0, square)
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
	if _, err := Map(context.Background(), Config{Name: "t/neg"}, -1, square); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestMemoRoundTrip runs the same sweep twice against one shared cache:
// the second run must invoke the shard function zero times and still
// produce identical results, at any worker count.
func TestMemoRoundTrip(t *testing.T) {
	cache, err := memo.New(memo.Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	fp := memo.NewEncoder("runner-test").Fingerprint()
	draw := func(_ context.Context, s Shard) (float64, error) {
		return s.RNG().Float64(), nil
	}
	cfg := Config{Name: "t/memo-cold", RootSeed: 11,
		Options: Options{Workers: 4, Memo: cache}, Fingerprint: fp}
	cold, err := Map(context.Background(), cfg, 40, draw)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		var ran atomic.Int64
		warm, err := Map(context.Background(),
			Config{Name: fmt.Sprintf("t/memo-warm-w%d", workers), RootSeed: 11,
				Options: Options{Workers: workers, Memo: cache}, Fingerprint: fp},
			40,
			func(c context.Context, s Shard) (float64, error) {
				ran.Add(1)
				return draw(c, s)
			})
		if err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: warm run recomputed %d shards", workers, ran.Load())
		}
		for i := range cold {
			if warm[i] != cold[i] {
				t.Fatalf("workers=%d shard %d: warm %v != cold %v", workers, i, warm[i], cold[i])
			}
		}
	}
}

// TestMemoOnVsOffByteIdentity is the runner-level half of the memo
// soundness gate: memo-off, memo-cold and memo-warm runs of one sweep
// must JSON-encode to identical bytes at several worker counts.
func TestMemoOnVsOffByteIdentity(t *testing.T) {
	fp := memo.NewEncoder("runner-identity").Fingerprint()
	draw := func(_ context.Context, s Shard) (float64, error) {
		r := s.RNG()
		sum := 0.0
		for i := 0; i < 50; i++ {
			sum += r.NormFloat64()
		}
		return sum, nil
	}
	encode := func(name string, workers int, cache *memo.Cache) []byte {
		res, err := Map(context.Background(),
			Config{Name: name, RootSeed: 3,
				Options: Options{Workers: workers, Memo: cache}, Fingerprint: fp},
			30, draw)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	off := encode("t/ident-off", 1, nil)
	cache, err := memo.New(memo.Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 7} {
		cold := encode(fmt.Sprintf("t/ident-cold-w%d", workers), workers, cache)
		if string(cold) != string(off) {
			t.Errorf("workers=%d: memo-on run differs from memo-off baseline", workers)
		}
	}
}

// TestMemoDiskReuse checks the cross-process path the CI memo-smoke job
// exercises: a second run with a fresh Cache over the same -memo-dir
// recomputes nothing and counts disk hits.
func TestMemoDiskReuse(t *testing.T) {
	dir := t.TempDir()
	fp := memo.NewEncoder("runner-disk").Fingerprint()
	run := func(name string, fn func(context.Context, Shard) (int, error)) *metrics.Registry {
		reg := metrics.NewRegistry()
		cache, err := memo.New(memo.Options{Dir: dir, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Map(context.Background(),
			Config{Name: name, RootSeed: 5, Options: Options{Workers: 2, Memo: cache},
				Fingerprint: fp, Registry: reg},
			20, fn); err != nil {
			t.Fatal(err)
		}
		return reg
	}
	run("t/disk-cold", square)
	var ran atomic.Int64
	reg := run("t/disk-warm", func(_ context.Context, s Shard) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if ran.Load() != 0 {
		t.Errorf("warm run recomputed %d shards despite memo dir", ran.Load())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["memo.hits_disk"]; got != 20 {
		t.Errorf("hits_disk = %d, want 20", got)
	}
}

// TestMemoCorruptValueRecomputed: a stored value the runner cannot decode
// into T must be discarded and recomputed, not crash the sweep.
func TestMemoCorruptValueRecomputed(t *testing.T) {
	reg := metrics.NewRegistry()
	cache, err := memo.New(memo.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	fp := memo.NewEncoder("runner-corrupt").Fingerprint()
	// Poison shard 2's key with JSON that does not decode as int.
	if err := cache.Put(memo.TrialKey(fp, 2, Seed(1, 2)), []byte(`"not an int"`)); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	got, err := Map(context.Background(),
		Config{Name: "t/memo-corrupt", RootSeed: 1,
			Options: Options{Workers: 1, Memo: cache}, Fingerprint: fp},
		5,
		func(c context.Context, s Shard) (int, error) {
			ran.Add(1)
			return square(c, s)
		})
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 4 {
		t.Errorf("poisoned shard result = %d, want 4", got[2])
	}
	if ran.Load() != 5 {
		t.Errorf("ran %d shards, want all 5 (cold cache + poisoned entry)", ran.Load())
	}
	if got := reg.Snapshot().Counters["memo.corrupt"]; got != 1 {
		t.Errorf("corrupt = %d, want 1", got)
	}
}

// TestMemoNilFingerprintSkips: Options.Memo without a fingerprint must
// disable memoization and count the declined opportunity.
func TestMemoNilFingerprintSkips(t *testing.T) {
	reg := metrics.NewRegistry()
	cache, err := memo.New(memo.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Name: "t/memo-skip", Options: Options{Workers: 1, Memo: cache}}
	for i := 0; i < 2; i++ {
		var ran atomic.Int64
		if _, err := Map(context.Background(), cfg, 5, func(c context.Context, s Shard) (int, error) {
			ran.Add(1)
			return square(c, s)
		}); err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 5 {
			t.Errorf("run %d: ran %d shards, want 5 (memo must be inert)", i, ran.Load())
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["memo.skipped"]; got != 2 {
		t.Errorf("skipped = %d, want 2", got)
	}
	if cache.Len() != 0 {
		t.Errorf("cache populated (%d entries) without a fingerprint", cache.Len())
	}
}

package isa

import "testing"

// FuzzDecode checks that no 32-bit word panics the decoder and that every
// successfully decoded instruction re-encodes to a word that decodes to the
// same instruction (encode∘decode is idempotent on the valid subset).
func FuzzDecode(f *testing.F) {
	seeds := []uint32{
		0x00000013, // nop (addi x0,x0,0)
		0x00100073, // ebreak
		0x0000000b, // demand x0
		0xfff00093, // addi x1,x0,-1
		0x00208663, // beq
		0xdeadbeef,
		0xffffffff,
		0,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		inst, err := Decode(w)
		if err != nil {
			return // invalid encodings are fine; panics are not
		}
		w2, err := Encode(inst)
		if err != nil {
			t.Fatalf("decoded %#08x to %v but cannot re-encode: %v", w, inst, err)
		}
		inst2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded %v to %#08x which does not decode: %v", inst, w2, err)
		}
		if inst2 != inst {
			t.Fatalf("decode(%#08x)=%v but decode(encode)=%v", w, inst, inst2)
		}
	})
}

// FuzzAssemble checks the assembler never panics on arbitrary source and
// that whatever it accepts disassembles cleanly.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"nop",
		"addi a0, a0, 1\nbeqz a0, 0",
		"loop: j loop",
		"li t0, 0x12345678",
		"demand a0\nsupply a1",
		"lw x1, 4(x2)",
		": broken",
		"addi",
		".word 0xffffffff",
		"label: label2: nop",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		words, err := Assemble(src, 0x1000)
		if err != nil {
			return
		}
		for _, w := range words {
			// .word directives may embed arbitrary data; only real
			// instructions need to decode, so tolerate errors but
			// never panics (the fuzz harness catches those).
			inst, err := Decode(w)
			if err == nil {
				_ = inst.String()
			}
		}
	})
}

package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly source into machine words. It supports the
// instructions of this package, labels ("name:"), "#" and "//" comments,
// decimal/hex immediates, ABI register names, and the pseudo-instructions
// nop, mv, li, j, jr, ret, beqz, bnez, and call (alias of jal ra).
//
// The base address locates the first instruction for label-relative
// offsets.
func Assemble(src string, base uint32) ([]uint32, error) {
	lines := strings.Split(src, "\n")

	type item struct {
		lineNo int
		text   string
	}
	var items []item
	labels := make(map[string]uint32)
	pc := base

	// First pass: strip comments, collect labels, expand pseudo sizes.
	for no, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for strings.Contains(line, ":") {
			i := strings.Index(line, ":")
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fmt.Errorf("isa: line %d: bad label %q", no+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", no+1, label)
			}
			labels[label] = pc
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		items = append(items, item{lineNo: no + 1, text: line})
		pc += 4 * uint32(instWords(line))
	}

	// Second pass: encode.
	var out []uint32
	pc = base
	for _, it := range items {
		words, err := assembleLine(it.text, pc, labels)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", it.lineNo, err)
		}
		out = append(out, words...)
		pc += 4 * uint32(len(words))
	}
	return out, nil
}

// instWords returns how many machine words a source line expands to (li
// with a large constant needs lui+addi).
func instWords(line string) int {
	op, args := splitOp(line)
	if op == "li" && len(args) == 2 {
		if v, err := parseImm(args[1]); err == nil && !fitsI12(v) {
			return 2
		}
	}
	return 1
}

func splitOp(line string) (string, []string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	op := strings.ToLower(fields[0])
	rest := strings.Join(fields[1:], " ")
	if rest == "" {
		return op, nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return op, parts
}

func fitsI12(v int64) bool { return v >= -2048 && v <= 2047 }

var abiRegs = map[string]int{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7,
	"s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
	"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
	"s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if n, ok := abiRegs[s]; ok {
		return n, nil
	}
	if strings.HasPrefix(s, "x") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n <= 31 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	return strconv.ParseInt(s, 0, 64)
}

// parseMem parses "imm(reg)" operands.
func parseMem(s string) (int32, int, error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close <= open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	imm := int64(0)
	if immStr != "" {
		var err error
		imm, err = parseImm(immStr)
		if err != nil {
			return 0, 0, err
		}
	}
	reg, err := parseReg(s[open+1 : close])
	if err != nil {
		return 0, 0, err
	}
	return int32(imm), reg, nil
}

// target resolves a branch/jump operand: a label or a numeric offset.
func target(s string, pc uint32, labels map[string]uint32) (int32, error) {
	if addr, ok := labels[s]; ok {
		return int32(addr) - int32(pc), nil
	}
	v, err := parseImm(s)
	if err != nil {
		return 0, fmt.Errorf("unknown label or offset %q", s)
	}
	return int32(v), nil
}

var rTypeOps = map[string]Op{
	"add": OpADD, "sub": OpSUB, "sll": OpSLL, "slt": OpSLT, "sltu": OpSLTU,
	"xor": OpXOR, "srl": OpSRL, "sra": OpSRA, "or": OpOR, "and": OpAND,
}

var iTypeOps = map[string]Op{
	"addi": OpADDI, "slti": OpSLTI, "sltiu": OpSLTIU, "xori": OpXORI,
	"ori": OpORI, "andi": OpANDI, "slli": OpSLLI, "srli": OpSRLI, "srai": OpSRAI,
}

var branchOps = map[string]Op{
	"beq": OpBEQ, "bne": OpBNE, "blt": OpBLT, "bge": OpBGE,
	"bltu": OpBLTU, "bgeu": OpBGEU,
}

var loadOps = map[string]Op{
	"lb": OpLB, "lh": OpLH, "lw": OpLW, "lbu": OpLBU, "lhu": OpLHU,
}

var storeOps = map[string]Op{"sb": OpSB, "sh": OpSH, "sw": OpSW}

func assembleLine(line string, pc uint32, labels map[string]uint32) ([]uint32, error) {
	op, args := splitOp(line)
	enc := func(i Inst) ([]uint32, error) {
		w, err := Encode(i)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	switch {
	case op == ".word":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := parseImm(args[0])
		if err != nil {
			return nil, err
		}
		return []uint32{uint32(v)}, nil

	case rTypeOps[op] != OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0])
		rs1, err2 := parseReg(args[1])
		rs2, err3 := parseReg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return enc(Inst{Op: rTypeOps[op], Rd: rd, Rs1: rs1, Rs2: rs2})

	case iTypeOps[op] != OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0])
		rs1, err2 := parseReg(args[1])
		imm, err3 := parseImm(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return enc(Inst{Op: iTypeOps[op], Rd: rd, Rs1: rs1, Imm: int32(imm)})

	case branchOps[op] != OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err1 := parseReg(args[0])
		rs2, err2 := parseReg(args[1])
		off, err3 := target(args[2], pc, labels)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return enc(Inst{Op: branchOps[op], Rs1: rs1, Rs2: rs2, Imm: off})

	case loadOps[op] != OpInvalid:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0])
		imm, rs1, err2 := parseMem(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return enc(Inst{Op: loadOps[op], Rd: rd, Rs1: rs1, Imm: imm})

	case storeOps[op] != OpInvalid:
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err1 := parseReg(args[0])
		imm, rs1, err2 := parseMem(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return enc(Inst{Op: storeOps[op], Rs1: rs1, Rs2: rs2, Imm: imm})
	}

	switch op {
	case "lui", "auipc":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0])
		imm, err2 := parseImm(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		o := OpLUI
		if op == "auipc" {
			o = OpAUIPC
		}
		return encOne(Inst{Op: o, Rd: rd, Imm: int32(imm)})
	case "jal", "call":
		rd := 1 // ra
		var dest string
		switch len(args) {
		case 1:
			dest = args[0]
		case 2:
			var err error
			rd, err = parseReg(args[0])
			if err != nil {
				return nil, err
			}
			dest = args[1]
		default:
			return nil, fmt.Errorf("jal expects 1 or 2 operands")
		}
		off, err := target(dest, pc, labels)
		if err != nil {
			return nil, err
		}
		return encOne(Inst{Op: OpJAL, Rd: rd, Imm: off})
	case "jalr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0])
		imm, rs1, err2 := parseMem(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return encOne(Inst{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: imm})
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := target(args[0], pc, labels)
		if err != nil {
			return nil, err
		}
		return encOne(Inst{Op: OpJAL, Rd: 0, Imm: off})
	case "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		return encOne(Inst{Op: OpJALR, Rd: 0, Rs1: rs1})
	case "ret":
		return encOne(Inst{Op: OpJALR, Rd: 0, Rs1: 1})
	case "nop":
		return encOne(Inst{Op: OpADDI})
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0])
		rs1, err2 := parseReg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return encOne(Inst{Op: OpADDI, Rd: rd, Rs1: rs1})
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0])
		v, err2 := parseImm(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		if fitsI12(v) {
			return encOne(Inst{Op: OpADDI, Rd: rd, Imm: int32(v)})
		}
		// lui + addi, compensating for addi's sign extension.
		w := int32(v)
		lo := w << 20 >> 20 // low 12 bits, sign extended
		hi := (w - lo) >> 12
		w1, err := Encode(Inst{Op: OpLUI, Rd: rd, Imm: hi & 0xfffff})
		if err != nil {
			return nil, err
		}
		w2, err := Encode(Inst{Op: OpADDI, Rd: rd, Rs1: rd, Imm: lo})
		if err != nil {
			return nil, err
		}
		return []uint32{w1, w2}, nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs1, err1 := parseReg(args[0])
		off, err2 := target(args[1], pc, labels)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		o := OpBEQ
		if op == "bnez" {
			o = OpBNE
		}
		return encOne(Inst{Op: o, Rs1: rs1, Imm: off})
	case "ecall":
		return encOne(Inst{Op: OpECALL})
	case "ebreak":
		return encOne(Inst{Op: OpEBREAK})
	case "fence":
		return encOne(Inst{Op: OpFENCE})
	case "demand", "gv_set", "ip_set":
		if err := need(1); err != nil {
			return nil, err
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		o := map[string]Op{"demand": OpDEMAND, "gv_set": OpGVSET, "ip_set": OpIPSET}[op]
		return encOne(Inst{Op: o, Rs1: rs1})
	case "supply", "gv_get":
		if err := need(1); err != nil {
			return nil, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		o := OpSUPPLY
		if op == "gv_get" {
			o = OpGVGET
		}
		return encOne(Inst{Op: o, Rd: rd})
	}
	return nil, fmt.Errorf("unknown instruction %q", op)
}

func encOne(i Inst) ([]uint32, error) {
	w, err := Encode(i)
	if err != nil {
		return nil, err
	}
	return []uint32{w}, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Disassemble renders machine words as an address-annotated listing,
// marking undecodable words as data.
func Disassemble(words []uint32, base uint32) string {
	var sb strings.Builder
	for i, w := range words {
		addr := base + uint32(4*i)
		inst, err := Decode(w)
		if err != nil {
			fmt.Fprintf(&sb, "%08x:  %08x    .word 0x%08x\n", addr, w, w)
			continue
		}
		fmt.Fprintf(&sb, "%08x:  %08x    %s\n", addr, w, inst)
	}
	return sb.String()
}

package isa

import "testing"

// TestAssembleEveryMnemonic assembles one instance of every supported
// mnemonic and checks it decodes back to the expected operation.
func TestAssembleEveryMnemonic(t *testing.T) {
	cases := []struct {
		src  string
		want Op
	}{
		{"add x1, x2, x3", OpADD},
		{"sub x1, x2, x3", OpSUB},
		{"sll x1, x2, x3", OpSLL},
		{"slt x1, x2, x3", OpSLT},
		{"sltu x1, x2, x3", OpSLTU},
		{"xor x1, x2, x3", OpXOR},
		{"srl x1, x2, x3", OpSRL},
		{"sra x1, x2, x3", OpSRA},
		{"or x1, x2, x3", OpOR},
		{"and x1, x2, x3", OpAND},
		{"addi x1, x2, 5", OpADDI},
		{"slti x1, x2, 5", OpSLTI},
		{"sltiu x1, x2, 5", OpSLTIU},
		{"xori x1, x2, 5", OpXORI},
		{"ori x1, x2, 5", OpORI},
		{"andi x1, x2, 5", OpANDI},
		{"slli x1, x2, 5", OpSLLI},
		{"srli x1, x2, 5", OpSRLI},
		{"srai x1, x2, 5", OpSRAI},
		{"beq x1, x2, 8", OpBEQ},
		{"bne x1, x2, 8", OpBNE},
		{"blt x1, x2, 8", OpBLT},
		{"bge x1, x2, 8", OpBGE},
		{"bltu x1, x2, 8", OpBLTU},
		{"bgeu x1, x2, 8", OpBGEU},
		{"lb x1, 0(x2)", OpLB},
		{"lh x1, 0(x2)", OpLH},
		{"lw x1, 0(x2)", OpLW},
		{"lbu x1, 0(x2)", OpLBU},
		{"lhu x1, 0(x2)", OpLHU},
		{"sb x1, 0(x2)", OpSB},
		{"sh x1, 0(x2)", OpSH},
		{"sw x1, 0(x2)", OpSW},
		{"lui x1, 4", OpLUI},
		{"auipc x1, 4", OpAUIPC},
		{"jal x1, 8", OpJAL},
		{"jal 8", OpJAL},
		{"call 8", OpJAL},
		{"jalr x1, 4(x2)", OpJALR},
		{"jr x5", OpJALR},
		{"ret", OpJALR},
		{"j 8", OpJAL},
		{"nop", OpADDI},
		{"mv x1, x2", OpADDI},
		{"li x1, 7", OpADDI},
		{"beqz x1, 8", OpBEQ},
		{"bnez x1, 8", OpBNE},
		{"ecall", OpECALL},
		{"ebreak", OpEBREAK},
		{"fence", OpFENCE},
		{"demand x1", OpDEMAND},
		{"supply x1", OpSUPPLY},
		{"gv_set x1", OpGVSET},
		{"gv_get x1", OpGVGET},
		{"ip_set x1", OpIPSET},
	}
	for _, c := range cases {
		words, err := Assemble(c.src, 0)
		if err != nil {
			t.Errorf("Assemble(%q): %v", c.src, err)
			continue
		}
		inst, err := Decode(words[0])
		if err != nil {
			t.Errorf("decode %q: %v", c.src, err)
			continue
		}
		if inst.Op != c.want {
			t.Errorf("%q assembled to %v, want %v", c.src, inst.Op, c.want)
		}
	}
}

// TestAssembleOperandErrors drives every mnemonic family's error paths.
func TestAssembleOperandErrors(t *testing.T) {
	bad := []string{
		"add x1, x2",      // r-type arity
		"add x1, x2, q9",  // r-type register
		"addi x1, x2, z",  // i-type immediate
		"beq x1, x2",      // branch arity
		"beq q1, x2, 8",   // branch register
		"lw x1",           // load arity
		"lw x1, (q2)",     // load register
		"sw x1",           // store arity
		"lui x1",          // u-type arity
		"lui q1, 5",       // u-type register
		"jal x1, x2, 8",   // jal arity
		"jal x1, nowhere", // jal label
		"jalr x1",         // jalr arity
		"jr",              // jr arity
		"mv x1",           // mv arity
		"li x1",           // li arity
		"li q1, 5",        // li register
		"beqz x1",         // beqz arity
		"beqz q1, 8",      // beqz register
		"demand",          // l15 arity
		"demand q1",       // l15 register
		"supply",          // supply arity
		".word",           // directive arity
		".word zz",        // directive immediate
		"beq x1, x2, 3",   // misaligned branch target
	}
	for _, src := range bad {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) accepted", src)
		}
	}
}

// TestInstStringAllShapes drives every String() branch.
func TestInstStringAllShapes(t *testing.T) {
	insts := []Inst{
		{Op: OpInvalid},
		{Op: OpLUI, Rd: 1, Imm: 2},
		{Op: OpAUIPC, Rd: 1, Imm: 2},
		{Op: OpJAL, Rd: 1, Imm: 8},
		{Op: OpJALR, Rd: 1, Rs1: 2, Imm: 4},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: 8},
		{Op: OpLW, Rd: 1, Rs1: 2, Imm: 4},
		{Op: OpSW, Rs1: 1, Rs2: 2, Imm: 4},
		{Op: OpFENCE},
		{Op: OpECALL},
		{Op: OpEBREAK},
		{Op: OpDEMAND, Rs1: 1},
		{Op: OpSUPPLY, Rd: 1},
		{Op: OpGVSET, Rs1: 1},
		{Op: OpGVGET, Rd: 1},
		{Op: OpIPSET, Rs1: 1},
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: 3},
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: Op(999)},
	}
	for _, inst := range insts {
		if inst.String() == "" {
			t.Errorf("empty String for %+v", inst)
		}
	}
}

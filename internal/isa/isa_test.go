package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripRepresentative(t *testing.T) {
	cases := []Inst{
		{Op: OpLUI, Rd: 5, Imm: 0xfffff},
		{Op: OpAUIPC, Rd: 1, Imm: 0x12345},
		{Op: OpJAL, Rd: 1, Imm: -2048},
		{Op: OpJAL, Rd: 0, Imm: 1048574},
		{Op: OpJALR, Rd: 1, Rs1: 2, Imm: -4},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -4096},
		{Op: OpBNE, Rs1: 3, Rs2: 4, Imm: 4094},
		{Op: OpBLT, Rs1: 5, Rs2: 6, Imm: 8},
		{Op: OpBGE, Rs1: 7, Rs2: 8, Imm: -8},
		{Op: OpBLTU, Rs1: 9, Rs2: 10, Imm: 100},
		{Op: OpBGEU, Rs1: 11, Rs2: 12, Imm: -100},
		{Op: OpLB, Rd: 1, Rs1: 2, Imm: -1},
		{Op: OpLH, Rd: 3, Rs1: 4, Imm: 2},
		{Op: OpLW, Rd: 5, Rs1: 6, Imm: 2047},
		{Op: OpLBU, Rd: 7, Rs1: 8, Imm: -2048},
		{Op: OpLHU, Rd: 9, Rs1: 10, Imm: 0},
		{Op: OpSB, Rs1: 1, Rs2: 2, Imm: -1},
		{Op: OpSH, Rs1: 3, Rs2: 4, Imm: 1024},
		{Op: OpSW, Rs1: 5, Rs2: 6, Imm: -2048},
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: -5},
		{Op: OpSLTI, Rd: 3, Rs1: 4, Imm: 5},
		{Op: OpSLTIU, Rd: 5, Rs1: 6, Imm: 7},
		{Op: OpXORI, Rd: 7, Rs1: 8, Imm: -1},
		{Op: OpORI, Rd: 9, Rs1: 10, Imm: 255},
		{Op: OpANDI, Rd: 11, Rs1: 12, Imm: 15},
		{Op: OpSLLI, Rd: 1, Rs1: 2, Imm: 31},
		{Op: OpSRLI, Rd: 3, Rs1: 4, Imm: 1},
		{Op: OpSRAI, Rd: 5, Rs1: 6, Imm: 16},
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpSLL, Rd: 7, Rs1: 8, Rs2: 9},
		{Op: OpSLT, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpSLTU, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpXOR, Rd: 16, Rs1: 17, Rs2: 18},
		{Op: OpSRL, Rd: 19, Rs1: 20, Rs2: 21},
		{Op: OpSRA, Rd: 22, Rs1: 23, Rs2: 24},
		{Op: OpOR, Rd: 25, Rs1: 26, Rs2: 27},
		{Op: OpAND, Rd: 28, Rs1: 29, Rs2: 30},
		{Op: OpFENCE},
		{Op: OpECALL},
		{Op: OpEBREAK},
		{Op: OpDEMAND, Rs1: 10},
		{Op: OpSUPPLY, Rd: 11},
		{Op: OpGVSET, Rs1: 12},
		{Op: OpGVGET, Rd: 13},
		{Op: OpIPSET, Rs1: 14},
	}
	for _, want := range cases {
		w, err := Encode(want)
		if err != nil {
			t.Errorf("Encode(%v): %v", want, err)
			continue
		}
		got, err := Decode(w)
		if err != nil {
			t.Errorf("Decode(%v = %#08x): %v", want, w, err)
			continue
		}
		if got != want {
			t.Errorf("round trip %v -> %#08x -> %v", want, w, got)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpADDI, Rd: 32},
		{Op: OpADDI, Rd: 1, Imm: 4096},
		{Op: OpJAL, Rd: 1, Imm: 3},       // misaligned
		{Op: OpJAL, Rd: 1, Imm: 1 << 21}, // out of range
		{Op: OpBEQ, Imm: 1},              // misaligned
		{Op: OpSLLI, Rd: 1, Imm: 32},     // shift too large
		{Op: OpInvalid},
	}
	for _, i := range bad {
		if _, err := Encode(i); err == nil {
			t.Errorf("Encode(%v) accepted", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []uint32{
		0x00000000,        // all zeros: no valid opcode
		0xffffffff,        // all ones
		0b0001011 | 7<<12, // L1.5 with undefined funct3
		0x30200073,        // mret — unsupported system op
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) accepted", w)
		}
	}
}

func TestClassifiers(t *testing.T) {
	if !OpDEMAND.Privileged() {
		t.Error("demand must be privileged (Table 1)")
	}
	for _, o := range []Op{OpSUPPLY, OpGVSET, OpGVGET, OpIPSET} {
		if o.Privileged() {
			t.Errorf("%v must be user mode (Table 1)", o)
		}
		if !o.IsL15() {
			t.Errorf("%v must be an L1.5 op", o)
		}
	}
	if OpADD.IsL15() || OpLW.IsL15() {
		t.Error("base ops misclassified as L1.5")
	}
	if !OpLW.IsLoad() || !OpSB.IsStore() || !OpBNE.IsBranch() {
		t.Error("classification broken")
	}
	if OpSW.IsLoad() || OpLW.IsStore() || OpJAL.IsBranch() {
		t.Error("classification too broad")
	}
}

func TestInstString(t *testing.T) {
	cases := map[string]Inst{
		"addi x1, x2, -5": {Op: OpADDI, Rd: 1, Rs1: 2, Imm: -5},
		"lw x5, 8(x2)":    {Op: OpLW, Rd: 5, Rs1: 2, Imm: 8},
		"sw x6, -4(x2)":   {Op: OpSW, Rs1: 2, Rs2: 6, Imm: -4},
		"demand x10":      {Op: OpDEMAND, Rs1: 10},
		"supply x11":      {Op: OpSUPPLY, Rd: 11},
		"ecall":           {Op: OpECALL},
	}
	for want, inst := range cases {
		if got := inst.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

// Property: every encodable instruction round-trips.
func TestQuickRoundTrip(t *testing.T) {
	ops := []Op{
		OpLUI, OpAUIPC, OpJAL, OpJALR, OpBEQ, OpBNE, OpBLT, OpBGE,
		OpLB, OpLW, OpSB, OpSW, OpADDI, OpXORI, OpSLLI, OpSRAI,
		OpADD, OpSUB, OpAND, OpOR, OpDEMAND, OpSUPPLY, OpGVSET, OpGVGET, OpIPSET,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		op := ops[r.Intn(len(ops))]
		inst := Inst{Op: op}
		switch {
		case op == OpLUI || op == OpAUIPC:
			inst.Rd = r.Intn(32)
			inst.Imm = int32(r.Intn(1 << 20))
		case op == OpJAL:
			inst.Rd = r.Intn(32)
			inst.Imm = int32(r.Intn(1<<20)-1<<19) * 2
		case op.IsBranch():
			inst.Rs1, inst.Rs2 = r.Intn(32), r.Intn(32)
			inst.Imm = int32(r.Intn(1<<12)-1<<11) * 2
		case op.IsLoad() || op == OpJALR:
			inst.Rd, inst.Rs1 = r.Intn(32), r.Intn(32)
			inst.Imm = int32(r.Intn(1<<12) - 1<<11)
		case op.IsStore():
			inst.Rs1, inst.Rs2 = r.Intn(32), r.Intn(32)
			inst.Imm = int32(r.Intn(1<<12) - 1<<11)
		case op == OpSLLI || op == OpSRAI:
			inst.Rd, inst.Rs1 = r.Intn(32), r.Intn(32)
			inst.Imm = int32(r.Intn(32))
		case op == OpADDI || op == OpXORI:
			inst.Rd, inst.Rs1 = r.Intn(32), r.Intn(32)
			inst.Imm = int32(r.Intn(1<<12) - 1<<11)
		case op == OpDEMAND || op == OpGVSET || op == OpIPSET:
			inst.Rs1 = r.Intn(32)
		case op == OpSUPPLY || op == OpGVGET:
			inst.Rd = r.Intn(32)
		default:
			inst.Rd, inst.Rs1, inst.Rs2 = r.Intn(32), r.Intn(32), r.Intn(32)
		}
		w, err := Encode(inst)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == inst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAssembleBasics(t *testing.T) {
	src := `
		# compute 10 + 32 into a0
		li a0, 10
		addi a0, a0, 32
		nop
		ecall
	`
	words, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 4 {
		t.Fatalf("got %d words", len(words))
	}
	first, err := Decode(words[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.Op != OpADDI || first.Rd != 10 || first.Imm != 10 {
		t.Errorf("li expanded to %v", first)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	src := `
	start:
		li t0, 3
		li t1, 0
	loop:
		addi t1, t1, 1
		addi t0, t0, -1
		bnez t0, loop
		j done
		nop           # skipped
	done:
		ecall
	`
	words, err := Assemble(src, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	// bnez is word 4 (addresses 0x100,104,108,10c,110): offset back to
	// loop (0x108) from 0x110 = -8.
	b, err := Decode(words[4])
	if err != nil {
		t.Fatal(err)
	}
	if b.Op != OpBNE || b.Imm != -8 {
		t.Errorf("bnez = %v, want bne offset -8", b)
	}
	j, err := Decode(words[5])
	if err != nil {
		t.Fatal(err)
	}
	if j.Op != OpJAL || j.Rd != 0 || j.Imm != 8 {
		t.Errorf("j = %v, want jal x0, +8", j)
	}
}

func TestAssembleLiLarge(t *testing.T) {
	words, err := Assemble("li a0, 0x12345678", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 2 {
		t.Fatalf("large li must expand to lui+addi, got %d words", len(words))
	}
	lui, _ := Decode(words[0])
	addi, _ := Decode(words[1])
	if lui.Op != OpLUI || addi.Op != OpADDI {
		t.Fatalf("expansion = %v, %v", lui, addi)
	}
	got := uint32(lui.Imm)<<12 + uint32(addi.Imm)
	if got != 0x12345678 {
		t.Errorf("li value = %#x", got)
	}
	// Negative low half must still reconstruct.
	words, err = Assemble("li a0, 0x12345FFF", 0)
	if err != nil {
		t.Fatal(err)
	}
	lui, _ = Decode(words[0])
	addi, _ = Decode(words[1])
	if got := uint32(lui.Imm)<<12 + uint32(addi.Imm); got != 0x12345FFF {
		t.Errorf("li with negative low = %#x", got)
	}
}

func TestAssembleL15Extension(t *testing.T) {
	src := `
		li a0, 0x42      # ways 1 and 6, the paper's gv_set example
		demand a0
		supply a1
		gv_set a0
		gv_get a2
		ip_set a0
	`
	words, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{OpADDI, OpDEMAND, OpSUPPLY, OpGVSET, OpGVGET, OpIPSET}
	for i, want := range wantOps {
		inst, err := Decode(words[i])
		if err != nil {
			t.Fatal(err)
		}
		if inst.Op != want {
			t.Errorf("word %d = %v, want %v", i, inst.Op, want)
		}
	}
}

func TestAssembleMemoryOps(t *testing.T) {
	src := `
		lw a0, 12(sp)
		sw a0, -8(s0)
		lbu t0, (a1)
	`
	words, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	lw, _ := Decode(words[0])
	if lw.Op != OpLW || lw.Rd != 10 || lw.Rs1 != 2 || lw.Imm != 12 {
		t.Errorf("lw = %v", lw)
	}
	sw, _ := Decode(words[1])
	if sw.Op != OpSW || sw.Rs2 != 10 || sw.Rs1 != 8 || sw.Imm != -8 {
		t.Errorf("sw = %v", sw)
	}
	lbu, _ := Decode(words[2])
	if lbu.Op != OpLBU || lbu.Imm != 0 || lbu.Rs1 != 11 {
		t.Errorf("lbu = %v", lbu)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate x1",
		"addi x1, x2",     // missing operand
		"addi x99, x2, 1", // bad register
		"lw a0, 4[sp]",    // bad memory syntax
		"beq a0, a1, nowhere",
		"dup: nop\ndup: nop", // duplicate label
		": nop",              // empty label
	}
	for _, src := range bad {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) accepted", src)
		}
	}
}

func TestAssembleWordDirective(t *testing.T) {
	words, err := Assemble(".word 0xdeadbeef", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 1 || words[0] != 0xdeadbeef {
		t.Errorf("words = %#x", words)
	}
}

func TestAssembleCommentsOnly(t *testing.T) {
	words, err := Assemble("# nothing\n// here\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 0 {
		t.Errorf("got %d words from comments", len(words))
	}
}

func TestDisassemblyMentionsMnemonic(t *testing.T) {
	for op, name := range map[Op]string{OpDEMAND: "demand", OpGVSET: "gv_set"} {
		inst := Inst{Op: op, Rs1: 3}
		if !strings.Contains(inst.String(), name) {
			t.Errorf("String(%v) = %q", op, inst.String())
		}
	}
}

func TestDisassemble(t *testing.T) {
	words, err := Assemble("li a0, 1\ndemand a0\nebreak", 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(words, 0x1000)
	for _, want := range []string{"00001000:", "addi x10, x0, 1", "demand x10", "ebreak"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// Data words render as .word.
	out = Disassemble([]uint32{0xffffffff}, 0)
	if !strings.Contains(out, ".word 0xffffffff") {
		t.Errorf("data word listing: %s", out)
	}
}

// Package isa defines the instruction set of the simulated cores: the
// RV32I base subset the evaluation programs need, extended with the five
// L1.5 Cache instructions of Table 1:
//
//	demand rs1  (privileged) apply rs1 ways from the L1.5 Cache
//	supply rd               return the assigned ways (bitmap) in rd
//	gv_set rs1               set owned ways' global visibility (bitmap)
//	gv_get rd               return owned ways' global visibility in rd
//	ip_set rs1               set the inclusion policy of owned ways (bitmap)
//
// The extension occupies the RISC-V custom-0 opcode (0001011) with funct3
// selecting the operation, so a conventional decoder passes the words
// through untouched and the Mini-Decoder at the MA stage (§2.2) routes them
// to the L1.5 control port.
package isa

import "fmt"

// Op enumerates the supported operations.
type Op int

// Base RV32I operations plus the L1.5 extension.
const (
	OpInvalid Op = iota

	// U-type
	OpLUI
	OpAUIPC

	// Jumps
	OpJAL
	OpJALR

	// Branches
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Loads
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU

	// Stores
	OpSB
	OpSH
	OpSW

	// Immediate ALU
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI

	// Register ALU
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND

	// System
	OpFENCE
	OpECALL
	OpEBREAK

	// L1.5 Cache extension (Table 1)
	OpDEMAND
	OpSUPPLY
	OpGVSET
	OpGVGET
	OpIPSET
)

var opNames = map[Op]string{
	OpLUI: "lui", OpAUIPC: "auipc", OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori",
	OpORI: "ori", OpANDI: "andi", OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpADD: "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpFENCE: "fence", OpECALL: "ecall", OpEBREAK: "ebreak",
	OpDEMAND: "demand", OpSUPPLY: "supply", OpGVSET: "gv_set",
	OpGVGET: "gv_get", OpIPSET: "ip_set",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsL15 reports whether the operation belongs to the L1.5 extension — the
// test the Mini-Decoder applies at the MA stage.
func (o Op) IsL15() bool {
	switch o {
	case OpDEMAND, OpSUPPLY, OpGVSET, OpGVGET, OpIPSET:
		return true
	default:
		return false
	}
}

// Privileged reports whether the instruction requires kernel mode. Only
// demand() is privileged (Table 1): way allocation can cause contention
// between cores, so it is reserved for the OS/hypervisor.
func (o Op) Privileged() bool { return o == OpDEMAND }

// IsLoad reports memory loads.
func (o Op) IsLoad() bool { return o >= OpLB && o <= OpLHU }

// IsStore reports memory stores.
func (o Op) IsStore() bool { return o >= OpSB && o <= OpSW }

// IsBranch reports conditional branches.
func (o Op) IsBranch() bool { return o >= OpBEQ && o <= OpBGEU }

// Inst is a decoded instruction.
type Inst struct {
	Op           Op
	Rd, Rs1, Rs2 int
	Imm          int32
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	switch {
	case i.Op == OpInvalid:
		return "invalid"
	case i.Op == OpLUI || i.Op == OpAUIPC:
		return fmt.Sprintf("%s x%d, %d", i.Op, i.Rd, i.Imm)
	case i.Op == OpJAL:
		return fmt.Sprintf("%s x%d, %d", i.Op, i.Rd, i.Imm)
	case i.Op == OpJALR:
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.Op.IsBranch():
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case i.Op.IsLoad():
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.Op.IsStore():
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case i.Op == OpECALL || i.Op == OpEBREAK || i.Op == OpFENCE:
		return i.Op.String()
	case i.Op == OpDEMAND || i.Op == OpGVSET || i.Op == OpIPSET:
		return fmt.Sprintf("%s x%d", i.Op, i.Rs1)
	case i.Op == OpSUPPLY || i.Op == OpGVGET:
		return fmt.Sprintf("%s x%d", i.Op, i.Rd)
	case i.Op >= OpADDI && i.Op <= OpSRAI:
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s x%d, x%d, x%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// RISC-V opcode fields.
const (
	opcLUI    = 0b0110111
	opcAUIPC  = 0b0010111
	opcJAL    = 0b1101111
	opcJALR   = 0b1100111
	opcBranch = 0b1100011
	opcLoad   = 0b0000011
	opcStore  = 0b0100011
	opcOpImm  = 0b0010011
	opcOp     = 0b0110011
	opcFence  = 0b0001111
	opcSystem = 0b1110011

	// Custom-0: the L1.5 extension.
	opcL15 = 0b0001011
)

// funct3 selectors of the L1.5 extension.
const (
	f3Demand = 0
	f3Supply = 1
	f3GVSet  = 2
	f3GVGet  = 3
	f3IPSet  = 4
)

// Encode produces the 32-bit machine word.
func Encode(i Inst) (uint32, error) {
	rd := uint32(i.Rd) & 31
	rs1 := uint32(i.Rs1) & 31
	rs2 := uint32(i.Rs2) & 31
	if i.Rd < 0 || i.Rd > 31 || i.Rs1 < 0 || i.Rs1 > 31 || i.Rs2 < 0 || i.Rs2 > 31 {
		return 0, fmt.Errorf("isa: register out of range in %v", i)
	}
	uimm := uint32(i.Imm)
	switch i.Op {
	case OpLUI:
		return uimm<<12 | rd<<7 | opcLUI, nil
	case OpAUIPC:
		return uimm<<12 | rd<<7 | opcAUIPC, nil
	case OpJAL:
		if err := checkImm(i.Imm, 21, 2); err != nil {
			return 0, err
		}
		return jImm(uimm) | rd<<7 | opcJAL, nil
	case OpJALR:
		if err := checkImm(i.Imm, 12, 1); err != nil {
			return 0, err
		}
		return iType(uimm, rs1, 0, rd, opcJALR), nil
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		if err := checkImm(i.Imm, 13, 2); err != nil {
			return 0, err
		}
		f3 := map[Op]uint32{OpBEQ: 0, OpBNE: 1, OpBLT: 4, OpBGE: 5, OpBLTU: 6, OpBGEU: 7}[i.Op]
		return bImm(uimm) | rs2<<20 | rs1<<15 | f3<<12 | opcBranch, nil
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		if err := checkImm(i.Imm, 12, 1); err != nil {
			return 0, err
		}
		f3 := map[Op]uint32{OpLB: 0, OpLH: 1, OpLW: 2, OpLBU: 4, OpLHU: 5}[i.Op]
		return iType(uimm, rs1, f3, rd, opcLoad), nil
	case OpSB, OpSH, OpSW:
		if err := checkImm(i.Imm, 12, 1); err != nil {
			return 0, err
		}
		f3 := map[Op]uint32{OpSB: 0, OpSH: 1, OpSW: 2}[i.Op]
		return (uimm>>5&0x7f)<<25 | rs2<<20 | rs1<<15 | f3<<12 | (uimm&0x1f)<<7 | opcStore, nil
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI:
		if err := checkImm(i.Imm, 12, 1); err != nil {
			return 0, err
		}
		f3 := map[Op]uint32{OpADDI: 0, OpSLTI: 2, OpSLTIU: 3, OpXORI: 4, OpORI: 6, OpANDI: 7}[i.Op]
		return iType(uimm, rs1, f3, rd, opcOpImm), nil
	case OpSLLI, OpSRLI, OpSRAI:
		if i.Imm < 0 || i.Imm > 31 {
			return 0, fmt.Errorf("isa: shift amount %d out of range", i.Imm)
		}
		f3 := map[Op]uint32{OpSLLI: 1, OpSRLI: 5, OpSRAI: 5}[i.Op]
		hi := uint32(0)
		if i.Op == OpSRAI {
			hi = 0x20 << 25
		}
		return hi | uimm<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOpImm, nil
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND:
		f3 := map[Op]uint32{OpADD: 0, OpSUB: 0, OpSLL: 1, OpSLT: 2, OpSLTU: 3,
			OpXOR: 4, OpSRL: 5, OpSRA: 5, OpOR: 6, OpAND: 7}[i.Op]
		f7 := uint32(0)
		if i.Op == OpSUB || i.Op == OpSRA {
			f7 = 0x20
		}
		return f7<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOp, nil
	case OpFENCE:
		return opcFence, nil
	case OpECALL:
		return opcSystem, nil
	case OpEBREAK:
		return 1<<20 | opcSystem, nil
	case OpDEMAND:
		return iType(0, rs1, f3Demand, 0, opcL15), nil
	case OpSUPPLY:
		return iType(0, 0, f3Supply, rd, opcL15), nil
	case OpGVSET:
		return iType(0, rs1, f3GVSet, 0, opcL15), nil
	case OpGVGET:
		return iType(0, 0, f3GVGet, rd, opcL15), nil
	case OpIPSET:
		return iType(0, rs1, f3IPSet, 0, opcL15), nil
	default:
		return 0, fmt.Errorf("isa: cannot encode %v", i.Op)
	}
}

func iType(imm, rs1, f3, rd uint32, opc uint32) uint32 {
	return (imm&0xfff)<<20 | rs1<<15 | f3<<12 | rd<<7 | opc
}

func jImm(imm uint32) uint32 {
	return (imm>>20&1)<<31 | (imm>>1&0x3ff)<<21 | (imm>>11&1)<<20 | (imm >> 12 & 0xff << 12)
}

func bImm(imm uint32) uint32 {
	return (imm>>12&1)<<31 | (imm>>5&0x3f)<<25 | (imm>>1&0xf)<<8 | (imm>>11&1)<<7
}

func checkImm(imm int32, bits, align int) error {
	min := -(int32(1) << (bits - 1))
	max := int32(1)<<(bits-1) - 1
	if imm < min || imm > max {
		return fmt.Errorf("isa: immediate %d outside %d-bit range", imm, bits)
	}
	if align > 1 && imm%int32(align) != 0 {
		return fmt.Errorf("isa: immediate %d not %d-byte aligned", imm, align)
	}
	return nil
}

// funct-to-op decode tables, hoisted to package level: Decode runs once
// per fetched instruction, and a map literal per call is a heap
// allocation on the fetch hot path.
var (
	decBranch = map[uint32]Op{0: OpBEQ, 1: OpBNE, 4: OpBLT, 5: OpBGE, 6: OpBLTU, 7: OpBGEU}
	decLoad   = map[uint32]Op{0: OpLB, 1: OpLH, 2: OpLW, 4: OpLBU, 5: OpLHU}
	decStore  = map[uint32]Op{0: OpSB, 1: OpSH, 2: OpSW}
	decALU    = map[uint32]Op{
		0<<3 | 0: OpADD, 0x20<<3 | 0: OpSUB,
		0<<3 | 1: OpSLL, 0<<3 | 2: OpSLT, 0<<3 | 3: OpSLTU,
		0<<3 | 4: OpXOR, 0<<3 | 5: OpSRL, 0x20<<3 | 5: OpSRA,
		0<<3 | 6: OpOR, 0<<3 | 7: OpAND,
	}
)

// Decode interprets a 32-bit machine word.
func Decode(w uint32) (Inst, error) {
	opc := w & 0x7f
	rd := int(w >> 7 & 31)
	f3 := w >> 12 & 7
	rs1 := int(w >> 15 & 31)
	rs2 := int(w >> 20 & 31)
	f7 := w >> 25

	signExt := func(v uint32, bits uint) int32 {
		shift := 32 - bits
		return int32(v<<shift) >> shift
	}
	iImm := signExt(w>>20, 12)

	switch opc {
	case opcLUI:
		return Inst{Op: OpLUI, Rd: rd, Imm: int32(w >> 12)}, nil
	case opcAUIPC:
		return Inst{Op: OpAUIPC, Rd: rd, Imm: int32(w >> 12)}, nil
	case opcJAL:
		imm := (w>>31&1)<<20 | (w>>12&0xff)<<12 | (w>>20&1)<<11 | (w >> 21 & 0x3ff << 1)
		return Inst{Op: OpJAL, Rd: rd, Imm: signExt(imm, 21)}, nil
	case opcJALR:
		if f3 != 0 {
			return Inst{}, fmt.Errorf("isa: bad jalr funct3 %d", f3)
		}
		return Inst{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: iImm}, nil
	case opcBranch:
		imm := (w>>31&1)<<12 | (w>>7&1)<<11 | (w>>25&0x3f)<<5 | (w >> 8 & 0xf << 1)
		op, ok := decBranch[f3]
		if !ok {
			return Inst{}, fmt.Errorf("isa: bad branch funct3 %d", f3)
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: signExt(imm, 13)}, nil
	case opcLoad:
		op, ok := decLoad[f3]
		if !ok {
			return Inst{}, fmt.Errorf("isa: bad load funct3 %d", f3)
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: iImm}, nil
	case opcStore:
		op, ok := decStore[f3]
		if !ok {
			return Inst{}, fmt.Errorf("isa: bad store funct3 %d", f3)
		}
		imm := signExt(w>>25<<5|w>>7&0x1f, 12)
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm}, nil
	case opcOpImm:
		switch f3 {
		case 0:
			return Inst{Op: OpADDI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 2:
			return Inst{Op: OpSLTI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 3:
			return Inst{Op: OpSLTIU, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 4:
			return Inst{Op: OpXORI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 6:
			return Inst{Op: OpORI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 7:
			return Inst{Op: OpANDI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 1:
			return Inst{Op: OpSLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 5:
			if f7 == 0x20 {
				return Inst{Op: OpSRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			}
			return Inst{Op: OpSRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		}
	case opcOp:
		op, ok := decALU[f7<<3|f3]
		if !ok {
			return Inst{}, fmt.Errorf("isa: bad OP funct %#x/%d", f7, f3)
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case opcFence:
		return Inst{Op: OpFENCE}, nil
	case opcSystem:
		switch w >> 20 {
		case 0:
			return Inst{Op: OpECALL}, nil
		case 1:
			return Inst{Op: OpEBREAK}, nil
		}
		return Inst{}, fmt.Errorf("isa: unsupported system instruction %#x", w)
	case opcL15:
		switch f3 {
		case f3Demand:
			return Inst{Op: OpDEMAND, Rs1: rs1}, nil
		case f3Supply:
			return Inst{Op: OpSUPPLY, Rd: rd}, nil
		case f3GVSet:
			return Inst{Op: OpGVSET, Rs1: rs1}, nil
		case f3GVGet:
			return Inst{Op: OpGVGET, Rd: rd}, nil
		case f3IPSet:
			return Inst{Op: OpIPSET, Rs1: rs1}, nil
		}
		return Inst{}, fmt.Errorf("isa: bad L1.5 funct3 %d", f3)
	}
	return Inst{}, fmt.Errorf("isa: cannot decode %#08x", w)
}

package area

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f (±%.4f)", name, got, want, tol)
	}
}

func TestPaperNumbers(t *testing.T) {
	r, err := CompareOverhead(Synopsys28nm())
	if err != nil {
		t.Fatal(err)
	}
	// §5.4's published post-layout figures.
	approx(t, "proposed SoC", r.Proposed.Total(), 2.757, 0.003)
	approx(t, "cluster", r.ClusterArea(), 0.574, 0.002)
	approx(t, "4 processors", r.CoresArea(), 0.359, 0.002)
	approx(t, "conventional SoC", r.Conventional.Total(), 2.604, 0.003)
	approx(t, "delta", r.Delta(), 0.153, 0.002)
	approx(t, "overhead", r.Overhead(), 0.0588, 0.0008)
}

func TestGeometryValidate(t *testing.T) {
	bad := []L15Geometry{
		{Ways: 0, WayBytes: 2048, LineBytes: 64, Cores: 4, TagBits: 20, TIDBits: 16},
		{Ways: 8, WayBytes: 100, LineBytes: 64, Cores: 4, TagBits: 20, TIDBits: 16},
		{Ways: 8, WayBytes: 2048, LineBytes: 64, Cores: 0, TagBits: 20, TIDBits: 16},
		{Ways: 8, WayBytes: 2048, LineBytes: 64, Cores: 4, TagBits: 0, TIDBits: 16},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("geometry %d validated: %+v", i, g)
		}
	}
	if err := PhysicalL15().Validate(); err != nil {
		t.Errorf("reference geometry invalid: %v", err)
	}
}

func TestGeometryDerived(t *testing.T) {
	g := PhysicalL15()
	if g.TotalBytes() != 32*1024 {
		t.Errorf("TotalBytes = %d, want 32KB", g.TotalBytes())
	}
	if g.LinesPerWay() != 64 {
		t.Errorf("LinesPerWay = %d, want 64", g.LinesPerWay())
	}
}

func TestGateCountsScale(t *testing.T) {
	p := Synopsys28nm()
	small := GateCounts(L15Geometry{Ways: 4, WayBytes: 2048, LineBytes: 64,
		Cores: 2, TagBits: 20, TIDBits: 16}, p)
	big := GateCounts(L15Geometry{Ways: 16, WayBytes: 2048, LineBytes: 64,
		Cores: 4, TagBits: 20, TIDBits: 16}, p)
	if small.Total() >= big.Total() {
		t.Errorf("gate count should grow with ways and cores: %g vs %g",
			small.Total(), big.Total())
	}
	// Every block must contribute.
	for name, v := range map[string]float64{
		"control": big.ControlRegisters, "mask": big.MaskLogic,
		"ls": big.LineSelectors, "ds": big.DataSelectors,
		"protector": big.Protector, "sdu": big.SDU,
	} {
		if v <= 0 {
			t.Errorf("%s gate count = %g", name, v)
		}
	}
}

func TestL15AreaErrors(t *testing.T) {
	if _, err := L15Area(L15Geometry{}, Synopsys28nm()); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestSoCAreaErrors(t *testing.T) {
	cfg := Paper16CoreProposed()
	cfg.ClusterSize = 5 // 16 % 5 != 0
	if _, err := SoCArea(cfg, Synopsys28nm()); err == nil {
		t.Error("non-divisible clustering accepted")
	}
	cfg = Paper16CoreProposed()
	bad := *cfg.L15
	bad.Ways = -1
	cfg.L15 = &bad
	if _, err := SoCArea(cfg, Synopsys28nm()); err == nil {
		t.Error("bad L1.5 geometry accepted")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{
		SRAM: 1, Logic: 2,
		Children: []Breakdown{{SRAM: 3}, {Logic: 4}},
	}
	if b.Total() != 10 {
		t.Errorf("Total = %g, want 10", b.Total())
	}
}

func TestFormat(t *testing.T) {
	r, err := CompareOverhead(Synopsys28nm())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Format()
	for _, want := range []string{"2.757", "0.574", "0.359", "2.604", "0.153", "5.8"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// Property: area is monotone in capacity — more ways or bigger ways never
// shrink the L1.5 block.
func TestQuickAreaMonotone(t *testing.T) {
	p := Synopsys28nm()
	f := func(wr, cr uint8) bool {
		ways := int(wr%31) + 1
		cores := int(cr%7) + 1
		g := L15Geometry{Ways: ways, WayBytes: 2048, LineBytes: 64,
			Cores: cores, TagBits: 20, TIDBits: 16}
		bigger := g
		bigger.Ways = ways + 1
		a1, err1 := L15Area(g, p)
		a2, err2 := L15Area(bigger, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return a2.Total() > a1.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Package area provides the analytical silicon-area model that reproduces
// the paper's hardware-overhead analysis (§5.4): a 16-core SoC implemented
// with Synopsys 28nm generic PDKs, once with the L1.5 Cache (32 KB, 8 ways
// per 4-core cluster) and once with a conventional enlarged L1 (8 KB, 2 ways
// extra per core), both at the same total cache capacity.
//
// The paper reports post-layout numbers; we model each microarchitectural
// block of §3 (control registers, dual-level mask logic, line/data
// selectors, protector, SDU) as NAND2-equivalent gate counts and SRAM macro
// area, with effective 28nm density constants calibrated so the reference
// configuration lands on the published totals (SoC 2.757 mm² vs 2.604 mm²,
// +5.88%).
package area

import (
	"fmt"
	"math"
	"strings"
)

// TechParams are the effective physical-design constants.
type TechParams struct {
	// SRAMAreaPerKB is the effective macro area per KB of cache storage,
	// including tag bits, periphery and power rings (mm²/KB). It applies
	// to the L1.5's way arrays and the baseline private L1s.
	SRAMAreaPerKB float64

	// L1ExtensionAreaPerKB is the effective area per KB of the
	// conventional variant's enlarged private L1s. Small low-associativity
	// L1 macros pay more periphery per bit than the L1.5's way arrays,
	// which is part of why the equal-capacity conventional SoC is not
	// proportionally smaller (§5.4).
	L1ExtensionAreaPerKB float64

	// GateArea is the placed-and-routed area of one NAND2-equivalent
	// gate, including routing overhead at achievable density (mm²).
	GateArea float64

	// FlopGates is the NAND2-equivalent count of one flip-flop.
	FlopGates float64

	// CoreLogicArea is one in-order RV32 core's logic area, excluding
	// caches (mm²).
	CoreLogicArea float64

	// ISAExtensionArea is the per-core cost of the L1.5 ISA support:
	// Mini-Decoder, the two IPUs and the forwarding channel (mm²,
	// ≈0.001 in the paper).
	ISAExtensionArea float64

	// UncoreArea is the L2 SRAM + interconnect + peripherals (mm²).
	UncoreArea float64
}

// Synopsys28nm returns the calibrated constants for the paper's 28nm flow.
func Synopsys28nm() TechParams {
	return TechParams{
		SRAMAreaPerKB:        0.005525,
		L1ExtensionAreaPerKB: 0.005650,
		GateArea:             1.3506e-6,
		FlopGates:            6,
		CoreLogicArea:        0.04455,
		ISAExtensionArea:     0.001,
		UncoreArea:           0.461,
	}
}

// L15Geometry describes one cluster's L1.5 Cache.
type L15Geometry struct {
	Ways      int   // ζ
	WayBytes  int64 // κ
	LineBytes int64
	Cores     int // cores sharing the cache (cluster size)
	TagBits   int // physical tag width
	TIDBits   int // task-ID register width
}

// PhysicalL15 is the configuration the paper laid out: 8 ways × 4 KB per
// 4-core cluster (32 KB), 64 B lines.
func PhysicalL15() L15Geometry {
	return L15Geometry{
		Ways:      8,
		WayBytes:  4 * 1024,
		LineBytes: 64,
		Cores:     4,
		TagBits:   20,
		TIDBits:   16,
	}
}

// Validate checks the geometry.
func (g L15Geometry) Validate() error {
	switch {
	case g.Ways <= 0:
		return fmt.Errorf("area: ways = %d", g.Ways)
	case g.WayBytes <= 0 || g.LineBytes <= 0 || g.WayBytes%g.LineBytes != 0:
		return fmt.Errorf("area: way %dB not a multiple of line %dB", g.WayBytes, g.LineBytes)
	case g.Cores <= 0:
		return fmt.Errorf("area: cores = %d", g.Cores)
	case g.TagBits <= 0 || g.TIDBits <= 0:
		return fmt.Errorf("area: tag/TID bits must be positive")
	}
	return nil
}

// TotalBytes is the cache capacity of the cluster's L1.5.
func (g L15Geometry) TotalBytes() int64 { return int64(g.Ways) * g.WayBytes }

// LinesPerWay is the number of sets.
func (g L15Geometry) LinesPerWay() int64 { return g.WayBytes / g.LineBytes }

// lineBits is the stored width of one line: data, tag, valid and dirty.
func (g L15Geometry) lineBits() float64 {
	return float64(g.LineBytes*8) + float64(g.TagBits) + 2
}

// L15Gates itemises the NAND2-equivalent gate counts of the L1.5 control
// microarchitecture (§3.1-3.2), excluding the SRAM arrays.
type L15Gates struct {
	ControlRegisters float64 // TID + OW + GV flops per core
	MaskLogic        float64 // dual-level OR/AND filtering, read + write paths
	LineSelectors    float64 // per-way line multiplexing toward the DSs
	DataSelectors    float64 // per-core latches + hit checkers
	Protector        float64 // TID XNOR comparison gating the GV registers
	SDU              float64 // SD registers, comparators, Walloc FSM + bank
}

// Total sums the gate counts.
func (g L15Gates) Total() float64 {
	return g.ControlRegisters + g.MaskLogic + g.LineSelectors +
		g.DataSelectors + g.Protector + g.SDU
}

// GateCounts derives the control-logic gate counts from the geometry.
func GateCounts(g L15Geometry, p TechParams) L15Gates {
	ways := float64(g.Ways)
	cores := float64(g.Cores)
	lineBits := g.lineBits()

	var out L15Gates
	// One TID register plus OW and GV bitmaps per core (Fig. 4(a)-a).
	out.ControlRegisters = cores * (float64(g.TIDBits) + 2*ways) * p.FlopGates
	// Read path: per core, OR of the other cores' GV with the local OW
	// (upper level) then AND with the index bits (lower level); the write
	// path needs the NOT-gated GV and an AND per way (Fig. 4(a)-b, 4(b)).
	out.MaskLogic = cores*ways*(cores-1+1) /* ORs */ +
		cores*ways /* read ANDs */ +
		cores*ways*2 /* write NOT+AND */
	// Line selector: one line-wide multiplexer tree per way, shared
	// column muxing folded into log2(lines) select stages (Fig. 4(a)-d).
	sel := math.Log2(float64(g.LinesPerWay()))
	out.LineSelectors = ways * lineBits * sel * 0.5
	// Data selector per core: latches buffering the selected line plus a
	// hit checker (tag XNOR + valid AND) per way (Fig. 4(c)).
	out.DataSelectors = cores * (lineBits*p.FlopGates + ways*float64(g.TagBits+1))
	// Protector: pairwise TID XNOR comparison, AND-gated GV (§3.2).
	out.Protector = cores * cores * float64(g.TIDBits+1)
	// SDU (Fig. 5): per-core SD registers (S, D counters) and
	// comparators (subtractor + XOR), plus the Walloc FSM and its
	// register bank shadowing way ownership.
	wayIdxBits := math.Max(1, math.Ceil(math.Log2(ways)))
	coreIdxBits := math.Max(1, math.Ceil(math.Log2(cores)))
	out.SDU = cores*2*(wayIdxBits+1)*p.FlopGates /* SD registers */ +
		cores*(8*(wayIdxBits+1)) /* comparators */ +
		300 /* FSM */ +
		ways*coreIdxBits*p.FlopGates /* register bank */
	return out
}

// Breakdown reports the area of one block or assembly in mm².
type Breakdown struct {
	Name     string
	SRAM     float64
	Logic    float64
	Children []Breakdown
}

// Total returns SRAM + logic + children.
func (b Breakdown) Total() float64 {
	t := b.SRAM + b.Logic
	for _, c := range b.Children {
		t += c.Total()
	}
	return t
}

// L15Area returns the area of one cluster's L1.5 Cache: SRAM ways plus the
// control microarchitecture.
func L15Area(g L15Geometry, p TechParams) (Breakdown, error) {
	if err := g.Validate(); err != nil {
		return Breakdown{}, err
	}
	gates := GateCounts(g, p)
	return Breakdown{
		Name:  "L1.5",
		SRAM:  float64(g.TotalBytes()) / 1024 * p.SRAMAreaPerKB,
		Logic: gates.Total() * p.GateArea,
	}, nil
}

// SoCConfig describes a full SoC for the overhead comparison.
type SoCConfig struct {
	Cores       int
	ClusterSize int

	// L1BytesPerCore is the baseline private L1 capacity (I$+D$).
	L1BytesPerCore int64

	// L15 is the per-cluster L1.5 geometry; nil for the conventional
	// variant.
	L15 *L15Geometry

	// ExtraL1BytesPerCore is the conventional variant's L1 enlargement
	// that equalises total capacity.
	ExtraL1BytesPerCore int64
}

// Paper16CoreProposed is the §5.4 16-core SoC with the L1.5 Cache.
func Paper16CoreProposed() SoCConfig {
	g := PhysicalL15()
	return SoCConfig{
		Cores:          16,
		ClusterSize:    4,
		L1BytesPerCore: 8 * 1024,
		L15:            &g,
	}
}

// Paper16CoreConventional is the equal-capacity L1-only comparison point.
func Paper16CoreConventional() SoCConfig {
	return SoCConfig{
		Cores:               16,
		ClusterSize:         4,
		L1BytesPerCore:      8 * 1024,
		ExtraL1BytesPerCore: 8 * 1024,
	}
}

// SoCArea computes the assembly area of the configured SoC.
func SoCArea(cfg SoCConfig, p TechParams) (Breakdown, error) {
	if cfg.Cores <= 0 || cfg.ClusterSize <= 0 || cfg.Cores%cfg.ClusterSize != 0 {
		return Breakdown{}, fmt.Errorf("area: %d cores not divisible into clusters of %d",
			cfg.Cores, cfg.ClusterSize)
	}
	clusters := cfg.Cores / cfg.ClusterSize

	coreSRAM := float64(cfg.L1BytesPerCore)/1024*p.SRAMAreaPerKB +
		float64(cfg.ExtraL1BytesPerCore)/1024*p.L1ExtensionAreaPerKB
	coreLogic := p.CoreLogicArea
	if cfg.L15 != nil {
		coreLogic += p.ISAExtensionArea
	}
	core := Breakdown{Name: "core", SRAM: coreSRAM, Logic: coreLogic}

	cluster := Breakdown{Name: "cluster"}
	for i := 0; i < cfg.ClusterSize; i++ {
		cluster.Children = append(cluster.Children, core)
	}
	if cfg.L15 != nil {
		l15, err := L15Area(*cfg.L15, p)
		if err != nil {
			return Breakdown{}, err
		}
		cluster.Children = append(cluster.Children, l15)
	}

	soc := Breakdown{Name: "soc", Logic: p.UncoreArea}
	for i := 0; i < clusters; i++ {
		soc.Children = append(soc.Children, cluster)
	}
	return soc, nil
}

// OverheadReport is the §5.4 comparison.
type OverheadReport struct {
	Proposed     Breakdown
	Conventional Breakdown
}

// CompareOverhead builds the paper's proposed-vs-conventional report for
// the given technology constants.
func CompareOverhead(p TechParams) (OverheadReport, error) {
	prop, err := SoCArea(Paper16CoreProposed(), p)
	if err != nil {
		return OverheadReport{}, err
	}
	conv, err := SoCArea(Paper16CoreConventional(), p)
	if err != nil {
		return OverheadReport{}, err
	}
	return OverheadReport{Proposed: prop, Conventional: conv}, nil
}

// Delta returns the absolute area increase of the proposed SoC (mm²).
func (r OverheadReport) Delta() float64 {
	return r.Proposed.Total() - r.Conventional.Total()
}

// Overhead returns the relative increase over the conventional SoC
// (0.0588 in the paper).
func (r OverheadReport) Overhead() float64 {
	return r.Delta() / r.Conventional.Total()
}

// ClusterArea returns the area of one cluster of the proposed SoC.
func (r OverheadReport) ClusterArea() float64 {
	return r.Proposed.Children[0].Total()
}

// CoresArea returns the area of the four processors within one cluster.
func (r OverheadReport) CoresArea() float64 {
	var t float64
	for _, c := range r.Proposed.Children[0].Children {
		if c.Name == "core" {
			t += c.Total()
		}
	}
	return t
}

// Format renders the §5.4 report.
func (r OverheadReport) Format() string {
	var sb strings.Builder
	sb.WriteString("§5.4 — hardware overhead (Synopsys 28nm, 16-core SoC @ 400 MHz)\n")
	fmt.Fprintf(&sb, "SoC with L1.5 Cache:     %.3f mm²\n", r.Proposed.Total())
	fmt.Fprintf(&sb, "  per cluster:           %.3f mm²\n", r.ClusterArea())
	fmt.Fprintf(&sb, "  4 processors:          %.3f mm²\n", r.CoresArea())
	fmt.Fprintf(&sb, "  ISA extension/core:    %.3f mm²\n", Synopsys28nm().ISAExtensionArea)
	fmt.Fprintf(&sb, "SoC with L1 only:        %.3f mm²\n", r.Conventional.Total())
	fmt.Fprintf(&sb, "Delta:                   %.3f mm² (%.2f%%)\n", r.Delta(), 100*r.Overhead())
	return sb.String()
}

// Package etm implements the Execution Time Model of Zhao et al. (RTNS'23),
// reference [15] of the paper, which the co-design uses to predict the
// communication-cost speed-up an edge enjoys when the producer's dependent
// data is held in n L1.5 Cache ways:
//
//	ET(e_{j,k}, n) = μ_{j,k} × (1 − α_{j,k} × n/⌈δ_j/κ⌉)
//
// where δ_j is the data volume produced by v_j, κ the capacity of one cache
// way, and α_{j,k} ∈ (0,1) the maximum fraction of the communication cost
// the cache can remove (0.7 in the paper's experiments).
package etm

import "l15cache/internal/dag"

// DefaultWayBytes is κ for the paper's L1.5 configuration: 2 KB per way.
const DefaultWayBytes = 2 * 1024

// WaysNeeded returns ⌈δ/κ⌉, the number of L1.5 ways required to hold the
// dependent data of a node. A node that produces no data needs no ways.
func WaysNeeded(dataBytes, wayBytes int64) int {
	if dataBytes <= 0 {
		return 0
	}
	if wayBytes <= 0 {
		panic("etm: non-positive way capacity")
	}
	return int((dataBytes + wayBytes - 1) / wayBytes)
}

// Cost returns ET(e, n): the communication cost of an edge with raw cost mu
// and speed-up ratio alpha when n ways of capacity wayBytes hold the
// producer's dataBytes of dependent data. n beyond ⌈δ/κ⌉ gives no further
// benefit; n = 0 returns the full cost. An edge whose producer emits no data
// has nothing to accelerate and keeps its raw cost.
func Cost(mu, alpha float64, dataBytes, wayBytes int64, n int) float64 {
	if n <= 0 || mu <= 0 {
		return mu
	}
	needed := WaysNeeded(dataBytes, wayBytes)
	if needed == 0 {
		return mu
	}
	frac := float64(n) / float64(needed)
	if frac > 1 {
		frac = 1
	}
	return mu * (1 - alpha*frac)
}

// Model evaluates the ETM for a whole task given a per-node way allocation.
// It adapts the allocation into the dag.EdgeWeight shape used by the
// longest-path dynamic programs and the schedulers.
type Model struct {
	Task     *dag.Task
	WayBytes int64

	// Ways[v] is the number of L1.5 ways holding v's dependent data
	// (v's local ways, turned global once v completes). The slice is
	// indexed by NodeID and dense — zero entries mean zero ways — so the
	// longest-path inner loop stays a plain array load.
	Ways []int
}

// NewModel returns a Model over the task with κ = wayBytes and no ways
// allocated yet.
func NewModel(t *dag.Task, wayBytes int64) *Model {
	return &Model{Task: t, WayBytes: wayBytes, Ways: make([]int, len(t.Nodes))}
}

// EdgeCost returns ET(e, Ways[e.From]).
func (m *Model) EdgeCost(e dag.Edge) float64 {
	return Cost(e.Cost, e.Alpha, m.Task.Node(e.From).Data, m.WayBytes, m.Ways[e.From])
}

// Weight returns m.EdgeCost as a dag.EdgeWeight.
func (m *Model) Weight() dag.EdgeWeight { return m.EdgeCost }

// TotalCommunication returns the sum of edge costs under the current
// allocation; with an empty allocation it equals Σμ.
func (m *Model) TotalCommunication() float64 {
	var s float64
	for _, e := range m.Task.Edges {
		s += m.EdgeCost(e)
	}
	return s
}

package etm

import (
	"math"
	"testing"
	"testing/quick"

	"l15cache/internal/dag"
)

func TestWaysNeeded(t *testing.T) {
	cases := []struct {
		data, way int64
		want      int
	}{
		{0, 2048, 0},
		{-5, 2048, 0},
		{1, 2048, 1},
		{2048, 2048, 1},
		{2049, 2048, 2},
		{16 * 1024, 2048, 8},
		{16*1024 + 1, 2048, 9},
	}
	for _, c := range cases {
		if got := WaysNeeded(c.data, c.way); got != c.want {
			t.Errorf("WaysNeeded(%d,%d) = %d, want %d", c.data, c.way, got, c.want)
		}
	}
}

func TestWaysNeededPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive way capacity did not panic")
		}
	}()
	WaysNeeded(100, 0)
}

func TestCost(t *testing.T) {
	const mu, alpha = 10.0, 0.5
	const data, way = int64(8192), int64(2048) // needs 4 ways

	if got := Cost(mu, alpha, data, way, 0); got != mu {
		t.Errorf("n=0: %g, want full cost %g", got, mu)
	}
	// Half the ways: ET = 10 × (1 − 0.5 × 2/4) = 7.5.
	if got := Cost(mu, alpha, data, way, 2); got != 7.5 {
		t.Errorf("n=2: %g, want 7.5", got)
	}
	// All ways: maximum speed-up α: ET = 10 × 0.5 = 5.
	if got := Cost(mu, alpha, data, way, 4); got != 5 {
		t.Errorf("n=4: %g, want 5", got)
	}
	// Extra ways give no further benefit.
	if got := Cost(mu, alpha, data, way, 16); got != 5 {
		t.Errorf("n=16: %g, want 5 (clamped)", got)
	}
	// No data to transmit: raw cost regardless of ways.
	if got := Cost(mu, alpha, 0, way, 4); got != mu {
		t.Errorf("δ=0: %g, want %g", got, mu)
	}
	// Zero cost stays zero.
	if got := Cost(0, alpha, data, way, 4); got != 0 {
		t.Errorf("μ=0: %g, want 0", got)
	}
}

// Property: ET is monotonically non-increasing in n and bounded by
// [μ(1−α), μ].
func TestQuickCostMonotoneBounded(t *testing.T) {
	f := func(rawMu float64, rawAlpha float64, rawData int64, n uint8) bool {
		mu := math.Abs(rawMu)
		if math.IsNaN(mu) || math.IsInf(mu, 0) {
			return true
		}
		alpha := math.Mod(math.Abs(rawAlpha), 0.999)
		data := rawData % (64 * 1024)
		if data < 0 {
			data = -data
		}
		data++ // ensure some data
		prev := Cost(mu, alpha, data, DefaultWayBytes, 0)
		for k := 1; k <= int(n%40)+1; k++ {
			c := Cost(mu, alpha, data, DefaultWayBytes, k)
			if c > prev+1e-9 {
				return false // must not increase with more ways
			}
			if c < mu*(1-alpha)-1e-9 || c > mu+1e-9 {
				return false // out of bounds
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelWeight(t *testing.T) {
	task := dag.Fig1Example()
	m := NewModel(task, DefaultWayBytes)

	// With no allocation the model degenerates to the raw costs.
	if got, want := m.TotalCommunication(), 18.0; got != want {
		t.Fatalf("TotalCommunication (no ways) = %g, want Σμ = %g", got, want)
	}
	rawCP := task.CriticalPathLength(dag.RawCost)
	if got := task.CriticalPathLength(m.Weight()); got != rawCP {
		t.Errorf("critical path with empty model = %g, want %g", got, rawCP)
	}

	// Give v1 (4096 B ⇒ 2 ways needed) its full 2 ways: its out-edges
	// (α=0.5) halve.
	m.Ways[0] = 2
	for _, to := range task.Succ(0) {
		e, _ := task.Edge(0, to)
		if got := m.EdgeCost(e); got != e.Cost*0.5 {
			t.Errorf("edge v1->%d cost = %g, want %g", to, got, e.Cost*0.5)
		}
	}
	if got := m.TotalCommunication(); got != 18.0-3 {
		t.Errorf("TotalCommunication = %g, want 15", got)
	}
	// λ must shrink accordingly.
	if got := task.CriticalPathLength(m.Weight()); got >= rawCP {
		t.Errorf("critical path did not shrink: %g >= %g", got, rawCP)
	}
}

package trace

import (
	"strings"
	"testing"

	"l15cache/internal/dag"
	"l15cache/internal/sched"
	"l15cache/internal/schedsim"
)

func record(t *testing.T) (*Timeline, []schedsim.InstanceStats) {
	t.Helper()
	task := dag.Fig1Example()
	prop, err := schedsim.NewProposed(task, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tl, stats, err := Record(prop.Alloc, prop, schedsim.Options{Cores: 4, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	return tl, stats
}

func TestRecordCapturesAllNodes(t *testing.T) {
	tl, stats := record(t)
	// 7 nodes × 2 instances.
	if len(tl.Spans) != 14 {
		t.Fatalf("spans = %d, want 14", len(tl.Spans))
	}
	// The timeline's makespan matches the simulator's.
	for inst := 0; inst < 2; inst++ {
		if got, want := tl.Makespan(inst), stats[inst].Makespan; got != want {
			t.Errorf("instance %d makespan = %g, want %g", inst, got, want)
		}
	}
}

func TestSpanInvariants(t *testing.T) {
	tl, _ := record(t)
	for _, s := range tl.Spans {
		if !(s.Start <= s.FetchEnd && s.FetchEnd <= s.End) {
			t.Errorf("span phases out of order: %+v", s)
		}
		if s.Core < 0 || s.Core >= tl.Cores {
			t.Errorf("span on core %d", s.Core)
		}
	}
	// No two spans overlap on the same core within an instance
	// (non-preemptive execution).
	for i, a := range tl.Spans {
		for _, b := range tl.Spans[i+1:] {
			if a.Instance != b.Instance || a.Core != b.Core {
				continue
			}
			if a.Start < b.End && b.Start < a.End {
				t.Errorf("overlap on core %d: %+v and %+v", a.Core, a, b)
			}
		}
	}
}

func TestUtilizationRange(t *testing.T) {
	tl, _ := record(t)
	u := tl.Utilization(0)
	if u <= 0 || u > 1 {
		t.Errorf("utilisation = %g", u)
	}
}

func TestGanttRendering(t *testing.T) {
	tl, _ := record(t)
	g := tl.Gantt(0, 60)
	if !strings.Contains(g, "core  0") || !strings.Contains(g, "makespan") {
		t.Errorf("gantt missing structure:\n%s", g)
	}
	// Every core row is present.
	if strings.Count(g, "\ncore ") != 4 {
		t.Errorf("gantt rows:\n%s", g)
	}
	// Fetch markers appear (edges of Fig. 1 have non-zero costs).
	if !strings.Contains(g, ".") {
		t.Error("no fetch phases rendered")
	}
	// An empty instance renders gracefully.
	if got := tl.Gantt(9, 40); !strings.Contains(got, "empty") {
		t.Errorf("empty instance: %q", got)
	}
}

func TestCSV(t *testing.T) {
	tl, _ := record(t)
	csv := tl.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 15 { // header + 14 spans
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "instance,core,node,name,start,fetch_end,end" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(csv, "v1") {
		t.Error("node names missing from CSV")
	}
}

func TestRecorderStandalone(t *testing.T) {
	task := dag.Chain("c", 3, 2, 3, 0.5, 1024)
	alloc, err := sched.LongestPathFirst(task)
	if err != nil {
		t.Fatal(err)
	}
	tl := New(task, 2)
	opt := schedsim.Options{Cores: 2, OnDispatch: tl.Recorder()}
	if _, err := schedsim.Run(alloc, rawPlat{}, opt); err != nil {
		t.Fatal(err)
	}
	if len(tl.Spans) != 3 {
		t.Errorf("spans = %d", len(tl.Spans))
	}
}

type rawPlat struct{}

func (rawPlat) Name() string { return "raw" }
func (rawPlat) ExecTime(v *dag.Node, warm bool, busyFrac float64) float64 {
	return v.WCET
}
func (rawPlat) CommCost(e dag.Edge, producer *dag.Node, sameCore bool, busyFrac float64) float64 {
	return e.Cost
}
func (rawPlat) Affinity() bool { return false }

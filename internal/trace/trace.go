// Package trace records the per-core execution timeline of a simulated DAG
// schedule and renders it as an ASCII Gantt chart or CSV — the inspection
// tool for understanding where a makespan comes from (fetch phases, idle
// gaps, priority decisions).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"l15cache/internal/dag"
	"l15cache/internal/sched"
	"l15cache/internal/schedsim"
)

// Span is one node execution: [Start, FetchEnd) is the communication fetch
// phase, [FetchEnd, End) the computation.
type Span struct {
	Instance int
	Core     int
	Node     dag.NodeID
	Start    float64
	FetchEnd float64
	End      float64
}

// Timeline collects the spans of a simulation run.
type Timeline struct {
	Task  *dag.Task
	Cores int
	Spans []Span
}

// New returns an empty timeline for the task on the given core count.
func New(task *dag.Task, cores int) *Timeline {
	return &Timeline{Task: task, Cores: cores}
}

// Recorder returns the schedsim.Options.OnDispatch hook that fills the
// timeline.
func (tl *Timeline) Recorder() func(instance, core int, v dag.NodeID, start, fetchEnd, end float64) {
	return func(instance, core int, v dag.NodeID, start, fetchEnd, end float64) {
		tl.Spans = append(tl.Spans, Span{
			Instance: instance, Core: core, Node: v,
			Start: start, FetchEnd: fetchEnd, End: end,
		})
	}
}

// Makespan returns the latest end time of the selected instance.
func (tl *Timeline) Makespan(instance int) float64 {
	var m float64
	for _, s := range tl.Spans {
		if s.Instance == instance && s.End > m {
			m = s.End
		}
	}
	return m
}

// Utilization returns the busy fraction of the cores over the selected
// instance's makespan.
func (tl *Timeline) Utilization(instance int) float64 {
	ms := tl.Makespan(instance)
	if ms <= 0 || tl.Cores == 0 {
		return 0
	}
	var busy float64
	for _, s := range tl.Spans {
		if s.Instance == instance {
			busy += s.End - s.Start
		}
	}
	return busy / (ms * float64(tl.Cores))
}

// Gantt renders the selected instance as an ASCII chart of the given width
// (columns). Fetch phases render as '.', computation as the node's last
// name character (or '#'), idle as ' '.
func (tl *Timeline) Gantt(instance, width int) string {
	if width < 10 {
		width = 10
	}
	ms := tl.Makespan(instance)
	if ms <= 0 {
		return "(empty timeline)\n"
	}
	scale := float64(width) / ms

	rows := make([][]byte, tl.Cores)
	for c := range rows {
		rows[c] = []byte(strings.Repeat(" ", width))
	}
	spans := make([]Span, 0, len(tl.Spans))
	for _, s := range tl.Spans {
		if s.Instance == instance {
			spans = append(spans, s)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

	for _, s := range spans {
		if s.Core < 0 || s.Core >= tl.Cores {
			continue
		}
		mark := byte('#')
		if tl.Task != nil && int(s.Node) < len(tl.Task.Nodes) {
			name := tl.Task.Node(s.Node).Name
			if len(name) > 0 {
				mark = name[len(name)-1]
			}
		}
		from := int(s.Start * scale)
		mid := int(s.FetchEnd * scale)
		to := int(s.End * scale)
		if to >= width {
			to = width - 1
		}
		for x := from; x <= to && x < width; x++ {
			if x < mid {
				rows[s.Core][x] = '.'
			} else {
				rows[s.Core][x] = mark
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "instance %d: makespan %.2f, core utilisation %.0f%%\n",
		instance, ms, 100*tl.Utilization(instance))
	for c, row := range rows {
		fmt.Fprintf(&sb, "core %2d |%s|\n", c, string(row))
	}
	fmt.Fprintf(&sb, "        0%s%.4g\n", strings.Repeat(" ", width-1), ms)
	sb.WriteString("        ('.' fetch phase, letters/# computation)\n")
	return sb.String()
}

// CSV renders every span as comma-separated rows with a header.
func (tl *Timeline) CSV() string {
	var sb strings.Builder
	sb.WriteString("instance,core,node,name,start,fetch_end,end\n")
	for _, s := range tl.Spans {
		name := ""
		if tl.Task != nil && int(s.Node) < len(tl.Task.Nodes) {
			name = tl.Task.Node(s.Node).Name
		}
		fmt.Fprintf(&sb, "%d,%d,%d,%s,%.6g,%.6g,%.6g\n",
			s.Instance, s.Core, s.Node, name, s.Start, s.FetchEnd, s.End)
	}
	return sb.String()
}

// Record is a convenience wrapper: it simulates the schedule on the
// platform with tracing enabled and returns the timeline together with the
// per-instance statistics.
func Record(alloc *sched.Result, plat schedsim.Platform, opt schedsim.Options) (*Timeline, []schedsim.InstanceStats, error) {
	if opt.Cores == 0 {
		opt.Cores = 8
	}
	tl := New(alloc.Task, opt.Cores)
	opt.OnDispatch = tl.Recorder()
	stats, err := schedsim.Run(alloc, plat, opt)
	if err != nil {
		return nil, nil, err
	}
	return tl, stats, nil
}

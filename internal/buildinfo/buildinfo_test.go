package buildinfo

import (
	"strings"
	"testing"
)

func TestMap(t *testing.T) {
	m := Map()
	for _, key := range []string{"go", "module", "version"} {
		if m[key] == "" {
			t.Errorf("Map()[%q] empty", key)
		}
	}
	if !strings.HasPrefix(m["go"], "go") {
		t.Errorf("go version = %q", m["go"])
	}
	if m["module"] != "l15cache" {
		t.Errorf("module = %q, want l15cache", m["module"])
	}
}

func TestString(t *testing.T) {
	s := String()
	if !strings.Contains(s, "l15cache") || !strings.Contains(s, "go") {
		t.Errorf("String() = %q, want module and go version", s)
	}
}

// TestMapCopies guards the accessor against callers mutating shared state.
func TestMapCopies(t *testing.T) {
	a := Map()
	a["go"] = "tampered"
	if b := Map(); b["go"] == "tampered" {
		t.Error("Map returns a shared map")
	}
}

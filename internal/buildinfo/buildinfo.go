// Package buildinfo surfaces the binary's build identity — module version,
// VCS revision/commit time/dirty flag and the Go toolchain — read once from
// runtime/debug.ReadBuildInfo. Every archived artifact the tools produce is
// attributable through it: the metrics snapshot carries the same block as a
// `build` header, the flight server reports it from /healthz, and every
// cmd/ tool prints it under -version.
//
// The block is a pure function of the binary, so embedding it in the
// -metrics snapshot keeps the determinism contract intact: two runs of one
// binary serialise identical headers, and the CI byte-compare jobs
// (kernel equivalence, memo warm-run identity, telemetry on/off) all
// compare artifacts produced by a single build.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the attribution block stamped into metrics snapshots, /healthz
// responses and the cmd tools' -version output.
type Info struct {
	// GoVersion is the toolchain that built the binary (runtime.Version).
	GoVersion string
	// Path is the main module path ("l15cache").
	Path string
	// Version is the main module version; "(devel)" for source builds.
	Version string
	// Revision is the VCS commit hash; "" outside a VCS checkout (e.g.
	// test binaries, `go run` from an exported tree).
	Revision string
	// Time is the VCS commit time (RFC 3339); "" when unknown.
	Time string
	// Modified reports a dirty working tree at build time.
	Modified bool
}

var (
	once   sync.Once
	cached Info
)

// Get returns the build identity, computed once per process.
func Get() Info {
	once.Do(func() {
		cached.GoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		cached.Path = bi.Main.Path
		cached.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Revision = s.Value
			case "vcs.time":
				cached.Time = s.Value
			case "vcs.modified":
				cached.Modified = s.Value == "true"
			}
		}
	})
	return cached
}

// String renders the one-line -version form, e.g.
//
//	l15cache (devel) rev 1a2b3c4d+dirty (2026-08-09T10:00:00Z) go1.24.1
func (i Info) String() string {
	s := i.Path
	if s == "" {
		s = "l15cache"
	}
	if i.Version != "" {
		s += " " + i.Version
	}
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if i.Modified {
			rev += "+dirty"
		}
		s += " rev " + rev
		if i.Time != "" {
			s += " (" + i.Time + ")"
		}
	}
	return s + " " + i.GoVersion
}

// String returns Get().String() — the -version line of every cmd tool.
func String() string { return Get().String() }

// Map flattens the identity into fixed string keys for JSON embedding
// (the metrics snapshot's `build` header and /healthz). The key set is
// constant, so the serialised form is deterministic per binary.
func Map() map[string]string {
	i := Get()
	return map[string]string{
		"go":       i.GoVersion,
		"module":   i.Path,
		"version":  i.Version,
		"revision": i.Revision,
		"vcs_time": i.Time,
		"modified": fmt.Sprintf("%t", i.Modified),
	}
}

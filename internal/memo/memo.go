// Package memo is the content-addressed trial result cache: it maps the
// SHA-256 of a canonical, versioned encoding of a trial's full input
// (DAG/workload descriptors + experiment config + kernel mode + seed; see
// Encoder) to the trial's JSON-encoded result, so a trial anyone has
// computed before is never computed again.
//
// The cache is sound only because of the determinism contract the rest of
// the module enforces (DESIGN.md §9, §11, §12): a trial's result is a
// bit-identical function of its canonical input — independent of worker
// count, scheduling order, host, wall clock and kernel implementation —
// and the lint suite (puritycheck, walltime, hotalloc) mechanically
// rejects code that would break that. Under that contract "same key" is
// exactly "same result", and a cache hit is indistinguishable from a
// recomputation down to the last byte of every artifact; the memo-smoke
// CI job enforces the indistinguishability with a byte compare.
//
// Two tiers:
//
//   - an in-memory LRU bounded at Options.MaxEntries, for repeated points
//     within one process (overlapping sweeps, repeated Map calls);
//   - an optional on-disk store (Options.Dir; the cmd tools' -memo-dir),
//     one file per key written via temp-file + atomic rename, so a
//     crash can never leave a half-written entry behind. Reads are
//     corruption-tolerant: an entry that fails to parse, carries the
//     wrong key, or fails its checksum is deleted and treated as a miss,
//     and the recomputed result repairs the file. This generalises the
//     runner's -checkpoint files from "resume my run" to "never recompute
//     anyone's trial": a memo dir is shareable between runs, sweeps,
//     tools and machines.
//
// The cache publishes memo.hits, memo.hits_disk, memo.misses,
// memo.stores, memo.store_errors, memo.evictions and memo.corrupt
// counters through internal/metrics, so every -metrics snapshot shows
// how much work the cache absorbed.
//
// Unlike the simulator packages, memo may read the filesystem: a stored
// value only ever *replaces* a computation with that computation's own
// bytes, never feeds a different value into one. The puritycheck analyzer
// encodes exactly this exemption.
package memo

import (
	"encoding/hex"
	"fmt"
	"os"
	"sync"

	"l15cache/internal/metrics"
)

// Key is the SHA-256 of a canonical trial encoding — the trial's
// content address.
type Key [32]byte

// String returns the key in lower-case hex (also the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// DefaultMaxEntries bounds the in-memory tier when Options.MaxEntries is
// zero. Entries are small JSON documents (tens to hundreds of bytes), so
// the default tier tops out around a few MB.
const DefaultMaxEntries = 1 << 14

// Options configures a Cache.
type Options struct {
	// Dir, when non-empty, enables the on-disk tier rooted there. The
	// directory is created if missing and may be shared between
	// concurrent runs: writes are atomic renames and the key encodes the
	// full trial input, so two runs can only ever write identical bytes
	// under one key.
	Dir string

	// MaxEntries bounds the in-memory LRU tier; zero or negative means
	// DefaultMaxEntries. Eviction only drops the memory copy — disk
	// entries persist.
	MaxEntries int

	// Registry receives the hit/miss/store/evict/corrupt counters; nil
	// means metrics.Default.
	Registry *metrics.Registry
}

// entry is one resident LRU node: an intrusive doubly-linked ring element
// ordered most- to least-recently used from head.next.
type entry struct {
	key        Key
	val        []byte
	prev, next *entry
}

// Cache is the two-tier store. All methods are safe for concurrent use
// and safe on a nil receiver (every lookup misses, every store is a
// no-op), so callers can thread an optional *Cache without guards.
type Cache struct {
	mu      sync.Mutex
	max     int
	dir     string
	entries map[Key]*entry
	head    entry // ring sentinel

	hits, hitsDisk, misses      *metrics.Counter
	stores, storeErrs           *metrics.Counter
	evictions, corrupt, skipped *metrics.Counter
}

// New builds a cache. With a Dir it creates the directory eagerly so a
// misconfigured path fails at startup, not mid-sweep.
func New(o Options) (*Cache, error) {
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o777); err != nil {
			return nil, fmt.Errorf("memo: creating cache dir: %w", err)
		}
	}
	max := o.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	reg := o.Registry
	if reg == nil {
		reg = metrics.Default
	}
	c := &Cache{
		max:     max,
		dir:     o.Dir,
		entries: make(map[Key]*entry),
		// Counters are created (not lazily) so a snapshot always carries
		// the full memo series, zeros included — the memo-smoke CI job
		// asserts on them.
		hits:      reg.Counter("memo.hits"),
		hitsDisk:  reg.Counter("memo.hits_disk"),
		misses:    reg.Counter("memo.misses"),
		stores:    reg.Counter("memo.stores"),
		storeErrs: reg.Counter("memo.store_errors"),
		evictions: reg.Counter("memo.evictions"),
		corrupt:   reg.Counter("memo.corrupt"),
		skipped:   reg.Counter("memo.skipped"),
	}
	c.head.prev, c.head.next = &c.head, &c.head
	return c, nil
}

// FromFlags builds the cache a cmd tool's -memo/-memo-dir flags describe:
// nil when both are off, memory-only for bare -memo, two-tier when a
// directory is given (which implies -memo).
func FromFlags(enabled bool, dir string) (*Cache, error) {
	if !enabled && dir == "" {
		return nil, nil
	}
	return New(Options{Dir: dir})
}

// Get returns a copy of the value stored under key. The memory tier is
// consulted first; on a miss the disk tier (if configured) is read,
// verified and promoted into memory. Both tiers missing — or the disk
// entry failing verification, which also deletes it — counts one miss.
func (c *Cache) Get(key Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		moveToFront(&c.head, e)
		val := append([]byte(nil), e.val...)
		c.mu.Unlock()
		c.hits.Inc()
		return val, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if val, ok := c.readDisk(key); ok {
			c.insert(key, val)
			c.hits.Inc()
			c.hitsDisk.Inc()
			return append([]byte(nil), val...), true
		}
	}
	c.misses.Inc()
	return nil, false
}

// Put stores value under key in both tiers. The value must be a valid
// JSON document — the disk envelope embeds it verbatim, and every caller
// stores encoding/json output anyway. A disk-tier write failure is
// reported (and counted as memo.store_errors) but leaves the memory tier
// populated — the cache is an optimisation, and callers are expected to
// treat Put errors as non-fatal.
func (c *Cache) Put(key Key, value []byte) error {
	if c == nil {
		return nil
	}
	c.insert(key, append([]byte(nil), value...))
	c.stores.Inc()
	if c.dir == "" {
		return nil
	}
	if err := c.writeDisk(key, value); err != nil {
		c.storeErrs.Inc()
		return err
	}
	return nil
}

// Discard removes key from both tiers and counts the entry as corrupt.
// Callers use it when a stored value fails *their* decoding (schema
// drift within one format version); the next Put repairs the entry.
func (c *Cache) Discard(key Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		unlink(e)
		delete(c.entries, key)
	}
	c.mu.Unlock()
	if c.dir != "" {
		// Best-effort: the file may never have existed.
		if err := os.Remove(c.path(key)); err != nil && !os.IsNotExist(err) {
			c.storeErrs.Inc()
		}
	}
	c.corrupt.Inc()
}

// Len returns the number of entries resident in the memory tier.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Skipped counts one memoization opportunity that was declined (e.g. a
// Map call without a fingerprint, or a side-effect-bearing trial), so
// snapshots distinguish "cache cold" from "cache not applicable".
func (c *Cache) Skipped() {
	if c == nil {
		return
	}
	c.skipped.Inc()
}

// insert adds or refreshes an entry and evicts from the LRU tail past the
// size bound. It takes c.mu itself; callers must not hold it.
func (c *Cache) insert(key Key, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.val = val
		moveToFront(&c.head, e)
		return
	}
	e := &entry{key: key, val: val}
	c.entries[key] = e
	linkFront(&c.head, e)
	for len(c.entries) > c.max {
		last := c.head.prev
		unlink(last)
		delete(c.entries, last.key)
		c.evictions.Inc()
	}
}

// The ring manipulators are free functions over entry nodes (the sentinel
// included): they touch no Cache field, so the lock discipline lives
// entirely in the exported methods and insert.

func linkFront(head, e *entry) {
	e.prev = head
	e.next = head.next
	e.prev.next = e
	e.next.prev = e
}

func unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func moveToFront(head, e *entry) {
	unlink(e)
	linkFront(head, e)
}

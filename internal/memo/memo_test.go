package memo

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"l15cache/internal/dag"
	"l15cache/internal/metrics"
)

// goldenTask builds the fixed task the golden vectors hash.
func goldenTask() *dag.Task {
	t := dag.New("t", 100, 100)
	a := t.AddNode("a", 3, 4096)
	b := t.AddNode("b", 5, 2048)
	t.MustAddEdge(a, b, 7, 0.5)
	return t
}

// goldenEncoder builds the fixed encoding the golden vectors hash.
func goldenEncoder() *Encoder {
	e := NewEncoder("golden")
	e.Str("sys", "Prop")
	e.I64("zeta", 16)
	e.U64("cycles", 123456789)
	e.F64("util", 0.6)
	e.Bool("partitioned", false)
	e.Bytes("blob", []byte{0xde, 0xad, 0xbe, 0xef})
	e.Task("task", goldenTask())
	return e
}

// TestGoldenKeys pins the canonical encoding: if any of these hashes
// change, every key in every shared memo dir silently changes meaning,
// so a drift must be an explicit FormatVersion / CanonicalVersion bump
// with new vectors, never an accident.
func TestGoldenKeys(t *testing.T) {
	if got, want := goldenEncoder().Key().String(),
		"5d65df165f15fe25c181f496f2f40c21215c45d742e5504e5335b083861b1f49"; got != want {
		t.Errorf("encoder key drifted:\n got %s\nwant %s", got, want)
	}
	if got, want := TrialKey(goldenEncoder().Fingerprint(), 3, -42).String(),
		"9d338355a4653709e124b83d424298560e0d86f2148bd0ab74d5c958af1ee6f5"; got != want {
		t.Errorf("trial key drifted:\n got %s\nwant %s", got, want)
	}
	if got, want := NewEncoder("golden2").Key().String(),
		"d101d2e5b2181af988c136676aecbd2cd7a78b166888440167e29018f2146b2e"; got != want {
		t.Errorf("empty-domain key drifted:\n got %s\nwant %s", got, want)
	}
	const wantCanon = "0140590000000000004059000000000000" + // v1, T, D
		"00000002" + // 2 nodes
		"4008000000000000" + "0000000000001000" + "0000000000000000" + // a
		"4014000000000000" + "0000000000000800" + "0000000000000000" + // b
		"00000001" + // 1 edge
		"00000000" + "00000001" + "401c000000000000" + "3fe0000000000000"
	if got := hex.EncodeToString(goldenTask().CanonicalBytes()); got != wantCanon {
		t.Errorf("canonical task encoding drifted:\n got %s\nwant %s", got, wantCanon)
	}
}

// TestKeySensitivity checks that every component of a trial's identity
// actually reaches the key: domain, field name, field value, field order,
// task contents, shard index and shard seed.
func TestKeySensitivity(t *testing.T) {
	base := goldenEncoder().Key()

	variants := map[string]*Encoder{}
	e := NewEncoder("other-domain")
	variants["domain"] = e

	e = NewEncoder("golden")
	e.Str("sys2", "Prop") // renamed field
	variants["field name"] = e

	e = NewEncoder("golden")
	e.Str("sys", "CMP|L1") // changed value
	variants["field value"] = e

	e = NewEncoder("golden")
	e.I64("zeta", 16)
	e.Str("sys", "Prop") // swapped order
	variants["field order"] = e

	e = NewEncoder("golden")
	e.Str("sys", "Prop")
	e.I64("zeta", 16)
	e.U64("cycles", 123456789)
	e.F64("util", 0.6)
	e.Bool("partitioned", false)
	e.Bytes("blob", []byte{0xde, 0xad, 0xbe, 0xef})
	task := goldenTask()
	task.Nodes[0].WCET += 1e-12 // one ulp-ish tweak must re-key
	e.Task("task", task)
	variants["task contents"] = e

	for name, v := range variants {
		if v.Key() == base {
			t.Errorf("%s change did not change the key", name)
		}
	}

	fp := goldenEncoder().Fingerprint()
	k := TrialKey(fp, 3, -42)
	if TrialKey(fp, 4, -42) == k {
		t.Error("shard index does not reach the trial key")
	}
	if TrialKey(fp, 3, -41) == k {
		t.Error("shard seed does not reach the trial key")
	}
}

func key(i int) Key { return TrialKey([]byte("k"), i, 0) }

func newCache(t *testing.T, o Options) (*Cache, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	o.Registry = reg
	c, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, reg
}

// TestLRUEviction pins the memory-tier bound and the least-recently-used
// eviction order.
func TestLRUEviction(t *testing.T) {
	c, reg := newCache(t, Options{MaxEntries: 3})
	for i := 0; i < 3; i++ {
		if err := c.Put(key(i), []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Touch 0 so 1 becomes the LRU victim.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("warm entry missing")
	}
	if err := c.Put(key(3), []byte("3")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (bound violated)", c.Len())
	}
	if _, ok := c.Get(key(1)); ok {
		t.Error("LRU entry 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if v, ok := c.Get(key(i)); !ok || string(v) != fmt.Sprintf("%d", i) {
			t.Errorf("entry %d lost or wrong: %q, %v", i, v, ok)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["memo.evictions"] != 1 {
		t.Errorf("evictions = %d, want 1", snap.Counters["memo.evictions"])
	}
	if snap.Counters["memo.misses"] != 1 {
		t.Errorf("misses = %d, want 1", snap.Counters["memo.misses"])
	}
}

// TestDiskTier checks cross-process reuse: a fresh cache over the same
// dir serves the stored value from disk and promotes it into memory.
func TestDiskTier(t *testing.T) {
	dir := t.TempDir()
	c1, _ := newCache(t, Options{Dir: dir})
	if err := c1.Put(key(1), []byte(`{"v":1}`)); err != nil {
		t.Fatalf("Put: %v", err)
	}

	c2, reg := newCache(t, Options{Dir: dir})
	v, ok := c2.Get(key(1))
	if !ok || string(v) != `{"v":1}` {
		t.Fatalf("disk tier miss: %q, %v", v, ok)
	}
	snap := reg.Snapshot()
	if snap.Counters["memo.hits_disk"] != 1 || snap.Counters["memo.hits"] != 1 {
		t.Errorf("disk hit not counted: %v", snap.Counters)
	}
	// Promotion: a second Get must come from memory (hits_disk stays 1).
	if _, ok := c2.Get(key(1)); !ok {
		t.Fatal("promoted entry missing")
	}
	if got := reg.Snapshot().Counters["memo.hits_disk"]; got != 1 {
		t.Errorf("hits_disk = %d after promotion, want 1", got)
	}
	// Eviction must not touch the disk copy.
	c3, _ := newCache(t, Options{Dir: dir, MaxEntries: 1})
	if err := c3.Put(key(2), []byte(`"a"`)); err != nil {
		t.Fatal(err)
	}
	if err := c3.Put(key(3), []byte(`"b"`)); err != nil {
		t.Fatal(err) // evicts key(2) from memory
	}
	if v, ok := c3.Get(key(2)); !ok || string(v) != `"a"` {
		t.Errorf("evicted entry not re-served from disk: %q, %v", v, ok)
	}
}

// TestDiskCorruption feeds the reader every corruption class: truncated
// JSON, a foreign key under the right filename, a damaged value with a
// stale checksum, and a wrong format version. Each must read as a miss,
// delete the file, count memo.corrupt, and be repaired by the next Put.
func TestDiskCorruption(t *testing.T) {
	cases := map[string]string{
		"truncated":    `{"format":1,"key":"`,
		"wrong key":    `{"format":1,"key":"` + key(99).String() + `","sum":"ab","value":1}`,
		"bad checksum": `{"format":1,"key":"%s","sum":"deadbeef","value":1}`,
		"wrong format": `{"format":0,"key":"%s","sum":"deadbeef","value":1}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, reg := newCache(t, Options{Dir: dir})
			k := key(7)
			path := filepath.Join(dir, k.String()+".json")
			body := content
			if name == "bad checksum" || name == "wrong format" {
				body = fmt.Sprintf(content, k.String())
			}
			if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(k); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt entry not deleted (err=%v)", err)
			}
			if got := reg.Snapshot().Counters["memo.corrupt"]; got != 1 {
				t.Errorf("corrupt = %d, want 1", got)
			}
			// Recompute-and-repair: a Put rewrites a valid entry.
			if err := c.Put(k, []byte("42")); err != nil {
				t.Fatalf("repairing Put: %v", err)
			}
			c2, _ := newCache(t, Options{Dir: dir})
			if v, ok := c2.Get(k); !ok || string(v) != "42" {
				t.Errorf("repaired entry unreadable: %q, %v", v, ok)
			}
		})
	}
}

// TestDiscard pins the caller-side corruption path: the entry disappears
// from both tiers and counts as corrupt.
func TestDiscard(t *testing.T) {
	dir := t.TempDir()
	c, reg := newCache(t, Options{Dir: dir})
	if err := c.Put(key(5), []byte(`"x"`)); err != nil {
		t.Fatal(err)
	}
	c.Discard(key(5))
	if _, ok := c.Get(key(5)); ok {
		t.Error("discarded entry still served")
	}
	if got := reg.Snapshot().Counters["memo.corrupt"]; got != 1 {
		t.Errorf("corrupt = %d, want 1", got)
	}
}

// TestNilCache pins the nil-receiver contract every caller relies on.
func TestNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(key(0)); ok {
		t.Error("nil cache hit")
	}
	if err := c.Put(key(0), []byte("x")); err != nil {
		t.Errorf("nil Put: %v", err)
	}
	c.Discard(key(0))
	c.Skipped()
	if c.Len() != 0 {
		t.Error("nil Len != 0")
	}
}

// TestFromFlags pins the flag mapping: off, memory-only, dir-implies-on.
func TestFromFlags(t *testing.T) {
	if c, err := FromFlags(false, ""); err != nil || c != nil {
		t.Errorf("FromFlags(false, \"\") = %v, %v; want nil cache", c, err)
	}
	if c, err := FromFlags(true, ""); err != nil || c == nil {
		t.Errorf("FromFlags(true, \"\") = %v, %v; want cache", c, err)
	}
	dir := filepath.Join(t.TempDir(), "sub")
	c, err := FromFlags(false, dir)
	if err != nil || c == nil {
		t.Fatalf("FromFlags(false, dir) = %v, %v; want cache", c, err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Errorf("memo dir not created: %v", err)
	}
}

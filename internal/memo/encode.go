package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"l15cache/internal/dag"
)

// FormatVersion is the version byte of the canonical trial encoding. It
// is hashed into every key, so bumping it orphans every stored entry at
// once — the escape hatch for any change to the encoding below or to the
// semantics of what a stored result means.
const FormatVersion byte = 1

// domainPrefix opens every encoding: a fixed module tag plus the format
// version. Hash-domain separation at the root — no other SHA-256 user in
// this module (or elsewhere) hashes byte streams starting with this
// prefix, so memo keys cannot collide with foreign digests.
const domainPrefix = "l15cache/memo\x00"

// Field tag bytes. Every field is tagged, so a float can never be
// reinterpreted as an int by a reader with a stale schema, and two
// adjacent variable-length fields can never re-split ambiguously.
const (
	tagStr   byte = 0x01
	tagI64   byte = 0x02
	tagU64   byte = 0x03
	tagF64   byte = 0x04
	tagBool  byte = 0x05
	tagBytes byte = 0x06
	tagTask  byte = 0x07
	tagTrial byte = 0xFF // closes a fingerprint when a trial key is derived
)

// Encoder builds the canonical, versioned byte encoding of a trial input
// that memo keys hash. Fields are appended as (tag, name, value) records
// — name included — so reordering, renaming or retyping a config field
// changes every key it contributes to, and an accidental field-order swap
// between writer and reader cannot alias two different inputs.
//
// The rule for what to encode (DESIGN.md §12): every input that can
// influence the trial's result, and nothing that cannot. Observability
// attachments (recorders, tracers, registries) and operational knobs
// (worker counts, checkpoint paths) stay out; model parameters, kernel
// mode and workload descriptors go in.
type Encoder struct {
	buf []byte
}

// NewEncoder starts an encoding for the given domain — the sweep family,
// e.g. "prop-makespan" or "casestudy". Two sweeps whose trials compute
// different things must use different domains even if their numeric
// configurations coincide; two call sites computing the *same* trial
// function should share one, so their caches interoperate.
func NewEncoder(domain string) *Encoder {
	e := &Encoder{buf: make([]byte, 0, 256)}
	e.buf = append(e.buf, domainPrefix...)
	e.buf = append(e.buf, FormatVersion)
	e.appendLenBytes([]byte(domain))
	return e
}

func (e *Encoder) appendLenBytes(b []byte) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *Encoder) field(tag byte, name string) {
	e.buf = append(e.buf, tag)
	e.appendLenBytes([]byte(name))
}

// Str appends a named string field.
func (e *Encoder) Str(name, v string) {
	e.field(tagStr, name)
	e.appendLenBytes([]byte(v))
}

// I64 appends a named signed-integer field (ints of any width widen here).
func (e *Encoder) I64(name string, v int64) {
	e.field(tagI64, name)
	e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(v))
}

// U64 appends a named unsigned-integer field.
func (e *Encoder) U64(name string, v uint64) {
	e.field(tagU64, name)
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// F64 appends a named float field as its exact IEEE-754 bit pattern —
// no decimal rendering, so values differing in one ulp key differently.
func (e *Encoder) F64(name string, v float64) {
	e.field(tagF64, name)
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bool appends a named boolean field.
func (e *Encoder) Bool(name string, v bool) {
	e.field(tagBool, name)
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Bytes appends a named opaque byte field (length-prefixed).
func (e *Encoder) Bytes(name string, v []byte) {
	e.field(tagBytes, name)
	e.appendLenBytes(v)
}

// Task appends a named DAG task field using the canonical task encoding
// of internal/dag (its own version byte travels inside the field, so a
// dag-layout bump also re-keys every trial that embeds a task).
func (e *Encoder) Task(name string, t *dag.Task) {
	e.field(tagTask, name)
	// Length prefix first: encode into place, then patch the length.
	lenAt := len(e.buf)
	e.buf = append(e.buf, 0, 0, 0, 0)
	e.buf = t.AppendCanonical(e.buf)
	binary.BigEndian.PutUint32(e.buf[lenAt:], uint32(len(e.buf)-lenAt-4))
}

// Fingerprint returns a copy of the encoding so far: the per-Map-call
// half of a trial's identity, shared by all its shards. Hand it to
// runner.Config.Fingerprint; the runner derives per-shard keys with
// TrialKey.
func (e *Encoder) Fingerprint() []byte {
	return append([]byte(nil), e.buf...)
}

// Key hashes the encoding so far into a cache key — for callers whose
// whole input is the fingerprint (no per-shard identity).
func (e *Encoder) Key() Key {
	return Key(sha256.Sum256(e.buf))
}

// TrialKey derives the key of one shard of a sweep: the fingerprint
// closed with the trial tag, the shard index and the shard seed. Index
// and seed are both included — the seed alone already depends on (root,
// index), but a trial function is handed both and may legitimately read
// either, so both belong to the trial's identity.
func TrialKey(fingerprint []byte, index int, seed int64) Key {
	h := sha256.New()
	h.Write(fingerprint)
	var tail [17]byte
	tail[0] = tagTrial
	binary.BigEndian.PutUint64(tail[1:9], uint64(index))
	binary.BigEndian.PutUint64(tail[9:17], uint64(seed))
	h.Write(tail[:])
	var k Key
	h.Sum(k[:0])
	return k
}

package memo

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The disk tier stores one JSON envelope per key, named <hex(key)>.json.
// The envelope carries the format version, the key itself and a checksum
// of the value, so a read can verify the entry end to end:
//
//	{"format":1,"key":"<hex64>","sum":"<hex sha256(value)>","value":...}
//
// The key in the filename is untrusted (files get copied and renamed);
// the key *inside* the envelope is what binds the value to the trial
// input, and the sum is what detects a damaged value that still parses
// as JSON. Any verification failure deletes the file and reads as a
// miss — the recomputed result then repairs the entry.

// diskEnvelope is the on-disk JSON shape.
type diskEnvelope struct {
	Format int             `json:"format"`
	Key    string          `json:"key"`
	Sum    string          `json:"sum"`
	Value  json.RawMessage `json:"value"`
}

// path returns the entry file for key.
func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, key.String()+".json")
}

// readDisk loads and verifies the entry for key. Verification failures
// (unparsable, wrong format, wrong key, bad checksum) delete the file,
// count memo.corrupt and report a miss; a missing file is a plain miss.
func (c *Cache) readDisk(key Key) ([]byte, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.corrupt.Inc() // unreadable is as good as corrupt
		}
		return nil, false
	}
	var env diskEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		c.dropCorrupt(key)
		return nil, false
	}
	if env.Format != int(FormatVersion) || env.Key != key.String() || len(env.Value) == 0 {
		c.dropCorrupt(key)
		return nil, false
	}
	sum := sha256.Sum256(env.Value)
	want, err := hex.DecodeString(env.Sum)
	if err != nil || !bytes.Equal(sum[:], want) {
		c.dropCorrupt(key)
		return nil, false
	}
	return env.Value, true
}

// dropCorrupt removes a failed entry so the next computed result can
// repair it, and counts the corruption.
func (c *Cache) dropCorrupt(key Key) {
	if err := os.Remove(c.path(key)); err != nil && !os.IsNotExist(err) {
		c.storeErrs.Inc()
	}
	c.corrupt.Inc()
}

// writeDisk persists the envelope via temp file + atomic rename: a
// concurrent reader sees either the old complete entry or the new
// complete entry, never a torn write, and two concurrent writers of the
// same key rename identical bytes over each other harmlessly.
func (c *Cache) writeDisk(key Key, value []byte) error {
	sum := sha256.Sum256(value)
	env := diskEnvelope{
		Format: int(FormatVersion),
		Key:    key.String(),
		Sum:    hex.EncodeToString(sum[:]),
		Value:  json.RawMessage(value),
	}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("memo: encoding entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, ".memo-*")
	if err != nil {
		return fmt.Errorf("memo: writing entry: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		if rerr := os.Remove(tmp.Name()); rerr != nil {
			return fmt.Errorf("memo: cleaning up entry temp file: %w", rerr)
		}
		if werr != nil {
			return fmt.Errorf("memo: writing entry: %w", werr)
		}
		return fmt.Errorf("memo: writing entry: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return fmt.Errorf("memo: writing entry: %w", err)
	}
	return nil
}

package flight

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// The two export formats. JSONL is the greppable, diffable form (one
// object per line, fields in fixed order, shortest-round-trip float
// formatting — identical values encode to identical bytes). The binary
// form is the compact one: fixed 68-byte little-endian records behind a
// 24-byte header. Both start with a magic line/prefix so ReadFile can
// sniff them.

// jsonlMagic is the first line of a JSONL recording: a header object
// carrying the format version and the dropped-event count.
const jsonlVersion = 1

// binMagic opens a binary recording.
var binMagic = [8]byte{'L', '1', '5', 'F', 'L', 'T', '0', '1'}

// binRecordSize is the fixed encoded size of one event.
const binRecordSize = 68

// AppendJSONL appends the deterministic JSONL encoding of the recording
// to dst and returns the extended slice. The first line is a header
// object ({"flight":1,"events":N,"dropped":D}); each following line is
// one event with fields in fixed order.
func AppendJSONL(dst []byte, rec Recording) []byte {
	dst = append(dst, `{"flight":`...)
	dst = strconv.AppendInt(dst, jsonlVersion, 10)
	dst = append(dst, `,"events":`...)
	dst = strconv.AppendInt(dst, int64(len(rec.Events)), 10)
	dst = append(dst, `,"dropped":`...)
	dst = strconv.AppendUint(dst, rec.Dropped, 10)
	dst = append(dst, "}\n"...)
	for _, e := range rec.Events {
		dst = appendEventJSON(dst, e)
		dst = append(dst, '\n')
	}
	return dst
}

func appendEventJSON(dst []byte, e Event) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"k":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, `","t":`...)
	dst = appendFloat(dst, e.Time)
	dst = append(dst, `,"task":`...)
	dst = strconv.AppendInt(dst, int64(e.Task), 10)
	dst = append(dst, `,"job":`...)
	dst = strconv.AppendInt(dst, int64(e.Job), 10)
	dst = append(dst, `,"node":`...)
	dst = strconv.AppendInt(dst, int64(e.Node), 10)
	dst = append(dst, `,"core":`...)
	dst = strconv.AppendInt(dst, int64(e.Core), 10)
	dst = append(dst, `,"cl":`...)
	dst = strconv.AppendInt(dst, int64(e.Cluster), 10)
	dst = append(dst, `,"wave":`...)
	dst = strconv.AppendInt(dst, int64(e.Wave), 10)
	dst = append(dst, `,"a":`...)
	dst = appendFloat(dst, e.A)
	dst = append(dst, `,"b":`...)
	dst = appendFloat(dst, e.B)
	dst = append(dst, `,"c":`...)
	dst = appendFloat(dst, e.C)
	dst = append(dst, '}')
	return dst
}

// appendFloat uses shortest-round-trip formatting, which maps equal
// float64 values to equal byte strings — the property the determinism
// contract rests on.
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// jsonlHeader mirrors the header line for decoding.
type jsonlHeader struct {
	Flight  int    `json:"flight"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
}

// jsonlEvent mirrors one event line for decoding.
type jsonlEvent struct {
	Seq  uint64  `json:"seq"`
	K    string  `json:"k"`
	T    float64 `json:"t"`
	Task int32   `json:"task"`
	Job  int32   `json:"job"`
	Node int32   `json:"node"`
	Core int32   `json:"core"`
	Cl   int32   `json:"cl"`
	Wave int32   `json:"wave"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	C    float64 `json:"c"`
}

// kindByName inverts kindNames for decoding.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// DecodeJSONL parses a JSONL recording.
func DecodeJSONL(r io.Reader) (Recording, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var rec Recording
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return rec, fmt.Errorf("flight: %w", err)
		}
		return rec, fmt.Errorf("flight: empty recording")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Flight == 0 {
		return rec, fmt.Errorf("flight: not a JSONL recording (bad header line)")
	}
	if hdr.Flight != jsonlVersion {
		return rec, fmt.Errorf("flight: unsupported recording version %d", hdr.Flight)
	}
	rec.Dropped = hdr.Dropped
	rec.Events = make([]Event, 0, hdr.Events)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return rec, fmt.Errorf("flight: event %d: %w", len(rec.Events), err)
		}
		kind, ok := kindByName[je.K]
		if !ok {
			return rec, fmt.Errorf("flight: event %d: unknown kind %q", len(rec.Events), je.K)
		}
		rec.Events = append(rec.Events, Event{
			Seq: je.Seq, Kind: kind, Time: je.T,
			Task: je.Task, Job: je.Job, Node: je.Node,
			Core: je.Core, Cluster: je.Cl, Wave: je.Wave,
			A: je.A, B: je.B, C: je.C,
		})
	}
	if err := sc.Err(); err != nil {
		return rec, fmt.Errorf("flight: %w", err)
	}
	return rec, nil
}

// AppendBinary appends the compact binary encoding to dst: an 8-byte
// magic, event and dropped counts, then fixed-width little-endian
// records.
func AppendBinary(dst []byte, rec Recording) []byte {
	dst = append(dst, binMagic[:]...)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(rec.Events)))
	binary.LittleEndian.PutUint64(hdr[8:], rec.Dropped)
	dst = append(dst, hdr[:]...)
	var b [binRecordSize]byte
	for _, e := range rec.Events {
		binary.LittleEndian.PutUint64(b[0:], e.Seq)
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(e.Time))
		binary.LittleEndian.PutUint64(b[16:], math.Float64bits(e.A))
		binary.LittleEndian.PutUint64(b[24:], math.Float64bits(e.B))
		binary.LittleEndian.PutUint64(b[32:], math.Float64bits(e.C))
		binary.LittleEndian.PutUint32(b[40:], uint32(e.Task))
		binary.LittleEndian.PutUint32(b[44:], uint32(e.Job))
		binary.LittleEndian.PutUint32(b[48:], uint32(e.Node))
		binary.LittleEndian.PutUint32(b[52:], uint32(e.Core))
		binary.LittleEndian.PutUint32(b[56:], uint32(e.Cluster))
		binary.LittleEndian.PutUint32(b[60:], uint32(e.Wave))
		b[64] = byte(e.Kind)
		b[65], b[66], b[67] = 0, 0, 0
		dst = append(dst, b[:]...)
	}
	return dst
}

// DecodeBinary parses a binary recording.
func DecodeBinary(data []byte) (Recording, error) {
	var rec Recording
	if len(data) < len(binMagic)+16 || !bytes.Equal(data[:len(binMagic)], binMagic[:]) {
		return rec, fmt.Errorf("flight: not a binary recording (bad magic)")
	}
	n := binary.LittleEndian.Uint64(data[8:])
	rec.Dropped = binary.LittleEndian.Uint64(data[16:])
	body := data[24:]
	if uint64(len(body)) != n*binRecordSize {
		return rec, fmt.Errorf("flight: truncated recording: %d bytes for %d events", len(body), n)
	}
	rec.Events = make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		b := body[i*binRecordSize:]
		kind := Kind(b[64])
		if int(kind) >= KindCount {
			return rec, fmt.Errorf("flight: event %d: unknown kind %d", i, kind)
		}
		rec.Events = append(rec.Events, Event{
			Seq:     binary.LittleEndian.Uint64(b[0:]),
			Time:    math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
			A:       math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
			B:       math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
			C:       math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
			Task:    int32(binary.LittleEndian.Uint32(b[40:])),
			Job:     int32(binary.LittleEndian.Uint32(b[44:])),
			Node:    int32(binary.LittleEndian.Uint32(b[48:])),
			Core:    int32(binary.LittleEndian.Uint32(b[52:])),
			Cluster: int32(binary.LittleEndian.Uint32(b[56:])),
			Wave:    int32(binary.LittleEndian.Uint32(b[60:])),
			Kind:    kind,
		})
	}
	return rec, nil
}

// WriteFile serialises the recording to path: binary when the path ends
// in ".bin", JSONL otherwise.
func WriteFile(path string, rec Recording) error {
	var data []byte
	if isBinPath(path) {
		data = AppendBinary(nil, rec)
	} else {
		data = AppendJSONL(nil, rec)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	return nil
}

// ReadFile loads a recording, sniffing the format from the content.
func ReadFile(path string) (Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Recording{}, fmt.Errorf("flight: %w", err)
	}
	if len(data) >= len(binMagic) && bytes.Equal(data[:len(binMagic)], binMagic[:]) {
		return DecodeBinary(data)
	}
	return DecodeJSONL(bytes.NewReader(data))
}

func isBinPath(path string) bool {
	return len(path) > 4 && path[len(path)-4:] == ".bin"
}

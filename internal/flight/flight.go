// Package flight is the simulator's flight recorder: a typed,
// cycle-stamped, ring-buffered log of every scheduling and
// cache-reconfiguration *decision*, built for post-hoc forensics rather
// than visualisation. It complements the untyped Chrome-trace tracer of
// internal/metrics — the tracer answers "what happened when" for a human
// looking at swimlanes; the flight recorder answers "why did the schedule
// come out this way" for the internal/forensics analyzers and cmd/explain.
//
// The design contract, in order of importance:
//
//   - Determinism. A recording is a pure function of the simulated run:
//     events carry simulated time only (cycles or task-time units, never
//     the wall clock), the encoders emit fields in a fixed order with
//     deterministic float formatting, and per-run recorders compose with
//     the internal/runner harness so exported bytes are identical at any
//     -workers count.
//   - Zero-alloc hot path. Event is a fixed-size struct of scalars (no
//     maps, no strings); Emit copies it into a preallocated ring under a
//     mutex and allocates nothing.
//   - Graceful saturation. When the ring wraps, the oldest events are
//     overwritten and counted in Dropped, which both exporters surface —
//     a recording never silently pretends to be complete.
//
// A nil *Recorder is a valid no-op sink, so the simulators thread one
// through unconditionally and pay a single pointer test when recording is
// off.
package flight

import "sync"

// Kind discriminates the event types of the recording schema (DESIGN.md
// §10). The scalar payload fields A, B, C of Event are interpreted per
// kind, as documented on each constant.
type Kind uint8

// The event kinds. Planning-time events (emitted while Algorithm 1 runs)
// carry Wave and use Time for the wave index; runtime events carry the
// simulated clock in Time.
const (
	// KindSchedStart opens one scheduling run: A=ζ (ways), B=κ (way
	// bytes), C=1 when the run allocates ways (Alg. 1) or 0 for the
	// priority-only baselines.
	KindSchedStart Kind = iota

	// KindWave is one wave transition of Alg. 1: Wave is the wave index,
	// A=wave size (nodes examined), B=Σ Ω (ways in use entering the
	// wave).
	KindWave

	// KindLambda is one λ_j recomputation after a wave: Wave is the wave
	// just examined, A=max λ over the task (the surviving longest path).
	KindLambda

	// KindPlanWays is one F(v_j, Ω, ζ) grant during planning: Node is
	// v_j, Wave the wave index, A=ways granted, B=Σ Ω after the grant,
	// C=ζ.
	KindPlanWays

	// KindGVConvert is one local→global visibility conversion: a way
	// group turning readable by the successors. Planning-time: Node is
	// the new owner, Wave the wave index, A=group size. Hardware (L1.5):
	// Core is the issuing core, Cluster the cache, A=global ways after.
	KindGVConvert

	// KindRelease is one job release: Job is the release index, Time the
	// release instant, A=absolute deadline (0 when the workload has
	// none).
	KindRelease

	// KindDispatch is one node placement: Time=start, A=fetch phase
	// duration, B=execute phase duration, C=L1.5 ways held during the
	// span (0 for baselines).
	KindDispatch

	// KindGrant is one runtime Walloc decision at dispatch: A=ways the
	// plan demanded, B=ways actually granted, C=ways assigned in the
	// cluster after the grant. B < A is a supply shortfall the forensics
	// attribute fetch inflation to.
	KindGrant

	// KindEdge is one ETM application at dispatch: Node is the consumer,
	// A=producer node ID, B=raw edge cost μ, C=effective cost after the
	// ETM reduction (C=B when no ways were visible).
	KindEdge

	// KindFinish is one node completion: Time=finish, A=span duration
	// (fetch+execute).
	KindFinish

	// KindSDU is one Supply-Demand-Unit occupation: the FSM configuring
	// A ways one at a time. Event-driven simulators emit Time=request,
	// B=busy-until, C=latency (B−Time). The cycle-accurate L1.5 emits
	// one event per way moved: Node=way index, A=1 (assign) or 0
	// (revoke), B=owner core after.
	KindSDU

	// KindWayFree is one reclamation: a node's ways turning reclaimable
	// after the last consumer finished. A=ways freed, B=ways assigned in
	// the cluster after.
	KindWayFree

	// KindDeadline is one deadline check at job completion (or horizon
	// cutoff): Time=completion, A=absolute deadline, B=1 when missed, 0
	// when met, C=response time normalised by the relative deadline.
	KindDeadline
)

// kindNames is indexed by Kind; the encoders and String share it.
var kindNames = [...]string{
	KindSchedStart: "sched_start",
	KindWave:       "wave",
	KindLambda:     "lambda",
	KindPlanWays:   "plan_ways",
	KindGVConvert:  "gv_convert",
	KindRelease:    "release",
	KindDispatch:   "dispatch",
	KindGrant:      "grant",
	KindEdge:       "edge",
	KindFinish:     "finish",
	KindSDU:        "sdu",
	KindWayFree:    "way_free",
	KindDeadline:   "deadline",
}

// String returns the schema name of the kind ("kind(N)" when out of
// range, so corrupt recordings still render).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + itoa(int(k)) + ")"
}

// KindCount is the number of defined kinds (for validation and tests).
const KindCount = int(KindDeadline) + 1

// Event is one recorded decision. All fields are scalars so an Event
// never escapes to the heap on the emit path. Integer fields use -1 for
// "not applicable" (e.g. Core of a planning-time event).
type Event struct {
	Seq     uint64  // assigned by the recorder, dense from 0
	Kind    Kind    //
	Time    float64 // simulated time: cycles or task-time units
	Task    int32   // task index in the simulated set (-1 n/a)
	Job     int32   // release index of the task (-1 n/a)
	Node    int32   // DAG node / way index (-1 n/a)
	Core    int32   // core (-1 n/a)
	Cluster int32   // cluster (-1 n/a)
	Wave    int32   // Alg. 1 wave index (-1 for runtime events)
	A, B, C float64 // kind-specific payload (see Kind docs)
}

// DefaultCap is the ring capacity of recorders built by New.
const DefaultCap = 1 << 18

// Recorder is the fixed-capacity ring. A nil *Recorder is a valid no-op
// sink. The mutex makes Emit safe under the concurrent experiment
// harnesses; determinism across worker counts comes from using one
// recorder per simulated run (see Merge), not from serialising unrelated
// runs into one ring.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	seq     uint64
	dropped uint64
}

// New returns a recorder with the default capacity.
func New() *Recorder { return NewCap(DefaultCap) }

// NewCap returns a recorder holding up to capacity events (minimum 1).
func NewCap(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// Emit records one event, assigning its sequence number. Safe for
// concurrent use and on a nil recorder; allocates nothing.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = r.seq
	r.seq++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
		r.wrapped = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// EventsSince returns the retained events with Seq >= seq, oldest first —
// the polling primitive behind the /events SSE stream.
func (r *Recorder) EventsSince(seq uint64) []Event {
	evs := r.Events()
	lo := 0
	for lo < len(evs) && evs[lo].Seq < seq {
		lo++
	}
	return evs[lo:]
}

// Dropped returns how many events the ring overwrote.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Recording is the export form of a recorder: the retained events plus
// the saturation evidence. The forensics analyzers consume this.
type Recording struct {
	Events  []Event
	Dropped uint64
}

// Snapshot captures the recorder as a Recording.
func (r *Recorder) Snapshot() Recording {
	return Recording{Events: r.Events(), Dropped: r.Dropped()}
}

// Merge concatenates per-run recordings in argument order, renumbering
// sequence numbers densely. This is how a sweep composes with the
// determinism contract: each trial records into its own recorder, the
// runner reduces in index order, and the merged export is byte-identical
// at any worker count.
func Merge(recs ...Recording) Recording {
	var out Recording
	for _, rec := range recs {
		out.Dropped += rec.Dropped
		for _, e := range rec.Events {
			e.Seq = uint64(len(out.Events))
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// itoa is a minimal positive-int formatter so String avoids fmt (and its
// allocation) on the error path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

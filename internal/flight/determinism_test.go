package flight_test

import (
	"bytes"
	"context"
	"testing"

	"l15cache/internal/flight"
	"l15cache/internal/metrics"
	"l15cache/internal/rtsim"
	"l15cache/internal/runner"
	"l15cache/internal/workload"
)

// recordSweep runs a 4-trial real-time sweep at the given worker count —
// one recorder per trial, merged in shard order — and returns the JSONL
// export bytes.
func recordSweep(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := runner.Config{
		Name:     "flight-determinism",
		RootSeed: 9,
		Options:  runner.Options{Workers: workers},
		Registry: metrics.NewRegistry(), // keep Default clean for other tests
	}
	recs, err := runner.Map(context.Background(), cfg, 4,
		func(_ context.Context, sh runner.Shard) (flight.Recording, error) {
			set := workload.DefaultTaskSetParams()
			set.Tasks = 3
			set.TargetUtilization = 0.5 * 8
			tasks, err := workload.TaskSet(sh.RNG(), set)
			if err != nil {
				return flight.Recording{}, err
			}
			rc := rtsim.DefaultConfig()
			rec := flight.New()
			rc.Recorder = rec
			if _, err := rtsim.Run(tasks, rtsim.KindProp, rc); err != nil {
				return flight.Recording{}, err
			}
			return rec.Snapshot(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return flight.AppendJSONL(nil, flight.Merge(recs...))
}

// TestDeterminismAcrossWorkers is the recording half of the determinism
// contract: the same seed produces a byte-identical merged recording at
// any worker count, because each trial records into its own recorder and
// the runner reduces in shard order.
func TestDeterminismAcrossWorkers(t *testing.T) {
	one := recordSweep(t, 1)
	four := recordSweep(t, 4)
	if len(one) == 0 {
		t.Fatal("empty recording")
	}
	if !bytes.Equal(one, four) {
		t.Fatalf("recordings differ across worker counts: %d vs %d bytes", len(one), len(four))
	}
}

package flight

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"l15cache/internal/buildinfo"
	"l15cache/internal/metrics"
	"l15cache/internal/telemetry"
)

// Server is the live-inspection endpoint the cmd tools expose with -http:
//
//	/metrics         registry snapshot — Prometheus text exposition by
//	                 default, JSON with ?format=json or Accept: application/json
//	/metrics/history the telemetry sampler's retained ring as JSONL
//	/metrics/stream  SSE feed of sampler points (the dashboard's source)
//	/events          SSE stream of flight events
//	/dashboard       self-contained live dashboard page
//	/healthz         liveness probe with build attribution
//
// Every metrics view merges the deterministic registry with the
// operational telemetry registry, so operators see one namespace while
// archived artifacts keep reading only the deterministic registry. The
// server reads the wall clock only to pace SSE polling — the flight
// events it streams stay cycle-stamped, so serving never perturbs a
// recording (the walltime analyzer's flight carve-out encodes exactly
// this split).
type Server struct {
	// Registry backs the deterministic half of /metrics; nil means
	// metrics.Default.
	Registry *metrics.Registry
	// Runtime backs the operational half; nil means telemetry.Runtime.
	Runtime *metrics.Registry
	// Recorder backs /events; nil serves an empty stream.
	Recorder *Recorder
	// Sampler feeds /metrics/history and /metrics/stream; nil makes the
	// server own one over the merged registries, started lazily and
	// stopped by Shutdown.
	Sampler *telemetry.Sampler
	// Poll is the SSE polling interval (default 250ms).
	Poll time.Duration

	mu         sync.Mutex
	srv        *http.Server
	closed     chan struct{}
	ownSampler *telemetry.Sampler
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/history", s.handleHistory)
	mux.HandleFunc("/metrics/stream", s.handleStream)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/dashboard", telemetry.HandleDashboard)
	return mux
}

// Serve serves the handler on ln until the listener fails or Shutdown is
// called (which reports nil, not http.ErrServerClosed).
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	if s.closed == nil {
		s.closed = make(chan struct{})
	}
	s.srv = srv
	s.mu.Unlock()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("flight: http: %w", err)
	}
	return nil
}

// ListenAndServe serves the handler on addr until the listener fails or
// Shutdown is called. It returns the bound address through the callback
// before blocking, so callers can log the resolved port of ":0"
// listeners.
func (s *Server) ListenAndServe(addr string, onListen func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("flight: http: %w", err)
	}
	if onListen != nil {
		onListen(ln.Addr().String())
	}
	return s.Serve(ln)
}

// Shutdown gracefully stops a Serve/ListenAndServe server: open SSE
// streams are told to drain (their next poll tick exits), in-flight
// requests finish within ctx, and the server-owned sampler stops. Safe to
// call more than once and before Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed == nil {
		s.closed = make(chan struct{})
	}
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	srv, own := s.srv, s.ownSampler
	s.srv, s.ownSampler = nil, nil
	s.mu.Unlock()

	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if own != nil {
		own.Stop()
	}
	if err != nil {
		return fmt.Errorf("flight: shutdown: %w", err)
	}
	return nil
}

func (s *Server) registry() *metrics.Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return metrics.Default
}

func (s *Server) runtime() *metrics.Registry {
	if s.Runtime != nil {
		return s.Runtime
	}
	return telemetry.Runtime
}

// snapshot is the merged live view all metrics endpoints serve.
func (s *Server) snapshot() metrics.Snapshot {
	return telemetry.Merge(s.registry().Snapshot(), s.runtime().Snapshot())
}

// sampler returns the configured sampler, or lazily starts a
// server-owned one over the merged registries.
func (s *Server) sampler() *telemetry.Sampler {
	if s.Sampler != nil {
		return s.Sampler
	}
	poll := s.poll()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ownSampler == nil {
		s.ownSampler = telemetry.NewSampler(s.snapshot, poll, 0)
		s.ownSampler.Start()
	}
	return s.ownSampler
}

// closedCh returns the shutdown-drain channel (created on demand so
// Handler-only uses, e.g. tests, work without Serve).
func (s *Server) closedCh() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed == nil {
		s.closed = make(chan struct{})
	}
	return s.closed
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	body := struct {
		OK      bool              `json:"ok"`
		Events  int               `json:"events"`
		Dropped uint64            `json:"dropped"`
		Build   map[string]string `json:"build"`
	}{
		OK:      true,
		Events:  s.Recorder.Len(),
		Dropped: s.Recorder.Dropped(),
		Build:   buildinfo.Map(),
	}
	data, err := json.Marshal(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		log.Printf("flight: healthz response write: %v", err)
	}
}

// wantsJSON reports whether the request negotiated the JSON snapshot
// form; the default is the Prometheus text exposition.
func wantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	var body []byte
	if wantsJSON(r) {
		data, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		body = append(data, '\n')
	} else {
		w.Header().Set("Content-Type", telemetry.ContentType)
		body = telemetry.Exposition(snap)
	}
	if _, err := w.Write(body); err != nil {
		// The response is already committed; nothing to send the client
		// but the truncation must not pass silently in the logs.
		log.Printf("flight: metrics response write: %v", err)
	}
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	s.sampler().HandleHistory(w, r)
}

// handleStream streams sampler points as SSE: one "event: sample" message
// per captured Sample, data = its JSON encoding. The stream replays the
// retained ring (or starts at ?since=SEQ) and then follows live samples
// until the client disconnects or the server shuts down.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	sam := s.sampler()
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		fmt.Sscanf(v, "%d", &since)
	}
	tick := time.NewTicker(s.poll())
	defer tick.Stop()
	closed := s.closedCh()

	for {
		for _, sample := range sam.SamplesSince(since) {
			since = sample.Seq + 1
			data, err := json.Marshal(sample)
			if err != nil {
				continue
			}
			if _, err := w.Write(append(append([]byte("event: sample\ndata: "), data...), '\n', '\n')); err != nil {
				s.dropClient(err)
				return
			}
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-closed:
			return
		case <-tick.C:
		}
	}
}

func (s *Server) poll() time.Duration {
	if s.Poll > 0 {
		return s.Poll
	}
	return 250 * time.Millisecond
}

// dropClient accounts one SSE client lost mid-write (typically a slow or
// vanished consumer whose connection backed up).
func (s *Server) dropClient(err error) {
	s.runtime().Counter("flight.sse_client_drops").Inc()
	log.Printf("flight: sse client dropped: %v", err)
}

// handleEvents streams flight events as SSE: one "event: flight" message
// per recorded event, data = the deterministic JSONL encoding. The
// stream starts at the oldest retained event (or ?since=SEQ) and polls
// the ring until the client disconnects or the server shuts down. The
// operational registry tracks connected clients (flight.sse_clients) and
// mid-write drops (flight.sse_client_drops).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	clients := s.runtime().Gauge("flight.sse_clients")
	clients.Add(1)
	defer clients.Add(-1)

	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		fmt.Sscanf(v, "%d", &since)
	}
	tick := time.NewTicker(s.poll())
	defer tick.Stop()
	closed := s.closedCh()

	var buf []byte
	for {
		for _, e := range s.Recorder.EventsSince(since) {
			since = e.Seq + 1
			buf = buf[:0]
			buf = append(buf, "event: flight\ndata: "...)
			buf = appendEventJSON(buf, e)
			buf = append(buf, "\n\n"...)
			if _, err := w.Write(buf); err != nil {
				s.dropClient(err)
				return
			}
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-closed:
			return
		case <-tick.C:
		}
	}
}

package flight

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"l15cache/internal/metrics"
)

// Server is the live-inspection endpoint the cmd tools expose with
// -http: a JSON snapshot of the metrics registry, a Server-Sent-Events
// stream of flight events, and a liveness probe. It reads the wall clock
// only to pace the SSE polling loop — the events it streams stay
// cycle-stamped, so serving never perturbs a recording (the walltime
// analyzer's flight carve-out encodes exactly this split).
type Server struct {
	// Registry backs /metrics; nil means metrics.Default.
	Registry *metrics.Registry
	// Recorder backs /events; nil serves an empty stream.
	Recorder *Recorder
	// Poll is the SSE polling interval (default 250ms).
	Poll time.Duration
}

// Handler returns the route mux: /metrics, /events, /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	return mux
}

// ListenAndServe serves the handler on addr until the listener fails. It
// returns the bound address through the callback before blocking, so
// callers can log the resolved port of ":0" listeners.
func (s *Server) ListenAndServe(addr string, onListen func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("flight: http: %w", err)
	}
	if onListen != nil {
		onListen(ln.Addr().String())
	}
	return http.Serve(ln, s.Handler())
}

func (s *Server) registry() *metrics.Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return metrics.Default
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ok":true,"events":%d,"dropped":%d}`+"\n",
		s.Recorder.Len(), s.Recorder.Dropped())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	data, err := s.registry().Snapshot().JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(data, '\n')); err != nil {
		// The response is already committed; nothing to send the client
		// but the truncation must not pass silently in the logs.
		log.Printf("flight: metrics response write: %v", err)
	}
}

// handleEvents streams flight events as SSE: one "event: flight" message
// per recorded event, data = the deterministic JSONL encoding. The
// stream starts at the oldest retained event (or ?since=SEQ) and polls
// the ring until the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		fmt.Sscanf(v, "%d", &since)
	}
	poll := s.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()

	var buf []byte
	for {
		for _, e := range s.Recorder.EventsSince(since) {
			since = e.Seq + 1
			buf = buf[:0]
			buf = append(buf, "event: flight\ndata: "...)
			buf = appendEventJSON(buf, e)
			buf = append(buf, "\n\n"...)
			if _, err := w.Write(buf); err != nil {
				return
			}
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

package flight

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"l15cache/internal/metrics"
	"l15cache/internal/telemetry"
)

// testServer builds a Server over private registries so tests never
// touch the process-wide defaults.
func testServer(events int) (*Server, *metrics.Registry) {
	rec := NewCap(64)
	for i := 0; i < events; i++ {
		rec.Emit(Event{Kind: KindDispatch, Time: float64(i), Task: 0, Job: 0, Node: int32(i), Core: 0, Cluster: 0, Wave: -1})
	}
	det := metrics.NewRegistry()
	det.Counter("soc.l1.hits").Add(7)
	rt := metrics.NewRegistry()
	return &Server{
		Registry: det,
		Runtime:  rt,
		Recorder: rec,
		Poll:     2 * time.Millisecond,
	}, rt
}

func TestMetricsContentNegotiation(t *testing.T) {
	s, _ := testServer(0)
	h := s.Handler()

	// Default: Prometheus text exposition, valid under the strict parser.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if ct := w.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("default Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	if _, err := telemetry.Parse(w.Body.Bytes()); err != nil {
		t.Errorf("default /metrics not valid exposition: %v", err)
	}
	if !strings.Contains(w.Body.String(), `soc_l1_hits_total{name="soc.l1.hits"} 7`) {
		t.Errorf("deterministic counter missing:\n%s", w.Body.String())
	}

	// ?format=json and Accept: application/json negotiate the snapshot.
	for _, build := range []func() *http.Request{
		func() *http.Request { return httptest.NewRequest("GET", "/metrics?format=json", nil) },
		func() *http.Request {
			r := httptest.NewRequest("GET", "/metrics", nil)
			r.Header.Set("Accept", "application/json")
			return r
		},
	} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, build())
		if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("negotiated Content-Type = %q", ct)
		}
		var snap struct {
			Counters map[string]uint64 `json:"counters"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
			t.Fatalf("JSON form: %v", err)
		}
		if snap.Counters["soc.l1.hits"] != 7 {
			t.Errorf("JSON counters = %v", snap.Counters)
		}
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	s, _ := testServer(3)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	var body struct {
		OK     bool              `json:"ok"`
		Events int               `json:"events"`
		Build  map[string]string `json:"build"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.OK || body.Events != 3 {
		t.Errorf("healthz = %+v", body)
	}
	if body.Build["module"] != "l15cache" || body.Build["go"] == "" {
		t.Errorf("healthz build attribution = %v", body.Build)
	}
}

func TestHistoryEndpoint(t *testing.T) {
	s, _ := testServer(0)
	sam := telemetry.NewSampler(s.Registry.Snapshot, time.Hour, 8)
	s.Sampler = sam
	sam.SampleNow()
	sam.SampleNow()

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/metrics/history", nil))
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/jsonl") {
		t.Errorf("history Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("history returned %d lines, want 2:\n%s", len(lines), w.Body.String())
	}
	var sample telemetry.Sample
	if err := json.Unmarshal([]byte(lines[1]), &sample); err != nil {
		t.Fatal(err)
	}
	if sample.Seq != 1 || sample.Counters["soc.l1.hits"] != 7 {
		t.Errorf("history sample = %+v", sample)
	}
}

func TestDashboardServed(t *testing.T) {
	s, _ := testServer(0)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/dashboard", nil))
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("dashboard Content-Type = %q", ct)
	}
	if !strings.Contains(w.Body.String(), "EventSource") {
		t.Error("dashboard page missing the SSE wiring")
	}
}

// sseClient connects to path on a live server and returns the body
// reader plus a cancel tearing the connection down.
func sseClient(t *testing.T, base, path string) (*bufio.Reader, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", base+path, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return bufio.NewReader(resp.Body), cancel
}

// readSSEEvent reads one "event:"/"data:" pair from an SSE stream. It
// reads synchronously on the caller's goroutine so successive calls on
// one reader never race for lines; the per-test timeout (each caller
// cancels its client context via t.Cleanup) bounds a stuck stream.
func readSSEEvent(t *testing.T, r *bufio.Reader) (event, data string) {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read (have event=%q): %v", event, err)
		}
		line = strings.TrimRight(line, "\n")
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			event = v
		}
		if v, ok := strings.CutPrefix(line, "data: "); ok {
			return event, v
		}
	}
}

func TestEventsSSE(t *testing.T) {
	s, rt := testServer(2)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	r, cancel := sseClient(t, hs.URL, "/events")
	defer cancel() // also mid-test below; idempotent

	// Delivery: the retained events replay in order.
	for want := 0; want < 2; want++ {
		event, data := readSSEEvent(t, r)
		if event != "flight" {
			t.Fatalf("event type = %q", event)
		}
		var e struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"k"`
		}
		if err := json.Unmarshal([]byte(data), &e); err != nil {
			t.Fatalf("event payload %q: %v", data, err)
		}
		if e.Seq != uint64(want) || e.Kind != "dispatch" {
			t.Errorf("event %d = %+v", want, e)
		}
	}

	// A connected client is visible in the operational gauge.
	if g := rt.Snapshot().Gauges["flight.sse_clients"]; g != 1 {
		t.Errorf("flight.sse_clients = %v while connected, want 1", g)
	}

	// A live event published after connect is delivered on a later poll.
	s.Recorder.Emit(Event{Kind: KindFinish, Wave: -1})
	if event, _ := readSSEEvent(t, r); event != "flight" {
		t.Fatalf("live event type = %q", event)
	}

	// Disconnect cleanup: the gauge returns to zero.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.Snapshot().Gauges["flight.sse_clients"] == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("flight.sse_clients = %v after disconnect, want 0",
		rt.Snapshot().Gauges["flight.sse_clients"])
}

func TestEventsSince(t *testing.T) {
	s, _ := testServer(5)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	r, cancel := sseClient(t, hs.URL, "/events?since=3")
	defer cancel()
	_, data := readSSEEvent(t, r)
	var e struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal([]byte(data), &e); err != nil {
		t.Fatal(err)
	}
	if e.Seq != 3 {
		t.Errorf("first replayed seq = %d, want 3", e.Seq)
	}
}

func TestStreamSSE(t *testing.T) {
	s, _ := testServer(0)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	r, cancel := sseClient(t, hs.URL, "/metrics/stream")
	defer cancel()
	event, data := readSSEEvent(t, r)
	if event != "sample" {
		t.Fatalf("stream event type = %q", event)
	}
	var sample telemetry.Sample
	if err := json.Unmarshal([]byte(data), &sample); err != nil {
		t.Fatalf("stream payload %q: %v", data, err)
	}
	if sample.Counters["soc.l1.hits"] != 7 {
		t.Errorf("stream sample counters = %v", sample.Counters)
	}
}

// failingFlusher satisfies http.ResponseWriter + http.Flusher but fails
// every body write, imitating a slow client whose connection backed up.
type failingFlusher struct {
	header http.Header
}

func (f *failingFlusher) Header() http.Header       { return f.header }
func (f *failingFlusher) WriteHeader(int)           {}
func (f *failingFlusher) Flush()                    {}
func (f *failingFlusher) Write([]byte) (int, error) { return 0, errors.New("client gone") }

func TestSlowClientDropCounter(t *testing.T) {
	s, rt := testServer(1)
	w := &failingFlusher{header: make(http.Header)}
	s.handleEvents(w, httptest.NewRequest("GET", "/events", nil))
	if c := rt.Snapshot().Counters["flight.sse_client_drops"]; c != 1 {
		t.Errorf("flight.sse_client_drops = %d, want 1", c)
	}
	// The events stream also keeps the client gauge balanced on the error
	// path.
	if g := rt.Snapshot().Gauges["flight.sse_clients"]; g != 0 {
		t.Errorf("flight.sse_clients = %v after drop, want 0", g)
	}
	// Same accounting on the sampler stream.
	s.handleStream(w, httptest.NewRequest("GET", "/metrics/stream", nil))
	if c := rt.Snapshot().Counters["flight.sse_client_drops"]; c != 2 {
		t.Errorf("flight.sse_client_drops = %d after stream drop, want 2", c)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsSSE proves Shutdown unblocks open SSE streams: a
// connected /events client sees EOF and Serve returns nil.
func TestShutdownDrainsSSE(t *testing.T) {
	s, _ := testServer(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	r, cancel := sseClient(t, "http://"+ln.Addr().String(), "/events")
	defer cancel()
	readSSEEvent(t, r) // the stream is live

	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("Serve returned %v after Shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// The drained client hits EOF rather than hanging.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE client still blocked after Shutdown")
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

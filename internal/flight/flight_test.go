package flight_test

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"l15cache/internal/flight"
)

// ev builds a distinguishable event for codec tests.
func ev(i int) flight.Event {
	return flight.Event{
		Kind: flight.Kind(i % flight.KindCount),
		Time: float64(i) * 1.5,
		Task: int32(i), Job: int32(i % 3), Node: int32(i % 7),
		Core: int32(i % 8), Cluster: int32(i % 2), Wave: -1,
		A: float64(i) / 3, B: -1, C: float64(i * i),
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *flight.Recorder
	r.Emit(ev(0))
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Error("nil recorder is not a no-op sink")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := flight.NewCap(4)
	for i := 0; i < 10; i++ {
		r.Emit(ev(i))
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// The ring keeps the newest events, oldest first, with dense Seq.
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event %d: seq = %d, want %d", i, e.Seq, want)
		}
	}
	if got := r.Snapshot(); got.Dropped != 6 || len(got.Events) != 4 {
		t.Fatalf("snapshot = %d events, %d dropped", len(got.Events), got.Dropped)
	}
}

func TestEventsSince(t *testing.T) {
	r := flight.NewCap(8)
	for i := 0; i < 5; i++ {
		r.Emit(ev(i))
	}
	since := r.EventsSince(3)
	if len(since) != 2 || since[0].Seq != 3 || since[1].Seq != 4 {
		t.Fatalf("EventsSince(3) = %+v", since)
	}
	if got := r.EventsSince(99); len(got) != 0 {
		t.Fatalf("EventsSince(99) returned %d events", len(got))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rec := flight.Recording{Dropped: 2}
	for i := 0; i < 50; i++ {
		e := ev(i)
		e.Seq = uint64(i)
		rec.Events = append(rec.Events, e)
	}

	jsonl := flight.AppendJSONL(nil, rec)
	back, err := flight.DecodeJSONL(bytes.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flight.AppendJSONL(nil, back), jsonl) {
		t.Error("JSONL round trip is not byte-identical")
	}

	bin := flight.AppendBinary(nil, rec)
	back2, err := flight.DecodeBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flight.AppendBinary(nil, back2), bin) {
		t.Error("binary round trip is not byte-identical")
	}
	if !bytes.Equal(flight.AppendJSONL(nil, back2), jsonl) {
		t.Error("binary and JSONL decode to different recordings")
	}
}

func TestWriteReadFileSniffsFormat(t *testing.T) {
	rec := flight.Recording{Events: []flight.Event{ev(1), ev(2)}}
	rec.Events[0].Seq, rec.Events[1].Seq = 0, 1
	dir := t.TempDir()
	for _, name := range []string{"r.jsonl", "r.bin"} {
		path := filepath.Join(dir, name)
		if err := flight.WriteFile(path, rec); err != nil {
			t.Fatal(err)
		}
		back, err := flight.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(flight.AppendJSONL(nil, back), flight.AppendJSONL(nil, rec)) {
			t.Fatalf("%s: round trip changed the recording", name)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "r.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("L15FLT01")) {
		t.Error(".bin file does not start with the binary magic")
	}
}

func TestMergeRenumbers(t *testing.T) {
	a := flight.Recording{Events: []flight.Event{ev(0), ev(1)}, Dropped: 1}
	b := flight.Recording{Events: []flight.Event{ev(2)}, Dropped: 2}
	m := flight.Merge(a, b)
	if m.Dropped != 3 || len(m.Events) != 3 {
		t.Fatalf("merge = %d events, %d dropped", len(m.Events), m.Dropped)
	}
	for i, e := range m.Events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d: seq = %d", i, e.Seq)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	r := flight.NewCap(8)
	r.Emit(ev(0))
	srv := httptest.NewServer((&flight.Server{Recorder: r}).Handler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		return sb.String()
	}
	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Errorf("/healthz = %q", got)
	}
	if got := get("/metrics?format=json"); !strings.Contains(got, "counters") {
		t.Errorf("/metrics?format=json = %q", got)
	}
	if got := get("/metrics"); !strings.Contains(got, "# TYPE") {
		t.Errorf("/metrics (exposition) = %q", got)
	}
}

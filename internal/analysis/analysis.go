// Package analysis provides the safe timing bounds §4.2 of the paper
// appeals to: "Existing analysis (e.g., the one in [8]) can be applied to
// provide safe timing bounds, with minor modifications for communication
// cost on edges."
//
// The bound is the classic Graham-style makespan bound for DAG tasks under
// work-conserving scheduling on m identical cores,
//
//	R = len(cp) + (vol − len(cp)) / m
//
// adapted so that every quantity includes the communication costs a core
// actually executes: each node's effective demand is its WCET plus the sum
// of its incoming edges' (possibly ETM-reduced) fetch costs. The bound is
// safe for any work-conserving non-preemptive fixed-priority order, so it
// holds for both Alg. 1's priorities and the baseline's.
package analysis

import (
	"fmt"

	"l15cache/internal/dag"
)

// Bound is the analysed worst-case timing of one DAG task on m cores.
type Bound struct {
	CriticalPath float64 // longest source-sink path incl. fetch costs
	Volume       float64 // total execution demand incl. fetch costs
	Makespan     float64 // the Graham bound R
}

// Makespan computes the bound under the given edge-cost function (use
// dag.RawCost for a conventional system, or the scheduler's ETM weight for
// the proposed one).
func Makespan(t *dag.Task, m int, w dag.EdgeWeight) (Bound, error) {
	if m < 1 {
		return Bound{}, fmt.Errorf("analysis: need at least one core, got %d", m)
	}
	if err := t.Validate(); err != nil {
		return Bound{}, err
	}

	// Per-node demand: computation plus the fetch costs of the incoming
	// edges (paid by the consumer's core in the execution model).
	demand := make([]float64, len(t.Nodes))
	var vol float64
	for _, n := range t.Nodes {
		d := n.WCET
		for _, p := range t.Pred(n.ID) {
			e, _ := t.Edge(p, n.ID)
			d += w(e)
		}
		demand[n.ID] = d
		vol += d
	}

	// Longest path over the inflated node demands. Edge fetch costs are
	// already folded into the consumer, so path edges weigh zero here.
	order, err := t.TopoOrder()
	if err != nil {
		return Bound{}, err
	}
	head := make([]float64, len(t.Nodes))
	var cp float64
	for _, id := range order {
		best := 0.0
		for _, p := range t.Pred(id) {
			if head[p] > best {
				best = head[p]
			}
		}
		head[id] = best + demand[id]
		if head[id] > cp {
			cp = head[id]
		}
	}

	return Bound{
		CriticalPath: cp,
		Volume:       vol,
		Makespan:     cp + (vol-cp)/float64(m),
	}, nil
}

// Schedulable reports whether the bound meets the task's deadline.
func Schedulable(t *dag.Task, m int, w dag.EdgeWeight) (bool, Bound, error) {
	b, err := Makespan(t, m, w)
	if err != nil {
		return false, Bound{}, err
	}
	return b.Makespan <= t.Deadline, b, nil
}

// Speedup returns the analytical makespan-bound improvement of the
// proposed system (edge costs wProp) over a conventional one (wBase) on m
// cores, as a fraction of the conventional bound.
func Speedup(t *dag.Task, m int, wBase, wProp dag.EdgeWeight) (float64, error) {
	base, err := Makespan(t, m, wBase)
	if err != nil {
		return 0, err
	}
	prop, err := Makespan(t, m, wProp)
	if err != nil {
		return 0, err
	}
	if base.Makespan == 0 {
		return 0, nil
	}
	return (base.Makespan - prop.Makespan) / base.Makespan, nil
}

// CondMakespan bounds a conditional DAG task's makespan: the maximum
// Graham bound over every run-time scenario (exactly one arm per
// conditional executes). The enumeration is exact; callers with very many
// conditionals should cap Scenarios() first.
func CondMakespan(ct *dag.CondTask, m int, w dag.EdgeWeight) (Bound, error) {
	var worst Bound
	first := true
	err := ct.EachScenario(func(choice []int, t *dag.Task) error {
		b, err := Makespan(t, m, w)
		if err != nil {
			return err
		}
		if first || b.Makespan > worst.Makespan {
			worst = b
			first = false
		}
		return nil
	})
	if err != nil {
		return Bound{}, err
	}
	return worst, nil
}

package analysis

import (
	"fmt"
	"math"
	"sort"

	"l15cache/internal/dag"
)

// Response-time analysis for periodic DAG task sets under global
// non-preemptive fixed-priority scheduling (the §5.2 setting: FreeRTOS-like
// kernels, rate-monotonic between tasks, work-conserving dispatch). The
// test extends the single-task Graham bound with the classic
// interference/blocking terms:
//
//	R_k = len_k + ( vol_k − len_k + I_k(R_k) ) / m + B_k
//
// where len_k and vol_k fold every edge's (possibly ETM-reduced)
// communication cost into its consumer node, I_k(R) is the higher-priority
// workload released in a window of length R with carry-in
// (⌈(R+D_i)/T_i⌉·vol_i), and B_k is the largest single node demand among
// lower-priority tasks (non-preemptive blocking; a lower-priority node may
// occupy every core, so the term is not diluted by m). The recurrence is
// iterated to a fixpoint; divergence past the deadline reports the task
// unschedulable.
//
// The bound is deliberately conservative; TaskSetSchedulable is a
// *sufficient* test, the analytical sibling of the empirical success
// ratios of Fig. 8. Choice of weights: raw edge costs are safe for any of
// the simulated systems; ETM-reduced costs additionally assume the L1.5
// ways are *guaranteed* to the task (static per-cluster partitioning) —
// under best-effort runtime allocation (internal/rtsim) a consumer may
// land in another cluster and pay the full cost, so use RawWeights for a
// sound verdict there.

// TaskBound reports one task's analysis.
type TaskBound struct {
	Task     int
	Response float64 // fixpoint R_k, or +Inf if divergent
	Bound    Bound   // the isolated single-task components
}

// WeightFor selects the edge-cost function per task (index into the task
// set) — raw costs for a conventional system, the per-task Alg. 1 ETM for
// the proposed one.
type WeightFor func(task int) dag.EdgeWeight

// RawWeights returns every task's raw edge costs.
func RawWeights([]*dag.Task) WeightFor {
	return func(int) dag.EdgeWeight { return dag.RawCost }
}

// TaskSetResponse computes every task's response-time bound on m cores
// under rate-monotonic ordering (shorter period = higher priority, ties by
// index). Tasks must have positive periods and implicit or constrained
// deadlines.
func TaskSetResponse(tasks []*dag.Task, m int, w WeightFor) ([]TaskBound, error) {
	if m < 1 {
		return nil, fmt.Errorf("analysis: need at least one core, got %d", m)
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("analysis: empty task set")
	}
	n := len(tasks)
	bounds := make([]Bound, n)
	maxNode := make([]float64, n)
	for i, t := range tasks {
		if t.Period <= 0 {
			return nil, fmt.Errorf("analysis: task %d has period %g", i, t.Period)
		}
		b, err := Makespan(t, m, w(i))
		if err != nil {
			return nil, fmt.Errorf("analysis: task %d: %w", i, err)
		}
		bounds[i] = b
		maxNode[i] = maxNodeDemand(t, w(i))
	}

	// Rate-monotonic priority order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Period < tasks[order[b]].Period
	})
	rank := make([]int, n)
	for r, idx := range order {
		rank[idx] = r
	}

	out := make([]TaskBound, n)
	for k, t := range tasks {
		// Non-preemptive blocking: the largest node (with its fetch)
		// of any lower-priority task already running when we arrive.
		var blocking float64
		for i := range tasks {
			if rank[i] > rank[k] && maxNode[i] > blocking {
				blocking = maxNode[i]
			}
		}

		lenK := bounds[k].CriticalPath
		volK := bounds[k].Volume
		r := lenK + (volK-lenK)/float64(m) + blocking
		for iter := 0; iter < 1000; iter++ {
			var interference float64
			for i, ti := range tasks {
				if rank[i] >= rank[k] {
					continue
				}
				jobs := math.Ceil((r + ti.Deadline) / ti.Period)
				interference += jobs * bounds[i].Volume
			}
			next := lenK + (volK-lenK+interference)/float64(m) + blocking
			if next <= r+1e-9 {
				r = next
				break
			}
			r = next
			if r > 100*t.Deadline && t.Deadline > 0 {
				r = math.Inf(1)
				break
			}
		}
		out[k] = TaskBound{Task: k, Response: r, Bound: bounds[k]}
	}
	return out, nil
}

// TaskSetSchedulable reports whether every task's bound meets its deadline.
func TaskSetSchedulable(tasks []*dag.Task, m int, w WeightFor) (bool, []TaskBound, error) {
	bounds, err := TaskSetResponse(tasks, m, w)
	if err != nil {
		return false, nil, err
	}
	for i, b := range bounds {
		if b.Response > tasks[i].Deadline {
			return false, bounds, nil
		}
	}
	return true, bounds, nil
}

// maxNodeDemand returns the largest single-node demand (WCET plus incoming
// fetch costs) of the task.
func maxNodeDemand(t *dag.Task, w dag.EdgeWeight) float64 {
	var m float64
	for _, n := range t.Nodes {
		d := n.WCET
		for _, p := range t.Pred(n.ID) {
			e, _ := t.Edge(p, n.ID)
			d += w(e)
		}
		if d > m {
			m = d
		}
	}
	return m
}

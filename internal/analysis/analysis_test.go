package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l15cache/internal/dag"
	"l15cache/internal/sched"
	"l15cache/internal/schedsim"
	"l15cache/internal/workload"
)

func TestMakespanChain(t *testing.T) {
	// A serial chain leaves no parallel slack: bound = Σ(C+μ) regardless
	// of m.
	task := dag.Chain("c", 4, 2, 3, 0.5, 1024)
	b, err := Makespan(task, 8, dag.RawCost)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*2.0 + 3*3.0
	if b.CriticalPath != want || b.Makespan != want {
		t.Errorf("bound = %+v, want cp = makespan = %g", b, want)
	}
}

func TestMakespanForkJoin(t *testing.T) {
	// src + 4 branches + sink, no comm: vol = 12, cp = 6.
	task := dag.ForkJoin("fj", 4, 2, 0, 0.5, 0)
	b, err := Makespan(task, 2, dag.RawCost)
	if err != nil {
		t.Fatal(err)
	}
	if b.Volume != 12 || b.CriticalPath != 6 {
		t.Fatalf("bound = %+v", b)
	}
	if want := 6 + (12-6)/2.0; b.Makespan != want {
		t.Errorf("makespan = %g, want %g", b.Makespan, want)
	}
	// Infinite-ish parallelism converges to the critical path.
	b64, _ := Makespan(task, 64, dag.RawCost)
	if b64.Makespan >= b.Makespan || b64.Makespan < b.CriticalPath {
		t.Errorf("m=64 bound %g out of range", b64.Makespan)
	}
}

func TestMakespanErrors(t *testing.T) {
	task := dag.Fig1Example()
	if _, err := Makespan(task, 0, dag.RawCost); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Makespan(dag.New("bad", 1, 1), 2, dag.RawCost); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestSchedulable(t *testing.T) {
	task := dag.Fig1Example() // D = 100, bound far below
	ok, b, err := Schedulable(task, 4, dag.RawCost)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || b.Makespan > 100 {
		t.Errorf("Fig. 1 example unschedulable: %+v", b)
	}
	tight := task.Clone()
	tight.Deadline = 5
	tight.Period = 5
	ok, _, err = Schedulable(tight, 4, dag.RawCost)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("impossible deadline reported schedulable")
	}
}

func TestSpeedupPositiveWithETM(t *testing.T) {
	task := dag.Fig1Example()
	res, err := sched.L15Schedule(task, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Speedup(task, 4, dag.RawCost, res.Model.Weight())
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s >= 1 {
		t.Errorf("analytical speedup = %g, want in (0,1)", s)
	}
}

// Property: the Graham bound is safe — it never undercuts the simulated
// makespan of the same platform on any synthetic workload, for the
// baseline (raw costs, no interference) and for the proposed system.
func TestQuickBoundIsSafe(t *testing.T) {
	f := func(seed int64, mr uint8) bool {
		m := int(mr%8) + 1
		r := rand.New(rand.NewSource(seed))
		p := workload.DefaultSynthParams()
		task, err := workload.Synthetic(r, p)
		if err != nil {
			return false
		}

		// Proposed system: ETM-reduced fetches, no interference.
		prop, err := schedsim.NewProposed(task.Clone(), 16, 2048)
		if err != nil {
			return false
		}
		stats, err := schedsim.Run(prop.Alloc, prop, schedsim.Options{Cores: m})
		if err != nil {
			return false
		}
		b, err := Makespan(prop.Alloc.Task, m, prop.Alloc.Model.Weight())
		if err != nil {
			return false
		}
		return stats[0].Makespan <= b.Makespan+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: more cores never increase the bound; reduced edge costs never
// increase it either.
func TestQuickBoundMonotone(t *testing.T) {
	half := func(e dag.Edge) float64 { return e.Cost / 2 }
	f := func(seed int64, mr uint8) bool {
		m := int(mr%8) + 1
		r := rand.New(rand.NewSource(seed))
		task, err := workload.Synthetic(r, workload.DefaultSynthParams())
		if err != nil {
			return false
		}
		b1, err := Makespan(task, m, dag.RawCost)
		if err != nil {
			return false
		}
		b2, err := Makespan(task, m+1, dag.RawCost)
		if err != nil {
			return false
		}
		bh, err := Makespan(task, m, half)
		if err != nil {
			return false
		}
		return b2.Makespan <= b1.Makespan+1e-9 && bh.Makespan <= b1.Makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCondMakespanDominatesScenarios(t *testing.T) {
	// Build a conditional task and check the worst-case bound dominates
	// every scenario's own bound and equals the max.
	task := dag.New("cond", 100, 100)
	src := task.AddNode("src", 1, 1024)
	b := task.AddNode("branch", 2, 1024)
	long1 := task.AddNode("long1", 8, 1024)
	long2 := task.AddNode("long2", 8, 1024)
	short1 := task.AddNode("short1", 3, 1024)
	m := task.AddNode("merge", 2, 1024)
	sink := task.AddNode("sink", 1, 0)
	task.MustAddEdge(src, b, 1, 0.5)
	task.MustAddEdge(b, long1, 1, 0.5)
	task.MustAddEdge(long1, long2, 1, 0.5)
	task.MustAddEdge(long2, m, 1, 0.5)
	task.MustAddEdge(b, short1, 1, 0.5)
	task.MustAddEdge(short1, m, 1, 0.5)
	task.MustAddEdge(m, sink, 1, 0.5)

	ct := dag.NewConditional(task)
	if err := ct.AddConditional(b, m, [][]dag.NodeID{{long1, long2}, {short1}}); err != nil {
		t.Fatal(err)
	}
	worst, err := CondMakespan(ct, 4, dag.RawCost)
	if err != nil {
		t.Fatal(err)
	}
	var maxScenario float64
	err = ct.EachScenario(func(choice []int, st *dag.Task) error {
		bnd, err := Makespan(st, 4, dag.RawCost)
		if err != nil {
			return err
		}
		if bnd.Makespan > worst.Makespan+1e-9 {
			t.Errorf("scenario %v bound %g exceeds worst %g", choice, bnd.Makespan, worst.Makespan)
		}
		if bnd.Makespan > maxScenario {
			maxScenario = bnd.Makespan
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst.Makespan != maxScenario {
		t.Errorf("worst %g != max scenario %g", worst.Makespan, maxScenario)
	}
	// The long arm defines the worst case.
	longOnly, err := ct.Scenario([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Makespan(longOnly, 4, dag.RawCost)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Makespan != lb.Makespan {
		t.Errorf("worst %g should come from the long arm (%g)", worst.Makespan, lb.Makespan)
	}
}

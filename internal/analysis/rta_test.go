package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"l15cache/internal/dag"
	"l15cache/internal/rtsim"
	"l15cache/internal/sched"
	"l15cache/internal/workload"
)

func rtaTaskSet(t *testing.T, seed int64, util float64, n int) []*dag.Task {
	t.Helper()
	p := workload.DefaultTaskSetParams()
	p.TargetUtilization = util
	p.Tasks = n
	tasks, err := workload.TaskSet(rand.New(rand.NewSource(seed)), p)
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func TestTaskSetResponseSingleTask(t *testing.T) {
	// One task: the response bound reduces to the Graham bound (no
	// interference, no blocking).
	task := dag.Fig1Example()
	bounds, err := TaskSetResponse([]*dag.Task{task}, 4, RawWeights(nil))
	if err != nil {
		t.Fatal(err)
	}
	single, err := Makespan(task, 4, dag.RawCost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bounds[0].Response-single.Makespan) > 1e-9 {
		t.Errorf("R = %g, want Graham %g", bounds[0].Response, single.Makespan)
	}
}

func TestTaskSetResponseInterferenceGrows(t *testing.T) {
	// Adding a higher-priority (shorter-period) task increases a task's
	// bound.
	lo := dag.Chain("lo", 4, 10, 2, 0.5, 2048)
	lo.Period, lo.Deadline = 1000, 1000
	hi := dag.Chain("hi", 3, 5, 1, 0.5, 2048)
	hi.Period, hi.Deadline = 100, 100

	alone, err := TaskSetResponse([]*dag.Task{lo}, 4, RawWeights(nil))
	if err != nil {
		t.Fatal(err)
	}
	both, err := TaskSetResponse([]*dag.Task{lo, hi}, 4, RawWeights(nil))
	if err != nil {
		t.Fatal(err)
	}
	if both[0].Response <= alone[0].Response {
		t.Errorf("interference missing: %g vs %g alone", both[0].Response, alone[0].Response)
	}
	// The high-priority task suffers only blocking from below.
	if both[1].Response <= 0 || math.IsInf(both[1].Response, 1) {
		t.Errorf("hi response = %g", both[1].Response)
	}
}

func TestTaskSetSchedulableVerdicts(t *testing.T) {
	// A light set passes; an overloaded one fails.
	light := rtaTaskSet(t, 1, 1.0, 4)
	ok, bounds, err := TaskSetSchedulable(light, 8, RawWeights(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		for _, b := range bounds {
			t.Logf("task %d: R=%g D=%g", b.Task, b.Response, light[b.Task].Deadline)
		}
		t.Error("light set rejected")
	}
	heavy := rtaTaskSet(t, 2, 12.0, 8)
	ok, _, err = TaskSetSchedulable(heavy, 8, RawWeights(nil))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overloaded set accepted")
	}
}

func TestTaskSetResponseErrors(t *testing.T) {
	task := dag.Fig1Example()
	if _, err := TaskSetResponse(nil, 4, RawWeights(nil)); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := TaskSetResponse([]*dag.Task{task}, 0, RawWeights(nil)); err == nil {
		t.Error("zero cores accepted")
	}
	bad := task.Clone()
	bad.Period = 0
	if _, err := TaskSetResponse([]*dag.Task{bad}, 4, RawWeights(nil)); err == nil {
		t.Error("zero period accepted")
	}
}

// TestRTAEmpiricallySoundForProp checks the sufficiency claim against the
// periodic simulator: whenever the raw-cost RTA accepts a task set (the
// sound verdict for best-effort runtime way allocation), the proposed
// system simulates it without deadline misses. The ETM-cost RTA must
// accept at least as much (it assumes guaranteed allocation).
func TestRTAEmpiricallySoundForProp(t *testing.T) {
	cfg := rtsim.DefaultConfig()
	accepted, checked := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		util := 1.0 + float64(seed%5) // 1.0 .. 5.0 of 8 cores
		tasks := rtaTaskSet(t, 300+seed, util, 8)

		okRaw, _, err := TaskSetSchedulable(tasks, cfg.Cores, RawWeights(nil))
		if err != nil {
			t.Fatal(err)
		}

		// ETM weights (guaranteed-allocation assumption) accept a
		// superset.
		weights := make([]dag.EdgeWeight, len(tasks))
		clones := make([]*dag.Task, len(tasks))
		for i, task := range tasks {
			c := task.Clone()
			alloc, err := sched.L15Schedule(c, cfg.Zeta, cfg.WayBytes)
			if err != nil {
				t.Fatal(err)
			}
			clones[i] = c
			weights[i] = alloc.Model.Weight()
		}
		okETM, _, err := TaskSetSchedulable(clones, cfg.Cores, func(i int) dag.EdgeWeight {
			return weights[i]
		})
		if err != nil {
			t.Fatal(err)
		}
		if okRaw && !okETM {
			t.Errorf("seed %d: raw RTA accepted but ETM RTA rejected", seed)
		}

		checked++
		if !okRaw {
			continue
		}
		accepted++
		m, err := rtsim.Run(tasks, rtsim.KindProp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.Misses > 0 {
			t.Errorf("seed %d (util %g): RTA accepted but %d/%d jobs missed",
				seed, util, m.Misses, m.Jobs)
		}
	}
	if accepted == 0 {
		t.Errorf("no set accepted out of %d — the test exercised nothing", checked)
	}
}

// Property: shrinking edge costs (ETM) never increases any response bound,
// and more cores never increase it either.
func TestQuickRTAMonotone(t *testing.T) {
	half := func(int) dag.EdgeWeight {
		return func(e dag.Edge) float64 { return e.Cost / 2 }
	}
	f := func(seed int64, mr uint8) bool {
		m := int(mr%8) + 2
		p := workload.DefaultTaskSetParams()
		p.TargetUtilization = 2
		p.Tasks = 5
		tasks, err := workload.TaskSet(rand.New(rand.NewSource(seed)), p)
		if err != nil {
			return false
		}
		full, err := TaskSetResponse(tasks, m, RawWeights(nil))
		if err != nil {
			return false
		}
		reduced, err := TaskSetResponse(tasks, m, half)
		if err != nil {
			return false
		}
		moreCores, err := TaskSetResponse(tasks, m+2, RawWeights(nil))
		if err != nil {
			return false
		}
		for i := range tasks {
			if reduced[i].Response > full[i].Response+1e-9 {
				return false
			}
			if moreCores[i].Response > full[i].Response+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package monitor

import (
	"errors"
	"strings"
	"testing"

	"l15cache/internal/soc"
)

func newSoC(t *testing.T) *soc.SoC {
	t.Helper()
	s, err := soc.New(soc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAttachErrors(t *testing.T) {
	if _, err := Attach(nil, 0); err == nil {
		t.Error("nil SoC accepted")
	}
}

// failWriter errors on every write, to exercise WriteReport's propagation.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("sink closed") }

func TestWriteReportPropagatesError(t *testing.T) {
	s := newSoC(t)
	m, err := Attach(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteReport(failWriter{}); err == nil {
		t.Error("WriteReport swallowed the write error")
	}
	var sb strings.Builder
	if err := m.WriteReport(&sb); err != nil {
		t.Fatalf("WriteReport to a builder: %v", err)
	}
	if m.Report() != sb.String() {
		t.Error("Report and WriteReport disagree")
	}
}

func TestMonitorSamplesDuringRun(t *testing.T) {
	s := newSoC(t)
	m, err := Attach(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	prog := `
		li a0, 4
		demand a0
	wait:
		supply a1
		beqz a1, wait
		li t0, 100
	loop:
		addi t0, t0, -1
		bnez t0, loop
		ebreak
	`
	if _, err := s.LoadProgram(0x1000, prog); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPageTable(0, s.IdentityPageTable(1)); err != nil {
		t.Fatal(err)
	}
	s.StartCore(0, 0x1000, 0x8000)
	for i := 1; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	if _, err := s.Run(100000, nil); err != nil {
		t.Fatal(err)
	}
	if len(m.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	// The program ends holding 4 of 32 ways (two clusters × 16).
	last := m.Samples[len(m.Samples)-1]
	if last.OwnedWays != 4 || last.TotalWays != 32 {
		t.Errorf("last sample = %+v", last)
	}
	if u := m.Utilization(); u <= 0 || u > 4.0/32 {
		t.Errorf("utilisation = %g", u)
	}
	lats := m.ConfigLatencies()
	if len(lats) == 0 {
		t.Error("no configuration latencies recorded")
	}
	rep := m.Report()
	for _, want := range []string{"samples", "utilisation", "reconfigurations"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSamplingInterval(t *testing.T) {
	s := newSoC(t)
	dense, err := Attach(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	prog := "li t0, 50\nloop: addi t0, t0, -1\nbnez t0, loop\nebreak"
	if _, err := s.LoadProgram(0x1000, prog); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPageTable(0, s.IdentityPageTable(1)); err != nil {
		t.Fatal(err)
	}
	s.StartCore(0, 0x1000, 0x8000)
	for i := 1; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	s.Run(100000, nil)
	denseCount := len(dense.Samples)
	dense.Detach()

	// Re-run with a coarse interval: strictly fewer samples.
	s2 := newSoC(t)
	coarse, _ := Attach(s2, 50)
	s2.LoadProgram(0x1000, prog)
	s2.SetPageTable(0, s2.IdentityPageTable(1))
	s2.StartCore(0, 0x1000, 0x8000)
	for i := 1; i < len(s2.Cores); i++ {
		s2.Cores[i].Halted = true
	}
	s2.Run(100000, nil)
	if len(coarse.Samples) >= denseCount {
		t.Errorf("coarse sampling (%d) not sparser than dense (%d)",
			len(coarse.Samples), denseCount)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	s := newSoC(t)
	m, _ := Attach(s, 0)
	if m.Utilization() != 0 {
		t.Error("empty monitor should report 0")
	}
}

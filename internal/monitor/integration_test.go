package monitor

import (
	"testing"

	"l15cache/internal/metrics"
)

// TestObservabilityIntegration wires a fresh registry and tracer into an SoC
// with the monitor attached, runs a way-demanding program, and asserts the
// SDU reassignment latency lands in the histogram and the tracer records the
// Walloc events — the end-to-end path the -metrics/-trace flags expose.
func TestObservabilityIntegration(t *testing.T) {
	s := newSoC(t)
	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(1 << 12)
	s.Instrument(reg, tr)

	m, err := Attach(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Tracer = tr
	m.PublishMetrics(reg)

	prog := `
		li a0, 4
		demand a0
	wait:
		supply a1
		beqz a1, wait
		ebreak
	`
	if _, err := s.LoadProgram(0x1000, prog); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPageTable(0, s.IdentityPageTable(1)); err != nil {
		t.Fatal(err)
	}
	s.StartCore(0, 0x1000, 0x8000)
	for i := 1; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	if _, err := s.Run(100000, nil); err != nil {
		t.Fatal(err)
	}
	s.SettleSDU(64)

	snap := reg.Snapshot()
	h, ok := snap.Histograms["soc.cluster0.l15.sdu_config_latency_cycles"]
	if !ok {
		t.Fatalf("SDU latency histogram missing; histograms: %v", keys(snap.Histograms))
	}
	if h.Count == 0 {
		t.Fatal("SDU latency histogram recorded no reassignments")
	}
	if h.Max < 1 {
		t.Fatalf("SDU latency max = %v, want >= 1 cycle", h.Max)
	}
	if snap.Counters["monitor.samples"] == 0 {
		t.Fatal("monitor recorded no samples")
	}
	if snap.Counters["monitor.reconfigurations"] == 0 {
		t.Fatal("monitor recorded no reconfigurations")
	}

	var assigns, satisfied, samples int
	for _, ev := range tr.Events() {
		switch ev.Name {
		case "way.assign":
			assigns++
		case "demand.satisfied":
			satisfied++
		case "sample":
			samples++
		}
	}
	if assigns < 4 {
		t.Fatalf("way.assign events = %d, want >= 4 (one per granted way)", assigns)
	}
	if satisfied == 0 {
		t.Fatal("no demand.satisfied event traced")
	}
	if samples == 0 {
		t.Fatal("no monitor sample events traced")
	}
}

func keys(m map[string]metrics.HistogramSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Package monitor implements the cycle-accurate monitor of §5.3: attached
// to a simulated SoC, it traces the cores and the L1.5 Caches, recording
// (i) the utilisation of the L1.5 ways and (ii) the configuration latencies
// of the Supply-Demand Units. The paper used the same instrument to produce
// Fig. 8(c).
package monitor

import (
	"fmt"
	"io"
	"strings"

	"l15cache/internal/metrics"
	"l15cache/internal/soc"
)

// Sample is one observation of the system.
type Sample struct {
	Cycle     uint64 // global cycle (max core clock at the sample)
	OwnedWays int    // ways with an owner, across all clusters
	TotalWays int
}

// Monitor collects samples and SDU configuration events from an SoC.
type Monitor struct {
	s        *soc.SoC
	interval uint64
	lastAt   uint64

	// Tracer, when non-nil, receives one "sample" event per observation.
	Tracer *metrics.Tracer

	Samples []Sample
}

// Attach hooks the monitor into the SoC's observer slot, sampling every
// interval global cycles (0 samples after every instruction).
func Attach(s *soc.SoC, interval uint64) (*Monitor, error) {
	if s == nil {
		return nil, fmt.Errorf("monitor: nil SoC")
	}
	m := &Monitor{s: s, interval: interval}
	s.Observer = func(sys *soc.SoC) { m.observe(sys) }
	return m, nil
}

// Detach removes the monitor from the SoC.
func (m *Monitor) Detach() { m.s.Observer = nil }

func (m *Monitor) observe(sys *soc.SoC) {
	var now uint64
	for _, c := range sys.Cores {
		if c.Cycles > now {
			now = c.Cycles
		}
	}
	if m.interval > 0 && now < m.lastAt+m.interval {
		return
	}
	m.lastAt = now
	owned, total := 0, 0
	for _, cl := range sys.Clusters {
		owned += cl.L15.OwnedWays()
		total += cl.L15.Config().Ways
	}
	m.Samples = append(m.Samples, Sample{Cycle: now, OwnedWays: owned, TotalWays: total})
	m.Tracer.Emit(now, "monitor", "sample",
		map[string]any{"owned_ways": owned, "total_ways": total})
}

// PublishMetrics registers the monitor's aggregates with the registry:
// monitor.samples, monitor.way_utilization, monitor.reconfigurations and
// monitor.mean_config_latency_cycles, all collected at snapshot time.
func (m *Monitor) PublishMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.RegisterCollector(func(r *metrics.Registry) {
		r.Counter("monitor.samples").Store(uint64(len(m.Samples)))
		r.Gauge("monitor.way_utilization").Set(m.Utilization())
		lats := m.ConfigLatencies()
		r.Counter("monitor.reconfigurations").Store(uint64(len(lats)))
		var sum uint64
		for _, l := range lats {
			sum += l
		}
		mean := 0.0
		if len(lats) > 0 {
			mean = float64(sum) / float64(len(lats))
		}
		r.Gauge("monitor.mean_config_latency_cycles").Set(mean)
	})
}

// Utilization returns the mean fraction of owned ways across the samples.
func (m *Monitor) Utilization() float64 {
	if len(m.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range m.Samples {
		if s.TotalWays > 0 {
			sum += float64(s.OwnedWays) / float64(s.TotalWays)
		}
	}
	return sum / float64(len(m.Samples))
}

// ConfigLatencies returns every way-reconfiguration latency observable so
// far: for each cluster, the per-demand tick counts derived from its event
// stream (one event per way moved).
func (m *Monitor) ConfigLatencies() []uint64 {
	var out []uint64
	for _, cl := range m.s.Clusters {
		// Group consecutive events per (core); the span from a
		// demand's first to last event is its configuration latency.
		events := cl.L15.Events
		var start uint64
		lastCore := -1
		var last uint64
		for _, ev := range events {
			if ev.Core != lastCore {
				if lastCore >= 0 {
					out = append(out, last-start+1)
				}
				lastCore = ev.Core
				start = ev.Tick
			}
			last = ev.Tick
		}
		if lastCore >= 0 {
			out = append(out, last-start+1)
		}
	}
	return out
}

// WriteReport writes a short human-readable summary to w and propagates
// the first write error, so callers streaming to a file or pipe see
// truncation instead of a silently short report.
func (m *Monitor) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "monitor: %d samples, mean L1.5 way utilisation %.1f%%\n",
		len(m.Samples), 100*m.Utilization()); err != nil {
		return err
	}
	lats := m.ConfigLatencies()
	if len(lats) > 0 {
		var max, sum uint64
		for _, l := range lats {
			sum += l
			if l > max {
				max = l
			}
		}
		if _, err := fmt.Fprintf(w, "monitor: %d reconfigurations, mean latency %.1f cycles, max %d\n",
			len(lats), float64(sum)/float64(len(lats)), max); err != nil {
			return err
		}
	}
	return nil
}

// Report renders the summary as a string. It is WriteReport into a
// strings.Builder, whose writes cannot fail.
func (m *Monitor) Report() string {
	var sb strings.Builder
	_ = m.WriteReport(&sb)
	return sb.String()
}

package dag

import "fmt"

// Conditional DAG support, following the well-structured conditional
// model of Chen et al. (reference [5] of the paper): a *branch* node ends
// with an exclusive choice — exactly one of its *arms* (disjoint node
// groups) executes — and control re-joins at a unique *merge* node. The
// co-design applies unchanged: Alg. 1 allocates ways over the full graph
// (conservative: unchosen arms' ways are simply unused that instance), and
// each run-time scenario is an ordinary DAG obtained by deleting the
// unchosen arms.

// Conditional is one branch/merge region.
type Conditional struct {
	Branch NodeID
	Merge  NodeID
	// Arms are the alternative node groups. Exactly one arm executes per
	// instance.
	Arms [][]NodeID
}

// CondTask is a task with conditional regions.
type CondTask struct {
	*Task
	Conds []Conditional
}

// NewConditional wraps a validated task.
func NewConditional(t *Task) *CondTask { return &CondTask{Task: t} }

// AddConditional declares a branch/merge region. The arms must be
// non-empty, pairwise disjoint, not shared with other conditionals, and
// well-structured: every arm node's predecessors lie in the same arm or
// are the branch, and its successors lie in the same arm or are the merge.
func (ct *CondTask) AddConditional(branch, merge NodeID, arms [][]NodeID) error {
	if !ct.valid(branch) || !ct.valid(merge) {
		return fmt.Errorf("dag: conditional references unknown nodes %d/%d", branch, merge)
	}
	if len(arms) < 2 {
		return fmt.Errorf("dag: conditional needs at least two arms, got %d", len(arms))
	}
	seen := ct.conditionalNodes()
	seen[branch] = true // a branch cannot sit inside another arm we add here
	local := map[NodeID]int{}
	for ai, arm := range arms {
		if len(arm) == 0 {
			return fmt.Errorf("dag: arm %d is empty", ai)
		}
		for _, v := range arm {
			if !ct.valid(v) {
				return fmt.Errorf("dag: arm %d references unknown node %d", ai, v)
			}
			if v == branch || v == merge {
				return fmt.Errorf("dag: node %d cannot be both boundary and arm member", v)
			}
			if seen[v] {
				return fmt.Errorf("dag: node %d already belongs to a conditional", v)
			}
			if prev, dup := local[v]; dup {
				return fmt.Errorf("dag: node %d in arms %d and %d", v, prev, ai)
			}
			local[v] = ai
		}
	}
	// Structural containment.
	for ai, arm := range arms {
		inArm := map[NodeID]bool{}
		for _, v := range arm {
			inArm[v] = true
		}
		for _, v := range arm {
			for _, p := range ct.Pred(v) {
				if !inArm[p] && p != branch {
					return fmt.Errorf("dag: arm %d node %d has predecessor %d outside the arm", ai, v, p)
				}
			}
			for _, s := range ct.Succ(v) {
				if !inArm[s] && s != merge {
					return fmt.Errorf("dag: arm %d node %d has successor %d outside the arm", ai, v, s)
				}
			}
		}
	}
	ct.Conds = append(ct.Conds, Conditional{Branch: branch, Merge: merge, Arms: arms})
	return nil
}

// conditionalNodes returns every node already claimed by an arm.
func (ct *CondTask) conditionalNodes() map[NodeID]bool {
	m := map[NodeID]bool{}
	for _, c := range ct.Conds {
		for _, arm := range c.Arms {
			for _, v := range arm {
				m[v] = true
			}
		}
	}
	return m
}

// Scenarios returns the number of run-time scenarios (the product of arm
// counts).
func (ct *CondTask) Scenarios() int {
	n := 1
	for _, c := range ct.Conds {
		n *= len(c.Arms)
	}
	return n
}

// Scenario materialises the plain DAG for the given arm choices (one index
// per conditional, in Conds order): unchosen arms' nodes and edges are
// removed, node IDs are remapped densely, and the result is validated.
func (ct *CondTask) Scenario(choice []int) (*Task, error) {
	if len(choice) != len(ct.Conds) {
		return nil, fmt.Errorf("dag: %d choices for %d conditionals", len(choice), len(ct.Conds))
	}
	drop := map[NodeID]bool{}
	for ci, c := range ct.Conds {
		if choice[ci] < 0 || choice[ci] >= len(c.Arms) {
			return nil, fmt.Errorf("dag: conditional %d has no arm %d", ci, choice[ci])
		}
		for ai, arm := range c.Arms {
			if ai == choice[ci] {
				continue
			}
			for _, v := range arm {
				drop[v] = true
			}
		}
	}

	out := New(fmt.Sprintf("%s@%v", ct.Name, choice), ct.Period, ct.Deadline)
	remap := make(map[NodeID]NodeID, len(ct.Nodes))
	for _, n := range ct.Nodes {
		if drop[n.ID] {
			continue
		}
		id := out.AddNode(n.Name, n.WCET, n.Data)
		out.Nodes[id].Priority = n.Priority
		remap[n.ID] = id
	}
	for _, e := range ct.Edges {
		from, okF := remap[e.From]
		to, okT := remap[e.To]
		if !okF || !okT {
			continue
		}
		if err := out.AddEdge(from, to, e.Cost, e.Alpha); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("dag: scenario %v invalid: %w", choice, err)
	}
	return out, nil
}

// EachScenario invokes f with every choice vector and its materialised
// task, stopping early on error. The enumeration is product-ordered and
// deterministic.
func (ct *CondTask) EachScenario(f func(choice []int, t *Task) error) error {
	choice := make([]int, len(ct.Conds))
	for {
		t, err := ct.Scenario(choice)
		if err != nil {
			return err
		}
		snapshot := append([]int(nil), choice...)
		if err := f(snapshot, t); err != nil {
			return err
		}
		// Increment the mixed-radix counter.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(ct.Conds[i].Arms) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			return nil
		}
	}
}

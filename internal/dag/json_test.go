package dag

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Fig1Example()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Period != orig.Period || back.Deadline != orig.Deadline {
		t.Errorf("header mismatch: %+v", back)
	}
	if len(back.Nodes) != len(orig.Nodes) || len(back.Edges) != len(orig.Edges) {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d edges",
			len(back.Nodes), len(orig.Nodes), len(back.Edges), len(orig.Edges))
	}
	for i := range orig.Nodes {
		a, b := orig.Nodes[i], back.Nodes[i]
		if a.Name != b.Name || a.WCET != b.WCET || a.Data != b.Data {
			t.Errorf("node %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	for i := range orig.Edges {
		if orig.Edges[i] != back.Edges[i] {
			t.Errorf("edge %d mismatch", i)
		}
	}
	// Adjacency is rebuilt.
	if len(back.Succ(0)) != 3 {
		t.Errorf("Succ(v1) = %v", back.Succ(0))
	}
	if got := back.CriticalPathLength(RawCost); got != orig.CriticalPathLength(RawCost) {
		t.Errorf("critical path changed: %g", got)
	}
}

func TestLoadJSONHandWritten(t *testing.T) {
	src := `{
		"name": "pipeline",
		"period": 100,
		"deadline": 100,
		"nodes": [
			{"name": "a", "wcet": 5, "data": 4096},
			{"name": "b", "wcet": 3}
		],
		"edges": [
			{"from": 0, "to": 1, "cost": 2, "alpha": 0.5}
		]
	}`
	task, err := LoadJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if task.Volume() != 8 || task.Nodes[1].Data != 0 {
		t.Errorf("parsed wrong: %+v", task.Nodes)
	}
}

func TestLoadJSONErrors(t *testing.T) {
	bad := []string{
		`{`, // syntax
		`{"name":"x","period":10,"deadline":10,"nodes":[],"edges":[]}`,                                            // no nodes
		`{"name":"x","period":10,"deadline":10,"nodes":[{"name":"a","wcet":1}],"edges":[{"from":0,"to":5}]}`,      // bad edge
		`{"name":"x","period":10,"deadline":20,"nodes":[{"name":"a","wcet":1}],"edges":[]}`,                       // D > T
		`{"name":"x","period":10,"deadline":10,"nodes":[{"name":"a","wcet":1},{"name":"b","wcet":1}],"edges":[]}`, // two sources
	}
	for i, src := range bad {
		if _, err := LoadJSON([]byte(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestJSONSchemaFieldNames(t *testing.T) {
	data, err := json.Marshal(Fig1Example())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"name"`, `"period"`, `"wcet"`, `"alpha"`, `"cost"`} {
		if !strings.Contains(s, want) {
			t.Errorf("schema missing %s", want)
		}
	}
}

// Package dag implements the paper's parallel task model: a recurrent DAG
// task τ_i = {V_i, E_i, T_i, D_i}. Nodes carry worst-case computation times
// (C_j), produced-data volumes (δ_j) and scheduler-assigned priorities
// (P_j); edges carry communication costs (μ_{j,k}) and ETM speed-up ratios
// (α_{j,k}). Every task has exactly one source and one sink, matching the
// model of He et al. [8] that the paper adopts.
package dag

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a single task. IDs are dense indices into
// Task.Nodes, assigned by AddNode in creation order.
type NodeID int

// Node is one vertex v_j of a DAG task: a series of computations that must
// execute sequentially on one core.
type Node struct {
	ID   NodeID
	Name string

	// WCET is C_j, the node's worst-case computation time in abstract
	// time units.
	WCET float64

	// Data is δ_j, the volume in bytes of the dependent data the node
	// produces for its successors (obtained by profiling in the paper).
	Data int64

	// Priority is P_j. Higher values dispatch first. It is written by the
	// schedulers in internal/sched.
	Priority int
}

// Edge is a dependency e_{j,k}: To may only start once From has finished and
// the produced data has been transmitted.
type Edge struct {
	From, To NodeID

	// Cost is μ_{j,k}, the worst-case communication cost of the edge when
	// no L1.5 ways assist the transfer.
	Cost float64

	// Alpha is α_{j,k}, the ETM speed-up ratio of the edge, in (0,1).
	Alpha float64
}

// Task is a recurrent DAG task τ_i.
type Task struct {
	Name     string
	Period   float64 // T_i
	Deadline float64 // D_i, constrained deadline: D_i <= T_i

	Nodes []*Node
	Edges []Edge

	preds map[NodeID][]NodeID
	succs map[NodeID][]NodeID
}

// New returns an empty task with the given name, period and deadline.
func New(name string, period, deadline float64) *Task {
	return &Task{
		Name:     name,
		Period:   period,
		Deadline: deadline,
		preds:    make(map[NodeID][]NodeID),
		succs:    make(map[NodeID][]NodeID),
	}
}

// AddNode appends a node and returns its ID.
func (t *Task) AddNode(name string, wcet float64, data int64) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, &Node{ID: id, Name: name, WCET: wcet, Data: data})
	return id
}

// AddEdge adds a dependency edge with communication cost and ETM ratio.
// Adding an edge between unknown nodes or a duplicate edge returns an error.
func (t *Task) AddEdge(from, to NodeID, cost, alpha float64) error {
	if !t.valid(from) || !t.valid(to) {
		return fmt.Errorf("dag: edge %d->%d references unknown node", from, to)
	}
	if from == to {
		return fmt.Errorf("dag: self-loop on node %d", from)
	}
	for _, s := range t.succs[from] {
		if s == to {
			return fmt.Errorf("dag: duplicate edge %d->%d", from, to)
		}
	}
	t.Edges = append(t.Edges, Edge{From: from, To: to, Cost: cost, Alpha: alpha})
	t.succs[from] = append(t.succs[from], to)
	t.preds[to] = append(t.preds[to], from)
	return nil
}

// MustAddEdge is AddEdge for statically-known graphs; it panics on error.
func (t *Task) MustAddEdge(from, to NodeID, cost, alpha float64) {
	if err := t.AddEdge(from, to, cost, alpha); err != nil {
		panic(err)
	}
}

func (t *Task) valid(id NodeID) bool { return id >= 0 && int(id) < len(t.Nodes) }

// Node returns the node with the given ID.
func (t *Task) Node(id NodeID) *Node { return t.Nodes[id] }

// Pred returns pre(v): the predecessors of id, in edge-insertion order.
func (t *Task) Pred(id NodeID) []NodeID { return t.preds[id] }

// Succ returns suc(v): the successors of id, in edge-insertion order.
func (t *Task) Succ(id NodeID) []NodeID { return t.succs[id] }

// Edge returns the edge from->to and whether it exists.
func (t *Task) Edge(from, to NodeID) (Edge, bool) {
	for _, e := range t.Edges {
		if e.From == from && e.To == to {
			return e, true
		}
	}
	return Edge{}, false
}

// Source returns the unique source node's ID. Call Validate first; Source
// returns -1 if there is not exactly one node without predecessors.
func (t *Task) Source() NodeID {
	src := NodeID(-1)
	for _, n := range t.Nodes {
		if len(t.preds[n.ID]) == 0 {
			if src >= 0 {
				return -1
			}
			src = n.ID
		}
	}
	return src
}

// Sink returns the unique sink node's ID, or -1 (see Source).
func (t *Task) Sink() NodeID {
	sink := NodeID(-1)
	for _, n := range t.Nodes {
		if len(t.succs[n.ID]) == 0 {
			if sink >= 0 {
				return -1
			}
			sink = n.ID
		}
	}
	return sink
}

// Volume returns W_i = Σ C_j, the total workload of the task.
func (t *Task) Volume() float64 {
	var w float64
	for _, n := range t.Nodes {
		w += n.WCET
	}
	return w
}

// Utilization returns U_i = W_i / T_i.
func (t *Task) Utilization() float64 {
	if t.Period <= 0 {
		return 0
	}
	return t.Volume() / t.Period
}

// Validate checks the structural invariants of the task model: at least one
// node, a single source, a single sink, acyclicity, non-negative WCETs and
// costs, α in [0,1), and D_i <= T_i.
func (t *Task) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("dag %q: no nodes", t.Name)
	}
	if t.Deadline > t.Period {
		return fmt.Errorf("dag %q: deadline %g exceeds period %g", t.Name, t.Deadline, t.Period)
	}
	if t.Source() < 0 {
		return fmt.Errorf("dag %q: must have exactly one source node", t.Name)
	}
	if t.Sink() < 0 {
		return fmt.Errorf("dag %q: must have exactly one sink node", t.Name)
	}
	for _, n := range t.Nodes {
		if n.WCET < 0 {
			return fmt.Errorf("dag %q: node %d has negative WCET", t.Name, n.ID)
		}
		if n.Data < 0 {
			return fmt.Errorf("dag %q: node %d has negative data volume", t.Name, n.ID)
		}
	}
	for _, e := range t.Edges {
		if e.Cost < 0 {
			return fmt.Errorf("dag %q: edge %d->%d has negative cost", t.Name, e.From, e.To)
		}
		if e.Alpha < 0 || e.Alpha >= 1 {
			return fmt.Errorf("dag %q: edge %d->%d has alpha %g outside [0,1)", t.Name, e.From, e.To, e.Alpha)
		}
	}
	if _, err := t.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order of the node IDs (Kahn's algorithm,
// lowest-ID-first for determinism) or an error if the graph has a cycle.
func (t *Task) TopoOrder() ([]NodeID, error) {
	indeg := make([]int, len(t.Nodes))
	for id := range t.Nodes {
		indeg[id] = len(t.preds[NodeID(id)])
	}
	var ready []NodeID
	for id := range t.Nodes {
		if indeg[id] == 0 {
			ready = append(ready, NodeID(id))
		}
	}
	order := make([]NodeID, 0, len(t.Nodes))
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, s := range t.succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(t.Nodes) {
		return nil, fmt.Errorf("dag %q: cycle detected", t.Name)
	}
	return order, nil
}

// EdgeWeight maps an edge to the communication cost used for path-length
// computations. The plain task model uses Edge.Cost; the co-design scheduler
// substitutes the ETM-reduced cost.
type EdgeWeight func(e Edge) float64

// RawCost is the EdgeWeight of the unassisted system: the full μ_{j,k}.
func RawCost(e Edge) float64 { return e.Cost }

// ZeroCost ignores communication entirely (computation-only paths), used by
// the workload generator to steer the critical-path ratio cpr, which the
// paper defines over computation workload.
func ZeroCost(Edge) float64 { return 0 }

// LongestThrough computes λ_j for every node: the length of the longest
// source-to-sink path that passes through v_j, with node WCETs and the given
// edge weights. It is the dynamic program Alg. 1 re-runs after each wave.
// The task must be acyclic (Validate).
func (t *Task) LongestThrough(w EdgeWeight) []float64 {
	order, err := t.TopoOrder()
	if err != nil {
		panic(err) // callers validate first; a cycle is a programming error
	}
	n := len(t.Nodes)
	// head[j]: longest path length from the source up to and including v_j.
	head := make([]float64, n)
	for _, id := range order {
		best := 0.0
		for _, p := range t.preds[id] {
			e, _ := t.Edge(p, id)
			if l := head[p] + w(e); l > best {
				best = l
			}
		}
		head[id] = best + t.Nodes[id].WCET
	}
	// tail[j]: longest path length from v_j (exclusive) to the sink.
	tail := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		for _, s := range t.succs[id] {
			e, _ := t.Edge(id, s)
			if l := w(e) + t.Nodes[s].WCET + tail[s]; l > best {
				best = l
			}
		}
		tail[id] = best
	}
	lambda := make([]float64, n)
	for id := 0; id < n; id++ {
		lambda[id] = head[id] + tail[id]
	}
	return lambda
}

// CriticalPathLength returns the length of the longest source-to-sink path
// under the given edge weights (the makespan lower bound on infinitely many
// cores).
func (t *Task) CriticalPathLength(w EdgeWeight) float64 {
	lambda := t.LongestThrough(w)
	var m float64
	for _, l := range lambda {
		if l > m {
			m = l
		}
	}
	return m
}

// CriticalPath returns one longest source-to-sink path (node IDs in
// execution order) under the given edge weights.
func (t *Task) CriticalPath(w EdgeWeight) []NodeID {
	order, err := t.TopoOrder()
	if err != nil {
		panic(err)
	}
	n := len(t.Nodes)
	head := make([]float64, n)
	from := make([]NodeID, n)
	for i := range from {
		from[i] = -1
	}
	for _, id := range order {
		best, bestFrom := 0.0, NodeID(-1)
		for _, p := range t.preds[id] {
			e, _ := t.Edge(p, id)
			if l := head[p] + w(e); l > best || bestFrom < 0 {
				best, bestFrom = l, p
			}
		}
		head[id] = best + t.Nodes[id].WCET
		from[id] = bestFrom
	}
	// Find the sink-side endpoint with the longest head (the sink itself
	// for a single-sink task, but tolerate multi-sink graphs too).
	end := NodeID(0)
	for id := 1; id < n; id++ {
		if len(t.succs[NodeID(id)]) == 0 && head[id] > head[end] {
			end = NodeID(id)
		}
	}
	if len(t.succs[end]) != 0 { // no sink found (shouldn't happen post-Validate)
		for id := 0; id < n; id++ {
			if head[id] > head[end] {
				end = NodeID(id)
			}
		}
	}
	var path []NodeID
	for id := end; id >= 0; id = from[id] {
		path = append(path, id)
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Clone returns a deep copy of the task (nodes, edges and adjacency).
func (t *Task) Clone() *Task {
	c := New(t.Name, t.Period, t.Deadline)
	for _, n := range t.Nodes {
		nn := *n
		c.Nodes = append(c.Nodes, &nn)
	}
	c.Edges = append(c.Edges, t.Edges...)
	for id, ps := range t.preds {
		c.preds[id] = append([]NodeID(nil), ps...)
	}
	for id, ss := range t.succs {
		c.succs[id] = append([]NodeID(nil), ss...)
	}
	return c
}

// DOT renders the task in Graphviz dot syntax, labelling nodes with
// "name (C_j)" and edges with μ_{j,k}, mirroring Fig. 1 of the paper.
func (t *Task) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", t.Name)
	for _, n := range t.Nodes {
		fmt.Fprintf(&sb, "  n%d [label=\"%s (%.4g)\"];\n", n.ID, n.Name, n.WCET)
	}
	for _, e := range t.Edges {
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%.4g\"];\n", e.From, e.To, e.Cost)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Package dag implements the paper's parallel task model: a recurrent DAG
// task τ_i = {V_i, E_i, T_i, D_i}. Nodes carry worst-case computation times
// (C_j), produced-data volumes (δ_j) and scheduler-assigned priorities
// (P_j); edges carry communication costs (μ_{j,k}) and ETM speed-up ratios
// (α_{j,k}). Every task has exactly one source and one sink, matching the
// model of He et al. [8] that the paper adopts.
package dag

import (
	"fmt"
	"strings"
)

// NodeID identifies a node within a single task. IDs are dense indices into
// Task.Nodes, assigned by AddNode in creation order.
type NodeID int

// Node is one vertex v_j of a DAG task: a series of computations that must
// execute sequentially on one core.
type Node struct {
	ID   NodeID
	Name string

	// WCET is C_j, the node's worst-case computation time in abstract
	// time units.
	WCET float64

	// Data is δ_j, the volume in bytes of the dependent data the node
	// produces for its successors (obtained by profiling in the paper).
	Data int64

	// Priority is P_j. Higher values dispatch first. It is written by the
	// schedulers in internal/sched.
	Priority int
}

// Edge is a dependency e_{j,k}: To may only start once From has finished and
// the produced data has been transmitted.
type Edge struct {
	From, To NodeID

	// Cost is μ_{j,k}, the worst-case communication cost of the edge when
	// no L1.5 ways assist the transfer.
	Cost float64

	// Alpha is α_{j,k}, the ETM speed-up ratio of the edge, in (0,1).
	Alpha float64
}

// Task is a recurrent DAG task τ_i.
//
// The adjacency is kept flat, struct-of-arrays style: per-node
// predecessor/successor ID lists plus parallel edge-index lists into
// Edges, so the simulator hot paths (longest-path dynamic programs, the
// dispatch loops) walk dense slices instead of chasing maps or scanning
// the edge list. The topological order is computed once and cached; the
// mutating entry points (AddNode, AddEdge) invalidate it.
type Task struct {
	Name     string
	Period   float64 // T_i
	Deadline float64 // D_i, constrained deadline: D_i <= T_i

	Nodes []*Node
	Edges []Edge

	preds [][]NodeID // indexed by NodeID
	succs [][]NodeID

	// predEdge[v][k] is the index into Edges of the edge preds[v][k]->v;
	// succEdge[v][k] of v->succs[v][k]. Kept aligned by AddEdge.
	predEdge [][]int32
	succEdge [][]int32

	topo []NodeID // cached topological order; nil until topoOrder
}

// New returns an empty task with the given name, period and deadline.
func New(name string, period, deadline float64) *Task {
	return &Task{Name: name, Period: period, Deadline: deadline}
}

// AddNode appends a node and returns its ID.
func (t *Task) AddNode(name string, wcet float64, data int64) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, &Node{ID: id, Name: name, WCET: wcet, Data: data})
	t.preds = append(t.preds, nil)
	t.succs = append(t.succs, nil)
	t.predEdge = append(t.predEdge, nil)
	t.succEdge = append(t.succEdge, nil)
	t.topo = nil
	return id
}

// AddEdge adds a dependency edge with communication cost and ETM ratio.
// Adding an edge between unknown nodes or a duplicate edge returns an error.
func (t *Task) AddEdge(from, to NodeID, cost, alpha float64) error {
	if !t.valid(from) || !t.valid(to) {
		return fmt.Errorf("dag: edge %d->%d references unknown node", from, to)
	}
	if from == to {
		return fmt.Errorf("dag: self-loop on node %d", from)
	}
	for _, s := range t.succs[from] {
		if s == to {
			return fmt.Errorf("dag: duplicate edge %d->%d", from, to)
		}
	}
	ei := int32(len(t.Edges))
	t.Edges = append(t.Edges, Edge{From: from, To: to, Cost: cost, Alpha: alpha})
	t.succs[from] = append(t.succs[from], to)
	t.succEdge[from] = append(t.succEdge[from], ei)
	t.preds[to] = append(t.preds[to], from)
	t.predEdge[to] = append(t.predEdge[to], ei)
	t.topo = nil
	return nil
}

// MustAddEdge is AddEdge for statically-known graphs; it panics on error.
func (t *Task) MustAddEdge(from, to NodeID, cost, alpha float64) {
	if err := t.AddEdge(from, to, cost, alpha); err != nil {
		panic(err)
	}
}

func (t *Task) valid(id NodeID) bool { return id >= 0 && int(id) < len(t.Nodes) }

// Node returns the node with the given ID.
func (t *Task) Node(id NodeID) *Node { return t.Nodes[id] }

// Pred returns pre(v): the predecessors of id, in edge-insertion order.
func (t *Task) Pred(id NodeID) []NodeID {
	if !t.valid(id) {
		return nil
	}
	return t.preds[id]
}

// Succ returns suc(v): the successors of id, in edge-insertion order.
func (t *Task) Succ(id NodeID) []NodeID {
	if !t.valid(id) {
		return nil
	}
	return t.succs[id]
}

// Edge returns the edge from->to and whether it exists. The lookup scans
// only from's out-edges, so it is O(out-degree), not O(|E|).
func (t *Task) Edge(from, to NodeID) (Edge, bool) {
	if !t.valid(from) {
		return Edge{}, false
	}
	for k, s := range t.succs[from] {
		if s == to {
			return t.Edges[t.succEdge[from][k]], true
		}
	}
	return Edge{}, false
}

// PredEdges returns the indices into Edges of id's incoming edges,
// aligned with Pred(id). The slice is owned by the task; callers must
// not mutate it.
func (t *Task) PredEdges(id NodeID) []int32 {
	if !t.valid(id) {
		return nil
	}
	return t.predEdge[id]
}

// SuccEdges returns the indices into Edges of id's outgoing edges,
// aligned with Succ(id). The slice is owned by the task; callers must
// not mutate it.
func (t *Task) SuccEdges(id NodeID) []int32 {
	if !t.valid(id) {
		return nil
	}
	return t.succEdge[id]
}

// Source returns the unique source node's ID. Call Validate first; Source
// returns -1 if there is not exactly one node without predecessors.
func (t *Task) Source() NodeID {
	src := NodeID(-1)
	for _, n := range t.Nodes {
		if len(t.preds[n.ID]) == 0 {
			if src >= 0 {
				return -1
			}
			src = n.ID
		}
	}
	return src
}

// Sink returns the unique sink node's ID, or -1 (see Source).
func (t *Task) Sink() NodeID {
	sink := NodeID(-1)
	for _, n := range t.Nodes {
		if len(t.succs[n.ID]) == 0 {
			if sink >= 0 {
				return -1
			}
			sink = n.ID
		}
	}
	return sink
}

// Volume returns W_i = Σ C_j, the total workload of the task.
func (t *Task) Volume() float64 {
	var w float64
	for _, n := range t.Nodes {
		w += n.WCET
	}
	return w
}

// Utilization returns U_i = W_i / T_i.
func (t *Task) Utilization() float64 {
	if t.Period <= 0 {
		return 0
	}
	return t.Volume() / t.Period
}

// Validate checks the structural invariants of the task model: at least one
// node, a single source, a single sink, acyclicity, non-negative WCETs and
// costs, α in [0,1), and D_i <= T_i.
func (t *Task) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("dag %q: no nodes", t.Name)
	}
	if t.Deadline > t.Period {
		return fmt.Errorf("dag %q: deadline %g exceeds period %g", t.Name, t.Deadline, t.Period)
	}
	if t.Source() < 0 {
		return fmt.Errorf("dag %q: must have exactly one source node", t.Name)
	}
	if t.Sink() < 0 {
		return fmt.Errorf("dag %q: must have exactly one sink node", t.Name)
	}
	for _, n := range t.Nodes {
		if n.WCET < 0 {
			return fmt.Errorf("dag %q: node %d has negative WCET", t.Name, n.ID)
		}
		if n.Data < 0 {
			return fmt.Errorf("dag %q: node %d has negative data volume", t.Name, n.ID)
		}
	}
	for _, e := range t.Edges {
		if e.Cost < 0 {
			return fmt.Errorf("dag %q: edge %d->%d has negative cost", t.Name, e.From, e.To)
		}
		if e.Alpha < 0 || e.Alpha >= 1 {
			return fmt.Errorf("dag %q: edge %d->%d has alpha %g outside [0,1)", t.Name, e.From, e.To, e.Alpha)
		}
	}
	if _, err := t.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order of the node IDs (Kahn's algorithm,
// lowest-ID-first for determinism) or an error if the graph has a cycle.
// The order is computed once and cached until the task's structure changes;
// the returned slice is a copy the caller may keep.
func (t *Task) TopoOrder() ([]NodeID, error) {
	order, err := t.topoOrder()
	if err != nil {
		return nil, err
	}
	return append([]NodeID(nil), order...), nil
}

// topoOrder returns the cached topological order, computing it on first
// use. The returned slice is owned by the task.
func (t *Task) topoOrder() ([]NodeID, error) {
	if t.topo != nil {
		return t.topo, nil
	}
	indeg := make([]int, len(t.Nodes))
	for id := range t.Nodes {
		indeg[id] = len(t.preds[id])
	}
	// ready is a min-heap of node IDs (lowest-ID-first determinism).
	var ready idHeap
	for id := range t.Nodes {
		if indeg[id] == 0 {
			ready.push(NodeID(id))
		}
	}
	order := make([]NodeID, 0, len(t.Nodes))
	for len(ready) > 0 {
		id := ready.pop()
		order = append(order, id)
		for _, s := range t.succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready.push(s)
			}
		}
	}
	if len(order) != len(t.Nodes) {
		return nil, fmt.Errorf("dag %q: cycle detected", t.Name)
	}
	t.topo = order
	return order, nil
}

// idHeap is a binary min-heap of node IDs: the ready set of Kahn's
// algorithm, popping the lowest ID first.
type idHeap []NodeID

func (h *idHeap) push(id NodeID) {
	*h = append(*h, id)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *idHeap) pop() NodeID {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && old[l] < old[small] {
			small = l
		}
		if r < n && old[r] < old[small] {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// EdgeWeight maps an edge to the communication cost used for path-length
// computations. The plain task model uses Edge.Cost; the co-design scheduler
// substitutes the ETM-reduced cost.
type EdgeWeight func(e Edge) float64

// RawCost is the EdgeWeight of the unassisted system: the full μ_{j,k}.
func RawCost(e Edge) float64 { return e.Cost }

// ZeroCost ignores communication entirely (computation-only paths), used by
// the workload generator to steer the critical-path ratio cpr, which the
// paper defines over computation workload.
func ZeroCost(Edge) float64 { return 0 }

// LongestThrough computes λ_j for every node: the length of the longest
// source-to-sink path that passes through v_j, with node WCETs and the given
// edge weights. It is the dynamic program Alg. 1 re-runs after each wave.
// The task must be acyclic (Validate).
func (t *Task) LongestThrough(w EdgeWeight) []float64 {
	return t.LongestThroughInto(w, &PathBuf{})
}

// PathBuf holds the scratch arrays of the longest-path dynamic program so
// callers that re-run it (Alg. 1 recomputes λ after every wave) can reuse
// one allocation across runs.
type PathBuf struct {
	head, tail, lambda []float64
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// LongestThroughInto is LongestThrough with caller-owned scratch. The
// returned slice aliases buf and is overwritten by the next call.
func (t *Task) LongestThroughInto(w EdgeWeight, buf *PathBuf) []float64 {
	order, err := t.topoOrder()
	if err != nil {
		panic(err) // callers validate first; a cycle is a programming error
	}
	n := len(t.Nodes)
	// head[j]: longest path length from the source up to and including v_j.
	head := growFloats(buf.head, n)
	for _, id := range order {
		best := 0.0
		pe := t.predEdge[id]
		for k, p := range t.preds[id] {
			if l := head[p] + w(t.Edges[pe[k]]); l > best {
				best = l
			}
		}
		head[id] = best + t.Nodes[id].WCET
	}
	// tail[j]: longest path length from v_j (exclusive) to the sink.
	tail := growFloats(buf.tail, n)
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		se := t.succEdge[id]
		for k, s := range t.succs[id] {
			if l := w(t.Edges[se[k]]) + t.Nodes[s].WCET + tail[s]; l > best {
				best = l
			}
		}
		tail[id] = best
	}
	lambda := growFloats(buf.lambda, n)
	for id := 0; id < n; id++ {
		lambda[id] = head[id] + tail[id]
	}
	buf.head, buf.tail, buf.lambda = head, tail, lambda
	return lambda
}

// CriticalPathLength returns the length of the longest source-to-sink path
// under the given edge weights (the makespan lower bound on infinitely many
// cores).
func (t *Task) CriticalPathLength(w EdgeWeight) float64 {
	lambda := t.LongestThrough(w)
	var m float64
	for _, l := range lambda {
		if l > m {
			m = l
		}
	}
	return m
}

// CriticalPath returns one longest source-to-sink path (node IDs in
// execution order) under the given edge weights.
func (t *Task) CriticalPath(w EdgeWeight) []NodeID {
	order, err := t.topoOrder()
	if err != nil {
		panic(err)
	}
	n := len(t.Nodes)
	head := make([]float64, n)
	from := make([]NodeID, n)
	for i := range from {
		from[i] = -1
	}
	for _, id := range order {
		best, bestFrom := 0.0, NodeID(-1)
		pe := t.predEdge[id]
		for k, p := range t.preds[id] {
			if l := head[p] + w(t.Edges[pe[k]]); l > best || bestFrom < 0 {
				best, bestFrom = l, p
			}
		}
		head[id] = best + t.Nodes[id].WCET
		from[id] = bestFrom
	}
	// Find the sink-side endpoint with the longest head (the sink itself
	// for a single-sink task, but tolerate multi-sink graphs too).
	end := NodeID(0)
	for id := 1; id < n; id++ {
		if len(t.succs[NodeID(id)]) == 0 && head[id] > head[end] {
			end = NodeID(id)
		}
	}
	if len(t.succs[end]) != 0 { // no sink found (shouldn't happen post-Validate)
		for id := 0; id < n; id++ {
			if head[id] > head[end] {
				end = NodeID(id)
			}
		}
	}
	var path []NodeID
	for id := end; id >= 0; id = from[id] {
		path = append(path, id)
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Clone returns a deep copy of the task (nodes, edges and adjacency).
func (t *Task) Clone() *Task {
	c := New(t.Name, t.Period, t.Deadline)
	c.Nodes = make([]*Node, len(t.Nodes))
	for i, n := range t.Nodes {
		nn := *n
		c.Nodes[i] = &nn
	}
	c.Edges = append([]Edge(nil), t.Edges...)
	c.preds = cloneIDRows(t.preds)
	c.succs = cloneIDRows(t.succs)
	c.predEdge = cloneEdgeRows(t.predEdge)
	c.succEdge = cloneEdgeRows(t.succEdge)
	if t.topo != nil {
		c.topo = append([]NodeID(nil), t.topo...)
	}
	return c
}

func cloneIDRows(rows [][]NodeID) [][]NodeID {
	c := make([][]NodeID, len(rows))
	for i, r := range rows {
		if r != nil {
			c[i] = append([]NodeID(nil), r...)
		}
	}
	return c
}

func cloneEdgeRows(rows [][]int32) [][]int32 {
	c := make([][]int32, len(rows))
	for i, r := range rows {
		if r != nil {
			c[i] = append([]int32(nil), r...)
		}
	}
	return c
}

// DOT renders the task in Graphviz dot syntax, labelling nodes with
// "name (C_j)" and edges with μ_{j,k}, mirroring Fig. 1 of the paper.
func (t *Task) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", t.Name)
	for _, n := range t.Nodes {
		fmt.Fprintf(&sb, "  n%d [label=\"%s (%.4g)\"];\n", n.ID, n.Name, n.WCET)
	}
	for _, e := range t.Edges {
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%.4g\"];\n", e.From, e.To, e.Cost)
	}
	sb.WriteString("}\n")
	return sb.String()
}

package dag

import "testing"

// condExample builds: src -> branch -> {armA: a1->a2 | armB: b1} -> merge
// -> sink, plus an unconditional side node s1 between src and sink.
func condExample(t *testing.T) (*CondTask, map[string]NodeID) {
	t.Helper()
	task := New("cond", 100, 100)
	ids := map[string]NodeID{}
	add := func(name string, wcet float64) {
		ids[name] = task.AddNode(name, wcet, 1024)
	}
	add("src", 1)
	add("branch", 2)
	add("a1", 5)
	add("a2", 5)
	add("b1", 3)
	add("merge", 2)
	add("s1", 4)
	add("sink", 1)
	edges := [][2]string{
		{"src", "branch"}, {"branch", "a1"}, {"a1", "a2"}, {"a2", "merge"},
		{"branch", "b1"}, {"b1", "merge"}, {"merge", "sink"},
		{"src", "s1"}, {"s1", "sink"},
	}
	for _, e := range edges {
		task.MustAddEdge(ids[e[0]], ids[e[1]], 1, 0.5)
	}
	ct := NewConditional(task)
	if err := ct.AddConditional(ids["branch"], ids["merge"],
		[][]NodeID{{ids["a1"], ids["a2"]}, {ids["b1"]}}); err != nil {
		t.Fatal(err)
	}
	return ct, ids
}

func TestConditionalScenarios(t *testing.T) {
	ct, ids := condExample(t)
	if ct.Scenarios() != 2 {
		t.Fatalf("scenarios = %d", ct.Scenarios())
	}

	// Arm A chosen: b1 gone, a1/a2 present.
	sa, err := ct.Scenario([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(sa.Nodes) != 7 {
		t.Errorf("scenario A nodes = %d, want 7", len(sa.Nodes))
	}
	if sa.Volume() != 1+2+5+5+2+4+1 {
		t.Errorf("scenario A volume = %g", sa.Volume())
	}

	// Arm B chosen: shorter.
	sb, err := ct.Scenario([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Nodes) != 6 {
		t.Errorf("scenario B nodes = %d, want 6", len(sb.Nodes))
	}
	if sb.Volume() != 1+2+3+2+4+1 {
		t.Errorf("scenario B volume = %g", sb.Volume())
	}
	// Both scenarios are valid single-source/sink DAGs (Scenario
	// validates), and the longer arm dominates the critical path.
	if sa.CriticalPathLength(RawCost) <= sb.CriticalPathLength(RawCost) {
		t.Error("arm A should be the longer scenario")
	}
	_ = ids
}

func TestConditionalValidationErrors(t *testing.T) {
	task := New("bad", 10, 10)
	src := task.AddNode("src", 1, 0)
	b := task.AddNode("b", 1, 0)
	x := task.AddNode("x", 1, 0)
	y := task.AddNode("y", 1, 0)
	m := task.AddNode("m", 1, 0)
	sink := task.AddNode("sink", 1, 0)
	task.MustAddEdge(src, b, 1, 0.5)
	task.MustAddEdge(b, x, 1, 0.5)
	task.MustAddEdge(b, y, 1, 0.5)
	task.MustAddEdge(x, m, 1, 0.5)
	task.MustAddEdge(y, m, 1, 0.5)
	task.MustAddEdge(m, sink, 1, 0.5)

	ct := NewConditional(task)
	cases := []struct {
		name  string
		setup func() error
	}{
		{"one arm", func() error {
			return ct.AddConditional(b, m, [][]NodeID{{x}})
		}},
		{"empty arm", func() error {
			return ct.AddConditional(b, m, [][]NodeID{{x}, {}})
		}},
		{"unknown node", func() error {
			return ct.AddConditional(b, m, [][]NodeID{{x}, {99}})
		}},
		{"boundary in arm", func() error {
			return ct.AddConditional(b, m, [][]NodeID{{x}, {m}})
		}},
		{"duplicated across arms", func() error {
			return ct.AddConditional(b, m, [][]NodeID{{x}, {x}})
		}},
		{"outside predecessor", func() error {
			// sink's pred is m, not b: not an arm.
			return ct.AddConditional(b, m, [][]NodeID{{x}, {sink}})
		}},
	}
	for _, c := range cases {
		if err := c.setup(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	// A correct conditional still works afterwards.
	if err := ct.AddConditional(b, m, [][]NodeID{{x}, {y}}); err != nil {
		t.Fatalf("valid conditional rejected: %v", err)
	}
	// Arm nodes cannot join a second conditional.
	if err := ct.AddConditional(b, m, [][]NodeID{{x}, {y}}); err == nil {
		t.Error("overlapping conditional accepted")
	}
}

func TestScenarioChoiceErrors(t *testing.T) {
	ct, _ := condExample(t)
	if _, err := ct.Scenario([]int{}); err == nil {
		t.Error("wrong choice arity accepted")
	}
	if _, err := ct.Scenario([]int{5}); err == nil {
		t.Error("out-of-range arm accepted")
	}
}

func TestEachScenarioEnumerates(t *testing.T) {
	ct, ids := condExample(t)
	// Add a second conditional over the side chain: wrap s1 in a
	// degenerate conditional with two single-node arms by adding another
	// node first.
	s2 := ct.Task.AddNode("s2", 6, 1024)
	ct.Task.MustAddEdge(ids["src"], s2, 1, 0.5)
	ct.Task.MustAddEdge(s2, ids["sink"], 1, 0.5)
	if err := ct.AddConditional(ids["src"], ids["sink"],
		[][]NodeID{{ids["s1"]}, {s2}}); err != nil {
		t.Fatal(err)
	}
	if ct.Scenarios() != 4 {
		t.Fatalf("scenarios = %d", ct.Scenarios())
	}
	var seen [][]int
	err := ct.EachScenario(func(choice []int, task *Task) error {
		seen = append(seen, choice)
		return task.Validate()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Errorf("enumerated %d scenarios", len(seen))
	}
	// All distinct.
	uniq := map[[2]int]bool{}
	for _, c := range seen {
		uniq[[2]int{c[0], c[1]}] = true
	}
	if len(uniq) != 4 {
		t.Errorf("duplicate scenarios: %v", seen)
	}
}

package dag

import "strconv"

// Fig1Example builds the 7-node example DAG of Fig. 1 / Fig. 6 of the paper:
// a source v1 fanning out to v2, v3, v4 (communication cost 2 each), a middle
// join layer v5, v6, and a sink v7. Computation times and costs follow the
// figure's annotations; α defaults to 0.5 on every edge. The example is used
// by tests, documentation and the quickstart.
func Fig1Example() *Task {
	t := New("fig1", 100, 100)
	const alpha = 0.5
	v1 := t.AddNode("v1", 3, 4096)
	v2 := t.AddNode("v2", 4, 4096)
	v3 := t.AddNode("v3", 2, 6144)
	v4 := t.AddNode("v4", 5, 2048)
	v5 := t.AddNode("v5", 3, 4096)
	v6 := t.AddNode("v6", 4, 4096)
	v7 := t.AddNode("v7", 2, 0)
	t.MustAddEdge(v1, v2, 2, alpha)
	t.MustAddEdge(v1, v3, 2, alpha)
	t.MustAddEdge(v1, v4, 2, alpha)
	t.MustAddEdge(v2, v5, 3, alpha)
	t.MustAddEdge(v3, v5, 1, alpha)
	t.MustAddEdge(v3, v6, 2, alpha)
	t.MustAddEdge(v4, v6, 3, alpha)
	t.MustAddEdge(v5, v7, 2, alpha)
	t.MustAddEdge(v6, v7, 1, alpha)
	return t
}

// Chain builds a linear pipeline task with n nodes of the given WCET, edge
// cost and data volume — the degenerate DAG where communication dominates.
func Chain(name string, n int, wcet, cost, alpha float64, data int64) *Task {
	t := New(name, 0, 0)
	prev := NodeID(-1)
	for i := 0; i < n; i++ {
		id := t.AddNode(nodeName(i), wcet, data)
		if prev >= 0 {
			t.MustAddEdge(prev, id, cost, alpha)
		}
		prev = id
	}
	w := t.Volume() + float64(n-1)*cost
	t.Period, t.Deadline = w*2, w*2
	return t
}

// ForkJoin builds a source → width parallel branches → sink task.
func ForkJoin(name string, width int, wcet, cost, alpha float64, data int64) *Task {
	t := New(name, 0, 0)
	src := t.AddNode("src", wcet, data)
	sink := NodeID(-1)
	branches := make([]NodeID, width)
	for i := range branches {
		branches[i] = t.AddNode(nodeName(i+1), wcet, data)
		t.MustAddEdge(src, branches[i], cost, alpha)
	}
	sink = t.AddNode("sink", wcet, 0)
	for _, b := range branches {
		t.MustAddEdge(b, sink, cost, alpha)
	}
	w := t.Volume() + 2*cost
	t.Period, t.Deadline = w*2, w*2
	return t
}

func nodeName(i int) string { return "v" + strconv.Itoa(i+1) }

package dag

import (
	"encoding/json"
	"fmt"
)

// jsonTask is the stable on-disk schema for a DAG task. Node IDs are
// implicit (array order), so hand-written files stay compact.
type jsonTask struct {
	Name     string     `json:"name"`
	Period   float64    `json:"period"`
	Deadline float64    `json:"deadline"`
	Nodes    []jsonNode `json:"nodes"`
	Edges    []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Name string  `json:"name"`
	WCET float64 `json:"wcet"`
	Data int64   `json:"data,omitempty"`
}

type jsonEdge struct {
	From  int     `json:"from"`
	To    int     `json:"to"`
	Cost  float64 `json:"cost"`
	Alpha float64 `json:"alpha"`
}

// MarshalJSON encodes the task in the documented schema.
func (t *Task) MarshalJSON() ([]byte, error) {
	jt := jsonTask{
		Name:     t.Name,
		Period:   t.Period,
		Deadline: t.Deadline,
		Nodes:    make([]jsonNode, len(t.Nodes)),
		Edges:    make([]jsonEdge, len(t.Edges)),
	}
	for i, n := range t.Nodes {
		jt.Nodes[i] = jsonNode{Name: n.Name, WCET: n.WCET, Data: n.Data}
	}
	for i, e := range t.Edges {
		jt.Edges[i] = jsonEdge{From: int(e.From), To: int(e.To), Cost: e.Cost, Alpha: e.Alpha}
	}
	return json.Marshal(jt)
}

// UnmarshalJSON decodes and validates a task (structure only — Validate
// runs so a malformed file fails loudly at load time).
func (t *Task) UnmarshalJSON(data []byte) error {
	var jt jsonTask
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	nt := New(jt.Name, jt.Period, jt.Deadline)
	for _, n := range jt.Nodes {
		nt.AddNode(n.Name, n.WCET, n.Data)
	}
	for _, e := range jt.Edges {
		if e.From < 0 || e.From >= len(nt.Nodes) || e.To < 0 || e.To >= len(nt.Nodes) {
			return fmt.Errorf("dag: edge %d->%d references unknown node", e.From, e.To)
		}
		if err := nt.AddEdge(NodeID(e.From), NodeID(e.To), e.Cost, e.Alpha); err != nil {
			return err
		}
	}
	if err := nt.Validate(); err != nil {
		return err
	}
	*t = *nt
	return nil
}

// LoadJSON parses a task from JSON bytes.
func LoadJSON(data []byte) (*Task, error) {
	t := New("", 0, 0)
	if err := json.Unmarshal(data, t); err != nil {
		return nil, err
	}
	return t, nil
}

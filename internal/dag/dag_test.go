package dag

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFig1ExampleValid(t *testing.T) {
	task := Fig1Example()
	if err := task.Validate(); err != nil {
		t.Fatalf("Fig1Example invalid: %v", err)
	}
	if got := task.Source(); got != 0 {
		t.Errorf("Source = %d, want 0", got)
	}
	if got := task.Sink(); got != 6 {
		t.Errorf("Sink = %d, want 6 (v7)", got)
	}
	if n := len(task.Nodes); n != 7 {
		t.Errorf("nodes = %d, want 7", n)
	}
	if n := len(task.Edges); n != 9 {
		t.Errorf("edges = %d, want 9", n)
	}
}

func TestPredSucc(t *testing.T) {
	task := Fig1Example()
	// v1 (ID 0) fans out to v2, v3, v4 (IDs 1,2,3).
	succ := task.Succ(0)
	if len(succ) != 3 || succ[0] != 1 || succ[1] != 2 || succ[2] != 3 {
		t.Errorf("Succ(v1) = %v", succ)
	}
	// v7 (ID 6) joins v5, v6.
	pred := task.Pred(6)
	if len(pred) != 2 || pred[0] != 4 || pred[1] != 5 {
		t.Errorf("Pred(v7) = %v", pred)
	}
	if len(task.Pred(0)) != 0 {
		t.Error("source should have no predecessors")
	}
	if len(task.Succ(6)) != 0 {
		t.Error("sink should have no successors")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	task := New("t", 10, 10)
	a := task.AddNode("a", 1, 0)
	b := task.AddNode("b", 1, 0)
	if err := task.AddEdge(a, b, 1, 0.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := task.AddEdge(a, b, 1, 0.5); err == nil {
		t.Error("duplicate edge not rejected")
	}
	if err := task.AddEdge(a, a, 1, 0.5); err == nil {
		t.Error("self-loop not rejected")
	}
	if err := task.AddEdge(a, 99, 1, 0.5); err == nil {
		t.Error("unknown node not rejected")
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if err := New("e", 1, 1).Validate(); err == nil {
			t.Error("empty task validated")
		}
	})
	t.Run("two sources", func(t *testing.T) {
		task := New("t", 10, 10)
		a := task.AddNode("a", 1, 0)
		b := task.AddNode("b", 1, 0)
		c := task.AddNode("c", 1, 0)
		task.MustAddEdge(a, c, 1, 0.5)
		task.MustAddEdge(b, c, 1, 0.5)
		if err := task.Validate(); err == nil {
			t.Error("two-source task validated")
		}
	})
	t.Run("two sinks", func(t *testing.T) {
		task := New("t", 10, 10)
		a := task.AddNode("a", 1, 0)
		b := task.AddNode("b", 1, 0)
		c := task.AddNode("c", 1, 0)
		task.MustAddEdge(a, b, 1, 0.5)
		task.MustAddEdge(a, c, 1, 0.5)
		if err := task.Validate(); err == nil {
			t.Error("two-sink task validated")
		}
	})
	t.Run("deadline beyond period", func(t *testing.T) {
		task := New("t", 10, 20)
		task.AddNode("a", 1, 0)
		if err := task.Validate(); err == nil {
			t.Error("D > T validated")
		}
	})
	t.Run("bad alpha", func(t *testing.T) {
		task := New("t", 10, 10)
		a := task.AddNode("a", 1, 0)
		b := task.AddNode("b", 1, 0)
		task.MustAddEdge(a, b, 1, 1.0) // α must be < 1
		if err := task.Validate(); err == nil {
			t.Error("alpha = 1.0 validated")
		}
	})
	t.Run("negative WCET", func(t *testing.T) {
		task := New("t", 10, 10)
		task.AddNode("a", -1, 0)
		if err := task.Validate(); err == nil {
			t.Error("negative WCET validated")
		}
	})
}

func TestTopoOrder(t *testing.T) {
	task := Fig1Example()
	order, err := task.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range task.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topo order", e.From, e.To)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	task := New("cyc", 10, 10)
	a := task.AddNode("a", 1, 0)
	b := task.AddNode("b", 1, 0)
	c := task.AddNode("c", 1, 0)
	task.MustAddEdge(a, b, 1, 0.5)
	task.MustAddEdge(b, c, 1, 0.5)
	// Bypass AddEdge's adjacency to build a cycle the cheap way.
	task.Edges = append(task.Edges, Edge{From: c, To: a})
	task.preds[a] = append(task.preds[a], c)
	task.succs[c] = append(task.succs[c], a)
	if _, err := task.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestVolumeAndUtilization(t *testing.T) {
	task := Fig1Example()
	want := 3.0 + 4 + 2 + 5 + 3 + 4 + 2
	if got := task.Volume(); got != want {
		t.Errorf("Volume = %g, want %g", got, want)
	}
	if got := task.Utilization(); got != want/100 {
		t.Errorf("Utilization = %g, want %g", got, want/100)
	}
}

func TestLongestThroughChain(t *testing.T) {
	// On a chain every node lies on the single path, so all λ_j are equal
	// to total WCET + total comm cost.
	task := Chain("c", 4, 2, 3, 0.5, 1024)
	lambda := task.LongestThrough(RawCost)
	want := 4*2.0 + 3*3.0
	for id, l := range lambda {
		if l != want {
			t.Errorf("λ[%d] = %g, want %g", id, l, want)
		}
	}
	if got := task.CriticalPathLength(RawCost); got != want {
		t.Errorf("CriticalPathLength = %g, want %g", got, want)
	}
	if got := task.CriticalPathLength(ZeroCost); got != 8 {
		t.Errorf("computation-only critical path = %g, want 8", got)
	}
}

func TestLongestThroughFig1(t *testing.T) {
	task := Fig1Example()
	lambda := task.LongestThrough(RawCost)
	// Longest path: v1 -(2)- v4 -(3)- v6 -(1)- v7 = 3+2+5+3+4+1+2 = 20.
	if lambda[0] != 20 {
		t.Errorf("λ[v1] = %g, want 20", lambda[0])
	}
	if lambda[3] != 20 { // v4 on the critical path
		t.Errorf("λ[v4] = %g, want 20", lambda[3])
	}
	// v2's longest path: v1 -2- v2 -3- v5 -2- v7 = 3+2+4+3+3+2+2 = 19.
	if lambda[1] != 19 {
		t.Errorf("λ[v2] = %g, want 19", lambda[1])
	}
	path := task.CriticalPath(RawCost)
	want := []NodeID{0, 3, 5, 6}
	if len(path) != len(want) {
		t.Fatalf("CriticalPath = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("CriticalPath = %v, want %v", path, want)
		}
	}
}

func TestClone(t *testing.T) {
	task := Fig1Example()
	c := task.Clone()
	c.Nodes[0].WCET = 99
	c.Nodes[0].Priority = 7
	if task.Nodes[0].WCET == 99 || task.Nodes[0].Priority == 7 {
		t.Error("Clone shares node storage with original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
	if c.Volume() == task.Volume() {
		t.Error("clone WCET edit should change volume")
	}
}

func TestDOT(t *testing.T) {
	s := Fig1Example().DOT()
	for _, want := range []string{"digraph", "n0 -> n1", "v7", "rankdir"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
}

func TestForkJoinShape(t *testing.T) {
	task := ForkJoin("fj", 5, 2, 1, 0.5, 2048)
	if err := task.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(task.Nodes) != 7 {
		t.Errorf("nodes = %d, want 7", len(task.Nodes))
	}
	if got := task.CriticalPathLength(RawCost); got != 2+1+2+1+2 {
		t.Errorf("critical path = %g, want 8", got)
	}
}

// randomLayeredTask builds a small random layered DAG with a single source
// and sink, the same family the workload generator produces.
func randomLayeredTask(r *rand.Rand) *Task {
	t := New("rand", 1000, 1000)
	src := t.AddNode("src", 1+r.Float64()*5, 1024)
	prev := []NodeID{src}
	layers := 2 + r.Intn(4)
	for l := 0; l < layers; l++ {
		width := 1 + r.Intn(4)
		cur := make([]NodeID, width)
		for i := range cur {
			cur[i] = t.AddNode("n", 1+r.Float64()*5, 1024)
			// Guarantee at least one predecessor.
			t.MustAddEdge(prev[r.Intn(len(prev))], cur[i], 1+r.Float64()*3, r.Float64()*0.7)
		}
		// Random extra edges.
		for _, p := range prev {
			for _, c := range cur {
				if _, ok := t.Edge(p, c); !ok && r.Float64() < 0.2 {
					t.MustAddEdge(p, c, 1+r.Float64()*3, r.Float64()*0.7)
				}
			}
		}
		prev = cur
	}
	sink := t.AddNode("sink", 1, 0)
	// Connect every current sink-like node to the single sink.
	for _, n := range t.Nodes {
		if n.ID != sink && len(t.Succ(n.ID)) == 0 {
			t.MustAddEdge(n.ID, sink, 1, 0.5)
		}
	}
	return t
}

// Property: λ_j is bounded below by the node's own WCET and above by the
// critical path length, and the critical path length equals max λ.
func TestQuickLambdaBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomLayeredTask(r)
		if task.Validate() != nil {
			return false
		}
		lambda := task.LongestThrough(RawCost)
		cp := task.CriticalPathLength(RawCost)
		var max float64
		for id, l := range lambda {
			if l < task.Nodes[id].WCET || l > cp+1e-9 {
				return false
			}
			if l > max {
				max = l
			}
		}
		return max == cp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the critical path returned by CriticalPath is a real path whose
// length equals CriticalPathLength.
func TestQuickCriticalPathConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomLayeredTask(r)
		path := task.CriticalPath(RawCost)
		if len(path) == 0 {
			return false
		}
		var length float64
		for i, id := range path {
			length += task.Nodes[id].WCET
			if i > 0 {
				e, ok := task.Edge(path[i-1], id)
				if !ok {
					return false // not a path
				}
				length += e.Cost
			}
		}
		cp := task.CriticalPathLength(RawCost)
		return length > cp-1e-9 && length < cp+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: reducing edge weights never increases any λ_j (monotonicity the
// scheduler relies on when L1.5 ways shrink communication costs).
func TestQuickLambdaMonotone(t *testing.T) {
	half := func(e Edge) float64 { return e.Cost / 2 }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomLayeredTask(r)
		full := task.LongestThrough(RawCost)
		reduced := task.LongestThrough(half)
		for i := range full {
			if reduced[i] > full[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package dag

import (
	"encoding/binary"
	"math"
)

// CanonicalVersion is the format version byte leading every canonical
// task encoding. Bump it whenever the byte layout below changes; the
// content-addressed caches built on top (internal/memo) then treat every
// previously stored trial as a miss instead of silently reusing results
// keyed under a different layout.
const CanonicalVersion byte = 1

// AppendCanonical appends the canonical byte encoding of the task to dst
// and returns the extended slice. The encoding is the task's *simulation
// identity*: two tasks with equal encodings are indistinguishable to every
// scheduler and simulator in this module, so a content-addressed cache may
// reuse one's results for the other.
//
// Layout (all integers big-endian, all floats IEEE-754 bits):
//
//	u8  CanonicalVersion
//	f64 Period, f64 Deadline
//	u32 node count, then per node in ID order:
//	    f64 WCET, i64 Data, i64 Priority
//	u32 edge count, then per edge in insertion order:
//	    u32 From, u32 To, f64 Cost, f64 Alpha
//
// Deliberate choices, load-bearing for cache soundness:
//
//   - display names (Task.Name, Node.Name) are excluded: no simulator
//     reads them, so they must not fragment the cache;
//   - Priority is included even though schedulers overwrite it: a task
//     submitted pre-prioritised simulates differently from the same task
//     before prioritisation;
//   - edges keep their insertion order rather than being sorted: the
//     Pred/Succ adjacency lists preserve that order and dispatch
//     tie-breaks may observe it, so "structurally equal modulo edge
//     order" is not a safe equivalence to collapse.
func (t *Task) AppendCanonical(dst []byte) []byte {
	dst = append(dst, CanonicalVersion)
	dst = appendF64(dst, t.Period)
	dst = appendF64(dst, t.Deadline)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.Nodes)))
	for _, n := range t.Nodes {
		dst = appendF64(dst, n.WCET)
		dst = binary.BigEndian.AppendUint64(dst, uint64(n.Data))
		dst = binary.BigEndian.AppendUint64(dst, uint64(n.Priority))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.Edges)))
	for _, e := range t.Edges {
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.From))
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.To))
		dst = appendF64(dst, e.Cost)
		dst = appendF64(dst, e.Alpha)
	}
	return dst
}

// CanonicalBytes returns the canonical encoding as a fresh slice (see
// AppendCanonical for the layout and its guarantees).
func (t *Task) CanonicalBytes() []byte {
	// 1 version + 2 task floats + per-node/edge fixed records.
	n := 1 + 16 + 4 + 24*len(t.Nodes) + 4 + 24*len(t.Edges)
	return t.AppendCanonical(make([]byte, 0, n))
}

// appendF64 appends the IEEE-754 bit pattern of v, big-endian. Encoding
// the bits (not a decimal rendering) makes the canonical form exact: two
// tasks differing in the last ulp of a cost encode differently.
func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

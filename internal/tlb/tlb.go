// Package tlb models address translation for the VIPT L1.5 Cache: a
// per-application page table (4 KB pages) and a small fully-associative TLB
// with FIFO replacement. User applications always access memory through
// virtual addresses (§2's assumption (ii)); the TLB supplies the physical
// tag while the virtual index selects the L1.5 set in parallel.
package tlb

import (
	"fmt"

	"l15cache/internal/mem"
	"l15cache/internal/metrics"
)

// PageBits is log2 of the page size (4 KB pages).
const PageBits = 12

// PageSize is the page size in bytes.
const PageSize = 1 << PageBits

// VirtAddr is a virtual byte address.
type VirtAddr uint32

// VPN returns the virtual page number.
func (v VirtAddr) VPN() uint32 { return uint32(v) >> PageBits }

// Offset returns the in-page offset.
func (v VirtAddr) Offset() uint32 { return uint32(v) & (PageSize - 1) }

// PageTable is one application's virtual-to-physical mapping, identified by
// an address-space/task ID. The paper's protector compares TIDs to prevent
// cross-application sharing of L1.5 ways; the TID here is that identity.
type PageTable struct {
	TID     uint16
	entries map[uint32]uint32 // VPN -> PFN
}

// NewPageTable returns an empty page table for the given task ID.
func NewPageTable(tid uint16) *PageTable {
	return &PageTable{TID: tid, entries: make(map[uint32]uint32)}
}

// Map installs a translation from the virtual page containing va to the
// physical page containing pa. Both are truncated to page boundaries.
func (pt *PageTable) Map(va VirtAddr, pa mem.PhysAddr) {
	pt.entries[va.VPN()] = uint32(pa) >> PageBits
}

// MapRange identity-offsets n bytes starting at va onto physical memory at
// pa, page by page.
func (pt *PageTable) MapRange(va VirtAddr, pa mem.PhysAddr, n int) {
	for off := 0; off < n; off += PageSize {
		pt.Map(va+VirtAddr(off), pa+mem.PhysAddr(off))
	}
}

// Lookup translates va, reporting failure for unmapped pages.
func (pt *PageTable) Lookup(va VirtAddr) (mem.PhysAddr, error) {
	pfn, ok := pt.entries[va.VPN()]
	if !ok {
		return 0, fmt.Errorf("tlb: page fault at %#x (tid %d)", uint32(va), pt.TID)
	}
	return mem.PhysAddr(pfn<<PageBits | va.Offset()), nil
}

// entry is one cached translation.
type entry struct {
	vpn, pfn uint32
	valid    bool
}

// TLB is a small fully-associative translation cache with FIFO replacement.
type TLB struct {
	entries []entry
	next    int
	missLat int

	pt *PageTable

	Hits, Misses uint64
}

// New returns a TLB with the given entry count and miss penalty (the page
// walk cost in cycles), bound to no page table.
func New(entries, missLatency int) (*TLB, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("tlb: entries = %d", entries)
	}
	if missLatency < 0 {
		return nil, fmt.Errorf("tlb: negative miss latency")
	}
	return &TLB{entries: make([]entry, entries), missLat: missLatency}, nil
}

// SetPageTable switches the TLB to a new address space, flushing all cached
// translations (the context-switch behaviour).
func (t *TLB) SetPageTable(pt *PageTable) {
	t.pt = pt
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.next = 0
}

// PageTable returns the active page table (nil before SetPageTable).
func (t *TLB) PageTable() *PageTable { return t.pt }

// TID returns the active task ID, or 0 with no address space bound.
func (t *TLB) TID() uint16 {
	if t.pt == nil {
		return 0
	}
	return t.pt.TID
}

// PublishMetrics registers the TLB's hit/miss counters with the registry
// under the given prefix; the Hits/Misses fields stay the live store and
// are copied in at snapshot time.
func (t *TLB) PublishMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	r.RegisterCollector(func(r *metrics.Registry) {
		r.Counter(prefix + ".hits").Store(t.Hits)
		r.Counter(prefix + ".misses").Store(t.Misses)
	})
}

// Translate returns the physical address for va and the translation
// latency: 0 cycles on a TLB hit (the lookup overlaps the cache index), the
// miss penalty on a page walk.
func (t *TLB) Translate(va VirtAddr) (mem.PhysAddr, int, error) {
	if t.pt == nil {
		return 0, 0, fmt.Errorf("tlb: no page table bound")
	}
	vpn := va.VPN()
	for _, e := range t.entries {
		if e.valid && e.vpn == vpn {
			t.Hits++
			return mem.PhysAddr(e.pfn<<PageBits | va.Offset()), 0, nil
		}
	}
	t.Misses++
	pa, err := t.pt.Lookup(va)
	if err != nil {
		return 0, t.missLat, err
	}
	t.entries[t.next] = entry{vpn: vpn, pfn: uint32(pa) >> PageBits, valid: true}
	t.next = (t.next + 1) % len(t.entries)
	return pa, t.missLat, nil
}

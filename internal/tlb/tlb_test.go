package tlb

import (
	"testing"

	"l15cache/internal/mem"
)

func TestVirtAddrParts(t *testing.T) {
	va := VirtAddr(0x12345)
	if va.VPN() != 0x12 {
		t.Errorf("VPN = %#x", va.VPN())
	}
	if va.Offset() != 0x345 {
		t.Errorf("Offset = %#x", va.Offset())
	}
}

func TestPageTableLookup(t *testing.T) {
	pt := NewPageTable(7)
	pt.Map(0x1000, 0x8000)
	pa, err := pt.Lookup(0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0x8234 {
		t.Errorf("pa = %#x, want 0x8234", pa)
	}
	if _, err := pt.Lookup(0x9999); err == nil {
		t.Error("unmapped page translated")
	}
}

func TestMapRange(t *testing.T) {
	pt := NewPageTable(1)
	pt.MapRange(0x4000, 0x10000, 3*PageSize)
	for off := 0; off < 3*PageSize; off += PageSize / 2 {
		pa, err := pt.Lookup(VirtAddr(0x4000 + off))
		if err != nil {
			t.Fatalf("offset %#x: %v", off, err)
		}
		if pa != mem.PhysAddr(0x10000+off) {
			t.Errorf("offset %#x: pa = %#x", off, pa)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestTranslateHitMiss(t *testing.T) {
	tl, err := New(2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tl.Translate(0x1000); err == nil {
		t.Error("translation without page table accepted")
	}
	pt := NewPageTable(3)
	pt.MapRange(0, 0x100000, 16*PageSize)
	tl.SetPageTable(pt)
	if tl.TID() != 3 {
		t.Errorf("TID = %d", tl.TID())
	}

	// First access: page walk.
	pa, lat, err := tl.Translate(0x2040)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0x102040 || lat != 20 {
		t.Errorf("pa=%#x lat=%d", pa, lat)
	}
	// Second access to the same page: hit, zero latency.
	_, lat, err = tl.Translate(0x2ffc)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 0 {
		t.Errorf("hit latency = %d", lat)
	}
	if tl.Hits != 1 || tl.Misses != 1 {
		t.Errorf("stats: %d/%d", tl.Hits, tl.Misses)
	}
}

func TestFIFOReplacementAndFlush(t *testing.T) {
	tl, _ := New(2, 20)
	pt := NewPageTable(1)
	pt.MapRange(0, 0, 16*PageSize)
	tl.SetPageTable(pt)

	tl.Translate(0 * PageSize) // fills slot 0
	tl.Translate(1 * PageSize) // fills slot 1
	tl.Translate(2 * PageSize) // evicts page 0
	if _, lat, _ := tl.Translate(0 * PageSize); lat == 0 {
		t.Error("page 0 should have been evicted (FIFO)")
	}

	// Context switch flushes everything.
	pt2 := NewPageTable(2)
	pt2.MapRange(0, 0x40000, 4*PageSize)
	tl.SetPageTable(pt2)
	if tl.PageTable() != pt2 {
		t.Error("page table not switched")
	}
	if _, lat, _ := tl.Translate(0); lat == 0 {
		t.Error("flush did not drop cached translations")
	}
	pa, _, _ := tl.Translate(0x10)
	if pa != 0x40010 {
		t.Errorf("post-switch pa = %#x", pa)
	}
}

func TestTranslatePageFault(t *testing.T) {
	tl, _ := New(2, 20)
	pt := NewPageTable(1)
	tl.SetPageTable(pt)
	if _, _, err := tl.Translate(0x5000); err == nil {
		t.Error("page fault not reported")
	}
}

func TestTIDWithoutPageTable(t *testing.T) {
	tl, _ := New(2, 20)
	if tl.TID() != 0 {
		t.Errorf("unbound TID = %d", tl.TID())
	}
}

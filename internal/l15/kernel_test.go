package l15

import (
	"math/rand"
	"reflect"
	"testing"

	"l15cache/internal/bitmap"
	"l15cache/internal/kernel"
	"l15cache/internal/mem"
)

// The tests in this file pin down the clock-skip contract of DESIGN.md §11:
// AdvanceTo must land on exactly the state a cycle-by-cycle Tick loop
// reaches — same counter, same Events (with their tick stamps), same
// ownership and same configuration latencies — because the kernel-
// equivalence CI job byte-compares artifacts built from all of these.

func twins(t *testing.T, cfg Config) (tk, ev *L15) {
	t.Helper()
	var err error
	if tk, err = New(cfg, &fakeL2{latency: 20}); err != nil {
		t.Fatal(err)
	}
	if ev, err = New(cfg, &fakeL2{latency: 20}); err != nil {
		t.Fatal(err)
	}
	return tk, ev
}

// advanceTicked is the legacy kernel: one Tick per cycle, no skipping.
func advanceTicked(l *L15, target uint64) {
	for l.Ticks() < target {
		l.Tick()
	}
}

func compareTwins(t *testing.T, tk, ev *L15) {
	t.Helper()
	if tk.Ticks() != ev.Ticks() {
		t.Fatalf("ticks diverged: ticked %d, events %d", tk.Ticks(), ev.Ticks())
	}
	if !reflect.DeepEqual(tk.Events, ev.Events) {
		t.Fatalf("config events diverged at tick %d:\nticked %+v\nevents %+v",
			tk.Ticks(), tk.Events, ev.Events)
	}
	for core := 0; core < tk.Config().Cores; core++ {
		owT, _ := tk.Supply(core)
		owE, _ := ev.Supply(core)
		if owT != owE {
			t.Fatalf("core %d ownership diverged: %v vs %v", core, owT, owE)
		}
		gvT, _ := tk.GVGet(core)
		gvE, _ := ev.GVGet(core)
		if gvT != gvE {
			t.Fatalf("core %d GV diverged: %v vs %v", core, gvT, gvE)
		}
		if tk.Pending(core) != ev.Pending(core) {
			t.Fatalf("core %d pending diverged", core)
		}
		if tk.ConfigLatency(core) != ev.ConfigLatency(core) {
			t.Fatalf("core %d config latency diverged: %d vs %d",
				core, tk.ConfigLatency(core), ev.ConfigLatency(core))
		}
	}
}

// Simultaneous demands from every core must be served in the same
// deterministic round-robin order under both kernels: the tie-break comes
// from the tick counter, which AdvanceTo preserves exactly.
func TestSkipMatchesTickSimultaneousDemands(t *testing.T) {
	tk, ev := twins(t, DefaultConfig())
	for _, l := range []*L15{tk, ev} {
		for core, n := range []int{5, 4, 3, 2} {
			if err := l.Demand(core, n); err != nil {
				t.Fatal(err)
			}
		}
	}
	advanceTicked(tk, 40)
	ev.AdvanceTo(40)
	compareTwins(t, tk, ev)
	if len(ev.Events) != 5+4+3+2 {
		t.Fatalf("%d config events, want 14", len(ev.Events))
	}

	// Determinism: a fresh instance fed the same script reproduces the
	// exact event list.
	_, again := twins(t, DefaultConfig())
	for core, n := range []int{5, 4, 3, 2} {
		if err := again.Demand(core, n); err != nil {
			t.Fatal(err)
		}
	}
	again.AdvanceTo(40)
	if !reflect.DeepEqual(again.Events, ev.Events) {
		t.Fatal("re-run produced a different event order")
	}
}

func TestAdvanceToZeroLength(t *testing.T) {
	l, _ := newL15(t)
	if err := l.Demand(0, 3); err != nil {
		t.Fatal(err)
	}
	l.AdvanceTo(2)
	before := l.Ticks()
	events := len(l.Events)
	l.AdvanceTo(before) // zero-length advance
	l.AdvanceTo(1)      // target in the past
	if l.Ticks() != before || len(l.Events) != events {
		t.Fatalf("zero-length advance changed state: ticks %d -> %d, events %d -> %d",
			before, l.Ticks(), events, len(l.Events))
	}
}

// NextWakeup must report Never exactly when ticking is a no-op, and the
// next cycle otherwise — the contract the SoC's clock skip relies on.
func TestNextWakeupProtocol(t *testing.T) {
	l, _ := newL15(t)
	if w := l.NextWakeup(); w != kernel.Never {
		t.Fatalf("fresh SDU wakeup = %d, want Never", w)
	}
	if err := l.Demand(0, 3); err != nil {
		t.Fatal(err)
	}
	if w := l.NextWakeup(); w != l.Ticks()+1 {
		t.Fatalf("pending demand wakeup = %d, want %d", w, l.Ticks()+1)
	}
	l.AdvanceTo(10)
	if l.Ticks() != 10 {
		t.Fatalf("AdvanceTo(10) landed on %d", l.Ticks())
	}
	if l.Pending(0) {
		t.Fatal("demand of 3 unsatisfied after 10 cycles")
	}
	if w := l.NextWakeup(); w != kernel.Never {
		t.Fatalf("settled SDU wakeup = %d, want Never", w)
	}
	// A shrink re-arms the Walloc: revocations are work too.
	if err := l.Demand(0, 1); err != nil {
		t.Fatal(err)
	}
	if w := l.NextWakeup(); w != l.Ticks()+1 {
		t.Fatalf("shrink wakeup = %d, want %d", w, l.Ticks()+1)
	}
}

// A demand issued on a cycle the events kernel reached by skipping (not
// ticking) must behave exactly as in the ticked twin: the epoch boundary
// lands on the same counter value, so the latency accounting agrees.
func TestDemandOnSkippedCycle(t *testing.T) {
	tk, ev := twins(t, DefaultConfig())
	for _, l := range []*L15{tk, ev} {
		if err := l.Demand(1, 4); err != nil {
			t.Fatal(err)
		}
	}
	advanceTicked(tk, 7)
	ev.AdvanceTo(7)

	// Long idle stretch: ticked grinds through it, events jumps it.
	advanceTicked(tk, 1000)
	ev.AdvanceTo(1000)
	compareTwins(t, tk, ev)

	// Reconfigure exactly at the skipped-to boundary.
	for _, l := range []*L15{tk, ev} {
		if err := l.Demand(1, 1); err != nil {
			t.Fatal(err)
		}
		if err := l.Demand(2, 6); err != nil {
			t.Fatal(err)
		}
	}
	advanceTicked(tk, 1016)
	ev.AdvanceTo(1016)
	compareTwins(t, tk, ev)
	if lat := ev.ConfigLatency(1); lat == 0 || lat > 16 {
		t.Fatalf("core 1 config latency = %d after boundary demand", lat)
	}
}

// Zero-latency hits: with HitLat = 0 a load hit completes in the same
// cycle it issues. The SDU clock must not move on accesses, so skipping
// across them is trivially safe.
func TestZeroLatencyHits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HitLat = 0
	cfg.GlobalLat = 0
	l, err := New(cfg, &fakeL2{latency: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Demand(0, 2); err != nil {
		t.Fatal(err)
	}
	l.AdvanceTo(4)
	before := l.Ticks()

	if _, err := l.Load(0, 0x100, 0x100); err != nil { // cold miss
		t.Fatal(err)
	}
	res, err := l.Load(0, 0x100, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.Latency != 0 {
		t.Fatalf("warm load = %+v, want zero-latency hit", res)
	}
	if l.Ticks() != before {
		t.Fatalf("accesses moved the SDU clock %d -> %d", before, l.Ticks())
	}
	if w := l.NextWakeup(); w != kernel.Never {
		t.Fatalf("wakeup after zero-latency hits = %d, want Never", w)
	}
}

// Randomized equivalence: a seeded random script of control-register
// writes, accesses and clock advances drives both kernels; every advance
// must leave the twins in identical externally visible state.
func TestQuickTickVsSkipEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		tk, ev := twins(t, DefaultConfig())
		cores := tk.Config().Cores
		ways := tk.Config().Ways
		target := uint64(0)
		for step := 0; step < 200; step++ {
			core := r.Intn(cores)
			switch r.Intn(5) {
			case 0:
				n := r.Intn(ways + 1)
				for _, l := range []*L15{tk, ev} {
					if err := l.Demand(core, n); err != nil {
						t.Fatal(err)
					}
				}
			case 1:
				gv := bitmap.Bitmap(r.Uint64())
				for _, l := range []*L15{tk, ev} {
					if err := l.GVSet(core, gv); err != nil {
						t.Fatal(err)
					}
				}
			case 2:
				tid := uint16(r.Intn(3))
				for _, l := range []*L15{tk, ev} {
					if err := l.SetTID(core, tid); err != nil {
						t.Fatal(err)
					}
				}
			case 3:
				va := uint32(r.Intn(1 << 14))
				write := r.Intn(2) == 0
				var resT, resE AccessResult
				var errT, errE error
				if write {
					resT, errT = tk.Store(core, va, mem.PhysAddr(va))
					resE, errE = ev.Store(core, va, mem.PhysAddr(va))
				} else {
					resT, errT = tk.Load(core, va, mem.PhysAddr(va))
					resE, errE = ev.Load(core, va, mem.PhysAddr(va))
				}
				if errT != nil || errE != nil {
					t.Fatal(errT, errE)
				}
				if resT != resE {
					t.Fatalf("seed %d step %d: access diverged: %+v vs %+v",
						seed, step, resT, resE)
				}
			default:
				target += uint64(r.Intn(8))
				advanceTicked(tk, target)
				ev.AdvanceTo(target)
				compareTwins(t, tk, ev)
			}
		}
		advanceTicked(tk, target+64)
		ev.AdvanceTo(target + 64)
		compareTwins(t, tk, ev)
		if !reflect.DeepEqual(tk.Stats, ev.Stats) {
			t.Fatalf("seed %d: access stats diverged:\n%+v\n%+v", seed, tk.Stats, ev.Stats)
		}
	}
}

// Package l15 models the paper's L1.5 Cache: a Virtual-Indexed,
// Physically-Tagged (VIPT), Selectively-Inclusive, Non-Exclusive (SINE)
// cache shared by the cores of one computing cluster, positioned between
// the private L1s and the shared L2.
//
// The model implements the §3 microarchitecture at a functional level:
//
//   - per-core control registers: TID, way Ownership (OW) and Global
//     Visibility (GV) bitmaps (Fig. 4(a)-a);
//   - the dual-level mask logic: the read path sees OW ∪ (GV of same-TID
//     cores), the write path only OW ∖ GV (Fig. 4(a)-b, Fig. 4(b));
//   - the protector XNOR-gating GV sharing on TID equality (§3.2);
//   - the Supply-Demand Unit: per-core Demand/Supply registers, a
//     comparator, and the Walloc FSM that reassigns exactly one way per
//     cycle through its register-bank shadow of way ownership (Fig. 5);
//   - per-way inclusion policy (ip_set): stores propagate into the L1.5
//     only through ways configured inclusive.
//
// The cache is tag-only (the simulated hierarchy is write-through with
// memory authoritative), so the model captures timing and visibility —
// which is what the paper's experiments measure.
package l15

import (
	"fmt"

	"l15cache/internal/bitmap"
	"l15cache/internal/cache"
	"l15cache/internal/flight"
	"l15cache/internal/kernel"
	"l15cache/internal/mem"
	"l15cache/internal/metrics"
)

// Config is the cluster's L1.5 geometry and timing.
type Config struct {
	Ways      int // ζ (16 in the evaluation SoC)
	WayBytes  int // κ (2 KB)
	LineBytes int // 64 B
	Cores     int // cores in the cluster (4)
	HitLat    int // local-way hit latency (2 cycles)
	GlobalLat int // extra latency reading another core's global way (+1)

	// WriteBack selects the write policy. The default (false) is
	// write-through: every store is posted to the next level and the
	// dirty bits stay clear. With WriteBack, stores settle in the L1.5
	// and the dirty lines drain to the next level only on eviction or
	// way revocation — the coherence duty the paper's per-line dirty bit
	// exists for. Write-back reduces downstream write traffic at the
	// cost of revocation work in the Walloc.
	WriteBack bool
}

// DefaultConfig mirrors the evaluation platform.
func DefaultConfig() Config {
	return Config{Ways: 16, WayBytes: 2 * 1024, LineBytes: 64, Cores: 4, HitLat: 2, GlobalLat: 1}
}

// NextLevel is the memory side of the L1.5 (the shared L2): it absorbs
// misses and returns their latency.
type NextLevel interface {
	Access(pa mem.PhysAddr, write bool) int
}

// CoreStats counts one core's L1.5 events.
type CoreStats struct {
	Hits, Misses uint64
	GlobalHits   uint64 // hits served from another core's global way
}

// ConfigEvent records one Walloc way reassignment, consumed by the
// cycle-accurate monitor (§5.3).
type ConfigEvent struct {
	Tick     uint64
	Core     int
	Way      int
	Assigned bool // true: way granted; false: way revoked
}

// L15 is one cluster's cache instance.
type L15 struct {
	cfg   Config
	store *cache.Cache

	tid [bitmap.MaxWays]uint16
	ow  []bitmap.Bitmap // per core: owned ways
	gv  []bitmap.Bitmap // per core: globally visible subset of owned ways
	// ip is the per-core inclusion-policy register. Unlike GV it is a
	// *policy*: it is masked against the current ownership at access
	// time, so ways the Walloc grants later automatically adopt it (the
	// kernel issues ip_set during the context switch, §4.3, while the
	// SDU is still applying the matching demand).
	ip []bitmap.Bitmap

	wayOwner []int // Walloc register bank: way -> core, -1 = N/U
	demand   []int // SDU D registers
	// demandTick records when the latest demand() arrived, so the
	// monitor can measure configuration latency.
	demandTick    []uint64
	satisfiedTick []uint64

	next  NextLevel
	ticks uint64

	// Per-config-epoch mask cache (struct-of-arrays): readM[c] is
	// OW ∪ same-TID GV, writeM[c] is OW ∖ GV. Any control-state mutation
	// (TID load, gv_set, Walloc grant/revoke) marks the cache dirty; the
	// access paths then recompute all cores at once instead of walking
	// the cluster per access.
	readM      []bitmap.Bitmap
	writeM     []bitmap.Bitmap
	masksDirty bool

	Stats  []CoreStats
	Events []ConfigEvent

	// WritebackLines counts dirty lines drained to the next level by
	// evictions and way revocations (write-back mode only).
	WritebackLines uint64

	// Observability hookups (nil until Instrument): the SDU reassignment
	// latency histogram and the event tracer.
	mSDULat   *metrics.Histogram
	tracer    *metrics.Tracer
	traceName string

	// Flight recording (nil until FlightRecord): every Walloc way
	// reassignment and gv_set emits a typed, tick-stamped event.
	frec     *flight.Recorder
	fcluster int32
}

// SDULatencyBuckets are the default histogram bounds (in SDU cycles) for
// the way-reconfiguration latency of §5.3.
var SDULatencyBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Instrument publishes the cluster's counters to the registry under prefix
// (e.g. "soc.cluster0.l15") and routes Walloc way reassignments to the
// tracer. Per-core hit/miss/global-hit counters, the rollups, the tag
// store's counters and the owned-way gauge are collected lazily at snapshot
// time; the SDU configuration-latency histogram is observed live as demands
// are satisfied. Either argument may be nil.
func (l *L15) Instrument(r *metrics.Registry, tr *metrics.Tracer, prefix string) {
	l.tracer = tr
	l.traceName = prefix
	if r == nil {
		return
	}
	l.mSDULat = r.Histogram(prefix+".sdu_config_latency_cycles", SDULatencyBuckets)
	l.store.PublishMetrics(r, prefix+".store")
	r.RegisterCollector(func(r *metrics.Registry) {
		var hits, misses, global uint64
		for core, st := range l.Stats {
			r.Counter(fmt.Sprintf("%s.core%d.hits", prefix, core)).Store(st.Hits)
			r.Counter(fmt.Sprintf("%s.core%d.misses", prefix, core)).Store(st.Misses)
			r.Counter(fmt.Sprintf("%s.core%d.global_hits", prefix, core)).Store(st.GlobalHits)
			hits += st.Hits
			misses += st.Misses
			global += st.GlobalHits
		}
		r.Counter(prefix + ".hits").Store(hits)
		r.Counter(prefix + ".misses").Store(misses)
		r.Counter(prefix + ".global_hits").Store(global)
		r.Counter(prefix + ".writeback_lines").Store(l.WritebackLines)
		r.Counter(prefix + ".config_events").Store(uint64(len(l.Events)))
		r.Gauge(prefix + ".owned_ways").Set(float64(l.OwnedWays()))
	})
}

// FlightRecord attaches a flight recorder: Walloc way grants and
// revocations emit KindSDU events (Time = SDU tick, Node = way index,
// A = 1 assign / 0 revoke, B = owner core's demand, C = dirty lines
// drained) and gv_set emits KindGVConvert (A = global-way count after).
// Events carry the given cluster index. A nil recorder detaches.
func (l *L15) FlightRecord(rec *flight.Recorder, cluster int) {
	l.frec = rec
	l.fcluster = int32(cluster)
}

// New builds the cluster cache. The way count must be a power of two (the
// underlying PLRU store's requirement) and WayBytes a multiple of
// LineBytes.
func New(cfg Config, next NextLevel) (*L15, error) {
	if cfg.Cores <= 0 || cfg.Cores > bitmap.MaxWays {
		return nil, fmt.Errorf("l15: cores = %d", cfg.Cores)
	}
	if cfg.Ways <= 0 || cfg.Ways > bitmap.MaxWays {
		return nil, fmt.Errorf("l15: ways = %d", cfg.Ways)
	}
	if next == nil {
		return nil, fmt.Errorf("l15: nil next level")
	}
	store, err := cache.New(cfg.Ways*cfg.WayBytes, cfg.Ways, cfg.LineBytes, cfg.HitLat)
	if err != nil {
		return nil, fmt.Errorf("l15: %w", err)
	}
	l := &L15{
		cfg:           cfg,
		store:         store,
		ow:            make([]bitmap.Bitmap, cfg.Cores),
		gv:            make([]bitmap.Bitmap, cfg.Cores),
		ip:            make([]bitmap.Bitmap, cfg.Cores),
		wayOwner:      make([]int, cfg.Ways),
		demand:        make([]int, cfg.Cores),
		demandTick:    make([]uint64, cfg.Cores),
		satisfiedTick: make([]uint64, cfg.Cores),
		next:          next,
		Stats:         make([]CoreStats, cfg.Cores),
		readM:         make([]bitmap.Bitmap, cfg.Cores),
		writeM:        make([]bitmap.Bitmap, cfg.Cores),
		masksDirty:    true,
	}
	for w := range l.wayOwner {
		l.wayOwner[w] = -1
	}
	return l, nil
}

// Config returns the geometry.
func (l *L15) Config() Config { return l.cfg }

func (l *L15) checkCore(core int) error {
	if core < 0 || core >= l.cfg.Cores {
		//lint:ignore hotalloc invalid-core guard: the error is built only on a malformed request, which halts the core
		return fmt.Errorf("l15: core %d outside cluster of %d", core, l.cfg.Cores)
	}
	return nil
}

// SetTID loads the core's Task ID control register (done by the kernel at
// context switch). Changing the TID immediately stops cross-core sharing
// with cores running other applications.
func (l *L15) SetTID(core int, tid uint16) error {
	if err := l.checkCore(core); err != nil {
		return err
	}
	l.tid[core] = tid
	l.masksDirty = true
	return nil
}

// TID returns the core's task-ID register.
func (l *L15) TID(core int) uint16 { return l.tid[core] }

// Demand implements the demand instruction: request n ways for the core.
// The SDU satisfies the request asynchronously, one way per Tick.
func (l *L15) Demand(core, n int) error {
	if err := l.checkCore(core); err != nil {
		return err
	}
	if n < 0 || n > l.cfg.Ways {
		//lint:ignore hotalloc invalid-demand guard: the error is built only on a malformed request, which halts the core
		return fmt.Errorf("l15: demand of %d ways (ζ = %d)", n, l.cfg.Ways)
	}
	l.demand[core] = n
	l.demandTick[core] = l.ticks
	return nil
}

// Supply implements the supply instruction: the bitmap of ways currently
// assigned to the core.
func (l *L15) Supply(core int) (bitmap.Bitmap, error) {
	if err := l.checkCore(core); err != nil {
		return 0, err
	}
	return l.ow[core], nil
}

// GVSet implements gv_set: mark the given owned ways globally visible
// (read-only for the whole same-TID cluster). Bits outside the core's
// ownership are ignored, as the mask logic physically cannot assert them.
func (l *L15) GVSet(core int, ways bitmap.Bitmap) error {
	if err := l.checkCore(core); err != nil {
		return err
	}
	l.gv[core] = ways.Intersect(l.ow[core])
	l.masksDirty = true
	if l.frec != nil {
		l.frec.Emit(flight.Event{Kind: flight.KindGVConvert,
			Time: float64(l.ticks), Task: -1, Job: -1, Node: -1,
			Core: int32(core), Cluster: l.fcluster, Wave: -1,
			A: float64(l.gv[core].Count())})
	}
	return nil
}

// GVGet implements gv_get.
func (l *L15) GVGet(core int) (bitmap.Bitmap, error) {
	if err := l.checkCore(core); err != nil {
		return 0, err
	}
	return l.gv[core], nil
}

// IPSet implements ip_set: configure the core's inclusion policy. Stores
// propagate only into owned, non-global ways covered by the policy; ways
// granted after the ip_set adopt it as they arrive.
func (l *L15) IPSet(core int, ways bitmap.Bitmap) error {
	if err := l.checkCore(core); err != nil {
		return err
	}
	l.ip[core] = ways
	return nil
}

// IPGet returns the effective inclusive subset — the policy masked by the
// current ownership (diagnostics; the ISA has no reader for it).
func (l *L15) IPGet(core int) bitmap.Bitmap { return l.ip[core].Intersect(l.ow[core]) }

// Pending reports whether the core's demand has not yet been fully served
// (the source of the φ mis-configuration windows of §5.3).
func (l *L15) Pending(core int) bool {
	return l.ow[core].Count() != l.demand[core]
}

// ConfigLatency returns, for a satisfied demand, the number of ticks the
// SDU needed to serve it.
func (l *L15) ConfigLatency(core int) uint64 {
	if l.Pending(core) {
		return l.ticks - l.demandTick[core]
	}
	return l.satisfiedTick[core] - l.demandTick[core]
}

// Tick advances the SDU by one cycle: the Walloc FSM reconfigures at most
// one way (§3.1, "the DSU's constraint of configuring only one cache way
// at a time" — §5.3). Cores are scanned round-robin from the tick counter
// for fairness.
func (l *L15) Tick() {
	l.ticks++
	for i := 0; i < l.cfg.Cores; i++ {
		core := (int(l.ticks) + i) % l.cfg.Cores
		have := l.ow[core].Count()
		want := l.demand[core]
		switch {
		case have < want:
			w := l.freeWay()
			if w < 0 {
				continue // best effort: wait for a release
			}
			l.assignWay(core, w)
			if l.ow[core].Count() == l.demand[core] {
				l.satisfiedTick[core] = l.ticks
				l.observeConfigLatency(core)
			}
			return
		case have > want:
			w := l.ow[core].Lowest()
			l.revokeWay(core, w)
			if l.ow[core].Count() == l.demand[core] {
				l.satisfiedTick[core] = l.ticks
				l.observeConfigLatency(core)
			}
			return
		}
	}
}

// Ticks returns the SDU cycle counter.
func (l *L15) Ticks() uint64 { return l.ticks }

// sduIdle reports whether a Tick would be a no-op: no core holds more ways
// than it demands, and no underserved core can be granted one (either all
// demands are met or the bank has no free way). Idleness is stable — a
// no-op tick changes no state except the counter, so the SDU stays idle
// until the next external call (demand, gv_set, revocation) — which is the
// skip-safety argument of DESIGN.md §11.
func (l *L15) sduIdle() bool {
	freeExists := l.freeWay() >= 0
	for core := 0; core < l.cfg.Cores; core++ {
		have := l.ow[core].Count()
		want := l.demand[core]
		if have > want {
			return false
		}
		if have < want && freeExists {
			return false
		}
	}
	return true
}

// NextWakeup implements the kernel wakeup protocol: the next cycle at
// which ticking the SDU would change state, or kernel.Never when every
// demand is settled.
func (l *L15) NextWakeup() uint64 {
	if l.sduIdle() {
		return kernel.Never
	}
	return l.ticks + 1
}

// AdvanceTo brings the SDU cycle counter to target, ticking while the
// Walloc has work and jumping the counter across idle stretches. Because
// cores are scanned round-robin from the tick counter, the skip lands on
// the same counter value ticked mode would reach, so the two kernels stay
// byte-identical in every tick-stamped event.
func (l *L15) AdvanceTo(target uint64) {
	for l.ticks < target {
		if l.sduIdle() {
			l.ticks = target
			return
		}
		l.Tick()
	}
}

func (l *L15) freeWay() int {
	for w, owner := range l.wayOwner {
		if owner == -1 {
			return w
		}
	}
	return -1
}

// observeConfigLatency feeds the just-satisfied demand's latency into the
// SDU histogram (no-op until Instrument).
func (l *L15) observeConfigLatency(core int) {
	if l.mSDULat != nil {
		l.mSDULat.Observe(float64(l.satisfiedTick[core] - l.demandTick[core]))
	}
	if l.tracer != nil {
		l.tracer.Emit(l.ticks, l.traceName, "demand.satisfied",
			//lint:ignore hotalloc tracer payload, built only when instrumented; trace runs are diagnostic, not timing-measured
			map[string]any{"core": core, "ways": l.demand[core]})
	}
}

func (l *L15) assignWay(core, w int) {
	l.wayOwner[w] = core
	l.ow[core] = l.ow[core].Set(w)
	l.masksDirty = true
	l.Events = append(l.Events, ConfigEvent{Tick: l.ticks, Core: core, Way: w, Assigned: true})
	if l.tracer != nil {
		//lint:ignore hotalloc tracer payload, built only when instrumented; trace runs are diagnostic, not timing-measured
		l.tracer.Emit(l.ticks, l.traceName, "way.assign", map[string]any{"core": core, "way": w})
	}
	if l.frec != nil {
		l.frec.Emit(flight.Event{Kind: flight.KindSDU,
			Time: float64(l.ticks), Task: -1, Job: -1, Node: int32(w),
			Core: int32(core), Cluster: l.fcluster, Wave: -1,
			A: 1, B: float64(l.demand[core])})
	}
}

func (l *L15) revokeWay(core, w int) {
	// The way's contents belong to the old owner: flush before the bank
	// hands it over. In write-through mode nothing is dirty; in
	// write-back mode the dirty lines drain to the next level (the
	// coherence step the per-line dirty bit gates).
	_, dirty := l.store.FlushWay(w)
	l.WritebackLines += uint64(dirty)
	for i := 0; i < dirty; i++ {
		l.next.Access(0, true)
	}
	l.wayOwner[w] = -1
	l.ow[core] = l.ow[core].Clear(w)
	l.gv[core] = l.gv[core].Clear(w)
	l.masksDirty = true
	l.Events = append(l.Events, ConfigEvent{Tick: l.ticks, Core: core, Way: w, Assigned: false})
	if l.tracer != nil {
		l.tracer.Emit(l.ticks, l.traceName, "way.revoke",
			//lint:ignore hotalloc tracer payload, built only when instrumented; trace runs are diagnostic, not timing-measured
			map[string]any{"core": core, "way": w, "dirty": dirty})
	}
	if l.frec != nil {
		l.frec.Emit(flight.Event{Kind: flight.KindSDU,
			Time: float64(l.ticks), Task: -1, Job: -1, Node: int32(w),
			Core: int32(core), Cluster: l.fcluster, Wave: -1,
			A: 0, B: float64(l.demand[core]), C: float64(dirty)})
	}
}

// ensureMasks recomputes the cached read/write masks after a control-state
// change. The cluster is small (4 cores), so rebuilding every core at once
// is cheaper than tracking finer invalidation.
func (l *L15) ensureMasks() {
	if !l.masksDirty {
		return
	}
	for core := 0; core < l.cfg.Cores; core++ {
		m := l.ow[core]
		for c := 0; c < l.cfg.Cores; c++ {
			if c != core && l.tid[c] == l.tid[core] {
				m = m.Union(l.gv[c])
			}
		}
		l.readM[core] = m
		l.writeM[core] = l.ow[core].Diff(l.gv[core])
	}
	l.masksDirty = false
}

// readMask is the upper-level filter of the read path: the core's own ways
// plus every same-TID core's globally visible ways (the protector's
// TID-XNOR gates the GV registers, §3.2).
func (l *L15) readMask(core int) bitmap.Bitmap {
	l.ensureMasks()
	return l.readM[core]
}

// writeMask is the write-path filter: owned, not globally visible
// (global ways are read-only).
func (l *L15) writeMask(core int) bitmap.Bitmap {
	l.ensureMasks()
	return l.writeM[core]
}

// OwnedWays, for the monitor: the number of currently assigned ways across
// all cores.
func (l *L15) OwnedWays() int {
	n := 0
	for _, o := range l.wayOwner {
		if o != -1 {
			n++
		}
	}
	return n
}

// AccessResult reports one L1.5 access.
type AccessResult struct {
	Hit     bool
	Global  bool // served from another core's global way
	Latency int
}

// Load performs a read: virtual index (va selects the set), physical tag.
// A hit in an owned way costs HitLat; in a same-TID global way HitLat +
// GlobalLat. A miss fetches from the next level and fills a writable way if
// the core has one; otherwise the access bypasses the L1.5.
func (l *L15) Load(core int, va uint32, pa mem.PhysAddr) (AccessResult, error) {
	if err := l.checkCore(core); err != nil {
		return AccessResult{}, err
	}
	set := l.setIndex(va)
	tag := l.tag(pa)
	read := l.readMask(core)

	if w := l.store.Probe(set, tag, read); w >= 0 {
		// Touch through Access for PLRU bookkeeping.
		l.store.Access(set, tag, false, bitmap.FromWays(w))
		lat := l.cfg.HitLat
		global := !l.ow[core].Has(w)
		if global {
			lat += l.cfg.GlobalLat
			l.Stats[core].GlobalHits++
		}
		l.Stats[core].Hits++
		return AccessResult{Hit: true, Global: global, Latency: lat}, nil
	}
	l.Stats[core].Misses++
	lat := l.cfg.HitLat + l.next.Access(pa, false)
	l.store.Access(set, tag, false, l.writeMask(core)) // fill if possible
	return AccessResult{Latency: lat}, nil
}

// Store performs a write. Only ways that are owned, non-global and marked
// inclusive accept it (the IPU routes other stores around the L1.5, §2.2);
// the hierarchy is write-through, so the line is also pushed to the next
// level, whose latency is absorbed by the store buffer (not charged).
func (l *L15) Store(core int, va uint32, pa mem.PhysAddr) (AccessResult, error) {
	if err := l.checkCore(core); err != nil {
		return AccessResult{}, err
	}
	set := l.setIndex(va)
	tag := l.tag(pa)
	allowed := l.writeMask(core).Intersect(l.ip[core])
	if allowed.IsEmpty() {
		// Not inclusive: bypass, post the write downstream.
		l.next.Access(pa, true)
		return AccessResult{Latency: l.cfg.HitLat}, nil
	}
	// Under write-through the freshly written line is clean (memory is
	// updated in the same breath); only write-back mode tracks dirt.
	res := l.store.Access(set, tag, l.cfg.WriteBack, allowed)
	if res.Hit {
		l.Stats[core].Hits++
	} else {
		l.Stats[core].Misses++
	}
	if l.cfg.WriteBack {
		// The store settles in the L1.5; a displaced dirty line
		// drains downstream.
		if res.Writeback {
			l.WritebackLines++
			l.next.Access(pa, true)
		}
	} else {
		l.next.Access(pa, true) // write-through (posted)
	}
	return AccessResult{Hit: res.Hit, Latency: l.cfg.HitLat}, nil
}

// setIndex derives the set from the *virtual* address (the VIPT property:
// the index is available before translation completes).
func (l *L15) setIndex(va uint32) int {
	line := va / uint32(l.cfg.LineBytes)
	return int(line) & (l.store.Sets() - 1)
}

// tag derives the tag from the *physical* address.
func (l *L15) tag(pa mem.PhysAddr) uint32 {
	return uint32(pa) / uint32(l.cfg.LineBytes) / uint32(l.store.Sets())
}

// StoreStats exposes the underlying tag store's counters.
func (l *L15) StoreStats() cache.Stats { return l.store.Stats }

package l15

import (
	"testing"
	"testing/quick"

	"l15cache/internal/bitmap"
	"l15cache/internal/mem"
)

// fakeL2 is a NextLevel with fixed latency that records accesses.
type fakeL2 struct {
	latency int
	reads   int
	writes  int
}

func (f *fakeL2) Access(pa mem.PhysAddr, write bool) int {
	if write {
		f.writes++
	} else {
		f.reads++
	}
	return f.latency
}

func newL15(t *testing.T) (*L15, *fakeL2) {
	t.Helper()
	l2 := &fakeL2{latency: 20}
	l, err := New(DefaultConfig(), l2)
	if err != nil {
		t.Fatal(err)
	}
	return l, l2
}

// settle runs the SDU until all demands are satisfied (or a bound).
func settle(l *L15) {
	for i := 0; i < 10*l.Config().Ways; i++ {
		l.Tick()
	}
}

func TestNewErrors(t *testing.T) {
	l2 := &fakeL2{}
	bad := []Config{
		{Ways: 0, WayBytes: 2048, LineBytes: 64, Cores: 4},
		{Ways: 16, WayBytes: 2048, LineBytes: 64, Cores: 0},
		{Ways: 12, WayBytes: 2048, LineBytes: 64, Cores: 4}, // non-power-of-two
	}
	for _, cfg := range bad {
		if _, err := New(cfg, l2); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil next level accepted")
	}
}

func TestDemandSupplyOneWayPerTick(t *testing.T) {
	l, _ := newL15(t)
	if err := l.Demand(0, 4); err != nil {
		t.Fatal(err)
	}
	// The Walloc configures exactly one way per tick.
	for i := 1; i <= 4; i++ {
		l.Tick()
		ways, err := l.Supply(0)
		if err != nil {
			t.Fatal(err)
		}
		if ways.Count() != i {
			t.Fatalf("after %d ticks: %d ways assigned", i, ways.Count())
		}
	}
	if l.Pending(0) {
		t.Error("demand still pending after 4 ticks")
	}
	if lat := l.ConfigLatency(0); lat != 4 {
		t.Errorf("config latency = %d, want 4", lat)
	}
	// Further ticks change nothing.
	l.Tick()
	ways, _ := l.Supply(0)
	if ways.Count() != 4 {
		t.Errorf("ways drifted to %d", ways.Count())
	}
}

func TestDemandShrink(t *testing.T) {
	l, _ := newL15(t)
	l.Demand(0, 6)
	settle(l)
	l.Demand(0, 2)
	settle(l)
	ways, _ := l.Supply(0)
	if ways.Count() != 2 {
		t.Errorf("ways = %d after shrink", ways.Count())
	}
	// Freed ways return to the pool and can serve another core.
	l.Demand(1, 10)
	settle(l)
	w1, _ := l.Supply(1)
	if w1.Count() != 10 {
		t.Errorf("core 1 got %d ways", w1.Count())
	}
	w0, _ := l.Supply(0)
	if !w0.Intersect(w1).IsEmpty() {
		t.Error("cores share way ownership")
	}
}

func TestDemandBestEffort(t *testing.T) {
	l, _ := newL15(t)
	l.Demand(0, 16)
	settle(l)
	l.Demand(1, 4) // nothing free: stays pending
	settle(l)
	if !l.Pending(1) {
		t.Error("unsatisfiable demand reported as served")
	}
	w, _ := l.Supply(1)
	if w.Count() != 0 {
		t.Errorf("core 1 has %d ways", w.Count())
	}
	// Releasing capacity lets the SDU finish the job.
	l.Demand(0, 8)
	settle(l)
	if l.Pending(1) {
		t.Error("demand still pending after capacity freed")
	}
}

func TestDemandErrors(t *testing.T) {
	l, _ := newL15(t)
	if err := l.Demand(9, 1); err == nil {
		t.Error("bad core accepted")
	}
	if err := l.Demand(0, 17); err == nil {
		t.Error("over-ζ demand accepted")
	}
	if err := l.Demand(0, -1); err == nil {
		t.Error("negative demand accepted")
	}
	if _, err := l.Supply(-1); err == nil {
		t.Error("bad core supply accepted")
	}
}

func TestGVRestrictedToOwnership(t *testing.T) {
	l, _ := newL15(t)
	l.Demand(0, 2)
	settle(l)
	own, _ := l.Supply(0)

	// Setting GV on ways the core does not own silently masks them out
	// (the gates physically cannot assert foreign bits).
	l.GVSet(0, bitmap.FirstN(16))
	gv, _ := l.GVGet(0)
	if gv != own {
		t.Errorf("gv = %v, want owned %v", gv, own)
	}
	l.GVSet(0, 0)
	gv, _ = l.GVGet(0)
	if !gv.IsEmpty() {
		t.Error("gv not cleared")
	}
}

func TestLoadHitOwnWay(t *testing.T) {
	l, l2 := newL15(t)
	l.Demand(0, 2)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16)) // all owned ways inclusive

	va, pa := uint32(0x1000), mem.PhysAddr(0x8000)
	// First store installs the line.
	if _, err := l.Store(0, va, pa); err != nil {
		t.Fatal(err)
	}
	res, err := l.Load(0, va, pa)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.Global {
		t.Errorf("expected local hit: %+v", res)
	}
	if res.Latency != l.Config().HitLat {
		t.Errorf("hit latency = %d", res.Latency)
	}
	if l2.reads != 0 {
		t.Errorf("hit went to L2 (%d reads)", l2.reads)
	}
}

func TestLoadMissGoesToL2(t *testing.T) {
	l, l2 := newL15(t)
	l.Demand(0, 2)
	settle(l)
	res, err := l.Load(0, 0x2000, 0x9000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Error("cold load hit")
	}
	if res.Latency != l.Config().HitLat+l2.latency {
		t.Errorf("miss latency = %d", res.Latency)
	}
	if l2.reads != 1 {
		t.Errorf("l2 reads = %d", l2.reads)
	}
	// The miss filled an owned way: the next load hits.
	res, _ = l.Load(0, 0x2000, 0x9000)
	if !res.Hit {
		t.Error("fill did not stick")
	}
}

func TestGlobalSharingSameTID(t *testing.T) {
	l, _ := newL15(t)
	l.SetTID(0, 7)
	l.SetTID(1, 7)
	l.Demand(0, 2)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))

	va, pa := uint32(0x3000), mem.PhysAddr(0xa000)
	l.Store(0, va, pa) // producer writes dependent data

	// Before gv_set, core 1 cannot see it.
	res, _ := l.Load(1, va, pa)
	if res.Hit {
		t.Error("core 1 saw data before gv_set")
	}
	// Producer publishes its ways.
	own, _ := l.Supply(0)
	l.GVSet(0, own)

	// Fresh line (the earlier miss may have filled core 1's ways — it
	// has none, so no fill happened).
	res, _ = l.Load(1, va, pa)
	if !res.Hit || !res.Global {
		t.Errorf("expected global hit: %+v", res)
	}
	if want := l.Config().HitLat + l.Config().GlobalLat; res.Latency != want {
		t.Errorf("global hit latency = %d, want %d", res.Latency, want)
	}
	if l.Stats[1].GlobalHits != 1 {
		t.Errorf("global hit not counted: %+v", l.Stats[1])
	}
}

func TestProtectorBlocksCrossTID(t *testing.T) {
	l, _ := newL15(t)
	l.SetTID(0, 7)
	l.SetTID(1, 8) // different application
	l.Demand(0, 2)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))

	va, pa := uint32(0x3000), mem.PhysAddr(0xa000)
	l.Store(0, va, pa)
	own, _ := l.Supply(0)
	l.GVSet(0, own)

	res, _ := l.Load(1, va, pa)
	if res.Hit {
		t.Error("protector let a different TID read the global way")
	}
	// Same TID restores visibility.
	l.SetTID(1, 7)
	res, _ = l.Load(1, va, pa)
	if !res.Hit {
		t.Error("same TID should see the global way")
	}
}

func TestGlobalWaysAreReadOnly(t *testing.T) {
	l, _ := newL15(t)
	l.Demand(0, 2)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))
	own, _ := l.Supply(0)
	l.GVSet(0, own) // all owned ways now global => read-only

	va, pa := uint32(0x4000), mem.PhysAddr(0xb000)
	res, err := l.Store(0, va, pa)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Error("store hit a read-only way")
	}
	// The line must not be resident afterwards.
	res, _ = l.Load(0, va, pa)
	if res.Hit {
		t.Error("bypassed store left a line behind")
	}
}

func TestNonInclusiveStoreBypasses(t *testing.T) {
	l, l2 := newL15(t)
	l.Demand(0, 2)
	settle(l)
	// No ip_set: ways stay non-inclusive (the default, §4.1).
	va, pa := uint32(0x5000), mem.PhysAddr(0xc000)
	l.Store(0, va, pa)
	if l2.writes != 1 {
		t.Errorf("bypassed store did not reach L2: %d writes", l2.writes)
	}
	res, _ := l.Load(0, va, pa)
	if res.Hit {
		t.Error("non-inclusive store filled the L1.5")
	}
}

func TestRevokedWayLosesContents(t *testing.T) {
	l, _ := newL15(t)
	l.Demand(0, 2)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))
	va, pa := uint32(0x6000), mem.PhysAddr(0xd000)
	l.Store(0, va, pa)

	// Shrinking to zero revokes (and invalidates) the ways.
	l.Demand(0, 0)
	settle(l)
	l.Demand(0, 2)
	settle(l)
	res, _ := l.Load(0, va, pa)
	if res.Hit {
		t.Error("line survived way revocation")
	}
	// Events were recorded for the monitor.
	if len(l.Events) == 0 {
		t.Error("no config events recorded")
	}
}

func TestOwnedWaysCount(t *testing.T) {
	l, _ := newL15(t)
	if l.OwnedWays() != 0 {
		t.Error("fresh cache has owners")
	}
	l.Demand(0, 3)
	l.Demand(1, 5)
	settle(l)
	if l.OwnedWays() != 8 {
		t.Errorf("OwnedWays = %d, want 8", l.OwnedWays())
	}
}

// Property: after any sequence of demands and ticks, way ownership is a
// partition — no way has two owners, OW bitmaps are disjoint, and the
// register bank agrees with the OW registers.
func TestQuickOwnershipPartition(t *testing.T) {
	f := func(demands []uint8) bool {
		l2 := &fakeL2{latency: 20}
		l, err := New(DefaultConfig(), l2)
		if err != nil {
			return false
		}
		for i, d := range demands {
			core := i % l.Config().Cores
			if l.Demand(core, int(d)%(l.Config().Ways+1)) != nil {
				return false
			}
			for t := 0; t < int(d)%7+1; t++ {
				l.Tick()
			}
		}
		var union bitmap.Bitmap
		total := 0
		for c := 0; c < l.Config().Cores; c++ {
			ow, _ := l.Supply(c)
			if !union.Intersect(ow).IsEmpty() {
				return false // overlap
			}
			union = union.Union(ow)
			total += ow.Count()
			// GV and IP must be subsets of OW.
			gv, _ := l.GVGet(c)
			if gv.Diff(ow) != 0 || l.IPGet(c).Diff(ow) != 0 {
				return false
			}
		}
		return total == l.OwnedWays() && total <= l.Config().Ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a load never reports a global hit on a way the core itself
// owns, and latencies are always within [HitLat, HitLat+GlobalLat+L2].
func TestQuickLatencyBounds(t *testing.T) {
	f := func(ops []uint16) bool {
		l2 := &fakeL2{latency: 20}
		l, err := New(DefaultConfig(), l2)
		if err != nil {
			return false
		}
		l.Demand(0, 4)
		l.Demand(1, 4)
		settle(l)
		l.IPSet(0, bitmap.FirstN(16))
		l.IPSet(1, bitmap.FirstN(16))
		own0, _ := l.Supply(0)
		l.GVSet(0, own0)
		min := l.Config().HitLat
		max := l.Config().HitLat + l.Config().GlobalLat + l2.latency
		for _, op := range ops {
			core := int(op>>14) % 2
			va := uint32(op) * 64
			pa := mem.PhysAddr(va + 0x10000)
			var res AccessResult
			if op%3 == 0 {
				res, err = l.Store(core, va, pa)
			} else {
				res, err = l.Load(core, va, pa)
			}
			if err != nil {
				return false
			}
			if res.Latency < min || res.Latency > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWriteBackMode(t *testing.T) {
	l2 := &fakeL2{latency: 20}
	cfg := DefaultConfig()
	cfg.WriteBack = true
	l, err := New(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	l.Demand(0, 2)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))

	// Stores settle in the L1.5: no downstream writes.
	for i := 0; i < 8; i++ {
		va := uint32(0x1000 + 64*i)
		if _, err := l.Store(0, va, mem.PhysAddr(va)); err != nil {
			t.Fatal(err)
		}
	}
	if l2.writes != 0 {
		t.Errorf("write-back mode posted %d writes on store", l2.writes)
	}

	// Revoking the ways drains the dirty lines.
	l.Demand(0, 0)
	settle(l)
	if l.WritebackLines == 0 {
		t.Error("revocation drained no dirty lines")
	}
	if l2.writes == 0 {
		t.Error("drained lines never reached the next level")
	}
}

func TestWriteBackEvictionDrains(t *testing.T) {
	l2 := &fakeL2{latency: 20}
	cfg := DefaultConfig()
	cfg.WriteBack = true
	l, err := New(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	l.Demand(0, 1) // a single way: 32 sets of one line each
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))

	// Two writes mapping to the same set but different tags: the second
	// evicts the first's dirty line.
	way := cfg.WayBytes * cfg.Ways // one full wrap of the set index space
	l.Store(0, 0x0, 0x0)
	l.Store(0, uint32(way), mem.PhysAddr(way))
	if l.WritebackLines == 0 {
		t.Error("dirty eviction did not write back")
	}
}

func TestWriteThroughHasNoWritebacks(t *testing.T) {
	l, l2 := newL15(t)
	l.Demand(0, 2)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))
	l.Store(0, 0x1000, 0x1000)
	if l2.writes != 1 {
		t.Errorf("write-through posted %d writes, want 1", l2.writes)
	}
	l.Demand(0, 0)
	settle(l)
	if l.WritebackLines != 0 {
		t.Error("write-through mode drained dirty lines")
	}
}

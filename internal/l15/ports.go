package l15

import (
	"fmt"
	"sort"

	"l15cache/internal/mem"
)

// §3.3: supporting instruction-level parallelism. A superscalar OoO core
// can dispatch several memory requests in one cycle; the L1.5 then needs
// (i) additional address/data ports interfacing the head entries of the
// Load and Store Queues, and (ii) a buffer in front of the mask logic that
// temporarily stores and prioritises the in-flight requests.
//
// Ported models exactly that: up to Ports requests enter the mask logic per
// cycle; excess requests wait in a bounded buffer and are replayed oldest-
// first (loads before stores at equal age, the usual LSQ priority), each
// charged its queueing delay on top of the underlying access latency.

// Request is one LSQ head entry presented to the L1.5 in a cycle.
type Request struct {
	Core  int
	VA    uint32
	PA    uint32
	Store bool
	// Age orders requests of the same cycle (0 = oldest). The buffer
	// prioritises older entries; ties dispatch loads first.
	Age int
}

// PortedResult is the outcome of one buffered request.
type PortedResult struct {
	AccessResult
	// QueueCycles is the time the request waited for a free port.
	QueueCycles int
}

// Ported wraps an L15 with the §3.3 port/buffer front end.
type Ported struct {
	l15   *L15
	ports int
	depth int
}

// NewPorted builds the front end with the given port count and buffer
// depth (both ≥ 1; depth bounds how many requests one cycle may carry).
func NewPorted(l *L15, ports, depth int) (*Ported, error) {
	if l == nil {
		return nil, fmt.Errorf("l15: nil cache")
	}
	if ports < 1 {
		return nil, fmt.Errorf("l15: ports = %d", ports)
	}
	if depth < ports {
		return nil, fmt.Errorf("l15: buffer depth %d below port count %d", depth, ports)
	}
	return &Ported{l15: l, ports: ports, depth: depth}, nil
}

// Cycle dispatches one cycle's worth of simultaneous requests. Requests
// beyond the buffer depth are rejected with an error (the LSQ must stall).
// The returned slice is index-aligned with the input.
func (p *Ported) Cycle(reqs []Request) ([]PortedResult, error) {
	if len(reqs) > p.depth {
		return nil, fmt.Errorf("l15: %d requests exceed buffer depth %d", len(reqs), p.depth)
	}
	// Prioritise: oldest first; loads before stores at equal age; then
	// core index for determinism.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ra.Age != rb.Age {
			return ra.Age < rb.Age
		}
		if ra.Store != rb.Store {
			return !ra.Store // loads first
		}
		return ra.Core < rb.Core
	})

	out := make([]PortedResult, len(reqs))
	for rank, idx := range order {
		req := reqs[idx]
		wait := rank / p.ports // full port groups ahead of us
		var res AccessResult
		var err error
		if req.Store {
			res, err = p.l15.Store(req.Core, req.VA, mem.PhysAddr(req.PA))
		} else {
			res, err = p.l15.Load(req.Core, req.VA, mem.PhysAddr(req.PA))
		}
		if err != nil {
			return nil, err
		}
		res.Latency += wait
		out[idx] = PortedResult{AccessResult: res, QueueCycles: wait}
	}
	return out, nil
}

// Ports returns the configured port count.
func (p *Ported) Ports() int { return p.ports }

// Depth returns the configured queue depth.
func (p *Ported) Depth() int { return p.depth }

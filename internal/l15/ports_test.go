package l15

import (
	"testing"
	"testing/quick"

	"l15cache/internal/bitmap"
)

func newPorted(t *testing.T, ports, depth int) (*Ported, *L15) {
	t.Helper()
	l2 := &fakeL2{latency: 20}
	l, err := New(DefaultConfig(), l2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPorted(l, ports, depth)
	if err != nil {
		t.Fatal(err)
	}
	return p, l
}

func TestNewPortedErrors(t *testing.T) {
	l2 := &fakeL2{latency: 20}
	l, _ := New(DefaultConfig(), l2)
	if _, err := NewPorted(nil, 1, 1); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := NewPorted(l, 0, 4); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := NewPorted(l, 4, 2); err == nil {
		t.Error("depth below ports accepted")
	}
}

func TestCycleSingleRequestNoQueue(t *testing.T) {
	p, l := newPorted(t, 2, 8)
	l.Demand(0, 2)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))

	res, err := p.Cycle([]Request{{Core: 0, VA: 0x1000, PA: 0x1000, Store: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].QueueCycles != 0 {
		t.Errorf("lone request queued %d cycles", res[0].QueueCycles)
	}
}

func TestCycleQueueing(t *testing.T) {
	p, l := newPorted(t, 2, 8)
	l.Demand(0, 4)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))

	// Six same-age requests through two ports: queue delays 0,0,1,1,2,2.
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{Core: 0, VA: uint32(0x1000 + 64*i), PA: uint32(0x1000 + 64*i)})
	}
	res, err := p.Cycle(reqs)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, r := range res {
		counts[r.QueueCycles]++
	}
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Errorf("queue distribution = %v", counts)
	}
}

func TestCyclePrioritisesOldestThenLoads(t *testing.T) {
	p, l := newPorted(t, 1, 8)
	l.Demand(0, 4)
	settle(l)
	l.IPSet(0, bitmap.FirstN(16))

	reqs := []Request{
		{Core: 0, VA: 0x1000, PA: 0x1000, Store: true, Age: 1},
		{Core: 0, VA: 0x2000, PA: 0x2000, Store: false, Age: 1},
		{Core: 0, VA: 0x3000, PA: 0x3000, Store: true, Age: 0},
	}
	res, err := p.Cycle(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Oldest (idx 2) first; then the load (idx 1); then the store (idx 0).
	if res[2].QueueCycles != 0 {
		t.Errorf("oldest queued %d", res[2].QueueCycles)
	}
	if res[1].QueueCycles != 1 {
		t.Errorf("load queued %d, want 1", res[1].QueueCycles)
	}
	if res[0].QueueCycles != 2 {
		t.Errorf("store queued %d, want 2", res[0].QueueCycles)
	}
}

func TestCycleDepthLimit(t *testing.T) {
	p, _ := newPorted(t, 1, 2)
	reqs := []Request{{}, {}, {}}
	if _, err := p.Cycle(reqs); err == nil {
		t.Error("overflowing cycle accepted")
	}
}

func TestPortedAccessors(t *testing.T) {
	p, _ := newPorted(t, 2, 4)
	if p.Ports() != 2 || p.Depth() != 4 {
		t.Errorf("accessors: %d/%d", p.Ports(), p.Depth())
	}
}

// Property: total latency is the underlying access latency plus the queue
// wait, and wait never exceeds ⌈n/ports⌉−1.
func TestQuickPortedLatency(t *testing.T) {
	f := func(nr, pr uint8) bool {
		ports := int(pr%4) + 1
		n := int(nr%8) + 1
		l2 := &fakeL2{latency: 20}
		l, err := New(DefaultConfig(), l2)
		if err != nil {
			return false
		}
		l.Demand(0, 8)
		for i := 0; i < 100; i++ {
			l.Tick()
		}
		p, err := NewPorted(l, ports, 8)
		if err != nil {
			return false
		}
		var reqs []Request
		for i := 0; i < n; i++ {
			reqs = append(reqs, Request{Core: 0, VA: uint32(64 * i), PA: uint32(64 * i)})
		}
		res, err := p.Cycle(reqs)
		if err != nil {
			return false
		}
		maxWait := (n + ports - 1) / ports
		for _, r := range res {
			if r.QueueCycles < 0 || r.QueueCycles >= maxWait {
				return false
			}
			if r.Latency < l.Config().HitLat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

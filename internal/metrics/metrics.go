// Package metrics is the repository's unified observability layer: a
// zero-dependency, allocation-light registry of named counters, gauges and
// fixed-bucket latency histograms, plus a ring-buffered event tracer
// (tracer.go) that exports Chrome trace_event JSON.
//
// Hot simulation loops have two ways to feed the registry:
//
//   - directly, through atomic Counter/Gauge/Histogram handles obtained
//     once and cached (safe under concurrent harnesses such as the
//     experiments fan-out);
//   - lazily, through RegisterCollector: single-threaded components (the
//     tag-store caches, the TLBs) keep their cheap non-atomic Stats blocks
//     and copy them into the registry only when Snapshot is taken, so the
//     simulated hot path pays nothing.
//
// The parallel experiment harness (internal/runner) publishes its
// operator-facing progress through the same registry: per-sweep
// `runner.<name>.trials_total`, `.trials_completed`, `.progress` and
// `.eta_seconds` series, so a long sweep's state shows up in the standard
// `-metrics` snapshot alongside the simulation counters.
//
// Snapshot serialises to stable JSON (keys sorted), which is what the CI
// pipeline archives and gates on.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"l15cache/internal/buildinfo"
)

// Counter is a monotonic (or externally mirrored) event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the value — the collector path, mirroring a component's
// internal Stats block at snapshot time.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Add adds d to the gauge (lock-free CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v <= Bounds[i] (and > Bounds[i-1]); the final implicit bucket counts
// v > Bounds[len-1]. All updates are atomic, so concurrent harnesses may
// observe into the same histogram.
type Histogram struct {
	bounds           []float64
	counts           []atomic.Uint64 // len(bounds)+1
	count            atomic.Uint64
	sumBits, maxBits atomic.Uint64
}

// NewHistogram builds a standalone histogram with the given strictly
// increasing upper bounds. Most callers want Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && h.count.Load() > 1 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// snapshot captures the histogram under no lock (counts are atomic).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	return s
}

// HistogramSnapshot is the serialised form of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last bucket is > Bounds[len-1]
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
	Max    float64   `json:"max"`
}

// Quantile estimates the q-th quantile (0..1) from the bucket counts by
// linear interpolation inside the bucket that straddles the target rank.
// The first bucket interpolates from zero; the overflow bucket (beyond the
// last bound) reports the recorded Max. An empty histogram returns NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket: no upper bound
			return s.Max
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		frac := 1.0
		if c > 0 {
			frac = (rank - prev) / float64(c)
		}
		return lo + frac*(s.Bounds[i]-lo)
	}
	return s.Max
}

// Snapshot is a point-in-time copy of a registry. encoding/json emits map
// keys sorted, so the serialised form is deterministic for identical values.
// Build is the attribution header (internal/buildinfo): a pure function of
// the binary, so archived snapshots stay byte-comparable across runs of one
// build while naming the revision and toolchain that produced them.
type Snapshot struct {
	Build      map[string]string            `json:"build"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// JSON renders the snapshot as indented, deterministically ordered JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(*Registry)
}

// Default is the process-wide registry the cmd/ tools serialise with
// -metrics; library packages without an explicit registry publish here.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use. A later call with different bounds returns the
// existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterCollector adds a callback that Snapshot invokes (outside the
// registry lock) before reading the instruments. Collectors bridge
// components that keep cheap non-atomic counters: they copy those values in
// with Counter.Store / Gauge.Set. A collector must not retain the registry
// lock assumptions — it may freely create instruments.
func (r *Registry) RegisterCollector(fn func(*Registry)) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Snapshot runs the collectors and returns a copy of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	collectors := append([]func(*Registry){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn(r)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Build:      buildinfo.Map(),
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteFile serialises a snapshot of the registry to path.
func (r *Registry) WriteFile(path string) error {
	data, err := r.Snapshot().JSON()
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteFiles writes the Default registry snapshot and the Default tracer's
// Chrome trace to the given paths; an empty path skips that output. It is
// the shared implementation behind every cmd/ tool's -metrics and -trace
// flags.
func WriteFiles(metricsPath, tracePath string) error {
	if metricsPath != "" {
		if err := Default.WriteFile(metricsPath); err != nil {
			return err
		}
	}
	if tracePath != "" {
		if err := Trace.WriteChrome(tracePath); err != nil {
			return err
		}
	}
	return nil
}

package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Event is one traced occurrence inside the simulated system: a Walloc way
// reassignment, a monitor sample, a scheduler dispatch. Cycle is the
// component's notion of time (SDU ticks, core cycles or simulated task time
// scaled by the caller). A non-zero Dur turns the event into a span
// covering [Cycle, Cycle+Dur] — the form the runner's sweep/trial spans
// use, where both fields are wall-clock microseconds since sweep start.
type Event struct {
	Cycle     uint64
	Dur       uint64
	Component string
	Name      string
	Args      map[string]any
}

// DefaultTraceCap is the ring capacity of the Default tracer.
const DefaultTraceCap = 1 << 16

// Tracer is a fixed-capacity ring buffer of events. When full, the oldest
// events are overwritten and counted as dropped. A nil *Tracer is a valid
// no-op sink, so components can hold one unconditionally.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// Trace is the process-wide tracer the cmd/ tools serialise with -trace.
var Trace = NewTracer(DefaultTraceCap)

func init() { Trace.PublishMetrics(Default) }

// PublishMetrics registers a collector on r that mirrors the tracer's
// retained and dropped event counts into the `trace.events` and
// `trace.dropped_events` counters at snapshot time, so a wrapped ring is
// visible in every -metrics artifact instead of silently truncating.
func (t *Tracer) PublishMetrics(r *Registry) {
	if t == nil || r == nil {
		return
	}
	r.RegisterCollector(func(r *Registry) {
		r.Counter("trace.events").Store(uint64(t.Len()))
		r.Counter("trace.dropped_events").Store(t.Dropped())
	})
}

// NewTracer returns a tracer holding up to capacity events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit records one instant event. Safe for concurrent use and on a nil
// tracer.
func (t *Tracer) Emit(cycle uint64, component, name string, args map[string]any) {
	t.emit(Event{Cycle: cycle, Component: component, Name: name, Args: args})
}

// EmitSpan records one duration event covering [cycle, cycle+dur] — a
// Chrome "complete" (X) slice. The runner's sweep/trial spans use it with
// wall-clock microseconds; simulated components may use it with cycle
// spans. Safe for concurrent use and on a nil tracer.
func (t *Tracer) EmitSpan(cycle, dur uint64, component, name string, args map[string]any) {
	if dur == 0 {
		dur = 1 // a zero-width X slice is invisible in the viewers
	}
	t.emit(Event{Cycle: cycle, Dur: dur, Component: component, Name: name, Args: args})
}

func (t *Tracer) emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % cap(t.buf)
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dropped returns how many events were overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// chromeEvent is one record of the Chrome trace_event format ("JSON array
// format"), viewable in chrome://tracing or https://ui.perfetto.dev.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"` // simulated cycles, displayed as µs
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeJSON renders the retained events as a Chrome trace_event array.
// Each distinct component becomes one "thread" row, named via metadata
// events, so chrome://tracing shows per-component swimlanes.
func (t *Tracer) ChromeJSON() ([]byte, error) {
	events := t.Events()
	tids := map[string]int{}
	var out []chromeEvent
	// A wrapped ring means the trace is a suffix of the run; say so in the
	// file itself rather than letting the viewer imply completeness.
	if d := t.Dropped(); d > 0 {
		out = append(out, chromeEvent{
			Name:  "trace_dropped_events",
			Phase: "M",
			Args:  map[string]any{"dropped": d},
		})
	}
	for _, ev := range events {
		tid, ok := tids[ev.Component]
		if !ok {
			tid = len(tids)
			tids[ev.Component] = tid
			out = append(out, chromeEvent{
				Name:  "thread_name",
				Phase: "M",
				PID:   0,
				TID:   tid,
				Args:  map[string]any{"name": ev.Component},
			})
		}
		ce := chromeEvent{
			Name:  ev.Name,
			Cat:   ev.Component,
			Phase: "i",
			TS:    ev.Cycle,
			PID:   0,
			TID:   tid,
			Scope: "t",
			Args:  ev.Args,
		}
		if ev.Dur > 0 { // duration events render as complete (X) slices
			ce.Phase, ce.Scope, ce.Dur = "X", "", ev.Dur
		}
		out = append(out, ce)
	}
	if out == nil {
		out = []chromeEvent{}
	}
	return json.MarshalIndent(out, "", " ")
}

// WriteChrome writes the Chrome trace_event JSON to path.
func (t *Tracer) WriteChrome(path string) error {
	data, err := t.ChromeJSON()
	if err != nil {
		return fmt.Errorf("metrics: trace: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

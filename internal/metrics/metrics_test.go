package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"sync"
	"testing"
)

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// TestCounterConcurrent hammers one counter from many goroutines; run under
// -race this also proves the handle is safe to share.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if again := r.Counter("c"); again != c {
		t.Fatal("Counter did not return the same handle on second lookup")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(1.5)
	if got := g.Load(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 1.5+8*100*0.5 {
		t.Fatalf("gauge after concurrent Add = %v, want %v", got, 1.5+8*100*0.5)
	}
}

// TestHistogramBucketEdges pins the bucket semantics: bucket i counts
// v <= bounds[i], the final implicit bucket counts overflow.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.5, 2, 2.5, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	// <=1: {0, 1}; <=2: {1.5, 2}; <=4: {2.5, 4}; >4: {5, 100}.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if s.Sum != 116 {
		t.Fatalf("sum = %v, want 116", s.Sum)
	}
	if s.Max != 100 {
		t.Fatalf("max = %v, want 100", s.Max)
	}
	if s.Mean != 116.0/8 {
		t.Fatalf("mean = %v, want %v", s.Mean, 116.0/8)
	}
}

func TestHistogramUnsortedBoundsAndReuse(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{4, 1, 2})
	got := h.Bounds()
	want := []float64{1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
	// Second lookup with different bounds returns the existing histogram.
	if again := r.Histogram("h", []float64{99}); again != h {
		t.Fatal("Histogram did not return the same handle on second lookup")
	}
}

// TestSnapshotDeterministic asserts two registries with identical contents
// serialise to byte-identical JSON regardless of insertion order.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(names []string) *Registry {
		r := NewRegistry()
		for _, n := range names {
			r.Counter("count." + n).Add(7)
			r.Gauge("gauge." + n).Set(3.25)
			r.Histogram("hist."+n, []float64{1, 2}).Observe(1)
		}
		return r
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	ja, err := a.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", ja, jb)
	}
}

func TestCollectorRunsAtSnapshot(t *testing.T) {
	r := NewRegistry()
	calls := 0
	stats := struct{ hits uint64 }{}
	r.RegisterCollector(func(r *Registry) {
		calls++
		r.Counter("comp.hits").Store(stats.hits)
	})
	stats.hits = 41
	s := r.Snapshot()
	if calls != 1 {
		t.Fatalf("collector calls = %d, want 1", calls)
	}
	if s.Counters["comp.hits"] != 41 {
		t.Fatalf("comp.hits = %d, want 41", s.Counters["comp.hits"])
	}
	stats.hits = 42
	if s2 := r.Snapshot(); s2.Counters["comp.hits"] != 42 {
		t.Fatalf("comp.hits after update = %d, want 42", s2.Counters["comp.hits"])
	}
}

func TestWriteFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	path := t.TempDir() + "/m.json"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := readJSON(path, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["x"] != 1 {
		t.Fatalf("round-tripped x = %d, want 1", snap.Counters["x"])
	}
}

// TestHistogramQuantileEdgeCases covers the empty histogram, the
// single-bucket histogram and the overflow bucket.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	empty := NewHistogram([]float64{1}).snapshot()
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram quantile = %g, want NaN", q)
	}

	single := NewHistogram([]float64{10})
	for i := 0; i < 4; i++ {
		single.Observe(5)
	}
	s := single.snapshot()
	if q := s.Quantile(0.5); q != 5 {
		t.Errorf("single-bucket median = %g, want 5 (midpoint of [0,10])", q)
	}
	if q := s.Quantile(0); q != 0 {
		t.Errorf("q=0 = %g, want bucket lower bound 0", q)
	}
	if q := s.Quantile(1); q != 10 {
		t.Errorf("q=1 = %g, want bucket upper bound 10", q)
	}

	// Overflow bucket: samples beyond the last bound report Max.
	over := NewHistogram([]float64{1})
	over.Observe(100)
	if q := over.snapshot().Quantile(0.99); q != 100 {
		t.Errorf("overflow quantile = %g, want Max 100", q)
	}

	// Clamping: out-of-range q behaves like 0 and 1.
	if a, b := s.Quantile(-3), s.Quantile(0); a != b {
		t.Errorf("q<0 not clamped: %g vs %g", a, b)
	}
	if a, b := s.Quantile(7), s.Quantile(1); a != b {
		t.Errorf("q>1 not clamped: %g vs %g", a, b)
	}
}

// TestHistogramQuantileInterpolation checks the linear interpolation on a
// two-bucket histogram with a known distribution.
func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	for i := 0; i < 2; i++ {
		h.Observe(5) // bucket (0,10]
	}
	for i := 0; i < 2; i++ {
		h.Observe(15) // bucket (10,20]
	}
	s := h.snapshot()
	if q := s.Quantile(0.5); q != 10 {
		t.Errorf("median = %g, want 10 (boundary of the two buckets)", q)
	}
	if q := s.Quantile(0.25); q != 5 {
		t.Errorf("q1 = %g, want 5 (midpoint of first bucket)", q)
	}
	if q := s.Quantile(0.75); q != 15 {
		t.Errorf("q3 = %g, want 15 (midpoint of second bucket)", q)
	}
}

package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, "x", "y", nil) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be an empty no-op sink")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(uint64(i), "c", fmt.Sprintf("e%d", i), nil)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first after wrap)", i, ev.Cycle, want)
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(uint64(i), fmt.Sprintf("w%d", w), "tick", nil)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 800 {
		t.Fatalf("retained+dropped = %d, want 800", got)
	}
}

// TestChromeJSON checks the export is a valid trace_event array with one
// thread-name metadata record per component and instant events carrying the
// simulated cycle as ts.
func TestChromeJSON(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(10, "l15.0", "way.assign", map[string]any{"way": 3})
	tr.Emit(20, "monitor", "sample", nil)
	tr.Emit(30, "l15.0", "way.revoke", nil)

	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var raw []map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("not valid JSON array: %v\n%s", err, data)
	}
	meta, instants := 0, 0
	for _, ev := range raw {
		switch ev["ph"] {
		case "M":
			meta++
		case "i":
			instants++
		}
	}
	if meta != 2 {
		t.Fatalf("thread_name metadata events = %d, want 2 (one per component)", meta)
	}
	if instants != 3 {
		t.Fatalf("instant events = %d, want 3", instants)
	}

	// Empty tracer must still serialise as a (possibly empty) array.
	empty, err := NewTracer(1).ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var arr []any
	if err := json.Unmarshal(empty, &arr); err != nil || len(arr) != 0 {
		t.Fatalf("empty tracer export = %s (err %v), want []", empty, err)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(5, "c", "e", nil)
	path := t.TempDir() + "/t.json"
	if err := tr.WriteChrome(path); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := readJSON(path, &arr); err != nil {
		t.Fatal(err)
	}
	if len(arr) != 2 { // metadata + instant
		t.Fatalf("exported %d events, want 2", len(arr))
	}
}

// TestTracerDroppedExposed checks satellite visibility of a wrapped ring:
// the snapshot carries trace.events / trace.dropped_events, and the Chrome
// export leads with a metadata record naming the drop count.
func TestTracerDroppedExposed(t *testing.T) {
	tr := NewTracer(2)
	reg := NewRegistry()
	tr.PublishMetrics(reg)
	for i := 0; i < 5; i++ {
		tr.Emit(uint64(i), "c", "e", nil)
	}
	s := reg.Snapshot()
	if got := s.Counters["trace.events"]; got != 2 {
		t.Errorf("trace.events = %d, want 2", got)
	}
	if got := s.Counters["trace.dropped_events"]; got != 3 {
		t.Errorf("trace.dropped_events = %d, want 3", got)
	}
	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("trace_dropped_events")) {
		t.Errorf("Chrome export missing drop metadata:\n%s", data)
	}
}

func TestEmitSpan(t *testing.T) {
	tr := NewTracer(8)
	tr.EmitSpan(100, 50, "runner/x", "trial.run", map[string]any{"span": "abc"})
	tr.EmitSpan(200, 0, "runner/x", "trial.queue", nil) // zero-width widens to 1
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Cycle != 100 || events[0].Dur != 50 {
		t.Errorf("span event = %+v", events[0])
	}
	if events[1].Dur != 1 {
		t.Errorf("zero-duration span rendered with Dur=%d, want 1", events[1].Dur)
	}

	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Ph  string  `json:"ph"`
		Ts  float64 `json:"ts"`
		Dur float64 `json:"dur"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range doc {
		if e.Ph == "X" {
			found++
			if e.Dur <= 0 {
				t.Errorf("X slice with dur %v", e.Dur)
			}
		}
	}
	if found != 2 {
		t.Errorf("Chrome export has %d X slices, want 2", found)
	}
}

package telemetry

import (
	"strings"
	"testing"
)

// TestParseRejects feeds the strict parser structurally broken
// expositions and demands a diagnostic for each.
func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"sample outside family":    "orphan 1\n",
		"duplicate family":         "# TYPE a counter\na 1\n# TYPE a counter\n",
		"unknown type":             "# TYPE a exotic\na 1\n",
		"malformed TYPE":           "# TYPE a\n",
		"duplicate series":         "# TYPE a counter\na{name=\"x\"} 1\na{name=\"x\"} 2\n",
		"missing value":            "# TYPE a gauge\na{name=\"x\"}\n",
		"bad escape":               "# TYPE a gauge\na{name=\"x\\q\"} 1\n",
		"unterminated label":       "# TYPE a gauge\na{name=\"x} 1\n",
		"duplicate label":          "# TYPE a gauge\na{l=\"1\",l=\"2\"} 1\n",
		"foreign sample in family": "# TYPE a gauge\nb 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n" +
			"h_sum 1\nh_count 5\n",
		"unordered le": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\n" +
			"h_sum 1\nh_count 3\n",
		"missing +Inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"+Inf disagrees with count": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, input := range cases {
		if _, err := Parse([]byte(input)); err == nil {
			t.Errorf("%s: Parse accepted\n%s", name, input)
		}
	}
}

// TestParseAccepts covers tolerated variations: HELP lines, comments,
// blank lines, timestamps, escaped label bytes, untyped families.
func TestParseAccepts(t *testing.T) {
	input := strings.Join([]string{
		"# HELP a helpful words",
		"# TYPE a counter",
		"",
		`a{name="x\\y\"z\nw"} 3 1700000000`,
		"# a free comment",
		"# TYPE b untyped",
		"b 2.5",
		"# TYPE h histogram",
		`h_bucket{le="1"} 1`,
		`h_bucket{le="+Inf"} 4`,
		"h_sum 9.5",
		"h_count 4",
		"",
	}, "\n")
	families, err := Parse([]byte(input))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(families) != 3 {
		t.Fatalf("got %d families, want 3", len(families))
	}
	if got := families[0].Samples[0].Labels["name"]; got != "x\\y\"z\nw" {
		t.Errorf("unescaped label = %q", got)
	}
	if families[0].Samples[0].Value != 3 {
		t.Errorf("timestamped sample value = %v", families[0].Samples[0].Value)
	}
}

// TestParseHistogramPerSeries checks the bucket invariants are enforced
// per label-set, not across the whole family.
func TestParseHistogramPerSeries(t *testing.T) {
	input := "# TYPE h histogram\n" +
		`h_bucket{name="a",le="1"} 5` + "\n" +
		`h_bucket{name="a",le="+Inf"} 5` + "\n" +
		`h_sum{name="a"} 1` + "\n" +
		`h_count{name="a"} 5` + "\n" +
		`h_bucket{name="b",le="1"} 1` + "\n" +
		`h_bucket{name="b",le="+Inf"} 2` + "\n" +
		`h_sum{name="b"} 1` + "\n" +
		`h_count{name="b"} 2` + "\n"
	if _, err := Parse([]byte(input)); err != nil {
		t.Fatalf("per-series histogram rejected: %v", err)
	}
}

// Package telemetry is the service-grade observability layer on top of
// internal/metrics: a stdlib-only Prometheus text-exposition encoder (and
// strict parser) for registry snapshots, a wall-clock time-series sampler
// feeding a bounded ring, a runtime/metrics collector for the Go runtime's
// own health, and the zero-dependency live dashboard the flight server
// mounts at /dashboard. It is the substrate the future simulation service
// (`cmd/l15d`, ROADMAP) will expose; today the cmd tools surface it through
// `-telemetry` and `l15sim -http` (DESIGN.md §13).
//
// The layer's one invariant is that it must never perturb determinism:
//
//   - the deterministic registry (metrics.Default) stays the only source of
//     the archived -metrics artifacts, and telemetry only *reads* it
//     (Snapshot is a pure read; collectors store derived values);
//   - every wall-clock-coupled series — trial latency, worker occupancy,
//     heap, GC pauses, SSE client churn — lives in the separate Runtime
//     registry below, which is merged into the *live* views (/metrics
//     exposition, sampler ring, dashboard) but never written into an
//     archived artifact;
//   - the sampler's clock reads are an operator-facing carve-out exactly
//     like internal/flight's SSE pacing, and the walltime/puritycheck
//     analyzers encode the boundary.
//
// A sweep therefore produces byte-identical experiment artifacts with
// telemetry on or off — the property the telemetry-determinism CI job
// compares end to end.
package telemetry

import (
	"l15cache/internal/metrics"
)

// Runtime is the operational registry: the home of every series that is a
// function of the host rather than the simulation — Go runtime health
// (RegisterRuntimeCollector), the runner's trial-latency and occupancy
// summaries, the flight server's SSE client counters. It is merged into
// the live /metrics exposition and the sampler ring, and deliberately
// excluded from metrics.WriteFiles so archived artifacts stay
// deterministic.
var Runtime = metrics.NewRegistry()

func init() { RegisterRuntimeCollector(Runtime) }

// Merge overlays b on a: the union of both snapshots, with b winning name
// collisions. The intended operands — the deterministic registry and the
// operational Runtime registry — use disjoint name prefixes, so in
// practice nothing collides. The Build header comes from a (they are
// identical per binary anyway).
func Merge(a, b metrics.Snapshot) metrics.Snapshot {
	out := metrics.Snapshot{
		Build:      a.Build,
		Counters:   make(map[string]uint64, len(a.Counters)+len(b.Counters)),
		Gauges:     make(map[string]float64, len(a.Gauges)+len(b.Gauges)),
		Histograms: make(map[string]metrics.HistogramSnapshot, len(a.Histograms)+len(b.Histograms)),
	}
	for _, s := range []metrics.Snapshot{a, b} {
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range s.Histograms {
			out.Histograms[k] = v
		}
	}
	return out
}

// MergedSnapshot captures metrics.Default overlaid with Runtime — the
// merged live view behind the /metrics endpoint, the sampler and the
// dashboard.
func MergedSnapshot() metrics.Snapshot {
	return Merge(metrics.Default.Snapshot(), Runtime.Snapshot())
}

// The Go-runtime health collector: a RegisterCollector bridge from the
// runtime/metrics package into a metrics.Registry, publishing heap and GC
// state, goroutine count and scheduling latency under the `go.*` prefix.
// These series are functions of the host, never of the simulation, so the
// collector registers on the operational Runtime registry — archived
// artifacts from metrics.Default never see them.

package telemetry

import (
	"math"
	runtimemetrics "runtime/metrics"
	"sync"

	"l15cache/internal/metrics"
)

// runtimeSeries maps the runtime/metrics names the collector publishes to
// their exported registry names. Availability is probed at registration
// (runtimemetrics.All), so a name absent from the running toolchain is
// skipped instead of reading KindBad.
var runtimeSeries = []struct {
	src     string
	name    string
	counter bool // cumulative uint64 → counter; otherwise gauge
}{
	{src: "/gc/cycles/total:gc-cycles", name: "go.gc_cycles", counter: true},
	{src: "/gc/heap/allocs:bytes", name: "go.heap_allocs_bytes", counter: true},
	{src: "/memory/classes/heap/objects:bytes", name: "go.heap_objects_bytes"},
	{src: "/memory/classes/total:bytes", name: "go.memory_total_bytes"},
	{src: "/sched/goroutines:goroutines", name: "go.goroutines"},
}

// runtimeQuantiles maps runtime histogram distributions to quantile gauge
// families: `<name>_p50`, `<name>_p95`, `<name>_p99` in seconds.
var runtimeQuantiles = []struct {
	src  string
	name string
}{
	{src: "/gc/pauses:seconds", name: "go.gc_pause_seconds"},
	{src: "/sched/latencies:seconds", name: "go.sched_latency_seconds"},
}

// RegisterRuntimeCollector registers a collector on r that mirrors the Go
// runtime's own health — heap bytes, GC cycles and pause quantiles,
// goroutine count, scheduler latency quantiles — into `go.*` series at
// every Snapshot. Names missing from this toolchain's runtime/metrics set
// are skipped. Safe under concurrent Snapshots (the reusable read buffer
// is mutex-guarded).
func RegisterRuntimeCollector(r *metrics.Registry) {
	avail := map[string]bool{}
	for _, d := range runtimemetrics.All() {
		avail[d.Name] = true
	}
	var (
		mu      sync.Mutex
		samples []runtimemetrics.Sample
		publish []func(*metrics.Registry, runtimemetrics.Value)
	)
	for _, s := range runtimeSeries {
		if !avail[s.src] {
			continue
		}
		s := s
		samples = append(samples, runtimemetrics.Sample{Name: s.src})
		publish = append(publish, func(r *metrics.Registry, v runtimemetrics.Value) {
			switch v.Kind() {
			case runtimemetrics.KindUint64:
				if s.counter {
					r.Counter(s.name).Store(v.Uint64())
				} else {
					r.Gauge(s.name).Set(float64(v.Uint64()))
				}
			case runtimemetrics.KindFloat64:
				r.Gauge(s.name).Set(v.Float64())
			}
		})
	}
	for _, q := range runtimeQuantiles {
		if !avail[q.src] {
			continue
		}
		q := q
		samples = append(samples, runtimemetrics.Sample{Name: q.src})
		publish = append(publish, func(r *metrics.Registry, v runtimemetrics.Value) {
			if v.Kind() != runtimemetrics.KindFloat64Histogram {
				return
			}
			h := v.Float64Histogram()
			r.Gauge(q.name + "_p50").Set(histQuantile(h, 0.50))
			r.Gauge(q.name + "_p95").Set(histQuantile(h, 0.95))
			r.Gauge(q.name + "_p99").Set(histQuantile(h, 0.99))
		})
	}
	if len(samples) == 0 {
		return
	}
	r.RegisterCollector(func(r *metrics.Registry) {
		mu.Lock()
		defer mu.Unlock()
		runtimemetrics.Read(samples)
		for i := range samples {
			publish[i](r, samples[i].Value)
		}
	})
}

// histQuantile estimates the q-th quantile of a runtime Float64Histogram
// by rank scan, reporting the upper bound of the straddling bucket (the
// convention runtime histograms are built for; -Inf/+Inf edges clamp to
// the nearest finite bound). An empty histogram returns 0.
func histQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum < rank {
			continue
		}
		// Bucket i covers [Buckets[i], Buckets[i+1]); report the upper edge.
		hi := h.Buckets[i+1]
		if math.IsInf(hi, 1) {
			hi = h.Buckets[i] // clamp the overflow bucket to its lower edge
		}
		if math.IsInf(hi, -1) {
			hi = 0
		}
		return hi
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return last
}

package telemetry

import (
	"math"
	"testing"

	"l15cache/internal/metrics"
)

func TestMergeOverlay(t *testing.T) {
	a := metrics.NewRegistry()
	a.Counter("shared").Add(1)
	a.Counter("only.a").Add(2)
	a.Gauge("g").Set(1)
	a.Histogram("h.a", []float64{1}).Observe(0.5)

	b := metrics.NewRegistry()
	b.Counter("shared").Add(10)
	b.Counter("only.b").Add(3)
	b.Gauge("g").Set(2)
	b.Histogram("h.b", []float64{1}).Observe(0.5)

	m := Merge(a.Snapshot(), b.Snapshot())

	// b overlays a on collisions; everything else is the union.
	if m.Counters["shared"] != 10 {
		t.Errorf("shared counter = %d, want b's 10", m.Counters["shared"])
	}
	if m.Counters["only.a"] != 2 || m.Counters["only.b"] != 3 {
		t.Errorf("union lost a side: %v", m.Counters)
	}
	if m.Gauges["g"] != 2 {
		t.Errorf("gauge g = %v, want b's 2", m.Gauges["g"])
	}
	if _, ok := m.Histograms["h.a"]; !ok {
		t.Error("histogram h.a dropped")
	}
	if _, ok := m.Histograms["h.b"]; !ok {
		t.Error("histogram h.b dropped")
	}
	// Build metadata rides on the first (deterministic) snapshot.
	if len(m.Build) == 0 {
		t.Error("merged snapshot lost build info")
	}
}

// TestMergeDoesNotMutateInputs guards against the merged view aliasing
// either source snapshot's maps.
func TestMergeDoesNotMutateInputs(t *testing.T) {
	a := metrics.NewRegistry()
	a.Counter("c").Add(1)
	b := metrics.NewRegistry()
	sa, sb := a.Snapshot(), b.Snapshot()
	m := Merge(sa, sb)
	m.Counters["c"] = 99
	m.Gauges["new"] = 1
	if sa.Counters["c"] != 1 {
		t.Error("Merge aliased the first snapshot's counters")
	}
	if _, ok := sb.Gauges["new"]; ok {
		t.Error("Merge aliased the second snapshot's gauges")
	}
}

func TestRuntimeCollector(t *testing.T) {
	r := metrics.NewRegistry()
	RegisterRuntimeCollector(r)
	snap := r.Snapshot()

	if g, ok := snap.Gauges["go.goroutines"]; !ok || g < 1 {
		t.Errorf("go.goroutines = %v, %v", g, ok)
	}
	for _, name := range []string{"go.heap_objects_bytes", "go.memory_total_bytes"} {
		if v := snap.Gauges[name]; v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	for _, name := range []string{"go.gc_cycles", "go.heap_allocs_bytes"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s missing", name)
		}
	}
	// Quantile gauges appear once their histograms have data; at minimum
	// the names must be absent-or-finite, never NaN.
	for name, v := range snap.Gauges {
		if math.IsNaN(v) {
			t.Errorf("gauge %s is NaN", name)
		}
	}

	// Counters must be monotone across snapshots (allocate in between).
	sink := make([]byte, 1<<20)
	_ = sink
	again := r.Snapshot()
	if again.Counters["go.heap_allocs_bytes"] < snap.Counters["go.heap_allocs_bytes"] {
		t.Error("go.heap_allocs_bytes regressed between snapshots")
	}
}

// TestMergedSnapshot exercises the package-level default wiring: the
// merged view must contain the runtime series without ever writing them
// into metrics.Default.
func TestMergedSnapshot(t *testing.T) {
	m := MergedSnapshot()
	if _, ok := m.Gauges["go.goroutines"]; !ok {
		t.Error("merged snapshot missing runtime series")
	}
	if _, ok := metrics.Default.Snapshot().Gauges["go.goroutines"]; ok {
		t.Error("runtime series leaked into metrics.Default — determinism contract broken")
	}
}

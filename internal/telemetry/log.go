// Package-level log sink, indirected so tests can capture operator-facing
// diagnostics without scraping stderr.

package telemetry

import "log"

// logf is the sink for operator-facing diagnostics (response write
// failures and the like). Tests swap it to assert on messages.
var logf = log.Printf

// The time-series sampler: a wall-clock loop capturing periodic snapshot
// deltas of the merged registries into a bounded ring, exported as JSONL
// (`/metrics/history`, the `-telemetry` flag) and streamed over SSE to the
// dashboard. Wall-clock reads live behind the same carve-out discipline as
// internal/flight's SSE pacing: a sample timestamps *observations of* the
// simulation, never anything the simulation reads back, so sampling cannot
// perturb results (DESIGN.md §13).

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"l15cache/internal/metrics"
)

// DefaultInterval is the sampling period used when NewSampler gets a
// non-positive interval.
const DefaultInterval = 250 * time.Millisecond

// DefaultRingCap is the sample-ring capacity used when NewSampler gets a
// non-positive capacity: at DefaultInterval it retains ~8.5 minutes.
const DefaultRingCap = 2048

// Sample is one captured point of the sampled time series. Counter values
// are cumulative; Deltas carries the increment since the previous sample
// (the rate numerator the dashboard plots). Histograms are folded into
// scalar series: `<name>.count` (counter), `<name>.sum`, `<name>.p50` and
// `<name>.p95` (gauges).
type Sample struct {
	// Seq is the dense sample index since the sampler was created; the
	// SSE stream resumes from it.
	Seq uint64 `json:"seq"`
	// UnixMillis is the wall-clock capture time.
	UnixMillis int64 `json:"unix_ms"`
	// ElapsedMillis is the time since the sampler started.
	ElapsedMillis int64 `json:"elapsed_ms"`
	// Counters holds the cumulative counter values.
	Counters map[string]uint64 `json:"counters"`
	// Deltas holds each counter's increment since the previous sample.
	// A counter that did not move is omitted; on the first sample the
	// whole cumulative value counts as the delta.
	Deltas map[string]uint64 `json:"deltas"`
	// Gauges holds the gauge values (plus folded histogram scalars).
	Gauges map[string]float64 `json:"gauges"`
}

// Sampler periodically captures a snapshot function into a bounded ring.
// Construct with NewSampler; Start/Stop bound the sampling goroutine. All
// methods are safe for concurrent use.
type Sampler struct {
	snap     func() metrics.Snapshot
	interval time.Duration

	mu      sync.Mutex
	ring    []Sample
	next    int
	wrapped bool
	seq     uint64
	prev    map[string]uint64
	start   time.Time
	stop    chan struct{}
	done    chan struct{}
}

// NewSampler returns a sampler over snap (nil means MergedSnapshot) with
// the given period and ring capacity (non-positive values take the
// defaults). The sampler is idle until Start.
func NewSampler(snap func() metrics.Snapshot, interval time.Duration, capacity int) *Sampler {
	if snap == nil {
		snap = MergedSnapshot
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	if capacity < 1 {
		capacity = DefaultRingCap
	}
	return &Sampler{
		snap:     snap,
		interval: interval,
		ring:     make([]Sample, 0, capacity),
		start:    time.Now(),
	}
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start launches the sampling loop; a second Start while running is a
// no-op. Each tick captures one sample into the ring.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done

	go func() {
		defer close(done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.SampleNow()
			}
		}
	}()
}

// Stop halts the sampling loop and waits for it to exit; safe to call on
// a never-started or already-stopped sampler. The ring is retained.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SampleNow synchronously captures one sample into the ring and returns
// it. The snapshot runs outside the sampler lock, so a slow collector
// never blocks readers.
func (s *Sampler) SampleNow() Sample {
	snap := s.snap()
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	sample := Sample{
		Seq:           s.seq,
		UnixMillis:    now.UnixMilli(),
		ElapsedMillis: now.Sub(s.start).Milliseconds(),
		Counters:      make(map[string]uint64, len(snap.Counters)+len(snap.Histograms)),
		Deltas:        make(map[string]uint64),
		Gauges:        make(map[string]float64, len(snap.Gauges)+3*len(snap.Histograms)),
	}
	s.seq++
	for name, v := range snap.Counters {
		sample.Counters[name] = v
	}
	for name, v := range snap.Gauges {
		sample.Gauges[name] = v
	}
	for name, h := range snap.Histograms {
		sample.Counters[name+".count"] = h.Count
		sample.Gauges[name+".sum"] = h.Sum
		if h.Count > 0 {
			sample.Gauges[name+".p50"] = h.Quantile(0.50)
			sample.Gauges[name+".p95"] = h.Quantile(0.95)
		}
	}
	for name, v := range sample.Counters {
		if d := v - s.prev[name]; d != 0 {
			sample.Deltas[name] = d
		}
	}
	s.prev = sample.Counters

	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, sample)
	} else {
		s.ring[s.next] = sample
		s.next = (s.next + 1) % cap(s.ring)
		s.wrapped = true
	}
	return sample
}

// Samples returns a copy of the retained ring, oldest first.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.ring))
	if s.wrapped {
		out = append(out, s.ring[s.next:]...)
		out = append(out, s.ring[:s.next]...)
	} else {
		out = append(out, s.ring...)
	}
	return out
}

// SamplesSince returns the retained samples with Seq >= seq, oldest first
// — the polling primitive behind the dashboard's SSE stream.
func (s *Sampler) SamplesSince(seq uint64) []Sample {
	all := s.Samples()
	lo := 0
	for lo < len(all) && all[lo].Seq < seq {
		lo++
	}
	return all[lo:]
}

// WriteJSONL writes the retained ring as JSON Lines, one sample per line.
// encoding/json sorts map keys, so the serialisation of given samples is
// deterministic (the sampled values are wall-clock-coupled, of course).
func (s *Sampler) WriteJSONL(w io.Writer) error {
	for _, sample := range s.Samples() {
		line, err := json.Marshal(sample)
		if err != nil {
			return fmt.Errorf("telemetry: sample %d: %w", sample.Seq, err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
	}
	return nil
}

// WriteFile captures one final sample (so short runs never flush an empty
// ring) and writes the ring as JSONL to path.
func (s *Sampler) WriteFile(path string) error {
	s.SampleNow()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := s.WriteJSONL(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// HandleHistory is the /metrics/history endpoint: the retained ring as
// application/jsonl, one sample per line.
func (s *Sampler) HandleHistory(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	if err := s.WriteJSONL(w); err != nil {
		// The response is committed; surface the truncation in the logs.
		logf("telemetry: history response write: %v", err)
	}
}

// StartFlag implements the cmd tools' -telemetry flag: for a non-empty
// path it starts a sampler over the merged default registries and returns
// it with a flush function writing the ring (plus one final sample) to
// path; for "" it returns a nil sampler and a no-op flush. The flush is
// idempotent — the interrupt and normal exit paths may both call it.
func StartFlag(path string) (*Sampler, func() error) {
	if path == "" {
		return nil, func() error { return nil }
	}
	s := NewSampler(nil, 0, 0)
	s.Start()
	return s, func() error { return s.WriteFile(path) }
}

// Strict parser/validator for the subset of the Prometheus text exposition
// format that Exposition emits. It is the receiving half of the encoder's
// round-trip tests and the `cmd/promcheck` scrape validator the CI smoke
// job runs against a live `l15sim -http` endpoint. Beyond syntax it
// enforces the structural invariants a scraper relies on: every sample
// belongs to a declared family, no family or series is declared twice,
// histogram buckets are cumulative (non-decreasing) over strictly
// increasing `le` bounds, the `+Inf` bucket exists and equals `_count`.

package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one sample line of an exposition.
type ParsedSample struct {
	// Metric is the sample's metric name (family name, or the
	// _bucket/_sum/_count member of a histogram family).
	Metric string
	// Labels holds the label pairs in source order.
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// ParsedFamily is one `# TYPE` family and its samples.
type ParsedFamily struct {
	// Name is the family name as declared by the TYPE line.
	Name string
	// Type is "counter", "gauge", "histogram" or "untyped".
	Type string
	// Samples are the family's samples in source order.
	Samples []ParsedSample
}

// Parse validates data as Prometheus text exposition and returns its
// families in declaration order. It rejects, with line-numbered errors:
// samples outside any declared family, duplicate family declarations,
// duplicate series (same metric name and label set), malformed label
// escapes, non-cumulative or mis-ordered histogram buckets, a missing
// +Inf bucket, and a +Inf bucket disagreeing with _count.
func Parse(data []byte) ([]ParsedFamily, error) {
	var (
		families []ParsedFamily
		cur      *ParsedFamily
		declared = map[string]bool{}
		seen     = map[string]bool{} // metric name + rendered label set
	)
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown family type %q", lineNo, typ)
				}
				if declared[name] {
					return nil, fmt.Errorf("line %d: duplicate family %q", lineNo, name)
				}
				declared[name] = true
				families = append(families, ParsedFamily{Name: name, Type: typ})
				cur = &families[len(families)-1]
			}
			continue // HELP and free comments
		}

		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if cur == nil || !memberOf(cur, s.Metric) {
			return nil, fmt.Errorf("line %d: sample %q outside its family (TYPE line missing or out of order)", lineNo, s.Metric)
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		cur.Samples = append(cur.Samples, s)
	}
	for i := range families {
		if families[i].Type == "histogram" {
			if err := checkHistogram(&families[i]); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// memberOf reports whether metric belongs to family f: the family name
// itself, or its _bucket/_sum/_count members for histograms.
func memberOf(f *ParsedFamily, metric string) bool {
	if metric == f.Name {
		return f.Type != "histogram" // histogram samples always carry a suffix
	}
	if f.Type != "histogram" {
		return false
	}
	switch strings.TrimPrefix(metric, f.Name) {
	case "_bucket", "_sum", "_count":
		return true
	}
	return false
}

// seriesKey renders the identity of a sample: metric name plus its label
// pairs sorted by key.
func seriesKey(s ParsedSample) string {
	pairs := make([]string, 0, len(s.Labels))
	for k, v := range s.Labels {
		pairs = append(pairs, k+"="+strconv.Quote(v))
	}
	sort.Strings(pairs)
	return s.Metric + "{" + strings.Join(pairs, ",") + "}"
}

// parseSample parses one `metric{labels} value` line.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameByte(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q: no metric name", line)
	}
	s.Metric = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("sample %q: missing value", line)
	}
	// An optional timestamp may follow the value; Exposition never emits
	// one but scrapes of other sources may carry it.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", line, rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at s[0]=='{' into out,
// returning the index just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isNameByte(s[i], i == start) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("bad label name at %q", s[i:])
		}
		name := s[start:i]
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label %q: missing '='", name)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %q: unquoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("label %q: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(s) {
					return 0, fmt.Errorf("label %q: dangling escape", name)
				}
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %q: bad escape \\%c", name, s[i])
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
	}
}

// isNameByte reports whether c is legal in a metric/label name at the
// given position (first bytes may not be digits).
func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// checkHistogram validates the bucket invariants of one histogram family,
// grouping its samples into series by their non-le labels.
func checkHistogram(f *ParsedFamily) error {
	type hist struct {
		les    []float64
		counts []float64
		count  float64
		gotCnt bool
	}
	series := map[string]*hist{}
	order := []string{}
	get := func(s ParsedSample) *hist {
		pairs := make([]string, 0, len(s.Labels))
		for k, v := range s.Labels {
			if k == "le" {
				continue
			}
			pairs = append(pairs, k+"="+strconv.Quote(v))
		}
		sort.Strings(pairs)
		key := strings.Join(pairs, ",")
		h, ok := series[key]
		if !ok {
			h = &hist{}
			series[key] = h
			order = append(order, key)
		}
		return h
	}
	for _, s := range f.Samples {
		switch strings.TrimPrefix(s.Metric, f.Name) {
		case "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("family %s: bucket without le label", f.Name)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("family %s: bad le %q", f.Name, leStr)
			}
			h := get(s)
			h.les = append(h.les, le)
			h.counts = append(h.counts, s.Value)
		case "_count":
			h := get(s)
			h.count, h.gotCnt = s.Value, true
		}
	}
	for _, key := range order {
		h := series[key]
		where := f.Name
		if key != "" {
			where += "{" + key + "}"
		}
		if len(h.les) == 0 {
			return fmt.Errorf("histogram %s: no buckets", where)
		}
		for i := 1; i < len(h.les); i++ {
			if !(h.les[i] > h.les[i-1]) {
				return fmt.Errorf("histogram %s: le bounds not strictly increasing (%g after %g)", where, h.les[i], h.les[i-1])
			}
			if h.counts[i] < h.counts[i-1] {
				return fmt.Errorf("histogram %s: non-cumulative buckets (%g after %g at le=%g)", where, h.counts[i], h.counts[i-1], h.les[i])
			}
		}
		last := len(h.les) - 1
		if !math.IsInf(h.les[last], 1) {
			return fmt.Errorf("histogram %s: missing +Inf bucket", where)
		}
		if h.gotCnt && h.counts[last] != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", where, h.counts[last], h.count)
		}
	}
	return nil
}

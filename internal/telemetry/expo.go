// Prometheus text-exposition encoder (format version 0.0.4), stdlib only.
//
// The registry's dotted, slash-bearing names (`runner.makespan/U=0.6.progress`)
// are not legal Prometheus metric names, so every series is exported under
// its sanitised family name with the exact registry name preserved in a
// `name` label: the exposition stays loss-free (Parse can recover the
// original name) and two registry names that collide after sanitisation
// remain distinct series inside one family. Counters follow the
// `_total` convention; histograms emit cumulative `_bucket` series, `_sum`
// and `_count`. Families are sorted by name and series by label value, so
// the output is deterministic for identical snapshots — the same guarantee
// the JSON form gives.

package telemetry

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"l15cache/internal/metrics"
)

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// family is one exposition family under construction.
type family struct {
	name string // sanitised family name (including any _total suffix)
	typ  string // counter | gauge | histogram
	// originals are the registry names grouped under this family, sorted;
	// each becomes one series carrying its original name as a label.
	originals []string
}

// Exposition renders a snapshot in the Prometheus text format. The output
// is deterministic: families sorted by name, series sorted by original
// registry name, fixed float formatting.
func Exposition(snap metrics.Snapshot) []byte {
	byName := map[string]*family{}
	var order []string

	claim := func(base, typ string) *family {
		// A family name may only carry one type. On a cross-type collision
		// (a gauge `a.b` and a histogram `a_b`), later types get a
		// deterministic `_<type>` suffix.
		name := base
		for {
			f, ok := byName[name]
			if !ok {
				f = &family{name: name, typ: typ}
				byName[name] = f
				order = append(order, name)
				return f
			}
			if f.typ == typ {
				return f
			}
			name += "_" + typ
		}
	}

	for _, name := range sortedKeys(snap.Counters) {
		f := claim(sanitizeName(name)+"_total", "counter")
		f.originals = append(f.originals, name)
	}
	for _, name := range sortedKeys(snap.Gauges) {
		f := claim(sanitizeName(name), "gauge")
		f.originals = append(f.originals, name)
	}
	for _, name := range sortedKeys(snap.Histograms) {
		f := claim(sanitizeName(name), "histogram")
		f.originals = append(f.originals, name)
	}

	sort.Strings(order)
	var b []byte
	for _, fname := range order {
		f := byName[fname]
		b = append(b, "# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		for _, orig := range f.originals {
			switch f.typ {
			case "counter":
				b = appendSeries(b, f.name, orig, "", float64(snap.Counters[orig]), true)
			case "gauge":
				b = appendSeries(b, f.name, orig, "", snap.Gauges[orig], false)
			case "histogram":
				b = appendHistogram(b, f.name, orig, snap.Histograms[orig])
			}
		}
	}
	return b
}

// appendSeries emits one sample line: `family{name="orig"[,extra]} value`.
// extra is a pre-rendered extra label ("" for none); integer counters are
// formatted without float rounding.
func appendSeries(b []byte, fam, orig, extra string, v float64, integer bool) []byte {
	b = append(b, fam...)
	b = append(b, `{name="`...)
	b = appendEscaped(b, orig)
	b = append(b, '"')
	if extra != "" {
		b = append(b, ',')
		b = append(b, extra...)
	}
	b = append(b, "} "...)
	if integer {
		b = strconv.AppendUint(b, uint64(v), 10)
	} else {
		b = appendFloat(b, v)
	}
	return append(b, '\n')
}

// appendHistogram emits the cumulative bucket series, sum and count of one
// histogram under fam.
func appendHistogram(b []byte, fam, orig string, h metrics.HistogramSnapshot) []byte {
	var cum uint64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		le := `le="` + string(appendFloat(nil, bound)) + `"`
		b = appendSeries(b, fam+"_bucket", orig, le, float64(cum), true)
	}
	b = appendSeries(b, fam+"_bucket", orig, `le="+Inf"`, float64(h.Count), true)
	b = appendSeries(b, fam+"_sum", orig, "", h.Sum, false)
	b = appendSeries(b, fam+"_count", orig, "", float64(h.Count), true)
	return b
}

// appendFloat renders v with the exposition format's special values and
// Go's shortest round-trip formatting otherwise.
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, "NaN"...)
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendEscaped escapes a label value: backslash, double quote and
// newline, per the exposition format.
func appendEscaped(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, `\\`...)
		case '"':
			b = append(b, `\"`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, c)
		}
	}
	return b
}

// sanitizeName maps a registry name onto the metric-name alphabet
// [a-zA-Z0-9_:], replacing every other byte with '_' and prefixing '_'
// when the first byte would be a digit.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	sb.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// sortedKeys returns the sorted keys of m — the deterministic iteration
// idiom the detmap analyzer expects.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"l15cache/internal/metrics"
)

// testSnapshot builds a registry exercising the encoder's corner cases:
// dotted/slashed names, label-escaping bytes, a leading digit, and a
// histogram.
func testSnapshot() metrics.Snapshot {
	r := metrics.NewRegistry()
	r.Counter("soc.l1.hits").Add(42)
	r.Counter(`weird"name` + "\nwith\\bytes").Add(7)
	r.Gauge("runner.makespan/U=0.6.progress").Set(0.5)
	r.Gauge("1leading.digit").Set(-3)
	r.Gauge("inf.gauge").Set(math.Inf(1))
	h := r.Histogram("sdu.latency_cycles", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	return r.Snapshot()
}

// TestExpositionRoundTrip proves Exposition output satisfies the strict
// parser and preserves every value and original name.
func TestExpositionRoundTrip(t *testing.T) {
	snap := testSnapshot()
	data := Exposition(snap)
	families, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse rejected Exposition output: %v\n%s", err, data)
	}

	byOrig := map[string]float64{}
	types := map[string]string{}
	for _, f := range families {
		for _, s := range f.Samples {
			if f.Type != "histogram" {
				byOrig[s.Labels["name"]] = s.Value
				types[s.Labels["name"]] = f.Type
			}
		}
	}
	if got := byOrig["soc.l1.hits"]; got != 42 {
		t.Errorf("counter soc.l1.hits = %v, want 42", got)
	}
	if types["soc.l1.hits"] != "counter" {
		t.Errorf("soc.l1.hits type = %q", types["soc.l1.hits"])
	}
	if got := byOrig[`weird"name`+"\nwith\\bytes"]; got != 7 {
		t.Errorf("escaped-name counter = %v, want 7 (escaping not loss-free)", got)
	}
	if got := byOrig["runner.makespan/U=0.6.progress"]; got != 0.5 {
		t.Errorf("gauge progress = %v, want 0.5", got)
	}
	if got := byOrig["1leading.digit"]; got != -3 {
		t.Errorf("leading-digit gauge = %v, want -3", got)
	}
	if got := byOrig["inf.gauge"]; !math.IsInf(got, 1) {
		t.Errorf("inf gauge = %v, want +Inf", got)
	}
}

// TestExpositionCounterConvention pins the _total suffix and integer
// formatting of counters.
func TestExpositionCounterConvention(t *testing.T) {
	data := string(Exposition(testSnapshot()))
	if !strings.Contains(data, "# TYPE soc_l1_hits_total counter") {
		t.Errorf("no _total counter family:\n%s", data)
	}
	if !strings.Contains(data, `soc_l1_hits_total{name="soc.l1.hits"} 42`) {
		t.Errorf("counter sample malformed:\n%s", data)
	}
}

// TestExpositionHistogramCumulative pins the cumulative-bucket rendering:
// non-cumulative registry counts {1,2,1,1} become 1,3,4 and +Inf = 5.
func TestExpositionHistogramCumulative(t *testing.T) {
	data := string(Exposition(testSnapshot()))
	for _, want := range []string{
		`sdu_latency_cycles_bucket{name="sdu.latency_cycles",le="1"} 1`,
		`sdu_latency_cycles_bucket{name="sdu.latency_cycles",le="10"} 3`,
		`sdu_latency_cycles_bucket{name="sdu.latency_cycles",le="100"} 4`,
		`sdu_latency_cycles_bucket{name="sdu.latency_cycles",le="+Inf"} 5`,
		`sdu_latency_cycles_count{name="sdu.latency_cycles"} 5`,
		`sdu_latency_cycles_sum{name="sdu.latency_cycles"} 560.5`,
	} {
		if !strings.Contains(data, want) {
			t.Errorf("missing %q in:\n%s", want, data)
		}
	}
}

// TestExpositionDeterministic renders the same snapshot twice and demands
// byte equality — the property the archived-artifact contract needs.
func TestExpositionDeterministic(t *testing.T) {
	snap := testSnapshot()
	if a, b := Exposition(snap), Exposition(snap); !bytes.Equal(a, b) {
		t.Error("two Exposition calls over one snapshot differ")
	}
}

// TestExpositionSanitizationCollision pins the collision behaviour: two
// registry names mapping onto one family name become two series in that
// family, distinguished by the name label.
func TestExpositionSanitizationCollision(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("a.b").Add(1)
	r.Counter("a/b").Add(2)
	data := Exposition(r.Snapshot())
	families, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, data)
	}
	counters := 0
	for _, f := range families {
		if f.Name == "a_b_total" {
			counters = len(f.Samples)
		}
	}
	if counters != 2 {
		t.Fatalf("a_b_total has %d series, want 2 (name-label disambiguation)\n%s", counters, data)
	}
}

// TestExpositionCrossTypeCollision: a gauge and a histogram that sanitise
// to the same family name must land in distinct families (deterministic
// suffix), and the output must still parse.
func TestExpositionCrossTypeCollision(t *testing.T) {
	r := metrics.NewRegistry()
	r.Gauge("x.y").Set(1)
	r.Histogram("x/y", []float64{1}).Observe(0.5)
	data := Exposition(r.Snapshot())
	if _, err := Parse(data); err != nil {
		t.Fatalf("cross-type collision output invalid: %v\n%s", err, data)
	}
	if !strings.Contains(string(data), "# TYPE x_y gauge") ||
		!strings.Contains(string(data), "# TYPE x_y_histogram histogram") {
		t.Errorf("expected x_y gauge and x_y_histogram families:\n%s", data)
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"soc.l1.hits":   "soc_l1_hits",
		"a/b=c d":       "a_b_c_d",
		"9lives":        "_9lives",
		"":              "_",
		"ok_name:colon": "ok_name:colon",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAppendFloatSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.NaN():   "NaN",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
		-1e21:        "-1e+21",
	} {
		if got := string(appendFloat(nil, v)); got != want {
			t.Errorf("appendFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"l15cache/internal/metrics"
)

// samplerOver builds a manual-tick sampler over a private registry so
// tests control exactly when samples are captured.
func samplerOver(r *metrics.Registry, capacity int) *Sampler {
	return NewSampler(r.Snapshot, time.Hour, capacity)
}

func TestSamplerDeltas(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("work.items")
	idle := r.Counter("work.idle")
	g := r.Gauge("work.progress")
	h := r.Histogram("work.latency", []float64{1, 10})

	s := samplerOver(r, 16)
	c.Add(5)
	idle.Add(1)
	g.Set(0.25)
	h.Observe(0.5)
	h.Observe(5)
	first := s.SampleNow()

	// The first sample treats the whole cumulative value as the delta.
	if first.Seq != 0 || first.Counters["work.items"] != 5 || first.Deltas["work.items"] != 5 {
		t.Errorf("first sample: %+v", first)
	}
	if first.Gauges["work.progress"] != 0.25 {
		t.Errorf("gauge = %v", first.Gauges["work.progress"])
	}
	if first.Counters["work.latency.count"] != 2 {
		t.Errorf("folded histogram count = %v", first.Counters["work.latency.count"])
	}
	if first.Gauges["work.latency.sum"] != 5.5 {
		t.Errorf("folded histogram sum = %v", first.Gauges["work.latency.sum"])
	}
	if _, ok := first.Gauges["work.latency.p50"]; !ok {
		t.Error("folded p50 missing")
	}

	c.Add(3)
	second := s.SampleNow()
	if second.Seq != 1 || second.Counters["work.items"] != 8 || second.Deltas["work.items"] != 3 {
		t.Errorf("second sample: %+v", second)
	}
	// An unmoved counter is omitted from Deltas but stays in Counters.
	if _, ok := second.Deltas["work.idle"]; ok {
		t.Error("zero delta not omitted")
	}
	if second.Counters["work.idle"] != 1 {
		t.Error("cumulative value lost for idle counter")
	}
}

func TestSamplerRingWrap(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("n")
	s := samplerOver(r, 4)
	for i := 0; i < 10; i++ {
		c.Add(1)
		s.SampleNow()
	}
	got := s.Samples()
	if len(got) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(got))
	}
	for i, sample := range got {
		if want := uint64(6 + i); sample.Seq != want {
			t.Errorf("sample %d: Seq %d, want %d (oldest-first after wrap)", i, sample.Seq, want)
		}
	}
	// Deltas must survive eviction of the samples they were computed from.
	if got[3].Counters["n"] != 10 || got[3].Deltas["n"] != 1 {
		t.Errorf("last sample: %+v", got[3])
	}

	since := s.SamplesSince(8)
	if len(since) != 2 || since[0].Seq != 8 {
		t.Errorf("SamplesSince(8) = %+v", since)
	}
	if n := len(s.SamplesSince(999)); n != 0 {
		t.Errorf("SamplesSince(999) returned %d samples", n)
	}
}

func TestSamplerWriteJSONL(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("n")
	s := samplerOver(r, 8)
	for i := 0; i < 3; i++ {
		c.Add(2)
		s.SampleNow()
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var seqs []uint64
	for sc.Scan() {
		var sample Sample
		if err := json.Unmarshal(sc.Bytes(), &sample); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		seqs = append(seqs, sample.Seq)
	}
	if len(seqs) != 3 || seqs[0] != 0 || seqs[2] != 2 {
		t.Errorf("JSONL seqs = %v", seqs)
	}
}

func TestSamplerStartStopIdempotent(t *testing.T) {
	r := metrics.NewRegistry()
	s := NewSampler(r.Snapshot, time.Millisecond, 8)
	s.Start()
	s.Start() // second Start while running must be a no-op
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Samples()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(s.Samples()) == 0 {
		t.Fatal("ticker loop captured nothing")
	}
	s.Stop()
	s.Stop() // double Stop must not panic or hang
	n := len(s.Samples())
	time.Sleep(5 * time.Millisecond)
	if got := len(s.Samples()); got != n {
		t.Errorf("sampler kept running after Stop: %d -> %d samples", n, got)
	}
	s.Start() // restart after Stop must work
	s.Stop()
}

func TestStartFlag(t *testing.T) {
	// Empty path: nil sampler, no-op flush.
	s, flush := StartFlag("")
	if s != nil {
		t.Error("StartFlag(\"\") returned a sampler")
	}
	if err := flush(); err != nil {
		t.Errorf("no-op flush: %v", err)
	}

	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	s, flush = StartFlag(path)
	if s == nil {
		t.Fatal("StartFlag returned nil sampler for a real path")
	}
	defer s.Stop()
	// Flush twice: idempotent, and each writes at least one sample even
	// though no ticker interval has elapsed.
	for i := 0; i < 2; i++ {
		if err := flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	lines := 0
	for sc.Scan() {
		var sample Sample
		if err := json.Unmarshal(sc.Bytes(), &sample); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		// The merged default snapshot includes the runtime collector.
		if lines == 0 {
			if _, ok := sample.Gauges["go.goroutines"]; !ok {
				t.Error("flushed sample missing go.goroutines")
			}
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("flush wrote an empty file")
	}
}

func TestSamplerWriteFileError(t *testing.T) {
	r := metrics.NewRegistry()
	s := samplerOver(r, 4)
	if err := s.WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir.jsonl")); err == nil {
		t.Error("WriteFile to a missing directory succeeded")
	}
}

// The live dashboard: a single self-contained HTML page (no external
// assets, no third-party script) that subscribes to the flight server's
// /metrics/stream SSE feed of sampler points and renders sparklines for
// the busiest series on <canvas>. The page is static — all state lives in
// the browser — so serving it cannot perturb the simulation.

package telemetry

import "net/http"

// HandleDashboard serves the live dashboard page. The flight server
// mounts it at /dashboard.
func HandleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if _, err := w.Write([]byte(dashboardHTML)); err != nil {
		logf("telemetry: dashboard response write: %v", err)
	}
}

// dashboardHTML is the complete dashboard document. It expects the SSE
// endpoint at ./metrics/stream (each event one sampler Sample as JSON)
// and the snapshot endpoint at ./metrics?format=json for the header.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>l15cache telemetry</title>
<style>
  :root { color-scheme: dark; }
  body { background:#14161a; color:#d6dae2; font:13px/1.45 ui-monospace,SFMono-Regular,Menlo,monospace; margin:0; padding:1.2em 1.6em; }
  h1 { font-size:15px; margin:0 0 2px; color:#fff; }
  #build { color:#7d8590; margin-bottom:1em; }
  #status { float:right; color:#7d8590; }
  #status.live { color:#3fb950; }
  #grid { display:grid; grid-template-columns:repeat(auto-fill,minmax(310px,1fr)); gap:10px; }
  .card { background:#1b1e24; border:1px solid #2b3036; border-radius:6px; padding:8px 10px 6px; }
  .card .name { color:#9aa3af; overflow:hidden; text-overflow:ellipsis; white-space:nowrap; }
  .card .val { color:#e6edf3; font-size:16px; }
  .card .unit { color:#58606a; font-size:11px; margin-left:4px; }
  canvas { display:block; width:100%; height:42px; margin-top:4px; }
  a { color:#539bf5; }
  #links { margin-top:1.2em; color:#7d8590; }
</style>
</head>
<body>
<div id="status">connecting&hellip;</div>
<h1>l15cache telemetry</h1>
<div id="build">&nbsp;</div>
<div id="grid"></div>
<div id="links">
  <a href="metrics">/metrics</a> &middot;
  <a href="metrics?format=json">/metrics?format=json</a> &middot;
  <a href="metrics/history">/metrics/history</a> &middot;
  <a href="events">/events</a> &middot;
  <a href="healthz">/healthz</a>
</div>
<script>
"use strict";
var HISTORY = 120, MAXCARDS = 24;
var series = {};   // name -> {points:[], rate:bool, card, canvas, valEl}
var grid = document.getElementById("grid");

fetch("metrics?format=json").then(function (r) { return r.json(); }).then(function (s) {
  if (s.build) {
    var b = s.build;
    document.getElementById("build").textContent =
      (b.module || "l15cache") + " " + (b.revision || b.version || "dev") +
      (b.modified === "true" ? "+dirty" : "") + " · " + (b.go || "");
  }
}).catch(function () {});

function card(name, rate) {
  var s = series[name];
  if (s) { return s; }
  var el = document.createElement("div");
  el.className = "card";
  el.innerHTML = '<div class="name"></div><div><span class="val">&ndash;</span>' +
    '<span class="unit">' + (rate ? "/s" : "") + '</span></div><canvas></canvas>';
  el.querySelector(".name").textContent = name;
  s = series[name] = { points: [], rate: rate, card: el,
    canvas: el.querySelector("canvas"), valEl: el.querySelector(".val") };
  if (grid.childElementCount < MAXCARDS) { grid.appendChild(el); }
  return s;
}

function fmt(v) {
  if (!isFinite(v)) { return String(v); }
  var a = Math.abs(v);
  if (a >= 1e9) { return (v / 1e9).toFixed(2) + "G"; }
  if (a >= 1e6) { return (v / 1e6).toFixed(2) + "M"; }
  if (a >= 1e3) { return (v / 1e3).toFixed(1) + "k"; }
  if (a > 0 && a < 0.01) { return v.toExponential(1); }
  return a >= 100 || v === Math.round(v) ? String(Math.round(v)) : v.toFixed(2);
}

function push(name, v, rate) {
  var s = card(name, rate);
  s.points.push(v);
  if (s.points.length > HISTORY) { s.points.shift(); }
  s.valEl.textContent = fmt(v);
  draw(s);
}

function draw(s) {
  var c = s.canvas, ctx = c.getContext("2d");
  var w = c.width = c.clientWidth, h = c.height = c.clientHeight;
  ctx.clearRect(0, 0, w, h);
  var p = s.points;
  if (p.length < 2) { return; }
  var min = Math.min.apply(null, p), max = Math.max.apply(null, p);
  if (max === min) { max = min + 1; }
  ctx.beginPath();
  for (var i = 0; i < p.length; i++) {
    var x = (i / (HISTORY - 1)) * w;
    var y = h - 1 - ((p[i] - min) / (max - min)) * (h - 2);
    if (i === 0) { ctx.moveTo(x, y); } else { ctx.lineTo(x, y); }
  }
  ctx.strokeStyle = s.rate ? "#539bf5" : "#3fb950";
  ctx.lineWidth = 1.25;
  ctx.stroke();
}

var status = document.getElementById("status");
var lastMs = 0;
var es = new EventSource("metrics/stream");
es.onopen = function () { status.textContent = "live"; status.className = "live"; };
es.onerror = function () { status.textContent = "reconnecting…"; status.className = ""; };
es.onmessage = function (ev) {
  var s;
  try { s = JSON.parse(ev.data); } catch (e) { return; }
  var dt = lastMs ? (s.unix_ms - lastMs) / 1000 : 0;
  lastMs = s.unix_ms;
  var names = Object.keys(s.deltas || {}).sort();
  for (var i = 0; i < names.length; i++) {
    push(names[i], dt > 0 ? s.deltas[names[i]] / dt : s.deltas[names[i]], true);
  }
  names = Object.keys(s.gauges || {}).sort();
  for (var j = 0; j < names.length; j++) {
    push(names[j], s.gauges[names[j]], false);
  }
};
</script>
</body>
</html>
`

package kernel

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	cases := map[string]Mode{"": Events, "events": Events, "ticked": Ticked}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse(\"bogus\") accepted")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error does not name the bad mode: %v", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, m := range []Mode{Events, Ticked} {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%v.String()) = %v, %v", m, got, err)
		}
	}
	if s := Mode(7).String(); s != "kernel.Mode(7)" {
		t.Errorf("Mode(7).String() = %q", s)
	}
}

func TestZeroValueIsEvents(t *testing.T) {
	// Experiment configs rely on the zero value selecting the default
	// (time-skipping) kernel.
	var m Mode
	if m != Events {
		t.Errorf("zero Mode = %v, want Events", m)
	}
}

func TestEarliest(t *testing.T) {
	if got := Earliest(); got != Never {
		t.Errorf("Earliest() = %d, want Never", got)
	}
	if got := Earliest(Never, Never); got != Never {
		t.Errorf("Earliest(Never, Never) = %d, want Never", got)
	}
	if got := Earliest(Never, 42, 7, Never, 9); got != 7 {
		t.Errorf("Earliest = %d, want 7", got)
	}
	if got := Earliest(0, Never); got != 0 {
		t.Errorf("Earliest with zero wakeup = %d, want 0", got)
	}
}

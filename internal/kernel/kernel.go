// Package kernel defines the simulator kernel modes and the wakeup
// protocol shared by the cycle-accurate SoC and the continuous-time
// drivers (DESIGN.md §11).
//
// A simulated unit that consumes clock cycles implements the wakeup
// protocol: it reports the next cycle at which ticking it would change
// state (a miss completing, the Walloc FSM moving a way, a task release).
// When every unit reports Never, the kernel may jump the clock directly
// to the earliest external wakeup instead of idling through no-op ticks —
// the "events" kernel. The legacy "ticked" kernel advances one cycle at a
// time regardless; both must produce byte-identical flight recordings,
// metrics snapshots and experiment outputs, which the kernel-equivalence
// CI job enforces with a byte compare.
package kernel

import "fmt"

// Mode selects the simulator kernel. The zero value is Events, the
// time-skipping kernel; Ticked is the legacy cycle-by-cycle kernel kept
// for one release so the equivalence harness can diff the two.
type Mode uint8

const (
	// Events is the event-driven time-skipping kernel: when no unit is
	// runnable the clock jumps to the minimum reported wakeup.
	Events Mode = iota

	// Ticked is the legacy kernel: every unit is ticked every cycle,
	// even through known-latency stalls.
	Ticked
)

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case Events:
		return "events"
	case Ticked:
		return "ticked"
	}
	return fmt.Sprintf("kernel.Mode(%d)", uint8(m))
}

// Parse converts a -kernel flag value into a Mode. The empty string
// selects the default (events) kernel.
func Parse(s string) (Mode, error) {
	switch s {
	case "", "events":
		return Events, nil
	case "ticked":
		return Ticked, nil
	}
	return Events, fmt.Errorf("kernel: unknown mode %q (want ticked or events)", s)
}

// Never is the wakeup a unit reports when no future tick can change its
// state without an intervening external call. A unit reporting Never may
// be skipped to any future cycle.
const Never = ^uint64(0)

// Waker is one clock-consuming unit of the wakeup protocol.
type Waker interface {
	// NextWakeup returns the earliest cycle at which ticking the unit
	// would change state, or Never when the unit is idle.
	NextWakeup() uint64
}

// Earliest returns the minimum of the given wakeups (Never when the list
// is empty or all-idle) — the cycle the events kernel jumps to.
func Earliest(wakeups ...uint64) uint64 {
	min := uint64(Never)
	for _, w := range wakeups {
		if w < min {
			min = w
		}
	}
	return min
}

// Package cli holds the flag plumbing shared by every cmd/ tool: the
// -version build-attribution flag and the -telemetry time-series sampler
// flag. Both are two-phase — register before flag.Parse, act right after
// — so each tool adds one line per phase instead of re-implementing the
// behaviour.
package cli

import (
	"flag"
	"fmt"
	"os"

	"l15cache/internal/buildinfo"
	"l15cache/internal/telemetry"
)

// VersionFlag registers -version on the default flag set. Call the
// returned handler immediately after flag.Parse: when the flag was given
// it prints the build attribution line (module, revision, toolchain) and
// exits 0.
func VersionFlag() func() {
	v := flag.Bool("version", false, "print build/version information and exit")
	return func() {
		if *v {
			fmt.Println(buildinfo.String())
			os.Exit(0)
		}
	}
}

// TelemetryFlag registers -telemetry on the default flag set. Call the
// returned activator after flag.Parse: when a path was given it starts
// the wall-clock sampler over the merged metrics registries and returns
// the flush writing the sampled ring there as JSONL; with no path both
// steps are no-ops. Tools flush wherever they write their -metrics
// artifacts (normal exit and the interrupt path) — the flush is safe to
// call more than once. Sampling observes the run and never feeds a value
// back, so the flag can never change a result.
func TelemetryFlag() func() func() error {
	path := flag.String("telemetry", "",
		"sample merged metrics on a wall-clock ticker and write the series as JSONL to this file (never changes results)")
	return func() func() error {
		_, flush := telemetry.StartFlag(*path)
		return flush
	}
}

// Package workload generates the evaluation workloads of the paper:
// the synthetic layered DAG tasks of §5.1 (Fig. 7, Tab. 2) and the
// PARSEC-like periodic DAG task sets of the case study (§5.2, Fig. 8).
// All generation is deterministic given a *rand.Rand.
package workload

import (
	"fmt"
	"math/rand"

	"l15cache/internal/dag"
)

// SynthParams are the synthetic DAG generation parameters of §5.1.
type SynthParams struct {
	// MinLayers and MaxLayers bound the random layer count ([5,10] in the
	// paper).
	MinLayers, MaxLayers int

	// MaxWidth is p: each layer holds [2, p] nodes (p = 15 by default).
	MaxWidth int

	// EdgeProb is the probability that a node connects to each node of
	// the previous layer (20%).
	EdgeProb float64

	// MinPeriod and MaxPeriod bound the random period T_i ([1,1440]
	// units). D_i = T_i.
	MinPeriod, MaxPeriod float64

	// Utilization is U_i; the workload is W_i = U_i × T_i.
	Utilization float64

	// CPR is the critical path ratio: the longest computation-only path
	// is steered to CPR × W_i.
	CPR float64

	// CommRatio is Σμ / W_i (0.5 in the paper). Edge costs are drawn
	// from [1, 2Σμ/|E|] and rescaled to sum to Σμ.
	CommRatio float64

	// AlphaMax bounds the per-edge ETM speed-up ratio α ∈ (0, AlphaMax]
	// (0.7 in the paper).
	AlphaMax float64

	// MinData and MaxData bound each node's dependent-data volume δ_j in
	// bytes. §5.1 does not state a distribution for the synthetic DAGs;
	// the default [1,4] KB keeps per-node way demand (⌈δ/κ⌉ ∈ {1,2}) in
	// proportion to ζ = 16 so that Alg. 1 can cover most of a wave, which
	// reproduces the paper's gain bands. The case study uses its stated
	// [2,16] KB range.
	MinData, MaxData int64
}

// DefaultSynthParams returns the paper's default configuration: p = 15,
// cpr = 0.1, U = 0.8 (the values at which Fig. 7's three sweeps agree).
func DefaultSynthParams() SynthParams {
	return SynthParams{
		MinLayers:   5,
		MaxLayers:   10,
		MaxWidth:    15,
		EdgeProb:    0.2,
		MinPeriod:   1,
		MaxPeriod:   1440,
		Utilization: 0.8,
		CPR:         0.1,
		CommRatio:   0.5,
		AlphaMax:    0.7,
		MinData:     1 * 1024,
		MaxData:     4 * 1024,
	}
}

// Validate checks the parameters for consistency.
func (p SynthParams) Validate() error {
	switch {
	case p.MinLayers < 1 || p.MaxLayers < p.MinLayers:
		return fmt.Errorf("workload: bad layer range [%d,%d]", p.MinLayers, p.MaxLayers)
	case p.MaxWidth < 2:
		return fmt.Errorf("workload: p = %d must be >= 2", p.MaxWidth)
	case p.EdgeProb < 0 || p.EdgeProb > 1:
		return fmt.Errorf("workload: edge probability %g outside [0,1]", p.EdgeProb)
	case p.MinPeriod <= 0 || p.MaxPeriod < p.MinPeriod:
		return fmt.Errorf("workload: bad period range [%g,%g]", p.MinPeriod, p.MaxPeriod)
	case p.Utilization <= 0:
		return fmt.Errorf("workload: utilization %g must be positive", p.Utilization)
	case p.CPR <= 0 || p.CPR > 1:
		return fmt.Errorf("workload: cpr %g outside (0,1]", p.CPR)
	case p.CommRatio < 0:
		return fmt.Errorf("workload: negative communication ratio %g", p.CommRatio)
	case p.AlphaMax <= 0 || p.AlphaMax >= 1:
		return fmt.Errorf("workload: alpha max %g outside (0,1)", p.AlphaMax)
	case p.MinData < 0 || p.MaxData < p.MinData:
		return fmt.Errorf("workload: bad data range [%d,%d]", p.MinData, p.MaxData)
	}
	return nil
}

// Synthetic generates one random DAG task per §5.1: a layered graph with a
// single source and sink, computation workload W_i = U_i×T_i spread over the
// nodes with the longest computation path steered to CPR×W_i, communication
// costs summing to CommRatio×W_i, per-edge α in (0, AlphaMax], and per-node
// data volumes in [MinData, MaxData].
func Synthetic(r *rand.Rand, p SynthParams) (*dag.Task, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	period := p.MinPeriod + r.Float64()*(p.MaxPeriod-p.MinPeriod)
	t := dag.New("synthetic", period, period)

	randData := func() int64 {
		if p.MaxData == p.MinData {
			return p.MinData
		}
		return p.MinData + r.Int63n(p.MaxData-p.MinData+1)
	}

	// Build the layered structure with unit WCETs first; workloads and
	// costs are assigned afterwards.
	src := t.AddNode("src", 1, randData())
	layers := make([][]dag.NodeID, p.MinLayers+r.Intn(p.MaxLayers-p.MinLayers+1))
	for l := range layers {
		width := 2 + r.Intn(p.MaxWidth-1)
		layers[l] = make([]dag.NodeID, width)
		for i := range layers[l] {
			layers[l][i] = t.AddNode(fmt.Sprintf("l%dn%d", l, i), 1, randData())
		}
	}
	// Connectivity: 20% chance per previous-layer node; guarantee one
	// predecessor so the graph stays single-source.
	for _, v := range layers[0] {
		t.MustAddEdge(src, v, 1, alpha(r, p.AlphaMax))
	}
	for l := 1; l < len(layers); l++ {
		for _, v := range layers[l] {
			connected := false
			for _, u := range layers[l-1] {
				if r.Float64() < p.EdgeProb {
					t.MustAddEdge(u, v, 1, alpha(r, p.AlphaMax))
					connected = true
				}
			}
			if !connected {
				u := layers[l-1][r.Intn(len(layers[l-1]))]
				t.MustAddEdge(u, v, 1, alpha(r, p.AlphaMax))
			}
		}
	}
	// Close the graph into a single sink; any node left without a
	// successor feeds it.
	sink := t.AddNode("sink", 1, 0)
	for _, n := range t.Nodes {
		if n.ID != sink && len(t.Succ(n.ID)) == 0 {
			t.MustAddEdge(n.ID, sink, 1, alpha(r, p.AlphaMax))
		}
	}

	assignWCETs(r, t, p)
	assignCommCosts(r, t, p)

	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid task: %w", err)
	}
	return t, nil
}

func alpha(r *rand.Rand, max float64) float64 {
	// α ∈ (0, max]: draw (0,1] then scale.
	return (1 - r.Float64()) * max
}

// assignWCETs distributes W = U×T over the nodes uniformly, then iteratively
// steers the longest computation-only path toward CPR × W: nodes on the
// current longest path are deflated (or inflated) and the total is
// re-normalised to W each round.
func assignWCETs(r *rand.Rand, t *dag.Task, p SynthParams) {
	w := p.Utilization * t.Period
	// Uniform initial split.
	for _, n := range t.Nodes {
		n.WCET = 0.5 + r.Float64()
	}
	rescaleTotal(t, w)

	target := p.CPR * w
	for iter := 0; iter < 200; iter++ {
		cp := t.CriticalPathLength(dag.ZeroCost)
		if diff := cp - target; diff < 0.01*w && diff > -0.01*w {
			break
		}
		path := t.CriticalPath(dag.ZeroCost)
		factor := target / cp
		// Damp the adjustment to avoid oscillation between competing
		// near-critical paths.
		factor = 0.5 + 0.5*factor
		onPath := make(map[dag.NodeID]bool, len(path))
		for _, id := range path {
			onPath[id] = true
			t.Node(id).WCET *= factor
		}
		// If the path must grow, deflate the rest so renormalisation
		// does not cancel the adjustment.
		if factor > 1 {
			for _, n := range t.Nodes {
				if !onPath[n.ID] {
					n.WCET /= factor
				}
			}
		}
		rescaleTotal(t, w)
	}
}

func rescaleTotal(t *dag.Task, w float64) {
	cur := t.Volume()
	if cur <= 0 {
		return
	}
	f := w / cur
	for _, n := range t.Nodes {
		n.WCET *= f
	}
}

// assignCommCosts draws per-edge costs uniformly from [1, 2Σμ/|E|] and
// rescales them to sum to exactly Σμ = CommRatio × W. If Σμ/|E| < 1 (tiny
// workloads) the lower bound is relaxed to keep the distribution feasible.
func assignCommCosts(r *rand.Rand, t *dag.Task, p SynthParams) {
	total := p.CommRatio * t.Volume()
	if len(t.Edges) == 0 || total <= 0 {
		return
	}
	mean := total / float64(len(t.Edges))
	lo, hi := 1.0, 2*mean
	if hi <= lo {
		lo, hi = 0, 2*mean
	}
	var sum float64
	for i := range t.Edges {
		c := lo + r.Float64()*(hi-lo)
		t.Edges[i].Cost = c
		sum += c
	}
	if sum > 0 {
		f := total / sum
		for i := range t.Edges {
			t.Edges[i].Cost *= f
		}
	}
}

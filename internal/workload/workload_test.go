package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"l15cache/internal/dag"
)

func TestSyntheticBasics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := DefaultSynthParams()
	for i := 0; i < 20; i++ {
		task, err := Synthetic(r, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if task.Period < p.MinPeriod || task.Period > p.MaxPeriod {
			t.Errorf("period %g outside [%g,%g]", task.Period, p.MinPeriod, p.MaxPeriod)
		}
		if task.Deadline != task.Period {
			t.Error("implicit deadline expected")
		}
		// W = U × T within rounding.
		w := task.Volume()
		if want := p.Utilization * task.Period; math.Abs(w-want) > 1e-6*want {
			t.Errorf("W = %g, want %g", w, want)
		}
	}
}

func TestSyntheticStructure(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := DefaultSynthParams()
	task, err := Synthetic(r, p)
	if err != nil {
		t.Fatal(err)
	}
	// Between layers bounds: src + sink + layers×[2..p] nodes.
	n := len(task.Nodes)
	if n < 2+p.MinLayers*2 || n > 2+p.MaxLayers*p.MaxWidth {
		t.Errorf("node count %d implausible", n)
	}
	// Each non-source node has a predecessor; each non-sink a successor.
	for _, node := range task.Nodes {
		if node.ID != task.Source() && len(task.Pred(node.ID)) == 0 {
			t.Errorf("node %d has no predecessor", node.ID)
		}
		if node.ID != task.Sink() && len(task.Succ(node.ID)) == 0 {
			t.Errorf("node %d has no successor", node.ID)
		}
	}
}

func TestSyntheticCommRatio(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := DefaultSynthParams()
	task, err := Synthetic(r, p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range task.Edges {
		sum += e.Cost
	}
	want := p.CommRatio * task.Volume()
	if math.Abs(sum-want) > 1e-6*want {
		t.Errorf("Σμ = %g, want %g", sum, want)
	}
}

func TestSyntheticCPRSteering(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, cpr := range []float64{0.1, 0.3, 0.5} {
		p := DefaultSynthParams()
		p.CPR = cpr
		var relErr float64
		const trials = 10
		for i := 0; i < trials; i++ {
			task, err := Synthetic(r, p)
			if err != nil {
				t.Fatal(err)
			}
			got := task.CriticalPathLength(dag.ZeroCost) / task.Volume()
			relErr += math.Abs(got-cpr) / cpr
		}
		relErr /= trials
		if relErr > 0.25 {
			t.Errorf("cpr=%g: mean relative error %.2f too large", cpr, relErr)
		}
	}
}

func TestSyntheticAlphaAndData(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := DefaultSynthParams()
	task, err := Synthetic(r, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range task.Edges {
		if e.Alpha <= 0 || e.Alpha > p.AlphaMax {
			t.Errorf("α = %g outside (0,%g]", e.Alpha, p.AlphaMax)
		}
	}
	for _, n := range task.Nodes {
		if n.ID == task.Sink() {
			continue
		}
		if n.Data < p.MinData || n.Data > p.MaxData {
			t.Errorf("δ = %d outside [%d,%d]", n.Data, p.MinData, p.MaxData)
		}
	}
}

func TestSyntheticParamValidation(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	bad := []func(*SynthParams){
		func(p *SynthParams) { p.MaxWidth = 1 },
		func(p *SynthParams) { p.MinLayers = 0 },
		func(p *SynthParams) { p.MaxLayers = 2 },
		func(p *SynthParams) { p.EdgeProb = 1.5 },
		func(p *SynthParams) { p.Utilization = 0 },
		func(p *SynthParams) { p.CPR = 0 },
		func(p *SynthParams) { p.AlphaMax = 1 },
		func(p *SynthParams) { p.MinPeriod = 0 },
		func(p *SynthParams) { p.MaxData = 1 },
	}
	for i, mutate := range bad {
		p := DefaultSynthParams()
		mutate(&p)
		if _, err := Synthetic(r, p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestParsecTasksValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, k := range Kernels() {
		task, err := ParsecTask(r, k, DefaultCaseStudyParams())
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if err := task.Validate(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
		if len(task.Nodes) < 4 {
			t.Errorf("%s: only %d nodes", k, len(task.Nodes))
		}
	}
}

func TestParsecUnknownKernel(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	if _, err := ParsecTask(r, Kernel("spec2006"), DefaultCaseStudyParams()); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestUUniFast(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		us := UUniFast(r, 8, 0.75)
		var sum float64
		for _, u := range us {
			if u <= 0 {
				t.Fatalf("non-positive share %g in %v", u, us)
			}
			sum += u
		}
		if math.Abs(sum-0.75) > 1e-9 {
			t.Fatalf("sum = %g, want 0.75", sum)
		}
	}
	if UUniFast(r, 0, 1) != nil {
		t.Error("n=0 should return nil")
	}
}

func TestTaskSet(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	p := DefaultTaskSetParams()
	p.TargetUtilization = 4.0
	p.Tasks = 12
	tasks, err := TaskSet(r, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 12 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	if got := TotalLoad(tasks); math.Abs(got-4.0) > 1e-6 {
		t.Errorf("total load = %g, want 4", got)
	}
	if u := TotalUtilization(tasks); u <= 0 || u >= 4.0 {
		t.Errorf("computation-only utilisation = %g, want in (0,4)", u)
	}
	for _, task := range tasks {
		if err := task.Validate(); err != nil {
			t.Errorf("%s: %v", task.Name, err)
		}
		if task.Period < p.MinPeriod || task.Period > p.MaxPeriod {
			t.Errorf("%s: period %g out of range", task.Name, task.Period)
		}
	}
}

func TestTaskSetErrors(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := DefaultTaskSetParams()
	p.Tasks = 0
	if _, err := TaskSet(r, p); err == nil {
		t.Error("zero tasks accepted")
	}
	p = DefaultTaskSetParams()
	p.TargetUtilization = -1
	if _, err := TaskSet(r, p); err == nil {
		t.Error("negative utilisation accepted")
	}
	p = DefaultTaskSetParams()
	p.MaxPeriod = p.MinPeriod - 1
	if _, err := TaskSet(r, p); err == nil {
		t.Error("inverted period range accepted")
	}
}

// Property: synthetic generation is deterministic in the seed.
func TestQuickSyntheticDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		p := DefaultSynthParams()
		t1, err1 := Synthetic(rand.New(rand.NewSource(seed)), p)
		t2, err2 := Synthetic(rand.New(rand.NewSource(seed)), p)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(t1.Nodes) != len(t2.Nodes) || len(t1.Edges) != len(t2.Edges) {
			return false
		}
		for i := range t1.Nodes {
			if t1.Nodes[i].WCET != t2.Nodes[i].WCET || t1.Nodes[i].Data != t2.Nodes[i].Data {
				return false
			}
		}
		for i := range t1.Edges {
			if t1.Edges[i] != t2.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: UUniFast shares always sum to the target and stay positive.
func TestQuickUUniFast(t *testing.T) {
	f := func(seed int64, nr uint8, total float64) bool {
		total = math.Abs(total)
		if total == 0 || math.IsInf(total, 0) || math.IsNaN(total) {
			return true
		}
		n := int(nr%16) + 1
		us := UUniFast(rand.New(rand.NewSource(seed)), n, total)
		var sum float64
		for _, u := range us {
			if u < 0 {
				return false
			}
			sum += u
		}
		return math.Abs(sum-total) < 1e-9*total+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParsecProfiles(t *testing.T) {
	// Every kernel has a profile with sane bands.
	for _, k := range Kernels() {
		w, d, lo, hi, ok := Profile(k)
		if !ok {
			t.Fatalf("%s has no profile", k)
		}
		if w <= 0 || d <= 0 || lo <= 0 || hi <= lo {
			t.Errorf("%s profile out of range: %g %g %g %g", k, w, d, lo, hi)
		}
	}
	if _, _, _, _, ok := Profile(Kernel("nonesuch")); ok {
		t.Error("unknown kernel has a profile")
	}
}

func TestParsecProfilesShapeTasks(t *testing.T) {
	p := DefaultCaseStudyParams()
	mean := func(k Kernel, f func(*dag.Task) float64) float64 {
		var sum float64
		const trials = 30
		for i := 0; i < trials; i++ {
			task, err := ParsecTask(rand.New(rand.NewSource(int64(i))), k, p)
			if err != nil {
				t.Fatal(err)
			}
			sum += f(task)
		}
		return sum / trials
	}
	meanData := func(task *dag.Task) float64 {
		var s float64
		for _, n := range task.Nodes {
			s += float64(n.Data)
		}
		return s / float64(len(task.Nodes))
	}
	meanAlpha := func(task *dag.Task) float64 {
		var s float64
		for _, e := range task.Edges {
			s += e.Alpha
		}
		return s / float64(len(task.Edges))
	}
	// canneal moves more data than swaptions (1.5x vs 0.3x scale).
	if c, s := mean(Canneal, meanData), mean(Swaptions, meanData); c <= s {
		t.Errorf("canneal mean data %.0f should exceed swaptions %.0f", c, s)
	}
	// streamcluster's α band sits below blackscholes'.
	if sc, bs := mean(Streamcluster, meanAlpha), mean(Blackscholes, meanAlpha); sc >= bs {
		t.Errorf("streamcluster mean α %.2f should be below blackscholes %.2f", sc, bs)
	}
	// Data volumes stay inside the published range.
	task, err := ParsecTask(rand.New(rand.NewSource(1)), Canneal, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range task.Nodes {
		if n.Data < p.MinData || n.Data > p.MaxData {
			t.Errorf("δ = %d outside [%d,%d]", n.Data, p.MinData, p.MaxData)
		}
	}
}

package workload

import "l15cache/internal/memo"

// The AppendFingerprint methods encode each parameter set into a memo
// canonical encoding (DESIGN.md §12). They live here, next to the struct
// definitions, so adding a generation parameter and forgetting to encode
// it is a one-file review failure rather than a cross-package one: every
// field that steers a generator below must appear here, under its own
// name, in declaration order.

// AppendFingerprint encodes the synthetic-DAG generation parameters.
func (p SynthParams) AppendFingerprint(e *memo.Encoder) {
	e.I64("synth.min_layers", int64(p.MinLayers))
	e.I64("synth.max_layers", int64(p.MaxLayers))
	e.I64("synth.max_width", int64(p.MaxWidth))
	e.F64("synth.edge_prob", p.EdgeProb)
	e.F64("synth.min_period", p.MinPeriod)
	e.F64("synth.max_period", p.MaxPeriod)
	e.F64("synth.utilization", p.Utilization)
	e.F64("synth.cpr", p.CPR)
	e.F64("synth.comm_ratio", p.CommRatio)
	e.F64("synth.alpha_max", p.AlphaMax)
	e.I64("synth.min_data", p.MinData)
	e.I64("synth.max_data", p.MaxData)
}

// AppendFingerprint encodes the PARSEC-like kernel generation parameters.
func (p CaseStudyParams) AppendFingerprint(e *memo.Encoder) {
	e.I64("case.threads", int64(p.Threads))
	e.I64("case.min_data", p.MinData)
	e.I64("case.max_data", p.MaxData)
	e.F64("case.alpha_max", p.AlphaMax)
}

// AppendFingerprint encodes the task-set generation parameters,
// including the embedded per-kernel structure parameters.
func (p TaskSetParams) AppendFingerprint(e *memo.Encoder) {
	e.F64("set.target_utilization", p.TargetUtilization)
	e.I64("set.tasks", int64(p.Tasks))
	e.F64("set.min_period", p.MinPeriod)
	e.F64("set.max_period", p.MaxPeriod)
	p.CaseStudy.AppendFingerprint(e)
}

package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l15cache/internal/dag"
)

func TestSyntheticConditional(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := DefaultCondParams()
	ct, err := SyntheticConditional(r, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Conds) == 0 {
		t.Fatal("no conditionals inserted")
	}
	if got, want := ct.Scenarios(), pow(p.Arms, len(ct.Conds)); got != want {
		t.Errorf("scenarios = %d, want %d", got, want)
	}
	// Every scenario is a valid task strictly smaller than the full graph.
	full := len(ct.Nodes)
	err = ct.EachScenario(func(choice []int, st *dag.Task) error {
		if err := st.Validate(); err != nil {
			t.Errorf("scenario %v invalid: %v", choice, err)
		}
		if len(st.Nodes) >= full {
			t.Errorf("scenario %v did not drop any arm", choice)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func TestSyntheticConditionalErrors(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := DefaultCondParams()
	p.Arms = 1
	if _, err := SyntheticConditional(r, p); err == nil {
		t.Error("single-arm conditional accepted")
	}
	p = DefaultCondParams()
	p.ArmLen = 0
	if _, err := SyntheticConditional(r, p); err == nil {
		t.Error("zero-length arm accepted")
	}
}

// Property: generation is deterministic and every scenario of every seed
// validates.
func TestQuickSyntheticConditional(t *testing.T) {
	f := func(seed int64) bool {
		p := DefaultCondParams()
		ct, err := SyntheticConditional(rand.New(rand.NewSource(seed)), p)
		if err != nil {
			return false
		}
		ok := true
		err = ct.EachScenario(func(choice []int, st *dag.Task) error {
			if st.Validate() != nil {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

package workload

import (
	"fmt"
	"math/rand"

	"l15cache/internal/dag"
)

// CondParams configure synthetic conditional-DAG generation: a plain
// layered task (SynthParams) plus branch/merge regions inserted between
// consecutive layers.
type CondParams struct {
	Synth SynthParams

	// Conditionals is how many branch/merge regions to insert (each uses
	// one fresh branch node, one fresh merge node and Arms fresh arms).
	Conditionals int

	// Arms is the number of alternative arms per conditional (≥2).
	Arms int

	// ArmLen is the node count of each arm (a chain).
	ArmLen int
}

// DefaultCondParams returns a modest configuration: two 2-arm conditionals
// with 2-node arms on the default synthetic task.
func DefaultCondParams() CondParams {
	return CondParams{
		Synth:        DefaultSynthParams(),
		Conditionals: 2,
		Arms:         2,
		ArmLen:       2,
	}
}

// SyntheticConditional generates a conditional DAG task: the base layered
// task of §5.1 with branch/merge regions grafted onto random nodes. Each
// region hangs off a host node (the branch) and re-joins at a fresh merge
// node that feeds the host's original successors' layer via the sink-ward
// structure — concretely, the merge connects to the task's sink, keeping
// the graph single-source/single-sink without restructuring the host's
// edges.
func SyntheticConditional(r *rand.Rand, p CondParams) (*dag.CondTask, error) {
	if p.Conditionals < 0 || p.Arms < 2 || p.ArmLen < 1 {
		return nil, fmt.Errorf("workload: bad conditional parameters %+v", p)
	}
	base, err := Synthetic(r, p.Synth)
	if err != nil {
		return nil, err
	}
	sink := base.Sink()

	type region struct {
		branch, merge dag.NodeID
		arms          [][]dag.NodeID
	}
	var regions []region

	// Hosts: random non-sink nodes of the *original* graph (later
	// iterations must not pick another region's arm or merge nodes),
	// with successors, distinct per region.
	originalNodes := len(base.Nodes)
	used := map[dag.NodeID]bool{sink: true}
	meanWCET := base.Volume() / float64(len(base.Nodes))
	for c := 0; c < p.Conditionals; c++ {
		var host dag.NodeID = -1
		for try := 0; try < 50; try++ {
			cand := dag.NodeID(r.Intn(originalNodes))
			if !used[cand] && len(base.Succ(cand)) > 0 {
				host = cand
				break
			}
		}
		if host < 0 {
			break
		}
		used[host] = true

		merge := base.AddNode(fmt.Sprintf("merge%d", c), meanWCET/2, 2048)
		arms := make([][]dag.NodeID, p.Arms)
		for a := 0; a < p.Arms; a++ {
			prev := host
			for n := 0; n < p.ArmLen; n++ {
				v := base.AddNode(fmt.Sprintf("c%da%dn%d", c, a, n),
					meanWCET*(0.5+r.Float64()), 2048+int64(r.Intn(4096)))
				base.MustAddEdge(prev, v, 1+r.Float64()*2, 0.1+r.Float64()*0.5)
				arms[a] = append(arms[a], v)
				prev = v
			}
			base.MustAddEdge(prev, merge, 1+r.Float64()*2, 0.1+r.Float64()*0.5)
		}
		base.MustAddEdge(merge, sink, 1, 0.5)
		regions = append(regions, region{branch: host, merge: merge, arms: arms})
	}

	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("workload: conditional base invalid: %w", err)
	}
	ct := dag.NewConditional(base)
	for _, reg := range regions {
		if err := ct.AddConditional(reg.branch, reg.merge, reg.arms); err != nil {
			return nil, fmt.Errorf("workload: region rejected: %w", err)
		}
	}
	return ct, nil
}

package workload

import (
	"fmt"
	"math"
	"math/rand"

	"l15cache/internal/dag"
)

// UUniFast splits a total utilisation across n tasks with the classic
// UUniFast algorithm (Bini & Buttazzo), the standard generator for
// schedulability experiments. Every share is strictly positive.
func UUniFast(r *rand.Rand, n int, total float64) []float64 {
	if n <= 0 {
		return nil
	}
	us := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(r.Float64(), 1/float64(n-i-1))
		us[i] = sum - next
		sum = next
	}
	us[n-1] = sum
	return us
}

// TaskSetParams configure a case-study task set.
type TaskSetParams struct {
	// TargetUtilization is the sum of U_i across the set (the x-axis of
	// Fig. 8(a,b), 40%–90% of the core count).
	TargetUtilization float64

	// Tasks is the number of DAG tasks (one PARSEC-like kernel each).
	Tasks int

	// MinPeriod and MaxPeriod bound the random task periods.
	MinPeriod, MaxPeriod float64

	// CaseStudy configures the per-kernel structure.
	CaseStudy CaseStudyParams
}

// DefaultTaskSetParams returns a configuration matching §5.2: random periods
// with implicit deadlines and kernels drawn from the PARSEC list.
func DefaultTaskSetParams() TaskSetParams {
	return TaskSetParams{
		TargetUtilization: 0.6,
		Tasks:             6,
		MinPeriod:         100,
		MaxPeriod:         1000,
		CaseStudy:         DefaultCaseStudyParams(),
	}
}

// TaskSet generates a periodic DAG task set with total utilisation
// TargetUtilization: kernels are drawn round-robin from the PARSEC list,
// per-task utilisations from UUniFast, periods uniformly from the period
// range, and each task's node WCETs are rescaled so W_i = U_i × T_i.
func TaskSet(r *rand.Rand, p TaskSetParams) ([]*dag.Task, error) {
	if p.Tasks <= 0 {
		return nil, fmt.Errorf("workload: task count %d", p.Tasks)
	}
	if p.TargetUtilization <= 0 {
		return nil, fmt.Errorf("workload: target utilisation %g", p.TargetUtilization)
	}
	if p.MinPeriod <= 0 || p.MaxPeriod < p.MinPeriod {
		return nil, fmt.Errorf("workload: bad period range [%g,%g]", p.MinPeriod, p.MaxPeriod)
	}
	utils := UUniFast(r, p.Tasks, p.TargetUtilization)
	kernels := Kernels()
	tasks := make([]*dag.Task, 0, p.Tasks)
	for i := 0; i < p.Tasks; i++ {
		k := kernels[i%len(kernels)]
		t, err := ParsecTask(r, k, p.CaseStudy)
		if err != nil {
			return nil, err
		}
		t.Name = fmt.Sprintf("%s#%d", k, i)
		t.Period = p.MinPeriod + r.Float64()*(p.MaxPeriod-p.MinPeriod)
		t.Deadline = t.Period
		// Rescale so the task's total demand (computation plus
		// communication) matches U_i × T_i: in the case study the
		// dependent-data transfers compete for the same cores as the
		// computation, so budgeting only W_i would overload every
		// system long before the nominal 100%.
		wantW := utils[i] * t.Period
		var curComm float64
		for _, e := range t.Edges {
			curComm += e.Cost
		}
		curW := t.Volume() + curComm
		if curW <= 0 {
			return nil, fmt.Errorf("workload: kernel %s has zero volume", k)
		}
		f := wantW / curW
		for _, n := range t.Nodes {
			n.WCET *= f
		}
		for j := range t.Edges {
			t.Edges[j].Cost *= f
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// TotalUtilization sums W_i/T_i (computation only) over the tasks.
func TotalUtilization(tasks []*dag.Task) float64 {
	var u float64
	for _, t := range tasks {
		u += t.Utilization()
	}
	return u
}

// TotalLoad sums (W_i + Σμ_i)/T_i over the tasks — the demand TaskSet
// budgets against its target utilisation.
func TotalLoad(tasks []*dag.Task) float64 {
	var u float64
	for _, t := range tasks {
		var comm float64
		for _, e := range t.Edges {
			comm += e.Cost
		}
		u += (t.Volume() + comm) / t.Period
	}
	return u
}

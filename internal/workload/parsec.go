package workload

import (
	"fmt"
	"math/rand"

	"l15cache/internal/dag"
)

// Kernel names the PARSEC 3.0 workloads the case study (§5.2) turned into
// DAG tasks by adding precedence constraints and data flow between threads.
// Each kernel maps to the parallel structure of the original benchmark.
type Kernel string

// The eleven PARSEC 3.0 workloads (multi-thread versions).
const (
	Blackscholes  Kernel = "blackscholes"  // data-parallel fork-join
	Bodytrack     Kernel = "bodytrack"     // staged fork-join pipeline
	Canneal       Kernel = "canneal"       // iterative diamond refinement
	Dedup         Kernel = "dedup"         // 5-stage pipeline, parallel middle
	Ferret        Kernel = "ferret"        // 6-stage pipeline, parallel middle
	Fluidanimate  Kernel = "fluidanimate"  // layered grid with neighbour deps
	Freqmine      Kernel = "freqmine"      // expand/reduce tree
	Streamcluster Kernel = "streamcluster" // repeated fork-join rounds
	Swaptions     Kernel = "swaptions"     // embarrassingly parallel
	Vips          Kernel = "vips"          // image pipeline with fan-out
	X264          Kernel = "x264"          // wavefront dependencies
)

// Kernels lists all case-study kernels in a fixed order.
func Kernels() []Kernel {
	return []Kernel{
		Blackscholes, Bodytrack, Canneal, Dedup, Ferret, Fluidanimate,
		Freqmine, Streamcluster, Swaptions, Vips, X264,
	}
}

// profile captures a kernel's published characterisation (Bienia et al.,
// PACT'08): how compute-heavy its nodes are, how much dependent data flows
// between its threads relative to the case study's base range, and how
// cache-friendly that data is (the ETM α range).
type profile struct {
	wcetScale float64 // node computation relative to the suite average
	dataScale float64 // dependent-data volume scale
	alphaLo   float64 // α lower bound: streaming data caches poorly
	alphaHi   float64
}

// profiles follows the suite's characterisation: blackscholes/swaptions are
// compute-bound with tiny sharing; canneal and x264 move the most data;
// streamcluster's streaming access defeats caching (low α); dedup/ferret
// are communication-heavy pipelines.
var profiles = map[Kernel]profile{
	Blackscholes:  {wcetScale: 1.0, dataScale: 0.4, alphaLo: 0.4, alphaHi: 0.7},
	Bodytrack:     {wcetScale: 1.1, dataScale: 0.9, alphaLo: 0.3, alphaHi: 0.7},
	Canneal:       {wcetScale: 0.9, dataScale: 1.5, alphaLo: 0.2, alphaHi: 0.5},
	Dedup:         {wcetScale: 0.8, dataScale: 1.3, alphaLo: 0.3, alphaHi: 0.7},
	Ferret:        {wcetScale: 1.2, dataScale: 1.1, alphaLo: 0.3, alphaHi: 0.7},
	Fluidanimate:  {wcetScale: 1.0, dataScale: 1.0, alphaLo: 0.3, alphaHi: 0.6},
	Freqmine:      {wcetScale: 1.3, dataScale: 0.8, alphaLo: 0.3, alphaHi: 0.6},
	Streamcluster: {wcetScale: 0.9, dataScale: 1.2, alphaLo: 0.1, alphaHi: 0.4},
	Swaptions:     {wcetScale: 1.4, dataScale: 0.3, alphaLo: 0.4, alphaHi: 0.7},
	Vips:          {wcetScale: 1.0, dataScale: 1.2, alphaLo: 0.3, alphaHi: 0.7},
	X264:          {wcetScale: 1.1, dataScale: 1.4, alphaLo: 0.3, alphaHi: 0.7},
}

// Profile returns the kernel's characterisation scales (exposed for tests
// and documentation).
func Profile(k Kernel) (wcetScale, dataScale, alphaLo, alphaHi float64, ok bool) {
	p, ok := profiles[k]
	return p.wcetScale, p.dataScale, p.alphaLo, p.alphaHi, ok
}

// CaseStudyParams configure PARSEC-like task generation.
type CaseStudyParams struct {
	// Threads is the degree of parallelism of the benchmark's parallel
	// phases (the case study ran the multi-thread versions on 8/16-core
	// SoCs; 4-8 threads per task is typical).
	Threads int

	// MinData and MaxData bound the dependent data shared between nodes
	// ([2KB, 16KB] in the paper).
	MinData, MaxData int64

	// AlphaMax bounds the ETM speed-up ratio.
	AlphaMax float64
}

// DefaultCaseStudyParams mirror §5.2.
func DefaultCaseStudyParams() CaseStudyParams {
	return CaseStudyParams{
		Threads:  4,
		MinData:  2 * 1024,
		MaxData:  16 * 1024,
		AlphaMax: 0.7,
	}
}

// ParsecTask builds the DAG-structured version of the named kernel. Node
// WCETs are drawn around unit scale and later rescaled by the task-set
// builder to meet the target utilisation; data volumes and α follow the
// paper's distributions.
func ParsecTask(r *rand.Rand, k Kernel, p CaseStudyParams) (*dag.Task, error) {
	if p.Threads < 1 {
		return nil, fmt.Errorf("workload: threads = %d", p.Threads)
	}
	prof, ok := profiles[k]
	if !ok {
		return nil, fmt.Errorf("workload: unknown kernel %q", k)
	}
	b := &taskBuilder{r: r, p: p, prof: prof, t: dag.New(string(k), 0, 0)}
	switch k {
	case Blackscholes, Swaptions:
		b.forkJoin(p.Threads, 1)
	case Bodytrack:
		b.forkJoin(p.Threads, 3) // per-frame stages, each fork-join
	case Canneal:
		b.diamondChain(4)
	case Dedup:
		b.pipeline([]int{1, p.Threads, p.Threads, p.Threads, 1})
	case Ferret:
		b.pipeline([]int{1, p.Threads, p.Threads, p.Threads, p.Threads, 1})
	case Fluidanimate:
		b.grid(3, p.Threads)
	case Freqmine:
		b.tree(2, 3)
	case Streamcluster:
		b.forkJoin(p.Threads, 2)
	case Vips:
		b.pipeline([]int{1, 2, p.Threads, 2, 1})
	case X264:
		b.wavefront(3, p.Threads)
	default:
		return nil, fmt.Errorf("workload: unknown kernel %q", k)
	}
	if err := b.t.Validate(); err != nil {
		return nil, fmt.Errorf("workload: kernel %s produced invalid DAG: %w", k, err)
	}
	return b.t, nil
}

type taskBuilder struct {
	r    *rand.Rand
	p    CaseStudyParams
	prof profile
	t    *dag.Task
}

func (b *taskBuilder) node(name string) dag.NodeID {
	wcet := (0.5 + b.r.Float64()) * b.prof.wcetScale
	data := b.p.MinData
	if b.p.MaxData > b.p.MinData {
		data += b.r.Int63n(b.p.MaxData - b.p.MinData + 1)
	}
	// Scale by the kernel's data character, clamped to the case study's
	// published [MinData, MaxData] range.
	data = int64(float64(data) * b.prof.dataScale)
	if data < b.p.MinData {
		data = b.p.MinData
	}
	if data > b.p.MaxData {
		data = b.p.MaxData
	}
	return b.t.AddNode(name, wcet, data)
}

func (b *taskBuilder) edge(from, to dag.NodeID) {
	// Edge communication cost scales with the producer's data volume:
	// transmitting δ bytes through the memory hierarchy costs time
	// proportional to δ (unit cost per 4 KB, jittered).
	cost := float64(b.t.Node(from).Data) / 4096 * (0.5 + b.r.Float64())
	// α within the kernel's cacheability band, capped by the platform.
	lo, hi := b.prof.alphaLo, b.prof.alphaHi
	if hi > b.p.AlphaMax {
		hi = b.p.AlphaMax
	}
	if lo > hi {
		lo = hi / 2
	}
	a := lo + b.r.Float64()*(hi-lo)
	if a <= 0 {
		a = 0.05
	}
	b.t.MustAddEdge(from, to, cost, a)
}

// forkJoin builds `stages` sequential fork-join phases of the given width.
func (b *taskBuilder) forkJoin(width, stages int) {
	prev := b.node("src")
	for s := 0; s < stages; s++ {
		join := dag.NodeID(-1)
		workers := make([]dag.NodeID, width)
		for i := range workers {
			workers[i] = b.node(fmt.Sprintf("s%dw%d", s, i))
			b.edge(prev, workers[i])
		}
		join = b.node(fmt.Sprintf("s%djoin", s))
		for _, w := range workers {
			b.edge(w, join)
		}
		prev = join
	}
}

// pipeline builds sequential stages of the given widths; every node of a
// stage feeds every node of the next (pipeline with data redistribution).
func (b *taskBuilder) pipeline(widths []int) {
	var prev []dag.NodeID
	for s, w := range widths {
		cur := make([]dag.NodeID, w)
		for i := range cur {
			cur[i] = b.node(fmt.Sprintf("p%dn%d", s, i))
			for _, u := range prev {
				b.edge(u, cur[i])
			}
		}
		prev = cur
	}
	// Close into a single sink if the last stage is parallel.
	if len(prev) > 1 {
		sink := b.node("sink")
		for _, u := range prev {
			b.edge(u, sink)
		}
	}
}

// diamondChain builds n sequential diamonds (src → two branches → join).
func (b *taskBuilder) diamondChain(n int) {
	prev := b.node("src")
	for i := 0; i < n; i++ {
		l := b.node(fmt.Sprintf("d%dl", i))
		r := b.node(fmt.Sprintf("d%dr", i))
		j := b.node(fmt.Sprintf("d%dj", i))
		b.edge(prev, l)
		b.edge(prev, r)
		b.edge(l, j)
		b.edge(r, j)
		prev = j
	}
}

// grid builds rows×cols nodes where each node depends on its upper and
// upper-left neighbours (fluid simulation exchange pattern).
func (b *taskBuilder) grid(rows, cols int) {
	src := b.node("src")
	ids := make([][]dag.NodeID, rows)
	for i := range ids {
		ids[i] = make([]dag.NodeID, cols)
		for j := range ids[i] {
			ids[i][j] = b.node(fmt.Sprintf("g%d_%d", i, j))
			switch {
			case i == 0:
				b.edge(src, ids[i][j])
			default:
				b.edge(ids[i-1][j], ids[i][j])
				if j > 0 {
					b.edge(ids[i-1][j-1], ids[i][j])
				}
			}
		}
	}
	sink := b.node("sink")
	for j := 0; j < cols; j++ {
		b.edge(ids[rows-1][j], sink)
	}
}

// tree builds a fan-out of the given branching factor and depth followed by
// a mirrored reduction.
func (b *taskBuilder) tree(branch, depth int) {
	root := b.node("src")
	level := []dag.NodeID{root}
	var levels [][]dag.NodeID
	for d := 0; d < depth; d++ {
		var next []dag.NodeID
		for _, u := range level {
			for k := 0; k < branch; k++ {
				v := b.node(fmt.Sprintf("t%d_%d", d, len(next)))
				b.edge(u, v)
				next = append(next, v)
			}
		}
		levels = append(levels, next)
		level = next
	}
	// Reduce back to a single sink.
	for d := depth - 2; d >= 0; d-- {
		parents := levels[d]
		reduced := make([]dag.NodeID, len(parents))
		for i := range parents {
			reduced[i] = b.node(fmt.Sprintf("r%d_%d", d, i))
		}
		// Children of parents[i] in `level` occupy a contiguous run.
		per := len(level) / len(parents)
		for i := range parents {
			for k := 0; k < per; k++ {
				b.edge(level[i*per+k], reduced[i])
			}
		}
		level = reduced
	}
	if len(level) > 1 {
		sink := b.node("sink")
		for _, u := range level {
			b.edge(u, sink)
		}
	}
}

// wavefront builds rows×cols nodes with dependencies on the left and upper
// neighbours (x264 macroblock pattern).
func (b *taskBuilder) wavefront(rows, cols int) {
	src := b.node("src")
	ids := make([][]dag.NodeID, rows)
	for i := range ids {
		ids[i] = make([]dag.NodeID, cols)
		for j := range ids[i] {
			ids[i][j] = b.node(fmt.Sprintf("w%d_%d", i, j))
			if i == 0 && j == 0 {
				b.edge(src, ids[i][j])
				continue
			}
			if i > 0 {
				b.edge(ids[i-1][j], ids[i][j])
			}
			if j > 0 {
				b.edge(ids[i][j-1], ids[i][j])
			}
		}
	}
	sink := b.node("sink")
	b.edge(ids[rows-1][cols-1], sink)
}

// Package soc assembles the full simulated System-on-Chip of §2.2 / §5:
// clusters of four 5-stage RV32I cores, each core with private L1 I$/D$ and
// a TLB, one L1.5 Cache per cluster, a shared write-through L2, and external
// memory. The per-core memory port routes accesses the way the IPUs do:
// virtual address → TLB → L1 → L1.5 (mask-filtered) → L2 → DRAM, and the
// Mini-Decoder path delivers the five L1.5 instructions to the cluster's
// control port.
package soc

import (
	"fmt"

	"l15cache/internal/bitmap"
	"l15cache/internal/cache"
	"l15cache/internal/cpu"
	"l15cache/internal/flight"
	"l15cache/internal/isa"
	"l15cache/internal/kernel"
	"l15cache/internal/l15"
	"l15cache/internal/mem"
	"l15cache/internal/metrics"
	"l15cache/internal/tlb"
)

// Config describes the SoC, defaulting to the paper's evaluation platform.
type Config struct {
	Clusters    int
	ClusterSize int

	L1Bytes     int // per core, I$ and D$ each
	L1Ways      int
	L1LineBytes int
	L1Lat       int // 1-2 cycles in the paper; we use the base

	L15 l15.Config // per cluster (Cores is overwritten with ClusterSize)

	L2Bytes     int
	L2Ways      int
	L2LineBytes int
	L2Lat       int // 15-25 cycles; base 20

	MemBytes int
	MemLat   int // external memory

	TLBEntries int
	TLBMissLat int

	// UARTAddr is the physical address of the memory-mapped console: a
	// byte stored there is appended to SoC.UART (handy for bare-metal
	// program output). 0 disables the device.
	UARTAddr uint32

	// IssueWidth selects the cores' issue width: 1 (default) is the
	// paper's 5-stage in-order Rocket-style core; 2 enables the §3.3
	// dual-issue front end. MemPorts is the per-group memory-operation
	// budget (2 models the L1.5's ported front end).
	IssueWidth int
	MemPorts   int

	// Kernel selects the simulator kernel. kernel.Events (the zero
	// value) jumps each cluster's SDU clock across idle stretches;
	// kernel.Ticked advances it cycle by cycle. Both land on the same
	// counter values, so recordings are byte-identical (DESIGN.md §11).
	Kernel kernel.Mode
}

// DefaultConfig is the 8-core (two cluster) configuration of §5.
func DefaultConfig() Config {
	return Config{
		Clusters:    2,
		ClusterSize: 4,
		L1Bytes:     4 * 1024,
		L1Ways:      2,
		L1LineBytes: 64,
		L1Lat:       1,
		L15:         l15.DefaultConfig(),
		L2Bytes:     512 * 1024,
		L2Ways:      8,
		L2LineBytes: 64,
		L2Lat:       20,
		MemBytes:    16 * 1024 * 1024,
		MemLat:      80,
		TLBEntries:  16,
		TLBMissLat:  20,
		UARTAddr:    0x00ff0000,
	}
}

// l2Level adapts the shared L2 + DRAM as the L1.5's next level.
type l2Level struct {
	c   *cache.Cache
	lat int
	mem *mem.Memory
}

func (l *l2Level) Access(pa mem.PhysAddr, write bool) int {
	set, tag := l.c.Split(uint32(pa))
	res := l.c.Access(set, tag, write, l.c.AllWays())
	if res.Hit {
		return l.lat
	}
	return l.lat + l.mem.Latency()
}

// Cluster is one computing cluster: ClusterSize cores sharing an L1.5.
type Cluster struct {
	ID  int
	L15 *l15.L15
}

// SoC is the assembled system.
type SoC struct {
	Cfg      Config
	Mem      *mem.Memory
	L2       *cache.Cache
	Clusters []*Cluster
	Cores    []*cpu.Core

	// Observer, when non-nil, runs after every instruction step — the
	// attachment point of the cycle-accurate monitor (§5.3).
	Observer func(*SoC)

	// UART accumulates the bytes programs store to Cfg.UARTAddr.
	UART []byte

	l2lvl *l2Level
	ports []*port
}

// New builds the SoC.
func New(cfg Config) (*SoC, error) {
	if cfg.Clusters <= 0 || cfg.ClusterSize <= 0 {
		return nil, fmt.Errorf("soc: bad cluster configuration %d×%d", cfg.Clusters, cfg.ClusterSize)
	}
	m, err := mem.New(cfg.MemBytes, cfg.MemLat)
	if err != nil {
		return nil, err
	}
	l2c, err := cache.New(cfg.L2Bytes, cfg.L2Ways, cfg.L2LineBytes, cfg.L2Lat)
	if err != nil {
		return nil, fmt.Errorf("soc: L2: %w", err)
	}
	s := &SoC{Cfg: cfg, Mem: m, L2: l2c, l2lvl: &l2Level{c: l2c, lat: cfg.L2Lat, mem: m}}

	for cl := 0; cl < cfg.Clusters; cl++ {
		l15cfg := cfg.L15
		l15cfg.Cores = cfg.ClusterSize
		lc, err := l15.New(l15cfg, s.l2lvl)
		if err != nil {
			return nil, fmt.Errorf("soc: cluster %d: %w", cl, err)
		}
		s.Clusters = append(s.Clusters, &Cluster{ID: cl, L15: lc})
	}

	total := cfg.Clusters * cfg.ClusterSize
	for id := 0; id < total; id++ {
		p, err := s.newPort(id)
		if err != nil {
			return nil, err
		}
		s.ports = append(s.ports, p)
		core, err := cpu.New(id, p, 0)
		if err != nil {
			return nil, err
		}
		if cfg.IssueWidth > 1 {
			core.Width = cfg.IssueWidth
			core.MemPorts = cfg.MemPorts
		}
		s.Cores = append(s.Cores, core)
	}
	return s, nil
}

// FlightRecord attaches a flight recorder to every cluster's L1.5: way
// reassignments and gv_set calls emit typed, tick-stamped events carrying
// the cluster index (see l15.FlightRecord). A nil recorder detaches.
func (s *SoC) FlightRecord(rec *flight.Recorder) {
	for _, cl := range s.Clusters {
		cl.L15.FlightRecord(rec, cl.ID)
	}
}

// Instrument publishes the whole SoC to the observability layer: per-core
// L1 I$/D$ and TLB counters, per-cluster L1.5 counters with SDU latency
// histograms (see l15.Instrument), the shared L2, and aggregate rollups
// (soc.l1.*, soc.tlb.*, per-cluster soc.clusterN.l15.*, soc.instret,
// soc.cycles). Either argument may be nil; instrumentation is lazy, so the
// simulation hot path is unaffected until a snapshot is taken.
func (s *SoC) Instrument(reg *metrics.Registry, tr *metrics.Tracer) {
	for _, cl := range s.Clusters {
		cl.L15.Instrument(reg, tr, fmt.Sprintf("soc.cluster%d.l15", cl.ID))
	}
	if reg == nil {
		return
	}
	for i, p := range s.ports {
		p.l1i.PublishMetrics(reg, fmt.Sprintf("soc.core%02d.l1i", i))
		p.l1d.PublishMetrics(reg, fmt.Sprintf("soc.core%02d.l1d", i))
		p.tlb.PublishMetrics(reg, fmt.Sprintf("soc.core%02d.tlb", i))
	}
	s.L2.PublishMetrics(reg, "soc.l2")
	reg.RegisterCollector(func(r *metrics.Registry) {
		var l1Hits, l1Misses, tlbHits, tlbMisses uint64
		for _, p := range s.ports {
			l1Hits += p.l1i.Stats.Hits + p.l1d.Stats.Hits
			l1Misses += p.l1i.Stats.Misses + p.l1d.Stats.Misses
			tlbHits += p.tlb.Hits
			tlbMisses += p.tlb.Misses
		}
		r.Counter("soc.l1.hits").Store(l1Hits)
		r.Counter("soc.l1.misses").Store(l1Misses)
		r.Counter("soc.tlb.hits").Store(tlbHits)
		r.Counter("soc.tlb.misses").Store(tlbMisses)
		var instret, cycles uint64
		for _, c := range s.Cores {
			instret += c.Stats.Instret
			if c.Cycles > cycles {
				cycles = c.Cycles
			}
		}
		r.Counter("soc.instret").Store(instret)
		r.Counter("soc.cycles").Store(cycles)
	})
}

// ClusterOf returns the cluster containing the core.
func (s *SoC) ClusterOf(core int) *Cluster {
	return s.Clusters[core/s.Cfg.ClusterSize]
}

// localIndex is the core's index within its cluster.
func (s *SoC) localIndex(core int) int { return core % s.Cfg.ClusterSize }

// SetPageTable binds an address space to the core: its TLB is flushed and
// the cluster's TID control register is loaded (the context-switch
// sequence).
func (s *SoC) SetPageTable(core int, pt *tlb.PageTable) error {
	if core < 0 || core >= len(s.Cores) {
		return fmt.Errorf("soc: core %d out of range", core)
	}
	s.ports[core].tlb.SetPageTable(pt)
	return s.ClusterOf(core).L15.SetTID(s.localIndex(core), pt.TID)
}

// IdentityPageTable maps the whole physical memory 1:1 for the given task
// ID — the bring-up mapping the bare-metal tests and examples use.
func (s *SoC) IdentityPageTable(tid uint16) *tlb.PageTable {
	pt := tlb.NewPageTable(tid)
	pt.MapRange(0, 0, s.Cfg.MemBytes)
	return pt
}

// Run advances the system until every core is halted or maxInstrs
// instructions have retired per core. Cores are stepped in local-time
// order (the earliest core executes next), which keeps the interleaving
// deterministic, and each cluster's SDU ticks forward with global time.
// The handler receives ECALL traps (may be nil); ebreak halts only its own
// core. The first error trap (illegal instruction, privilege violation,
// memory fault) on any core stops the run and is returned.
func (s *SoC) Run(maxInstrs uint64, handler func(*cpu.Core, cpu.Trap) bool) (cpu.Trap, error) {
	retired := make([]uint64, len(s.Cores))
	for {
		// Pick the core with the earliest wakeup (its local clock;
		// halted cores report kernel.Never and drop out).
		best := -1
		bestWake := kernel.Never
		for i, c := range s.Cores {
			if retired[i] >= maxInstrs {
				continue
			}
			if w := c.NextWakeup(); w < bestWake {
				best, bestWake = i, w
			}
		}
		if best < 0 {
			return cpu.Trap{}, nil
		}
		c := s.Cores[best]
		trap, err := c.StepIssue()
		if err != nil {
			return trap, err
		}
		retired[best]++
		s.tickSDUs()
		if s.Observer != nil {
			s.Observer(s)
		}
		switch trap.Kind {
		case cpu.TrapNone:
		case cpu.TrapEBreak:
			// The core halted itself; the rest of the SoC runs on.
		case cpu.TrapECall:
			if handler == nil || !handler(c, trap) {
				c.Halted = true
				return trap, nil
			}
		default:
			return trap, nil
		}
	}
}

// tickSDUs advances every cluster's Walloc to the global time (the minimum
// core-local clock), preserving the one-way-per-cycle constraint. Under the
// events kernel a cluster whose SDU reports no wakeup (kernel.Never) jumps
// its counter straight to the global time instead of idling through the
// gap cycle by cycle; both kernels reach the same counter value, so every
// tick-stamped event is identical.
func (s *SoC) tickSDUs() {
	var global uint64
	first := true
	for _, c := range s.Cores {
		if c.Halted {
			continue
		}
		if first || c.Cycles < global {
			global = c.Cycles
			first = false
		}
	}
	if first {
		// All halted: settle to the max clock.
		for _, c := range s.Cores {
			if c.Cycles > global {
				global = c.Cycles
			}
		}
	}
	for _, cl := range s.Clusters {
		if s.Cfg.Kernel == kernel.Ticked {
			for cl.L15.Ticks() < global {
				cl.L15.Tick()
			}
		} else {
			cl.L15.AdvanceTo(global)
		}
	}
}

// SettleSDU runs every cluster's SDU for n extra cycles (useful after a
// halted program to let pending demands finish in tests).
func (s *SoC) SettleSDU(n int) {
	for _, cl := range s.Clusters {
		if s.Cfg.Kernel == kernel.Ticked {
			for i := 0; i < n; i++ {
				cl.L15.Tick()
			}
		} else {
			cl.L15.AdvanceTo(cl.L15.Ticks() + uint64(n))
		}
	}
}

// LoadProgram assembles the source and loads it at base, returning the
// number of words.
func (s *SoC) LoadProgram(base uint32, src string) (int, error) {
	words, err := isa.Assemble(src, base)
	if err != nil {
		return 0, err
	}
	if err := s.Mem.LoadProgram(mem.PhysAddr(base), words); err != nil {
		return 0, err
	}
	return len(words), nil
}

// StartCore points the core at pc with a fresh register file, kernel
// privilege and the given stack pointer.
func (s *SoC) StartCore(core int, pc, sp uint32) {
	c := s.Cores[core]
	c.PC = pc
	c.Priv = cpu.PrivKernel
	c.Halted = false
	for i := range c.Regs {
		c.Regs[i] = 0
	}
	c.Regs[2] = sp
}

// port implements cpu.MemSystem for one core.
type port struct {
	soc  *SoC
	core int

	tlb *tlb.TLB
	l1i *cache.Cache
	l1d *cache.Cache
}

func (s *SoC) newPort(core int) (*port, error) {
	cfg := s.Cfg
	t, err := tlb.New(cfg.TLBEntries, cfg.TLBMissLat)
	if err != nil {
		return nil, err
	}
	l1i, err := cache.New(cfg.L1Bytes, cfg.L1Ways, cfg.L1LineBytes, cfg.L1Lat)
	if err != nil {
		return nil, fmt.Errorf("soc: L1I: %w", err)
	}
	l1d, err := cache.New(cfg.L1Bytes, cfg.L1Ways, cfg.L1LineBytes, cfg.L1Lat)
	if err != nil {
		return nil, fmt.Errorf("soc: L1D: %w", err)
	}
	return &port{soc: s, core: core, tlb: t, l1i: l1i, l1d: l1d}, nil
}

// access runs the IPU-routed lookup chain for one reference and returns its
// latency. l1 is the stage-appropriate private cache (I$ or D$).
func (p *port) access(l1 *cache.Cache, va uint32, pa mem.PhysAddr, write bool) int {
	lat := 0
	set, tag := l1.Split(uint32(pa))
	res := l1.Access(set, tag, write, l1.AllWays())
	lat += l1.HitLatency()
	if res.Hit {
		if !write {
			return lat
		}
		// Write-through: the store continues toward the L1.5/L2 but
		// is absorbed by the store buffer; the L1.5 still records it
		// for the sharing semantics.
	}
	cluster := p.soc.ClusterOf(p.core)
	local := p.soc.localIndex(p.core)
	if write {
		if _, err := cluster.L15.Store(local, va, pa); err == nil {
			// Posted write: no extra cycles charged to the core.
			return lat
		}
		return lat
	}
	r, err := cluster.L15.Load(local, va, pa)
	if err != nil {
		return lat
	}
	return lat + r.Latency
}

// FetchWord implements cpu.MemSystem.
func (p *port) FetchWord(core int, va uint32) (uint32, int, error) {
	pa, tlat, err := p.tlb.Translate(tlb.VirtAddr(va))
	if err != nil {
		return 0, 0, err
	}
	lat := tlat + p.access(p.l1i, va, pa, false)
	w, err := p.soc.Mem.ReadWord(pa)
	if err != nil {
		return 0, 0, err
	}
	return w, lat, nil
}

// Load implements cpu.MemSystem.
func (p *port) Load(core int, va uint32, size int) (uint32, int, error) {
	pa, tlat, err := p.tlb.Translate(tlb.VirtAddr(va))
	if err != nil {
		return 0, 0, err
	}
	lat := tlat + p.access(p.l1d, va, pa, false)
	var v uint32
	switch size {
	case 1:
		b, err := p.soc.Mem.LoadByte(pa)
		if err != nil {
			return 0, 0, err
		}
		v = uint32(b)
	case 2:
		for i := 0; i < 2; i++ {
			b, err := p.soc.Mem.LoadByte(pa + mem.PhysAddr(i))
			if err != nil {
				return 0, 0, err
			}
			v |= uint32(b) << (8 * i)
		}
	case 4:
		w, err := p.soc.Mem.ReadWord(pa)
		if err != nil {
			return 0, 0, err
		}
		v = w
	default:
		//lint:ignore hotalloc impossible-size guard: built only on a malformed access, which halts the core
		return 0, 0, fmt.Errorf("soc: bad load size %d", size)
	}
	return v, lat, nil
}

// Store implements cpu.MemSystem.
func (p *port) Store(core int, va uint32, size int, value uint32) (int, error) {
	pa, tlat, err := p.tlb.Translate(tlb.VirtAddr(va))
	if err != nil {
		return 0, err
	}
	// Memory-mapped console: a single-cycle posted write, no cache
	// involvement.
	if p.soc.Cfg.UARTAddr != 0 && uint32(pa) == p.soc.Cfg.UARTAddr {
		p.soc.UART = append(p.soc.UART, byte(value))
		return tlat + 1, nil
	}
	lat := tlat + p.access(p.l1d, va, pa, true)
	switch size {
	case 1:
		err = p.soc.Mem.StoreByte(pa, byte(value))
	case 2:
		for i := 0; i < 2 && err == nil; i++ {
			err = p.soc.Mem.StoreByte(pa+mem.PhysAddr(i), byte(value>>(8*i)))
		}
	case 4:
		err = p.soc.Mem.WriteWord(pa, value)
	default:
		//lint:ignore hotalloc impossible-size guard: built only on a malformed access, which halts the core
		err = fmt.Errorf("soc: bad store size %d", size)
	}
	if err != nil {
		return 0, err
	}
	return lat, nil
}

// L15Op implements cpu.MemSystem: the Mini-Decoder path to the cluster's
// control port. Control-register accesses take one cycle.
func (p *port) L15Op(core int, op isa.Op, operand uint32) (uint32, int, error) {
	cl := p.soc.ClusterOf(p.core).L15
	local := p.soc.localIndex(p.core)
	const lat = 1
	switch op {
	case isa.OpDEMAND:
		n := int(operand)
		if n > cl.Config().Ways {
			n = cl.Config().Ways
		}
		return 0, lat, cl.Demand(local, n)
	case isa.OpSUPPLY:
		bm, err := cl.Supply(local)
		return uint32(bm), lat, err
	case isa.OpGVSET:
		return 0, lat, cl.GVSet(local, bitmapFrom(operand, cl.Config().Ways))
	case isa.OpGVGET:
		bm, err := cl.GVGet(local)
		return uint32(bm), lat, err
	case isa.OpIPSET:
		return 0, lat, cl.IPSet(local, bitmapFrom(operand, cl.Config().Ways))
	default:
		//lint:ignore hotalloc impossible-op guard: executeDecoded routes only L1.5 ops here; the error halts the core
		return 0, 0, fmt.Errorf("soc: not an L1.5 op: %v", op)
	}
}

// bitmapFrom bounds a register operand to the cluster's way count: the
// mask registers are ζ bits wide, so operand bits past the configured ways
// do not exist in hardware and must not leak into the mask logic.
func bitmapFrom(v uint32, ways int) bitmap.Bitmap {
	return bitmap.Bitmap(v).Intersect(bitmap.FirstN(ways))
}

package soc

// Built-in demo programs for the §4.3 programming model, shared by
// cmd/l15sim and the cmd/repro cycle-accurate smoke run. The producer and
// consumer exercise the L1.5 sharing path (demand/supply/ip_set/gv_set,
// global-way hits); the sweeper streams an 8 KB array twice, overflowing
// the 4 KB L1 D$ so the second pass hits in the shared L2 — together they
// touch every level of the modelled hierarchy.

// DemoProducer writes 64 words of dependent data into its owned, inclusive
// L1.5 ways and publishes them to the cluster.
const DemoProducer = `
	# §4.3 programming model, producer side.
	li a0, 4
	demand a0          # kernel: apply 4 L1.5 ways
wait:
	supply a1
	beqz a1, wait
	ip_set a1          # inclusive: stores fill the L1.5
	li t0, 0x4000      # write 64 words of dependent data
	li t1, 64
	li t2, 1
wloop:
	sw t2, 0(t0)
	addi t0, t0, 4
	addi t2, t2, 1
	addi t1, t1, -1
	bnez t1, wloop
	gv_set a1          # publish to the cluster
	li t0, 0x7000      # raise the ready flag
	li t1, 1
	sw t1, 0(t0)
	ebreak
`

// DemoConsumer spins on the ready flag, then sums the dependent data out of
// the producer's global ways.
const DemoConsumer = `
	# §4.3 programming model, consumer side.
	li t0, 0x7000
spin:
	lw t1, 0(t0)
	beqz t1, spin
	li t0, 0x4000      # sum the dependent data
	li t1, 64
	li a0, 0
rloop:
	lw t2, 0(t0)
	add a0, a0, t2
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, rloop
	ebreak
`

// DemoSweeper streams an 8 KB region twice. The first pass misses
// everywhere and fills the L2; the working set exceeds the 4 KB private L1
// D$, so the second pass misses the L1 again and hits in the L2 — the
// access pattern that makes every hierarchy level's hit AND miss counters
// nonzero.
const DemoSweeper = `
	# Stream 8 KB twice: L1-capacity misses, L2 hits on the second pass.
	li t3, 2           # passes
pass:
	li t0, 0x10000
	li t1, 2048        # words
sweep:
	lw t2, 0(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, sweep
	addi t3, t3, -1
	bnez t3, pass
	ebreak
`

package soc

import (
	"reflect"
	"testing"

	"l15cache/internal/kernel"
)

// runUnderKernel builds a SoC with the given kernel mode, runs src on core
// 0 (others halted) and settles the SDUs, mirroring runProgram.
func runUnderKernel(t *testing.T, mode kernel.Mode, src string) *SoC {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Kernel = mode
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadProgram(0x1000, src); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPageTable(0, s.IdentityPageTable(1)); err != nil {
		t.Fatal(err)
	}
	s.StartCore(0, 0x1000, 0x8000)
	for i := 1; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	if _, err := s.Run(100000, nil); err != nil {
		t.Fatal(err)
	}
	s.SettleSDU(64)
	return s
}

// compareSoCs checks everything the flight recorder and metrics snapshots
// are derived from: per-core clocks and registers, the SDU tick counters,
// and the full tick-stamped configuration event streams.
func compareSoCs(t *testing.T, tk, ev *SoC) {
	t.Helper()
	for i := range tk.Cores {
		if tk.Cores[i].Cycles != ev.Cores[i].Cycles {
			t.Errorf("core %d cycles: ticked %d, events %d",
				i, tk.Cores[i].Cycles, ev.Cores[i].Cycles)
		}
	}
	if tk.Cores[0].Regs != ev.Cores[0].Regs {
		t.Error("core 0 register files diverged")
	}
	for i := range tk.Clusters {
		a, b := tk.Clusters[i].L15, ev.Clusters[i].L15
		if a.Ticks() != b.Ticks() {
			t.Errorf("cluster %d SDU ticks: ticked %d, events %d", i, a.Ticks(), b.Ticks())
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Errorf("cluster %d config events diverged:\nticked %+v\nevents %+v",
				i, a.Events, b.Events)
		}
		if !reflect.DeepEqual(a.Stats, b.Stats) {
			t.Errorf("cluster %d L1.5 stats diverged:\n%+v\n%+v", i, a.Stats, b.Stats)
		}
	}
}

// The SDU-heavy path: demand, poll supply, publish with gv_set. The events
// kernel skips the idle SDU stretches between the Walloc grants; every
// tick-stamped event must still match the ticked run.
func TestKernelsAgreeOnDemandProgram(t *testing.T) {
	src := `
		li a0, 4
		demand a0
	wait:
		supply a1
		beqz a1, wait
		gv_set a1
		li a0, 1
		demand a0
		nop
		nop
		ebreak
	`
	tk := runUnderKernel(t, kernel.Ticked, src)
	ev := runUnderKernel(t, kernel.Events, src)
	compareSoCs(t, tk, ev)
	if len(ev.Clusters[0].L15.Events) == 0 {
		t.Fatal("program produced no SDU events; test is vacuous")
	}
}

// The no-SDU path: a pure cache-hit loop never wakes the Walloc, so the
// events kernel skips every SDU cycle of the run. The clocks must still
// settle to identical values.
func TestKernelsAgreeOnPureHitLoop(t *testing.T) {
	src := `
		li s0, 0x4000
		li t0, 0
		li t1, 2048
	loop:
		add t2, s0, t0
		lw t3, 0(t2)
		addi t0, t0, 64
		bne t0, t1, loop
		ebreak
	`
	tk := runUnderKernel(t, kernel.Ticked, src)
	ev := runUnderKernel(t, kernel.Events, src)
	compareSoCs(t, tk, ev)
	if len(ev.Clusters[0].L15.Events) != 0 {
		t.Fatalf("hit loop produced SDU events: %+v", ev.Clusters[0].L15.Events)
	}
	if ev.Clusters[0].L15.Ticks() == 0 {
		t.Fatal("SDU clock never advanced; skip path untested")
	}
}

package soc

import (
	"testing"

	"l15cache/internal/cpu"
)

func newSoC(t *testing.T) *SoC {
	t.Helper()
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero clusters accepted")
	}
	cfg = DefaultConfig()
	cfg.L2Ways = 3
	if _, err := New(cfg); err == nil {
		t.Error("bad L2 accepted")
	}
	cfg = DefaultConfig()
	cfg.MemBytes = 5
	if _, err := New(cfg); err == nil {
		t.Error("bad memory size accepted")
	}
}

func TestTopology(t *testing.T) {
	s := newSoC(t)
	if len(s.Cores) != 8 || len(s.Clusters) != 2 {
		t.Fatalf("topology: %d cores, %d clusters", len(s.Cores), len(s.Clusters))
	}
	if s.ClusterOf(0) != s.Clusters[0] || s.ClusterOf(7) != s.Clusters[1] {
		t.Error("cluster mapping broken")
	}
}

// runProgram loads src at 0x1000, binds an identity page table and runs
// core 0 until it halts.
func runProgram(t *testing.T, s *SoC, src string) *cpu.Core {
	t.Helper()
	if _, err := s.LoadProgram(0x1000, src); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPageTable(0, s.IdentityPageTable(1)); err != nil {
		t.Fatal(err)
	}
	s.StartCore(0, 0x1000, 0x8000)
	for i := 1; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	if _, err := s.Run(100000, nil); err != nil {
		t.Fatal(err)
	}
	return s.Cores[0]
}

func TestBareMetalProgram(t *testing.T) {
	s := newSoC(t)
	c := runProgram(t, s, `
		li t0, 0x4000
		li t1, 7
		sw t1, 0(t0)
		lw t2, 0(t0)
		add t2, t2, t2
		ebreak
	`)
	if c.Regs[7] != 14 {
		t.Errorf("t2 = %d, want 14", c.Regs[7])
	}
	if !c.Halted {
		t.Error("core did not halt")
	}
}

func TestCacheWarmupReducesLatency(t *testing.T) {
	s := newSoC(t)
	// Two identical loops over a small buffer: the second pass must be
	// much faster thanks to the L1 D$.
	c := runProgram(t, s, `
		li s0, 0x4000
		li s1, 0          # cold cycles
		li s2, 0          # pass counter
	pass:
		li t0, 0
		li t1, 1024
	loop:
		add t2, s0, t0
		lw t3, 0(t2)
		addi t0, t0, 64
		bne t0, t1, loop
		addi s2, s2, 1
		li t4, 2
		bne s2, t4, pass
		ebreak
	`)
	l1d := s.ports[0].l1d
	if l1d.Stats.Hits == 0 {
		t.Error("second pass should hit the L1 D$")
	}
	if l1d.Stats.Misses == 0 {
		t.Error("first pass should miss")
	}
	_ = c
}

func TestDemandSupplyOnSoC(t *testing.T) {
	s := newSoC(t)
	c := runProgram(t, s, `
		li a0, 4
		demand a0
		# Poll supply until the SDU has served the demand (4 ways =>
		# popcount comparison is overkill; wait for nonzero and settle).
	wait:
		supply a1
		beqz a1, wait
		nop
		nop
		nop
		supply a1
		ebreak
	`)
	// a1 holds a bitmap with (up to) 4 ways.
	bm := c.Regs[11]
	if bm == 0 {
		t.Fatal("supply returned empty bitmap")
	}
	ways := 0
	for i := 0; i < 32; i++ {
		if bm&(1<<i) != 0 {
			ways++
		}
	}
	if ways > 4 {
		t.Errorf("got %d ways, demanded 4", ways)
	}
}

func TestDemandUserModeTraps(t *testing.T) {
	s := newSoC(t)
	if _, err := s.LoadProgram(0x1000, "li a0, 2\ndemand a0\nebreak"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPageTable(0, s.IdentityPageTable(1)); err != nil {
		t.Fatal(err)
	}
	s.StartCore(0, 0x1000, 0x8000)
	s.Cores[0].Priv = cpu.PrivUser
	for i := 1; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	trap, err := s.Run(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trap.Kind != cpu.TrapPrivilege {
		t.Errorf("trap = %v, want privilege violation", trap.Kind)
	}
}

// TestProducerConsumerSharing runs the paper's programming model (§4.3) on
// two cores of one cluster: the producer demands ways, sets them inclusive,
// writes the dependent data and publishes it with gv_set; the consumer then
// reads the data through the L1.5 instead of the L2.
func TestProducerConsumerSharing(t *testing.T) {
	s := newSoC(t)

	producer := `
		li a0, 4
		demand a0          # kernel: apply 4 ways
	waitw:
		supply a1
		beqz a1, waitw
		ip_set a1          # owned ways inclusive: stores fill the L1.5
		# write 16 words of dependent data at 0x4000
		li t0, 0x4000
		li t1, 16
		li t2, 100
	wloop:
		sw t2, 0(t0)
		addi t0, t0, 4
		addi t2, t2, 1
		addi t1, t1, -1
		bnez t1, wloop
		gv_set a1          # publish: ways become globally visible
		# raise the flag at 0x7000 (uncached-by-L1.5 plain store)
		li t0, 0x7000
		li t1, 1
		sw t1, 0(t0)
		ebreak
	`
	consumer := `
		li t0, 0x7000
	spin:
		lw t1, 0(t0)
		beqz t1, spin
		# sum the 16 words at 0x4000
		li t0, 0x4000
		li t1, 16
		li a0, 0
	rloop:
		lw t2, 0(t0)
		add a0, a0, t2
		addi t0, t0, 4
		addi t1, t1, -1
		bnez t1, rloop
		ebreak
	`
	if _, err := s.LoadProgram(0x1000, producer); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadProgram(0x2000, consumer); err != nil {
		t.Fatal(err)
	}
	pt := s.IdentityPageTable(42)
	if err := s.SetPageTable(0, pt); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPageTable(1, pt); err != nil {
		t.Fatal(err)
	}
	s.StartCore(0, 0x1000, 0x8000)
	s.StartCore(1, 0x2000, 0x9000)
	for i := 2; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	if _, err := s.Run(1_000_000, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Cores[1].Halted {
		t.Fatal("consumer never finished")
	}
	// Σ (100..115) = 1720.
	if got := s.Cores[1].Regs[10]; got != 1720 {
		t.Errorf("consumer sum = %d, want 1720", got)
	}
	// The consumer must have been served from the producer's global ways.
	if s.Clusters[0].L15.Stats[1].GlobalHits == 0 {
		t.Error("no global hits: dependent data did not flow through the L1.5")
	}
}

// TestCrossApplicationProtection repeats the flow with different TIDs: the
// protector must block the sharing (no global hits), though memory
// correctness is preserved by the write-through hierarchy.
func TestCrossApplicationProtection(t *testing.T) {
	s := newSoC(t)
	producer := `
		li a0, 4
		demand a0
	waitw:
		supply a1
		beqz a1, waitw
		ip_set a1
		li t0, 0x4000
		li t1, 100
		sw t1, 0(t0)
		gv_set a1
		li t0, 0x7000
		li t1, 1
		sw t1, 0(t0)
		ebreak
	`
	consumer := `
		li t0, 0x7000
	spin:
		lw t1, 0(t0)
		beqz t1, spin
		li t0, 0x4000
		lw a0, 0(t0)
		ebreak
	`
	if _, err := s.LoadProgram(0x1000, producer); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadProgram(0x2000, consumer); err != nil {
		t.Fatal(err)
	}
	// Different applications: different TIDs (both identity-mapped so the
	// flag protocol still works).
	if err := s.SetPageTable(0, s.IdentityPageTable(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPageTable(1, s.IdentityPageTable(2)); err != nil {
		t.Fatal(err)
	}
	s.StartCore(0, 0x1000, 0x8000)
	s.StartCore(1, 0x2000, 0x9000)
	for i := 2; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	if _, err := s.Run(1_000_000, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Cores[1].Regs[10]; got != 100 {
		t.Errorf("consumer read %d, want 100 (memory stays authoritative)", got)
	}
	if s.Clusters[0].L15.Stats[1].GlobalHits != 0 {
		t.Error("protector failed: cross-TID global hit")
	}
}

func TestEcallHandlerOnSoC(t *testing.T) {
	s := newSoC(t)
	if _, err := s.LoadProgram(0x1000, "li a7, 9\necall\nebreak"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPageTable(0, s.IdentityPageTable(1)); err != nil {
		t.Fatal(err)
	}
	s.StartCore(0, 0x1000, 0x8000)
	for i := 1; i < len(s.Cores); i++ {
		s.Cores[i].Halted = true
	}
	var got uint32
	if _, err := s.Run(1000, func(c *cpu.Core, tr cpu.Trap) bool {
		got = c.Regs[17]
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("ecall a7 = %d", got)
	}
}

func TestSettleSDU(t *testing.T) {
	s := newSoC(t)
	cl := s.Clusters[0].L15
	cl.Demand(0, 3)
	s.SettleSDU(10)
	w, _ := cl.Supply(0)
	if w.Count() != 3 {
		t.Errorf("ways = %d after settle", w.Count())
	}
}

func TestDualIssueSoCFasterAndEquivalent(t *testing.T) {
	prog := `
		li s0, 0x4000
		li s1, 0
		li t0, 64
	loop:
		sw t0, 0(s0)
		lw t1, 0(s0)
		add s1, s1, t1
		addi s0, s0, 4
		addi t0, t0, -1
		bnez t0, loop
		ebreak
	`
	runCfg := func(cfg Config) *SoC {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadProgram(0x1000, prog); err != nil {
			t.Fatal(err)
		}
		if err := s.SetPageTable(0, s.IdentityPageTable(1)); err != nil {
			t.Fatal(err)
		}
		s.StartCore(0, 0x1000, 0x8000)
		for i := 1; i < len(s.Cores); i++ {
			s.Cores[i].Halted = true
		}
		if _, err := s.Run(1_000_000, nil); err != nil {
			t.Fatal(err)
		}
		return s
	}
	narrow := runCfg(DefaultConfig())
	wideCfg := DefaultConfig()
	wideCfg.IssueWidth = 2
	wideCfg.MemPorts = 2
	wide := runCfg(wideCfg)

	if wide.Cores[0].Regs[9] != narrow.Cores[0].Regs[9] {
		t.Errorf("architectural state differs: %d vs %d",
			wide.Cores[0].Regs[9], narrow.Cores[0].Regs[9])
	}
	if wide.Cores[0].Cycles >= narrow.Cores[0].Cycles {
		t.Errorf("dual-issue SoC not faster: %d vs %d cycles",
			wide.Cores[0].Cycles, narrow.Cores[0].Cycles)
	}
	if wide.Cores[0].Stats.DualIssued == 0 {
		t.Error("no dual-issue groups retired")
	}
}

func TestUART(t *testing.T) {
	s := newSoC(t)
	// Print "OK\n" through the console.
	runProgram(t, s, `
		li t0, 0x00ff0000
		li t1, 79          # 'O'
		sb t1, 0(t0)
		li t1, 75          # 'K'
		sb t1, 0(t0)
		li t1, 10
		sb t1, 0(t0)
		ebreak
	`)
	if got := string(s.UART); got != "OK\n" {
		t.Errorf("UART = %q, want \"OK\\n\"", got)
	}
	// The console is not memory: nothing lands at the address.
	w, err := s.Mem.ReadWord(0x00ff0000)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Errorf("UART writes leaked to memory: %#x", w)
	}
}

func TestUARTDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UARTAddr = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runProgram(t, s, `
		li t0, 0x00ff0000
		li t1, 65
		sb t1, 0(t0)
		ebreak
	`)
	if len(s.UART) != 0 {
		t.Error("disabled UART captured output")
	}
	// With the device disabled the store is an ordinary memory write.
	b, err := s.Mem.LoadByte(0x00ff0000)
	if err != nil {
		t.Fatal(err)
	}
	if b != 65 {
		t.Errorf("memory byte = %d", b)
	}
}

func TestByteHalfwordAccessOnSoC(t *testing.T) {
	s := newSoC(t)
	c := runProgram(t, s, `
		li t0, 0x4000
		li t1, -2
		sh t1, 0(t0)
		sb t1, 4(t0)
		lh t2, 0(t0)
		lhu t3, 0(t0)
		lb t4, 4(t0)
		lbu t5, 4(t0)
		ebreak
	`)
	if c.Regs[7] != 0xfffffffe || c.Regs[28] != 0xfffe {
		t.Errorf("halfword: %#x %#x", c.Regs[7], c.Regs[28])
	}
	if c.Regs[29] != 0xfffffffe || c.Regs[30] != 0xfe {
		t.Errorf("byte: %#x %#x", c.Regs[29], c.Regs[30])
	}
}

func TestGVRoundTripOnSoC(t *testing.T) {
	s := newSoC(t)
	c := runProgram(t, s, `
		li a0, 3
		demand a0
	wait:
		supply a1
		beqz a1, wait
		gv_set a1
		gv_get a2
		ip_set a1
		ebreak
	`)
	if c.Regs[12] == 0 || c.Regs[12] != c.Regs[11] {
		t.Errorf("gv_get = %#x, want supply bitmap %#x", c.Regs[12], c.Regs[11])
	}
}

func TestLoadProgramErrors(t *testing.T) {
	s := newSoC(t)
	if _, err := s.LoadProgram(0x1000, "frobnicate"); err == nil {
		t.Error("bad assembly accepted")
	}
	if _, err := s.LoadProgram(0xffffff0, "nop\nnop\nnop\nnop\nnop"); err == nil {
		t.Error("overflowing program accepted")
	}
	if err := s.SetPageTable(99, s.IdentityPageTable(1)); err == nil {
		t.Error("bad core accepted")
	}
}

// Package cache implements the generic set-associative, tree-PLRU cache
// used for the private L1 I$/D$ and the shared L2 of the simulated SoC, and
// reused (with way masks) by the L1.5 Cache model. Caches are tag-only: the
// hierarchy is write-through with physical memory authoritative for data,
// so a cache models *timing* — hit/miss behaviour, replacement, and
// invalidation.
package cache

import (
	"fmt"
	"math/bits"

	"l15cache/internal/bitmap"
	"l15cache/internal/metrics"
)

// Stats counts cache events.
type Stats struct {
	Hits, Misses, Evictions, Writebacks uint64
}

// HitRate returns hits / (hits+misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a set-associative tag store with tree-PLRU replacement.
type Cache struct {
	sets      int
	ways      int
	lineBytes int
	hitLat    int

	// The tag store is flat, struct-of-arrays style: entry (set, way)
	// lives at index set*ways+way. One contiguous block per field keeps
	// the per-access probe on a single cache line instead of chasing a
	// row pointer per set.
	tag   []uint32
	valid []bool
	dirty []bool
	plru  []uint64 // per-set tree bits (ways-1 internal nodes)

	Stats Stats
}

// New builds a cache of totalBytes capacity with the given associativity
// and line size. Ways must be a power of two (the tree-PLRU requirement);
// sets must come out a power of two as well.
func New(totalBytes, ways, lineBytes, hitLatency int) (*Cache, error) {
	if ways <= 0 || bits.OnesCount(uint(ways)) != 1 {
		return nil, fmt.Errorf("cache: ways %d must be a power of two", ways)
	}
	if ways > bitmap.MaxWays {
		return nil, fmt.Errorf("cache: ways %d exceeds %d", ways, bitmap.MaxWays)
	}
	if lineBytes <= 0 || bits.OnesCount(uint(lineBytes)) != 1 {
		return nil, fmt.Errorf("cache: line size %d must be a power of two", lineBytes)
	}
	if totalBytes <= 0 || totalBytes%(ways*lineBytes) != 0 {
		return nil, fmt.Errorf("cache: capacity %d not divisible by %d ways × %dB lines",
			totalBytes, ways, lineBytes)
	}
	sets := totalBytes / (ways * lineBytes)
	if bits.OnesCount(uint(sets)) != 1 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	if hitLatency < 0 {
		return nil, fmt.Errorf("cache: negative hit latency")
	}
	return &Cache{
		sets:      sets,
		ways:      ways,
		lineBytes: lineBytes,
		hitLat:    hitLatency,
		tag:       make([]uint32, sets*ways),
		valid:     make([]bool, sets*ways),
		dirty:     make([]bool, sets*ways),
		plru:      make([]uint64, sets),
	}, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return c.lineBytes }

// HitLatency returns the hit latency in cycles.
func (c *Cache) HitLatency() int { return c.hitLat }

// AllWays is the mask selecting the whole associativity.
func (c *Cache) AllWays() bitmap.Bitmap { return bitmap.FirstN(c.ways) }

// Split decomposes an address into set index and tag.
func (c *Cache) Split(addr uint32) (set int, tag uint32) {
	line := addr / uint32(c.lineBytes)
	return int(line) & (c.sets - 1), line >> uint(bits.TrailingZeros(uint(c.sets)))
}

// Probe looks the line up among the allowed ways without modifying any
// state. It returns the hit way or -1. The mask is iterated bit by bit —
// no slice is materialised on this per-access path.
func (c *Cache) Probe(set int, tag uint32, allowed bitmap.Bitmap) int {
	base := set * c.ways
	for v := uint64(allowed); v != 0; {
		w := bits.TrailingZeros64(v)
		if w >= c.ways {
			break
		}
		v &^= 1 << uint(w)
		if c.valid[base+w] && c.tag[base+w] == tag {
			return w
		}
	}
	return -1
}

// AccessResult describes one cache access.
type AccessResult struct {
	Hit       bool
	Way       int  // way hit or filled; -1 if no way was allowed
	Evicted   bool // a valid line was replaced
	Writeback bool // the replaced line was dirty
}

// Access performs a read or write of the line containing addr, restricted
// to the allowed ways (use AllWays for a conventional cache). On a miss
// with at least one allowed way, the PLRU victim among the allowed ways is
// filled. Writes mark the line dirty (the caller decides whether the level
// is write-through). A miss with an empty allowed mask performs no fill:
// the access bypasses this level.
func (c *Cache) Access(set int, tag uint32, write bool, allowed bitmap.Bitmap) AccessResult {
	base := set * c.ways
	if w := c.Probe(set, tag, allowed); w >= 0 {
		c.Stats.Hits++
		c.touch(set, w)
		if write {
			c.dirty[base+w] = true
		}
		return AccessResult{Hit: true, Way: w}
	}
	c.Stats.Misses++
	if allowed.Intersect(c.AllWays()).IsEmpty() {
		return AccessResult{Way: -1}
	}
	w := c.victim(set, allowed)
	res := AccessResult{Way: w}
	if c.valid[base+w] {
		res.Evicted = true
		c.Stats.Evictions++
		if c.dirty[base+w] {
			res.Writeback = true
			c.Stats.Writebacks++
		}
	}
	c.tag[base+w] = tag
	c.valid[base+w] = true
	c.dirty[base+w] = write
	c.touch(set, w)
	return res
}

// touch updates the tree-PLRU bits so w becomes most-recently used: every
// internal node on the path is pointed *away* from w.
func (c *Cache) touch(set, w int) {
	node := 0
	span := c.ways
	for span > 1 {
		span /= 2
		left := w%(span*2) < span
		if left {
			// Point at the right subtree.
			c.plru[set] |= 1 << uint(node)
			node = node*2 + 1
		} else {
			c.plru[set] &^= 1 << uint(node)
			node = node*2 + 2
		}
	}
}

// victim walks the PLRU tree toward the least-recently-used way, but only
// descends into subtrees that contain at least one allowed way (the masked
// replacement the L1.5 ways need). Invalid allowed ways are preferred
// outright.
func (c *Cache) victim(set int, allowed bitmap.Bitmap) int {
	base := set * c.ways
	for v := uint64(allowed); v != 0; {
		w := bits.TrailingZeros64(v)
		if w >= c.ways {
			break
		}
		v &^= 1 << uint(w)
		if !c.valid[base+w] {
			return w
		}
	}
	node, lo, span := 0, 0, c.ways
	for span > 1 {
		span /= 2
		goRight := c.plru[set]&(1<<uint(node)) != 0
		leftHas := hasAllowed(allowed, lo, span, c.ways)
		rightHas := hasAllowed(allowed, lo+span, span, c.ways)
		if goRight && rightHas || !leftHas {
			lo += span
			node = node*2 + 2
		} else {
			node = node*2 + 1
		}
	}
	return lo
}

// hasAllowed reports whether any way in [lo, lo+span) is allowed —
// a mask test rather than a per-way loop.
func hasAllowed(allowed bitmap.Bitmap, lo, span, ways int) bool {
	if hi := lo + span; hi < ways {
		ways = hi
	}
	if lo >= ways {
		return false
	}
	window := bitmap.FirstN(ways - lo)
	return uint64(allowed)>>uint(lo)&uint64(window) != 0
}

// FlushWay invalidates every line in the given way and returns how many
// valid lines were dropped and how many of them were dirty (requiring a
// write-back in a write-back hierarchy). The dirty count feeds the L1.5's
// revocation cost accounting.
func (c *Cache) FlushWay(w int) (valid, dirty int) {
	if w < 0 || w >= c.ways {
		return 0, 0
	}
	for s := 0; s < c.sets; s++ {
		i := s*c.ways + w
		if c.valid[i] {
			valid++
			if c.dirty[i] {
				dirty++
				c.Stats.Writebacks++
			}
			c.valid[i] = false
			c.dirty[i] = false
		}
	}
	return valid, dirty
}

// InvalidateWay drops every line in the given way (used when the L1.5
// Walloc reassigns a way to another core). It returns the number of valid
// lines dropped.
func (c *Cache) InvalidateWay(w int) int {
	if w < 0 || w >= c.ways {
		return 0
	}
	n := 0
	for s := 0; s < c.sets; s++ {
		i := s*c.ways + w
		if c.valid[i] {
			c.valid[i] = false
			c.dirty[i] = false
			n++
		}
	}
	return n
}

// PublishMetrics registers the cache's counters with the registry under the
// given prefix (e.g. "soc.l2" -> "soc.l2.hits"). The Stats block stays the
// live store — it is copied into the registry only when a snapshot is
// taken, so the single-threaded access hot path pays no atomic traffic. The
// Stats field remains the compatibility accessor for existing callers.
func (c *Cache) PublishMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	r.RegisterCollector(func(r *metrics.Registry) {
		r.Counter(prefix + ".hits").Store(c.Stats.Hits)
		r.Counter(prefix + ".misses").Store(c.Stats.Misses)
		r.Counter(prefix + ".evictions").Store(c.Stats.Evictions)
		r.Counter(prefix + ".writebacks").Store(c.Stats.Writebacks)
	})
}

// InvalidateAll clears the whole cache.
func (c *Cache) InvalidateAll() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
	for s := range c.plru {
		c.plru[s] = 0
	}
}

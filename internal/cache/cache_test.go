package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l15cache/internal/bitmap"
)

func mustNew(t *testing.T, total, ways, line, lat int) *Cache {
	t.Helper()
	c, err := New(total, ways, line, lat)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	cases := []struct{ total, ways, line, lat int }{
		{4096, 3, 64, 1},  // non-power-of-two ways
		{4096, 0, 64, 1},  // zero ways
		{4096, 2, 48, 1},  // non-power-of-two line
		{4000, 2, 64, 1},  // capacity not divisible
		{4096, 2, 64, -1}, // negative latency
		{6144, 2, 64, 1},  // sets = 48, not a power of two
		{4096, 128, 64, 1},
	}
	for _, c := range cases {
		if _, err := New(c.total, c.ways, c.line, c.lat); err == nil {
			t.Errorf("New(%v) accepted", c)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, 4096, 2, 64, 1) // 4KB, 2-way, 64B lines => 32 sets
	if c.Sets() != 32 || c.Ways() != 2 || c.LineBytes() != 64 || c.HitLatency() != 1 {
		t.Errorf("geometry: %d sets, %d ways", c.Sets(), c.Ways())
	}
	set, tag := c.Split(0)
	if set != 0 || tag != 0 {
		t.Errorf("Split(0) = %d,%d", set, tag)
	}
	// Address 64 is the next line: set 1, same tag.
	set, tag = c.Split(64)
	if set != 1 || tag != 0 {
		t.Errorf("Split(64) = %d,%d", set, tag)
	}
	// Address 32*64 wraps to set 0, tag 1.
	set, tag = c.Split(32 * 64)
	if set != 0 || tag != 1 {
		t.Errorf("Split(2048) = %d,%d", set, tag)
	}
}

func TestHitMiss(t *testing.T) {
	c := mustNew(t, 4096, 2, 64, 1)
	all := c.AllWays()
	set, tag := c.Split(0x100)

	res := c.Access(set, tag, false, all)
	if res.Hit {
		t.Error("cold access hit")
	}
	res = c.Access(set, tag, false, all)
	if !res.Hit {
		t.Error("second access missed")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestEvictionAndWriteback(t *testing.T) {
	c := mustNew(t, 4096, 2, 64, 1) // 2 ways per set
	all := c.AllWays()
	set := 0
	// Fill both ways of set 0, the second with a write (dirty).
	c.Access(set, 1, false, all)
	c.Access(set, 2, true, all)
	// Third tag evicts the LRU line (tag 1, clean).
	res := c.Access(set, 3, false, all)
	if !res.Evicted || res.Writeback {
		t.Errorf("expected clean eviction: %+v", res)
	}
	// Tag 2 (dirty) is now LRU; another fill must write back.
	res = c.Access(set, 4, false, all)
	if !res.Evicted || !res.Writeback {
		t.Errorf("expected dirty writeback: %+v", res)
	}
	if c.Stats.Evictions != 2 || c.Stats.Writebacks != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestPLRUOrdering(t *testing.T) {
	c := mustNew(t, 16*64, 4, 64, 1) // 4 ways, 4 sets
	all := c.AllWays()
	set := 0
	// Fill ways with tags 1..4, touch 1 again, then insert 5: the victim
	// must not be tag 1 (recently used).
	for tag := uint32(1); tag <= 4; tag++ {
		c.Access(set, tag, false, all)
	}
	if res := c.Access(set, 1, false, all); !res.Hit {
		t.Fatal("tag 1 should still be resident")
	}
	c.Access(set, 5, false, all)
	if res := c.Access(set, 1, false, all); !res.Hit {
		t.Error("PLRU evicted the most recently used line")
	}
}

func TestMaskedAccess(t *testing.T) {
	c := mustNew(t, 16*64, 4, 64, 1)
	owned := bitmap.FromWays(1, 2)
	set := 0

	// Fills restricted to ways 1 and 2.
	for tag := uint32(1); tag <= 3; tag++ {
		res := c.Access(set, tag, false, owned)
		if res.Way != 1 && res.Way != 2 {
			t.Errorf("fill landed in way %d outside mask", res.Way)
		}
	}
	// A line cached in way 1 must be invisible through a disjoint mask.
	c.Access(set, 10, false, bitmap.FromWays(1))
	if w := c.Probe(set, 10, bitmap.FromWays(0, 3)); w != -1 {
		t.Errorf("probe through disjoint mask found way %d", w)
	}
	if w := c.Probe(set, 10, bitmap.FromWays(1)); w != 1 {
		t.Errorf("probe through owning mask = %d", w)
	}
	// Empty mask: miss, no fill.
	res := c.Access(set, 99, false, 0)
	if res.Hit || res.Way != -1 {
		t.Errorf("empty-mask access = %+v", res)
	}
}

func TestInvalidateWay(t *testing.T) {
	c := mustNew(t, 16*64, 4, 64, 1)
	all := c.AllWays()
	for s := 0; s < 4; s++ {
		c.Access(s, 7, false, bitmap.FromWays(2))
	}
	if n := c.InvalidateWay(2); n != 4 {
		t.Errorf("invalidated %d lines, want 4", n)
	}
	if w := c.Probe(0, 7, all); w != -1 {
		t.Error("line survived way invalidation")
	}
	if n := c.InvalidateWay(99); n != 0 {
		t.Errorf("out-of-range way invalidated %d lines", n)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := mustNew(t, 16*64, 4, 64, 1)
	all := c.AllWays()
	c.Access(0, 1, true, all)
	c.InvalidateAll()
	if res := c.Access(0, 1, false, all); res.Hit {
		t.Error("line survived full invalidation")
	}
}

// Property: with an all-ways mask, a working set no larger than the
// associativity of one set never evicts itself (PLRU keeps it resident).
func TestQuickResidentWorkingSet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := New(64*64, 4, 64, 1)
		if err != nil {
			return false
		}
		all := c.AllWays()
		set := r.Intn(c.Sets())
		tags := []uint32{10, 20, 30, 40}
		for _, tag := range tags {
			c.Access(set, tag, false, all)
		}
		// Re-access in random order many times: all must hit.
		for i := 0; i < 50; i++ {
			tag := tags[r.Intn(len(tags))]
			if !c.Access(set, tag, false, all).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: fills always land inside the allowed mask, and lines filled
// through one mask are never visible through a disjoint mask.
func TestQuickMaskIsolation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := New(64*64, 8, 64, 1)
		if err != nil {
			return false
		}
		maskA := bitmap.FromWays(0, 1, 2)
		maskB := bitmap.FromWays(5, 6)
		for i := 0; i < 200; i++ {
			set := r.Intn(c.Sets())
			tag := uint32(r.Intn(10))
			mask := maskA
			if r.Intn(2) == 1 {
				mask = maskB
			}
			res := c.Access(set, tag, r.Intn(2) == 1, mask)
			if res.Way >= 0 && !mask.Has(res.Way) {
				return false
			}
		}
		// Cross-visibility check: nothing visible through mask B may
		// live in mask A's ways.
		for set := 0; set < c.Sets(); set++ {
			for tag := uint32(0); tag < 10; tag++ {
				if w := c.Probe(set, tag, maskB); w >= 0 && !maskB.Has(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hit rate accounting is consistent (hits+misses equals accesses).
func TestQuickStatsConsistent(t *testing.T) {
	f := func(seed int64, nr uint8) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := New(4096, 2, 64, 1)
		if err != nil {
			return false
		}
		n := int(nr)%200 + 1
		all := c.AllWays()
		for i := 0; i < n; i++ {
			set := r.Intn(c.Sets())
			c.Access(set, uint32(r.Intn(8)), false, all)
		}
		total := c.Stats.Hits + c.Stats.Misses
		if total != uint64(n) {
			return false
		}
		hr := c.Stats.HitRate()
		return hr >= 0 && hr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

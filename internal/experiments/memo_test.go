package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"l15cache/internal/flight"
	"l15cache/internal/memo"
	"l15cache/internal/metrics"
	"l15cache/internal/runner"
)

// The memo soundness gate at the experiments level: every sweep family
// must produce byte-identical artifacts with the cache off, cold and
// warm, at differing worker counts — a cache hit must be observationally
// indistinguishable from a recomputation (DESIGN.md §12).

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestMemoMakespanByteIdentity runs a small utilisation sweep memo-off,
// memo-cold and memo-warm and byte-compares the three results.
func TestMemoMakespanByteIdentity(t *testing.T) {
	run := func(cache *memo.Cache, workers int) []byte {
		cfg := DefaultMakespanConfig()
		cfg.DAGs = 8
		cfg.Instances = 2
		cfg.Run = runner.Options{Workers: workers, Memo: cache}
		s, err := SweepUtilization(context.Background(), cfg, []float64{0.4, 0.8})
		if err != nil {
			t.Fatal(err)
		}
		return marshal(t, s)
	}
	off := run(nil, 1)
	reg := metrics.NewRegistry()
	cache, err := memo.New(memo.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(run(cache, 3), off) {
		t.Error("memo-cold sweep differs from memo-off sweep")
	}
	if !bytes.Equal(run(cache, 2), off) {
		t.Error("memo-warm sweep differs from memo-off sweep")
	}
	snap := reg.Snapshot()
	if snap.Counters["memo.hits"] == 0 || snap.Counters["memo.stores"] == 0 {
		t.Errorf("cache never exercised: %v", snap.Counters)
	}
}

// TestMemoCaseStudyByteIdentity covers the periodic-simulator path
// (rtsim fingerprints) the makespan test does not reach.
func TestMemoCaseStudyByteIdentity(t *testing.T) {
	run := func(cache *memo.Cache, workers int) []byte {
		cfg := DefaultCaseStudyConfig(8)
		cfg.Trials = 3
		cfg.Tasks = 4
		cfg.Run = runner.Options{Workers: workers, Memo: cache}
		res, err := RunCaseStudy(context.Background(), cfg, []float64{0.5})
		if err != nil {
			t.Fatal(err)
		}
		return marshal(t, res)
	}
	off := run(nil, 1)
	reg := metrics.NewRegistry()
	cache, err := memo.New(memo.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(run(cache, 2), off) {
		t.Error("memo-cold case study differs from memo-off")
	}
	if !bytes.Equal(run(cache, 1), off) {
		t.Error("memo-warm case study differs from memo-off")
	}
	if got := reg.Snapshot().Counters["memo.hits"]; got != 3 {
		t.Errorf("warm run hits = %d, want 3", got)
	}
}

// TestMemoZetaKappaShareEntries pins the shared "prop-makespan" domain:
// the ζ sweep at ζ=16 and the κ sweep at κ=2048 (so ζ=32768/2048=16)
// evaluate the same trial function, so the second sweep must be served
// entirely from the first sweep's entries.
func TestMemoZetaKappaShareEntries(t *testing.T) {
	reg := metrics.NewRegistry()
	cache, err := memo.New(memo.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMakespanConfig()
	cfg.DAGs = 6
	cfg.Run = runner.Options{Workers: 2, Memo: cache}
	zres, err := AblateZeta(context.Background(), cfg, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	kres, err := AblateWayBytes(context.Background(), cfg, []int64{2048})
	if err != nil {
		t.Fatal(err)
	}
	if zres.Points[0].Value != kres.Points[0].Value {
		t.Errorf("ζ=16 and κ=2KB disagree: %v vs %v",
			zres.Points[0].Value, kres.Points[0].Value)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["memo.hits"]; got != 6 {
		t.Errorf("κ sweep hits = %d, want all 6 from the ζ sweep", got)
	}
}

// TestMemoRecorderDisables pins the observability carve-out: a config
// carrying a flight recorder must not be memoized (a hit would skip the
// event stream), which taskSetTrialFingerprint signals with nil.
func TestMemoRecorderDisables(t *testing.T) {
	cfg := DefaultCaseStudyConfig(8)
	set := cfg.Set
	if fp := taskSetTrialFingerprint("casestudy", set, cfg.RT); fp == nil {
		t.Fatal("recorder-free config not memoizable")
	}
	rec := cfg.RT
	rec.Recorder = flight.New()
	if fp := taskSetTrialFingerprint("casestudy", set, rec); fp != nil {
		t.Error("recorder-bearing config produced a fingerprint")
	}
}

package experiments

import (
	"context"
	"strings"
	"testing"

	"l15cache/internal/rtsim"
	"l15cache/internal/workload"
)

func TestRunCaseStudySmall(t *testing.T) {
	cfg := DefaultCaseStudyConfig(8)
	cfg.Trials = 4
	res, err := RunCaseStudy(context.Background(), cfg, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	for _, kind := range CaseStudySystems() {
		v := pt.Success[kind.String()]
		if v < 0 || v > 1 {
			t.Errorf("%v success = %g", kind, v)
		}
	}
	out := res.Format()
	for _, want := range []string{"Fig.8", "Prop", "CMP|Shared-L1", "50%"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "utilization,prop,") {
		t.Errorf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

func TestRunCaseStudyErrors(t *testing.T) {
	cfg := DefaultCaseStudyConfig(8)
	cfg.Trials = 0
	if _, err := RunCaseStudy(context.Background(), cfg, []float64{0.5}); err == nil {
		t.Error("zero trials accepted")
	}
	cfg = DefaultCaseStudyConfig(0)
	if _, err := RunCaseStudy(context.Background(), cfg, []float64{0.5}); err == nil {
		t.Error("zero cores accepted")
	}
	// Tasks defaults to Cores when unset.
	cfg = DefaultCaseStudyConfig(8)
	cfg.Tasks = 0
	cfg.Trials = 1
	if _, err := RunCaseStudy(context.Background(), cfg, []float64{0.5}); err != nil {
		t.Errorf("default task count failed: %v", err)
	}
}

func TestRunSideEffectsSmall(t *testing.T) {
	cfg := SideEffectsConfig{
		Trials: 2,
		Seed:   1,
		RT:     rtsim.DefaultConfig(),
		Set:    workload.DefaultTaskSetParams(),
	}
	pts, err := RunSideEffects(context.Background(), cfg, []int{8}, []float64{0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Label() != "8c|80%" {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].WayUtilization <= 0 || pts[0].WayUtilization > 1 {
		t.Errorf("utilisation = %g", pts[0].WayUtilization)
	}
	out := FormatSideEffects(pts)
	if !strings.Contains(out, "8c|80%") || !strings.Contains(out, "φ") {
		t.Errorf("format: %q", out)
	}
	cfg.Trials = 0
	if _, err := RunSideEffects(context.Background(), cfg, []int{8}, []float64{0.8}); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestSortedSystems(t *testing.T) {
	pt := MakespanPoint{Avg: map[string]float64{"a": 3, "b": 1, "c": 2}}
	got := pt.SortedSystems()
	if len(got) != 3 || got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Errorf("SortedSystems = %v", got)
	}
}

func TestWorstGainMatchesDefinition(t *testing.T) {
	s := &MakespanSweep{
		Points: []MakespanPoint{
			{Worst: map[string]float64{SysProp: 0.8, SysCMPL1: 1.0}},
			{Worst: map[string]float64{SysProp: 0.6, SysCMPL1: 0.8}},
		},
	}
	// (0.2/1.0 + 0.2/0.8)/2 = (0.2 + 0.25)/2 = 0.225.
	if got := s.WorstGain(SysCMPL1); got < 0.224 || got > 0.226 {
		t.Errorf("WorstGain = %g", got)
	}
	g := &MakespanSweep{
		Points: []MakespanPoint{
			{Avg: map[string]float64{SysProp: 0.9, SysCMPL1: 1.0}},
		},
	}
	if got := g.Gain(SysCMPL1); got < 0.099 || got > 0.101 {
		t.Errorf("Gain = %g", got)
	}
}

// Package experiments contains one typed harness per table and figure of
// the paper's evaluation (§5): the makespan comparison (Fig. 7, Tab. 2),
// the case study (Fig. 8(a,b)), the side-effects analysis (Fig. 8(c)),
// the acceptance-ratio analysis (§4.2) and the hardware overhead (§5.4).
// Each harness returns structured rows and can render itself as a text
// table or CSV, so the cmd/ tools and the benchmark suite print exactly
// the series the paper reports.
//
// Every randomized sweep runs on the internal/runner harness: trials
// execute on a bounded worker pool, each seeded from the sweep's root
// seed and its trial index only, so published numbers are bit-identical
// at any -workers setting and interrupted sweeps resume from a
// -checkpoint file. Each harness config embeds runner.Options as its Run
// field to expose those knobs.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"l15cache/internal/kernel"
	"l15cache/internal/runner"
	"l15cache/internal/sched"
	"l15cache/internal/schedsim"
	"l15cache/internal/stats"
	"l15cache/internal/workload"
)

// Systems compared in the makespan experiments, in report order.
const (
	SysProp  = "Prop"
	SysCMPL1 = "CMP|L1"
	SysCMPL2 = "CMP|L2"
)

// MakespanConfig configures the Fig. 7 / Tab. 2 experiment.
type MakespanConfig struct {
	DAGs      int   // DAG tasks per parameter point (500 in the paper)
	Instances int   // instances per DAG (10; the first is cold)
	Cores     int   // m (8)
	Zeta      int   // ζ L1.5 ways (16)
	WayBytes  int64 // κ (2 KB)
	Seed      int64 // root RNG seed (per-DAG seeds derive from it)
	Base      workload.SynthParams
	Run       runner.Options // worker pool / checkpoint settings
	Kernel    kernel.Mode    // simulator kernel (events by default)
}

// DefaultMakespanConfig mirrors §5.1 with the paper's defaults.
func DefaultMakespanConfig() MakespanConfig {
	return MakespanConfig{
		DAGs:      500,
		Instances: 10,
		Cores:     8,
		Zeta:      schedsim.DefaultZeta,
		WayBytes:  schedsim.DefaultWayBytes,
		Seed:      1,
		Base:      workload.DefaultSynthParams(),
	}
}

// MakespanPoint is the outcome of one parameter value: the per-system mean
// of the deadline-normalised average makespan (Fig. 7's metric before
// subplot normalisation) and of the deadline-normalised worst-case makespan
// (Tab. 2's metric).
type MakespanPoint struct {
	Param float64
	Avg   map[string]float64
	Worst map[string]float64
}

// MakespanSweep is one subplot of Fig. 7 plus the matching third of Tab. 2.
type MakespanSweep struct {
	Name   string // "U", "p" or "cpr"
	Points []MakespanPoint

	// NormAvg holds Avg normalised so the largest value across the sweep
	// is 1, matching Fig. 7's "normalised by the highest value observed".
	NormAvg []MakespanPoint
}

// Systems returns the system names present in the sweep, report order.
func (s *MakespanSweep) Systems() []string { return []string{SysProp, SysCMPL1, SysCMPL2} }

// dagResult carries one DAG's per-system makespans. Fields are exported
// so the runner can checkpoint a trial as JSON.
type dagResult struct {
	Avg   map[string]float64 `json:"avg"`   // mean makespan over instances, / T
	Worst map[string]float64 `json:"worst"` // max makespan over instances, / T
}

// runPoint evaluates one parameter point: cfg.DAGs random tasks, each run
// for cfg.Instances instances per system, fanned out on the runner.
func runPoint(ctx context.Context, cfg MakespanConfig, p workload.SynthParams, name string, pointSeed int64) (MakespanPoint, error) {
	out := MakespanPoint{
		Avg:   map[string]float64{},
		Worst: map[string]float64{},
	}
	results, err := runner.Map(ctx, runner.Config{
		Name:        name,
		RootSeed:    pointSeed,
		Options:     cfg.Run,
		Fingerprint: makespanFingerprint(cfg, p),
	}, cfg.DAGs, func(_ context.Context, s runner.Shard) (dagResult, error) {
		return runOneDAG(cfg, p, s.Seed)
	})
	if err != nil {
		return out, err
	}

	// Index-ordered reduction: fold the trials in shard order so the
	// floating-point sums cannot depend on completion order.
	sums := map[string]float64{}
	worsts := map[string]float64{}
	for _, r := range results {
		for sys, v := range r.Avg {
			sums[sys] += v
		}
		for sys, v := range r.Worst {
			worsts[sys] += v
		}
	}
	for sys, v := range sums {
		out.Avg[sys] = v / float64(cfg.DAGs)
	}
	for sys, v := range worsts {
		out.Worst[sys] = v / float64(cfg.DAGs)
	}
	return out, nil
}

func runOneDAG(cfg MakespanConfig, p workload.SynthParams, seed int64) (dagResult, error) {
	r := rand.New(rand.NewSource(seed))
	task, err := workload.Synthetic(r, p)
	if err != nil {
		return dagResult{}, err
	}
	res := dagResult{
		Avg:   map[string]float64{},
		Worst: map[string]float64{},
	}
	opt := schedsim.Options{Cores: cfg.Cores, Instances: cfg.Instances, Kernel: cfg.Kernel}

	// Proposed: Algorithm 1 priorities + ETM communication.
	prop, err := schedsim.NewProposed(task.Clone(), cfg.Zeta, cfg.WayBytes)
	if err != nil {
		return dagResult{}, err
	}
	if err := record(&res, task.Period, SysProp, prop.Alloc, prop, opt); err != nil {
		return dagResult{}, err
	}

	// Baselines: longest-path-first priorities, conventional caches.
	for _, plat := range []schedsim.Platform{schedsim.CMPL1(), schedsim.CMPL2()} {
		alloc, err := sched.LongestPathFirst(task.Clone())
		if err != nil {
			return dagResult{}, err
		}
		if err := record(&res, task.Period, plat.Name(), alloc, plat, opt); err != nil {
			return dagResult{}, err
		}
	}
	return res, nil
}

func record(res *dagResult, period float64, name string, alloc *sched.Result, plat schedsim.Platform, opt schedsim.Options) error {
	st, err := schedsim.Run(alloc, plat, opt)
	if err != nil {
		return err
	}
	ms := schedsim.Makespans(st)
	res.Avg[name] = stats.Mean(ms) / period
	res.Worst[name] = stats.Max(ms) / period
	return nil
}

// SweepUtilization reproduces Fig. 7(a) / Tab. 2 left: U_i from values
// (paper: 0.2..1.0).
func SweepUtilization(ctx context.Context, cfg MakespanConfig, values []float64) (*MakespanSweep, error) {
	return sweep(ctx, cfg, "U", values, func(p *workload.SynthParams, v float64) {
		p.Utilization = v
	})
}

// SweepWidth reproduces Fig. 7(b) / Tab. 2 middle: p from values (paper:
// 9..21).
func SweepWidth(ctx context.Context, cfg MakespanConfig, values []float64) (*MakespanSweep, error) {
	return sweep(ctx, cfg, "p", values, func(p *workload.SynthParams, v float64) {
		p.MaxWidth = int(v)
	})
}

// SweepCPR reproduces Fig. 7(c) / Tab. 2 right: cpr from values (paper:
// 0.1..0.5).
func SweepCPR(ctx context.Context, cfg MakespanConfig, values []float64) (*MakespanSweep, error) {
	return sweep(ctx, cfg, "cpr", values, func(p *workload.SynthParams, v float64) {
		p.CPR = v
	})
}

func sweep(ctx context.Context, cfg MakespanConfig, name string, values []float64, set func(*workload.SynthParams, float64)) (*MakespanSweep, error) {
	if cfg.DAGs <= 0 || cfg.Instances <= 0 {
		return nil, fmt.Errorf("experiments: need positive DAGs and Instances")
	}
	out := &MakespanSweep{Name: name}
	for i, v := range values {
		p := cfg.Base
		set(&p, v)
		pt, err := runPoint(ctx, cfg, p,
			fmt.Sprintf("makespan/%s=%g", name, v), runner.Seed(cfg.Seed, i))
		if err != nil {
			return nil, err
		}
		pt.Param = v
		out.Points = append(out.Points, pt)
	}
	out.normalise()
	return out, nil
}

// normalise fills NormAvg: the whole sweep divided by its largest average
// value, the presentation Fig. 7 uses.
func (s *MakespanSweep) normalise() {
	var max float64
	for _, pt := range s.Points {
		for _, v := range pt.Avg {
			if v > max {
				max = v
			}
		}
	}
	s.NormAvg = make([]MakespanPoint, len(s.Points))
	for i, pt := range s.Points {
		n := MakespanPoint{Param: pt.Param, Avg: map[string]float64{}}
		for sys, v := range pt.Avg {
			if max > 0 {
				n.Avg[sys] = v / max
			}
		}
		s.NormAvg[i] = n
	}
}

// Gain returns the mean relative improvement of Prop over the named system
// across the sweep, e.g. 0.111 for the paper's 11.1% over CMP|L1 in
// Fig. 7(a).
func (s *MakespanSweep) Gain(baseline string) float64 {
	var g float64
	for _, pt := range s.Points {
		if b := pt.Avg[baseline]; b > 0 {
			g += (b - pt.Avg[SysProp]) / b
		}
	}
	return g / float64(len(s.Points))
}

// WorstGain is Gain computed on the worst-case (Tab. 2) metric.
func (s *MakespanSweep) WorstGain(baseline string) float64 {
	var g float64
	for _, pt := range s.Points {
		if b := pt.Worst[baseline]; b > 0 {
			g += (b - pt.Worst[SysProp]) / b
		}
	}
	return g / float64(len(s.Points))
}

// FormatFig7 renders the sweep as the normalised-average table behind one
// subplot of Fig. 7.
func (s *MakespanSweep) FormatFig7() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig.7 — normalised average makespan vs %s\n", s.Name)
	systems := s.Systems()
	fmt.Fprintf(&sb, "%8s", s.Name)
	for _, sys := range systems {
		fmt.Fprintf(&sb, "%12s", sys)
	}
	sb.WriteByte('\n')
	for _, pt := range s.NormAvg {
		fmt.Fprintf(&sb, "%8.3g", pt.Param)
		for _, sys := range systems {
			fmt.Fprintf(&sb, "%12.3f", pt.Avg[sys])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "mean gain of %s: vs %s %.1f%%, vs %s %.1f%%\n",
		SysProp, SysCMPL1, 100*s.Gain(SysCMPL1), SysCMPL2, 100*s.Gain(SysCMPL2))
	return sb.String()
}

// FormatTable2 renders the worst-case third of Tab. 2 for this sweep. The
// CMP column follows the paper's Tab. 2, which reports the conventional
// system of [15] (our CMP|L1 parameterisation).
func (s *MakespanSweep) FormatTable2() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tab.2 — normalised worst-case makespan vs %s\n", s.Name)
	fmt.Fprintf(&sb, "%8s%12s%12s\n", s.Name, "CMP [15]", "Prop")
	for _, pt := range s.Points {
		fmt.Fprintf(&sb, "%8.3g%12.3f%12.3f\n", pt.Param, pt.Worst[SysCMPL1], pt.Worst[SysProp])
	}
	fmt.Fprintf(&sb, "mean worst-case gain: %.1f%%\n", 100*s.WorstGain(SysCMPL1))
	return sb.String()
}

// SortedSystems returns the systems of a point sorted by value (diagnostic).
func (p MakespanPoint) SortedSystems() []string {
	sys := make([]string, 0, len(p.Avg))
	for s := range p.Avg {
		sys = append(sys, s)
	}
	sort.Slice(sys, func(i, j int) bool { return p.Avg[sys[i]] < p.Avg[sys[j]] })
	return sys
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"l15cache/internal/dag"
	"l15cache/internal/etm"
	"l15cache/internal/kernel"
	"l15cache/internal/rtsim"
	"l15cache/internal/runner"
	"l15cache/internal/sched"
	"l15cache/internal/schedsim"
	"l15cache/internal/stats"
	"l15cache/internal/workload"
)

// The ablations isolate the design choices DESIGN.md calls out:
//
//   - ζ (way count): how much L1.5 capacity the co-design needs before the
//     makespan gains saturate;
//   - κ (way size): fewer/larger ways trade allocation granularity against
//     per-node coverage at fixed total capacity;
//   - priority policy: Alg. 1's λ-driven priorities versus plain
//     longest-path-first priorities *with* the same way allocation — does
//     the makespan win come from the ways, the priorities, or both;
//   - SDU configuration delay: how slow the one-way-per-cycle Walloc can
//     get before φ and deadline misses become visible.

// AblationPoint is one parameter value of an ablation sweep.
type AblationPoint struct {
	Param float64
	Value float64 // the ablated metric (see each sweep's doc)
}

// AblationResult is a named sweep.
type AblationResult struct {
	Name   string
	Metric string
	Points []AblationPoint
}

// Format renders the sweep as a two-column table.
func (a *AblationResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ablation — %s (%s)\n", a.Name, a.Metric)
	fmt.Fprintf(&sb, "%10s%14s\n", a.Name, "value")
	for _, p := range a.Points {
		fmt.Fprintf(&sb, "%10.4g%14.4f\n", p.Param, p.Value)
	}
	return sb.String()
}

// meanPropMakespan generates cfg.DAGs tasks on the runner and returns the
// mean deadline-normalised steady makespan of the proposed system at an
// explicit (ζ, κ) point. The ζ and κ sweeps both funnel through here, so
// their memo entries share one "prop-makespan" cache domain: a point
// where the sweeps cross (ζ = 16, κ = 2 KB) is computed once.
func meanPropMakespan(ctx context.Context, name string, cfg MakespanConfig, zeta int, wayBytes int64) (float64, error) {
	values, err := runner.Map(ctx, runner.Config{
		Name:        name,
		RootSeed:    cfg.Seed,
		Options:     cfg.Run,
		Fingerprint: propMakespanFingerprint(cfg, zeta, wayBytes),
	}, cfg.DAGs, func(_ context.Context, s runner.Shard) (float64, error) {
		task, err := workload.Synthetic(s.RNG(), cfg.Base)
		if err != nil {
			return 0, err
		}
		p, err := schedsim.NewProposed(task, zeta, wayBytes)
		if err != nil {
			return 0, err
		}
		st, err := schedsim.Run(p.Alloc, p, schedsim.Options{Cores: cfg.Cores, Instances: 1, Kernel: cfg.Kernel})
		if err != nil {
			return 0, err
		}
		return st[0].Makespan / task.Period, nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(cfg.DAGs), nil
}

// AblateZeta sweeps the L1.5 way count ζ and reports the mean normalised
// makespan of the proposed system (lower is better; the paper's SoC uses
// 16).
func AblateZeta(ctx context.Context, cfg MakespanConfig, zetas []int) (*AblationResult, error) {
	out := &AblationResult{Name: "zeta", Metric: "mean makespan / T"}
	for _, z := range zetas {
		v, err := meanPropMakespan(ctx, fmt.Sprintf("ablation/zeta=%d", z), cfg, z, cfg.WayBytes)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, AblationPoint{Param: float64(z), Value: v})
	}
	return out, nil
}

// AblateWayBytes sweeps κ at fixed total capacity ζ×κ = 32 KB and reports
// the mean normalised makespan: small ways allocate precisely but cap the
// per-node speed-up resolution; huge ways waste capacity on small δ.
func AblateWayBytes(ctx context.Context, cfg MakespanConfig, wayBytes []int64) (*AblationResult, error) {
	const totalBytes = 32 * 1024
	out := &AblationResult{Name: "kappa", Metric: "mean makespan / T (32KB total)"}
	for _, kb := range wayBytes {
		if kb <= 0 || totalBytes%kb != 0 {
			return nil, fmt.Errorf("experiments: way size %d does not divide %d", kb, totalBytes)
		}
		zeta := int(totalBytes / kb)
		v, err := meanPropMakespan(ctx, fmt.Sprintf("ablation/kappa=%d", kb), cfg, zeta, kb)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, AblationPoint{Param: float64(kb), Value: v})
	}
	return out, nil
}

// PriorityAblation compares three schedules on the same tasks and platform
// semantics (ETM communication, no interference):
//
//	full     — Alg. 1: ways + λ-recomputed priorities (the paper);
//	waysOnly — Alg. 1's way allocation but baseline longest-path-first
//	           priorities computed on raw costs;
//	prioOnly — Alg. 1's priorities but no ways (communication at full μ).
//
// It reports each variant's mean normalised makespan; the paper's design is
// justified if full < waysOnly < prioOnly.
type PriorityAblation struct {
	Full, WaysOnly, PrioOnly float64
}

// prioTrial carries one DAG's three variant makespans. Fields are
// exported so the runner can checkpoint a trial as JSON.
type prioTrial struct {
	Full     float64 `json:"full"`
	WaysOnly float64 `json:"ways_only"`
	PrioOnly float64 `json:"prio_only"`
}

// AblatePriorities runs the priority-policy ablation on the runner: each
// trial evaluates all three variants on the same task.
func AblatePriorities(ctx context.Context, cfg MakespanConfig) (PriorityAblation, error) {
	var out PriorityAblation
	trials, err := runner.Map(ctx, runner.Config{
		Name:        "ablation/prio",
		RootSeed:    cfg.Seed,
		Options:     cfg.Run,
		Fingerprint: prioAblationFingerprint(cfg),
	}, cfg.DAGs, func(_ context.Context, s runner.Shard) (prioTrial, error) {
		var tr prioTrial
		task, err := workload.Synthetic(s.RNG(), cfg.Base)
		if err != nil {
			return tr, err
		}

		// Full Alg. 1.
		p, err := schedsim.NewProposed(task.Clone(), cfg.Zeta, cfg.WayBytes)
		if err != nil {
			return tr, err
		}
		if tr.Full, err = oneNormMakespan(p.Alloc, p, cfg); err != nil {
			return tr, err
		}

		// Ways only: keep the allocation, overwrite priorities with the
		// raw longest-path-first assignment.
		waysAlloc, err := sched.L15Schedule(task.Clone(), cfg.Zeta, cfg.WayBytes)
		if err != nil {
			return tr, err
		}
		if _, err := sched.LongestPathFirst(waysAlloc.Task); err != nil {
			return tr, err
		}
		if tr.WaysOnly, err = oneNormMakespan(waysAlloc, &schedsim.Proposed{Alloc: waysAlloc}, cfg); err != nil {
			return tr, err
		}

		// Priorities only: Alg. 1 priorities, zero ways at run time
		// (an empty way model over the priority-bearing task).
		prioAlloc, err := sched.L15Schedule(task.Clone(), cfg.Zeta, cfg.WayBytes)
		if err != nil {
			return tr, err
		}
		empty := &sched.Result{
			Task:      prioAlloc.Task,
			WayBytes:  cfg.WayBytes,
			LocalWays: map[dag.NodeID]int{},
			Model:     etm.NewModel(prioAlloc.Task, cfg.WayBytes),
		}
		if tr.PrioOnly, err = oneNormMakespan(empty, &schedsim.Proposed{Alloc: empty}, cfg); err != nil {
			return tr, err
		}
		return tr, nil
	})
	if err != nil {
		return out, err
	}
	full := make([]float64, len(trials))
	waysOnly := make([]float64, len(trials))
	prioOnly := make([]float64, len(trials))
	for i, tr := range trials {
		full[i], waysOnly[i], prioOnly[i] = tr.Full, tr.WaysOnly, tr.PrioOnly
	}
	out.Full = stats.Mean(full)
	out.WaysOnly = stats.Mean(waysOnly)
	out.PrioOnly = stats.Mean(prioOnly)
	return out, nil
}

func oneNormMakespan(alloc *sched.Result, plat schedsim.Platform, cfg MakespanConfig) (float64, error) {
	st, err := schedsim.Run(alloc, plat, schedsim.Options{Cores: cfg.Cores, Instances: 1, Kernel: cfg.Kernel})
	if err != nil {
		return 0, err
	}
	return st[0].Makespan / alloc.Task.Period, nil
}

// Format renders the priority ablation.
func (p PriorityAblation) Format() string {
	var sb strings.Builder
	sb.WriteString("ablation — Alg. 1 components (mean makespan / T, lower is better)\n")
	fmt.Fprintf(&sb, "  full Alg. 1 (ways + λ priorities): %.4f\n", p.Full)
	fmt.Fprintf(&sb, "  ways only (raw-λ priorities):      %.4f\n", p.WaysOnly)
	fmt.Fprintf(&sb, "  priorities only (no ways):         %.4f\n", p.PrioOnly)
	return sb.String()
}

// AblateConfigDelay sweeps the SDU per-way configuration delay in the
// periodic simulator and reports φ (the §5.3 metric) at 8 cores, 80%
// utilisation. run carries the worker-pool/checkpoint settings; kern
// selects the simulator kernel (events by default).
func AblateConfigDelay(ctx context.Context, trials int, seed int64, run runner.Options, kern kernel.Mode, delays []float64) (*AblationResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiments: trials = %d", trials)
	}
	out := &AblationResult{Name: "config-delay", Metric: "phi"}
	set := workload.DefaultTaskSetParams()
	set.TargetUtilization = 0.8 * 8
	set.Tasks = 16
	for di, d := range delays {
		if d < 0 {
			return nil, fmt.Errorf("experiments: negative delay %g", d)
		}
		cfg := rtsim.DefaultConfig()
		cfg.WayConfigDelay = d
		cfg.Kernel = kern
		phis, err := runner.Map(ctx, runner.Config{
			Name:        fmt.Sprintf("ablation/delay=%g", d),
			RootSeed:    runner.Seed(seed, di),
			Options:     run,
			Fingerprint: taskSetTrialFingerprint("ablation/delay", set, cfg),
		}, trials, func(_ context.Context, s runner.Shard) (float64, error) {
			tasks, err := workload.TaskSet(s.RNG(), set)
			if err != nil {
				return 0, err
			}
			m, err := rtsim.Run(tasks, rtsim.KindProp, cfg)
			if err != nil {
				return 0, err
			}
			return m.Phi, nil
		})
		if err != nil {
			return nil, err
		}
		var phi float64
		for _, p := range phis {
			phi += p
		}
		out.Points = append(out.Points, AblationPoint{Param: d, Value: phi / float64(trials)})
	}
	return out, nil
}

// AblationZetaDefault is the sweep the cmd tool and benchmarks run.
func AblationZetaDefault() []int { return []int{0, 2, 4, 8, 16, 32} }

// AblationWayBytesDefault holds κ values dividing 32 KB.
func AblationWayBytesDefault() []int64 { return []int64{512, 1024, 2048, 4096, 8192} }

// AblationDelayDefault holds SDU delays in task time units.
func AblationDelayDefault() []float64 { return []float64{0, 0.005, 0.01, 0.05, 0.2} }

// ETMDiminishingReturns is a pure-model ablation: the marginal
// communication-cost reduction per extra way for a node with the given δ,
// κ = 2 KB and α = 0.7, demonstrating why F(v, Ω, ζ) caps allocations at
// ⌈δ/κ⌉.
func ETMDiminishingReturns(mu float64, data int64, maxWays int) []AblationPoint {
	var out []AblationPoint
	for n := 0; n <= maxWays; n++ {
		out = append(out, AblationPoint{
			Param: float64(n),
			Value: etm.Cost(mu, 0.7, data, etm.DefaultWayBytes, n),
		})
	}
	return out
}

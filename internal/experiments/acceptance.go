package experiments

import (
	"context"
	"fmt"
	"strings"

	"l15cache/internal/analysis"
	"l15cache/internal/dag"
	"l15cache/internal/kernel"
	"l15cache/internal/runner"
	"l15cache/internal/schedsim"
	"l15cache/internal/workload"
)

// The acceptance-ratio experiment exercises the §4.2 claim that existing
// DAG analysis applies to the co-design "with minor modifications for
// communication cost on edges": for a sweep of task utilisations it
// reports the fraction of random tasks whose *analytical* makespan bound
// meets the implicit deadline, with edge costs taken raw (conventional
// system) or ETM-reduced under Alg. 1's allocation (proposed system). The
// proposed system's bound accepts strictly more tasks — the analytical
// counterpart of Fig. 8's empirical success ratios.

// AcceptancePoint is one utilisation value of the sweep.
type AcceptancePoint struct {
	Utilization float64
	// Accepted fraction of tasks whose bound meets the deadline.
	PropAccepted float64
	BaseAccepted float64
	// SimFeasible is the fraction whose *simulated* proposed-system
	// makespan meets the deadline (the bound is sufficient, so
	// PropAccepted <= SimFeasible up to sampling noise... in fact always,
	// per-task: an accepted task is sim-feasible).
	SimFeasible float64
}

// AcceptanceConfig configures the experiment.
type AcceptanceConfig struct {
	DAGs     int
	Cores    int
	Zeta     int
	WayBytes int64
	Seed     int64
	Base     workload.SynthParams
	Run      runner.Options // worker pool / checkpoint settings
	Kernel   kernel.Mode    // simulator kernel (events by default)
}

// DefaultAcceptanceConfig mirrors the makespan experiment's platform.
func DefaultAcceptanceConfig() AcceptanceConfig {
	return AcceptanceConfig{
		DAGs:     200,
		Cores:    8,
		Zeta:     schedsim.DefaultZeta,
		WayBytes: schedsim.DefaultWayBytes,
		Seed:     1,
		Base:     workload.DefaultSynthParams(),
	}
}

// acceptanceTrial records one task's three verdicts. Fields are exported
// so the runner can checkpoint a trial as JSON.
type acceptanceTrial struct {
	Base bool `json:"base"` // conventional bound meets the deadline
	Prop bool `json:"prop"` // proposed bound meets the deadline
	Sim  bool `json:"sim"`  // simulated proposed makespan meets the deadline
}

// AcceptanceRatio sweeps the task utilisation on the runner and returns
// the per-point acceptance fractions.
func AcceptanceRatio(ctx context.Context, cfg AcceptanceConfig, utils []float64) ([]AcceptancePoint, error) {
	if cfg.DAGs <= 0 || cfg.Cores <= 0 {
		return nil, fmt.Errorf("experiments: need positive DAGs and Cores")
	}
	var out []AcceptancePoint
	for ui, u := range utils {
		p := cfg.Base
		p.Utilization = u
		trials, err := runner.Map(ctx, runner.Config{
			Name:        fmt.Sprintf("acceptance/U=%g", u),
			RootSeed:    runner.Seed(cfg.Seed, ui),
			Options:     cfg.Run,
			Fingerprint: acceptanceFingerprint(cfg, p),
		}, cfg.DAGs, func(_ context.Context, s runner.Shard) (acceptanceTrial, error) {
			var tr acceptanceTrial
			task, err := workload.Synthetic(s.RNG(), p)
			if err != nil {
				return tr, err
			}

			// Conventional bound: raw edge costs.
			if tr.Base, _, err = analysis.Schedulable(task, cfg.Cores, dag.RawCost); err != nil {
				return tr, err
			}

			// Proposed bound: Alg. 1 allocation, ETM edge costs.
			prop, err := schedsim.NewProposed(task.Clone(), cfg.Zeta, cfg.WayBytes)
			if err != nil {
				return tr, err
			}
			if tr.Prop, _, err = analysis.Schedulable(prop.Alloc.Task, cfg.Cores, prop.Alloc.Model.Weight()); err != nil {
				return tr, err
			}

			// Ground truth on the proposed platform.
			st, err := schedsim.Run(prop.Alloc, prop, schedsim.Options{Cores: cfg.Cores, Kernel: cfg.Kernel})
			if err != nil {
				return tr, err
			}
			tr.Sim = st[0].Makespan <= prop.Alloc.Task.Deadline
			if tr.Prop && !tr.Sim {
				return tr, fmt.Errorf("experiments: unsound bound at U=%g shard %d", u, s.Index)
			}
			return tr, nil
		})
		if err != nil {
			return nil, err
		}
		pt := AcceptancePoint{Utilization: u}
		for _, tr := range trials {
			if tr.Base {
				pt.BaseAccepted++
			}
			if tr.Prop {
				pt.PropAccepted++
			}
			if tr.Sim {
				pt.SimFeasible++
			}
		}
		n := float64(cfg.DAGs)
		pt.PropAccepted /= n
		pt.BaseAccepted /= n
		pt.SimFeasible /= n
		out = append(out, pt)
	}
	return out, nil
}

// FormatAcceptance renders the sweep.
func FormatAcceptance(points []AcceptancePoint) string {
	var sb strings.Builder
	sb.WriteString("acceptance ratio — analytical bound meets the deadline (8 cores)\n")
	fmt.Fprintf(&sb, "%8s%14s%14s%16s\n", "U", "CMP bound", "Prop bound", "Prop simulated")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%8.2f%14.3f%14.3f%16.3f\n",
			pt.Utilization, pt.BaseAccepted, pt.PropAccepted, pt.SimFeasible)
	}
	return sb.String()
}

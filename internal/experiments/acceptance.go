package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"l15cache/internal/analysis"
	"l15cache/internal/dag"
	"l15cache/internal/schedsim"
	"l15cache/internal/workload"
)

// The acceptance-ratio experiment exercises the §4.2 claim that existing
// DAG analysis applies to the co-design "with minor modifications for
// communication cost on edges": for a sweep of task utilisations it
// reports the fraction of random tasks whose *analytical* makespan bound
// meets the implicit deadline, with edge costs taken raw (conventional
// system) or ETM-reduced under Alg. 1's allocation (proposed system). The
// proposed system's bound accepts strictly more tasks — the analytical
// counterpart of Fig. 8's empirical success ratios.

// AcceptancePoint is one utilisation value of the sweep.
type AcceptancePoint struct {
	Utilization float64
	// Accepted fraction of tasks whose bound meets the deadline.
	PropAccepted float64
	BaseAccepted float64
	// SimFeasible is the fraction whose *simulated* proposed-system
	// makespan meets the deadline (the bound is sufficient, so
	// PropAccepted <= SimFeasible up to sampling noise... in fact always,
	// per-task: an accepted task is sim-feasible).
	SimFeasible float64
}

// AcceptanceConfig configures the experiment.
type AcceptanceConfig struct {
	DAGs     int
	Cores    int
	Zeta     int
	WayBytes int64
	Seed     int64
	Base     workload.SynthParams
}

// DefaultAcceptanceConfig mirrors the makespan experiment's platform.
func DefaultAcceptanceConfig() AcceptanceConfig {
	return AcceptanceConfig{
		DAGs:     200,
		Cores:    8,
		Zeta:     schedsim.DefaultZeta,
		WayBytes: schedsim.DefaultWayBytes,
		Seed:     1,
		Base:     workload.DefaultSynthParams(),
	}
}

// AcceptanceRatio sweeps the task utilisation and returns the per-point
// acceptance fractions.
func AcceptanceRatio(cfg AcceptanceConfig, utils []float64) ([]AcceptancePoint, error) {
	if cfg.DAGs <= 0 || cfg.Cores <= 0 {
		return nil, fmt.Errorf("experiments: need positive DAGs and Cores")
	}
	var out []AcceptancePoint
	for ui, u := range utils {
		pt := AcceptancePoint{Utilization: u}
		for i := 0; i < cfg.DAGs; i++ {
			r := rand.New(rand.NewSource(cfg.Seed + int64(ui)*1_000_003 + int64(i)*7919))
			p := cfg.Base
			p.Utilization = u
			task, err := workload.Synthetic(r, p)
			if err != nil {
				return nil, err
			}

			// Conventional bound: raw edge costs.
			okBase, _, err := analysis.Schedulable(task, cfg.Cores, dag.RawCost)
			if err != nil {
				return nil, err
			}
			if okBase {
				pt.BaseAccepted++
			}

			// Proposed bound: Alg. 1 allocation, ETM edge costs.
			prop, err := schedsim.NewProposed(task.Clone(), cfg.Zeta, cfg.WayBytes)
			if err != nil {
				return nil, err
			}
			okProp, _, err := analysis.Schedulable(prop.Alloc.Task, cfg.Cores, prop.Alloc.Model.Weight())
			if err != nil {
				return nil, err
			}
			if okProp {
				pt.PropAccepted++
			}

			// Ground truth on the proposed platform.
			st, err := schedsim.Run(prop.Alloc, prop, schedsim.Options{Cores: cfg.Cores})
			if err != nil {
				return nil, err
			}
			feasible := st[0].Makespan <= prop.Alloc.Task.Deadline
			if feasible {
				pt.SimFeasible++
			}
			if okProp && !feasible {
				return nil, fmt.Errorf("experiments: unsound bound at U=%g seed %d", u, i)
			}
		}
		n := float64(cfg.DAGs)
		pt.PropAccepted /= n
		pt.BaseAccepted /= n
		pt.SimFeasible /= n
		out = append(out, pt)
	}
	return out, nil
}

// FormatAcceptance renders the sweep.
func FormatAcceptance(points []AcceptancePoint) string {
	var sb strings.Builder
	sb.WriteString("acceptance ratio — analytical bound meets the deadline (8 cores)\n")
	fmt.Fprintf(&sb, "%8s%14s%14s%16s\n", "U", "CMP bound", "Prop bound", "Prop simulated")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%8.2f%14.3f%14.3f%16.3f\n",
			pt.Utilization, pt.BaseAccepted, pt.PropAccepted, pt.SimFeasible)
	}
	return sb.String()
}

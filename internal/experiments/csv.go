package experiments

import (
	"fmt"
	"strings"
)

// CSV renderers for every harness, so the cmd tools can feed external
// plotting (the paper's figures are line/bar charts over exactly these
// columns).

// CSV renders the sweep with both the Fig. 7 (average, normalised and raw)
// and Tab. 2 (worst-case) metrics per system.
func (s *MakespanSweep) CSV() string {
	var sb strings.Builder
	systems := s.Systems()
	sb.WriteString(s.Name)
	for _, sys := range systems {
		fmt.Fprintf(&sb, ",avg_%s,norm_avg_%s,worst_%s", slug(sys), slug(sys), slug(sys))
	}
	sb.WriteByte('\n')
	for i, pt := range s.Points {
		fmt.Fprintf(&sb, "%g", pt.Param)
		for _, sys := range systems {
			fmt.Fprintf(&sb, ",%.6g,%.6g,%.6g",
				pt.Avg[sys], s.NormAvg[i].Avg[sys], pt.Worst[sys])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the success-ratio sweep.
func (r *CaseStudyResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("utilization")
	for _, sys := range CaseStudySystems() {
		fmt.Fprintf(&sb, ",%s", slug(sys.String()))
	}
	sb.WriteByte('\n')
	for _, pt := range r.Points {
		fmt.Fprintf(&sb, "%g", pt.Utilization)
		for _, sys := range CaseStudySystems() {
			fmt.Fprintf(&sb, ",%.6g", pt.Success[sys.String()])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SideEffectsCSV renders Fig. 8(c)'s points.
func SideEffectsCSV(points []SideEffectsPoint) string {
	var sb strings.Builder
	sb.WriteString("cores,utilization,way_utilization,phi\n")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%d,%g,%.6g,%.6g\n",
			pt.Cores, pt.Utilization, pt.WayUtilization, pt.Phi)
	}
	return sb.String()
}

// CSV renders an ablation sweep.
func (a *AblationResult) CSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s,value\n", a.Name)
	for _, pt := range a.Points {
		fmt.Fprintf(&sb, "%g,%.6g\n", pt.Param, pt.Value)
	}
	return sb.String()
}

// AcceptanceCSV renders the acceptance-ratio sweep.
func AcceptanceCSV(points []AcceptancePoint) string {
	var sb strings.Builder
	sb.WriteString("utilization,cmp_bound,prop_bound,prop_simulated\n")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%g,%.6g,%.6g,%.6g\n",
			pt.Utilization, pt.BaseAccepted, pt.PropAccepted, pt.SimFeasible)
	}
	return sb.String()
}

// slug turns a system name into a CSV-safe column name.
func slug(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "|", "_")
	s = strings.ReplaceAll(s, "-", "_")
	return s
}

package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"l15cache/internal/rtsim"
	"l15cache/internal/runner"
	"l15cache/internal/workload"
)

// CaseStudySystems lists the four systems of Fig. 8 in report order.
func CaseStudySystems() []rtsim.Kind {
	return []rtsim.Kind{rtsim.KindProp, rtsim.KindCMPL1, rtsim.KindCMPL2, rtsim.KindSharedL1}
}

// CaseStudyConfig configures the Fig. 8(a,b) experiment.
type CaseStudyConfig struct {
	Cores  int   // 8 or 16
	Trials int   // 200 in the paper
	Tasks  int   // DAG tasks per set (defaults to Cores)
	Seed   int64 // root RNG seed (per-trial seeds derive from it)
	RT     rtsim.Config
	Set    workload.TaskSetParams
	Run    runner.Options // worker pool / checkpoint settings
}

// DefaultCaseStudyConfig mirrors §5.2 for the given core count.
func DefaultCaseStudyConfig(cores int) CaseStudyConfig {
	rt := rtsim.DefaultConfig()
	rt.Cores = cores
	return CaseStudyConfig{
		Cores:  cores,
		Trials: 200,
		Tasks:  2 * cores,
		Seed:   1,
		RT:     rt,
		Set:    workload.DefaultTaskSetParams(),
	}
}

// CaseStudyPoint is one target-utilisation point: the per-system success
// ratio over the trials.
type CaseStudyPoint struct {
	Utilization float64
	Success     map[string]float64
}

// CaseStudyResult is one subplot of Fig. 8(a,b).
type CaseStudyResult struct {
	Cores  int
	Points []CaseStudyPoint
}

// RunCaseStudy sweeps the target utilisation (fraction of total core
// capacity, the paper's 40%–90% at 5% steps) and returns the success ratio
// of every system. Within a trial all systems execute the identical task
// set, matching the paper's fairness protocol. Trials of a point fan out
// on the runner; each draws its task set from its shard seed alone.
func RunCaseStudy(ctx context.Context, cfg CaseStudyConfig, utils []float64) (*CaseStudyResult, error) {
	if cfg.Cores <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: need positive Cores and Trials")
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = cfg.Cores
	}
	out := &CaseStudyResult{Cores: cfg.Cores}
	for ui, util := range utils {
		set := cfg.Set
		set.TargetUtilization = util * float64(cfg.Cores)
		set.Tasks = cfg.Tasks
		successes, err := runner.Map(ctx, runner.Config{
			Name:        fmt.Sprintf("casestudy/%dc/u=%g", cfg.Cores, util),
			RootSeed:    runner.Seed(cfg.Seed, ui),
			Options:     cfg.Run,
			Fingerprint: taskSetTrialFingerprint("casestudy", set, cfg.RT),
		}, cfg.Trials, func(_ context.Context, s runner.Shard) (map[string]bool, error) {
			return runCaseTrial(cfg.RT, set, s.Seed)
		})
		if err != nil {
			return nil, err
		}
		pt := CaseStudyPoint{
			Utilization: util,
			Success:     map[string]float64{},
		}
		for _, trial := range successes {
			for sys, ok := range trial {
				if ok {
					pt.Success[sys] += 1 / float64(cfg.Trials)
				}
			}
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

func runCaseTrial(rt rtsim.Config, set workload.TaskSetParams, seed int64) (map[string]bool, error) {
	r := rand.New(rand.NewSource(seed))
	tasks, err := workload.TaskSet(r, set)
	if err != nil {
		return nil, err
	}
	res := make(map[string]bool, 4)
	for _, kind := range CaseStudySystems() {
		m, err := rtsim.Run(tasks, kind, rt)
		if err != nil {
			return nil, err
		}
		res[kind.String()] = m.Success()
	}
	return res, nil
}

// Format renders the success-ratio table behind Fig. 8(a) or (b).
func (r *CaseStudyResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig.8 — success ratio, %d cores\n", r.Cores)
	systems := CaseStudySystems()
	fmt.Fprintf(&sb, "%8s", "util")
	for _, sys := range systems {
		fmt.Fprintf(&sb, "%15s", sys.String())
	}
	sb.WriteByte('\n')
	for _, pt := range r.Points {
		fmt.Fprintf(&sb, "%7.0f%%", pt.Utilization*100)
		for _, sys := range systems {
			fmt.Fprintf(&sb, "%15.3f", pt.Success[sys.String()])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SideEffectsConfig configures the §5.3 analysis (Fig. 8(c)).
type SideEffectsConfig struct {
	Trials int
	Tasks  int
	Seed   int64
	RT     rtsim.Config
	Set    workload.TaskSetParams
	Run    runner.Options // worker pool / checkpoint settings
}

// SideEffectsPoint is one "xc|y%" configuration of Fig. 8(c).
type SideEffectsPoint struct {
	Cores          int
	Utilization    float64
	WayUtilization float64 // mean over trials
	Phi            float64 // mean over trials
}

// Label renders the paper's "xc|y%" x-axis label.
func (p SideEffectsPoint) Label() string {
	return fmt.Sprintf("%dc|%.0f%%", p.Cores, p.Utilization*100)
}

// sideTrial carries one trial's raw metrics. Fields are exported so the
// runner can checkpoint a trial as JSON.
type sideTrial struct {
	WayUtilization float64 `json:"way_utilization"`
	Phi            float64 `json:"phi"`
}

// RunSideEffects reproduces Fig. 8(c): the proposed system only, under the
// given core-count / target-utilisation configurations, reporting the L1.5
// way utilisation and the mis-configuration ratio φ. Trials of each
// configuration fan out on the runner.
func RunSideEffects(ctx context.Context, cfg SideEffectsConfig, cores []int, utils []float64) ([]SideEffectsPoint, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: need positive Trials")
	}
	var out []SideEffectsPoint
	for ci, c := range cores {
		for ui, util := range utils {
			rt := cfg.RT
			rt.Cores = c
			tasks := cfg.Tasks
			if tasks <= 0 {
				tasks = c
			}
			set := cfg.Set
			set.TargetUtilization = util * float64(c)
			set.Tasks = tasks
			trials, err := runner.Map(ctx, runner.Config{
				Name:        fmt.Sprintf("sideeffects/%dc/u=%g", c, util),
				RootSeed:    runner.Seed(cfg.Seed, ci*len(utils)+ui),
				Options:     cfg.Run,
				Fingerprint: taskSetTrialFingerprint("sideeffects", set, rt),
			}, cfg.Trials, func(_ context.Context, s runner.Shard) (sideTrial, error) {
				ts, err := workload.TaskSet(s.RNG(), set)
				if err != nil {
					return sideTrial{}, err
				}
				m, err := rtsim.Run(ts, rtsim.KindProp, rt)
				if err != nil {
					return sideTrial{}, err
				}
				return sideTrial{WayUtilization: m.WayUtilization, Phi: m.Phi}, nil
			})
			if err != nil {
				return nil, err
			}
			var wu, phi float64
			for _, t := range trials {
				wu += t.WayUtilization
				phi += t.Phi
			}
			out = append(out, SideEffectsPoint{
				Cores:          c,
				Utilization:    util,
				WayUtilization: wu / float64(cfg.Trials),
				Phi:            phi / float64(cfg.Trials),
			})
		}
	}
	return out, nil
}

// FormatSideEffects renders the Fig. 8(c) table.
func FormatSideEffects(points []SideEffectsPoint) string {
	var sb strings.Builder
	sb.WriteString("Fig.8(c) — L1.5 utilisation and mis-configuration ratio φ\n")
	fmt.Fprintf(&sb, "%10s%16s%10s\n", "config", "way util", "φ")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%10s%15.1f%%%9.3f%%\n", pt.Label(), pt.WayUtilization*100, pt.Phi*100)
	}
	return sb.String()
}

package experiments

import (
	"l15cache/internal/memo"
	"l15cache/internal/rtsim"
	"l15cache/internal/workload"
)

// The fingerprint builders below compose each sweep's memo canonical
// encoding (DESIGN.md §12) from the owner packages' AppendFingerprint
// methods. Each runner.Map call passes the matching fingerprint, so
// -memo/-memo-dir work on every sweep, and two rules decide what is
// encoded:
//
//   - in: everything the shard function's result depends on besides the
//     shard identity — model parameters, workload descriptors, kernel
//     mode, instance counts;
//   - out: everything that cannot change a result — trial counts (each
//     shard is keyed individually), root seeds (folded into the shard
//     seed by runner.Seed) and the runner.Options operational knobs.
//
// Domains separate trial functions, not call sites: the ζ and κ
// ablations share "prop-makespan" because they compute the same function
// of (params, ζ, κ), so their caches interoperate wherever the sweeps
// cross; the case study and side-effects analysis stay apart because one
// simulates four systems and the other only the proposed one.

// makespanFingerprint covers runOneDAG: one synthetic task per shard,
// simulated on Prop/CMP|L1/CMP|L2 for cfg.Instances instances.
func makespanFingerprint(cfg MakespanConfig, p workload.SynthParams) []byte {
	e := memo.NewEncoder("makespan/point")
	e.I64("instances", int64(cfg.Instances))
	e.I64("cores", int64(cfg.Cores))
	e.I64("zeta", int64(cfg.Zeta))
	e.I64("way_bytes", cfg.WayBytes)
	e.Str("kernel", cfg.Kernel.String())
	p.AppendFingerprint(e)
	return e.Fingerprint()
}

// propMakespanFingerprint covers meanPropMakespan's shards: one task,
// proposed system only, at an explicit (ζ, κ) point.
func propMakespanFingerprint(cfg MakespanConfig, zeta int, wayBytes int64) []byte {
	e := memo.NewEncoder("prop-makespan")
	e.I64("cores", int64(cfg.Cores))
	e.I64("zeta", int64(zeta))
	e.I64("way_bytes", wayBytes)
	e.Str("kernel", cfg.Kernel.String())
	cfg.Base.AppendFingerprint(e)
	return e.Fingerprint()
}

// prioAblationFingerprint covers the three-variant priority ablation.
func prioAblationFingerprint(cfg MakespanConfig) []byte {
	e := memo.NewEncoder("ablation/prio")
	e.I64("cores", int64(cfg.Cores))
	e.I64("zeta", int64(cfg.Zeta))
	e.I64("way_bytes", cfg.WayBytes)
	e.Str("kernel", cfg.Kernel.String())
	cfg.Base.AppendFingerprint(e)
	return e.Fingerprint()
}

// taskSetTrialFingerprint covers the periodic-simulator sweeps (case
// study, side effects, SDU-delay ablation): a task set drawn from set,
// simulated under rt. Returns nil — disabling memoization for the call —
// when rt is not memoizable (it carries a flight recorder).
func taskSetTrialFingerprint(domain string, set workload.TaskSetParams, rt rtsim.Config) []byte {
	e := memo.NewEncoder(domain)
	if !rt.AppendFingerprint(e) {
		return nil
	}
	set.AppendFingerprint(e)
	return e.Fingerprint()
}

// acceptanceFingerprint covers the §4.2 acceptance-ratio trials.
func acceptanceFingerprint(cfg AcceptanceConfig, p workload.SynthParams) []byte {
	e := memo.NewEncoder("acceptance")
	e.I64("cores", int64(cfg.Cores))
	e.I64("zeta", int64(cfg.Zeta))
	e.I64("way_bytes", cfg.WayBytes)
	e.Str("kernel", cfg.Kernel.String())
	p.AppendFingerprint(e)
	return e.Fingerprint()
}

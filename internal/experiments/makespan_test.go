package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

// smallCfg keeps the statistical experiments fast in unit tests while still
// averaging enough DAGs for the orderings to be stable.
func smallCfg() MakespanConfig {
	cfg := DefaultMakespanConfig()
	cfg.DAGs = 40
	cfg.Instances = 5
	return cfg
}

func TestSweepUtilizationShape(t *testing.T) {
	s, err := SweepUtilization(context.Background(), smallCfg(), []float64{0.2, 0.6, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 || s.Name != "U" {
		t.Fatalf("bad sweep: %+v", s)
	}
	for _, sys := range s.Systems() {
		// Normalised makespan must grow with utilisation (Tab. 2's CMP
		// column scales ~linearly with U).
		prev := -1.0
		for _, pt := range s.Points {
			v := pt.Avg[sys]
			if v <= prev {
				t.Errorf("%s: avg makespan not increasing in U: %v", sys, s.Points)
				break
			}
			prev = v
		}
	}
	// The proposed system must win at every point, and CMP|L1 must beat
	// CMP|L2 (the paper's consistent ordering).
	for _, pt := range s.Points {
		if !(pt.Avg[SysProp] < pt.Avg[SysCMPL1] && pt.Avg[SysCMPL1] < pt.Avg[SysCMPL2]) {
			t.Errorf("U=%g: ordering violated: %v", pt.Param, pt.Avg)
		}
		if !(pt.Worst[SysProp] < pt.Worst[SysCMPL1]) {
			t.Errorf("U=%g: worst-case ordering violated: %v", pt.Param, pt.Worst)
		}
	}
	// Gains in the paper's band: ~11% vs CMP|L1, ~23% vs CMP|L2 (±8pp at
	// this reduced sample size).
	if g := s.Gain(SysCMPL1); g < 0.05 || g > 0.30 {
		t.Errorf("gain vs CMP|L1 = %.3f outside [0.05,0.30]", g)
	}
	if g := s.Gain(SysCMPL2); g < 0.14 || g > 0.35 {
		t.Errorf("gain vs CMP|L2 = %.3f outside [0.14,0.35]", g)
	}
	if g := s.WorstGain(SysCMPL1); g < 0.10 || g > 0.35 {
		t.Errorf("worst-case gain = %.3f outside [0.10,0.35]", g)
	}
}

func TestSweepWidthShape(t *testing.T) {
	s, err := SweepWidth(context.Background(), smallCfg(), []float64{9, 15, 21})
	if err != nil {
		t.Fatal(err)
	}
	// Wider layers mean more parallelism: makespan decreases with p for
	// every system (Tab. 2 middle block).
	for _, sys := range s.Systems() {
		prev := math.Inf(1)
		for _, pt := range s.Points {
			v := pt.Avg[sys]
			if v >= prev {
				t.Errorf("%s: avg makespan not decreasing in p", sys)
				break
			}
			prev = v
		}
	}
	for _, pt := range s.Points {
		if pt.Avg[SysProp] >= pt.Avg[SysCMPL1] {
			t.Errorf("p=%g: Prop %g should beat CMP|L1 %g",
				pt.Param, pt.Avg[SysProp], pt.Avg[SysCMPL1])
		}
	}
}

func TestSweepCPRShape(t *testing.T) {
	s, err := SweepCPR(context.Background(), smallCfg(), []float64{0.1, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Longer critical paths serialise execution: makespan increases with
	// cpr for every system (Tab. 2 right block).
	for _, sys := range s.Systems() {
		prev := -1.0
		for _, pt := range s.Points {
			v := pt.Avg[sys]
			if v <= prev {
				t.Errorf("%s: avg makespan not increasing in cpr", sys)
				break
			}
			prev = v
		}
	}
	// The paper: strong gains at cpr <= 0.3, weak at 0.5. Require a clear
	// win at 0.1 and no large loss at 0.5.
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	if g := (first.Avg[SysCMPL1] - first.Avg[SysProp]) / first.Avg[SysCMPL1]; g < 0.05 {
		t.Errorf("cpr=0.1 gain vs CMP|L1 = %.3f, want >= 0.05", g)
	}
	if g := (last.Avg[SysCMPL1] - last.Avg[SysProp]) / last.Avg[SysCMPL1]; g < -0.05 {
		t.Errorf("cpr=0.5 deficit vs CMP|L1 = %.3f, want >= -0.05", g)
	}
	// Worst case must stay a Prop win across the whole sweep (Tab. 2).
	for _, pt := range s.Points {
		if pt.Worst[SysProp] >= pt.Worst[SysCMPL1] {
			t.Errorf("cpr=%g: worst-case Prop %g >= CMP %g",
				pt.Param, pt.Worst[SysProp], pt.Worst[SysCMPL1])
		}
	}
}

func TestNormalisation(t *testing.T) {
	s, err := SweepUtilization(context.Background(), smallCfg(), []float64{0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	var max float64
	for _, pt := range s.NormAvg {
		for _, v := range pt.Avg {
			if v > max {
				max = v
			}
			if v < 0 || v > 1+1e-12 {
				t.Errorf("normalised value %g outside [0,1]", v)
			}
		}
	}
	if math.Abs(max-1) > 1e-12 {
		t.Errorf("max normalised value = %g, want 1", max)
	}
}

func TestFormatters(t *testing.T) {
	cfg := smallCfg()
	cfg.DAGs = 10
	s, err := SweepUtilization(context.Background(), cfg, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	fig7 := s.FormatFig7()
	for _, want := range []string{"Fig.7", "Prop", "CMP|L1", "CMP|L2", "mean gain"} {
		if !strings.Contains(fig7, want) {
			t.Errorf("Fig7 output missing %q:\n%s", want, fig7)
		}
	}
	tab2 := s.FormatTable2()
	for _, want := range []string{"Tab.2", "CMP [15]", "Prop", "worst-case gain"} {
		if !strings.Contains(tab2, want) {
			t.Errorf("Tab2 output missing %q:\n%s", want, tab2)
		}
	}
}

func TestSweepConfigValidation(t *testing.T) {
	cfg := smallCfg()
	cfg.DAGs = 0
	if _, err := SweepUtilization(context.Background(), cfg, []float64{0.5}); err == nil {
		t.Error("zero DAGs accepted")
	}
}

// TestSweepWorkerInvariance is the acceptance check for the parallel
// harness: the same seeded sweep at 1 worker and at 8 workers must be
// bit-identical, down to the floating-point sums.
func TestSweepWorkerInvariance(t *testing.T) {
	run := func(workers int) *MakespanSweep {
		cfg := smallCfg()
		cfg.DAGs = 20
		cfg.Run.Workers = workers
		s, err := SweepUtilization(context.Background(), cfg, []float64{0.4, 0.8})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial, parallel := run(1), run(8)
	for i := range serial.Points {
		for _, sys := range serial.Systems() {
			if serial.Points[i].Avg[sys] != parallel.Points[i].Avg[sys] ||
				serial.Points[i].Worst[sys] != parallel.Points[i].Worst[sys] {
				t.Errorf("U=%g %s: workers=1 and workers=8 disagree: avg %v vs %v, worst %v vs %v",
					serial.Points[i].Param, sys,
					serial.Points[i].Avg[sys], parallel.Points[i].Avg[sys],
					serial.Points[i].Worst[sys], parallel.Points[i].Worst[sys])
			}
		}
	}
}

func TestSweepDeterminism(t *testing.T) {
	cfg := smallCfg()
	cfg.DAGs = 15
	a, err := SweepUtilization(context.Background(), cfg, []float64{0.6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepUtilization(context.Background(), cfg, []float64{0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range a.Systems() {
		if a.Points[0].Avg[sys] != b.Points[0].Avg[sys] {
			t.Errorf("%s: non-deterministic result despite fixed seed", sys)
		}
	}
}

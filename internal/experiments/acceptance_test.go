package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestAcceptanceRatio(t *testing.T) {
	cfg := DefaultAcceptanceConfig()
	cfg.DAGs = 40
	points, err := AcceptanceRatio(context.Background(), cfg, []float64{1.0, 2.5, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		// All fractions in [0,1].
		for name, v := range map[string]float64{
			"prop": pt.PropAccepted, "base": pt.BaseAccepted, "sim": pt.SimFeasible,
		} {
			if v < 0 || v > 1 {
				t.Errorf("U=%g: %s = %g", pt.Utilization, name, v)
			}
		}
		// The proposed bound accepts at least as much as the baseline
		// bound (edge costs only shrink), and never more than the
		// simulated feasibility (the bound is sufficient).
		if pt.PropAccepted < pt.BaseAccepted {
			t.Errorf("U=%g: Prop bound (%g) below base bound (%g)",
				pt.Utilization, pt.PropAccepted, pt.BaseAccepted)
		}
		if pt.PropAccepted > pt.SimFeasible {
			t.Errorf("U=%g: bound unsound: accepted %g > feasible %g",
				pt.Utilization, pt.PropAccepted, pt.SimFeasible)
		}
	}
	// Acceptance decreases with utilisation.
	if points[0].PropAccepted < points[2].PropAccepted {
		t.Error("acceptance should fall with utilisation")
	}
	// At U=1 on 8 cores everything fits; at U=4 nothing passes the bound.
	if points[0].BaseAccepted != 1 {
		t.Errorf("U=1 base acceptance = %g, want 1", points[0].BaseAccepted)
	}

	out := FormatAcceptance(points)
	for _, want := range []string{"acceptance ratio", "CMP bound", "Prop bound", "simulated"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestAcceptanceErrors(t *testing.T) {
	cfg := DefaultAcceptanceConfig()
	cfg.DAGs = 0
	if _, err := AcceptanceRatio(context.Background(), cfg, []float64{1}); err == nil {
		t.Error("zero DAGs accepted")
	}
	cfg = DefaultAcceptanceConfig()
	cfg.Cores = 0
	if _, err := AcceptanceRatio(context.Background(), cfg, []float64{1}); err == nil {
		t.Error("zero cores accepted")
	}
}

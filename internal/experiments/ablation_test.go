package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"l15cache/internal/kernel"
	"l15cache/internal/runner"
)

func ablCfg() MakespanConfig {
	cfg := DefaultMakespanConfig()
	cfg.DAGs = 30
	return cfg
}

func TestAblateZetaMonotone(t *testing.T) {
	res, err := AblateZeta(context.Background(), ablCfg(), []int{0, 4, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %v", res.Points)
	}
	// More ways never hurt the makespan (the ETM is monotone and Alg. 1
	// only adds coverage).
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Value > res.Points[i-1].Value+1e-9 {
			t.Errorf("ζ=%g worse than ζ=%g: %v",
				res.Points[i].Param, res.Points[i-1].Param, res.Points)
		}
	}
	// ζ=16 must clearly beat ζ=0 (the co-design's entire point).
	if res.Points[2].Value >= res.Points[0].Value*0.98 {
		t.Errorf("ζ=16 barely helps: %v", res.Points)
	}
}

func TestAblateWayBytes(t *testing.T) {
	res, err := AblateWayBytes(context.Background(), ablCfg(), []int64{1024, 2048, 4096})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Value <= 0 || math.IsNaN(p.Value) {
			t.Errorf("bad value at κ=%g: %g", p.Param, p.Value)
		}
	}
	if _, err := AblateWayBytes(context.Background(), ablCfg(), []int64{3000}); err == nil {
		t.Error("non-dividing way size accepted")
	}
}

func TestAblatePriorities(t *testing.T) {
	res, err := AblatePriorities(context.Background(), ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Both components must contribute: the full algorithm beats the
	// no-ways variant clearly, and is no worse than ways-with-baseline-
	// priorities (the λ recomputation is a refinement, not a regression).
	if res.Full >= res.PrioOnly {
		t.Errorf("full (%.4f) should beat priorities-only (%.4f)", res.Full, res.PrioOnly)
	}
	if res.Full > res.WaysOnly*1.02 {
		t.Errorf("full (%.4f) clearly worse than ways-only (%.4f)", res.Full, res.WaysOnly)
	}
	out := res.Format()
	for _, want := range []string{"full Alg. 1", "ways only", "priorities only"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestAblateConfigDelay(t *testing.T) {
	res, err := AblateConfigDelay(context.Background(), 5, 1, runner.Options{}, kernel.Events, []float64{0, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// φ is zero with a free SDU and grows with the delay.
	if res.Points[0].Value != 0 {
		t.Errorf("φ with zero delay = %g", res.Points[0].Value)
	}
	if res.Points[1].Value <= 0 {
		t.Errorf("φ with slow SDU = %g, want > 0", res.Points[1].Value)
	}
	if _, err := AblateConfigDelay(context.Background(), 0, 1, runner.Options{}, kernel.Events, []float64{0}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := AblateConfigDelay(context.Background(), 1, 1, runner.Options{}, kernel.Events, []float64{-1}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestETMDiminishingReturns(t *testing.T) {
	pts := ETMDiminishingReturns(10, 8192, 8) // needs 4 ways
	if len(pts) != 9 {
		t.Fatalf("points = %d", len(pts))
	}
	// Monotone non-increasing, flat after ⌈δ/κ⌉ = 4.
	for i := 1; i < len(pts); i++ {
		if pts[i].Value > pts[i-1].Value+1e-12 {
			t.Errorf("cost increased at n=%d", i)
		}
	}
	if pts[4].Value != pts[8].Value {
		t.Error("extra ways beyond the demand changed the cost")
	}
	if math.Abs(pts[4].Value-3) > 1e-9 { // 10 × (1 − 0.7)
		t.Errorf("saturated cost = %g, want 3", pts[4].Value)
	}
}

func TestAblationFormat(t *testing.T) {
	res := &AblationResult{
		Name: "zeta", Metric: "x",
		Points: []AblationPoint{{Param: 1, Value: 2}},
	}
	out := res.Format()
	if !strings.Contains(out, "zeta") || !strings.Contains(out, "2.0000") {
		t.Errorf("format = %q", out)
	}
}

func TestDefaultsSane(t *testing.T) {
	if len(AblationZetaDefault()) == 0 || len(AblationWayBytesDefault()) == 0 ||
		len(AblationDelayDefault()) == 0 {
		t.Error("empty defaults")
	}
	for _, kb := range AblationWayBytesDefault() {
		if 32*1024%kb != 0 {
			t.Errorf("default κ=%d does not divide 32KB", kb)
		}
	}
}

func TestCSVExports(t *testing.T) {
	cfg := smallCfgCSV()
	s, err := SweepUtilization(context.Background(), cfg, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "U,avg_prop,") {
		t.Errorf("makespan CSV header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if strings.Count(csv, "\n") != 2 {
		t.Errorf("makespan CSV rows:\n%s", csv)
	}

	abl := &AblationResult{Name: "zeta", Points: []AblationPoint{{Param: 4, Value: 0.5}}}
	if got := abl.CSV(); got != "zeta,value\n4,0.5\n" {
		t.Errorf("ablation CSV = %q", got)
	}

	se := SideEffectsCSV([]SideEffectsPoint{{Cores: 8, Utilization: 0.8, WayUtilization: 0.95, Phi: 0.001}})
	if !strings.Contains(se, "8,0.8,0.95,0.001") {
		t.Errorf("side effects CSV = %q", se)
	}

	acc := AcceptanceCSV([]AcceptancePoint{{Utilization: 1, PropAccepted: 0.9, BaseAccepted: 0.5, SimFeasible: 1}})
	if !strings.Contains(acc, "1,0.5,0.9,1") {
		t.Errorf("acceptance CSV = %q", acc)
	}
}

func smallCfgCSV() MakespanConfig {
	cfg := DefaultMakespanConfig()
	cfg.DAGs = 5
	cfg.Instances = 2
	return cfg
}

package mem

import "testing"

func TestNewErrors(t *testing.T) {
	for _, c := range []struct{ size, lat int }{{0, 10}, {-4, 10}, {6, 10}, {64, -1}} {
		if _, err := New(c.size, c.lat); err == nil {
			t.Errorf("New(%d,%d) accepted", c.size, c.lat)
		}
	}
}

func TestWordRoundTrip(t *testing.T) {
	m, err := New(1024, 80)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1024 || m.Latency() != 80 {
		t.Errorf("size/latency = %d/%d", m.Size(), m.Latency())
	}
	if err := m.WriteWord(16, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadWord(16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Errorf("read %#x", v)
	}
	// Little-endian layout.
	b, err := m.LoadByte(16)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0xef {
		t.Errorf("byte 0 = %#x, want 0xef (little endian)", b)
	}
	if m.Reads != 2 || m.Writes != 1 {
		t.Errorf("stats = %d reads, %d writes", m.Reads, m.Writes)
	}
}

func TestBounds(t *testing.T) {
	m, _ := New(64, 1)
	if _, err := m.ReadWord(64); err == nil {
		t.Error("read past end accepted")
	}
	if err := m.WriteWord(62, 1); err == nil {
		t.Error("straddling write accepted")
	}
	if _, err := m.ReadWord(2); err == nil {
		t.Error("misaligned read accepted")
	}
	if err := m.WriteWord(3, 1); err == nil {
		t.Error("misaligned write accepted")
	}
	if _, err := m.LoadByte(64); err == nil {
		t.Error("byte read past end accepted")
	}
}

func TestLoadProgram(t *testing.T) {
	m, _ := New(64, 1)
	if err := m.LoadProgram(8, []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint32{1, 2, 3} {
		v, err := m.ReadWord(PhysAddr(8 + 4*i))
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Errorf("word %d = %d, want %d", i, v, want)
		}
	}
	if err := m.LoadProgram(60, []uint32{1, 2}); err == nil {
		t.Error("overflowing program accepted")
	}
}

// Package mem models the SoC's external memory: a flat physical byte array
// with a fixed access latency, the backing store of the whole cache
// hierarchy. All caches in this simulator are write-through, so physical
// memory is always authoritative for data; the cache levels exist to model
// access *timing* and the L1.5 sharing semantics.
package mem

import "fmt"

// PhysAddr is a physical byte address.
type PhysAddr uint32

// Memory is the flat external DRAM.
type Memory struct {
	data    []byte
	latency int

	// Reads and Writes count word-granularity accesses that reached
	// memory (i.e. missed every cache level above it).
	Reads, Writes uint64
}

// New returns a memory of the given size and fixed access latency in
// cycles. Size must be a positive multiple of 4.
func New(size int, latency int) (*Memory, error) {
	if size <= 0 || size%4 != 0 {
		return nil, fmt.Errorf("mem: size %d must be a positive multiple of 4", size)
	}
	if latency < 0 {
		return nil, fmt.Errorf("mem: negative latency %d", latency)
	}
	return &Memory{data: make([]byte, size), latency: latency}, nil
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Latency returns the fixed access latency in cycles.
func (m *Memory) Latency() int { return m.latency }

func (m *Memory) check(addr PhysAddr, n int) error {
	if int(addr) < 0 || int(addr)+n > len(m.data) {
		return fmt.Errorf("mem: access [%#x,%#x) outside [0,%#x)", addr, int(addr)+n, len(m.data))
	}
	return nil
}

// ReadWord returns the little-endian 32-bit word at addr (4-byte aligned).
func (m *Memory) ReadWord(addr PhysAddr) (uint32, error) {
	if addr%4 != 0 {
		return 0, fmt.Errorf("mem: misaligned word read at %#x", addr)
	}
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	m.Reads++
	d := m.data[addr:]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

// WriteWord stores a little-endian 32-bit word at addr (4-byte aligned).
func (m *Memory) WriteWord(addr PhysAddr, v uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("mem: misaligned word write at %#x", addr)
	}
	if err := m.check(addr, 4); err != nil {
		return err
	}
	m.Writes++
	d := m.data[addr:]
	d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr PhysAddr) (byte, error) {
	if err := m.check(addr, 1); err != nil {
		return 0, err
	}
	m.Reads++
	return m.data[addr], nil
}

// StoreByte stores one byte at addr.
func (m *Memory) StoreByte(addr PhysAddr, v byte) error {
	if err := m.check(addr, 1); err != nil {
		return err
	}
	m.Writes++
	m.data[addr] = v
	return nil
}

// LoadProgram copies a program image to addr (no latency accounting; this
// is the loader, not the simulated bus).
func (m *Memory) LoadProgram(addr PhysAddr, words []uint32) error {
	if err := m.check(addr, 4*len(words)); err != nil {
		return err
	}
	for i, w := range words {
		d := m.data[int(addr)+4*i:]
		d[0], d[1], d[2], d[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	}
	return nil
}

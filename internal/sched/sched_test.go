package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l15cache/internal/dag"
	"l15cache/internal/etm"
)

func TestL15ScheduleFig1(t *testing.T) {
	task := dag.Fig1Example()
	res, err := L15Schedule(task, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}

	// Wave structure: {v1}, {v2,v3,v4}, {v5,v6}, {v7}.
	wantWaves := [][]int{{0}, {1, 2, 3}, {4, 5}, {6}}
	if len(res.Waves) != len(wantWaves) {
		t.Fatalf("waves = %v", res.Waves)
	}
	for i, w := range res.Waves {
		if len(w) != len(wantWaves[i]) {
			t.Fatalf("wave %d = %v, want size %d", i, w, len(wantWaves[i]))
		}
		seen := map[dag.NodeID]bool{}
		for _, id := range w {
			seen[id] = true
		}
		for _, id := range wantWaves[i] {
			if !seen[dag.NodeID(id)] {
				t.Errorf("wave %d = %v, missing %d", i, w, id)
			}
		}
	}

	// Source gets the top priority |V| = 7; priorities are a permutation
	// of 1..7.
	if p := task.Node(task.Source()).Priority; p != 7 {
		t.Errorf("source priority = %d, want 7", p)
	}
	seen := map[int]bool{}
	for _, n := range task.Nodes {
		if n.Priority < 1 || n.Priority > 7 || seen[n.Priority] {
			t.Errorf("bad priority %d on node %d", n.Priority, n.ID)
		}
		seen[n.Priority] = true
	}

	// v1 produces 4096 B => needs 2 ways, ζ=16 is plenty.
	if res.LocalWays[0] != 2 {
		t.Errorf("v1 local ways = %d, want 2", res.LocalWays[0])
	}
	// The sink (v7, no successors) must receive no local ways.
	if res.LocalWays[6] != 0 {
		t.Errorf("sink local ways = %d, want 0", res.LocalWays[6])
	}

	// Within wave 2, v4 lies on the longest raw path (λ=20) so it is
	// examined before v2 (λ=19) and gets the higher priority.
	if task.Node(3).Priority <= task.Node(1).Priority {
		t.Errorf("v4 priority %d should exceed v2 priority %d (longer path first)",
			task.Node(3).Priority, task.Node(1).Priority)
	}
}

func TestL15ScheduleCapacity(t *testing.T) {
	// A single wave of 3 nodes each needing 4 ways, with ζ=6: the longest
	// path gets its full 4, the next gets the 2 left, the third gets 0.
	task := dag.New("cap", 1000, 1000)
	src := task.AddNode("src", 1, 8192) // needs 4 ways
	a := task.AddNode("a", 9, 8192)
	b := task.AddNode("b", 5, 8192)
	c := task.AddNode("c", 3, 8192)
	sink := task.AddNode("sink", 1, 0)
	for _, v := range []dag.NodeID{a, b, c} {
		task.MustAddEdge(src, v, 2, 0.5)
		task.MustAddEdge(v, sink, 2, 0.5)
	}
	res, err := L15Schedule(task, 6, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// Wave 0: src takes min(4, 6) = 4 ways. Wave 1: src's group is now
	// global (still occupying 4), so only 2 ways remain for node a; b and
	// c get nothing (Ω full).
	if res.LocalWays[src] != 4 {
		t.Errorf("src ways = %d, want 4", res.LocalWays[src])
	}
	if res.LocalWays[a] != 2 {
		t.Errorf("a (longest path) ways = %d, want 2", res.LocalWays[a])
	}
	if res.LocalWays[b] != 0 || res.LocalWays[c] != 0 {
		t.Errorf("b,c ways = %d,%d, want 0,0", res.LocalWays[b], res.LocalWays[c])
	}
}

func TestL15ScheduleFreesGlobals(t *testing.T) {
	// On a long chain, each node's group is freed two waves later, so
	// every node can receive its full demand even with a small ζ.
	task := dag.Chain("chain", 10, 2, 3, 0.5, 4096) // each needs 2 ways
	res, err := L15Schedule(task, 4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ { // all but the sink
		if res.LocalWays[dag.NodeID(i)] != 2 {
			t.Errorf("node %d ways = %d, want 2 (globals must be freed)",
				i, res.LocalWays[dag.NodeID(i)])
		}
	}
}

func TestL15ScheduleZeroZeta(t *testing.T) {
	task := dag.Fig1Example()
	res, err := L15Schedule(task, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalWays) != 0 {
		t.Errorf("ζ=0 allocated ways: %v", res.LocalWays)
	}
	// Degenerates to longest-path-first: edge costs stay raw.
	for _, e := range task.Edges {
		if got := res.EdgeCost(e); got != e.Cost {
			t.Errorf("edge cost %g, want raw %g", got, e.Cost)
		}
	}
}

func TestL15ScheduleErrors(t *testing.T) {
	task := dag.Fig1Example()
	if _, err := L15Schedule(task, -1, 2048); err == nil {
		t.Error("negative ζ accepted")
	}
	if _, err := L15Schedule(task, 16, 0); err == nil {
		t.Error("zero κ accepted")
	}
	bad := dag.New("bad", 1, 1)
	if _, err := L15Schedule(bad, 16, 2048); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestLongestPathFirst(t *testing.T) {
	task := dag.Fig1Example()
	res, err := LongestPathFirst(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalWays) != 0 {
		t.Error("baseline allocated L1.5 ways")
	}
	// Critical path v1,v4,v6,v7 must be prioritised over off-path peers
	// in the same wave.
	if task.Node(3).Priority <= task.Node(1).Priority {
		t.Error("v4 should outrank v2")
	}
	if task.Node(5).Priority <= task.Node(4).Priority {
		t.Error("v6 should outrank v5")
	}
	order := res.PriorityOrder()
	if order[0] != task.Source() {
		t.Errorf("highest priority = %d, want source", order[0])
	}
}

func randomTask(r *rand.Rand) *dag.Task {
	t := dag.New("rand", 1000, 1000)
	src := t.AddNode("src", 1+r.Float64()*5, int64(r.Intn(16*1024)))
	prev := []dag.NodeID{src}
	for l, layers := 0, 2+r.Intn(4); l < layers; l++ {
		cur := make([]dag.NodeID, 1+r.Intn(4))
		for i := range cur {
			cur[i] = t.AddNode("n", 1+r.Float64()*5, int64(r.Intn(16*1024)))
			t.MustAddEdge(prev[r.Intn(len(prev))], cur[i], 1+r.Float64()*3, 0.1+r.Float64()*0.6)
		}
		prev = cur
	}
	sink := t.AddNode("sink", 1, 0)
	for _, n := range t.Nodes {
		if n.ID != sink && len(t.Succ(n.ID)) == 0 {
			t.MustAddEdge(n.ID, sink, 1, 0.5)
		}
	}
	return t
}

// Property: Alg. 1 always yields a bijective priority assignment 1..|V|,
// never allocates more than ⌈δ/κ⌉ ways to a node, and the live-way total
// within any two consecutive waves never exceeds ζ.
func TestQuickL15Invariants(t *testing.T) {
	f := func(seed int64, zr uint8) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomTask(r)
		zeta := int(zr % 32)
		res, err := L15Schedule(task, zeta, 2048)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, n := range task.Nodes {
			if n.Priority < 1 || n.Priority > len(task.Nodes) || seen[n.Priority] {
				return false
			}
			seen[n.Priority] = true
		}
		total := 0
		for v, w := range res.LocalWays {
			if w < 0 || w > etm.WaysNeeded(task.Node(v).Data, 2048) {
				return false
			}
			total += w
		}
		// Live ways at any time span at most two adjacent waves.
		for i := 0; i+1 < len(res.Waves); i++ {
			live := 0
			for _, id := range res.Waves[i] {
				live += res.LocalWays[id]
			}
			for _, id := range res.Waves[i+1] {
				live += res.LocalWays[id]
			}
			if live > zeta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the ETM critical path under Alg. 1's allocation is never longer
// than the raw critical path, and more ways never hurt.
func TestQuickL15Improves(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomTask(r)
		raw := task.CriticalPathLength(dag.RawCost)
		res8, err := L15Schedule(task.Clone(), 8, 2048)
		if err != nil {
			return false
		}
		res32, err := L15Schedule(task.Clone(), 32, 2048)
		if err != nil {
			return false
		}
		cp8 := res8.Task.CriticalPathLength(res8.Model.Weight())
		cp32 := res32.Task.CriticalPathLength(res32.Model.Weight())
		return cp8 <= raw+1e-9 && cp32 <= cp8+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every wave respects precedence — each node's predecessors all
// appear in strictly earlier waves.
func TestQuickWavesRespectPrecedence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomTask(r)
		res, err := L15Schedule(task, 16, 2048)
		if err != nil {
			return false
		}
		waveOf := map[dag.NodeID]int{}
		count := 0
		for i, w := range res.Waves {
			for _, id := range w {
				waveOf[id] = i
				count++
			}
		}
		if count != len(task.Nodes) {
			return false
		}
		for _, e := range task.Edges {
			if waveOf[e.From] >= waveOf[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTopologicalPriority(t *testing.T) {
	task := dag.Fig1Example()
	res, err := TopologicalPriority(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalWays) != 0 {
		t.Error("topological baseline allocated ways")
	}
	// Priorities follow topological order: every edge goes from higher to
	// lower priority.
	for _, e := range task.Edges {
		if task.Node(e.From).Priority <= task.Node(e.To).Priority {
			t.Errorf("edge %d->%d violates topological priorities", e.From, e.To)
		}
	}
	if _, err := TopologicalPriority(dag.New("bad", 1, 1)); err == nil {
		t.Error("invalid task accepted")
	}
}

// Longest-path-first priorities beat topological ones on parallel-starved
// platforms in aggregate: on 2 cores the critical path must be favoured.
func TestPriorityPolicyComparison(t *testing.T) {
	var lpfWins, topoWins int
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		task := randomTask(r)

		lpfTask := task.Clone()
		lpf, err := LongestPathFirst(lpfTask)
		if err != nil {
			t.Fatal(err)
		}
		topoTask := task.Clone()
		topo, err := TopologicalPriority(topoTask)
		if err != nil {
			t.Fatal(err)
		}
		a := simulateSerialComparable(lpf)
		b := simulateSerialComparable(topo)
		switch {
		case a < b:
			lpfWins++
		case b < a:
			topoWins++
		}
	}
	if lpfWins < topoWins {
		t.Errorf("longest-path-first won %d, topological won %d", lpfWins, topoWins)
	}
}

// simulateSerialComparable computes a simple 2-core list-schedule makespan
// for the result's priorities (re-implemented minimally here to avoid an
// import cycle with schedsim).
func simulateSerialComparable(res *Result) float64 {
	t := res.Task
	n := len(t.Nodes)
	const m = 2
	indeg := make([]int, n)
	for id := range t.Nodes {
		indeg[id] = len(t.Pred(dag.NodeID(id)))
	}
	free := [m]float64{}
	finished := make([]float64, n)
	done := make([]bool, n)
	var ready []dag.NodeID
	ready = append(ready, t.Source())
	for count := 0; count < n; {
		// Pick the highest-priority ready node.
		best := -1
		for i, v := range ready {
			if best < 0 || t.Node(v).Priority > t.Node(ready[best]).Priority {
				best = i
			}
		}
		v := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		// Earliest core and data availability.
		core := 0
		if free[1] < free[0] {
			core = 1
		}
		start := free[core]
		for _, p := range t.Pred(v) {
			e, _ := t.Edge(p, v)
			if f := finished[p] + e.Cost; f > start {
				start = f
			}
		}
		finish := start + t.Node(v).WCET
		free[core] = finish
		finished[v] = finish
		done[v] = true
		count++
		for _, s := range t.Succ(v) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	var ms float64
	for _, f := range finished {
		if f > ms {
			ms = f
		}
	}
	return ms
}

// Package sched implements the paper's DAG scheduling with the L1.5 Cache
// (Algorithm 1) together with the baseline priority-assignment policies the
// evaluation compares against.
//
// Algorithm 1 walks the DAG wave by wave from the source. At the start of
// each wave the local way groups allocated to the previous wave turn global
// (their dependent data becomes readable by every successor) and the way
// groups that were already global are freed. Within a wave, nodes are
// examined in decreasing λ_j (length of the longest path through the node,
// recomputed by dynamic programming with ETM-reduced edge costs after every
// wave) and receive
//
//	F(v_j, Ω, ζ) = min(⌈δ_j/κ⌉, ζ − Σ_{ω∈Ω} ω.size)
//
// local ways plus the next lower priority level. The result is a complete
// L1.5 configuration and priority map for the task.
package sched

import (
	"fmt"
	"sort"

	"l15cache/internal/dag"
	"l15cache/internal/etm"
	"l15cache/internal/flight"
	"l15cache/internal/metrics"
)

// Scheduler counters on the default registry. Atomic increments, so the
// experiment harnesses may schedule from many goroutines concurrently.
var (
	mSchedules = metrics.Default.Counter("sched.schedules")
	mWaves     = metrics.Default.Counter("sched.waves")
	mNodes     = metrics.Default.Counter("sched.nodes_examined")
	mWayGrants = metrics.Default.Counter("sched.way_grants")
	mLambda    = metrics.Default.Counter("sched.lambda_recomputes")
)

// WayGroup is ω_x of Alg. 1: a group of L1.5 ways bound to a node.
type WayGroup struct {
	Size   int        // ω_x.size: number of ways in the group
	Global bool       // ω_x.type: local (false) or global (true)
	Owner  dag.NodeID // ω_x.owner
}

// Result is the output of a scheduling policy: an L1.5 configuration and a
// priority for every node. Priorities are also written into the task's
// nodes (higher value dispatches first).
type Result struct {
	Task     *dag.Task
	Zeta     int   // ζ: total L1.5 ways available to the task
	WayBytes int64 // κ: capacity of one way

	// LocalWays[v] is the number of local L1.5 ways Alg. 1 granted v to
	// hold its dependent data. Nodes absent from the map received none.
	LocalWays map[dag.NodeID]int

	// Waves records the examination fronts, source first. Wave k+1 holds
	// nodes whose predecessors were all examined by wave k.
	Waves [][]dag.NodeID

	// Model is the ETM view of the task under LocalWays; its Weight() is
	// the edge-cost function the simulator uses for the proposed system.
	Model *etm.Model
}

// EdgeCost returns the communication cost of edge e under this result's way
// allocation (the full μ for policies that allocate no ways).
func (r *Result) EdgeCost(e dag.Edge) float64 { return r.Model.EdgeCost(e) }

// PriorityOrder returns the node IDs from highest to lowest priority.
func (r *Result) PriorityOrder() []dag.NodeID {
	ids := make([]dag.NodeID, len(r.Task.Nodes))
	for i := range ids {
		ids[i] = dag.NodeID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		return r.Task.Node(ids[a]).Priority > r.Task.Node(ids[b]).Priority
	})
	return ids
}

// L15Schedule runs Algorithm 1 on the task with an L1.5 Cache of zeta ways
// of wayBytes capacity each. It validates the task, then returns the way
// allocation and writes node priorities.
func L15Schedule(t *dag.Task, zeta int, wayBytes int64) (*Result, error) {
	return L15ScheduleRec(t, zeta, wayBytes, nil, 0)
}

// L15ScheduleRec is L15Schedule with a flight recorder attached: every
// wave transition, λ_j recomputation, F(v_j, Ω, ζ) grant and local→global
// conversion of the run is recorded under task index task. A nil recorder
// makes it identical to L15Schedule.
func L15ScheduleRec(t *dag.Task, zeta int, wayBytes int64, rec *flight.Recorder, task int) (*Result, error) {
	if zeta < 0 {
		return nil, fmt.Errorf("sched: negative way count %d", zeta)
	}
	if wayBytes <= 0 {
		return nil, fmt.Errorf("sched: non-positive way capacity %d", wayBytes)
	}
	return waveSchedule(t, zeta, wayBytes, true, rec, int32(task))
}

// LongestPathFirst assigns priorities with the identical wave traversal and
// longest-path-first rule but no L1.5 ways — the intra-task priority
// assignment of He et al. [8] that the baseline systems use. Edge costs stay
// at their raw μ.
func LongestPathFirst(t *dag.Task) (*Result, error) {
	return waveSchedule(t, 0, etm.DefaultWayBytes, false, nil, 0)
}

// LongestPathFirstRec is LongestPathFirst with a flight recorder
// attached (see L15ScheduleRec).
func LongestPathFirstRec(t *dag.Task, rec *flight.Recorder, task int) (*Result, error) {
	return waveSchedule(t, 0, etm.DefaultWayBytes, false, rec, int32(task))
}

// waveSchedule is the common skeleton of Alg. 1. When allocate is false the
// way-management lines (5-8, 14-16) are skipped, leaving the pure
// longest-path-first priority assignment. A non-nil rec receives the
// planning-time flight events (Wave = wave index, Time = wave index in
// planning steps), stamped with task.
func waveSchedule(t *dag.Task, zeta int, wayBytes int64, allocate bool, rec *flight.Recorder, task int32) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Task:      t,
		Zeta:      zeta,
		WayBytes:  wayBytes,
		LocalWays: make(map[dag.NodeID]int),
		Model:     etm.NewModel(t, wayBytes),
	}

	mSchedules.Inc()
	allocFlag := 0.0
	if allocate {
		allocFlag = 1
	}
	rec.Emit(flight.Event{Kind: flight.KindSchedStart, Task: task,
		Job: -1, Node: -1, Core: -1, Cluster: -1, Wave: -1,
		A: float64(zeta), B: float64(wayBytes), C: allocFlag})
	examined := make([]bool, len(t.Nodes))
	remaining := make([]int, len(t.Nodes)) // unexamined predecessors per node
	for id := range t.Nodes {
		remaining[id] = len(t.Pred(dag.NodeID(id)))
	}
	var omega []WayGroup // Ω
	used := 0            // ΣΩ, maintained incrementally
	pri := len(t.Nodes)  // pri = |V_i|
	var pbuf dag.PathBuf // scratch reused by every λ recomputation
	lambda := t.LongestThroughInto(dag.RawCost, &pbuf)
	weight := res.Model.Weight()

	waveIdx := int32(0)
	q := []dag.NodeID{t.Source()} // Q = {v_src}
	for len(q) > 0 {
		if allocate {
			// Lines 3-10: previous wave's local groups become
			// global (handing the data to the successors); stale
			// global groups free their ways.
			next := omega[:0]
			for _, w := range omega {
				if !w.Global {
					w.Global = true
					if sucs := t.Succ(w.Owner); len(sucs) > 0 {
						w.Owner = sucs[0]
					}
					rec.Emit(flight.Event{Kind: flight.KindGVConvert,
						Time: float64(waveIdx), Task: task, Job: -1,
						Node: int32(w.Owner), Core: -1, Cluster: -1,
						Wave: waveIdx, A: float64(w.Size)})
					next = append(next, w)
				} else {
					used -= w.Size
				}
			}
			omega = next
		}

		// Lines 11-19: examine the wave, longest path first.
		wave := append([]dag.NodeID(nil), q...)
		sort.SliceStable(wave, func(a, b int) bool {
			if lambda[wave[a]] != lambda[wave[b]] {
				return lambda[wave[a]] > lambda[wave[b]]
			}
			return wave[a] < wave[b] // deterministic tie-break
		})
		rec.Emit(flight.Event{Kind: flight.KindWave,
			Time: float64(waveIdx), Task: task, Job: -1, Node: -1,
			Core: -1, Cluster: -1, Wave: waveIdx,
			A: float64(len(wave)), B: float64(used)})
		for _, vj := range wave {
			// Local ways hold dependent data for suc(v_j); a node
			// with no successors needs none (Fig. 6: the sink only
			// reads global ways).
			if allocate && len(t.Succ(vj)) > 0 && used < zeta {
				size := fWays(t.Node(vj), res.Model, used, zeta)
				if size > 0 {
					omega = append(omega, WayGroup{Size: size, Owner: vj})
					used += size
					res.LocalWays[vj] = size
					res.Model.Ways[vj] = size
					mWayGrants.Add(uint64(size))
					rec.Emit(flight.Event{Kind: flight.KindPlanWays,
						Time: float64(waveIdx), Task: task, Job: -1,
						Node: int32(vj), Core: -1, Cluster: -1,
						Wave: waveIdx, A: float64(size),
						B: float64(used), C: float64(zeta)})
				}
			}
			t.Node(vj).Priority = pri
			pri--
			examined[vj] = true
			for _, s := range t.Succ(vj) {
				remaining[s]--
			}
		}
		res.Waves = append(res.Waves, wave)
		mWaves.Inc()
		mNodes.Add(uint64(len(wave)))

		// Line 20: refresh λ_j under the new allocation.
		lambda = t.LongestThroughInto(weight, &pbuf)
		mLambda.Inc()
		maxLambda := 0.0
		for _, l := range lambda {
			if l > maxLambda {
				maxLambda = l
			}
		}
		rec.Emit(flight.Event{Kind: flight.KindLambda,
			Time: float64(waveIdx), Task: task, Job: -1, Node: -1,
			Core: -1, Cluster: -1, Wave: waveIdx, A: maxLambda})
		waveIdx++

		// Line 21: Q := unexamined nodes whose predecessors are all
		// examined (remaining counter at zero).
		q = q[:0]
		for id := range t.Nodes {
			v := dag.NodeID(id)
			if !examined[v] && remaining[v] == 0 {
				q = append(q, v)
			}
		}
	}
	return res, nil
}

// fWays is F(v_j, Ω, ζ) = min(⌈δ_j/κ⌉, ζ − ΣΩ); used is ΣΩ.
func fWays(v *dag.Node, m *etm.Model, used, zeta int) int {
	need := etm.WaysNeeded(v.Data, m.WayBytes)
	free := zeta - used
	if need < free {
		return need
	}
	return free
}

// TopologicalPriority assigns priorities by plain topological order
// (earlier nodes higher), the naive baseline that ignores path lengths
// entirely. It allocates no L1.5 ways.
func TopologicalPriority(t *dag.Task) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	order, err := t.TopoOrder()
	if err != nil {
		return nil, err
	}
	pri := len(t.Nodes)
	for _, id := range order {
		t.Node(id).Priority = pri
		pri--
	}
	return &Result{
		Task:      t,
		WayBytes:  etm.DefaultWayBytes,
		LocalWays: map[dag.NodeID]int{},
		Model:     etm.NewModel(t, etm.DefaultWayBytes),
	}, nil
}

package lint

// This file is the suite's stand-in for golang.org/x/tools/go/analysis/
// analysistest (unavailable offline): testdata packages annotate the lines
// they expect findings on with
//
//	// want "regexp"
//
// comments (several per line allowed), and runAnalyzerTest checks the
// analyzer's diagnostics against them both ways — every expectation must
// be matched by a diagnostic and every diagnostic by an expectation. A
// trailing want applies to its own line; a want alone on a line applies to
// the line above it (needed when the flagged line's trailing comment is
// already a //lint:ignore directive under test).

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// expectation is one `// want "re"` annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseExpectations extracts want annotations from the loaded package's
// comments.
func parseExpectations(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	lines := map[string][]string{} // file -> source lines, for standalone detection
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				line := pos.Line
				if standaloneComment(t, lines, pos.Filename, pos.Line, pos.Column) {
					line--
				}
				for _, m := range matches {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return wants
}

// standaloneComment reports whether only whitespace precedes the comment
// starting at (line, col) in file.
func standaloneComment(t *testing.T, cache map[string][]string, file string, line, col int) bool {
	t.Helper()
	src, ok := cache[file]
	if !ok {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		src = strings.Split(string(data), "\n")
		cache[file] = src
	}
	if line-1 >= len(src) {
		return false
	}
	return strings.TrimSpace(src[line-1][:col-1]) == ""
}

// runAnalyzerTest loads testdata/src/<dir>, runs the analyzer through the
// full pipeline (including //lint:ignore suppression) and diffs the
// diagnostics against the want annotations.
func runAnalyzerTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := parseExpectations(t, pkg)

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

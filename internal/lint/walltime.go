package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTime enforces the simulator's clock discipline: simulated time is a
// cycle counter and randomness is an injected seed, so non-test code must
// not read the wall clock or the global math/rand generator. A wall-clock
// read smuggles host timing into results; the global generator's state is
// shared and unseeded, so two runs (or two goroutines) diverge. Three
// packages are exempted from the clock ban (never the global-rand ban):
// runner, whose wall-clock reads feed only the operator-facing
// progress/ETA gauges and trace spans; flight, whose recorded events are
// cycle-stamped sim-time while its live /events stream paces its polling
// off a wall-clock ticker; and telemetry, whose sampler timestamps
// observations of the simulation for operators and never feeds a value
// back into one.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbids wall-clock reads (time.Now etc.) and global math/rand use in non-test simulator code; clocks are cycle counters, randomness is injected via *rand.Rand (packages runner, flight and telemetry may read the clock for operator-facing pacing only)",
	Run:  runWallTime,
}

// wallClockFuncs are the time functions that read or depend on the host
// clock. Pure constructors/converters (time.Duration arithmetic,
// time.Unix, parsing) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

// seededRandFuncs are the math/rand package-level functions that construct
// explicit generators — the approved path. Everything else at package level
// drives the shared global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors
	"NewPCG": true, "NewChaCha8": true,
}

func runWallTime(pass *Pass) error {
	// Three sanctioned wall-clock readers: the internal/runner harness
	// (elapsed time feeds only the operator-facing progress/ETA gauges and
	// trace spans), the internal/flight recorder (its events are
	// cycle-stamped sim-time; the wall clock only paces the live /events
	// SSE polling) and internal/telemetry (its sampler timestamps
	// operator-facing observations; archived deterministic artifacts never
	// read it). No reading ever reaches a simulated value, and the
	// global-rand ban is not lifted for any of them.
	timeExempt := pass.Pkg.Name() == "runner" || pass.Pkg.Name() == "flight" ||
		pass.Pkg.Name() == "telemetry"
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if !timeExempt && wallClockFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"time.%s reads the wall clock; simulator time must come from the cycle counter (inject a tick source if timing is needed)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"rand.%s uses the global generator; inject a seeded *rand.Rand so runs are reproducible",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}

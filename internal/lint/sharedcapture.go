package lint

// The sharedcapture analyzer enforces the third leg of the runner's
// determinism contract (DESIGN.md §9): a shard function may only read its
// captured configuration and write its own return value. A closure handed
// to runner.Map that writes captured addressable state — a captured
// local, a field or element reached through one, or a package-level
// variable anywhere on its call graph — makes results depend on shard
// scheduling order (and is a data race under -workers > 1).
//
// One write shape is sanctioned, mirroring hotalloc's scratch-reuse
// idiom: an element write whose index expression derives from the shard
// parameter (`results[s.Index] = ...`) is the per-shard-slot discipline —
// each shard owns its slot, so no two shards ever touch the same storage.
//
// Detection is two-layered:
//
//   - syntactic, on the closure body: assignments, op-assignments,
//     inc/dec and range-clause writes whose base identifier is declared
//     outside the literal, plus &-exposure of captured state (taking the
//     address hands the callee license to write);
//   - interprocedural, over the call graph: "shared-write" facts seeded
//     on every function that writes a package-level variable propagate
//     caller-ward (facts.go), so a closure reaching one through any call
//     chain reports with the full chain as evidence. Receiver writes are
//     deliberately not facts here: a method mutating its receiver is
//     shard-local when the receiver was built inside the shard, which is
//     the common case — but a *named* shard function that writes its own
//     receiver shares that receiver across every shard and is flagged
//     directly.
//
// Channel sends on captured channels are out of scope: the runner's
// index-ordered reduction is the only sanctioned result path, and a send
// is not a write to the captured variable itself.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedCapture is the shard-closure determinism analyzer.
var SharedCapture = &Analyzer{
	Name:      "sharedcapture",
	Doc:       "runner.Map shard functions must not write captured or package-level state",
	RunModule: runSharedCapture,
}

const sharedWriteFact = "shared-write"

func runSharedCapture(mp *ModulePass) error {
	var sites []mapSite
	for _, pkg := range mp.Pkgs {
		sites = append(sites, findMapSites(pkg)...)
	}
	if len(sites) == 0 {
		return nil
	}

	fs := NewFactSet(mp.Graph)
	seedGlobalWriteFacts(mp.Graph, fs)
	fs.Propagate()

	for _, site := range sites {
		switch fn := ast.Unparen(site.fnArg).(type) {
		case *ast.FuncLit:
			checkClosure(mp, fs, site, fn)
		case *ast.Ident:
			if f, ok := site.pkg.Info.Uses[fn].(*types.Func); ok {
				checkNamedShardFn(mp, fs, site, f, fn.Pos())
			}
		case *ast.SelectorExpr:
			if f, ok := site.pkg.Info.Uses[fn.Sel].(*types.Func); ok {
				checkNamedShardFn(mp, fs, site, f, fn.Sel.Pos())
			}
		}
	}
	return nil
}

// seedGlobalWriteFacts attaches a shared-write fact to every function
// whose body assigns (or exposes by address) a package-level variable.
func seedGlobalWriteFacts(g *CallGraph, fs *FactSet) {
	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		if node.Decl == nil || node.Pkg == nil {
			continue
		}
		pkgScope := node.Pkg.Types.Scope()
		isGlobal := func(e ast.Expr) (*ast.Ident, bool) {
			base := baseIdentOf(e)
			if base == nil {
				return nil, false
			}
			v, ok := objOf(node.Pkg, base).(*types.Var)
			return base, ok && !v.IsField() && v.Parent() == pkgScope
		}
		seed := func(e ast.Expr, what string) {
			if base, ok := isGlobal(e); ok {
				fs.Seed(id, Fact{
					Kind:   sharedWriteFact,
					Sink:   what + " " + exprString(e) + " (package-level " + base.Name + ")",
					Origin: node.Pkg.Fset.Position(e.Pos()),
				})
			}
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					seed(lhs, "writes")
				}
			case *ast.IncDecStmt:
				seed(n.X, "writes")
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					seed(n.X, "exposes address of")
				}
			}
			return true
		})
	}
}

// checkClosure applies the syntactic captured-write rules to a shard
// closure and the interprocedural shared-write facts to its callees.
func checkClosure(mp *ModulePass, fs *FactSet, site mapSite, lit *ast.FuncLit) {
	pkg := site.pkg
	shardParams := shardParamVars(pkg, lit)

	capturedBase := func(e ast.Expr) (*ast.Ident, *types.Var) {
		base := baseIdentOf(e)
		if base == nil {
			return nil, nil
		}
		v, ok := objOf(pkg, base).(*types.Var)
		if !ok || v.IsField() {
			return nil, nil
		}
		// Declared inside the literal (params included): shard-local.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil, nil
		}
		return base, v
	}
	scope := func(v *types.Var) string {
		if v.Parent() == pkg.Types.Scope() {
			return "package-level variable"
		}
		return "captured variable"
	}
	report := func(e ast.Expr, base *ast.Ident, v *types.Var, what string) {
		mp.ReportAt(pkg.Fset.Position(e.Pos()), nil,
			"runner.Map shard closure %s %s %s: results would depend on shard scheduling order (write per-shard state, or return the value and let the runner reduce in index order)",
			what, scope(v), exprString(e))
	}
	checkWrite := func(e ast.Expr) {
		base, v := capturedBase(e)
		if base == nil {
			return
		}
		if indexedByShard(pkg, e, shardParams) {
			return // per-shard slot: results[s.Index] = ...
		}
		report(e, base, v, "writes")
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					checkWrite(n.Key)
				}
				if n.Value != nil {
					checkWrite(n.Value)
				}
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if base, v := capturedBase(n.X); base != nil {
				if !indexedByShard(pkg, n.X, shardParams) {
					report(n.X, base, v, "exposes the address of")
				}
			}
		}
		return true
	})

	// Interprocedural: any callee chain that writes a package-level
	// variable, with the closure's call site as the first hop.
	pos := pkg.Fset.Position(site.call.Pos())
	label := "runner.Map closure (" + pos.Filename + ":" + itoaLint(pos.Line) + ")"
	reportFactsFrom(mp, fs, pkg, label, resolveCallEdges(pkg, lit.Body))
}

// checkNamedShardFn handles a named function or method value passed as
// the shard function: interprocedural shared-write facts on the function
// itself, plus direct receiver writes (the receiver is one object shared
// by every shard).
func checkNamedShardFn(mp *ModulePass, fs *FactSet, site mapSite, fn *types.Func, argPos token.Pos) {
	id := FuncIDOf(fn)
	for _, f := range fs.FactsOf(id) {
		if f.Kind != sharedWriteFact {
			continue
		}
		chain := fs.Chain(id, f)
		mp.ReportAt(site.pkg.Fset.Position(argPos), chain,
			"runner.Map shard function %s %s: results would depend on shard scheduling order (path: %s)",
			DisplayName(fn), f.Sink, ChainString(chain))
	}

	node := mp.Graph.Nodes[id]
	if node == nil || node.Decl == nil || node.Decl.Recv == nil || node.Pkg == nil {
		return
	}
	var recv *types.Var
	for _, f := range node.Decl.Recv.List {
		for _, name := range f.Names {
			recv, _ = node.Pkg.Info.Defs[name].(*types.Var)
		}
	}
	if recv == nil {
		return
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			base := baseIdentOf(lhs)
			if base == nil || objOf(node.Pkg, base) != recv {
				continue
			}
			if _, isSel := ast.Unparen(lhs).(*ast.Ident); isSel {
				continue // rebinding the receiver variable itself is local
			}
			mp.ReportAt(site.pkg.Fset.Position(argPos), nil,
				"runner.Map shard method %s writes its receiver (%s at %s): the receiver is shared by every shard",
				DisplayName(fn), exprString(lhs), node.Pkg.Fset.Position(lhs.Pos()))
		}
		return true
	})
}

// reportFactsFrom reports every shared-write fact reachable through the
// given first-hop call edges, rootLabel first in the evidence chain.
func reportFactsFrom(mp *ModulePass, fs *FactSet, pkg *Package, rootLabel string, edges []CallEdge) {
	type dedup struct {
		origin token.Position
		sink   string
	}
	seen := map[dedup]bool{}
	for _, e := range edges {
		for _, f := range fs.FactsOf(e.Callee) {
			if f.Kind != sharedWriteFact {
				continue
			}
			if seen[dedup{f.Origin, f.Sink}] {
				continue
			}
			seen[dedup{f.Origin, f.Sink}] = true
			chain := append([]ChainEntry{{Func: rootLabel, Site: pkg.Fset.Position(e.Pos)}},
				fs.Chain(e.Callee, f)...)
			mp.ReportAt(pkg.Fset.Position(e.Pos), chain,
				"runner.Map shard closure reaches code that %s: results would depend on shard scheduling order (path: %s)",
				f.Sink, ChainString(chain))
		}
	}
}

// shardParamVars returns the closure's own parameters (the shard identity
// lives here — runner.Map hands (ctx, Shard)).
func shardParamVars(pkg *Package, lit *ast.FuncLit) map[*types.Var]bool {
	params := map[*types.Var]bool{}
	if lit.Type.Params == nil {
		return params
	}
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				params[v] = true
			}
		}
	}
	return params
}

// indexedByShard reports whether the lvalue chain contains an index
// expression derived from a shard parameter (`results[s.Index]`,
// `grid[s.Index][k]`): the per-shard-slot idiom every shard owns
// disjointly.
func indexedByShard(pkg *Package, e ast.Expr, params map[*types.Var]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			found := false
			ast.Inspect(x.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[id].(*types.Var); ok && params[v] {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestToJSON pins the -json schema: field names, path relativization, chain
// serialization and the suppression fields.
func TestToJSON(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "/repo/internal/soc/soc.go", Line: 10, Column: 2},
			Analyzer: "puritycheck",
			Message:  "impure path to time.Now",
			Chain: []ChainEntry{
				{Func: "(*soc.SoC).Tick", Site: token.Position{Filename: "/repo/internal/soc/soc.go", Line: 10, Column: 2}},
				{Func: "soc.stamp"}, // no resolved site: file/line/col omitted
			},
		},
		{
			Pos:           token.Position{Filename: "/elsewhere/x.go", Line: 3, Column: 1},
			Analyzer:      "walltime",
			Message:       "rand.Intn uses the global generator",
			Suppressed:    true,
			Justification: "demo shim, not simulation state",
		},
	}
	out := ToJSON(diags, "/repo")
	if len(out) != 2 {
		t.Fatalf("ToJSON returned %d entries, want 2", len(out))
	}
	if out[0].File != "internal/soc/soc.go" {
		t.Errorf("path not relativized: %q", out[0].File)
	}
	if out[1].File != "/elsewhere/x.go" {
		t.Errorf("path outside base rewritten: %q", out[1].File)
	}
	if !out[1].Suppressed || out[1].Justification == "" {
		t.Errorf("suppression fields lost: %+v", out[1])
	}

	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, key := range []string{`"analyzer"`, `"file"`, `"line"`, `"col"`, `"message"`, `"chain"`, `"suppressed"`, `"justification"`} {
		if !strings.Contains(s, key) {
			t.Errorf("serialized JSON missing key %s: %s", key, s)
		}
	}
	var round []DiagnosticJSON
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(round[0].Chain) != 2 || round[0].Chain[1].File != "" {
		t.Errorf("chain did not round-trip with omitted site: %+v", round[0].Chain)
	}
}

// TestSeverity pins the severity vocabulary shared by -json and SARIF:
// warnings say "warning", everything else "error".
func TestSeverity(t *testing.T) {
	warn := Diagnostic{
		Pos:      token.Position{Filename: "/repo/a.go", Line: 1, Column: 1},
		Analyzer: "fingerprintcomplete",
		Message:  "dead key",
		Warning:  true,
	}
	errD := Diagnostic{
		Pos:      token.Position{Filename: "/repo/a.go", Line: 2, Column: 1},
		Analyzer: "fingerprintcomplete",
		Message:  "uncovered read",
	}
	out := ToJSON([]Diagnostic{warn, errD}, "/repo")
	if out[0].Severity != "warning" || out[1].Severity != "error" {
		t.Errorf("severities = %q, %q; want warning, error", out[0].Severity, out[1].Severity)
	}

	sarif, err := ToSARIF([]Diagnostic{warn, errD}, []*Analyzer{FingerprintComplete}, "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []struct {
				Level string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sarif, &log); err != nil {
		t.Fatal(err)
	}
	res := log.Runs[0].Results
	if len(res) != 2 || res[0].Level != "warning" || res[1].Level != "error" {
		t.Errorf("SARIF levels = %+v; want warning, error", res)
	}
}

// TestRelPath pins the boundary cases of the path rewriter.
func TestRelPath(t *testing.T) {
	for _, tc := range []struct{ base, path, want string }{
		{"/repo", "/repo/a/b.go", "a/b.go"},
		{"/repo", "/other/b.go", "/other/b.go"},
		{"", "/repo/a/b.go", "/repo/a/b.go"},
		{"/repo", "", ""},
	} {
		if got := RelPath(tc.base, tc.path); got != tc.want {
			t.Errorf("RelPath(%q, %q) = %q, want %q", tc.base, tc.path, got, tc.want)
		}
	}
}

// Package runner (testdata): the harness exemption. Wall-clock reads are
// legal in a package named runner — elapsed time there feeds only the
// operator-facing progress/ETA gauges, never a simulated result — but the
// global math/rand generator stays banned even here.
package runner

import (
	"math/rand"
	"time"
)

// eta estimates remaining time from the wall clock: the one sanctioned use.
func eta(start time.Time, done, total int) time.Duration {
	elapsed := time.Since(start)
	if done == 0 {
		return 0
	}
	return elapsed / time.Duration(done) * time.Duration(total-done)
}

// stamp marks the start of a sweep for the progress gauge.
func stamp() time.Time {
	return time.Now()
}

// badShard still may not draw from the global generator; shards get
// injected seeds.
func badShard() int {
	return rand.Intn(64) // want "rand.Intn uses the global generator"
}

// Package rtsim (testdata): wall-clock reads and global-generator
// randomness in non-test simulator code — every case must be flagged.
package rtsim

import (
	"math/rand"
	"time"
)

// stampNow smuggles host time into a simulation record.
func stampNow() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// jitterGlobal draws from the shared, unseeded global generator.
func jitterGlobal(n int) int {
	return rand.Intn(n) // want "rand.Intn uses the global generator"
}

// sleepyPoll both sleeps on the host clock and shuffles globally.
func sleepyPoll(xs []int) {
	time.Sleep(time.Millisecond)           // want "time.Sleep reads the wall clock"
	rand.Shuffle(len(xs), func(i, j int) { // want "rand.Shuffle uses the global generator"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// seedFromClock is the classic anti-pattern: the seed itself comes from
// the wall clock, so runs are unreproducible.
func seedFromClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time.Now reads the wall clock"
}

// Package telemetry (testdata): the telemetry exemption. The sampler and
// runtime collector timestamp operator-facing observations of the
// simulation — wall-clock reads are legal here for that pacing and
// stamping, but the global math/rand generator stays banned even here.
package telemetry

import (
	"math/rand"
	"time"
)

// sampleLoop paces periodic snapshot captures off a wall-clock ticker:
// the sanctioned use. No captured value ever feeds a simulated result.
func sampleLoop(interval time.Duration, capture func(at time.Time)) *time.Ticker {
	tick := time.NewTicker(interval)
	go func() {
		for range tick.C {
			capture(time.Now())
		}
	}()
	return tick
}

// elapsed stamps a sample with its offset from the sampler epoch, for the
// operator-facing time series.
func elapsed(epoch time.Time) time.Duration {
	return time.Since(epoch)
}

// badScrapeJitter still may not draw from the global generator; any
// randomness in the telemetry layer must come from an injected seed.
func badScrapeJitter() int {
	return rand.Intn(8) // want "rand.Intn uses the global generator"
}

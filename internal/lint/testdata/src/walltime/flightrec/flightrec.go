// Package flight (testdata): the flight-recorder exemption. Recorded
// events are cycle-stamped sim-time, so the wall clock is legal here only
// to pace the live /events SSE polling loop — but the global math/rand
// generator stays banned even here.
package flight

import (
	"math/rand"
	"time"
)

// pollEvents paces the SSE stream off a wall-clock ticker: the sanctioned
// use. The tick never reaches a recorded event's Time field.
func pollEvents(interval time.Duration, send func()) *time.Ticker {
	tick := time.NewTicker(interval)
	go func() {
		for range tick.C {
			send()
		}
	}()
	return tick
}

// waited measures how long a client connection has been open, for the
// operator-facing stream log.
func waited(since time.Time) time.Duration {
	return time.Since(since)
}

// badSampleJitter still may not draw from the global generator; any
// randomness in the recorder must come from an injected seed.
func badSampleJitter() int {
	return rand.Intn(8) // want "rand.Intn uses the global generator"
}

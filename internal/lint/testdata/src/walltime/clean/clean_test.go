// Test files are exempt: wall-clock timeouts and ad-hoc randomness are
// fine in tests, which do not feed simulation results.
package rtsim

import (
	"testing"
	"time"
)

func TestDeadline(t *testing.T) {
	start := time.Now()
	s := newSim(1)
	s.step(4)
	if time.Since(start) > time.Second {
		t.Fatal("too slow")
	}
}

// Package rtsim (testdata): the sanctioned patterns — injected seeds,
// cycle counters, duration arithmetic — none of which may be flagged.
package rtsim

import (
	"math/rand"
	"time"
)

// sim advances on its own cycle counter, never the host clock.
type sim struct {
	cycles uint64
	r      *rand.Rand
}

// newSim receives its randomness as an injected seed.
func newSim(seed int64) *sim {
	return &sim{r: rand.New(rand.NewSource(seed))}
}

// step uses generator methods (not the global package functions) and the
// cycle counter.
func (s *sim) step(n int) uint64 {
	s.cycles += uint64(s.r.Intn(n) + 1)
	return s.cycles
}

// budget does pure duration arithmetic: legal, no clock read.
func budget(cycles uint64, perCycle time.Duration) time.Duration {
	return time.Duration(cycles) * perCycle
}

// Package sched (testdata): map iterations that are order-neutral or
// restored to determinism by a sort — nothing here may be flagged.
package sched

import (
	"fmt"
	"sort"
)

// collectThenSort is the sanctioned idiom: gather, then sort.
func collectThenSort(ways map[int]int) []int {
	var out []int
	for w := range ways {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// sortThenPrint ranges the map only to collect; printing happens over the
// sorted slice.
func sortThenPrint(stats map[string]uint64) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, stats[k])
	}
}

// reduce is order-neutral: a commutative fold with no slice or output.
func reduce(ways map[int]int) int {
	total := 0
	for _, n := range ways {
		total += n
	}
	return total
}

// localAppend appends to a slice declared inside the loop body, which is
// fresh every iteration and therefore order-independent.
func localAppend(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var pair []int
		pair = append(pair, vs...)
		n += len(pair)
	}
	return n
}

// fillMap writing another map is order-neutral.
func fillMap(src map[int]int) map[int]int {
	dst := make(map[int]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Package sched (testdata): map iterations with order-dependent effects
// and no restoring sort — every case here must be flagged.
package sched

import "fmt"

// collectNoSort appends map keys to an outer slice and never sorts: the
// output order changes run to run.
func collectNoSort(ways map[int]int) []int {
	var out []int
	for w := range ways { // want "map iteration appends to a slice declared outside the loop"
		out = append(out, w)
	}
	return out
}

// printDirect writes output from inside the iteration.
func printDirect(stats map[string]uint64) {
	for name, v := range stats { // want "map iteration writes output via fmt.Printf"
		fmt.Printf("%s=%d\n", name, v)
	}
}

// closureCapture has the same bug inside a func literal.
func closureCapture(m map[string]int) func() []string {
	return func() []string {
		var keys []string
		for k := range m { // want "appends to a slice declared outside the loop"
			keys = append(keys, k)
		}
		return keys
	}
}

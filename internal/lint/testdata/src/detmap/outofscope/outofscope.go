// Package report (testdata): not a simulator package, so detmap must stay
// silent even on the pattern it flags elsewhere.
package report

func collectNoSort(ways map[int]int) []int {
	var out []int
	for w := range ways {
		out = append(out, w)
	}
	return out
}

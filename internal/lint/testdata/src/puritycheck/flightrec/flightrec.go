// Package flight is puritycheck testdata for the flight-recorder
// carve-out: wall-clock reads are not seeded as hazards here (they only
// pace the live event stream), but global-rand and fs-read hazards still
// are. Run makes this package's functions entry points.
package flight

import (
	"math/rand"
	"os"
	"time"
)

// Server is the fake live-inspection endpoint.
type Server struct{}

// Run is an entry-point-named method so the closure roots here.
func (s *Server) Run() {
	_ = pollDelay()
	_ = jitter()
	_ = readEnv()
}

// pollDelay reads the wall clock behind a helper: exempt in this package.
func pollDelay() int64 {
	return time.Now().UnixNano()
}

// jitter draws from the global generator — still banned.
func jitter() int64 {
	return rand.Int63() // want "impure path to rand.Int63 .global-rand."
}

// readEnv consults the host environment — still banned.
func readEnv() string {
	return os.Getenv("FLIGHT_MODE") // want "impure path to os.Getenv .fs-read."
}

// Package soc is puritycheck testdata for the approved patterns: injected
// generators, function-value callbacks (unknown callees are not impure),
// filesystem writes, and impure helpers no entry point can reach.
package soc

import (
	"math/rand"
	"os"
	"time"
)

// SoC is the fake simulator root.
type SoC struct {
	rng  *rand.Rand
	hook func() int64
}

// Tick is the entry point; everything it reaches is deterministic.
func (s *SoC) Tick() {
	_ = s.rng.Intn(16)                    // method on an injected generator: approved
	_ = s.hook()                          // function value: unknown callee, not assumed impure
	_ = os.WriteFile("r.csv", nil, 0o644) // writes do not feed results back in
	_ = reduce(map[string]int{"a": 1})
}

// reduce iterates a map but only accumulates commutatively — order-neutral.
func reduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// debugStamp is impure but unreachable from any entry point, so the
// interprocedural check stays quiet (walltime would flag it per-package).
func debugStamp() int64 {
	return time.Now().UnixNano()
}

// Package soc is puritycheck testdata: the package name makes Tick an entry
// point, and every hazard here hides behind at least one helper call so the
// syntactic walltime analyzer alone would never see the path.
package soc

import (
	"math/rand"
	"os"
	"time"
)

// SoC is the fake simulator root.
type SoC struct {
	log    []string
	counts map[string]int
}

// Tick is the entry point the analyzer roots the closure at.
func (s *SoC) Tick() {
	s.stepOnce()
	s.tally()
	runAll(&widget{})
}

func (s *SoC) stepOnce() {
	_ = stamp()
	_ = jitter()
	_ = readCfg()
}

// stamp hides the wall-clock read two calls below the entry point.
func stamp() int64 {
	return time.Now().UnixNano() // want "impure path to time.Now .wall-clock. from entry point ..soc.SoC..Tick: ..soc.SoC..Tick -> ..soc.SoC..stepOnce -> soc.stamp -> time.Now"
}

// jitter draws from the global generator instead of an injected one.
func jitter() int64 {
	return rand.Int63() // want "impure path to rand.Int63 .global-rand."
}

// readCfg consults the host environment.
func readCfg() string {
	return os.Getenv("L15_MODE") // want "impure path to os.Getenv .fs-read."
}

// tally iterates a map with an order-dependent effect and no restoring sort.
func (s *SoC) tally() {
	for k := range s.counts { // want "impure path to map iteration that appends"
		s.log = append(s.log, k)
	}
}

// stepper is dispatched through an interface, exercising the CHA edges.
type stepper interface {
	advance() float64
}

type widget struct{}

func (widget) advance() float64 {
	return rand.Float64() // want "impure path to rand.Float64 .global-rand."
}

func runAll(st stepper) {
	_ = st.advance()
}

// Package flight is hotalloc testdata for the sanctioned idioms: the
// package name makes Emit a root, and every pattern here is one the
// analyzer must accept — reused scratch buffers, caller-owned self
// append, value composite literals passed by value, capture-free
// closures, and pointer locals that never escape.
package flight

// Event is a value payload: its literal lives on the stack.
type Event struct {
	Seq  uint64
	Kind int
}

// Recorder mirrors the real ring recorder's shape.
type Recorder struct {
	buf     []Event
	next    int
	seq     uint64
	scratch []int
}

// Emit is the root: self-append into a receiver field is the scratch
// idiom, and the Event value literal at the call sites never boxes.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	e.Seq = r.seq
	r.seq++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.reuse()
	r.local()
}

// reuse truncates and refills caller-owned scratch: allowed.
func (r *Recorder) reuse() {
	r.scratch = r.scratch[:0]
	for i := 0; i < 4; i++ {
		r.scratch = append(r.scratch, i)
	}
}

// local keeps a pointer literal on the stack: it is only dereferenced,
// never stored or passed, so the escape heuristic stays quiet.
func (r *Recorder) local() {
	e := &Event{Kind: 1}
	e.Seq = r.seq
	r.next = int(e.Seq) % 8
}

// Tick exercises a capture-free closure (a static function, no
// environment) and a value literal passed by value.
func (r *Recorder) Tick() {
	f := func(a, b int) int { return a + b }
	r.next = f(r.next, 1)
	r.Emit(Event{Kind: 2})
}

// growShared appends into a parameter — caller-owned storage, the
// grow-scratch helper idiom.
func growShared(s []int, n int) []int {
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}

// Step keeps the helper reachable from a root.
func (r *Recorder) Step() {
	r.scratch = growShared(r.scratch, 2)
}

// Package l15 is hotalloc testdata: the package name puts the hot-family
// roots in scope, and every allocation hides at least one helper call
// below a root so the chain evidence matters. The deliberate allocation
// in sduIdle's path is the acceptance case from ISSUE 7.
package l15

import "fmt"

// L15 is the fake SDU.
type L15 struct {
	ticks   uint64
	demand  []int
	scratch []int
	log     []string
	hook    func()
}

// sduIdle is a hot-path root; the map allocation hides one call down.
func (l *L15) sduIdle() bool {
	return l.checkIdle()
}

func (l *L15) checkIdle() bool {
	seen := make(map[int]bool) // want "heap allocation on the hot path from ..l15.L15..sduIdle: make ...l15.L15..sduIdle -> ..l15.L15..checkIdle"
	for _, d := range l.demand {
		seen[d] = true
	}
	return len(seen) == 0
}

// Tick is a root; its helpers exercise the other allocation classes.
func (l *L15) Tick() {
	l.ticks++
	l.logEvent("tick")
	l.rebuild()
	l.publish()
	l.capture()
}

// logEvent concatenates strings and formats — both allocate.
func (l *L15) logEvent(kind string) {
	msg := kind + ":" + "sdu"              // want "heap allocation on the hot path from ..l15.L15..Tick: string concatenation"
	_ = fmt.Sprintf("%s@%d", msg, l.ticks) // want "heap allocation on the hot path from ..l15.L15..Tick: fmt.Sprintf .interface boxing . formatting."
}

// rebuild appends into a slice it freshly allocates every call — the
// reaching-definitions pass distinguishes this from reused scratch.
func (l *L15) rebuild() {
	buf := make([]int, 0, 4) // want "heap allocation on the hot path from ..l15.L15..Tick: make"
	for _, d := range l.demand {
		buf = append(buf, d) // want "append into a slice freshly allocated each call"
	}
	l.scratch = l.scratch[:0]
}

// node escapes through the return — the composite literal is heap.
type node struct{ id int }

func (l *L15) publish() *node {
	n := &node{id: int(l.ticks)} // want "heap allocation on the hot path from ..l15.L15..Tick: escaping .composite literal"
	return n
}

// capture builds a closure over a local — its environment allocates.
func (l *L15) capture() {
	count := 0
	l.hook = func() { // want "heap allocation on the hot path from ..l15.L15..Tick: closure captures enclosing variables"
		count++
	}
}

// Step is a root exercising non-self append and interface boxing.
func (l *L15) Step() {
	l.merge()
	l.box()
}

func (l *L15) merge() {
	l.log = append(l.scratchNames(), "x") // want "append copies into a new backing array"
}

func (l *L15) scratchNames() []string { return nil }

// boxer is a local interface to box into.
type boxer interface{ box() }

type plain struct{}

func (plain) box() {}

func (l *L15) box() {
	v := plain{}
	_ = boxer(v) // want "conversion boxes a concrete value into an interface"
}

// coldPath allocates freely but is reachable from no root: no findings.
func (l *L15) coldPath() []string {
	out := make([]string, 0, len(l.log))
	for _, s := range l.log {
		out = append(out, s+"!")
	}
	return out
}

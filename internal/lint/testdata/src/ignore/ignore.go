// Package sim (testdata): //lint:ignore directive handling — a justified
// ignore suppresses, a bare one is itself a finding, and an unknown
// analyzer name is reported.
package sim

import "math/rand"

// suppressedSameLine carries a justified ignore on the flagged line.
func suppressedSameLine(n int) int {
	return rand.Intn(n) //lint:ignore walltime testdata exercises same-line suppression
}

// suppressedLineAbove carries the ignore on the preceding line.
func suppressedLineAbove(n int) int {
	//lint:ignore walltime testdata exercises line-above suppression
	return rand.Intn(n)
}

// unjustified has no justification: the directive itself is the finding
// and the underlying diagnostic survives.
func unjustified(n int) int {
	return rand.Intn(n) //lint:ignore walltime
	// want "needs an analyzer name and a justification" "rand.Intn uses the global generator"
}

// wrongAnalyzer suppresses a different analyzer, so the walltime finding
// survives alongside nothing else.
func wrongAnalyzer(n int) int {
	return rand.Intn(n) //lint:ignore detmap suppressing the wrong analyzer does not help
	// want "rand.Intn uses the global generator"
}

// unknownName names an analyzer that does not exist.
func unknownName(n int) int {
	return rand.Intn(n) //lint:ignore nosuchcheck this analyzer does not exist
	// want "names unknown analyzer" "rand.Intn uses the global generator"
}

// Package metrics (testdata): fields accessed through sync/atomic in one
// place and plainly in another — the races the analyzer exists to catch.
package metrics

import "sync/atomic"

// stats mixes access disciplines on the same fields.
type stats struct {
	hits   uint64
	misses uint64
}

// record is the hot path: atomic.
func (s *stats) record(hit bool) {
	if hit {
		atomic.AddUint64(&s.hits, 1)
	} else {
		atomic.AddUint64(&s.misses, 1)
	}
}

// total reads the same fields without atomics: it races with record.
func (s *stats) total() uint64 {
	return s.hits + s.misses // want "field hits is accessed with sync/atomic" "field misses is accessed with sync/atomic"
}

// reset writes one plainly: also a race.
func (s *stats) reset() {
	s.hits = 0 // want "field hits is accessed with sync/atomic"
	atomic.StoreUint64(&s.misses, 0)
}

// Package metrics (testdata): consistent access disciplines — all-atomic
// on shared fields, all-plain on single-threaded ones. Nothing here may be
// flagged.
package metrics

import "sync/atomic"

// shared is touched only through sync/atomic.
type shared struct {
	hits   uint64
	misses uint64
}

func (s *shared) record(hit bool) {
	if hit {
		atomic.AddUint64(&s.hits, 1)
	} else {
		atomic.AddUint64(&s.misses, 1)
	}
}

func (s *shared) total() uint64 {
	return atomic.LoadUint64(&s.hits) + atomic.LoadUint64(&s.misses)
}

func (s *shared) reset() {
	atomic.StoreUint64(&s.hits, 0)
	atomic.StoreUint64(&s.misses, 0)
}

// local is a single-threaded stats block: plain accesses everywhere are
// fine because no atomic access sets the contract.
type local struct {
	hits uint64
}

func (l *local) bump() { l.hits++ }

func (l *local) value() uint64 { return l.hits }

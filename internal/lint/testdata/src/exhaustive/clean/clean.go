// Package fsm is exhaustive testdata for the exempt shapes: full coverage,
// explicit defaults, string-backed kinds, non-constant case arms,
// single-constant types and out-of-module enums.
package fsm

import "reflect"

// Mode is a two-state enum, fully covered below.
type Mode int

// The modes.
const (
	Off Mode = iota
	On
)

// Kernel is string-backed: partial switches fail loudly at run time already.
type Kernel string

// The kernels.
const (
	KCG  Kernel = "cg"
	KMM  Kernel = "mm"
	KFFT Kernel = "fft"
)

// Level has a single constant: not an enum.
type Level int

// LevelOne is the only Level.
const LevelOne Level = 1

func full(m Mode) string {
	switch m {
	case Off:
		return "off"
	case On:
		return "on"
	}
	return "?"
}

func defaulted(m Mode) string {
	switch m {
	case Off:
		return "off"
	default:
		return "other"
	}
}

func stringy(k Kernel) bool {
	switch k {
	case KCG:
		return true
	}
	return false
}

func nonConstArm(m Mode, dyn Mode) bool {
	switch m {
	case dyn:
		return true
	}
	return false
}

func single(l Level) bool {
	switch l {
	case LevelOne:
		return true
	}
	return false
}

func stdlib(k reflect.Kind) bool {
	switch k {
	case reflect.Int:
		return true
	}
	return false
}

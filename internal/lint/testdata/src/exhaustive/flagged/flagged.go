// Package fsm is exhaustive testdata: switches over module-declared iota
// enums that silently drop members.
package fsm

// State is a three-state FSM.
type State int

// The FSM states.
const (
	Idle State = iota
	Busy
	Done
)

// Drained aliases Done: covering either name covers the value.
const Drained = Done

func name(s State) string {
	switch s { // want "switch over fsm.State is not exhaustive: missing Done .add the cases or an explicit default."
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	}
	return "?"
}

func brief(s State) string {
	switch s { // want "switch over fsm.State is not exhaustive: missing Busy, Done"
	case Idle:
		return "i"
	}
	return "?"
}

func aliasCovered(s State) string {
	// Drained == Done, so every value is handled: no finding.
	switch s {
	case Idle, Busy, Drained:
		return "ok"
	}
	return "?"
}

// Package soc (testdata): way-bitmap indiscipline — raw shifts, unbounded
// conversions, cross-package mask writes. Every case must be flagged.
package soc

import (
	"l15cache/internal/bitmap"
	"l15cache/internal/lint/internal/fixture"
)

// rawShift builds a mask with << instead of the bound-checked API: w ≥ ζ
// silently addresses a way that does not exist.
func rawShift(w int) bitmap.Bitmap {
	return bitmap.Bitmap(1) << uint(w) // want "raw shift produces a bitmap.Bitmap"
}

// orShift mixes a raw shifted bit into an existing mask.
func orShift(b bitmap.Bitmap, w int) bitmap.Bitmap {
	return b | 1<<uint(w) // want "raw shift produces a bitmap.Bitmap"
}

// fromRegister converts a register operand without masking it to the way
// count.
func fromRegister(v uint32) bitmap.Bitmap {
	return bitmap.Bitmap(v) // want "unbounded integer→bitmap.Bitmap conversion"
}

// pokeOW writes another package's mask register directly, bypassing its
// invariants.
func pokeOW(r *fixture.Regs, b bitmap.Bitmap) {
	r.OW = b // want "mask field fixture.OW is written outside its owning package"
}

// pokeGVBank writes into another package's per-core register bank.
func pokeGVBank(r *fixture.Regs, core int, b bitmap.Bitmap) {
	r.GV[core] = b // want "mask field fixture.GV is written outside its owning package"
}

// Package soc (testdata): the sanctioned bitmap constructions — API
// calls, masked conversions, owner-mediated writes. Nothing here may be
// flagged.
package soc

import (
	"l15cache/internal/bitmap"
	"l15cache/internal/lint/internal/fixture"
)

// apiSet uses the bound-checked constructor.
func apiSet(b bitmap.Bitmap, w int) bitmap.Bitmap {
	return b.Set(w)
}

// fromWays builds from indices through the API.
func fromWays(ws ...int) bitmap.Bitmap {
	return bitmap.FromWays(ws...)
}

// fromRegisterMasked converts a register operand and immediately bounds it
// to the configured way count.
func fromRegisterMasked(v uint32, ways int) bitmap.Bitmap {
	return bitmap.Bitmap(v).Intersect(bitmap.FirstN(ways))
}

// fromRegisterAnded bounds with an explicit AND before converting.
func fromRegisterAnded(v uint32, ways int) bitmap.Bitmap {
	return bitmap.Bitmap(v & (1<<uint(ways) - 1))
}

// constMask is a constant conversion, reviewable at the call site.
func constMask() bitmap.Bitmap {
	return bitmap.Bitmap(0x42)
}

// ownerWrite routes the register update through the owning package's API.
func ownerWrite(r *fixture.Regs, b bitmap.Bitmap, ways int) {
	r.SetOW(b, ways)
}

// Package main (testdata): the sanctioned error-handling patterns —
// checked returns, explicit _ = discards, deferred read-path Close,
// never-fails builders. Nothing here may be flagged.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

func writeReport(path string, lines []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, l := range lines {
		if _, err := w.WriteString(l); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func readAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // deferred Close on a read path is idiomatic
	return os.ReadFile(path)
}

func render(lines []string) string {
	var sb strings.Builder
	for _, l := range lines {
		sb.WriteString(l) // *strings.Builder never fails
	}
	return sb.String()
}

func main() {
	fmt.Println("stdout printing is exempt")
	if err := writeReport("report.txt", []string{"ok"}); err != nil {
		os.Exit(1)
	}
	if _, err := readAll("report.txt"); err != nil {
		os.Exit(1)
	}
	_ = render(nil)
}

// Package main (testdata): a cmd-style tool discarding errors on its
// output paths — every case must be flagged.
package main

import (
	"bufio"
	"os"
)

func writeReport(path string, lines []string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	for _, l := range lines {
		w.WriteString(l) // want "error from \(\*bufio.Writer\).WriteString is silently discarded"
	}
	w.Flush() // want "error from \(\*bufio.Writer\).Flush is silently discarded"
	f.Close() // want "error from \(\*os.File\).Close is silently discarded"
}

func dropSingleError(path string, data []byte) {
	os.WriteFile(path, data, 0o644) // want "error from WriteFile is silently discarded"
}

func main() {
	writeReport("report.txt", []string{"ok"})
	dropSingleError("data.bin", nil)
}

// Package flight (testdata): the recorder's export/codec paths get the
// strict errdrop treatment — a dropped Write or io.Copy error means a
// truncated artifact that still reports success. `_ =` stays the visible
// opt-out, and read-side defers stay legal.
package flight

import (
	"io"
	"os"
)

// Export streams the ring to a file: every dropped error is a silently
// truncated artifact.
func Export(dst *os.File, src io.Reader, header []byte) {
	dst.Write(header)      // want "error from \(\*os.File\).Write is silently discarded"
	io.Copy(dst, src)      // want "error from Copy is silently discarded"
	io.CopyN(dst, src, 16) // want "error from CopyN is silently discarded"
	dst.Sync()             // want "error from \(\*os.File\).Sync is silently discarded"
}

// ExportChecked is the same path done right: no findings.
func ExportChecked(dst *os.File, src io.Reader, header []byte) error {
	if _, err := dst.Write(header); err != nil {
		return err
	}
	if _, err := io.Copy(dst, src); err != nil {
		return err
	}
	return dst.Sync()
}

// Drain documents a deliberate drop with the `_ =` opt-out: legal.
func Drain(dst io.Writer, src io.Reader) {
	_, _ = io.Copy(dst, src)
}

// Package clean (testdata): the package clause and every exported
// identifier carry doc comments, in every shape the analyzer accepts —
// nothing may be flagged.
package clean

// Limit bounds the pool (own doc on a single const).
const Limit = 8

// Sizes documented once at the group level cover every spec inside.
const (
	Small = 1
	Large = 2
)

// Pool is a documented exported type.
type Pool struct{}

// Close is a documented exported method.
func (Pool) Close() {}

// Spawn is a documented exported function.
func Spawn() {}

var (
	// Registry carries its own doc inside an undocumented group.
	Registry int

	Trailing int // Trailing is covered by its line comment.

	count int
)

type internalOnly struct{}

func (internalOnly) Exported() {}

func helper() { _ = count; _ = internalOnly{} }

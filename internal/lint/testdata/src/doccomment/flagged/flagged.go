package flagged // want "package flagged has no doc comment"

import "time"

const Limit = 8 // Limit is documented by its trailing comment: no finding.

const (
	gap = 1
	Gap = 2
	// want "exported const Gap has no doc comment"
)

var (
	Registry int
	// want "exported var Registry has no doc comment"
)

type Pool struct{} // want "exported type Pool has no doc comment"

func Spawn() {} // want "exported function Spawn has no doc comment"

func (Pool) Close() {} // want "exported method Pool.Close has no doc comment"

func (*Pool) Drain() {} // want "exported method Pool.Drain has no doc comment"

type hidden struct{}

func (hidden) Exported() time.Duration { return 0 }

func internalOnly() {}

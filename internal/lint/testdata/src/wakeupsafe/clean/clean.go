// Package kernelok is wakeupsafe testdata for the sanctioned shapes: pure
// probes over receiver state with local scratch writes, Never reported on
// idle, delegation through the Earliest clamp, and AdvanceTo fed only
// clamped or probe-independent cycles. No findings expected.
package kernelok

// Never mirrors kernel.Never.
const Never = ^uint64(0)

// Earliest mirrors the kernel clamp.
func Earliest(wakeups ...uint64) uint64 {
	best := Never
	for _, w := range wakeups {
		if w < best {
			best = w
		}
	}
	return best
}

// sdu scans receiver state read-only; writes go to locals only.
type sdu struct {
	pending []uint64
	head    int
}

func (s *sdu) NextWakeup() uint64 {
	best := Never
	for _, w := range s.pending[s.head:] {
		if w < best {
			best = w
		}
	}
	return best
}

// cluster delegates: no literal Never, but the Earliest clamp and the
// child probes count as handling idleness.
type cluster struct {
	a, b *sdu
}

func (c *cluster) NextWakeup() uint64 {
	return Earliest(c.a.NextWakeup(), c.b.NextWakeup())
}

// clock is the AdvanceTo target; mutating inside AdvanceTo itself is the
// whole point of the method.
type clock struct{ now uint64 }

func (c *clock) AdvanceTo(cycle uint64) { c.now = cycle }

// run clamps the probe before jumping.
func run(c *clock, cl *cluster, horizon uint64) {
	w := Earliest(cl.NextWakeup(), horizon)
	if w == Never {
		return
	}
	c.AdvanceTo(w)
}

// step jumps to a cycle that never came from a probe.
func step(c *clock) {
	c.AdvanceTo(c.now + 1)
}

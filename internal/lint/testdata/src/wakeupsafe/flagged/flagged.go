// Package sim is wakeupsafe testdata: each NextWakeup implementation or
// AdvanceTo caller here violates exactly one clause of the wakeup
// protocol. The local Never constant and Earliest clamp stand in for
// the kernel package (the analyzer matches them by name so testdata and
// helper packages participate).
package sim

import "time"

// Never mirrors kernel.Never.
const Never = ^uint64(0)

// Earliest mirrors the kernel clamp.
func Earliest(wakeups ...uint64) uint64 {
	best := Never
	for _, w := range wakeups {
		if w < best {
			best = w
		}
	}
	return best
}

// unit mutates its own state inside the probe: the probe itself advances
// the simulation.
type unit struct {
	next   uint64
	probes int
}

func (u *unit) NextWakeup() uint64 {
	u.probes++ // want "..sim.unit..NextWakeup must be pure over its receiver but reaches a write to receiver state .u.probes."
	if u.next == 0 {
		return Never
	}
	return u.next
}

// lazy hides the mutation one helper down: the chain names the hop.
type lazy struct {
	cache uint64
	dirty bool
}

func (z *lazy) NextWakeup() uint64 {
	if z.dirty {
		z.refresh()
	}
	if z.cache == 0 {
		return Never
	}
	return z.cache
}

func (z *lazy) refresh() {
	z.cache = 7     // want "..sim.lazy..NextWakeup must be pure over its receiver but reaches a write to receiver state .z.cache.: ..sim.lazy..NextWakeup -> ..sim.lazy..refresh"
	z.dirty = false // want "..sim.lazy..NextWakeup must be pure over its receiver but reaches a write to receiver state .z.dirty."
}

// busy can never report idleness: time-skipping is forbidden system-wide.
type busy struct{ next uint64 }

func (b *busy) NextWakeup() uint64 { // want "..sim.busy..NextWakeup never reports kernel.Never"
	return b.next + 1
}

// hosty consults the wall clock: the wakeup depends on host state.
type hosty struct{ next uint64 }

func (h *hosty) NextWakeup() uint64 {
	if time.Now().UnixNano()%2 == 0 { // want "..sim.hosty..NextWakeup must not consult host state but reaches time.Now .wall-clock."
		return Never
	}
	return h.next
}

// clock is the AdvanceTo target.
type clock struct{ now uint64 }

func (c *clock) AdvanceTo(cycle uint64) { c.now = cycle }

// runDirect feeds a raw probe result straight into the jump.
func runDirect(c *clock, u *unit) {
	c.AdvanceTo(u.NextWakeup()) // want "AdvanceTo receives a NextWakeup result without the kernel.Earliest clamp"
}

// runIndirect launders the raw result through a local first; the
// reaching-definitions pass traces it back.
func runIndirect(c *clock, u *unit) {
	w := u.NextWakeup()
	if w > c.now {
		c.AdvanceTo(w) // want "AdvanceTo receives a cycle derived from an unclamped NextWakeup .defined at line \d+."
	}
}

// Package runner is sharedcapture testdata: every shard function below
// writes captured or package-level state (directly, through an element,
// by exposing an address, through a callee, or through a shared
// receiver), so results would depend on shard scheduling order.
package runner

// Shard mirrors runner.Shard.
type Shard struct{ Index int }

// Config mirrors runner.Config; the Fingerprint field is what Map-site
// discovery keys on, whether or not a call sets it.
type Config struct {
	Name        string
	Fingerprint []byte
}

// Map mirrors runner.Map's shape.
func Map(cfg Config, n int, fn func(Shard) (int, error)) []int {
	out := make([]int, n)
	for i := range out {
		v, _ := fn(Shard{Index: i})
		out[i] = v
	}
	return out
}

// Accumulate writes two captured locals from inside the closure — the
// classic reduction-by-shared-variable bug the runner's index-ordered
// reduction exists to prevent.
func Accumulate(xs []int) int {
	total := 0
	hits := 0
	Map(Config{Name: "acc"}, len(xs), func(s Shard) (int, error) {
		total += xs[s.Index] // want "runner.Map shard closure writes captured variable total"
		hits++               // want "runner.Map shard closure writes captured variable hits"
		return total, nil
	})
	return total + hits
}

// FixedSlot writes one fixed element of a captured slice: unlike the
// per-shard slot idiom, every shard touches the same storage.
func FixedSlot(xs []int) []int {
	out := make([]int, 1)
	Map(Config{Name: "fixed"}, len(xs), func(s Shard) (int, error) {
		out[0] = out[0] + xs[s.Index] // want "runner.Map shard closure writes captured variable out"
		return 0, nil
	})
	return out
}

// RangeWrite assigns a captured variable through a range clause.
func RangeWrite(xs []int) int {
	last := 0
	Map(Config{Name: "range"}, 1, func(s Shard) (int, error) {
		for _, last = range xs { // want "runner.Map shard closure writes captured variable last"
			_ = last
		}
		return last, nil
	})
	return last
}

// counter is the package-level state the global cases write.
var counter int

// DirectGlobal writes a package-level variable straight from the closure.
func DirectGlobal() {
	Map(Config{Name: "glob"}, 1, func(s Shard) (int, error) {
		counter = 7 // want "runner.Map shard closure writes package-level variable counter"
		return 0, nil
	})
}

// bump hides the package-level write one call below the closure, so the
// finding must arrive through fact propagation with the chain as
// evidence.
func bump() {
	counter++
}

// Transitive reaches the shared write only through a callee.
func Transitive(xs []int) int {
	Map(Config{Name: "trans"}, len(xs), func(s Shard) (int, error) {
		bump() // want "runner.Map shard closure reaches code that writes counter .package-level counter.: results would depend on shard scheduling order .path: runner.Map closure .* -> runner.bump"
		return 0, nil
	})
	return counter
}

// mutate is the callee the address-exposure case hands captured state to.
func mutate(c *Config) { c.Name = "x" }

// Exposes takes the address of a captured variable: license to write.
func Exposes(cfg Config) {
	Map(Config{Name: "addr"}, 1, func(s Shard) (int, error) {
		mutate(&cfg) // want "runner.Map shard closure exposes the address of captured variable cfg"
		return 0, nil
	})
}

// tally is the receiver the named-method case shares across shards.
type tally struct{ sum int }

// shard writes its receiver — one object, every shard.
func (t *tally) shard(s Shard) (int, error) {
	t.sum = t.sum + s.Index
	return t.sum, nil
}

// NamedReceiver passes a method value whose receiver write is flagged at
// the Map site.
func NamedReceiver(xs []int) {
	t := &tally{}
	Map(Config{Name: "recv"}, len(xs), t.shard) // want "runner.Map shard method ..runner.tally..shard writes its receiver"
}

// globalShard is a named shard function that writes package-level state.
func globalShard(s Shard) (int, error) {
	counter += s.Index
	return counter, nil
}

// NamedGlobal passes the named function; the seeded fact surfaces at the
// argument position.
func NamedGlobal() {
	Map(Config{Name: "namedglob"}, 2, globalShard) // want "runner.Map shard function runner.globalShard writes counter .package-level counter."
}

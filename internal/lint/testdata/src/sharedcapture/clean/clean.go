// Package runner is sharedcapture testdata that must produce no
// diagnostics: shard-local state, per-shard slots (including nested
// indexing), read-only captures, pure named shard functions, read-only
// receivers and receiver rebinding are all within the contract.
package runner

// Shard mirrors runner.Shard.
type Shard struct{ Index int }

// Config mirrors runner.Config.
type Config struct {
	Name        string
	Fingerprint []byte
}

// Map mirrors runner.Map's shape.
func Map(cfg Config, n int, fn func(Shard) (int, error)) []int {
	out := make([]int, n)
	for i := range out {
		v, _ := fn(Shard{Index: i})
		out[i] = v
	}
	return out
}

// double writes only its own locals; calling it from a shard is fine.
func double(v int) int {
	w := v * 2
	return w
}

// Clean exercises every sanctioned shape in one closure: shard-local
// accumulation, per-shard slots (flat and nested), reads of captured
// configuration and a pure callee.
func Clean(xs []int, cfg Config) []int {
	res := make([]int, len(xs))
	grid := make([][]int, len(xs))
	Map(Config{Name: "clean"}, len(xs), func(s Shard) (int, error) {
		local := 0
		local += xs[s.Index]
		local = double(local)
		res[s.Index] = local
		grid[s.Index] = []int{local}
		grid[s.Index][0] = local + len(cfg.Name)
		return local, nil
	})
	return res
}

// pureShard is a named shard function with no shared writes.
func pureShard(s Shard) (int, error) {
	v := s.Index * 2
	return v, nil
}

// NamedPure passes the pure named function.
func NamedPure() {
	Map(Config{Name: "pure"}, 3, pureShard)
}

// scaler is a receiver the method cases only read or rebind.
type scaler struct{ k int }

// shard reads its receiver without writing it.
func (sc *scaler) shard(s Shard) (int, error) {
	return sc.k * s.Index, nil
}

// MethodReadOnly passes a read-only method value.
func MethodReadOnly() {
	sc := &scaler{k: 3}
	Map(Config{Name: "ro"}, 3, sc.shard)
}

// reset rebinds the local receiver variable, which touches nothing
// shared — the pointer copy is per call.
func (sc *scaler) reset(s Shard) (int, error) {
	sc = &scaler{k: s.Index}
	return sc.k, nil
}

// MethodRebind passes the rebinding method value.
func MethodRebind() {
	Map(Config{Name: "rebind"}, 2, (&scaler{}).reset)
}

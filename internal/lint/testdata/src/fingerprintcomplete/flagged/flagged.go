// Package runner is fingerprintcomplete testdata. The package is named
// runner so the local Map mirror resolves exactly like the real
// internal/runner entry point, and the local Encoder mirrors the
// internal/memo field methods — the analyzer matches both by name, by
// design, so testdata stays self-contained. Every Map site here passes a
// fingerprint builder that misses at least one field the shard function
// reads, or encodes one it never reads.
package runner

// Shard mirrors runner.Shard.
type Shard struct{ Index int }

// Options mirrors runner.Options.
type Options struct{ Workers int }

// Config mirrors runner.Config: the Fingerprint field is what the
// analyzer keys Map-site discovery on.
type Config struct {
	Name        string
	Fingerprint []byte
	Options     Options
}

// Map mirrors runner.Map's shape.
func Map(cfg Config, n int, fn func(Shard) (int, error)) []int {
	out := make([]int, n)
	for i := range out {
		v, _ := fn(Shard{Index: i})
		out[i] = v
	}
	return out
}

// Encoder mirrors memo.Encoder's field-appending surface.
type Encoder struct{ b []byte }

// NewEncoder mirrors memo.NewEncoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Str appends a string field.
func (e *Encoder) Str(name, v string) { e.b = append(e.b, name...) }

// I64 appends a signed integer field.
func (e *Encoder) I64(name string, v int64) { e.b = append(e.b, name...) }

// U64 appends an unsigned integer field.
func (e *Encoder) U64(name string, v uint64) { e.b = append(e.b, name...) }

// Sum returns the accumulated key bytes.
func (e *Encoder) Sum() []byte { return e.b }

// Trial is the observed input struct every case below samples from.
type Trial struct {
	Cores int
	Zeta  float64
	Way   uint64
	Label string
}

// fingerprintPartial covers Cores, Way and Label — but not Zeta.
func fingerprintPartial(c Trial) []byte {
	e := NewEncoder()
	e.I64("cores", int64(c.Cores))
	e.U64("way", c.Way)
	e.Str("label", c.Label) // want "fingerprint builder runner.fingerprintPartial encodes runner.Trial.Label but the trial compute path never reads it"
	return e.Sum()
}

// DirectRead reads Zeta directly in the closure while the builder never
// observes it; the builder's Label key is also dead weight here.
func DirectRead(c Trial) []int {
	return Map(Config{Name: "direct", Fingerprint: fingerprintPartial(c)}, 4, func(s Shard) (int, error) {
		cost := c.Cores * int(c.Way)
		if c.Zeta > 0.5 { // want "trial compute path reads runner.Trial.Zeta but fingerprint builder runner.fingerprintPartial never observes it"
			cost++
		}
		return cost, nil
	})
}

// fingerprintCores covers Cores only.
func fingerprintCores(c Trial) []byte {
	e := NewEncoder()
	e.I64("cores", int64(c.Cores))
	return e.Sum()
}

// zetaCost hides the uncovered read one call below the closure, so the
// finding must carry the root-to-read chain.
func zetaCost(c Trial) float64 {
	return c.Zeta // want "trial compute path reads runner.Trial.Zeta but fingerprint builder runner.fingerprintCores never observes it: a memo hit could replay a result computed under a different Zeta .path: runner.Map closure .* -> runner.zetaCost"
}

// HelperRead reaches the uncovered field only transitively.
func HelperRead(c Trial) []int {
	return Map(Config{Name: "helper", Fingerprint: fingerprintCores(c)}, 2, func(s Shard) (int, error) {
		if zetaCost(c) > 1 {
			return c.Cores * 2, nil
		}
		return c.Cores, nil
	})
}

// fingerprintWay covers Way only.
func fingerprintWay(c Trial) []byte {
	e := NewEncoder()
	e.U64("way", c.Way)
	return e.Sum()
}

// VarConfig assigns the fingerprint through a variable's field, the
// `cfg.Fingerprint = builder(...)` pattern the field-level reaching-defs
// pass resolves.
func VarConfig(c Trial) []int {
	var rcfg Config
	rcfg.Name = "var"
	rcfg.Fingerprint = fingerprintWay(c)
	return Map(rcfg, 2, func(s Shard) (int, error) {
		if c.Cores > 1 { // want "trial compute path reads runner.Trial.Cores but fingerprint builder runner.fingerprintWay never observes it"
			return int(c.Way) * 2, nil
		}
		return int(c.Way), nil
	})
}

// fingerprintLabelOnly covers Label only.
func fingerprintLabelOnly(c Trial) []byte {
	e := NewEncoder()
	e.Str("label", c.Label) // want "fingerprint builder runner.fingerprintLabelOnly encodes runner.Trial.Label but the trial compute path never reads it"
	return e.Sum()
}

// fixed is the shared input a named shard function samples.
var fixed = Trial{Cores: 2}

// shardCost is a named shard function: both of its Trial reads are
// invisible to fingerprintLabelOnly.
func shardCost(s Shard) (int, error) {
	if fixed.Zeta > 0 { // want "trial compute path reads runner.Trial.Zeta but fingerprint builder runner.fingerprintLabelOnly never observes it"
		return 2, nil
	}
	return fixed.Cores, nil // want "trial compute path reads runner.Trial.Cores but fingerprint builder runner.fingerprintLabelOnly never observes it"
}

// NamedShard passes a named function instead of a closure.
func NamedShard(c Trial) []int {
	return Map(Config{Name: "named", Fingerprint: fingerprintLabelOnly(c)}, 2, shardCost)
}

// Package runner is fingerprintcomplete testdata that must produce no
// diagnostics: every Map site either covers the compute path's reads
// completely (by encoding, by guard reads, by whole-struct encoding or
// through a builder helper method) or has memoization deliberately off.
package runner

// Shard mirrors runner.Shard.
type Shard struct{ Index int }

// Options mirrors runner.Options.
type Options struct{ Workers int }

// Config mirrors runner.Config.
type Config struct {
	Name        string
	Fingerprint []byte
	Options     Options
}

// Map mirrors runner.Map's shape.
func Map(cfg Config, n int, fn func(Shard) (int, error)) []int {
	out := make([]int, n)
	for i := range out {
		v, _ := fn(Shard{Index: i})
		out[i] = v
	}
	return out
}

// Encoder mirrors memo.Encoder's field-appending surface.
type Encoder struct{ b []byte }

// NewEncoder mirrors memo.NewEncoder.
func NewEncoder() *Encoder { return &Encoder{} }

// I64 appends a signed integer field.
func (e *Encoder) I64(name string, v int64) { e.b = append(e.b, name...) }

// U64 appends an unsigned integer field.
func (e *Encoder) U64(name string, v uint64) { e.b = append(e.b, name...) }

// Task appends a whole struct, covering its entire type.
func (e *Encoder) Task(name string, p Params) { e.b = append(e.b, name...) }

// Sum returns the accumulated key bytes.
func (e *Encoder) Sum() []byte { return e.b }

// Trial is the observed input struct.
type Trial struct {
	Cores int
	Way   uint64
	Debug bool
}

// fingerprintFull encodes Cores and Way and reads Debug as a guard — the
// rtsim Recorder idiom: a field only read to decide whether memoization
// applies counts as observed without being encoded.
func fingerprintFull(c Trial) []byte {
	if c.Debug {
		return nil
	}
	e := NewEncoder()
	e.I64("cores", int64(c.Cores))
	e.U64("way", c.Way)
	return e.Sum()
}

// Covered reads exactly what the builder observes.
func Covered(c Trial) []int {
	return Map(Config{Name: "covered", Fingerprint: fingerprintFull(c)}, 2, func(s Shard) (int, error) {
		if c.Debug {
			return 0, nil
		}
		return c.Cores * int(c.Way), nil
	})
}

// Params is a second observed struct, encoded whole.
type Params struct {
	Period int64
	Jitter int64
}

// fingerprintWhole hands the struct to the encoder in its entirety.
func fingerprintWhole(p Params) []byte {
	e := NewEncoder()
	e.Task("params", p)
	return e.Sum()
}

// WholeType may read any Params field: the whole type is covered.
func WholeType(p Params) []int {
	return Map(Config{Name: "whole", Fingerprint: fingerprintWhole(p)}, 2, func(s Shard) (int, error) {
		return int(p.Period + p.Jitter), nil
	})
}

// appendTo is the AppendFingerprint idiom: the builder delegates the
// field encoding to a method of the observed type.
func (p Params) appendTo(e *Encoder) {
	e.I64("period", p.Period)
	e.I64("jitter", p.Jitter)
}

// fingerprintVia encodes only through the helper method.
func fingerprintVia(p Params) []byte {
	e := NewEncoder()
	p.appendTo(e)
	return e.Sum()
}

// ViaMethod's reads are covered by the builder's transitive encodes.
func ViaMethod(p Params) []int {
	return Map(Config{Name: "via", Fingerprint: fingerprintVia(p)}, 2, func(s Shard) (int, error) {
		return int(p.Period) + int(p.Jitter), nil
	})
}

// MemoOff omits the Fingerprint key: memoization is deliberately
// disabled, so there is no contract to prove.
func MemoOff(c Trial) []int {
	return Map(Config{Name: "off"}, 2, func(s Shard) (int, error) {
		return c.Cores, nil
	})
}

// Precomputed passes fingerprint bytes that are not a builder call; with
// no builder body to diff against, the site is skipped.
func Precomputed(c Trial) []int {
	fp := []byte("static-key")
	return Map(Config{Name: "pre", Fingerprint: fp}, 2, func(s Shard) (int, error) {
		return c.Cores, nil
	})
}

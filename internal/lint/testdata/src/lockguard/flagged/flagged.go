// Package guard is lockguard testdata: a registry whose map is locked in
// some methods and forgotten in others.
package guard

import "sync"

// Registry guards items with mu; hits is deliberately unconstrained.
type Registry struct {
	mu    sync.Mutex
	items map[string]int
	hits  int
}

// Add locks correctly.
func (r *Registry) Add(k string) {
	r.mu.Lock()
	r.items[k]++
	r.mu.Unlock()
}

// Len uses the deferred-unlock idiom: the region stays open to the end.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

// Peek forgets the lock.
func (r *Registry) Peek(k string) int {
	return r.items[k] // want "field Registry.items is accessed under Registry.mu elsewhere; this access in Peek does not hold the lock"
}

// Bump touches only hits, which no method locks: unconstrained, no finding.
func (r *Registry) Bump() {
	r.hits++
}

// Gauge mixes an RWMutex with a read-locked and a bare reader.
type Gauge struct {
	mu  sync.RWMutex
	val float64
}

// Read read-locks.
func (g *Gauge) Read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// Racy reads without the lock.
func (g *Gauge) Racy() float64 {
	return g.val // want "field Gauge.val is accessed under Gauge.mu elsewhere; this access in Racy does not hold the lock"
}

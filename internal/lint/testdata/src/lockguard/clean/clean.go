// Package guard is lockguard testdata for the approved shapes: every
// guarded access locked, closures exempt, and mutex-free structs ignored.
package guard

import "sync"

// Counter locks consistently everywhere.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc locks.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Get locks with defer.
func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Async hands the field to a closure; lock state at the definition site is
// meaningless, so the closure body is out of scope.
func (c *Counter) Async(run func(func())) {
	run(func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	})
}

// Plain has no mutex: nothing to enforce.
type Plain struct {
	n int
}

// Twice is unguarded by construction.
func (p *Plain) Twice() int {
	p.n *= 2
	return p.n
}

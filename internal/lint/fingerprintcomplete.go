package lint

// The fingerprintcomplete analyzer statically proves the memo soundness
// contract (DESIGN.md §12): every struct field a runner.Map trial's
// compute path can read must be observed by the fingerprint builder the
// call passes, or a memo hit could replay a result computed under
// different inputs. For each Map site it
//
//   - resolves the fingerprint expression (composite-literal key, or the
//     field-level reaching definitions of `cfg.Fingerprint = ...`) to a
//     builder function;
//   - walks the builder's reachable bodies collecting (a) every field it
//     reads — an observed field counts as covered even when it only
//     gates the fingerprint, like rtsim's Recorder nil-guard that
//     disables memoization — and (b) every field appearing inside a
//     memo.Encoder field-method argument;
//   - walks the shard function's reachable bodies collecting every field
//     it reads, with root-to-read chains;
//   - errors on fields of fingerprint-relevant types (types the builder
//     observes at all) that the compute path reads but the builder never
//     does, and warns on fields the builder encodes but the compute path
//     never reads (wasted key entropy, or a stale schema).
//
// Scoping the diff to types the builder observes is what keeps derived
// state out: a trial's intermediate structs (allocations, schedules,
// simulator state) are functions of the seed and the observed inputs, so
// their fields need no encoding and never enter the comparison.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FingerprintComplete is the memo-contract analyzer.
var FingerprintComplete = &Analyzer{
	Name:      "fingerprintcomplete",
	Doc:       "runner.Map fingerprints must encode every field the trial compute path reads",
	RunModule: runFingerprintComplete,
}

func runFingerprintComplete(mp *ModulePass) error {
	ff := newFieldFlow(mp.Graph)
	builderCache := map[FuncID]*reachResult{}
	type reported struct {
		pos token.Position
		msg string
	}
	seen := map[reported]bool{}

	for _, pkg := range mp.Pkgs {
		for _, site := range findMapSites(pkg) {
			for _, fpExpr := range fingerprintExprs(site) {
				builderID, builderName := builderOf(pkg, site, fpExpr)
				if builderID == "" {
					continue
				}
				node := mp.Graph.Nodes[builderID]
				if node == nil || node.Decl == nil {
					continue // export-data builder: no body to verify against
				}
				builder, ok := builderCache[builderID]
				if !ok {
					builder = ff.reach(nil, "", nil, builderID)
					builderCache[builderID] = builder
				}
				observed := map[string]bool{}
				for _, k := range builder.ReadKeys() {
					observed[k.TypeKey()] = true
				}
				for _, eu := range builder.encodes {
					for _, k := range eu.keys {
						observed[k.TypeKey()] = true
					}
				}

				compute := computeReach(ff, pkg, site)
				if compute == nil {
					continue
				}

				// Error direction: compute reads the builder never observes.
				for _, key := range compute.ReadKeys() {
					if !observed[key.TypeKey()] || builder.whole[key.TypeKey()] {
						continue
					}
					if _, ok := builder.reads[key]; ok {
						continue
					}
					ev := compute.reads[key]
					r := reported{pos: ev.pos, msg: string(key)}
					if seen[r] {
						continue
					}
					seen[r] = true
					mp.ReportAt(ev.pos, ev.chain,
						"trial compute path reads %s but fingerprint builder %s never observes it: a memo hit could replay a result computed under a different %s (path: %s)",
						key.Display(), builderName, key.FieldName(), ChainString(ev.chain))
				}

				// Warning direction: encoded fields the compute path never
				// reads. Deduplicated per encode position and field.
				for i, eu := range builder.encodes {
					for _, key := range eu.keys {
						if _, ok := compute.reads[key]; ok {
							continue
						}
						pos := builder.encPkgs[i].Fset.Position(eu.pos)
						r := reported{pos: pos, msg: "warn:" + string(key)}
						if seen[r] {
							continue
						}
						seen[r] = true
						mp.WarnAt(pos, nil,
							"fingerprint builder %s encodes %s but the trial compute path never reads it (wasted key entropy, or a stale schema)",
							builderName, key.Display())
					}
				}
			}
		}
	}
	return nil
}

// computeReach walks the shard function of a Map site. Function-literal
// shard functions are walked from their body (the call graph attributes a
// closure's calls to the enclosing declaration, which would pollute the
// read set with everything outside the closure); named functions and
// method values start at their graph node.
func computeReach(ff *fieldFlow, pkg *Package, site mapSite) *reachResult {
	switch fn := ast.Unparen(site.fnArg).(type) {
	case *ast.FuncLit:
		pos := pkg.Fset.Position(site.call.Pos())
		label := "runner.Map closure (" + pos.Filename + ":" + itoaLint(pos.Line) + ")"
		return ff.reach(pkg, label, fn.Body, "")
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fn].(*types.Func); ok {
			return ff.reach(nil, "", nil, FuncIDOf(f))
		}
	case *ast.SelectorExpr:
		if f, ok := pkg.Info.Uses[fn.Sel].(*types.Func); ok {
			return ff.reach(nil, "", nil, FuncIDOf(f))
		}
	}
	return nil
}

// builderOf resolves a fingerprint expression to the builder function it
// calls: a direct call, or a variable whose reaching definition is one.
func builderOf(pkg *Package, site mapSite, fpExpr ast.Expr) (FuncID, string) {
	switch e := ast.Unparen(fpExpr).(type) {
	case *ast.CallExpr:
		var fn *types.Func
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			fn, _ = pkg.Info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			fn, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
		}
		if fn != nil {
			return FuncIDOf(fn), DisplayName(fn)
		}
	case *ast.Ident:
		cfg := NewCFG(site.decl.Body)
		rd := cfg.ReachingDefs(site.pkg.Info, site.decl)
		for _, def := range rd.DefsReaching(e) {
			if def.RHS == nil {
				continue
			}
			if call, ok := ast.Unparen(def.RHS).(*ast.CallExpr); ok {
				return builderOf(pkg, site, call)
			}
		}
	}
	return "", ""
}

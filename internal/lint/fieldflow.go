package lint

// The field-sensitive dataflow layer behind the fingerprintcomplete and
// sharedcapture analyzers: starting from a trial compute root (the
// closure or function a runner.Map call dispatches), walk the call graph
// and collect every struct field the root can transitively *read*, each
// with the root-to-read call chain as evidence.
//
// Field identity has the same dual-view subtlety the call graph solves
// for functions: the loader type-checks each package from source while
// importers see it through export data, so the same struct field exists
// as two distinct *types.Var objects. A FieldKey is therefore a string —
// "pkgpath.TypeName.FieldName" of the struct type that declares the
// field (resolved through embedding, pointers and aliases) — identical
// for both views.
//
// Reads are collected syntactically per function body: every selector
// whose types.Selection selects a field counts, except a selector that is
// exactly the target of a plain `=`/`:=` assignment (a pure write).
// Op-assignments, inc/dec and reads feeding writes of other fields all
// count as reads, as do the implicit field hops of promoted selections
// through embedded structs. The traversal is a breadth-first walk over
// the PR 4 call graph in call-site order — deterministic, and the parent
// chain of the first visit becomes the diagnostic's evidence chain.
//
// The same walk doubles as the fingerprint-encoder coverage pass: inside
// a fingerprint builder's reachable bodies, calls to the memo.Encoder
// field methods (Str/I64/U64/F64/Bool/Bytes/Task — matched by method name
// on a receiver type named Encoder, the convention the testdata mirrors)
// record which fields appear in encoded value arguments, and struct-typed
// arguments handed whole to an encoder mark their entire type as covered.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FieldKey is the stable cross-package identity of one struct field:
// "pkgpath.TypeName.FieldName" of the declaring struct type.
type FieldKey string

// TypeKey returns the declaring-type prefix ("pkgpath.TypeName").
func (k FieldKey) TypeKey() string {
	s := string(k)
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[:i]
	}
	return s
}

// FieldName returns the bare field name.
func (k FieldKey) FieldName() string {
	s := string(k)
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}

// Display renders the key with the package's last path element only
// ("rtsim.Config.WayBytes"), the compact form diagnostics use.
func (k FieldKey) Display() string {
	s := string(k)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}

// fieldUse is one direct field read inside a function body.
type fieldUse struct {
	key FieldKey
	pos token.Pos
}

// encodeUse is one encoder field-method call inside a function body: the
// fields read by its value arguments, and the struct types any value
// argument hands over whole.
type encodeUse struct {
	keys  []FieldKey
	whole []string // TypeKeys of struct arguments encoded in their entirety
	pos   token.Pos
}

// funcSummary caches the per-function facts the traversals combine.
type funcSummary struct {
	reads   []fieldUse
	encodes []encodeUse
	calls   []CallEdge
}

// fieldFlow owns the per-function summaries for one analyzer run.
type fieldFlow struct {
	graph     *CallGraph
	summaries map[FuncID]*funcSummary
}

func newFieldFlow(g *CallGraph) *fieldFlow {
	return &fieldFlow{graph: g, summaries: map[FuncID]*funcSummary{}}
}

// summaryOf returns (building on demand) the summary for a graph node;
// nil for functions only known through export data.
func (ff *fieldFlow) summaryOf(id FuncID) *funcSummary {
	if s, ok := ff.summaries[id]; ok {
		return s
	}
	node := ff.graph.Nodes[id]
	if node == nil || node.Decl == nil || node.Pkg == nil {
		ff.summaries[id] = nil
		return nil
	}
	s := summarize(node.Pkg, node.Decl.Body, node.Calls)
	ff.summaries[id] = s
	return s
}

// summarize builds a summary for one body. calls may be pre-resolved (the
// graph node's edges); pass nil to resolve them from the body.
func summarize(pkg *Package, body ast.Node, calls []CallEdge) *funcSummary {
	s := &funcSummary{calls: calls}
	if s.calls == nil {
		s.calls = resolveCallEdges(pkg, body)
	}
	// Selectors that are exactly the target of a plain assignment are
	// pure writes, not reads. Everything else — op-assign targets,
	// inc/dec, bases of deeper writes — reads the field.
	writeOnly := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok &&
			(as.Tok == token.ASSIGN || as.Tok == token.DEFINE) {
			for _, lhs := range as.Lhs {
				writeOnly[ast.Unparen(lhs)] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if writeOnly[n] {
				return true // the base keeps being visited: a.B in a.B.C = v still reads B
			}
			sel := pkg.Info.Selections[n]
			if sel == nil {
				return true // qualified identifier or method expression
			}
			for _, key := range selectionKeys(sel) {
				s.reads = append(s.reads, fieldUse{key: key, pos: n.Sel.Pos()})
			}
		case *ast.CallExpr:
			if eu, ok := encoderCall(pkg, n); ok {
				s.encodes = append(s.encodes, eu)
			}
		}
		return true
	})
	return s
}

// selectionKeys converts one types.Selection into the field keys it
// touches: every field hop of the index path, including the implicit hops
// of promotion through embedded structs. Method selections contribute
// only their embedded-field hops (the final index names the method).
func selectionKeys(sel *types.Selection) []FieldKey {
	idx := sel.Index()
	if sel.Kind() != types.FieldVal {
		idx = idx[:len(idx)-1]
	}
	var keys []FieldKey
	t := sel.Recv()
	for _, i := range idx {
		t = derefUnalias(t)
		named, _ := t.(*types.Named)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			break
		}
		f := st.Field(i)
		if named != nil && named.Obj() != nil {
			key := named.Obj().Name() + "." + f.Name()
			if p := named.Obj().Pkg(); p != nil {
				key = p.Path() + "." + key
			}
			keys = append(keys, FieldKey(key))
		}
		t = f.Type()
	}
	return keys
}

// derefUnalias strips aliases and pointer indirections.
func derefUnalias(t types.Type) types.Type {
	for {
		t = types.Unalias(t)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = ptr.Elem()
	}
}

// encoderFieldMethods are the memo.Encoder field-appending methods — the
// writes of the fingerprint contract. Matched by method name on a
// receiver type named Encoder, so the self-contained testdata mirrors
// resolve exactly like the real internal/memo type.
var encoderFieldMethods = map[string]bool{
	"Str": true, "I64": true, "U64": true, "F64": true,
	"Bool": true, "Bytes": true, "Task": true,
}

// encoderCall recognises e.I64("name", value...) calls and collects the
// fields their value arguments read, plus struct types encoded whole.
func encoderCall(pkg *Package, call *ast.CallExpr) (encodeUse, bool) {
	selExpr, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !encoderFieldMethods[selExpr.Sel.Name] {
		return encodeUse{}, false
	}
	fn, ok := pkg.Info.Uses[selExpr.Sel].(*types.Func)
	if !ok {
		return encodeUse{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return encodeUse{}, false
	}
	recv := derefUnalias(sig.Recv().Type())
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Encoder" {
		return encodeUse{}, false
	}
	eu := encodeUse{pos: call.Pos()}
	if len(call.Args) < 2 {
		return eu, true
	}
	for _, arg := range call.Args[1:] {
		ast.Inspect(arg, func(n ast.Node) bool {
			sub, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s := pkg.Info.Selections[sub]; s != nil {
				eu.keys = append(eu.keys, selectionKeys(s)...)
			}
			return true
		})
		// A struct handed over whole (memo's Task, or a future
		// struct-valued Bytes source) covers its entire type.
		if tv, ok := pkg.Info.Types[arg]; ok {
			if named, ok := derefUnalias(tv.Type).(*types.Named); ok {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct && named.Obj() != nil {
					key := named.Obj().Name()
					if p := named.Obj().Pkg(); p != nil {
						key = p.Path() + "." + key
					}
					eu.whole = append(eu.whole, key)
				}
			}
		}
	}
	return eu, true
}

// resolveCallEdges resolves the calls of one body with the same policy as
// the call graph's collectCalls — needed for roots that are function
// literals, whose calls the graph attributes to the enclosing declaration
// (walking from the enclosing node would pollute the closure's read set
// with everything the function does outside the closure).
func resolveCallEdges(pkg *Package, body ast.Node) []CallEdge {
	var edges []CallEdge
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		if tv, ok := pkg.Info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			return true
		}
		switch fun := fun.(type) {
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
				edges = append(edges, CallEdge{Callee: FuncIDOf(fn), Pos: fun.Pos()})
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				edges = append(edges, CallEdge{Callee: FuncIDOf(fn), Pos: fun.Sel.Pos()})
			}
		}
		return true
	})
	return edges
}

// readEvidence is the proof one field is readable from a root: the read
// position and the root-to-read call chain.
type readEvidence struct {
	pos   token.Position
	chain []ChainEntry
}

// reachResult is everything one traversal from a root discovers.
type reachResult struct {
	reads   map[FieldKey]readEvidence
	encodes []encodeUse // in visit order; positions resolved by pkg below
	encPkgs []*Package  // parallel to encodes: the package owning each call
	whole   map[string]bool
}

// ReadKeys returns the read set in sorted order.
func (r *reachResult) ReadKeys() []FieldKey {
	keys := make([]FieldKey, 0, len(r.reads))
	for k := range r.reads {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// visitFrame tracks how the traversal first reached a function.
type visitFrame struct {
	id     FuncID
	parent int       // index into frames; -1 = called from the root body
	site   token.Pos // call site in the parent (or root body)
}

// reach walks the call graph breadth-first from a root and accumulates
// reads, encoder calls and whole-type coverage. rootPkg/rootLabel/rootBody
// describe an inline root (a function literal); when rootBody is nil the
// walk starts at rootID's graph node instead and rootLabel defaults to
// its display name.
func (ff *fieldFlow) reach(rootPkg *Package, rootLabel string, rootBody ast.Node, rootID FuncID) *reachResult {
	res := &reachResult{reads: map[FieldKey]readEvidence{}, whole: map[string]bool{}}
	var frames []visitFrame
	visited := map[FuncID]bool{}
	queue := []int{}

	record := func(pkg *Package, sum *funcSummary, frameIdx int) {
		if sum == nil {
			return
		}
		for _, u := range sum.reads {
			if _, dup := res.reads[u.key]; dup {
				continue
			}
			res.reads[u.key] = readEvidence{
				pos:   pkg.Fset.Position(u.pos),
				chain: ff.chainTo(rootLabel, frames, frameIdx, pkg, u.pos),
			}
		}
		for _, eu := range sum.encodes {
			res.encodes = append(res.encodes, eu)
			res.encPkgs = append(res.encPkgs, pkg)
			for _, w := range eu.whole {
				res.whole[w] = true
			}
		}
	}
	enqueue := func(edges []CallEdge, parent int) {
		for _, e := range edges {
			if visited[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			frames = append(frames, visitFrame{id: e.Callee, parent: parent, site: e.Pos})
			queue = append(queue, len(frames)-1)
		}
	}

	if rootBody != nil {
		rootSum := summarize(rootPkg, rootBody, nil)
		record(rootPkg, rootSum, -1)
		enqueue(rootSum.calls, -1)
	} else {
		node := ff.graph.Nodes[rootID]
		if node == nil {
			return res
		}
		if rootLabel == "" && node.Fn != nil {
			rootLabel = DisplayName(node.Fn)
		}
		visited[rootID] = true
		frames = append(frames, visitFrame{id: rootID, parent: -1})
		queue = append(queue, 0)
	}

	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		node := ff.graph.Nodes[frames[idx].id]
		if node == nil || node.Decl == nil {
			continue
		}
		sum := ff.summaryOf(frames[idx].id)
		record(node.Pkg, sum, idx)
		enqueue(node.Calls, idx)
	}
	return res
}

// chainTo reconstructs the root-to-read evidence chain for a read inside
// the function at frameIdx (-1 = the root body itself).
func (ff *fieldFlow) chainTo(rootLabel string, frames []visitFrame, frameIdx int, readPkg *Package, readPos token.Pos) []ChainEntry {
	// Collect the path root -> ... -> reader by following parents.
	var path []int
	for i := frameIdx; i >= 0; i = frames[i].parent {
		path = append([]int{i}, path...)
	}
	chain := []ChainEntry{{Func: rootLabel}}
	if len(path) > 0 {
		// The root entry's site is the call that leaves the root.
		if first := frames[path[0]]; first.site.IsValid() {
			// Site positions resolve in the fileset of the package that
			// contains the call; the root and its first callee frame share
			// readPkg only when the call is in the root body. For deeper
			// hops the parent node's package resolves the site.
			chain[0].Site = resolveSite(ff.graph, frames, path[0], readPkg, first.site)
		}
	}
	for n, i := range path {
		node := ff.graph.Nodes[frames[i].id]
		if node == nil || node.Fn == nil {
			continue
		}
		e := ChainEntry{Func: DisplayName(node.Fn)}
		if n+1 < len(path) {
			if next := frames[path[n+1]]; next.site.IsValid() && node.Pkg != nil {
				e.Site = node.Pkg.Fset.Position(next.site)
			}
		} else {
			e.Site = readPkg.Fset.Position(readPos)
		}
		chain = append(chain, e)
	}
	if len(path) == 0 {
		chain[0].Site = readPkg.Fset.Position(readPos)
	}
	return chain
}

// resolveSite resolves a call position in the fileset of the calling
// frame's package (the root package for first-hop calls).
func resolveSite(g *CallGraph, frames []visitFrame, frameIdx int, rootPkg *Package, pos token.Pos) token.Position {
	parent := frames[frameIdx].parent
	if parent < 0 {
		if rootPkg != nil {
			return rootPkg.Fset.Position(pos)
		}
		return token.Position{}
	}
	if node := g.Nodes[frames[parent].id]; node != nil && node.Pkg != nil {
		return node.Pkg.Fset.Position(pos)
	}
	return token.Position{}
}

// mapSite is one runner.Map call: the config argument carrying the
// fingerprint and the shard function dispatched per trial.
type mapSite struct {
	call    *ast.CallExpr
	pkg     *Package
	decl    *ast.FuncDecl // enclosing declaration (for reaching-defs queries)
	confArg ast.Expr
	fnArg   ast.Expr
}

// findMapSites locates every runner.Map call in pkg: a call to a function
// named Map declared in a package named runner (matching both the real
// internal/runner and the testdata mirrors). The config argument is the
// one whose type carries a Fingerprint field; the shard function is the
// final argument.
func findMapSites(pkg *Package) []mapSite {
	var sites []mapSite
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var fn *types.Func
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					fn, _ = pkg.Info.Uses[fun].(*types.Func)
				case *ast.SelectorExpr:
					fn, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
				}
				if fn == nil || fn.Name() != "Map" || fn.Pkg() == nil || fn.Pkg().Name() != "runner" {
					return true
				}
				if len(call.Args) < 2 {
					return true
				}
				site := mapSite{call: call, pkg: pkg, decl: fd, fnArg: call.Args[len(call.Args)-1]}
				for _, arg := range call.Args {
					if tv, ok := pkg.Info.Types[arg]; ok && hasFingerprintField(tv.Type) {
						site.confArg = arg
						break
					}
				}
				if site.confArg != nil {
					sites = append(sites, site)
				}
				return true
			})
		}
	}
	return sites
}

// hasFingerprintField reports whether t (after deref/unalias) is a struct
// with a field named Fingerprint.
func hasFingerprintField(t types.Type) bool {
	st, ok := derefUnalias(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Fingerprint" {
			return true
		}
	}
	return false
}

// fingerprintExprs resolves the expressions that can flow into the config
// argument's Fingerprint field at a Map site: the composite literal's
// Fingerprint key, or — when the config is a variable — the reaching
// definitions of that variable's Fingerprint field (the
// `cfg.Fingerprint = builder(...)` pattern, resolved by the field-level
// reaching-defs pass).
func fingerprintExprs(site mapSite) []ast.Expr {
	switch arg := ast.Unparen(site.confArg).(type) {
	case *ast.CompositeLit:
		return fingerprintFromLit(arg)
	case *ast.UnaryExpr:
		if arg.Op == token.AND {
			if lit, ok := ast.Unparen(arg.X).(*ast.CompositeLit); ok {
				return fingerprintFromLit(lit)
			}
		}
	case *ast.Ident:
		cfg := NewCFG(site.decl.Body)
		rd := cfg.ReachingDefs(site.pkg.Info, site.decl)
		var out []ast.Expr
		for _, def := range rd.FieldDefsReaching(arg, "Fingerprint") {
			if def.RHS == nil {
				continue
			}
			if def.Field == "Fingerprint" {
				out = append(out, def.RHS)
				continue
			}
			if lit, ok := ast.Unparen(def.RHS).(*ast.CompositeLit); ok {
				out = append(out, fingerprintFromLit(lit)...)
			}
		}
		return out
	}
	return nil
}

func fingerprintFromLit(lit *ast.CompositeLit) []ast.Expr {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Fingerprint" {
			return []ast.Expr{kv.Value}
		}
	}
	// No Fingerprint key: the field is nil, memoization is deliberately
	// disabled for this call (the runner contract), nothing to check.
	return nil
}

package lint

// HotAlloc turns the ROADMAP's "zero allocations in the tick path"
// discipline from a bench-observed property (the flaky-prone allocs/op
// gate) into a compiler-checked fact: it computes the transitive closure
// of functions reachable from the hot-path roots — the kernel's
// Tick/Step/AdvanceTo/NextWakeup/sduIdle family, flight.Recorder.Emit,
// and the schedsim/rtsim event dispatchers — and reports every heap
// allocation on those paths with the full root-to-site call chain as
// evidence, exactly like puritycheck reports determinism hazards.
//
// What counts as an allocation (each with the escape/dataflow heuristic
// that keeps the reused-scratch idioms clean):
//
//   - make/new: always.
//   - append: a *self*-append (x = append(x, ...)) into a parameter,
//     receiver field or other caller-owned storage is the sanctioned
//     scratch-reuse idiom (amortised, capacity-guarded at the call sites
//     that matter) and is allowed; a self-append into a slice freshly
//     allocated in the same function (a make/nil/literal definition
//     reaches the append, per the reaching-definitions pass) allocates
//     every call and is flagged, as is any non-self append.
//   - composite literals: slice and map literals always allocate;
//     &T{...} is flagged when the pointer escapes (returned, passed to a
//     call, stored into a field/index/channel or captured) — a value
//     struct literal passed by value stays on the stack and is clean.
//   - closures: a function literal that captures an enclosing variable
//     allocates its environment; capture-free literals compile to static
//     functions and are clean.
//   - interface boxing: fmt.* and errors.* calls (formatting and error
//     wrapping box their operands) and explicit conversions of concrete
//     values to interface types.
//   - strings: concatenation with + and string<->[]byte/[]rune
//     conversions.
//
// Calls through function values are unresolvable in the call graph and
// deliberately not treated as allocating (same policy as puritycheck):
// the injected observers would drown every real finding.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc is the zero-alloc hot-path analyzer.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "reports call paths from hot-path roots (Tick/Step/AdvanceTo/NextWakeup/sduIdle, flight.Recorder.Emit, the schedsim/rtsim dispatchers) to heap allocations — make/new, escaping composite literals, non-scratch append, capturing closures, interface boxing, string concat — with the full call chain",
	RunModule: runHotAlloc,
}

// hotRootPkgs are the packages whose hot-family functions are roots.
var hotRootPkgs = map[string]bool{
	"l15": true, "soc": true, "cpu": true,
	"schedsim": true, "rtsim": true, "flight": true,
}

// hotRootNames are the root function names common to every hot package:
// the kernel tick/step family and the wakeup protocol.
var hotRootNames = map[string]bool{
	"Tick": true, "Step": true, "StepIssue": true, "StepDual": true,
	"AdvanceTo": true, "NextWakeup": true, "sduIdle": true,
}

// hotRootExtra adds the per-package roots: the flight recorder's
// zero-alloc Emit and the event dispatchers of the two DES simulators.
var hotRootExtra = map[string]map[string]bool{
	"flight":   {"Emit": true},
	"soc":      {"tickSDUs": true},
	"schedsim": {"runInstance": true, "runInstanceEvents": true},
	"rtsim":    {"dispatch": true, "dispatchTicked": true},
}

// isHotRoot reports whether node is a hot-path root.
func isHotRoot(node *CallNode) bool {
	if node.Decl == nil || node.Pkg == nil {
		return false
	}
	pkg := node.Pkg.Types.Name()
	if !hotRootPkgs[pkg] {
		return false
	}
	name := node.Decl.Name.Name
	return hotRootNames[name] || hotRootExtra[pkg][name]
}

func runHotAlloc(mp *ModulePass) error {
	g := mp.Graph
	fs := NewFactSet(g)

	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		if node.Decl == nil {
			continue
		}
		seedAllocFacts(fs, node)
	}

	fs.Propagate()

	reported := map[Fact]bool{}
	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		if !isHotRoot(node) {
			continue
		}
		for _, f := range fs.FactsOf(id) {
			if f.Kind != "alloc" || reported[f] {
				continue
			}
			reported[f] = true
			chain := fs.Chain(id, f)
			mp.ReportAt(f.Origin, chain,
				"heap allocation on the hot path from %s: %s (%s); the tick/dispatch path must allocate nothing — hoist into a reused scratch buffer or a config-epoch precompute",
				DisplayName(node.Fn), f.Sink, ChainString(chain))
		}
	}
	return nil
}

// seedAllocFacts walks node's body (closures included — their allocations
// are attributed to the declaring function, matching the call graph's
// closure policy) and seeds one "alloc" fact per allocation site.
func seedAllocFacts(fs *FactSet, node *CallNode) {
	pkg := node.Pkg
	seed := func(pos token.Pos, sink string) {
		fs.Seed(node.ID, Fact{
			Kind:   "alloc",
			Sink:   sink,
			Origin: pkg.Fset.Position(pos),
		})
	}

	// The reaching-defs solution is built lazily: most functions have no
	// append and never need it.
	var rd *ReachingDefs
	reaching := func(use *ast.Ident) []*Def {
		if rd == nil {
			rd = NewCFG(node.Decl.Body).ReachingDefs(pkg.Info, node.Decl)
		}
		return rd.DefsReaching(use)
	}

	handledAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinCall(pkg, call, "append") || len(call.Args) == 0 {
					continue
				}
				handledAppend[call] = true
				operand := ast.Unparen(call.Args[0])
				// x = append(x[:i], x[i+1:]...) is the in-place delete
				// idiom: the destination shares x's backing array.
				if slice, ok := operand.(*ast.SliceExpr); ok {
					operand = ast.Unparen(slice.X)
				}
				if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) && sameRef(pkg, n.Lhs[i], operand) {
					checkSelfAppend(pkg, call, reaching, seed)
					continue
				}
				seed(call.Pos(), "append copies into a new backing array (result not reassigned to its operand)")
			}
		case *ast.CallExpr:
			if isBuiltinCall(pkg, n, "append") {
				if !handledAppend[n] {
					seed(n.Pos(), "append result used as a fresh value")
				}
				return true
			}
			classifyAllocCall(pkg, n, seed)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && escapes(pkg, node.Decl.Body, n) {
					seed(cl.Pos(), "escaping &composite literal")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					seed(n.Pos(), "slice literal")
				case *types.Map:
					seed(n.Pos(), "map literal")
				}
			}
		case *ast.FuncLit:
			if captures(pkg, n) {
				seed(n.Pos(), "closure captures enclosing variables")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pkg.Info.Types[n]; ok {
					if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						seed(n.Pos(), "string concatenation")
					}
				}
			}
		}
		return true
	})
}

// checkSelfAppend applies the scratch-reuse policy to x = append(x, ...):
// allowed when x is caller-owned storage (parameter, receiver field,
// dereferenced pointer, package variable), flagged when a definition that
// freshly allocates in this function reaches the append.
func checkSelfAppend(pkg *Package, call *ast.CallExpr, reaching func(*ast.Ident) []*Def, seed func(token.Pos, string)) {
	target := ast.Unparen(call.Args[0])
	id, ok := target.(*ast.Ident)
	if !ok {
		// Field, index or pointer-deref target: caller-owned scratch.
		return
	}
	for _, def := range reaching(id) {
		if def.RHS == nil {
			continue // parameter or multi-value def: caller-owned
		}
		if allocatesSlice(pkg, def.RHS) {
			seed(call.Pos(), "append into a slice freshly allocated each call (defined at line "+itoaLint(pkg.Fset.Position(def.Site.Pos()).Line)+")")
			return
		}
	}
}

// allocatesSlice reports whether the defining expression freshly
// allocates backing storage: make, a slice literal, or nil (first append
// will allocate).
func allocatesSlice(pkg *Package, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		return isBuiltinCall(pkg, e, "make")
	case *ast.CompositeLit:
		if tv, ok := pkg.Info.Types[e]; ok {
			_, isSlice := tv.Type.Underlying().(*types.Slice)
			return isSlice
		}
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

// classifyAllocCall seeds allocation facts for call expressions:
// make/new, fmt/errors wrapping, interface conversions and
// string<->bytes conversions.
func classifyAllocCall(pkg *Package, call *ast.CallExpr, seed func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if isBuiltinCall(pkg, call, "make") {
		seed(call.Pos(), "make")
		return
	}
	if isBuiltinCall(pkg, call, "new") {
		seed(call.Pos(), "new")
		return
	}

	// Conversions: T(x) where T is an interface (boxing) or a
	// string<->[]byte/[]rune pair (copies).
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := pkg.Info.Types[call.Args[0]]; ok && !types.IsInterface(atv.Type) {
				seed(call.Pos(), "conversion boxes a concrete value into an interface")
			}
			return
		}
		if len(call.Args) == 1 && isStringBytesConv(pkg, tv.Type, call.Args[0]) {
			seed(call.Pos(), "string<->bytes conversion copies")
		}
		return
	}

	// fmt/errors: formatting and wrapping box and allocate.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt":
				seed(call.Pos(), "fmt."+fn.Name()+" (interface boxing + formatting)")
			case "errors":
				// Is/As/Unwrap inspect without allocating.
				if fn.Name() == "New" || fn.Name() == "Join" {
					seed(call.Pos(), "errors."+fn.Name()+" (error wrapping)")
				}
			}
		}
	}
}

// isStringBytesConv reports whether converting arg to target copies
// between string and []byte/[]rune.
func isStringBytesConv(pkg *Package, target types.Type, arg ast.Expr) bool {
	atv, ok := pkg.Info.Types[arg]
	if !ok {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(target) && isByteRuneSlice(atv.Type)) ||
		(isByteRuneSlice(target) && isStr(atv.Type))
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// escapes applies the pointer-escape heuristic to the &T{...} expression
// addr inside body: the pointer escapes when it is returned, passed to a
// call, stored into a field/index/channel/map, assigned to anything but a
// plain local, or appears inside another composite literal. Assignment to
// a local followed by escaping *uses* of that local also escapes.
func escapes(pkg *Package, body *ast.BlockStmt, addr ast.Expr) bool {
	var local *types.Var // when addr is assigned to exactly one plain local
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if containsExpr(r, addr) {
					esc = true
				}
			}
		case *ast.CallExpr:
			for _, a := range n.Args {
				if containsExpr(a, addr) {
					esc = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if e != addr && containsExpr(e, addr) {
					esc = true
				}
				if e == addr {
					esc = true
				}
			}
		case *ast.SendStmt:
			if containsExpr(n.Value, addr) {
				esc = true
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if !containsExpr(r, addr) {
					continue
				}
				if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						if v, ok := objOf(pkg, id).(*types.Var); ok && !v.IsField() && v.Parent() != pkg.Types.Scope() {
							if local == nil {
								local = v
								continue
							}
						}
					}
				}
				esc = true // stored into a field/index/package var/multi-assign
			}
		}
		return true
	})
	if esc || local == nil {
		return esc
	}
	// Track the local's value uses. Reads/writes *through* the pointer
	// (p.field, *p, p[i] — including method calls on p) dereference it in
	// place and do not escape it; only the bare pointer value flowing
	// into a return, call argument, send, composite literal or a
	// non-local assignment does.
	deref := derefBases(body)
	useEscapes := func(tree ast.Node) bool { return usesVarValue(pkg, tree, local, deref) }
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if useEscapes(r) {
					esc = true
				}
			}
		case *ast.CallExpr:
			for _, a := range n.Args {
				if useEscapes(a) {
					esc = true
				}
			}
		case *ast.SendStmt:
			if useEscapes(n.Value) {
				esc = true
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if !useEscapes(r) {
					continue
				}
				// Reassigning to the same local is fine; anything else
				// (field, index, another var) escapes.
				if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						if v, ok := objOf(pkg, id).(*types.Var); ok && v == local {
							continue
						}
					}
				}
				esc = true
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if useEscapes(e) {
					esc = true
				}
			}
		}
		return true
	})
	return esc
}

// containsExpr reports whether tree contains the exact node target.
func containsExpr(tree ast.Node, target ast.Expr) bool {
	found := false
	ast.Inspect(tree, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// derefBases collects identifiers appearing as the base of a selector,
// star or index expression — uses that dereference a pointer in place
// rather than copying its value.
func derefBases(tree ast.Node) map[*ast.Ident]bool {
	m := map[*ast.Ident]bool{}
	ast.Inspect(tree, func(n ast.Node) bool {
		var x ast.Expr
		switch e := n.(type) {
		case *ast.SelectorExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		}
		if x != nil {
			if id, ok := ast.Unparen(x).(*ast.Ident); ok {
				m[id] = true
			}
		}
		return true
	})
	return m
}

// usesVarValue reports whether tree uses v's bare value (an occurrence
// that is not a deref base).
func usesVarValue(pkg *Package, tree ast.Node, v *types.Var, deref map[*ast.Ident]bool) bool {
	found := false
	ast.Inspect(tree, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(pkg, id) == v && !deref[id] {
			found = true
		}
		return !found
	})
	return found
}

// objOf resolves an identifier to its object, checking uses then defs.
func objOf(pkg *Package, id *ast.Ident) types.Object {
	if o, ok := pkg.Info.Uses[id]; ok {
		return o
	}
	return pkg.Info.Defs[id]
}

// captures reports whether the function literal references a variable
// declared outside itself (its environment must then be heap-allocated).
func captures(pkg *Package, fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures (no environment).
		if v.Parent() == pkg.Types.Scope() || v.Parent() == types.Universe {
			return true
		}
		// Declared inside the literal (params included)?
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true
		}
		found = true
		return false
	})
	return found
}

// sameRef reports whether two expressions statically denote the same
// storage location: same variable, same field chain on the same base,
// same pointer deref.
func sameRef(pkg *Package, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		return ok && objOf(pkg, a) != nil && objOf(pkg, a) == objOf(pkg, bi)
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == bs.Sel.Name && sameRef(pkg, a.X, bs.X)
	case *ast.StarExpr:
		bs, ok := b.(*ast.StarExpr)
		return ok && sameRef(pkg, a.X, bs.X)
	}
	return false
}

// itoaLint is a tiny allocation-free-enough int formatter for messages.
func itoaLint(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

package lint

// Verification of the field-sensitive analyzers against the real module,
// both directions: the shipped packages must be clean (the fingerprint
// contract holds today), and a deliberately injected violation must be
// caught (the analyzers are not vacuously clean). Injection is textual —
// the package sources are copied to a temp dir, one line is removed or
// inserted at a pinned marker, and the copy is loaded like any testdata
// package; the test fails loudly if the marker has drifted, so a refactor
// of the experiments package cannot silently disarm the check.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFieldFlowAnalyzersCleanOnModule runs both field-sensitive analyzers
// over every package in the module and requires zero unsuppressed
// findings — errors and warnings alike: the shipped fingerprint builders
// observe everything the compute paths read, encode nothing dead, and no
// shard function writes shared state.
func TestFieldFlowAnalyzersCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := Load("", "../../...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := RunModule(pkgs, []*Analyzer{FingerprintComplete, SharedCapture})
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		t.Errorf("field-flow finding on the real module: %s", d)
	}
}

// copyPackageSources copies a package's non-test Go files into a temp dir
// and returns it, so a test can mutate one file without touching the
// repository.
func copyPackageSources(t *testing.T, srcDir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(srcDir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	copied := 0
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(name)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		copied++
	}
	if copied == 0 {
		t.Fatalf("no non-test Go files in %s", srcDir)
	}
	return dir
}

// injectIntoFile rewrites one file in dir through edit, failing the test
// if edit reports the expected marker missing.
func injectIntoFile(t *testing.T, dir, file string, edit func(src string) (string, bool)) {
	t.Helper()
	path := filepath.Join(dir, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := edit(string(data))
	if !ok {
		t.Fatalf("injection marker not found in %s — the experiments package was refactored; re-pin the injection site", file)
	}
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

// runOnInjected loads the mutated package copy and runs one analyzer.
func runOnInjected(t *testing.T, dir string, a *Analyzer) []Diagnostic {
	t.Helper()
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags, err := RunModule([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	return diags
}

// TestFingerprintCompleteCatchesInjectedOmission removes the kernel key
// from makespanFingerprint — the builder still observes MakespanConfig
// through its other fields, but runOneDAG's cfg.Kernel read is no longer
// covered — and requires the analyzer to report that exact field.
func TestFingerprintCompleteCatchesInjectedOmission(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a package copy through go list")
	}
	dir := copyPackageSources(t, filepath.Join("..", "experiments"))
	injectIntoFile(t, dir, "fingerprint.go", func(src string) (string, bool) {
		// Scope the deletion to makespanFingerprint's body: the same
		// kernel line appears in the other builders too, and those must
		// stay intact so only one omission exists.
		start := strings.Index(src, `memo.NewEncoder("makespan/point")`)
		if start < 0 {
			return src, false
		}
		rel := strings.Index(src[start:], "p.AppendFingerprint")
		if rel < 0 {
			return src, false
		}
		window := src[start : start+rel]
		marker := "\te.Str(\"kernel\", cfg.Kernel.String())\n"
		if !strings.Contains(window, marker) {
			return src, false
		}
		return src[:start] + strings.Replace(window, marker, "", 1) + src[start+rel:], true
	})

	diags := runOnInjected(t, dir, FingerprintComplete)
	found := false
	for _, d := range diags {
		if !d.Warning && strings.Contains(d.Message, "MakespanConfig.Kernel") &&
			strings.Contains(d.Message, "makespanFingerprint") {
			found = true
			if len(d.Chain) == 0 {
				t.Errorf("injected-omission finding carries no evidence chain: %s", d)
			}
		}
	}
	if !found {
		t.Errorf("analyzer missed the injected fingerprint omission; got %d diagnostic(s): %v", len(diags), diags)
	}
}

// TestSharedCaptureCatchesInjectedWrite inserts a captured-variable write
// into the acceptance sweep's shard closure and requires the analyzer to
// flag it.
func TestSharedCaptureCatchesInjectedWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a package copy through go list")
	}
	dir := copyPackageSources(t, filepath.Join("..", "experiments"))
	injectIntoFile(t, dir, "acceptance.go", func(src string) (string, bool) {
		marker := "var tr acceptanceTrial\n"
		if !strings.Contains(src, marker) {
			return src, false
		}
		return strings.Replace(src, marker, marker+"\t\t\tp.Utilization++\n", 1), true
	})

	diags := runOnInjected(t, dir, SharedCapture)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "writes captured variable p.Utilization") {
			found = true
		}
	}
	if !found {
		t.Errorf("analyzer missed the injected captured write; got %d diagnostic(s): %v", len(diags), diags)
	}
}

package lint

import (
	"go/token"
	"go/types"
	"testing"
)

// factsTestGraph hand-builds a call graph: a -> b -> c, with b and c in a
// cycle (c -> b), and d isolated. Node functions carry no package so
// DisplayName renders the bare names.
func factsTestGraph() *CallGraph {
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	g := &CallGraph{Nodes: map[FuncID]*CallNode{}}
	mk := func(name string) *CallNode {
		fn := types.NewFunc(token.NoPos, nil, name, sig)
		n := &CallNode{ID: FuncIDOf(fn), Fn: fn}
		g.Nodes[n.ID] = n
		return n
	}
	a, b, c, d := mk("a"), mk("b"), mk("c"), mk("d")
	a.Calls = []CallEdge{{Callee: b.ID}}
	b.Calls = []CallEdge{{Callee: c.ID}}
	c.Calls = []CallEdge{{Callee: b.ID}} // cycle
	_ = d
	return g
}

func TestFactPropagation(t *testing.T) {
	g := factsTestGraph()
	fs := NewFactSet(g)
	sink := Fact{Kind: "wall-clock", Sink: "time.Now", Origin: token.Position{Filename: "c.go", Line: 7}}
	fs.Seed("c", sink)
	fs.Propagate()

	for _, holder := range []FuncID{"a", "b", "c"} {
		facts := fs.FactsOf(holder)
		if len(facts) != 1 || facts[0] != sink {
			t.Errorf("FactsOf(%s) = %v, want [%v]", holder, facts, sink)
		}
	}
	if facts := fs.FactsOf("d"); len(facts) != 0 {
		t.Errorf("FactsOf(d) = %v, want none: d reaches nothing", facts)
	}
}

func TestFactChainTerminatesThroughCycle(t *testing.T) {
	g := factsTestGraph()
	fs := NewFactSet(g)
	sink := Fact{Kind: "global-rand", Sink: "rand.Int63", Origin: token.Position{Filename: "c.go", Line: 9}}
	fs.Seed("c", sink)
	fs.Propagate()

	chain := fs.Chain("a", sink)
	if got := ChainString(chain); got != "a -> b -> c" {
		t.Errorf("ChainString = %q, want \"a -> b -> c\"", got)
	}
	last := chain[len(chain)-1]
	if last.Site != sink.Origin {
		t.Errorf("final chain entry site = %v, want the sink origin %v", last.Site, sink.Origin)
	}
	// b holds the fact through the cycle edge too; its chain must still
	// bottom out at the seed rather than orbiting b <-> c.
	if got := ChainString(fs.Chain("b", sink)); got != "b -> c" {
		t.Errorf("ChainString(b) = %q, want \"b -> c\"", got)
	}
	if fs.Chain("d", sink) != nil {
		t.Error("Chain(d) should be nil: d does not hold the fact")
	}
}

func TestFactSeedDeduplicates(t *testing.T) {
	g := factsTestGraph()
	fs := NewFactSet(g)
	f := Fact{Kind: "fs-read", Sink: "os.Getenv", Origin: token.Position{Filename: "c.go", Line: 3}}
	fs.Seed("c", f)
	fs.Seed("c", f)
	if facts := fs.FactsOf("c"); len(facts) != 1 {
		t.Errorf("duplicate seed recorded: FactsOf(c) = %v", facts)
	}
	// Distinct origins are distinct facts even with the same kind and sink.
	f2 := f
	f2.Origin.Line = 4
	fs.Seed("c", f2)
	if facts := fs.FactsOf("c"); len(facts) != 2 {
		t.Errorf("distinct-origin fact collapsed: FactsOf(c) = %v", facts)
	}
}

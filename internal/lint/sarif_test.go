package lint

// TestSARIFSchema validates ToSARIF output against SARIF 2.1.0
// structurally: no JSON-Schema validator ships with the stdlib, so the
// test decodes the emitted log generically and asserts the schema's
// required properties and enumerations directly — version, run/tool/
// driver shape, rule references, location shape, suppression kinds and
// baselineState values. TestSARIFRoundTrip pins the evidence mapping.

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "/work/internal/l15/l15.go", Line: 42, Column: 7},
			Analyzer: "hotalloc",
			Message:  "heap allocation on the hot path from (*l15.L15).sduIdle: make",
			Chain: []ChainEntry{
				{Func: "(*l15.L15).sduIdle", Site: token.Position{Filename: "/work/internal/l15/l15.go", Line: 40, Column: 2}},
				{Func: "(*l15.L15).checkIdle", Site: token.Position{Filename: "/work/internal/l15/l15.go", Line: 42, Column: 7}},
			},
		},
		{
			Pos:           token.Position{Filename: "/work/internal/cpu/cpu.go", Line: 9, Column: 1},
			Analyzer:      "wakeupsafe",
			Message:       "suppressed finding",
			Suppressed:    true,
			Justification: "trap path is cold by construction",
		},
		{
			Pos:       token.Position{Filename: "/work/internal/soc/soc.go", Line: 3, Column: 2},
			Analyzer:  "hotalloc",
			Message:   "accepted debt",
			Baselined: true,
		},
	}
}

// decodeSARIF unmarshals the log generically for structural assertions.
func decodeSARIF(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var log map[string]any
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	return log
}

func TestSARIFSchema(t *testing.T) {
	data, err := ToSARIF(sampleDiags(), All(), "/work")
	if err != nil {
		t.Fatalf("ToSARIF: %v", err)
	}
	log := decodeSARIF(t, data)

	// §3.13: sarifLog requires version (fixed "2.1.0") and runs.
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", log["version"])
	}
	if s, _ := log["$schema"].(string); !strings.Contains(s, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q does not reference the 2.1.0 schema", s)
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs is %T of len %d, want array of 1", log["runs"], len(runs))
	}
	run := runs[0].(map[string]any)

	// §3.14: run requires tool; §3.18: tool requires driver with a name.
	tool, ok := run["tool"].(map[string]any)
	if !ok {
		t.Fatal("run.tool missing")
	}
	driver, ok := tool["driver"].(map[string]any)
	if !ok {
		t.Fatal("run.tool.driver missing")
	}
	if name, _ := driver["name"].(string); name == "" {
		t.Error("driver.name empty")
	}

	// §3.19: every rule needs an id; rules must cover the suite.
	rules, ok := driver["rules"].([]any)
	if !ok || len(rules) != len(All()) {
		t.Fatalf("driver.rules has %d entries, want %d (one per analyzer)", len(rules), len(All()))
	}
	ruleIDs := map[string]int{}
	for i, r := range rules {
		rule := r.(map[string]any)
		id, _ := rule["id"].(string)
		if id == "" {
			t.Fatalf("rule %d has no id", i)
		}
		if sd, ok := rule["shortDescription"].(map[string]any); !ok || sd["text"] == "" {
			t.Errorf("rule %s: shortDescription.text missing", id)
		}
		ruleIDs[id] = i
	}

	// §3.27: result requires message; ruleIndex must agree with ruleId.
	results, ok := run["results"].([]any)
	if !ok || len(results) != len(sampleDiags()) {
		t.Fatalf("results has %d entries, want %d", len(results), len(sampleDiags()))
	}
	validLevels := map[string]bool{"none": true, "note": true, "warning": true, "error": true}
	validBaseline := map[string]bool{"new": true, "unchanged": true, "updated": true, "absent": true}
	validSuppression := map[string]bool{"inSource": true, "external": true}
	for i, r := range results {
		res := r.(map[string]any)
		msg, ok := res["message"].(map[string]any)
		if !ok || msg["text"] == "" {
			t.Fatalf("result %d: message.text missing", i)
		}
		id, _ := res["ruleId"].(string)
		idx, haveRule := ruleIDs[id]
		if !haveRule {
			t.Errorf("result %d: ruleId %q not in driver.rules", i, id)
		}
		if ri, ok := res["ruleIndex"].(float64); ok && int(ri) != idx {
			t.Errorf("result %d: ruleIndex %d disagrees with ruleId %q at %d", i, int(ri), id, idx)
		}
		if lv, _ := res["level"].(string); !validLevels[lv] {
			t.Errorf("result %d: level %q not in the §3.27.10 enumeration", i, lv)
		}
		if bs, ok := res["baselineState"].(string); ok && !validBaseline[bs] {
			t.Errorf("result %d: baselineState %q not in the §3.27.25 enumeration", i, bs)
		}
		// §3.28/§3.29/§3.4: locations carry physicalLocation with an
		// artifactLocation uri and a region with a positive startLine.
		locs, ok := res["locations"].([]any)
		if !ok || len(locs) == 0 {
			t.Fatalf("result %d: locations missing", i)
		}
		rel, _ := res["relatedLocations"].([]any)
		for _, l := range append(locs, rel...) {
			phys, ok := l.(map[string]any)["physicalLocation"].(map[string]any)
			if !ok {
				t.Fatalf("result %d: physicalLocation missing", i)
			}
			art, ok := phys["artifactLocation"].(map[string]any)
			if !ok || art["uri"] == "" {
				t.Fatalf("result %d: artifactLocation.uri missing", i)
			}
			if uri := art["uri"].(string); strings.Contains(uri, "\\") {
				t.Errorf("result %d: uri %q not slash-separated", i, uri)
			}
			region, ok := phys["region"].(map[string]any)
			if !ok {
				t.Fatalf("result %d: region missing", i)
			}
			if sl, _ := region["startLine"].(float64); sl < 1 {
				t.Errorf("result %d: startLine %v not positive", i, region["startLine"])
			}
		}
		// §3.35: suppression requires kind from the enumeration.
		if sups, ok := res["suppressions"].([]any); ok {
			for _, s := range sups {
				if kind, _ := s.(map[string]any)["kind"].(string); !validSuppression[kind] {
					t.Errorf("result %d: suppression kind %q invalid", i, kind)
				}
			}
		}
	}
}

func TestSARIFRoundTrip(t *testing.T) {
	data, err := ToSARIF(sampleDiags(), All(), "/work")
	if err != nil {
		t.Fatalf("ToSARIF: %v", err)
	}
	log := decodeSARIF(t, data)
	results := log["runs"].([]any)[0].(map[string]any)["results"].([]any)

	// Finding 0: chain becomes relatedLocations labelled with functions,
	// and the URI is relativised against base.
	r0 := results[0].(map[string]any)
	uri := r0["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)["artifactLocation"].(map[string]any)["uri"].(string)
	if uri != "internal/l15/l15.go" {
		t.Errorf("finding 0 uri = %q, want internal/l15/l15.go", uri)
	}
	rel := r0["relatedLocations"].([]any)
	if len(rel) != 2 {
		t.Fatalf("finding 0 has %d relatedLocations, want 2 chain hops", len(rel))
	}
	if text := rel[0].(map[string]any)["message"].(map[string]any)["text"]; text != "(*l15.L15).sduIdle" {
		t.Errorf("first hop label = %v", text)
	}
	if bs := r0["baselineState"]; bs != "new" {
		t.Errorf("finding 0 baselineState = %v, want new", bs)
	}

	// Finding 1: in-source suppression with its justification.
	r1 := results[1].(map[string]any)
	sups, ok := r1["suppressions"].([]any)
	if !ok || len(sups) != 1 {
		t.Fatalf("finding 1: suppressions = %v, want 1 entry", r1["suppressions"])
	}
	if j := sups[0].(map[string]any)["justification"]; j != "trap path is cold by construction" {
		t.Errorf("finding 1 justification = %v", j)
	}

	// Finding 2: baselined findings carry baselineState unchanged.
	r2 := results[2].(map[string]any)
	if bs := r2["baselineState"]; bs != "unchanged" {
		t.Errorf("finding 2 baselineState = %v, want unchanged", bs)
	}
	if _, hasSup := r2["suppressions"]; hasSup {
		t.Error("finding 2 should have no suppressions")
	}
}

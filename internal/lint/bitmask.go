package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BitMask enforces the way-bitmap discipline around internal/bitmap: the
// OW/GV/IP masks are hardware registers whose set bits must never exceed
// the configured way count ζ, and the bitmap API (Set, Clear, FromWays,
// FirstN) is the only construction path that bound-checks. Outside the
// owning package the analyzer flags
//
//   - raw shifts that produce a bitmap.Bitmap (silent overflow past ζ
//     wraps into nonexistent ways),
//   - conversions of arbitrary integers to bitmap.Bitmap that are not
//     masked to a bound (an unmasked uint32 from a register file can carry
//     bits for ways the cluster does not have),
//   - writes to another package's struct fields of bitmap type (mask
//     registers are owned by their component; cross-package pokes bypass
//     the component's invariants, e.g. GV ⊆ OW).
var BitMask = &Analyzer{
	Name: "bitmask",
	Doc:  "enforces way-bitmap discipline: no raw shifts into bitmap.Bitmap, no unbounded integer→Bitmap conversions, no cross-package writes to mask fields",
	Run:  runBitMask,
}

// isBitmapType reports whether t is the way-bitmap register type
// (bitmap.Bitmap, matched structurally so testdata can exercise the rule).
func isBitmapType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Bitmap" && obj.Pkg() != nil && obj.Pkg().Name() == "bitmap"
}

// elemBitmapType reports whether t is a slice/array/map whose element is
// the bitmap type (the per-core register banks: []bitmap.Bitmap).
func elemBitmapType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isBitmapType(u.Elem())
	case *types.Array:
		return isBitmapType(u.Elem())
	case *types.Map:
		return isBitmapType(u.Elem())
	}
	return false
}

func runBitMask(pass *Pass) error {
	if pass.Pkg.Name() == "bitmap" {
		return nil // the owning package implements the API itself
	}
	for _, file := range pass.Files {
		parents := parentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op == token.SHL && isBitmapType(exprType(pass, e)) {
					pass.Reportf(e.OpPos,
						"raw shift produces a bitmap.Bitmap; use Set/FromWays/FirstN, which bound-check the way index, instead of <<")
				}
			case *ast.AssignStmt:
				checkMaskAssign(pass, e)
			case *ast.CallExpr:
				checkBitmapConversion(pass, e, parents)
			}
			return true
		})
	}
	return nil
}

func exprType(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// checkBitmapConversion flags bitmap.Bitmap(x) where x is a non-constant
// integer and neither x nor the surrounding expression masks the result to
// a bound.
func checkBitmapConversion(pass *Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || !isBitmapType(tv.Type) {
		return
	}
	arg := call.Args[0]
	argTV := pass.TypesInfo.Types[arg]
	if argTV.Value != nil {
		return // constant: reviewable at the call site
	}
	if isBitmapType(argTV.Type) {
		return // Bitmap→Bitmap identity
	}
	if boundedExpr(pass, arg) || maskedByParent(call, parents) {
		return
	}
	pass.Reportf(call.Pos(),
		"unbounded integer→bitmap.Bitmap conversion; mask to the configured way count first (e.g. .Intersect(bitmap.FirstN(ways))) so bits past ζ cannot leak into the mask logic")
}

// boundedExpr reports whether e already constrains its value: an AND-style
// mask, or a call into the bitmap package's bound-checked constructors.
func boundedExpr(pass *Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return boundedExpr(pass, x.X)
	case *ast.BinaryExpr:
		return x.Op == token.AND || x.Op == token.AND_NOT
	case *ast.CallExpr:
		if fn := calleeFunc(pass, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "bitmap" {
			return true
		}
	}
	return false
}

// maskedByParent reports whether the conversion's surrounding expression
// immediately bounds it: an & / &^ operand, or the receiver of
// Intersect/Diff.
func maskedByParent(call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	p := parents[call]
	if pe, ok := p.(*ast.ParenExpr); ok {
		p = parents[pe]
	}
	switch parent := p.(type) {
	case *ast.BinaryExpr:
		return parent.Op == token.AND || parent.Op == token.AND_NOT
	case *ast.SelectorExpr:
		return parent.Sel.Name == "Intersect" || parent.Sel.Name == "Diff"
	}
	return false
}

// checkMaskAssign flags writes to bitmap-typed struct fields declared in
// another package.
func checkMaskAssign(pass *Pass, assign *ast.AssignStmt) {
	for _, lhs := range assign.Lhs {
		target := lhs
		if idx, ok := target.(*ast.IndexExpr); ok {
			target = idx.X
		}
		sel, ok := target.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			continue
		}
		field := selection.Obj().(*types.Var)
		if field.Pkg() == nil || field.Pkg() == pass.Pkg {
			continue
		}
		if !isBitmapType(field.Type()) && !elemBitmapType(field.Type()) {
			continue
		}
		pass.Reportf(lhs.Pos(),
			"mask field %s.%s is written outside its owning package %s; route the write through that package's API so its invariants (GV ⊆ OW, ζ bound) hold",
			field.Pkg().Name(), field.Name(), field.Pkg().Path())
	}
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// parentMap records each node's immediate parent within file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
